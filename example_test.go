package sslab_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"sslab"
)

// ExampleListenServer runs a hardened Shadowsocks server, probes it with
// a 221-byte random payload (the GFW's NR2 probe), and observes the
// §7.2-recommended reaction: a timeout, indistinguishable from a silent
// service.
func ExampleListenServer() {
	srv, err := sslab.ListenServer("127.0.0.1:0", sslab.ServerConfig{
		Method:   "chacha20-ietf-poly1305",
		Password: "example-secret",
	})
	if err != nil {
		fmt.Println("listen:", err)
		return
	}
	defer srv.Close()

	prober := &sslab.TCPProber{Addr: srv.Addr().String(), Timeout: 400 * time.Millisecond}
	reactionSeen, err := prober.Probe(make([]byte, 221), time.Time{})
	if err != nil {
		fmt.Println("probe:", err)
		return
	}
	fmt.Println("hardened server reaction to an NR2 probe:", reactionSeen)
	// Output: hardened server reaction to an NR2 probe: TIMEOUT
}

// ExampleWithImpairment degrades every simulated link until nothing
// survives: total loss with a single transmission attempt means no flow
// ever reaches the censor, so the whole campaign deterministically
// records zero triggers and zero probes. Dial the Loss down (or raise
// Retry.Attempts) and the paper's pipeline comes back to life.
func ExampleWithImpairment() {
	dead := &sslab.LinkProfile{
		Loss:  1,
		Retry: sslab.RetryPolicy{Attempts: 1},
	}
	report, err := sslab.RunShadowsocksExperiment(sslab.ShadowsocksConfig{
		Seed: 1, Days: 1, ConnsPerPairPerHour: 4,
		GFW:    sslab.GFWConfig{PoolSize: 100},
		Impair: dead,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("triggers:", report.Triggers)
	fmt.Println("probes:", report.Probes)
	fmt.Println("flows lost to the link:", report.LinkDroppedFlows > 0)
	// Output:
	// triggers: 0
	// probes: 0
	// flows lost to the link: true
}

// ExampleWithDetectors builds a censor running the full four-stage
// detector chain, using stage aliases. The chain is order-independent:
// verdicts combine by exempt-veto then maximum confidence, so listing
// "tls" last protects TLS flows just the same.
func ExampleWithDetectors() {
	sim := sslab.NewSim(sslab.WithSeed(1))
	net := sslab.NewNetwork(sim)
	censor := sslab.NewCensor(sslab.CensorEnv{Sim: sim, Net: net},
		sslab.WithDetectors("ss", "ovpn", "fep", "tls"))
	fmt.Println("chain:", censor.DetectorNames())
	fmt.Println("registered stages:", sslab.DetectorNames())
	// Output:
	// chain: [shadowsocks openvpn fullyencrypted tlsexempt]
	// registered stages: [fullyencrypted openvpn shadowsocks tlsexempt]
}

// ExampleRunFleet runs a population-scale fleet split into four
// space shards and demonstrates the execution-option contract:
// FleetConfig (including Shards) is science and pins the report's
// bytes, while WithWorkers is execution and only changes wall-clock
// time — a fully parallel run reproduces the sequential run exactly.
func ExampleRunFleet() {
	cfg := sslab.FleetConfig{
		Seed: 1, Users: 500, UsersPerServer: 25,
		Hours: 6, BucketMin: 30, Shards: 4,
	}
	sequential, err := sslab.RunFleet(cfg, sslab.WithWorkers(1))
	if err != nil {
		fmt.Println(err)
		return
	}
	parallel, err := sslab.RunFleet(cfg, sslab.WithWorkers(4))
	if err != nil {
		fmt.Println(err)
		return
	}
	a, _ := json.Marshal(sequential)
	b, _ := json.Marshal(parallel)
	fmt.Println("users:", sequential.Users, "servers:", sequential.Servers)
	fmt.Println("parallel report byte-identical:", bytes.Equal(a, b))
	// Output:
	// users: 500 servers: 20
	// parallel report byte-identical: true
}

// ExampleRunReactionMatrices regenerates one Figure 10b fingerprint: the
// OutlineVPN v1.0.6 FIN/ACK band at exactly 50 bytes.
func ExampleRunReactionMatrices() {
	report, err := sslab.RunReactionMatrices(sslab.MatrixConfig{Seed: 1, Trials: 20})
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, m := range report.AEAD {
		if m.Versions == "v1.0.6" {
			fmt.Printf("len 49: %v\n", m.Cells[49].Dominant())
			fmt.Printf("len 50: %v\n", m.Cells[50].Dominant())
			fmt.Printf("len 51: %v\n", m.Cells[51].Dominant())
		}
	}
	// Output:
	// len 49: TIMEOUT
	// len 50: FIN/ACK
	// len 51: RST
}
