// Package sslab is a from-scratch Go reproduction of "How China Detects
// and Blocks Shadowsocks" (IMC 2020): a complete Shadowsocks protocol
// stack (both the stream-cipher and AEAD constructions), behavioural
// emulators of the server implementations the paper studied, the §5.1
// prober simulator, and a calibrated behavioural model of the Great
// Firewall's passive detector, staged active-probing infrastructure, and
// blocking module — all wired to a deterministic discrete-event network
// simulator so every table and figure in the paper can be regenerated
// offline.
//
// This root package is the stable facade: it aliases the library's main
// types so downstream users interact with one import. The implementation
// lives in internal/ packages; see DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-versus-measured results.
//
// Quick start (run a real proxy):
//
//	srv, _ := sslab.ListenServer("127.0.0.1:8388", sslab.ServerConfig{
//	    Method: "chacha20-ietf-poly1305", Password: "secret",
//	})
//	cli, _ := sslab.NewClient(sslab.ClientConfig{
//	    Server: srv.Addr().String(), Method: "chacha20-ietf-poly1305", Password: "secret",
//	})
//	conn, _ := cli.Dial("example.com:80")
//
// Reproduce the paper (see also cmd/gfwsim):
//
//	report, _ := sslab.RunShadowsocksExperiment(sslab.ShadowsocksConfig{Seed: 1})
//	fmt.Print(report.Render())
package sslab

import (
	"sslab/internal/detector"
	"sslab/internal/experiment"
	"sslab/internal/fleet"
	"sslab/internal/gfw"
	"sslab/internal/metrics"
	"sslab/internal/netsim"
	"sslab/internal/probesim"
	"sslab/internal/reaction"
	"sslab/internal/region"
	"sslab/internal/ssclient"
	"sslab/internal/ssserver"
)

// Version identifies the library release.
const Version = "1.0.0"

// Server-side API.
type (
	// ServerConfig configures a runnable Shadowsocks server.
	ServerConfig = ssserver.Config
	// Server is a running Shadowsocks proxy server with a behaviour profile.
	Server = ssserver.Server
	// Profile selects which implementation's behaviour a server emulates.
	Profile = reaction.Profile
)

// Client-side API.
type (
	// ClientConfig configures a Shadowsocks client.
	ClientConfig = ssclient.Config
	// Client tunnels connections through a Shadowsocks server.
	Client = ssclient.Client
)

// Censor model and simulation API.
type (
	// GFW is the Great Firewall behavioural model.
	GFW = gfw.GFW
	// GFWConfig tunes the censor model.
	GFWConfig = gfw.Config
	// Sim is the discrete-event virtual clock.
	Sim = netsim.Sim
	// Network is the simulated network the GFW sits on.
	Network = netsim.Network
	// Endpoint names one simulated host address (IP, port) — the key the
	// network, the censor's caches and the blocking rules all share.
	Endpoint = netsim.Endpoint
	// Metrics is the deterministic counter/gauge/histogram registry the
	// simulator, censor and servers report into.
	Metrics = metrics.Registry
)

// Impairment and options API. A LinkProfile describes one direction of
// a degraded path (latency, jitter, loss models, duplication,
// reordering, bandwidth, outages, retries); install one on every link
// with WithImpairment or per directed pair with WithLink. All other
// knobs follow the same functional-options pattern (see
// CONTRIBUTING.md).
type (
	// LinkProfile describes the impairments of one directed link.
	LinkProfile = netsim.LinkProfile
	// GEParams configures the Gilbert–Elliott bursty-loss model.
	GEParams = netsim.GEParams
	// Outage is a scheduled hard-down window on a link.
	Outage = netsim.Outage
	// RetryPolicy bounds transport-level retransmission on a link.
	RetryPolicy = netsim.RetryPolicy
	// Timeouts bundles connect/handshake/idle deadlines; the zero value
	// means "use defaults" everywhere it is accepted.
	Timeouts = netsim.Timeouts
	// SimOption configures NewSim.
	SimOption = netsim.Option
	// NetworkOption configures NewNetwork.
	NetworkOption = netsim.NetworkOption
	// CensorEnv names the simulator and network a censor attaches to.
	CensorEnv = gfw.Env
	// CensorOption configures NewCensor.
	CensorOption = gfw.Option
)

// Prober-simulator API (§5.1).
type (
	// TCPProber probes live servers over TCP.
	TCPProber = probesim.TCPProber
	// ReactionMatrix is one Figure 10 row.
	ReactionMatrix = probesim.Matrix
)

// Experiment harness API.
type (
	// ShadowsocksConfig scales the §3.1 experiment.
	ShadowsocksConfig = experiment.ShadowsocksConfig
	// SinkConfig scales the §4.1 random-data experiments.
	SinkConfig = experiment.SinkConfig
	// BrdgrdConfig scales the §7.1 shaping experiment.
	BrdgrdConfig = experiment.BrdgrdConfig
	// MatrixConfig scales the §5.1 reaction-matrix experiment.
	MatrixConfig = experiment.MatrixConfig
	// BlockingConfig scales the §6 blocking-module experiment.
	BlockingConfig = experiment.BlockingConfig
	// FPStudyConfig scales the §9 false-positive extension study.
	FPStudyConfig = experiment.FPStudyConfig
	// BanStudyConfig scales the §3.3 prober-IP-banning study.
	BanStudyConfig = experiment.BanStudyConfig
	// MimicStudyConfig scales the TLS-framing (§8 mechanism) study.
	MimicStudyConfig = experiment.MimicStudyConfig
	// ProbeCostConfig scales the §5.2.2 probes-to-confirmation study.
	ProbeCostConfig = experiment.ProbeCostConfig
	// RobustnessConfig scales the impairment-robustness study (which
	// paper observations survive a lossy, jittery path).
	RobustnessConfig = experiment.RobustnessConfig
	// ArmsRaceConfig scales the detector-chain × protocol-mix sweep.
	ArmsRaceConfig = experiment.ArmsRaceConfig
)

// Population-scale fleet API. FleetConfig is the science — everything
// in it, including the Shards space partition, may change report
// bytes — while FleetOptions configure execution only (worker pools,
// metrics sinks) and are guaranteed report-invariant: equal configs
// give byte-identical FleetReports under any option combination.
type (
	// FleetConfig sizes and seeds a population run (users, servers,
	// virtual hours, implementation mix, censor config, shard count).
	FleetConfig = fleet.Config
	// FleetReport is the population-scale reduction of one run:
	// blocked-user curves, detection latencies, server lifetimes,
	// per-implementation survival. Reports from shards or repeated runs
	// fold together with its Merge method.
	FleetReport = fleet.Report
	// FleetOption configures fleet execution (see WithWorkers,
	// WithFleetMetrics).
	FleetOption = fleet.Option
	// ImplShare is one entry of a fleet's server implementation mix.
	ImplShare = fleet.ImplShare
)

// Spatiotemporal censorship layer: a fleet partitioned into named
// regions, each under its own censor with its own timed policy
// schedule, plus the Engine API for staged execution and snapshots.
type (
	// RegionTopology maps a fleet's servers and users onto named
	// censorship regions (set FleetConfig.Regions). A one-region
	// topology with no schedule reproduces the non-regional engine
	// byte for byte.
	RegionTopology = region.Topology
	// Region is one named region: a server-space weight, an optional
	// censor-config override, and an optional policy schedule.
	Region = region.Region
	// RegionSchedule is a region's ordered timed policy events.
	RegionSchedule = region.Schedule
	// RegionEvent is one scheduled policy change (sensitivity step,
	// block-TTL change, probing pause/resume).
	RegionEvent = region.Event
	// RegionStats is one region's row of a FleetReport's PerRegion
	// breakdown.
	RegionStats = fleet.RegionStats
	// FleetEngine is a fleet run held open: advance with RunTo,
	// serialize with Snapshot, reduce with Report.
	FleetEngine = fleet.Engine
	// SpatioConfig scales the regional-gradient × schedule-shape sweep.
	SpatioConfig = experiment.SpatioConfig
)

// ErrUnmergeableReport marks a FleetReport that lost its backing
// sketches (e.g. in a JSON round trip) and therefore cannot Merge.
var ErrUnmergeableReport = fleet.ErrUnmergeableReport

// Implementation profiles the paper studied, plus the hardened reference.
var (
	LibevOld   = reaction.LibevOld
	LibevNew   = reaction.LibevNew
	Outline106 = reaction.Outline106
	Outline107 = reaction.Outline107
	Outline110 = reaction.Outline110
	Hardened   = reaction.Hardened
	SSPython   = reaction.SSPython
	SSR        = reaction.SSR
)

// NewServer builds a server without binding a socket.
func NewServer(cfg ServerConfig) (*Server, error) { return ssserver.New(cfg) }

// ListenServer binds addr and serves in the background.
func ListenServer(addr string, cfg ServerConfig) (*Server, error) {
	return ssserver.Listen(addr, cfg)
}

// NewClient builds a Shadowsocks client.
func NewClient(cfg ClientConfig) (*Client, error) { return ssclient.New(cfg) }

// NewSim creates a virtual-clock simulator starting at the paper's epoch.
func NewSim(opts ...SimOption) *Sim { return netsim.NewSim(opts...) }

// NewNetwork creates a simulated network on sim.
func NewNetwork(sim *Sim, opts ...NetworkOption) *Network { return netsim.NewNetwork(sim, opts...) }

// NewMetrics creates an empty metrics registry, for use with WithMetrics.
func NewMetrics() *Metrics { return metrics.New() }

// WithSeed sets the simulator's root seed. Per-link impairment streams
// fork from it, so equal seeds give bit-identical runs regardless of
// worker count or host registration order.
func WithSeed(seed int64) SimOption { return netsim.WithSeed(seed) }

// WithMetrics points the simulator at a caller-owned registry so one
// registry can aggregate several simulations.
func WithMetrics(m *Metrics) SimOption { return netsim.WithMetrics(m) }

// WithImpairment applies profile to every directed link without a
// WithLink override. The zero profile leaves links ideal.
func WithImpairment(profile LinkProfile) NetworkOption { return netsim.WithDefaultLink(profile) }

// WithLink overrides the impairment profile of one directed link,
// keyed by the endpoints' IPs.
func WithLink(srcIP, dstIP string, profile LinkProfile) NetworkOption {
	return netsim.WithLink(srcIP, dstIP, profile)
}

// WithCensorConfig replaces the censor's whole configuration; later
// options still apply on top.
func WithCensorConfig(cfg GFWConfig) CensorOption { return gfw.WithConfig(cfg) }

// WithDetectors selects the censor's detector chain by stage name.
// Aliases are accepted ("ss" for shadowsocks, "tls" for tlsexempt,
// "ovpn"/"vpn" for openvpn, "fep"/"obfs" for fullyencrypted); chain
// order does not affect verdicts. It panics on an unknown or duplicate
// stage — chains are static configuration, and a typo should fail the
// run, not quietly weaken the censor. Use DetectorNames for the valid
// set.
func WithDetectors(names ...string) CensorOption {
	if err := detector.ValidateNames(names); err != nil {
		panic(err)
	}
	return gfw.WithDetectors(names)
}

// WithVerdictCache enables the censor's verdict-cache fast path with at
// least the given number of entries: the detector chain's deterministic
// judgment is memoized per (server endpoint, payload fingerprint), so
// repeated traffic skips the full stage walk. Verdicts — and therefore
// reports — are unchanged; only the gfw.cache.* counters and throughput
// differ. Zero or negative disables the tier (the default).
func WithVerdictCache(entries int) CensorOption { return gfw.WithVerdictCache(entries) }

// DetectorNames returns the registered detector stage names, sorted.
func DetectorNames() []string { return detector.Names() }

// NewCensor attaches a censor model to a simulated environment and
// registers it on the network.
func NewCensor(env CensorEnv, opts ...CensorOption) *GFW {
	g := gfw.New(env, opts...)
	env.Net.AddMiddlebox(g)
	return g
}

// NewGFW attaches a censor model to a simulated network; the caller must
// register it with net.AddMiddlebox.
//
// Deprecated: use NewCensor(CensorEnv{Sim: sim, Net: net},
// WithCensorConfig(cfg)), which also registers the middlebox.
func NewGFW(sim *Sim, net *Network, cfg GFWConfig) *GFW { return gfw.NewWithConfig(sim, net, cfg) }

// RunShadowsocksExperiment reproduces §3.1 (Figures 2–7, Tables 2–3).
func RunShadowsocksExperiment(cfg ShadowsocksConfig) (*experiment.ShadowsocksReport, error) {
	return experiment.ShadowsocksExperiment(cfg)
}

// RunSinkExperiments reproduces §4.1 (Table 4, Figures 8–9).
func RunSinkExperiments(cfg SinkConfig) (*experiment.SinkReport, error) {
	return experiment.SinkExperiments(cfg)
}

// RunBrdgrdExperiment reproduces §7.1 (Figure 11).
func RunBrdgrdExperiment(cfg BrdgrdConfig) (*experiment.BrdgrdReport, error) {
	return experiment.BrdgrdExperiment(cfg)
}

// RunReactionMatrices reproduces §5 (Figures 10a/10b, Table 5).
func RunReactionMatrices(cfg MatrixConfig) (*experiment.MatrixReport, error) {
	return experiment.ReactionMatrices(cfg)
}

// RunBlockingExperiment reproduces §6 (which implementations get blocked,
// by port or by IP, and what clients observe).
func RunBlockingExperiment(cfg BlockingConfig) (*experiment.BlockingReport, error) {
	return experiment.BlockingExperiment(cfg)
}

// RunFPStudy runs the §9 extension study: probing exposure of different
// traffic classes under the length+entropy detector.
func RunFPStudy(cfg FPStudyConfig) (*experiment.FPStudyReport, error) {
	return experiment.FPStudy(cfg)
}

// RunBanStudy quantifies §3.3's claim that banning prober IPs cannot stop
// active probing.
func RunBanStudy(cfg BanStudyConfig) (*experiment.BanStudyReport, error) {
	return experiment.BanStudy(cfg)
}

// RunMimicStudy compares plain and TLS-framed deployments under censors
// with and without a TLS whitelist (the §8 application-fronting mechanism).
func RunMimicStudy(cfg MimicStudyConfig) (*experiment.MimicStudyReport, error) {
	return experiment.MimicStudy(cfg)
}

// RunProbeCost measures probes-to-confirmation per implementation —
// §5.2.2's Tor-versus-Shadowsocks observation as a sequential test.
func RunProbeCost(cfg ProbeCostConfig) (*experiment.ProbeCostReport, error) {
	return experiment.ProbeCost(cfg)
}

// RunRobustness sweeps a loss × jitter grid of compact §3.1/§4 reruns
// and reports which headline observations survive an impaired path.
func RunRobustness(cfg RobustnessConfig) (*experiment.RobustnessReport, error) {
	return experiment.Robustness(cfg)
}

// RunArmsRace races detector chains against a multi-protocol server
// population: per-chain blocked-user fractions, detection latency, and
// false positives on innocuous web traffic. The variadic options are
// fleet execution options applied to every chain's population run.
func RunArmsRace(cfg ArmsRaceConfig, opts ...FleetOption) (*experiment.ArmsRaceReport, error) {
	return experiment.ArmsRace(cfg, opts...)
}

// RunFleet executes a population-scale fleet run: Config.Shards
// space-sharded sub-simulations (each with its own censor, network,
// timing wheel and RNG streams) on a bounded worker pool, merged into
// one FleetReport. The report is a function of cfg alone — WithWorkers
// only changes wall-clock time.
func RunFleet(cfg FleetConfig, opts ...FleetOption) (*FleetReport, error) {
	return fleet.Run(cfg, opts...)
}

// NewFleetEngine builds a fleet run held open for staged execution:
// RunTo advances virtual time, Snapshot serializes the engine at a
// quiescent boundary, Report reduces the finished run. Driving an
// engine to the end in one step is RunFleet, byte for byte.
func NewFleetEngine(cfg FleetConfig, opts ...FleetOption) (*FleetEngine, error) {
	return fleet.NewEngine(cfg, opts...)
}

// RestoreFleetEngine rebuilds an engine from Snapshot bytes. A
// restored run's remaining virtual time reports byte-identically to an
// uninterrupted run; options configure execution of the restored
// engine and need not match the original run's.
func RestoreFleetEngine(data []byte, opts ...FleetOption) (*FleetEngine, error) {
	return fleet.Restore(data, opts...)
}

// RunSpatiotemporal sweeps policy-schedule shapes over a regional
// sensitivity gradient: per-region blocked-user fractions, detection
// latencies and server lifetimes under each regime. The variadic
// options are fleet execution options applied to every run.
func RunSpatiotemporal(cfg SpatioConfig, opts ...FleetOption) (*experiment.SpatioReport, error) {
	return experiment.Spatiotemporal(cfg, opts...)
}

// WithWorkers bounds the worker pool executing a fleet run's shards
// (default: all cores, clamped to the shard count). Execution option:
// never changes report bytes.
func WithWorkers(n int) FleetOption { return fleet.WithWorkers(n) }

// WithFleetMetrics folds a fleet run's engine metrics (every shard's
// simulator, network, censor and fleet instruments) into m in shard
// order. Execution option: never changes report bytes. (WithMetrics is
// the analogous simulator-level option.)
func WithFleetMetrics(m *Metrics) FleetOption { return fleet.WithMetrics(m) }

// Probe sends one payload to a live server and classifies the reaction
// the way the GFW would.
func Probe(addr string, payload []byte) (reaction.Reaction, error) {
	p := &probesim.TCPProber{Addr: addr}
	return p.Probe(payload, timeZero)
}

var timeZero = netsim.Epoch
