// Benchmarks regenerating every table and figure in the paper's
// evaluation, plus ablations of the design choices DESIGN.md calls out.
// Each benchmark runs the relevant experiment and reports the headline
// quantities as custom metrics so `go test -bench` output doubles as a
// results table (EXPERIMENTS.md records one full run).
package sslab_test

import (
	"fmt"
	"math"
	"testing"
	"time"

	"sslab"
	"sslab/internal/bloom"
	"sslab/internal/entropy"
	"sslab/internal/experiment"
	"sslab/internal/gfw"
	"sslab/internal/netsim"
	"sslab/internal/probesim"
	"sslab/internal/reaction"
	"sslab/internal/replay"
	"sslab/internal/seedfork"
	"sslab/internal/sscrypto"
	"sslab/internal/stats"
)

// ssReport runs (and caches) one mid-scale Shadowsocks experiment shared
// by the per-figure benchmarks.
var ssReportCache *experiment.ShadowsocksReport

func ssReport(b *testing.B) *experiment.ShadowsocksReport {
	b.Helper()
	if ssReportCache == nil {
		r, err := sslab.RunShadowsocksExperiment(sslab.ShadowsocksConfig{
			Seed: 1, Days: 25, ConnsPerPairPerHour: 90,
			GFW: gfw.Config{PoolSize: 8000},
		})
		if err != nil {
			b.Fatal(err)
		}
		ssReportCache = r
	}
	return ssReportCache
}

var sinkReportCache *experiment.SinkReport

func sinkReport(b *testing.B) *experiment.SinkReport {
	b.Helper()
	if sinkReportCache == nil {
		r, err := sslab.RunSinkExperiments(sslab.SinkConfig{
			Seed: 2, Hours: 100, ConnsPerHour: 2500,
			GFW: gfw.Config{PoolSize: 5000},
		})
		if err != nil {
			b.Fatal(err)
		}
		sinkReportCache = r
	}
	return sinkReportCache
}

// BenchmarkTable1_Timeline renders the experiment timeline.
func BenchmarkTable1_Timeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(experiment.Table1().Rows) != 3 {
			b.Fatal("timeline rows")
		}
	}
}

// BenchmarkFigure2_RandomProbeLengths: NR1 trio lengths and the ≈3×
// NR2-to-NR1 ratio.
func BenchmarkFigure2_RandomProbeLengths(b *testing.B) {
	r := ssReport(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.NR1Lengths.Keys()
	}
	b.ReportMetric(float64(r.NR2Count), "NR2-probes")
	b.ReportMetric(float64(r.NR1Total), "NR1-probes")
	b.ReportMetric(float64(r.NR2Count)/math.Max(1, float64(r.NR1Total)), "NR2/NR1-ratio")
}

// BenchmarkFigure3_ProbesPerIP: unique prober IPs and reuse.
func BenchmarkFigure3_ProbesPerIP(b *testing.B) {
	r := ssReport(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Log.ProbesPerIP()
	}
	b.ReportMetric(float64(r.UniqueIPs), "unique-IPs")
	b.ReportMetric(r.MultiUseFraction*100, "multi-use-%")
	b.ReportMetric(float64(r.MaxPerIP), "max-per-IP")
}

// BenchmarkTable2_TopProberIPs: the top-10 list.
func BenchmarkTable2_TopProberIPs(b *testing.B) {
	r := ssReport(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		top := r.Log.TopIPs(10)
		if len(top) != 10 {
			b.Fatal("top-10 incomplete")
		}
	}
	b.ReportMetric(float64(r.TopIPs[0].Count), "top-IP-count")
}

// BenchmarkFigure4_DatasetOverlap: Venn regions against historical sets.
func BenchmarkFigure4_DatasetOverlap(b *testing.B) {
	r := ssReport(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Overlap
	}
	b.ReportMetric(float64(r.Overlap.AB), "ours∩ensafi")
	b.ReportMetric(float64(r.Overlap.AC), "ours∩dunna")
}

// BenchmarkTable3_ASDistribution: unique IPs per AS.
func BenchmarkTable3_ASDistribution(b *testing.B) {
	r := ssReport(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Log.ASCounts()
	}
	b.ReportMetric(float64(r.ASCounts[4837]), "AS4837")
	b.ReportMetric(float64(r.ASCounts[4134]), "AS4134")
}

// BenchmarkFigure5_SourcePorts: the ephemeral-range share.
func BenchmarkFigure5_SourcePorts(b *testing.B) {
	r := ssReport(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Log.SourcePorts()
	}
	b.ReportMetric(r.EphemeralPortShare*100, "ephemeral-%")
	b.ReportMetric(float64(r.MinPort), "min-port")
}

// BenchmarkFigure6_TSvalProcesses: timestamp-process clustering.
func BenchmarkFigure6_TSvalProcesses(b *testing.B) {
	r := ssReport(b)
	pts := r.Log.TSPoints()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clusters := stats.ClusterTSvals(pts, []float64{250, 1000}, 100000)
		if len(clusters) == 0 {
			b.Fatal("no clusters")
		}
	}
	b.ReportMetric(float64(r.TSClusters), "processes")
	b.ReportMetric(r.DominantRate, "dominant-Hz")
}

// BenchmarkFigure7_ReplayDelay: the delay CDF anchors.
func BenchmarkFigure7_ReplayDelay(b *testing.B) {
	r := ssReport(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		all, _ := r.Log.ReplayDelays()
		if all.Len() == 0 {
			b.Fatal("no delays")
		}
	}
	b.ReportMetric(r.DelayAll.P(1)*100, "P(1s)-%")
	b.ReportMetric(r.DelayAll.P(60)*100, "P(1min)-%")
	b.ReportMetric(r.DelayAll.P(900)*100, "P(15min)-%")
	b.ReportMetric(r.DelayAll.Max()/3600, "max-delay-h")
}

// BenchmarkTable4_RandomDataExperiments: the four-row experiment matrix.
func BenchmarkTable4_RandomDataExperiments(b *testing.B) {
	r := sinkReport(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(r.Rows) != 4 {
			b.Fatal("rows")
		}
	}
	b.ReportMetric(float64(r.Rows[0].Probes), "exp1a-probes")
	b.ReportMetric(float64(r.Rows[2].Probes), "exp2-probes")
}

// BenchmarkFigure8_ReplayLengthStairstep: mod-16 remainder shares.
func BenchmarkFigure8_ReplayLengthStairstep(b *testing.B) {
	r := sinkReport(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Rem9ShareLow
	}
	b.ReportMetric(r.Rem9ShareLow*100, "rem9-share-%")
	b.ReportMetric(r.Rem2ShareHigh*100, "rem2-share-%")
	b.ReportMetric(float64(r.ReplayLenMin), "min-replay-len")
	b.ReportMetric(float64(r.ReplayLenMax), "max-replay-len")
}

// BenchmarkFigure9_EntropyReplayRate: replay rate vs entropy.
func BenchmarkFigure9_EntropyReplayRate(b *testing.B) {
	r := sinkReport(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.ReplayRatios
	}
	low := (r.ReplayRatios[2] + r.ReplayRatios[3]) / 2
	b.ReportMetric(r.ReplayRatios[7]/math.Max(low, 1e-9), "H7.5-vs-H3-ratio")
}

// BenchmarkStagedProbing: stage-2 probes appear only after the server
// responds (§4.2).
func BenchmarkStagedProbing(b *testing.B) {
	r := sinkReport(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Stage2AfterSwitch
	}
	b.ReportMetric(float64(r.Stage2BeforeSwitch), "stage2-before")
	b.ReportMetric(float64(r.Stage2AfterSwitch), "stage2-after")
}

// BenchmarkFigure10a_StreamReactions: the stream-cipher reaction matrix.
func BenchmarkFigure10a_StreamReactions(b *testing.B) {
	spec, _ := sscrypto.Lookup("chacha20")
	for i := 0; i < b.N; i++ {
		m, err := probesim.ScanRandom(reaction.LibevOld, spec, "bench-pw", probesim.RandomProbeLengths(), 30, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if m.Cells[9].Dominant() != reaction.RST {
			b.Fatal("len-9 band wrong")
		}
	}
}

// BenchmarkFigure10b_AEADReactions: the AEAD reaction matrix.
func BenchmarkFigure10b_AEADReactions(b *testing.B) {
	spec, _ := sscrypto.Lookup("chacha20-ietf-poly1305")
	for i := 0; i < b.N; i++ {
		m, err := probesim.ScanRandom(reaction.Outline106, spec, "bench-pw", probesim.RandomProbeLengths(), 10, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if m.Cells[50].Dominant() != reaction.FINACK {
			b.Fatal("len-50 band wrong")
		}
	}
}

// BenchmarkTable5_ReplayReactions: replay reactions per implementation.
func BenchmarkTable5_ReplayReactions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := sslab.RunReactionMatrices(sslab.MatrixConfig{Seed: int64(i), Trials: 0})
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Replay) != 9 {
			b.Fatal("replay rows")
		}
	}
}

// BenchmarkFigure11_Brdgrd: probing collapse under first-flight shaping.
func BenchmarkFigure11_Brdgrd(b *testing.B) {
	var off, on float64
	for i := 0; i < b.N; i++ {
		r, err := sslab.RunBrdgrdExperiment(sslab.BrdgrdConfig{
			Seed: int64(i + 1), Hours: 160, OnWindows: [][2]int{{60, 110}},
			GFW: gfw.Config{PoolSize: 3000},
		})
		if err != nil {
			b.Fatal(err)
		}
		off, on = r.MeanRateOff, r.MeanRateOn
	}
	b.ReportMetric(off, "probes/h-off")
	b.ReportMetric(on, "probes/h-on")
}

// BenchmarkBlockingModule: the §6 blocking policy end to end — the
// stream, replay-serving implementations get blocked, the rest survive.
func BenchmarkBlockingModule(b *testing.B) {
	var blocked, survived float64
	for i := 0; i < b.N; i++ {
		r, err := sslab.RunBlockingExperiment(sslab.BlockingConfig{
			Seed: int64(i + 1), Days: 15, Sensitivity: 0.8,
			GFW: gfw.Config{PoolSize: 3000},
		})
		if err != nil {
			b.Fatal(err)
		}
		blocked, survived = 0, 0
		for _, s := range r.Servers {
			if s.Blocked {
				blocked++
			} else {
				survived++
			}
		}
	}
	b.ReportMetric(blocked, "blocked-servers")
	b.ReportMetric(survived, "surviving-servers")
	_ = runBlockingCampaign // kept for the raw-campaign helper benchmark below
}

// BenchmarkBlockingCampaignRaw drives the raw GFW blocking path without
// the experiment harness.
func BenchmarkBlockingCampaignRaw(b *testing.B) {
	events := 0
	for i := 0; i < b.N; i++ {
		events = runBlockingCampaign(int64(i))
	}
	b.ReportMetric(float64(events), "block-events")
}

// --- Ablations ------------------------------------------------------------

// BenchmarkAblationReplayFilters: nonce-only vs timestamp+nonce filters
// against delayed replays spanning a restart.
func BenchmarkAblationReplayFilters(b *testing.B) {
	b.Run("nonce-only", func(b *testing.B) {
		served := benchFilterAblation(b, false)
		b.ReportMetric(served*100, "delayed-replays-served-%")
	})
	b.Run("timestamp", func(b *testing.B) {
		served := benchFilterAblation(b, true)
		b.ReportMetric(served*100, "delayed-replays-served-%")
	})
}

// BenchmarkAblationBloom: replay-filter memory/false-positive trade-off.
func BenchmarkAblationBloom(b *testing.B) {
	for _, fp := range []float64{1e-3, 1e-6} {
		fp := fp
		name := "fp-1e-3"
		if fp == 1e-6 {
			name = "fp-1e-6"
		}
		b.Run(name, func(b *testing.B) {
			f := bloom.New(1<<16, fp)
			buf := make([]byte, 32)
			for i := 0; i < b.N; i++ {
				buf[0], buf[1], buf[2], buf[3] = byte(i), byte(i>>8), byte(i>>16), byte(i>>24)
				f.Add(buf)
				f.Test(buf)
			}
		})
	}
}

// BenchmarkAblationDetectorFeatures: detector with the length or entropy
// feature removed records far more (or fewer) of the wrong payloads.
func BenchmarkAblationDetectorFeatures(b *testing.B) {
	variants := []struct {
		name string
		cfg  gfw.Config
	}{
		{"full", gfw.Config{}},
		{"no-length", gfw.Config{DisableLengthFeature: true}},
		{"no-entropy", gfw.Config{DisableEntropyFeature: true}},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			var recorded float64
			for i := 0; i < b.N; i++ {
				cfg := v.cfg
				cfg.PoolSize = 2000
				r, err := sslab.RunSinkExperiments(sslab.SinkConfig{
					Seed: int64(i + 5), Hours: 20, ConnsPerHour: 1500, GFW: cfg,
				})
				if err != nil {
					b.Fatal(err)
				}
				recorded = float64(r.Rows[0].Probes)
			}
			b.ReportMetric(recorded, "exp1a-probes")
		})
	}
}

// BenchmarkAblationBrdgrdThreshold: sweep the shaping window and find
// where evasion stops working (windows larger than the 160-byte trigger
// floor stop helping).
func BenchmarkAblationBrdgrdThreshold(b *testing.B) {
	for _, win := range []int{8, 64, 128, 256} {
		win := win
		b.Run(fmt.Sprintf("window-%dB", win), func(b *testing.B) {
			var on float64
			for i := 0; i < b.N; i++ {
				r, err := experiment.BrdgrdExperiment(experiment.BrdgrdConfig{
					Seed: int64(i + 1), Hours: 120, OnWindows: [][2]int{{30, 90}},
					ConnsPer5Min: 16, WindowMin: win, WindowMax: win,
					GFW: gfw.Config{PoolSize: 2000},
				})
				if err != nil {
					b.Fatal(err)
				}
				on = r.MeanRateOn
			}
			b.ReportMetric(on, "probes/h-on")
		})
	}
}

// BenchmarkCryptoThroughput: the cipher substrate.
func BenchmarkCryptoThroughput(b *testing.B) {
	for _, method := range []string{"aes-256-gcm", "chacha20-ietf-poly1305"} {
		method := method
		b.Run(method, func(b *testing.B) {
			spec, _ := sscrypto.Lookup(method)
			key := spec.Key("bench")
			subkey := key
			aead, err := spec.NewAEAD(subkey)
			if err != nil {
				b.Fatal(err)
			}
			nonce := make([]byte, aead.NonceSize())
			msg := make([]byte, 1400)
			dst := make([]byte, 0, len(msg)+aead.Overhead())
			b.SetBytes(int64(len(msg)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst = aead.Seal(dst[:0], nonce, msg, nil)
			}
		})
	}
}

// BenchmarkExtensionFPStudy: probing exposure per traffic class (§9).
func BenchmarkExtensionFPStudy(b *testing.B) {
	var ss, tls, http float64
	for i := 0; i < b.N; i++ {
		r, err := sslab.RunFPStudy(sslab.FPStudyConfig{
			Seed: int64(i + 1), FlowsPerKind: 30000, GFW: gfw.Config{PoolSize: 2000},
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range r.Classes {
			switch c.Kind {
			case "shadowsocks":
				ss = c.Rate
			case "direct-tls":
				tls = c.Rate
			case "direct-http":
				http = c.Rate
			}
		}
	}
	b.ReportMetric(ss, "ss-probes/1k")
	b.ReportMetric(tls, "tls-probes/1k")
	b.ReportMetric(http, "http-probes/1k")
}

// BenchmarkExtensionBanStudy: the ideal prober-IP banlist (§3.3).
func BenchmarkExtensionBanStudy(b *testing.B) {
	var dropped float64
	for i := 0; i < b.N; i++ {
		r, err := sslab.RunBanStudy(sslab.BanStudyConfig{
			Seed: int64(i + 1), Triggers: 100000, GFW: gfw.Config{PoolSize: 3000},
		})
		if err != nil {
			b.Fatal(err)
		}
		dropped = r.DroppedShare
	}
	b.ReportMetric(dropped*100, "dropped-%")
}

// BenchmarkExtensionMimicStudy: TLS framing × TLS whitelist (§8 mechanism).
func BenchmarkExtensionMimicStudy(b *testing.B) {
	var framedWL, framedNoWL float64
	for i := 0; i < b.N; i++ {
		r, err := sslab.RunMimicStudy(sslab.MimicStudyConfig{
			Seed: int64(i + 1), Triggers: 40000, GFW: gfw.Config{PoolSize: 2000},
		})
		if err != nil {
			b.Fatal(err)
		}
		framedWL, framedNoWL = float64(r.FramedWL), float64(r.FramedNoWL)
	}
	b.ReportMetric(framedNoWL, "framed-probes-noWL")
	b.ReportMetric(framedWL, "framed-probes-WL")
}

// BenchmarkExtensionProbeCost: probes-to-confirmation per implementation.
func BenchmarkExtensionProbeCost(b *testing.B) {
	var tor, old float64
	for i := 0; i < b.N; i++ {
		r, err := sslab.RunProbeCost(sslab.ProbeCostConfig{Seed: int64(i + 1), Trials: 30})
		if err != nil {
			b.Fatal(err)
		}
		for _, res := range r.Results {
			switch res.Name {
			case "tor-like":
				tor = res.MeanProbes
			case "ss-libev-old stream 8B-IV":
				old = res.MeanProbes
			}
		}
	}
	b.ReportMetric(tor, "tor-probes")
	b.ReportMetric(old, "ss-stream-probes")
}

// --- helpers ---------------------------------------------------------------

// benchFilterAblation measures the fraction of 570-hour-delayed replays
// (spanning a server restart) that each filter kind serves.
func benchFilterAblation(b *testing.B, timed bool) float64 {
	b.Helper()
	served, trials := 0, 0
	t0 := netsim.Epoch
	later := t0.Add(570 * time.Hour)
	for i := 0; i < b.N; i++ {
		nonce := []byte{byte(i), byte(i >> 8), byte(i >> 16), 3}
		var isReplay bool
		if timed {
			tf := replay.NewTimedFilter(2 * time.Minute)
			tf.ReplayAt(nonce, t0, t0) // genuine connection
			// A restart loses nothing the timed filter depends on.
			isReplay = tf.ReplayAt(nonce, t0, later)
		} else {
			nf := replay.NewNonceFilter(1024)
			nf.Replay(nonce, t0) // genuine connection
			nf.Forget()          // server restart before the delayed replay
			isReplay = nf.Replay(nonce, later)
		}
		trials++
		if !isReplay {
			served++
		}
	}
	if trials == 0 {
		return 0
	}
	return float64(served) / float64(trials)
}

// runBlockingCampaign drives genuine traffic at a responding server under
// a maximally sensitive censor and reports the number of block events.
func runBlockingCampaign(seed int64) int {
	sim := sslab.NewSim()
	network := sslab.NewNetwork(sim)
	censor := sslab.NewGFW(sim, network, gfw.Config{Seed: seed, Sensitivity: 1, BlockThreshold: 6, PoolSize: 2000})
	network.AddMiddlebox(censor)

	server := netsim.Endpoint{IP: "178.62.99.1", Port: 8388}
	client := netsim.Endpoint{IP: "150.109.99.1", Port: 40000}
	seen := map[string]bool{}
	network.AddHost(server, netsim.HostFunc(func(f *netsim.Flow) netsim.Outcome {
		if !f.Probe {
			seen[string(f.FirstPayload)] = true
			return netsim.Outcome{Reaction: reaction.Timeout}
		}
		if seen[string(f.FirstPayload)] {
			return netsim.Outcome{Reaction: reaction.Data, ResponseLen: 700}
		}
		return netsim.Outcome{Reaction: reaction.RST}
	}))

	gen := entropy.NewGenerator(seedfork.Fork(seed, "bench.blocking.traffic"))
	sent := 0
	var tick func()
	tick = func() {
		if sent >= 20000 {
			return
		}
		sent++
		network.Connect(client, server, gen.Random(1+gen.Intn(1000)), false, time.Time{})
		sim.After(5*time.Second, tick)
	}
	sim.After(0, tick)
	sim.Run()
	return len(censor.BlockEvents)
}
