package sslab_test

import (
	"encoding/json"
	"os"
	"runtime/debug"
	"testing"
)

// raceEnabled reports whether this test binary was built with the race
// detector, read from the binary's embedded build settings. Race
// instrumentation allocates on paths that are allocation-free in
// normal builds, so the alloc-budget tests — whose budgets are
// calibrated for normal builds and enforced by the CI bench-smoke
// step — skip themselves under -race.
func raceEnabled() bool {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return false
	}
	for _, s := range bi.Settings {
		if s.Key == "-race" {
			return s.Value == "true"
		}
	}
	return false
}

// checkAllocBudgets enforces the allocs/op budgets recorded in one
// BENCH_*.json file: every listed sub-benchmark is run and its measured
// allocations compared against the committed budget. Budgets are
// allocation counts, not timings, so the checks are stable across
// hardware; a regression (a new per-op allocation sneaking into a
// steady-state path) fails here and in the CI bench-smoke job.
func checkAllocBudgets(t *testing.T, file string, benches map[string]func(*testing.B)) {
	t.Helper()
	if raceEnabled() {
		t.Skip("race instrumentation inflates allocation counts; budgets are calibrated for normal builds (enforced by the CI bench-smoke step)")
	}
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatalf("reading budgets: %v", err)
	}
	var doc struct {
		AllocBudgets map[string]int64 `json:"alloc_budgets"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("parsing %s: %v", file, err)
	}
	if len(doc.AllocBudgets) == 0 {
		t.Fatalf("%s has no alloc_budgets", file)
	}
	for name, fn := range benches {
		budget, ok := doc.AllocBudgets[name]
		if !ok {
			t.Errorf("%s: no alloc budget in %s", name, file)
			continue
		}
		res := testing.Benchmark(fn)
		if got := res.AllocsPerOp(); got > budget {
			t.Errorf("%s: %d allocs/op exceeds budget %d (%s)", name, got, budget, res.MemString())
		} else {
			t.Logf("%s: %d allocs/op (budget %d)", name, got, budget)
		}
	}
	for name := range doc.AllocBudgets {
		if _, ok := benches[name]; !ok {
			t.Errorf("%s budgets unknown benchmark %q", file, name)
		}
	}
}

// TestHotPathAllocBudgets enforces BENCH_hotpath.json over the
// steady-state per-flow pipeline benchmarks.
func TestHotPathAllocBudgets(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full benchmarks; skipped with -short")
	}
	checkAllocBudgets(t, "BENCH_hotpath.json", map[string]func(*testing.B){
		"GFWOnFlow":          benchGFWOnFlow,
		"GFWOnFlow3Stage":    benchGFWOnFlow3Stage,
		"GFWFlowBatch":       benchGFWFlowBatch,
		"GFWFlowBatchCached": benchGFWFlowBatchCached,
		"VerdictCacheHit":    benchVerdictCacheHit,
		"DetectorChainSS":    benchDetectorChainSS,
		"DetectorChain3":     benchDetectorChain3,
		"EventDispatch":      benchEventDispatch,
		"StreamConnWrite":    benchStreamConnWrite,
		"AEADConnWrite":      benchAEADConnWrite,
		"AEADSeal":           benchAEADSeal,
		"AEADOpen":           benchAEADOpen,
	})
}

// TestFleetAllocBudgets enforces BENCH_fleet.json over the
// population-scale engine: the timing wheel stays allocation-free in
// steady state, and a complete fixed-seed fleet run stays at its
// deterministic construction-plus-flows allocation count.
func TestFleetAllocBudgets(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full benchmarks; skipped with -short")
	}
	checkAllocBudgets(t, "BENCH_fleet.json", map[string]func(*testing.B){
		"WheelSchedule":   benchWheelSchedule,
		"Run2k":           benchFleetRun2k,
		"Run2kSharded":    benchFleetRun2kSharded,
		"SnapshotSave":    benchSnapshotSave,
		"SnapshotRestore": benchSnapshotRestore,
	})
}

// TestImpairAllocBudgets enforces BENCH_impair.json: the fault-injecting
// Connect path must stay on the ideal path's allocation profile (one
// Flow per connection, nothing from the impairment machinery).
func TestImpairAllocBudgets(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full benchmarks; skipped with -short")
	}
	checkAllocBudgets(t, "BENCH_impair.json", map[string]func(*testing.B){
		"ImpairedConnect": benchImpairedConnect,
	})
}
