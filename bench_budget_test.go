package sslab_test

import (
	"encoding/json"
	"os"
	"testing"
)

// TestHotPathAllocBudgets enforces the allocs/op budgets recorded in
// BENCH_hotpath.json: every BenchmarkHotPath sub-benchmark is run and
// its measured allocations compared against the committed budget.
// Budgets are allocation counts, not timings, so the test is stable
// across hardware; a regression (a new per-op allocation sneaking into
// a steady-state path) fails here and in the CI bench-smoke job.
func TestHotPathAllocBudgets(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full benchmarks; skipped with -short")
	}
	data, err := os.ReadFile("BENCH_hotpath.json")
	if err != nil {
		t.Fatalf("reading budgets: %v", err)
	}
	var doc struct {
		AllocBudgets map[string]int64 `json:"alloc_budgets"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("parsing BENCH_hotpath.json: %v", err)
	}
	benches := map[string]func(*testing.B){
		"GFWOnFlow":       benchGFWOnFlow,
		"EventDispatch":   benchEventDispatch,
		"StreamConnWrite": benchStreamConnWrite,
		"AEADConnWrite":   benchAEADConnWrite,
		"AEADSeal":        benchAEADSeal,
		"AEADOpen":        benchAEADOpen,
	}
	if len(doc.AllocBudgets) == 0 {
		t.Fatal("BENCH_hotpath.json has no alloc_budgets")
	}
	for name, fn := range benches {
		budget, ok := doc.AllocBudgets[name]
		if !ok {
			t.Errorf("%s: no alloc budget in BENCH_hotpath.json", name)
			continue
		}
		res := testing.Benchmark(fn)
		if got := res.AllocsPerOp(); got > budget {
			t.Errorf("%s: %d allocs/op exceeds budget %d (%s)", name, got, budget, res.MemString())
		} else {
			t.Logf("%s: %d allocs/op (budget %d)", name, got, budget)
		}
	}
	for name := range doc.AllocBudgets {
		if _, ok := benches[name]; !ok {
			t.Errorf("BENCH_hotpath.json budgets unknown benchmark %q", name)
		}
	}
}
