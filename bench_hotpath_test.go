// BenchmarkHotPath measures the steady-state per-flow pipeline the
// ROADMAP's "as fast as the hardware allows" goal is gated on: the
// netsim event loop, the GFW's passive OnFlow+detector path, the
// ssproto stream/AEAD framing, and the sscrypto Seal/Open primitives.
//
// Every sub-benchmark reports allocs/op. The budgets live in
// BENCH_hotpath.json and are enforced by TestHotPathAllocBudgets and
// the bench-smoke CI job: steady-state streamConn writes and netsim
// event dispatch must stay at 0 allocs/op.
package sslab_test

import (
	"math/rand"
	"net"
	"testing"
	"time"

	"sslab/internal/detector"
	"sslab/internal/entropy"
	"sslab/internal/gfw"
	"sslab/internal/netsim"
	"sslab/internal/reaction"
	"sslab/internal/sscrypto"
	"sslab/internal/ssproto"
)

func BenchmarkHotPath(b *testing.B) {
	b.Run("GFWOnFlow", benchGFWOnFlow)
	b.Run("GFWOnFlow3Stage", benchGFWOnFlow3Stage)
	b.Run("GFWFlowBatch", benchGFWFlowBatch)
	b.Run("GFWFlowBatchCached", benchGFWFlowBatchCached)
	b.Run("VerdictCacheHit", benchVerdictCacheHit)
	b.Run("DetectorChainSS", benchDetectorChainSS)
	b.Run("DetectorChain3", benchDetectorChain3)
	b.Run("ImpairedConnect", benchImpairedConnect)
	b.Run("EventDispatch", benchEventDispatch)
	b.Run("StreamConnWrite", benchStreamConnWrite)
	b.Run("AEADConnWrite", benchAEADConnWrite)
	b.Run("AEADSeal", benchAEADSeal)
	b.Run("AEADOpen", benchAEADOpen)
}

// benchGFWOnFlow drives the full passive path — Connect → middlebox
// OnFlow → detector → (sometimes) recording + probe scheduling — with a
// realistic first-packet mix: mostly Shadowsocks-like high-entropy
// payloads in the detector's 160–999 support, plus short ACK-ish and
// long out-of-support flows. Probe events are drained as virtual time
// advances, so the event loop and prober pool are part of the cost.
func benchGFWOnFlow(b *testing.B) {
	benchGFWOnFlowChain(b, nil)
}

// benchGFWOnFlow3Stage is the same pipeline with the three-stage passive
// chain (shadowsocks + openvpn + fullyencrypted). The acceptance bound:
// within 2× of the single-stage GFWOnFlow ns/op at the same 1 alloc/op.
func benchGFWOnFlow3Stage(b *testing.B) {
	benchGFWOnFlowChain(b, []string{"shadowsocks", "openvpn", "fullyencrypted"})
}

func benchGFWOnFlowChain(b *testing.B, detectors []string) {
	sim := netsim.NewSim()
	network := netsim.NewNetwork(sim)
	censor := gfw.New(gfw.Env{Sim: sim, Net: network},
		gfw.WithConfig(gfw.Config{Seed: 7, PoolSize: 4000, Detectors: detectors}))
	network.AddMiddlebox(censor)

	server := netsim.Endpoint{IP: "178.62.10.1", Port: 8388}
	client := netsim.Endpoint{IP: "150.109.20.2", Port: 40001}
	seen := map[string]bool{}
	network.AddHost(server, netsim.HostFunc(func(f *netsim.Flow) netsim.Outcome {
		if !f.Probe {
			// Lookup before insert: the payload set is small and a map
			// lookup keyed on string(bytes) does not allocate, so the
			// host stays out of the benchmark's allocation profile.
			if !seen[string(f.FirstPayload)] {
				seen[string(f.FirstPayload)] = true
			}
			return netsim.Outcome{Reaction: reaction.Timeout}
		}
		if seen[string(f.FirstPayload)] {
			return netsim.Outcome{Reaction: reaction.Data, ResponseLen: 600}
		}
		return netsim.Outcome{Reaction: reaction.RST}
	}))

	payloads := benchPayloadMix()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		network.Connect(client, server, payloads[i%len(payloads)], false, time.Time{})
		if i%4096 == 4095 {
			// Advance virtual time so scheduled probes fire and the
			// event heap stays bounded.
			sim.RunUntil(sim.Now().Add(time.Hour))
		}
	}
	sim.Run()
	b.ReportMetric(float64(censor.ProbesSent)/float64(b.N), "probes/flow")
}

// benchGFWFlowBatch drives the same full passive pipeline through the
// batched ingestion path: 512-spec ConnectBatch calls feeding the
// censor's OnFlowBatch, probes drained between batches. Eliminating the
// per-flow netsim.Flow allocation is the point — budget 0 allocs/op
// (recordings and probes amortize to a rounding-error fraction).
func benchGFWFlowBatch(b *testing.B) {
	benchGFWBatchChain(b, 0)
}

// benchGFWFlowBatchCached is the batched pipeline with the verdict
// cache in front of the chain — the two-tier fast path end to end. The
// 1024-payload mix fits the cache, so steady state is all hits.
func benchGFWFlowBatchCached(b *testing.B) {
	benchGFWBatchChain(b, 8192)
}

func benchGFWBatchChain(b *testing.B, cacheEntries int) {
	sim := netsim.NewSim()
	network := netsim.NewNetwork(sim)
	censor := gfw.New(gfw.Env{Sim: sim, Net: network},
		gfw.WithConfig(gfw.Config{Seed: 7, PoolSize: 4000, VerdictCache: cacheEntries}))
	network.AddMiddlebox(censor)

	server := netsim.Endpoint{IP: "178.62.10.1", Port: 8388}
	client := netsim.Endpoint{IP: "150.109.20.2", Port: 40001}
	seen := map[string]bool{}
	network.AddHost(server, netsim.HostFunc(func(f *netsim.Flow) netsim.Outcome {
		if !f.Probe {
			if !seen[string(f.FirstPayload)] {
				seen[string(f.FirstPayload)] = true
			}
			return netsim.Outcome{Reaction: reaction.Timeout}
		}
		if seen[string(f.FirstPayload)] {
			return netsim.Outcome{Reaction: reaction.Data, ResponseLen: 600}
		}
		return netsim.Outcome{Reaction: reaction.RST}
	}))

	payloads := benchPayloadMix()
	const batch = 512
	specs := make([]netsim.FlowSpec, batch)
	outs := make([]netsim.Outcome, 0, batch)
	idx := 0
	fill := func() {
		for i := range specs {
			specs[i] = netsim.FlowSpec{Client: client, Server: server, FirstPayload: payloads[idx%len(payloads)]}
			idx++
		}
	}
	// Warm the flow arena (and, when enabled, the verdict cache) so the
	// timer sees steady state.
	for w := 0; w < 2; w++ {
		fill()
		outs = network.ConnectBatch(specs, outs[:0])
		sim.RunUntil(sim.Now().Add(time.Hour))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += batch {
		fill()
		outs = network.ConnectBatch(specs, outs[:0])
		sim.RunUntil(sim.Now().Add(time.Hour))
	}
	sim.Run()
	b.ReportMetric(float64(censor.ProbesSent)/float64(b.N), "probes/flow")
}

// benchVerdictCacheHit isolates the cached-flow verdict path: every
// payload in the mix is already memoized, so each call is fingerprint +
// set probe, skipping the chain walk entirely. The acceptance bound:
// ≥5× faster than DetectorChainSS (the uncached walk over the same
// mix) at 0 allocs/op.
func benchVerdictCacheHit(b *testing.B) {
	sim := netsim.NewSim()
	network := netsim.NewNetwork(sim)
	censor := gfw.New(gfw.Env{Sim: sim, Net: network},
		gfw.WithConfig(gfw.Config{Seed: 7, VerdictCache: 8192}))

	server := netsim.Endpoint{IP: "178.62.10.1", Port: 8388}
	payloads := benchPayloadMix()
	f := &netsim.Flow{Server: server}
	for _, p := range payloads { // warm: memoize the whole mix
		f.FirstPayload = p
		censor.PassiveVerdict(f)
	}
	suspects := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.FirstPayload = payloads[i%len(payloads)]
		if _, res := censor.PassiveVerdict(f); res.Verdict == detector.Suspect {
			suspects++
		}
	}
	b.StopTimer()
	hits, misses, _ := censor.CacheStats()
	if b.N > 1024 && suspects == 0 {
		b.Fatal("cached verdicts never flagged the Shadowsocks-shaped mix")
	}
	if misses > int64(len(payloads)) {
		b.Fatalf("cache thrashing: %d misses for a %d-payload mix (%d hits)", misses, len(payloads), hits)
	}
}

// benchPayloadMix builds the first-packet mix the GFW benches drive: 70%
// Shadowsocks-shaped (high entropy, lengths in the detector support),
// 15% short low-entropy, 15% long out-of-support — roughly the border
// mix the FPStudy models.
func benchPayloadMix() [][]byte {
	gen := entropy.NewGenerator(11)
	lenRng := rand.New(rand.NewSource(13))
	payloads := make([][]byte, 1024)
	for i := range payloads {
		switch {
		case i%20 < 14:
			payloads[i] = gen.Random(160 + lenRng.Intn(840))
		case i%20 < 17:
			payloads[i] = gen.Payload(20+lenRng.Intn(100), 3.0)
		default:
			payloads[i] = gen.Random(1000 + lenRng.Intn(500))
		}
	}
	return payloads
}

// benchDetectorChainSS isolates the detector chain itself — no network,
// no prober — with the classic single-stage chain over the same payload
// mix. Budget: 0 allocs/op.
func benchDetectorChainSS(b *testing.B) {
	benchDetectorChain(b, []string{"shadowsocks"})
}

// benchDetectorChain3 is the three-stage chain (shadowsocks + openvpn +
// fullyencrypted) over the same mix. Budget: 0 allocs/op.
func benchDetectorChain3(b *testing.B) {
	benchDetectorChain(b, []string{"shadowsocks", "openvpn", "fullyencrypted"})
}

func benchDetectorChain(b *testing.B, names []string) {
	chain := detector.MustChain(names, detector.Params{Base: 0.04})
	payloads := benchPayloadMix()
	f := &netsim.Flow{}
	suspects := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.FirstPayload = payloads[i%len(payloads)]
		if _, res := chain.Observe(f); res.Verdict == detector.Suspect {
			suspects++
		}
	}
	if b.N > 1024 && suspects == 0 {
		b.Fatal("chain never flagged the Shadowsocks-shaped mix")
	}
}

// benchImpairedConnect drives Connect down the impaired path: every
// directed link carries latency, jitter, i.i.d. loss with retries, and
// occasional reordering. Arrival times are computed, not scheduled, so
// the budget in BENCH_impair.json holds this path to the same standard
// as the ideal one: no per-flow allocations.
func benchImpairedConnect(b *testing.B) {
	sim := netsim.NewSim(netsim.WithSeed(5))
	network := netsim.NewNetwork(sim, netsim.WithDefaultLink(netsim.LinkProfile{
		LatencyBase:   30 * time.Millisecond,
		Jitter:        10 * time.Millisecond,
		Loss:          0.01,
		ReorderProb:   0.01,
		ReorderWindow: 20 * time.Millisecond,
	}))
	server := netsim.Endpoint{IP: "178.62.10.1", Port: 8388}
	client := netsim.Endpoint{IP: "150.109.20.2", Port: 40001}
	network.AddHost(server, netsim.HostFunc(func(f *netsim.Flow) netsim.Outcome {
		return netsim.Outcome{Reaction: reaction.Data, ResponseLen: 600}
	}))
	payload := entropy.NewGenerator(3).Random(400)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		network.Connect(client, server, payload, false, time.Time{})
	}
}

// benchEventDispatch measures the scheduler alone: schedule + dispatch
// of the common After case with a pre-bound callback, in batches, the
// way the GFW schedules probe batches.
func benchEventDispatch(b *testing.B) {
	sim := netsim.NewSim()
	dispatched := 0
	fn := func() { dispatched++ }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.After(time.Duration(i%512)*time.Microsecond, fn)
		if i%512 == 511 {
			sim.Run()
		}
	}
	sim.Run()
	if dispatched != b.N {
		b.Fatalf("dispatched %d of %d events", dispatched, b.N)
	}
}

// discardConn is a net.Conn whose writes vanish without allocating.
type discardConn struct{ net.Conn }

func (discardConn) Write(p []byte) (int, error) { return len(p), nil }
func (discardConn) Read(p []byte) (int, error)  { return 0, nil }
func (discardConn) SetDeadline(time.Time) error { return nil }
func (discardConn) Close() error                { return nil }
func (discardConn) LocalAddr() net.Addr         { return nil }
func (discardConn) RemoteAddr() net.Addr        { return nil }

// benchStreamConnWrite: steady-state relay writes through the stream
// construction (the IV flight is done before the timer starts).
func benchStreamConnWrite(b *testing.B) {
	spec, err := sscrypto.Lookup("aes-256-ctr")
	if err != nil {
		b.Fatal(err)
	}
	key := spec.Key("bench-pw")
	conn := ssproto.NewConnWithRand(discardConn{}, spec, key, rand.New(rand.NewSource(1)))
	buf := make([]byte, 1400)
	if _, err := conn.Write(buf); err != nil { // first write: IV path
		b.Fatal(err)
	}
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := conn.Write(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// benchAEADConnWrite: steady-state relay writes through the AEAD
// construction (salt flight done before the timer starts).
func benchAEADConnWrite(b *testing.B) {
	spec, err := sscrypto.Lookup("chacha20-ietf-poly1305")
	if err != nil {
		b.Fatal(err)
	}
	key := spec.Key("bench-pw")
	conn := ssproto.NewConnWithRand(discardConn{}, spec, key, rand.New(rand.NewSource(1)))
	buf := make([]byte, 1400)
	if _, err := conn.Write(buf); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := conn.Write(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// benchAEADSeal: the sscrypto chacha20-ietf-poly1305 Seal primitive
// with a reused destination buffer — the per-chunk cost of every AEAD
// relay direction.
func benchAEADSeal(b *testing.B) {
	spec, _ := sscrypto.Lookup("chacha20-ietf-poly1305")
	key := spec.Key("bench-pw")
	aead, err := spec.NewAEAD(sscrypto.SessionSubkey(key, make([]byte, spec.SaltSize())))
	if err != nil {
		b.Fatal(err)
	}
	nonce := make([]byte, aead.NonceSize())
	msg := make([]byte, 1400)
	dst := make([]byte, 0, len(msg)+aead.Overhead())
	b.SetBytes(int64(len(msg)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = aead.Seal(dst[:0], nonce, msg, nil)
	}
}

// benchAEADOpen: the matching Open with a reused destination buffer.
func benchAEADOpen(b *testing.B) {
	spec, _ := sscrypto.Lookup("chacha20-ietf-poly1305")
	key := spec.Key("bench-pw")
	aead, err := spec.NewAEAD(sscrypto.SessionSubkey(key, make([]byte, spec.SaltSize())))
	if err != nil {
		b.Fatal(err)
	}
	nonce := make([]byte, aead.NonceSize())
	msg := make([]byte, 1400)
	ct := aead.Seal(nil, nonce, msg, nil)
	dst := make([]byte, 0, len(msg))
	b.SetBytes(int64(len(msg)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		dst, err = aead.Open(dst[:0], nonce, ct, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
}
