package ssproto

import (
	"math/rand"
	"testing"

	"sslab/internal/sscrypto"
)

// Steady-state relay writes are the per-packet hot path of both proxy
// directions; these tests pin them at zero heap allocations so a buffer
// regression fails fast instead of surfacing as a throughput cliff.

func TestStreamWriteAllocFree(t *testing.T) {
	spec, err := sscrypto.Lookup("aes-256-ctr")
	if err != nil {
		t.Fatal(err)
	}
	conn := NewConnWithRand(discardConn{}, spec, spec.Key("pw"), rand.New(rand.NewSource(1)))
	buf := make([]byte, 1400)
	if _, err := conn.Write(buf); err != nil { // IV flight, allowed to allocate
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		if _, err := conn.Write(buf); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("steady-state streamConn.Write allocates %.1f times per call, want 0", allocs)
	}
}

func TestAEADWriteAllocFree(t *testing.T) {
	spec, err := sscrypto.Lookup("chacha20-ietf-poly1305")
	if err != nil {
		t.Fatal(err)
	}
	conn := NewConnWithRand(discardConn{}, spec, spec.Key("pw"), rand.New(rand.NewSource(1)))
	buf := make([]byte, 1400)
	if _, err := conn.Write(buf); err != nil { // salt flight, allowed to allocate
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		if _, err := conn.Write(buf); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("steady-state aeadConn.Write allocates %.1f times per call, want 0", allocs)
	}
}
