package ssproto

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"net"
	"testing"
	"testing/quick"

	"sslab/internal/entropy"
	"sslab/internal/sscrypto"
)

func pipePair(t *testing.T, method string) (client, server Conn) {
	t.Helper()
	spec, err := sscrypto.Lookup(method)
	if err != nil {
		t.Fatal(err)
	}
	key := spec.Key("test-password")
	a, b := net.Pipe()
	return NewConn(a, spec, key), NewConn(b, spec, key)
}

// TestRoundTripAllMethods sends data both directions under every method.
func TestRoundTripAllMethods(t *testing.T) {
	for _, method := range sscrypto.Methods() {
		method := method
		t.Run(method, func(t *testing.T) {
			t.Parallel()
			client, server := pipePair(t, method)
			defer client.Close()
			defer server.Close()

			req := []byte("GET / HTTP/1.1\r\nHost: wikipedia.org\r\n\r\n")
			resp := bytes.Repeat([]byte("response data! "), 100)

			errc := make(chan error, 1)
			go func() {
				buf := make([]byte, len(req))
				if _, err := io.ReadFull(server, buf); err != nil {
					errc <- err
					return
				}
				if !bytes.Equal(buf, req) {
					errc <- errors.New("server saw wrong request")
					return
				}
				_, err := server.Write(resp)
				errc <- err
			}()

			if _, err := client.Write(req); err != nil {
				t.Fatalf("client write: %v", err)
			}
			got := make([]byte, len(resp))
			if _, err := io.ReadFull(client, got); err != nil {
				t.Fatalf("client read: %v", err)
			}
			if !bytes.Equal(got, resp) {
				t.Error("client saw wrong response")
			}
			if err := <-errc; err != nil {
				t.Fatalf("server: %v", err)
			}
		})
	}
}

// rawRecorder captures what actually goes on the wire.
type rawRecorder struct {
	net.Conn
	segments [][]byte
}

func (r *rawRecorder) Write(p []byte) (int, error) {
	r.segments = append(r.segments, append([]byte(nil), p...))
	return r.Conn.Write(p)
}

// TestFirstPacketShape verifies the first client flight is one segment of
// [IV||ciphertext] (stream) or [salt||len|tag||payload|tag] (AEAD) — the
// exact packet the GFW's detector measures. The expected sizes are the
// ones §4.2 derives: payload + IV for stream; payload + salt + 2 + 2*16
// for AEAD.
func TestFirstPacketShape(t *testing.T) {
	payload := make([]byte, 120)
	for _, tc := range []struct {
		method   string
		wireSize int
	}{
		{"aes-256-ctr", 16 + 120},
		{"chacha20-ietf", 12 + 120},
		{"chacha20", 8 + 120},
		{"aes-128-gcm", 16 + 2 + 16 + 120 + 16},
		{"chacha20-ietf-poly1305", 32 + 2 + 16 + 120 + 16},
	} {
		spec, _ := sscrypto.Lookup(tc.method)
		key := spec.Key("pw")
		a, b := net.Pipe()
		rec := &rawRecorder{Conn: a}
		client := NewConn(rec, spec, key)
		go io.Copy(io.Discard, b)
		if _, err := client.Write(payload); err != nil {
			t.Fatalf("%s: %v", tc.method, err)
		}
		if len(rec.segments) != 1 {
			t.Errorf("%s: first flight split into %d segments", tc.method, len(rec.segments))
			continue
		}
		if got := len(rec.segments[0]); got != tc.wireSize {
			t.Errorf("%s: first packet %d bytes, want %d", tc.method, got, tc.wireSize)
		}
		a.Close()
		b.Close()
	}
}

// TestWireLooksRandom verifies the on-the-wire bytes have near-uniform
// entropy — the property that makes Shadowsocks traffic match the GFW's
// high-entropy trigger in the first place.
func TestWireLooksRandom(t *testing.T) {
	spec, _ := sscrypto.Lookup("aes-256-gcm")
	key := spec.Key("pw")
	a, b := net.Pipe()
	rec := &rawRecorder{Conn: a}
	client := NewConn(rec, spec, key)
	go io.Copy(io.Discard, b)

	// Low-entropy plaintext must still yield high-entropy ciphertext.
	if _, err := client.Write(bytes.Repeat([]byte{'A'}, 2000)); err != nil {
		t.Fatal(err)
	}
	wire := rec.segments[0]
	if h := entropy.Shannon(wire); h < 7.5 {
		t.Errorf("wire entropy %.2f, want >= 7.5", h)
	}
	a.Close()
	b.Close()
}

// TestAEADChunking verifies payloads larger than one chunk round-trip.
func TestAEADChunking(t *testing.T) {
	client, server := pipePair(t, "chacha20-ietf-poly1305")
	defer client.Close()
	defer server.Close()

	big := make([]byte, MaxChunkPayload*2+7)
	rand.New(rand.NewSource(9)).Read(big)

	go client.Write(big)
	got := make([]byte, len(big))
	if _, err := io.ReadFull(server, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, big) {
		t.Error("multi-chunk payload corrupted")
	}
}

// TestAEADTamperDetected flips one wire byte and expects ErrAuth.
func TestAEADTamperDetected(t *testing.T) {
	spec, _ := sscrypto.Lookup("aes-256-gcm")
	key := spec.Key("pw")
	a, b := net.Pipe()
	server := NewConn(b, spec, key)

	go func() {
		// Build a valid wire image out of band and corrupt it before the
		// server sees it.
		rec := &rawRecorder{Conn: discardConn{}}
		c2 := NewConn(rec, spec, key)
		c2.Write([]byte("hello world"))
		wire := rec.segments[0]
		wire[len(wire)-1] ^= 0x01 // corrupt the payload tag
		a.Write(wire)
	}()

	buf := make([]byte, 64)
	_, err := server.Read(buf)
	if !errors.Is(err, ErrAuth) {
		t.Errorf("tampered chunk: err = %v, want ErrAuth", err)
	}
}

type discardConn struct{ net.Conn }

func (discardConn) Write(p []byte) (int, error) { return len(p), nil }

// TestSaltVisibility checks Salt/PeerSalt bookkeeping used by the replay
// filters and the prober simulator.
func TestSaltVisibility(t *testing.T) {
	client, server := pipePair(t, "aes-128-gcm")
	defer client.Close()
	defer server.Close()

	if client.Salt() != nil || server.PeerSalt() != nil {
		t.Error("salts non-nil before first write")
	}
	go client.Write([]byte("x"))
	buf := make([]byte, 1)
	if _, err := io.ReadFull(server, buf); err != nil {
		t.Fatal(err)
	}
	if client.Salt() == nil || server.PeerSalt() == nil {
		t.Fatal("salts not recorded")
	}
	if !bytes.Equal(client.Salt(), server.PeerSalt()) {
		t.Error("server saw a different salt than the client sent")
	}
	if len(client.Salt()) != 16 {
		t.Errorf("aes-128-gcm salt length %d, want 16", len(client.Salt()))
	}
}

// TestStreamNoIntegrity documents the stream construction's malleability:
// flipping a ciphertext bit flips the plaintext bit without any error —
// the root cause of probe types R2–R5.
func TestStreamNoIntegrity(t *testing.T) {
	spec, _ := sscrypto.Lookup("aes-256-ctr")
	key := spec.Key("pw")
	a, b := net.Pipe()
	server := NewConn(b, spec, key)

	go func() {
		rec := &rawRecorder{Conn: discardConn{}}
		c2 := NewConn(rec, spec, key)
		c2.Write([]byte{0x01, 10, 0, 0, 1, 0, 80}) // IPv4 target spec
		wire := rec.segments[0]
		wire[len(wire)-7] ^= 0x10 // flip a bit in the address-type byte
		a.Write(wire)
	}()

	buf := make([]byte, 7)
	if _, err := io.ReadFull(server, buf); err != nil {
		t.Fatalf("stream read failed: %v", err)
	}
	if buf[0] != 0x01^0x10 {
		t.Errorf("bit flip did not propagate: first byte %#x", buf[0])
	}
}

func BenchmarkAEADThroughput(b *testing.B) {
	spec, _ := sscrypto.Lookup("chacha20-ietf-poly1305")
	key := spec.Key("pw")
	a, bb := net.Pipe()
	client := NewConn(a, spec, key)
	server := NewConn(bb, spec, key)
	go func() {
		buf := make([]byte, 64*1024)
		for {
			if _, err := server.Read(buf); err != nil {
				return
			}
		}
	}()
	msg := make([]byte, 16*1024)
	b.SetBytes(int64(len(msg)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Write(msg); err != nil {
			b.Fatal(err)
		}
	}
	a.Close()
	bb.Close()
}

// TestQuickRoundTripArbitraryWrites property-tests the AEAD codec: any
// sequence of writes is received as the same concatenated byte stream.
func TestQuickRoundTripArbitraryWrites(t *testing.T) {
	spec, _ := sscrypto.Lookup("aes-128-gcm")
	key := spec.Key("quick-pw")
	f := func(chunks [][]byte) bool {
		var want []byte
		total := 0
		for _, c := range chunks {
			if total += len(c); total > 1<<18 {
				return true // keep the test fast
			}
			want = append(want, c...)
		}
		a, b := net.Pipe()
		defer a.Close()
		defer b.Close()
		client := NewConn(a, spec, key)
		server := NewConn(b, spec, key)
		go func() {
			for _, c := range chunks {
				if len(c) == 0 {
					continue
				}
				if _, err := client.Write(c); err != nil {
					return
				}
			}
			a.Close()
		}()
		got := make([]byte, 0, len(want))
		buf := make([]byte, 4096)
		for len(got) < len(want) {
			n, err := server.Read(buf)
			got = append(got, buf[:n]...)
			if err != nil {
				break
			}
		}
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
