package ssproto

import (
	"bytes"
	"io"
	"math/rand"
	"net"
	"testing"

	"sslab/internal/socks"
	"sslab/internal/sscrypto"
)

// fuzzConn is a net.Conn over in-memory buffers: reads come from r,
// writes go to w (or are discarded). Only the methods the ssproto
// framing uses are live.
type fuzzConn struct {
	net.Conn
	r io.Reader
	w io.Writer
}

func (c fuzzConn) Read(p []byte) (int, error) {
	if c.r == nil {
		return 0, io.EOF
	}
	return c.r.Read(p)
}

func (c fuzzConn) Write(p []byte) (int, error) {
	if c.w == nil {
		return len(p), nil
	}
	return c.w.Write(p)
}

// fuzzMethods covers one stream construction and one AEAD construction —
// the two wire formats UnpackUDP has to parse.
var fuzzMethods = []string{"aes-256-cfb", "chacha20-ietf-poly1305"}

// FuzzUnpackUDP feeds arbitrary datagrams to the UDP parser — the path
// a live server runs on every packet the GFW (or anyone) sends it.
// Invariants: no panic, and for AEAD methods a forged packet must never
// authenticate.
func FuzzUnpackUDP(f *testing.F) {
	specs := make([]sscrypto.Spec, len(fuzzMethods))
	keys := make([][]byte, len(fuzzMethods))
	for i, m := range fuzzMethods {
		spec, err := sscrypto.Lookup(m)
		if err != nil {
			f.Fatal(err)
		}
		specs[i], keys[i] = spec, spec.Key("fuzz-pw")
	}

	// Seeds: a genuine packet per method, truncations, and noise.
	target := socks.Addr{Type: socks.AtypIPv4, IP: []byte{10, 0, 0, 1}, Port: 53}
	for i, spec := range specs {
		pkt, err := PackUDPWithRand(spec, keys[i], target, []byte("hello"), rand.New(rand.NewSource(1)))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(pkt)
		f.Add(pkt[:len(pkt)/2])
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xaa}, 100))

	f.Fuzz(func(t *testing.T, pkt []byte) {
		for i, spec := range specs {
			gotTarget, payload, err := UnpackUDP(spec, keys[i], pkt)
			if err != nil {
				continue
			}
			if spec.Kind == sscrypto.AEAD {
				// Authentication passed: the packet must round-trip through
				// the parsed target/payload (i.e. it is a well-formed packet,
				// not a forgery the AEAD let through).
				if gotTarget.String() == "" {
					t.Fatalf("%s: accepted packet with empty target", spec.Name)
				}
			}
			_ = payload
		}
	})
}

// FuzzPackUnpackUDP checks the encrypt→decrypt round trip for arbitrary
// payloads and ports across both constructions.
func FuzzPackUnpackUDP(f *testing.F) {
	f.Add([]byte("GET / HTTP/1.1\r\n"), uint16(80))
	f.Add([]byte{}, uint16(0))
	f.Add(bytes.Repeat([]byte{0}, 1400), uint16(65535))

	f.Fuzz(func(t *testing.T, payload []byte, port uint16) {
		target := socks.Addr{Type: socks.AtypIPv4, IP: []byte{192, 0, 2, 7}, Port: port}
		for _, m := range fuzzMethods {
			spec, err := sscrypto.Lookup(m)
			if err != nil {
				t.Fatal(err)
			}
			key := spec.Key("fuzz-pw")
			pkt, err := PackUDPWithRand(spec, key, target, payload, rand.New(rand.NewSource(2)))
			if err != nil {
				t.Fatalf("%s: pack: %v", m, err)
			}
			back, got, err := UnpackUDP(spec, key, pkt)
			if err != nil {
				t.Fatalf("%s: unpack of own packet: %v", m, err)
			}
			if back.String() != target.String() {
				t.Fatalf("%s: target %v -> %v", m, target, back)
			}
			if !bytes.Equal(got, payload) {
				t.Fatalf("%s: payload changed after round trip", m)
			}
		}
	})
}

// FuzzAEADConnRead feeds an arbitrary wire stream to the AEAD framing
// parser (salt, sealed length, sealed payload) through the Conn
// interface. It must never panic and never return data from a stream
// that fails authentication.
func FuzzAEADConnRead(f *testing.F) {
	spec, err := sscrypto.Lookup("chacha20-ietf-poly1305")
	if err != nil {
		f.Fatal(err)
	}
	key := spec.Key("fuzz-pw")

	// Seed: a genuine two-chunk stream, then mutations of it.
	var wire bytes.Buffer
	enc := NewConnWithRand(fuzzConn{w: &wire}, spec, key, rand.New(rand.NewSource(3)))
	if _, err := enc.Write([]byte("first chunk")); err != nil {
		f.Fatal(err)
	}
	if _, err := enc.Write(bytes.Repeat([]byte{7}, 500)); err != nil {
		f.Fatal(err)
	}
	good := wire.Bytes()
	f.Add(good)
	f.Add(good[:len(good)-1])
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, stream []byte) {
		c := NewConn(fuzzConn{r: bytes.NewReader(stream)}, spec, key)
		buf := make([]byte, 4096)
		total := 0
		for {
			n, err := c.Read(buf)
			total += n
			if err != nil {
				return
			}
			if total > len(stream) {
				t.Fatalf("decrypted %d bytes from a %d-byte wire stream", total, len(stream))
			}
		}
	})
}
