// Package ssproto implements the Shadowsocks wire protocol over net.Conn:
// the deprecated stream-cipher construction
//
//	[variable-length IV][encrypted payload...]
//
// and the AEAD construction
//
//	[variable-length salt]
//	[2-byte encrypted length][16-byte length tag]
//	[encrypted payload][16-byte payload tag]
//	...
//
// exactly as described in §2 of the paper and the Shadowsocks whitepaper.
// NewConn wraps a transport connection in whichever construction the cipher
// spec selects; the result is a net.Conn carrying plaintext whose ciphertext
// on the wire is indistinguishable from random bytes.
package ssproto

import (
	"crypto/rand"
	"io"
	"net"

	"sslab/internal/sscrypto"
)

// MaxChunkPayload is the maximum plaintext length of one AEAD chunk; the
// two length bytes encode at most 0x3FFF.
const MaxChunkPayload = 0x3FFF

// Conn is a Shadowsocks-encrypted connection.
type Conn interface {
	net.Conn
	// Salt returns the IV or salt this side sent (nil until first write).
	Salt() []byte
	// PeerSalt returns the IV or salt received from the peer (nil until
	// first read).
	PeerSalt() []byte
}

// NewConn wraps transport in the construction selected by spec, keyed by
// masterKey. The same call serves both client and server: each direction
// has its own independently derived IV/salt.
func NewConn(transport net.Conn, spec sscrypto.Spec, masterKey []byte) Conn {
	if spec.Kind == sscrypto.Stream {
		return &streamConn{Conn: transport, spec: spec, key: masterKey, rand: rand.Reader}
	}
	return &aeadConn{Conn: transport, spec: spec, key: masterKey, rand: rand.Reader}
}

// NewConnWithRand is NewConn with explicit IV/salt randomness, for
// deterministic tests and for the prober simulator's replay recording.
func NewConnWithRand(transport net.Conn, spec sscrypto.Spec, masterKey []byte, rnd io.Reader) Conn {
	if spec.Kind == sscrypto.Stream {
		return &streamConn{Conn: transport, spec: spec, key: masterKey, rand: rnd}
	}
	return &aeadConn{Conn: transport, spec: spec, key: masterKey, rand: rnd}
}
