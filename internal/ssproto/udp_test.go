package ssproto

import (
	"bytes"
	"errors"
	"testing"

	"sslab/internal/socks"
	"sslab/internal/sscrypto"
)

func TestUDPPackUnpackAllMethods(t *testing.T) {
	target, _ := socks.ParseAddr("8.8.8.8:53")
	payload := []byte("\x12\x34\x01\x00dns query bytes")
	for _, method := range sscrypto.Methods() {
		spec, _ := sscrypto.Lookup(method)
		key := spec.Key("udp-pw")
		pkt, err := PackUDP(spec, key, target, payload)
		if err != nil {
			t.Fatalf("%s: pack: %v", method, err)
		}
		gotAddr, gotPayload, err := UnpackUDP(spec, key, pkt)
		if err != nil {
			t.Fatalf("%s: unpack: %v", method, err)
		}
		if gotAddr.String() != target.String() {
			t.Errorf("%s: target %v", method, gotAddr)
		}
		if !bytes.Equal(gotPayload, payload) {
			t.Errorf("%s: payload corrupted", method)
		}
	}
}

// TestUDPFreshSaltPerPacket: two packs of the same datagram must differ
// entirely (fresh IV/salt each time).
func TestUDPFreshSaltPerPacket(t *testing.T) {
	spec, _ := sscrypto.Lookup("aes-256-gcm")
	key := spec.Key("udp-pw")
	target, _ := socks.ParseAddr("1.1.1.1:53")
	a, _ := PackUDP(spec, key, target, []byte("q"))
	b, _ := PackUDP(spec, key, target, []byte("q"))
	if bytes.Equal(a, b) {
		t.Fatal("identical packets; IV/salt reuse")
	}
	if bytes.Equal(a[:spec.SaltSize()], b[:spec.SaltSize()]) {
		t.Fatal("salt reused")
	}
}

func TestUDPUnpackErrors(t *testing.T) {
	spec, _ := sscrypto.Lookup("chacha20-ietf-poly1305")
	key := spec.Key("udp-pw")

	// Too short.
	if _, _, err := UnpackUDP(spec, key, make([]byte, spec.SaltSize())); !errors.Is(err, ErrUDPPacket) {
		t.Error("short packet accepted")
	}
	// Random bytes: authentication failure.
	junk := make([]byte, 200)
	for i := range junk {
		junk[i] = byte(i * 11)
	}
	if _, _, err := UnpackUDP(spec, key, junk); !errors.Is(err, ErrUDPPacket) {
		t.Error("unauthenticated packet accepted")
	}
	// Tampered packet.
	target, _ := socks.ParseAddr("9.9.9.9:53")
	pkt, _ := PackUDP(spec, key, target, []byte("payload"))
	pkt[len(pkt)-1] ^= 1
	if _, _, err := UnpackUDP(spec, key, pkt); !errors.Is(err, ErrUDPPacket) {
		t.Error("tampered packet accepted")
	}
	// Wrong key.
	pkt2, _ := PackUDP(spec, key, target, []byte("payload"))
	other := spec.Key("different")
	if _, _, err := UnpackUDP(spec, other, pkt2); !errors.Is(err, ErrUDPPacket) {
		t.Error("wrong-key packet accepted")
	}
}

// TestUDPStreamNoAuth documents that stream-cipher UDP has no integrity:
// a tampered packet decrypts to garbage rather than failing, unless the
// target spec happens to break.
func TestUDPStreamNoAuth(t *testing.T) {
	spec, _ := sscrypto.Lookup("aes-256-ctr")
	key := spec.Key("udp-pw")
	target, _ := socks.ParseAddr("8.8.4.4:53")
	pkt, _ := PackUDP(spec, key, target, []byte("data"))
	// Flip a payload bit (past IV + spec).
	pkt[len(pkt)-1] ^= 0x01
	_, payload, err := UnpackUDP(spec, key, pkt)
	if err != nil {
		t.Skip("tamper happened to corrupt the target spec")
	}
	if bytes.Equal(payload, []byte("data")) {
		t.Error("payload unchanged after tamper")
	}
}
