package ssproto

import (
	"crypto/cipher"
	"io"
	"net"

	"sslab/internal/sscrypto"
)

// streamConn implements the stream-cipher construction. Each direction is
// one long ciphertext preceded by that direction's IV. There is no
// integrity protection: flipping a ciphertext bit flips the corresponding
// plaintext bit, which is what makes the byte-changed replay probes of
// §3.2 (types R2–R5) informative against stream-cipher servers.
type streamConn struct {
	net.Conn
	spec sscrypto.Spec
	key  []byte
	rand io.Reader

	wStream cipher.Stream
	rStream cipher.Stream
	wIV     []byte
	rIV     []byte

	wBuf []byte // reused ciphertext scratch: steady-state writes don't allocate
}

func (c *streamConn) Salt() []byte     { return c.wIV }
func (c *streamConn) PeerSalt() []byte { return c.rIV }

// Write encrypts p and writes it; the first Write also generates and
// prepends this direction's IV in the same segment, so the first
// data-carrying packet on the wire is [IV][ciphertext] — the packet whose
// length and entropy the GFW's passive detector inspects.
//
//sslab:hotpath
func (c *streamConn) Write(p []byte) (int, error) {
	if c.wStream == nil {
		iv := make([]byte, c.spec.IVSize)
		if _, err := io.ReadFull(c.rand, iv); err != nil {
			return 0, err
		}
		s, err := c.spec.NewStream(c.key, iv)
		if err != nil {
			return 0, err
		}
		c.wIV, c.wStream = iv, s
		buf := c.scratch(len(iv) + len(p))
		copy(buf, iv)
		c.wStream.XORKeyStream(buf[len(iv):], p)
		if _, err := c.Conn.Write(buf); err != nil {
			return 0, err
		}
		return len(p), nil
	}
	buf := c.scratch(len(p))
	c.wStream.XORKeyStream(buf, p)
	if _, err := c.Conn.Write(buf); err != nil {
		return 0, err
	}
	return len(p), nil
}

// scratch returns the write buffer resized to n, growing it only when a
// larger write than any before comes through.
func (c *streamConn) scratch(n int) []byte {
	if cap(c.wBuf) < n {
		c.wBuf = make([]byte, n)
	}
	return c.wBuf[:n]
}

// Read decrypts into p; the first Read consumes the peer's IV.
//
//sslab:hotpath
func (c *streamConn) Read(p []byte) (int, error) {
	if c.rStream == nil {
		iv := make([]byte, c.spec.IVSize)
		if _, err := io.ReadFull(c.Conn, iv); err != nil {
			return 0, err
		}
		s, err := c.spec.NewStreamDecrypter(c.key, iv)
		if err != nil {
			return 0, err
		}
		c.rIV, c.rStream = iv, s
	}
	n, err := c.Conn.Read(p)
	if n > 0 {
		c.rStream.XORKeyStream(p[:n], p[:n])
	}
	return n, err
}
