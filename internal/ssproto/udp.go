package ssproto

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"

	"sslab/internal/socks"
	"sslab/internal/sscrypto"
)

// UDP packet formats, per the Shadowsocks specification. Every datagram is
// independently keyed:
//
//	stream: [IV][encrypted (target ++ payload)]
//	AEAD:   [salt][sealed (target ++ payload)]   (nonce = all zeros)
//
// Unlike TCP there is no session: each packet carries a fresh IV/salt,
// which is why UDP mode is even more exposed to replay observation — a
// fact the post-disclosure replay defenses also had to cover.

// ErrUDPPacket reports a malformed or unauthenticated datagram.
var ErrUDPPacket = errors.New("ssproto: bad UDP packet")

// PackUDP encrypts one datagram addressed to target.
func PackUDP(spec sscrypto.Spec, masterKey []byte, target socks.Addr, payload []byte) ([]byte, error) {
	return PackUDPWithRand(spec, masterKey, target, payload, rand.Reader)
}

// PackUDPWithRand is PackUDP with explicit IV/salt randomness.
func PackUDPWithRand(spec sscrypto.Spec, masterKey []byte, target socks.Addr, payload []byte, rnd io.Reader) ([]byte, error) {
	plain := append(target.Append(nil), payload...)
	iv := make([]byte, spec.IVSize)
	if _, err := io.ReadFull(rnd, iv); err != nil {
		return nil, err
	}
	if spec.Kind == sscrypto.Stream {
		out := make([]byte, len(iv)+len(plain))
		copy(out, iv)
		enc, err := spec.NewStream(masterKey, iv)
		if err != nil {
			return nil, err
		}
		enc.XORKeyStream(out[len(iv):], plain)
		return out, nil
	}
	aead, err := spec.NewAEAD(sscrypto.SessionSubkey(masterKey, iv))
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, aead.NonceSize())
	out := make([]byte, 0, len(iv)+len(plain)+aead.Overhead())
	out = append(out, iv...)
	return aead.Seal(out, nonce, plain, nil), nil
}

// UnpackUDP decrypts one datagram, returning the embedded target address
// and the payload.
func UnpackUDP(spec sscrypto.Spec, masterKey []byte, pkt []byte) (socks.Addr, []byte, error) {
	ivLen := spec.IVSize
	if len(pkt) <= ivLen {
		return socks.Addr{}, nil, fmt.Errorf("%w: %d bytes", ErrUDPPacket, len(pkt))
	}
	iv := pkt[:ivLen]
	var plain []byte
	if spec.Kind == sscrypto.Stream {
		dec, err := spec.NewStreamDecrypter(masterKey, iv)
		if err != nil {
			return socks.Addr{}, nil, err
		}
		plain = make([]byte, len(pkt)-ivLen)
		dec.XORKeyStream(plain, pkt[ivLen:])
	} else {
		aead, err := spec.NewAEAD(sscrypto.SessionSubkey(masterKey, iv))
		if err != nil {
			return socks.Addr{}, nil, err
		}
		nonce := make([]byte, aead.NonceSize())
		var aerr error
		plain, aerr = aead.Open(nil, nonce, pkt[ivLen:], nil)
		if aerr != nil {
			return socks.Addr{}, nil, fmt.Errorf("%w: %v", ErrUDPPacket, aerr)
		}
	}
	target, n, err := socks.Decode(plain, false)
	if err != nil {
		return socks.Addr{}, nil, fmt.Errorf("%w: %v", ErrUDPPacket, err)
	}
	return target, plain[n:], nil
}
