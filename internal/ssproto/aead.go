package ssproto

import (
	"crypto/cipher"
	"errors"
	"fmt"
	"io"
	"net"

	"sslab/internal/sscrypto"
)

// ErrAuth is returned when an AEAD chunk fails authentication. How a server
// reacts to this error — immediate RST in Shadowsocks-libev ≤ v3.2.5 and
// OutlineVPN v1.0.6, silent timeout in later versions — is one of the
// fingerprints Figure 10b documents.
var ErrAuth = errors.New("ssproto: chunk authentication failed")

// aeadConn implements the AEAD construction. Each direction derives a
// session subkey from the master key and that direction's salt via
// HKDF-SHA1("ss-subkey") and carries length-prefixed, individually
// authenticated chunks. The chunk nonce is a little-endian counter
// incremented after every seal/open.
type aeadConn struct {
	net.Conn
	spec sscrypto.Spec
	key  []byte
	rand io.Reader

	wAEAD  cipher.AEAD
	rAEAD  cipher.AEAD
	wNonce []byte
	rNonce []byte
	wSalt  []byte
	rSalt  []byte

	rBuf   []byte  // decrypted bytes not yet returned to the caller
	rStore []byte  // backing array for rBuf, reused across chunks
	rHead  []byte  // scratch for [2-byte length][tag]
	rCT    []byte  // reused payload-ciphertext scratch
	wBuf   []byte  // reused wire-format scratch: steady-state writes don't allocate
	lenBuf [2]byte // chunk length prefix plaintext
}

func (c *aeadConn) Salt() []byte     { return c.wSalt }
func (c *aeadConn) PeerSalt() []byte { return c.rSalt }

func incrementNonce(n []byte) {
	for i := range n {
		n[i]++
		if n[i] != 0 {
			return
		}
	}
}

// Write seals p into one or more chunks. The first Write prepends the salt
// so that — like real implementations before OutlineVPN's July 2020 change —
// the first data-carrying packet is [salt][len|tag][payload|tag], giving
// the characteristic first-packet lengths the detector keys on.
//
//sslab:hotpath
func (c *aeadConn) Write(p []byte) (int, error) {
	out := c.wBuf[:0]
	if c.wAEAD == nil {
		salt := make([]byte, c.spec.SaltSize())
		if _, err := io.ReadFull(c.rand, salt); err != nil {
			return 0, err
		}
		aead, err := c.spec.NewAEAD(sscrypto.SessionSubkey(c.key, salt))
		if err != nil {
			return 0, err
		}
		c.wSalt, c.wAEAD = salt, aead
		c.wNonce = make([]byte, aead.NonceSize())
		out = append(out, salt...)
	}
	total := 0
	for len(p) > 0 {
		chunk := p
		if len(chunk) > MaxChunkPayload {
			chunk = chunk[:MaxChunkPayload]
		}
		p = p[len(chunk):]

		c.lenBuf[0], c.lenBuf[1] = byte(len(chunk)>>8), byte(len(chunk))
		out = c.wAEAD.Seal(out, c.wNonce, c.lenBuf[:], nil)
		incrementNonce(c.wNonce)
		out = c.wAEAD.Seal(out, c.wNonce, chunk, nil)
		incrementNonce(c.wNonce)
		total += len(chunk)
	}
	c.wBuf = out[:0] // keep the grown capacity for the next write
	if _, err := c.Conn.Write(out); err != nil {
		return 0, err
	}
	return total, nil
}

// Read returns decrypted payload bytes, reading and opening whole chunks
// as needed.
func (c *aeadConn) Read(p []byte) (int, error) {
	if len(c.rBuf) > 0 {
		n := copy(p, c.rBuf)
		c.rBuf = c.rBuf[n:]
		return n, nil
	}
	if c.rAEAD == nil {
		salt := make([]byte, c.spec.SaltSize())
		if _, err := io.ReadFull(c.Conn, salt); err != nil {
			return 0, err
		}
		aead, err := c.spec.NewAEAD(sscrypto.SessionSubkey(c.key, salt))
		if err != nil {
			return 0, err
		}
		c.rSalt, c.rAEAD = salt, aead
		c.rNonce = make([]byte, aead.NonceSize())
		c.rHead = make([]byte, 2+aead.Overhead())
	}

	// Read and open the encrypted length prefix.
	if _, err := io.ReadFull(c.Conn, c.rHead); err != nil {
		return 0, err
	}
	lenPlain, err := c.rAEAD.Open(c.rHead[:0:2], c.rNonce, c.rHead, nil)
	if err != nil {
		return 0, fmt.Errorf("%w: length prefix", ErrAuth)
	}
	incrementNonce(c.rNonce)
	n := int(lenPlain[0])<<8 | int(lenPlain[1])
	if n > MaxChunkPayload {
		return 0, fmt.Errorf("%w: oversized chunk length %d", ErrAuth, n)
	}

	// Read and open the payload into the reused ciphertext scratch
	// (Open decrypts in place over ct's storage).
	if cap(c.rCT) < n+c.rAEAD.Overhead() {
		c.rCT = make([]byte, n+c.rAEAD.Overhead())
	}
	ct := c.rCT[:n+c.rAEAD.Overhead()]
	if _, err := io.ReadFull(c.Conn, ct); err != nil {
		return 0, err
	}
	plain, err := c.rAEAD.Open(ct[:0], c.rNonce, ct, nil)
	if err != nil {
		return 0, fmt.Errorf("%w: payload", ErrAuth)
	}
	incrementNonce(c.rNonce)

	// Leftover plaintext is copied to the front of the reused backing
	// store (slicing rBuf forward on the drain path would otherwise
	// bleed capacity until a reallocation).
	copied := copy(p, plain)
	c.rStore = append(c.rStore[:0], plain[copied:]...)
	c.rBuf = c.rStore
	return copied, nil
}
