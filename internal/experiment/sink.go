package experiment

import (
	"fmt"
	"strings"
	"time"

	"sslab/internal/capture"
	"sslab/internal/entropy"
	"sslab/internal/gfw"
	"sslab/internal/netsim"
	"sslab/internal/probe"
	"sslab/internal/seedfork"
)

// SinkConfig scales the §4.1 random-data experiments.
type SinkConfig struct {
	Seed int64
	// Hours of virtual time per experiment (paper: 310 h of Exp 1.a plus
	// the remainder of the two weeks; default 310).
	Hours int
	// ConnsPerHour is the trigger rate (paper: ≈3000/h in Exp 1.a;
	// default 3000).
	ConnsPerHour int
	GFW          gfw.Config
	// Impair, when set, applies a link-impairment profile to every
	// simulated link; nil keeps the idealized lossless network.
	Impair *netsim.LinkProfile `json:"Impair,omitempty"`
}

func (c SinkConfig) withDefaults() SinkConfig {
	if c.Hours == 0 {
		c.Hours = 310
	}
	if c.ConnsPerHour == 0 {
		c.ConnsPerHour = 3000
	}
	return c
}

// ExpRow is one Table 4 row plus its outcome.
type ExpRow struct {
	Name       string
	LenRange   [2]int
	Entropy    string
	Mode       string
	Triggers   int
	Probes     int
	TypeCounts map[probe.Type]int
}

// SinkReport covers Table 4, Figures 8 and 9, and the staged-probing
// observation of §4.2.
type SinkReport struct {
	Config SinkConfig
	Rows   []ExpRow

	// Figure 8: replay-length stair-step from Exp 1.a.
	ReplayLenMin, ReplayLenMax int
	Rem9ShareLow               float64 // remainder-9 share, lengths 168–263
	Rem2ShareHigh              float64 // remainder-2 share, lengths 384–687
	MixShareMid                float64 // remainders 9+2 share, lengths 264–383

	// Figure 9: replay probability by entropy bin (Exp 3).
	EntropyBins  []float64 // bin upper edges
	ReplayRatios []float64 // replays per trigger in each bin

	// Staged probing: stage-2 types must appear only after the sink →
	// responding switch (Exp 1.a → 1.b).
	Stage2BeforeSwitch int
	Stage2AfterSwitch  int

	// Probe-delivery accounting under link impairment for Exp 1 (the
	// run behind Figure 8). All zero on ideal links, so unimpaired
	// reports are byte-identical to pre-impairment ones.
	ProbeDrops    int `json:"ProbeDrops,omitzero"`
	ProbeRetries  int `json:"ProbeRetries,omitzero"`
	ProbeTimeouts int `json:"ProbeTimeouts,omitzero"`
	// Link-level impairment accounting for Exp 1 (see
	// ShadowsocksReport). Zero on ideal links.
	LinkRetransmits  int64 `json:"LinkRetransmits,omitzero"`
	LinkDroppedFlows int64 `json:"LinkDroppedFlows,omitzero"`
}

// SinkExperiments runs Exps 1.a, 1.b, 2 and 3 of Table 4.
func SinkExperiments(cfg SinkConfig) (*SinkReport, error) {
	cfg = cfg.withDefaults()
	report := &SinkReport{Config: cfg}

	// --- Exp 1.a + 1.b: high entropy, sink for Hours, then responding. ---
	sim, net := simNet(cfg.Seed, cfg.Impair)
	gcfg := cfg.GFW
	gcfg.Seed = seedfork.Fork(cfg.Seed, "sink.exp1.gfw")
	g := gfw.New(gfw.Env{Sim: sim, Net: net}, gfw.WithConfig(gcfg))
	net.AddMiddlebox(g)

	server := netsim.Endpoint{IP: "178.62.10.1", Port: 443}
	client := netsim.Endpoint{IP: "150.109.10.1", Port: 40000}
	host := &ServerHost{Sim: sim, Sink: true, seen: map[uint64]struct{}{}}
	net.AddHost(server, host)

	gen := entropy.NewGenerator(seedfork.Fork(cfg.Seed, "sink.exp1.entropy"))
	interval := time.Hour / time.Duration(cfg.ConnsPerHour)
	switchAt := netsim.Epoch.Add(time.Duration(cfg.Hours) * time.Hour)
	end := switchAt.Add(time.Duration(cfg.Hours) / 2 * time.Hour)
	triggers1a, triggers1b := 0, 0
	var tick func()
	tick = func() {
		if sim.Now().After(end) {
			return
		}
		if sim.Now().Before(switchAt) {
			triggers1a++
		} else {
			host.Sink = false
			host.RespondAll = true
			triggers1b++
		}
		net.Connect(client, server, gen.Random(1+gen.Intn(1000)), false, time.Time{})
		sim.After(interval, tick)
	}
	sim.After(0, tick)
	sim.Run()

	// Partition probes by the switch time.
	count1a := map[probe.Type]int{}
	count1b := map[probe.Type]int{}
	stage2 := map[probe.Type]bool{probe.R3: true, probe.R4: true, probe.R5: true, probe.R6: true}
	var replayLens []int
	for i := range g.Log.Records {
		rec := &g.Log.Records[i]
		before := rec.Time.Before(switchAt)
		if before {
			count1a[rec.Type]++
		} else {
			count1b[rec.Type]++
		}
		if stage2[rec.Type] {
			if before {
				report.Stage2BeforeSwitch++
			} else {
				report.Stage2AfterSwitch++
			}
		}
		if rec.Type.Replay() && before {
			replayLens = append(replayLens, len(rec.Payload))
		}
	}
	report.Rows = append(report.Rows,
		ExpRow{Name: "1.a", LenRange: [2]int{1, 1000}, Entropy: ">7", Mode: "sink",
			Triggers: triggers1a, Probes: total(count1a), TypeCounts: count1a},
		ExpRow{Name: "1.b", LenRange: [2]int{1, 1000}, Entropy: ">7", Mode: "responding",
			Triggers: triggers1b, Probes: total(count1b), TypeCounts: count1b},
	)
	report.fillFigure8(replayLens)
	report.ProbeDrops = g.ProbeDrops
	report.ProbeRetries = g.ProbeRetries
	report.ProbeTimeouts = g.ProbeTimeouts
	report.LinkRetransmits = sim.Metrics.Counter("net.impair_retransmits").Value()
	report.LinkDroppedFlows = sim.Metrics.Counter("net.impair_dropped_flows").Value()

	// --- Exp 2: low entropy (<2), sink. ---
	row2, _, err := runSinkVariant(cfg, "exp2", func(gen *entropy.Generator) []byte {
		return gen.Payload(1+gen.Intn(1000), 1.2)
	})
	if err != nil {
		return nil, err
	}
	row2.Name, row2.LenRange, row2.Entropy, row2.Mode = "2", [2]int{1, 1000}, "<2", "sink"
	report.Rows = append(report.Rows, row2)

	// --- Exp 3: entropy uniform in [0,8], lengths up to 2000. ---
	row3, log3, triggerPerBin, err := runExp3(cfg)
	if err != nil {
		return nil, err
	}
	report.Rows = append(report.Rows, row3)
	report.fillFigure9(log3, triggerPerBin)

	return report, nil
}

func total(m map[probe.Type]int) int {
	t := 0
	for _, c := range m {
		t += c
	}
	return t
}

// runSinkVariant runs one sink experiment with a payload generator.
func runSinkVariant(cfg SinkConfig, variant string, payload func(*entropy.Generator) []byte) (ExpRow, *capture.Log, error) {
	sim, net := simNet(cfg.Seed, cfg.Impair)
	gcfg := cfg.GFW
	gcfg.Seed = seedfork.Fork(cfg.Seed, "sink."+variant+".gfw")
	g := gfw.New(gfw.Env{Sim: sim, Net: net}, gfw.WithConfig(gcfg))
	net.AddMiddlebox(g)
	server := netsim.Endpoint{IP: "178.62.10.2", Port: 443}
	client := netsim.Endpoint{IP: "150.109.10.2", Port: 40001}
	host := &ServerHost{Sim: sim, Sink: true, seen: map[uint64]struct{}{}}
	net.AddHost(server, host)

	if payload == nil {
		payload = func(gen *entropy.Generator) []byte { return gen.Random(1 + gen.Intn(1000)) }
	}
	gen := entropy.NewGenerator(seedfork.Fork(cfg.Seed, "sink."+variant+".entropy"))
	interval := time.Hour / time.Duration(cfg.ConnsPerHour)
	end := netsim.Epoch.Add(time.Duration(cfg.Hours) * time.Hour)
	triggers := 0
	var tick func()
	tick = func() {
		if sim.Now().After(end) {
			return
		}
		triggers++
		net.Connect(client, server, payload(gen), false, time.Time{})
		sim.After(interval, tick)
	}
	sim.After(0, tick)
	sim.Run()

	return ExpRow{Triggers: triggers, Probes: g.Log.Len(), TypeCounts: g.Log.TypeCounts()}, g.Log, nil
}

// runExp3 runs experiment 3 tracking per-trigger entropy bins for Figure 9.
func runExp3(cfg SinkConfig) (ExpRow, *capture.Log, []int, error) {
	sim, net := simNet(cfg.Seed, cfg.Impair)
	gcfg := cfg.GFW
	gcfg.Seed = seedfork.Fork(cfg.Seed, "sink.exp3.gfw")
	g := gfw.New(gfw.Env{Sim: sim, Net: net}, gfw.WithConfig(gcfg))
	net.AddMiddlebox(g)
	server := netsim.Endpoint{IP: "178.62.10.3", Port: 443}
	client := netsim.Endpoint{IP: "150.109.10.3", Port: 40002}
	host := &ServerHost{Sim: sim, Sink: true, seen: map[uint64]struct{}{}}
	net.AddHost(server, host)

	gen := entropy.NewGenerator(seedfork.Fork(cfg.Seed, "sink.exp3.entropy"))
	interval := time.Hour / time.Duration(cfg.ConnsPerHour)
	end := netsim.Epoch.Add(time.Duration(cfg.Hours) * time.Hour)
	triggers := 0
	triggerPerBin := make([]int, figure9Bins)
	var tick func()
	tick = func() {
		if sim.Now().After(end) {
			return
		}
		triggers++
		h := gen.Float64() * 8
		p := gen.Payload(1+gen.Intn(2000), h)
		triggerPerBin[entropyBin(entropy.Shannon(p))]++
		net.Connect(client, server, p, false, time.Time{})
		sim.After(interval, tick)
	}
	sim.After(0, tick)
	sim.Run()

	row := ExpRow{Name: "3", LenRange: [2]int{1, 2000}, Entropy: "[0,8]", Mode: "sink",
		Triggers: triggers, Probes: g.Log.Len(), TypeCounts: g.Log.TypeCounts()}
	return row, g.Log, triggerPerBin, nil
}

// figure9Bins buckets entropies into unit-wide bins.
const figure9Bins = 8

func entropyBin(h float64) int {
	b := int(h)
	if b >= figure9Bins {
		b = figure9Bins - 1
	}
	if b < 0 {
		b = 0
	}
	return b
}

// fillFigure8 computes the stair-step shares.
func (r *SinkReport) fillFigure8(lens []int) {
	if len(lens) == 0 {
		return
	}
	r.ReplayLenMin, r.ReplayLenMax = lens[0], lens[0]
	var lowTotal, low9, highTotal, high2, midTotal, mid92 int
	for _, n := range lens {
		if n < r.ReplayLenMin {
			r.ReplayLenMin = n
		}
		if n > r.ReplayLenMax {
			r.ReplayLenMax = n
		}
		switch {
		case n >= 168 && n <= 263:
			lowTotal++
			if n%16 == 9 {
				low9++
			}
		case n >= 264 && n <= 383:
			midTotal++
			if n%16 == 9 || n%16 == 2 {
				mid92++
			}
		case n >= 384 && n <= 687:
			highTotal++
			if n%16 == 2 {
				high2++
			}
		}
	}
	if lowTotal > 0 {
		r.Rem9ShareLow = float64(low9) / float64(lowTotal)
	}
	if highTotal > 0 {
		r.Rem2ShareHigh = float64(high2) / float64(highTotal)
	}
	if midTotal > 0 {
		r.MixShareMid = float64(mid92) / float64(midTotal)
	}
}

// fillFigure9 bins Exp 3's replays by trigger entropy. An identical
// replay carries the trigger payload verbatim, so the payload's own
// Shannon entropy attributes it to the right bin.
func (r *SinkReport) fillFigure9(log *capture.Log, triggerPerBin []int) {
	replayCount := make([]int, figure9Bins)
	for i := range log.Records {
		rec := &log.Records[i]
		if rec.Type != probe.R1 {
			continue
		}
		replayCount[entropyBin(entropy.Shannon(rec.Payload))]++
	}
	for b := 0; b < figure9Bins; b++ {
		r.EntropyBins = append(r.EntropyBins, float64(b+1))
		ratio := 0.0
		if triggerPerBin[b] > 0 {
			ratio = float64(replayCount[b]) / float64(triggerPerBin[b])
		}
		r.ReplayRatios = append(r.ReplayRatios, ratio)
	}
}

// Render prints Table 4, Figure 8 and Figure 9 summaries.
func (r *SinkReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4: random-data experiments (%d h, %d conns/h)\n", r.Config.Hours, r.Config.ConnsPerHour)
	fmt.Fprintf(&b, "  %-4s %-10s %-8s %-11s %-10s %-8s R1/R2/NR2/R3/R4\n", "Exp", "len", "entropy", "mode", "triggers", "probes")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-4s [%d,%d] %-8s %-11s %-10d %-8d %d/%d/%d/%d/%d\n",
			row.Name, row.LenRange[0], row.LenRange[1], row.Entropy, row.Mode,
			row.Triggers, row.Probes,
			row.TypeCounts[probe.R1], row.TypeCounts[probe.R2], row.TypeCounts[probe.NR2],
			row.TypeCounts[probe.R3], row.TypeCounts[probe.R4])
	}
	fmt.Fprintf(&b, "\nFigure 8: replay lengths %d–%d; rem-9 share (168–263) = %.0f%%; rem-2 share (384–687) = %.0f%%; mixed (264–383) = %.0f%%\n",
		r.ReplayLenMin, r.ReplayLenMax, r.Rem9ShareLow*100, r.Rem2ShareHigh*100, r.MixShareMid*100)
	fmt.Fprintf(&b, "Figure 9: replay-to-trigger ratio by entropy bin:\n")
	for i, edge := range r.EntropyBins {
		fmt.Fprintf(&b, "  H<%.0f: %.4f%%\n", edge, r.ReplayRatios[i]*100)
	}
	ratio := 0.0
	if r.ReplayRatios[3] > 0 {
		ratio = r.ReplayRatios[7] / ((r.ReplayRatios[2] + r.ReplayRatios[3]) / 2)
	}
	fmt.Fprintf(&b, "  (H≈7.5 vs H≈3: %.1f× — paper: ≈4×)\n", ratio)
	fmt.Fprintf(&b, "Staged probing: stage-2 probes before switch = %d, after = %d\n",
		r.Stage2BeforeSwitch, r.Stage2AfterSwitch)
	return b.String()
}
