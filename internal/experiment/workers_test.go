package experiment

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestWorkersRunnerByteIdentity: the registry's intra-run workers path
// must reproduce Run's bytes exactly, for both workers-aware runners,
// on sharded configs (Shards is science; workers is execution).
func TestWorkersRunnerByteIdentity(t *testing.T) {
	for _, name := range []string{"fleet", "armsrace"} {
		r, ok := Lookup(name)
		if !ok {
			t.Fatalf("experiment %q not registered", name)
		}
		wr, ok := r.(WorkersRunner)
		if !ok {
			t.Fatalf("experiment %q does not implement WorkersRunner", name)
		}

		mkCfg := func() any {
			cfg := r.Config(1, false)
			switch c := cfg.(type) {
			case *ArmsRaceConfig:
				c.Users = 300
				c.Hours = 2
				c.Shards = 3
				c.Chains = [][]string{{"shadowsocks"}, {"shadowsocks", "openvpn"}}
			default:
				// fleet.Config lives in another package; drive it through
				// JSON like the campaign engine does.
				var m map[string]any
				b, _ := json.Marshal(cfg)
				json.Unmarshal(b, &m)
				m["Users"] = 300
				m["Hours"] = 2
				m["Shards"] = 3
				b, _ = json.Marshal(m)
				json.Unmarshal(b, cfg)
			}
			return cfg
		}

		base, err := r.Run(mkCfg())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		golden, err := json.Marshal(base)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4} {
			rep, err := wr.RunWorkers(mkCfg(), workers)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			got, err := json.Marshal(rep)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, golden) {
				t.Fatalf("%s: RunWorkers(%d) diverged from Run:\n%s\nvs\n%s", name, workers, got, golden)
			}
		}
	}
}
