package experiment

import (
	"fmt"
	"sort"

	"sslab/internal/gfw"
)

// Report is the interface every experiment report satisfies: a
// terminal rendering of the paper artifact(s). Reports additionally
// marshal to JSON with exported fields only, which is what the sweep
// engine (internal/campaign) checkpoints and reduces.
type Report interface {
	Render() string
}

// Runner is the uniform entry point the registry exposes for each of
// the ten experiments, so cmd/gfwsim and the campaign engine can drive
// any of them generically.
type Runner interface {
	// Name is the registry key (the -experiment flag value).
	Name() string
	// Description is a one-line summary of what the experiment
	// reproduces, shown by the -list flag of cmd/gfwsim and
	// cmd/sslab-sweep.
	Description() string
	// Config returns a pointer to a fresh config for the experiment at
	// fast (the historical cmd/gfwsim default) or full (paper) scale,
	// with all stochastic state derived from seed. The concrete type is
	// a plain exported struct, so it (de)serializes via encoding/json;
	// the campaign engine overrides fields through that round trip.
	Config(seed int64, full bool) any
	// Run executes the experiment on a config of the type Config
	// returns (pointer or value — Run normalizes).
	Run(cfg any) (Report, error)
}

// WorkersRunner is the optional Runner extension for experiments that
// can parallelize inside a single run (the fleet's space shards, the
// arms race's chains of fleets). RunWorkers is Run with an intra-run
// worker bound; intra-run workers are execution policy, so the report
// is byte-identical to Run's for every value. workers <= 0 selects the
// default (GOMAXPROCS).
type WorkersRunner interface {
	Runner
	RunWorkers(cfg any, workers int) (Report, error)
}

// runner implements Runner for one experiment via typed closures.
type runner[C any] struct {
	name   string
	desc   string
	config func(seed int64, full bool) C
	run    func(cfg C) (Report, error)
}

func (r runner[C]) Name() string { return r.name }

func (r runner[C]) Description() string { return r.desc }

func (r runner[C]) Config(seed int64, full bool) any {
	c := r.config(seed, full)
	return &c
}

func (r runner[C]) Run(cfg any) (Report, error) {
	switch c := cfg.(type) {
	case C:
		return r.run(c)
	case *C:
		return r.run(*c)
	default:
		return nil, fmt.Errorf("experiment %s: config type %T, want %T", r.name, cfg, new(C))
	}
}

// workersRunner decorates runner with the WorkersRunner entry point.
type workersRunner[C any] struct {
	runner[C]
	runWorkers func(cfg C, workers int) (Report, error)
}

func (r workersRunner[C]) RunWorkers(cfg any, workers int) (Report, error) {
	switch c := cfg.(type) {
	case C:
		return r.runWorkers(c, workers)
	case *C:
		return r.runWorkers(*c, workers)
	default:
		return nil, fmt.Errorf("experiment %s: config type %T, want %T", r.name, cfg, new(C))
	}
}

// Table1Config exists so Table 1 fits the Runner shape; the timeline
// has no parameters.
type Table1Config struct{}

// runners is the registry, in cmd/gfwsim's traditional output order.
// The fast-scale values are the long-standing `gfwsim` (no -full)
// defaults; full scale leaves the config zeroed so each experiment's
// withDefaults applies the paper-scale numbers.
var runners = []Runner{
	runner[Table1Config]{
		name:   "table1",
		desc:   "the paper's active-probing experiment timeline (Table 1)",
		config: func(int64, bool) Table1Config { return Table1Config{} },
		run:    func(Table1Config) (Report, error) { return Table1(), nil },
	},
	runner[ShadowsocksConfig]{
		name: "shadowsocks",
		desc: "months of GFW probing against live Shadowsocks pairs and a control host (§4)",
		config: func(seed int64, full bool) ShadowsocksConfig {
			cfg := ShadowsocksConfig{Seed: seed}
			if !full {
				cfg.Days = 20
				cfg.ConnsPerPairPerHour = 80
				cfg.GFW = gfw.Config{PoolSize: 6000}
			}
			return cfg
		},
		run: func(cfg ShadowsocksConfig) (Report, error) { return ShadowsocksExperiment(cfg) },
	},
	runner[SinkConfig]{
		name: "sink",
		desc: "sink-server probe-harvesting campaigns, Exps 1.a/1.b/2/3 (Table 4)",
		config: func(seed int64, full bool) SinkConfig {
			cfg := SinkConfig{Seed: seed}
			if !full {
				cfg.Hours = 80
				cfg.ConnsPerHour = 2000
				cfg.GFW = gfw.Config{PoolSize: 4000}
			}
			return cfg
		},
		run: func(cfg SinkConfig) (Report, error) { return SinkExperiments(cfg) },
	},
	runner[BrdgrdConfig]{
		name: "brdgrd",
		desc: "brdgrd window-shrinking toggled on and off against a control pair (§7.1)",
		config: func(seed int64, full bool) BrdgrdConfig {
			cfg := BrdgrdConfig{Seed: seed}
			if !full {
				cfg.Hours = 200
				cfg.OnWindows = [][2]int{{60, 110}, {150, 180}}
				cfg.GFW = gfw.Config{PoolSize: 4000}
			}
			return cfg
		},
		run: func(cfg BrdgrdConfig) (Report, error) { return BrdgrdExperiment(cfg) },
	},
	runner[BlockingConfig]{
		name: "blocking",
		desc: "which implementations get blocked: replay-serving vs replay-defended (§6)",
		config: func(seed int64, full bool) BlockingConfig {
			cfg := BlockingConfig{Seed: seed}
			if !full {
				cfg.Days = 20
				cfg.GFW = gfw.Config{PoolSize: 4000}
			}
			return cfg
		},
		run: func(cfg BlockingConfig) (Report, error) { return BlockingExperiment(cfg) },
	},
	runner[FPStudyConfig]{
		name: "fpstudy",
		desc: "passive-detector false positives on web, VPN-like and random traffic (§5)",
		config: func(seed int64, full bool) FPStudyConfig {
			cfg := FPStudyConfig{Seed: seed}
			if !full {
				cfg.FlowsPerKind = 40000
				cfg.GFW = gfw.Config{PoolSize: 3000}
			}
			return cfg
		},
		run: func(cfg FPStudyConfig) (Report, error) { return FPStudy(cfg) },
	},
	runner[BanStudyConfig]{
		name: "banstudy",
		desc: "prober ban list evaluated by replaying a sink campaign's probe stream (§7.2)",
		config: func(seed int64, full bool) BanStudyConfig {
			cfg := BanStudyConfig{Seed: seed}
			if !full {
				cfg.Triggers = 120000
				cfg.GFW = gfw.Config{PoolSize: 4000}
			}
			return cfg
		},
		run: func(cfg BanStudyConfig) (Report, error) { return BanStudy(cfg) },
	},
	runner[MimicStudyConfig]{
		name: "mimicstudy",
		desc: "server-side probe-response mimicry, four-cell defense study",
		config: func(seed int64, full bool) MimicStudyConfig {
			cfg := MimicStudyConfig{Seed: seed}
			if !full {
				cfg.Triggers = 60000
				cfg.GFW = gfw.Config{PoolSize: 3000}
			}
			return cfg
		},
		run: func(cfg MimicStudyConfig) (Report, error) { return MimicStudy(cfg) },
	},
	runner[ProbeCostConfig]{
		name: "probecost",
		desc: "SPRT probes-to-confirmation cost for the censor per configuration",
		config: func(seed int64, full bool) ProbeCostConfig {
			cfg := ProbeCostConfig{Seed: seed, Trials: 100}
			if !full {
				cfg.Trials = 50
			}
			return cfg
		},
		run: func(cfg ProbeCostConfig) (Report, error) { return ProbeCost(cfg) },
	},
	runner[MatrixConfig]{
		name: "matrix",
		desc: "probe-type × implementation reaction matrices (Figs 10a/10b, Table 5)",
		config: func(seed int64, full bool) MatrixConfig {
			cfg := MatrixConfig{Seed: seed, Trials: 200}
			if !full {
				cfg.Trials = 60
			}
			return cfg
		},
		run: func(cfg MatrixConfig) (Report, error) { return ReactionMatrices(cfg) },
	},
	runner[RobustnessConfig]{
		name: "robustness",
		desc: "detection verdicts under link-impairment grids (loss × jitter)",
		config: func(seed int64, full bool) RobustnessConfig {
			cfg := RobustnessConfig{Seed: seed}
			if !full {
				// 2×2 grid at compact scales: enough to exercise the
				// impaired path and the verdicts without full sweeps.
				cfg.Loss = []float64{0, 0.02}
				cfg.JitterMs = []int{0, 50}
				cfg.Days = 2
				cfg.Hours = 20
				cfg.GFW = gfw.Config{PoolSize: 2000}
			}
			return cfg
		},
		run: func(cfg RobustnessConfig) (Report, error) { return Robustness(cfg) },
	},
	fleetRunner,
	armsraceRunner,
	spatioRunner,
}

// Runners returns the registry in presentation order.
func Runners() []Runner {
	return append([]Runner(nil), runners...)
}

// Lookup returns the runner registered under name.
func Lookup(name string) (Runner, bool) {
	for _, r := range runners {
		if r.Name() == name {
			return r, true
		}
	}
	return nil, false
}

// Names returns the registered experiment names, sorted, for flag
// validation messages.
func Names() []string {
	out := make([]string, len(runners))
	for i, r := range runners {
		out[i] = r.Name()
	}
	sort.Strings(out)
	return out
}
