package experiment

import (
	"sslab/internal/fleet"
	"sslab/internal/gfw"
)

// fleetRunner registers the population-scale workload engine
// (internal/fleet) as the "fleet" experiment. Fast scale is a
// 1500-user, 6-virtual-hour population that finishes in well under a
// second; full scale leaves the config zeroed so fleet's withDefaults
// applies the 100k-user, 24-hour population of the acceptance run.
// The runner implements WorkersRunner: Config.Shards fixes the space
// partition (science), -workers only sizes the pool executing it.
var fleetRunner = workersRunner[fleet.Config]{
	runner: runner[fleet.Config]{
		name: "fleet",
		desc: "population-scale user & censor workload: blocked-user curves, server survival",
		config: func(seed int64, full bool) fleet.Config {
			cfg := fleet.Config{Seed: seed}
			if !full {
				cfg.Users = 1500
				cfg.UsersPerServer = 50
				cfg.Hours = 6
				cfg.GFW = gfw.Config{PoolSize: 3000}
			}
			return cfg
		},
		run: func(cfg fleet.Config) (Report, error) {
			rep, err := fleet.Run(cfg)
			if err != nil {
				return nil, err
			}
			return rep, nil
		},
	},
	runWorkers: func(cfg fleet.Config, workers int) (Report, error) {
		rep, err := fleet.Run(cfg, fleet.WithWorkers(workers))
		if err != nil {
			return nil, err
		}
		return rep, nil
	},
}
