package experiment

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"time"

	"sslab/internal/capture"
	"sslab/internal/gfw"
	"sslab/internal/netsim"
	"sslab/internal/probe"
	"sslab/internal/reaction"
	"sslab/internal/seedfork"
	"sslab/internal/sscrypto"
	"sslab/internal/stats"
	"sslab/internal/trafficgen"
)

// ShadowsocksConfig scales the §3.1 experiment.
type ShadowsocksConfig struct {
	Seed int64
	// Days of virtual experiment time (paper: ~115; default 115).
	Days int
	// ConnsPerPairPerHour is the fetch rate of each client/server pair
	// (default 120 — a fetch every 30 s, as the paper's curl loops did).
	ConnsPerPairPerHour int
	// GFW overrides parts of the censor configuration (Seed is forced to
	// the experiment seed).
	GFW gfw.Config
	// Impair, when set, applies a link-impairment profile to every
	// simulated link (loss, jitter, outages — see netsim.LinkProfile).
	// nil keeps the idealized lossless network.
	Impair *netsim.LinkProfile `json:"Impair,omitempty"`
}

func (c ShadowsocksConfig) withDefaults() ShadowsocksConfig {
	if c.Days == 0 {
		c.Days = 115
	}
	if c.ConnsPerPairPerHour == 0 {
		c.ConnsPerPairPerHour = 120
	}
	return c
}

// PairResult summarizes one client/server pair.
type PairResult struct {
	Name       string
	Profile    reaction.Profile
	Method     string
	Probes     int
	TypeCounts map[probe.Type]int
	Stage      int
}

// ShadowsocksReport aggregates everything the §3.1 experiment yields.
type ShadowsocksReport struct {
	Config   ShadowsocksConfig
	Triggers int
	Probes   int
	Pairs    []PairResult

	// ControlProbes must stay zero: the never-used control host receiving
	// no probes is what rules out proactive scanning (§4).
	ControlProbes int

	// Figure 2.
	NR1Lengths *stats.Histogram
	NR1Total   int
	NR2Count   int

	// Figure 3 / Table 2.
	UniqueIPs        int
	MultiUseFraction float64
	MaxPerIP         int
	TopIPs           []capture.IPCount

	// Table 3.
	ASCounts map[int]int

	// Figure 5.
	EphemeralPortShare float64
	MinPort, MaxPort   int

	// Figure 6.
	TSClusters    int
	DominantRate  float64
	Cluster1000Hz int

	// Figure 7 (seconds).
	DelayFirst, DelayAll *stats.CDF

	// Figure 4.
	Overlap capture.Overlap

	// Probe-delivery accounting under link impairment (the prober's
	// retry-with-timeout path): probes whose connects died on lossy
	// links, the retries that followed, and probes reclassified as
	// timeouts because the impaired round trip outlasted the prober's
	// patience. All zero on ideal links, so unimpaired reports are
	// byte-identical to pre-impairment ones.
	ProbeDrops    int `json:"ProbeDrops,omitzero"`
	ProbeRetries  int `json:"ProbeRetries,omitzero"`
	ProbeTimeouts int `json:"ProbeTimeouts,omitzero"`
	// Link-level impairment accounting from the sim's metrics registry:
	// transport retransmissions absorbed by the links, and flows lost
	// after every retry. Zero on ideal links.
	LinkRetransmits  int64 `json:"LinkRetransmits,omitzero"`
	LinkDroppedFlows int64 `json:"LinkDroppedFlows,omitzero"`

	// Log is the raw probe capture for further analysis. It is excluded
	// from the report's JSON form (shard reports must stay compact;
	// use cmd/gfwsim -dump for the full capture).
	Log *capture.Log `json:"-"`
}

// ShadowsocksExperiment reproduces §3.1: five Shadowsocks-libev pairs, one
// OutlineVPN pair, and an untouched control host, run for months of
// virtual time under the GFW model.
func ShadowsocksExperiment(cfg ShadowsocksConfig) (*ShadowsocksReport, error) {
	cfg = cfg.withDefaults()
	sim, net := simNet(cfg.Seed, cfg.Impair)
	gcfg := cfg.GFW
	gcfg.Seed = seedfork.Fork(cfg.Seed, "shadowsocks.gfw")
	g := gfw.New(gfw.Env{Sim: sim, Net: net}, gfw.WithConfig(gcfg))
	net.AddMiddlebox(g)

	type pair struct {
		name    string
		profile reaction.Profile
		method  string
		server  netsim.Endpoint
		client  netsim.Endpoint
		host    *ServerHost
		wl      trafficgen.Workload
	}
	mk := func(i int, name string, p reaction.Profile, method string, wl trafficgen.Workload) (*pair, error) {
		host, err := NewServerHost(sim, p, method, "experiment-pw")
		if err != nil {
			return nil, err
		}
		pr := &pair{
			name: name, profile: p, method: method,
			server: netsim.Endpoint{IP: fmt.Sprintf("178.62.1.%d", i+1), Port: 8388},
			client: netsim.Endpoint{IP: fmt.Sprintf("150.109.2.%d", i+1), Port: 50000},
			host:   host, wl: wl,
		}
		net.AddHost(pr.server, host)
		return pr, nil
	}

	// Five Shadowsocks-libev pairs (two old, three new, as in §3.1) plus
	// one OutlineVPN pair driven by Alexa browsing.
	var pairs []*pair
	specs := []struct {
		name    string
		profile reaction.Profile
		method  string
		wl      trafficgen.Workload
	}{
		{"libev-v3.1.3-a", reaction.LibevOld, "aes-256-gcm", trafficgen.CurlLoop},
		{"libev-v3.1.3-b", reaction.LibevOld, "aes-256-ctr", trafficgen.CurlLoop},
		{"libev-v3.3.1-a", reaction.LibevNew, "aes-256-gcm", trafficgen.CurlLoop},
		{"libev-v3.3.1-b", reaction.LibevNew, "chacha20-ietf", trafficgen.CurlLoop},
		{"libev-v3.3.1-c", reaction.LibevNew, "aes-128-gcm", trafficgen.CurlLoop},
		{"outline-v1.0.7", reaction.Outline107, "chacha20-ietf-poly1305", trafficgen.BrowseAlexa},
	}
	for i, s := range specs {
		p, err := mk(i, s.name, s.profile, s.method, s.wl)
		if err != nil {
			return nil, err
		}
		pairs = append(pairs, p)
	}

	// The control host: same datacenter, never connected to.
	control := netsim.Endpoint{IP: "178.62.1.250", Port: 8388}
	controlHost := &ServerHost{Sim: sim, Sink: true, seen: map[uint64]struct{}{}}
	net.AddHost(control, controlHost)

	// Drive each pair's curl/browse loop.
	end := netsim.Epoch.Add(time.Duration(cfg.Days) * 24 * time.Hour)
	interval := time.Hour / time.Duration(cfg.ConnsPerPairPerHour)
	for i, p := range pairs {
		p := p
		tg := trafficgen.New(seedfork.Fork(cfg.Seed, "shadowsocks.trafficgen", int64(i)))
		spec, err := sscrypto.Lookup(p.method)
		if err != nil {
			return nil, err
		}
		var tick func()
		tick = func() {
			if sim.Now().After(end) {
				return
			}
			wire := tg.FirstWirePacket(spec, p.wl)
			net.Connect(p.client, p.server, wire, false, time.Time{})
			sim.After(interval, tick)
		}
		sim.After(time.Duration(i)*time.Second, tick)
	}
	sim.Run()

	rep, err := buildShadowsocksReport(cfg, g, pairs, controlHost, func(p *pair) (string, reaction.Profile, string, netsim.Endpoint, *ServerHost) {
		return p.name, p.profile, p.method, p.server, p.host
	})
	if err != nil {
		return nil, err
	}
	rep.LinkRetransmits = sim.Metrics.Counter("net.impair_retransmits").Value()
	rep.LinkDroppedFlows = sim.Metrics.Counter("net.impair_dropped_flows").Value()
	return rep, nil
}

// buildShadowsocksReport assembles the report (generic over the pair type
// via an accessor to keep the pair struct local).
func buildShadowsocksReport[T any](cfg ShadowsocksConfig, g *gfw.GFW, pairs []T, control *ServerHost,
	get func(T) (string, reaction.Profile, string, netsim.Endpoint, *ServerHost)) (*ShadowsocksReport, error) {

	r := &ShadowsocksReport{Config: cfg, Log: g.Log}
	r.Triggers = g.Triggers
	r.Probes = g.Log.Len()
	r.ControlProbes = control.ProbesSeen
	r.ProbeDrops = g.ProbeDrops
	r.ProbeRetries = g.ProbeRetries
	r.ProbeTimeouts = g.ProbeTimeouts

	// Per-pair type analysis.
	typeByDst := map[string]map[probe.Type]int{}
	for i := range g.Log.Records {
		rec := &g.Log.Records[i]
		m, ok := typeByDst[rec.DstIP]
		if !ok {
			m = map[probe.Type]int{}
			typeByDst[rec.DstIP] = m
		}
		m[rec.Type]++
	}
	for _, p := range pairs {
		name, profile, method, server, host := get(p)
		tc := typeByDst[server.IP]
		total := 0
		for _, c := range tc {
			total += c
		}
		r.Pairs = append(r.Pairs, PairResult{
			Name: name, Profile: profile, Method: method,
			Probes: total, TypeCounts: tc, Stage: g.Stage(server),
		})
		_ = host
	}

	// Figure 2: NR1 length histogram and NR2 count.
	r.NR1Lengths = g.Log.LengthHistogram(func(rec *capture.Record) bool { return rec.Type == probe.NR1 })
	r.NR1Total = r.NR1Lengths.Total
	for i := range g.Log.Records {
		if g.Log.Records[i].Type == probe.NR2 {
			r.NR2Count++
		}
	}

	// Figure 3 / Table 2.
	per := g.Log.ProbesPerIP()
	r.UniqueIPs = len(per)
	r.MultiUseFraction = g.Log.MultiUseFraction()
	for _, c := range per {
		if c > r.MaxPerIP {
			r.MaxPerIP = c
		}
	}
	r.TopIPs = g.Log.TopIPs(10)

	// Table 3.
	r.ASCounts = g.Log.ASCounts()

	// Figure 5.
	ports := g.Log.SourcePorts()
	if ports.Len() > 0 {
		r.EphemeralPortShare = ports.P(60999) - ports.P(32767)
		r.MinPort = int(ports.Min())
		r.MaxPort = int(ports.Max())
	}

	// Figure 6.
	clusters := stats.ClusterTSvals(g.Log.TSPoints(), []float64{250, 1000}, 100000)
	for i := range clusters {
		if len(clusters[i].Points) >= 10 {
			r.TSClusters++
			if clusters[i].Rate == 1000 {
				r.Cluster1000Hz = len(clusters[i].Points)
			}
		}
	}
	if len(clusters) > 0 && len(clusters[0].Points) >= 2 {
		if rate, err := clusters[0].MeasuredRate(); err == nil {
			r.DominantRate = rate
		}
	}

	// Figure 7.
	r.DelayAll, r.DelayFirst = g.Log.ReplayDelays()

	// Figure 4: overlap with synthetic Ensafi/Dunna prober sets, built to
	// the region cardinalities documented in DESIGN.md.
	r.Overlap = syntheticOverlap(g, cfg.Seed)
	return r, nil
}

// syntheticOverlap builds the Figure 4 comparison: the paper's datasets
// are private, so the historical sets are synthesized with the documented
// overlap sizes relative to our observed prober IPs.
func syntheticOverlap(g *gfw.GFW, seed int64) capture.Overlap {
	ours := g.Log.UniqueIPs()
	rng := rand.New(rand.NewSource(seedfork.Fork(seed, "shadowsocks.overlap")))

	pickFromOurs := func(n int) []string {
		out := make([]string, 0, n)
		for _, i := range rng.Perm(len(ours)) {
			if len(out) == n {
				break
			}
			out = append(out, ours[i])
		}
		return out
	}
	synth := func(prefix string, n int) []string {
		out := make([]string, n)
		for i := range out {
			out[i] = fmt.Sprintf("%s.%d.%d.%d", prefix, rng.Intn(223), rng.Intn(256), 1+rng.Intn(254))
		}
		return out
	}
	// Scale the documented overlaps to our observed set size.
	scale := float64(len(ours)) / 12300.0
	nAB := int(math.Round(167 * scale)) // ours ∩ Ensafi
	nAC := int(math.Round(5 * scale))   // ours ∩ Dunna
	if nAC == 0 {
		nAC = 1
	}
	shared := pickFromOurs(nAB + nAC)
	ensafi := append(synth("202", int(math.Round(21721*scale))), shared[:nAB]...)
	dunnaShared := synth("218", int(math.Round(34*scale))) // Ensafi ∩ Dunna
	ensafi = append(ensafi, dunnaShared...)
	dunna := append(synth("119", int(math.Round(895*scale))), dunnaShared...)
	dunna = append(dunna, shared[nAB:]...)
	return capture.ComputeOverlap(ours, ensafi, dunna)
}

// Render prints the report in the order the paper presents its artifacts.
func (r *ShadowsocksReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Shadowsocks experiment (§3.1): %d days, %d trigger connections, %d probes\n",
		r.Config.Days, r.Triggers, r.Probes)
	fmt.Fprintf(&b, "  control host probes: %d (proactive scanning ruled out)\n\n", r.ControlProbes)

	fmt.Fprintf(&b, "Per-pair probe counts (R3/R4/R5 only reach OutlineVPN):\n")
	for _, p := range r.Pairs {
		fmt.Fprintf(&b, "  %-16s %-24s probes=%-6d R1=%d R2=%d R3=%d R4=%d R5=%d NR1=%d NR2=%d stage=%d\n",
			p.Name, p.Method, p.Probes,
			p.TypeCounts[probe.R1], p.TypeCounts[probe.R2], p.TypeCounts[probe.R3],
			p.TypeCounts[probe.R4], p.TypeCounts[probe.R5],
			p.TypeCounts[probe.NR1], p.TypeCounts[probe.NR2], p.Stage)
	}

	fmt.Fprintf(&b, "\nFigure 2: NR1 lengths (trios around 8,12,16,22,33,41,49); NR2(221B)=%d ≈ %.1f× all NR1 (%d)\n",
		r.NR2Count, float64(r.NR2Count)/math.Max(1, float64(r.NR1Total)), r.NR1Total)
	keys := r.NR1Lengths.Keys()
	for _, k := range keys {
		fmt.Fprintf(&b, "  len %2d: %d\n", k, r.NR1Lengths.Count(k))
	}

	fmt.Fprintf(&b, "\nFigure 3: %d unique prober IPs, %.0f%% used more than once, max %d probes from one IP\n",
		r.UniqueIPs, r.MultiUseFraction*100, r.MaxPerIP)
	fmt.Fprintf(&b, "Table 2: most common prober IPs:\n")
	for _, ip := range r.TopIPs {
		fmt.Fprintf(&b, "  %-18s %d\n", ip.IP, ip.Count)
	}

	fmt.Fprintf(&b, "Table 3: unique prober IPs per AS:\n")
	type asn struct{ id, n int }
	var asns []asn
	for id, n := range r.ASCounts {
		asns = append(asns, asn{id, n})
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i].n > asns[j].n })
	for _, a := range asns {
		fmt.Fprintf(&b, "  AS%-6d %d\n", a.id, a.n)
	}

	fmt.Fprintf(&b, "\nFigure 5: %.1f%% of source ports in 32768–60999; min %d, max %d\n",
		r.EphemeralPortShare*100, r.MinPort, r.MaxPort)
	fmt.Fprintf(&b, "Figure 6: %d shared TSval processes (dominant ≈ %.1f Hz; 1000 Hz cluster has %d probes)\n",
		r.TSClusters, r.DominantRate, r.Cluster1000Hz)
	if r.DelayAll.Len() > 0 {
		fmt.Fprintf(&b, "Figure 7: replay delays — first: P(1s)=%.0f%% P(1min)=%.0f%% P(15min)=%.0f%%; min %.2fs max %.1fh\n",
			r.DelayFirst.P(1)*100, r.DelayFirst.P(60)*100, r.DelayFirst.P(900)*100,
			r.DelayAll.Min(), r.DelayAll.Max()/3600)
	}
	fmt.Fprintf(&b, "Figure 4: overlap — ours-only=%d ensafi-only=%d dunna-only=%d ours∩ensafi=%d ours∩dunna=%d ensafi∩dunna=%d\n",
		r.Overlap.AOnly, r.Overlap.BOnly, r.Overlap.COnly, r.Overlap.AB, r.Overlap.AC, r.Overlap.BC)
	return b.String()
}
