package experiment

import (
	"fmt"
	"strings"
	"time"

	"sslab/internal/defense"
	"sslab/internal/entropy"
	"sslab/internal/gfw"
	"sslab/internal/netsim"
	"sslab/internal/seedfork"
	"sslab/internal/sscrypto"
	"sslab/internal/trafficgen"
)

// BanStudyConfig scales the prober-IP-banning study.
type BanStudyConfig struct {
	Seed     int64
	Triggers int // default 300000
	GFW      gfw.Config
	// Impair, when set, applies a link-impairment profile to every
	// simulated link; nil keeps the idealized lossless network.
	Impair *netsim.LinkProfile `json:"Impair,omitempty"`
}

// BanStudyReport quantifies §3.3's claim that banning prober IPs is a
// weak defense: even the maximal policy (ban every prober address forever
// after its first probe) lets every first-contact probe through, and the
// pool's churn keeps supplying fresh addresses.
type BanStudyReport struct {
	Config       BanStudyConfig
	TotalProbes  int
	Dropped      int     // probes a banlist would have stopped
	Passed       int     // probes from never-before-seen addresses
	DroppedShare float64 // Dropped / TotalProbes
	BannedIPs    int
	// ConfirmationsLeaked counts replay probes that still reached the
	// server from fresh IPs — each one is a potential confirmation the
	// ban list failed to prevent.
	ConfirmationsLeaked int
}

// BanStudy runs a high-entropy sink campaign and replays the probe stream
// through the ideal ban list.
func BanStudy(cfg BanStudyConfig) (*BanStudyReport, error) {
	if cfg.Triggers == 0 {
		cfg.Triggers = 300000
	}
	sim, net := simNet(cfg.Seed, cfg.Impair)
	gcfg := cfg.GFW
	gcfg.Seed = seedfork.Fork(cfg.Seed, "banstudy.gfw")
	g := gfw.New(gfw.Env{Sim: sim, Net: net}, gfw.WithConfig(gcfg))
	net.AddMiddlebox(g)
	server := netsim.Endpoint{IP: "178.62.60.1", Port: 443}
	client := netsim.Endpoint{IP: "150.109.60.1", Port: 40000}
	host := &ServerHost{Sim: sim, Sink: true, seen: map[uint64]struct{}{}}
	net.AddHost(server, host)

	gen := entropy.NewGenerator(seedfork.Fork(cfg.Seed, "banstudy.entropy"))
	sent := 0
	var tick func()
	tick = func() {
		if sent >= cfg.Triggers {
			return
		}
		sent++
		net.Connect(client, server, gen.Random(1+gen.Intn(1000)), false, time.Time{})
		sim.After(5*time.Second, tick)
	}
	sim.After(0, tick)
	sim.Run()

	ban := defense.NewIPBanlist()
	r := &BanStudyReport{Config: cfg, TotalProbes: g.Log.Len()}
	for i := range g.Log.Records {
		rec := &g.Log.Records[i]
		if ban.Check(rec.SrcIP) {
			r.Dropped++
		} else if rec.Type.Replay() {
			r.ConfirmationsLeaked++
		}
	}
	r.Passed = ban.Passed
	r.BannedIPs = ban.Size()
	if r.TotalProbes > 0 {
		r.DroppedShare = float64(r.Dropped) / float64(r.TotalProbes)
	}
	return r, nil
}

// Render prints the ban-study summary.
func (r *BanStudyReport) Render() string {
	return fmt.Sprintf(
		"Prober-IP banning study (§3.3): %d probes, ideal ban-after-first-probe policy\n"+
			"  stopped: %d (%.0f%%)   still delivered: %d (every first contact)\n"+
			"  ban list grew to %d addresses; %d replay probes still reached the server\n"+
			"  conclusion: churn defeats banning — the paper's caution holds\n",
		r.TotalProbes, r.Dropped, r.DroppedShare*100, r.Passed, r.BannedIPs, r.ConfirmationsLeaked)
}

// MimicStudyConfig scales the TLS-framing study.
type MimicStudyConfig struct {
	Seed     int64
	Triggers int // per server; default 200000
	GFW      gfw.Config
	// Impair, when set, applies a link-impairment profile to every
	// simulated link; nil keeps the idealized lossless network.
	Impair *netsim.LinkProfile `json:"Impair,omitempty"`
}

// MimicStudyReport compares a TLS-framed Shadowsocks deployment against a
// plain one, under censors with and without a TLS whitelist.
type MimicStudyReport struct {
	Config MimicStudyConfig
	// Probes[whitelisted][framed] — four cells.
	PlainNoWL  int
	FramedNoWL int
	PlainWL    int
	FramedWL   int
}

// MimicStudy runs the four-cell experiment.
func MimicStudy(cfg MimicStudyConfig) (*MimicStudyReport, error) {
	if cfg.Triggers == 0 {
		cfg.Triggers = 200000
	}
	spec, err := sscrypto.Lookup("chacha20-ietf-poly1305")
	if err != nil {
		return nil, err
	}
	framing := defense.TLSRecordFraming{}

	run := func(whitelist, framed bool, cell int64) (int, error) {
		sim, net := simNet(cfg.Seed, cfg.Impair)
		gcfg := cfg.GFW
		gcfg.Seed = seedfork.Fork(cfg.Seed, "mimic.gfw", cell)
		gcfg.TLSWhitelist = whitelist
		g := gfw.New(gfw.Env{Sim: sim, Net: net}, gfw.WithConfig(gcfg))
		net.AddMiddlebox(g)
		server := netsim.Endpoint{IP: "178.62.61.1", Port: 443}
		client := netsim.Endpoint{IP: "150.109.61.1", Port: 40000}
		host := &ServerHost{Sim: sim, Sink: true, seen: map[uint64]struct{}{}}
		net.AddHost(server, host)

		tg := trafficgen.New(seedfork.Fork(cfg.Seed, "mimic.trafficgen", cell))
		sent := 0
		var tick func()
		tick = func() {
			if sent >= cfg.Triggers {
				return
			}
			sent++
			wire := tg.FirstWirePacket(spec, trafficgen.BrowseAlexa)
			if framed {
				wire = framing.FrameFirstPacket(wire)
			}
			net.Connect(client, server, wire, false, time.Time{})
			sim.After(5*time.Second, tick)
		}
		sim.After(0, tick)
		sim.Run()
		return g.Log.Len(), nil
	}

	r := &MimicStudyReport{Config: cfg}
	if r.PlainNoWL, err = run(false, false, 1); err != nil {
		return nil, err
	}
	if r.FramedNoWL, err = run(false, true, 2); err != nil {
		return nil, err
	}
	if r.PlainWL, err = run(true, false, 3); err != nil {
		return nil, err
	}
	if r.FramedWL, err = run(true, true, 4); err != nil {
		return nil, err
	}
	return r, nil
}

// Render prints the four-cell comparison.
func (r *MimicStudyReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "TLS-framing study (§8 mechanism): probes per %d connections\n", r.Config.Triggers)
	fmt.Fprintf(&b, "  %-26s %-12s %s\n", "censor \\ deployment", "plain SS", "TLS-framed SS")
	fmt.Fprintf(&b, "  %-26s %-12d %d\n", "length+entropy only", r.PlainNoWL, r.FramedNoWL)
	fmt.Fprintf(&b, "  %-26s %-12d %d\n", "with TLS whitelist", r.PlainWL, r.FramedWL)
	b.WriteString("  framing helps exactly when the censor cannot afford to probe TLS\n")
	return b.String()
}
