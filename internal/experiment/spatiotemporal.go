package experiment

import (
	"fmt"
	"strings"

	"sslab/internal/fleet"
	"sslab/internal/gfw"
	"sslab/internal/region"
	"sslab/internal/seedfork"
	"sslab/internal/stats"
)

// The spatiotemporal experiment models what censorship measurement
// studies keep reporting and single-censor simulations cannot: the GFW
// is not one machine. Blocking pressure differs by province and ISP,
// and it moves — sensitivity tightens around politically charged
// dates, probing pauses and resumes, block lifetimes stretch and
// shrink. The experiment sweeps schedule *shapes* over a regional
// sensitivity gradient and reports how the same fleet of servers and
// users fares under each regime: per-region blocked-user fractions,
// detection latencies, and server lifetimes over multi-week horizons.

// SpatioConfig parameterizes the regional-gradient × schedule-shape
// sweep. Zero values take the full-scale defaults noted per field.
type SpatioConfig struct {
	// Seed drives all randomness; each shape runs under an independent
	// fork, so adding a shape never perturbs the others.
	Seed int64
	// Users, UsersPerServer, Hours size each shape's population run
	// (defaults 20000 / 50 / 504 — three virtual weeks).
	Users          int
	UsersPerServer int
	Hours          int
	// Shards space-shards each run (default 1). Science, like every
	// config field; the -workers count executing the shards is not.
	Shards int `json:",omitempty"`
	// Regions sizes the sensitivity gradient (default 4).
	Regions int
	// BaseSensitivity is region 0's censor sensitivity (default 0.05)
	// and SensitivityStep the per-region increment (default 0.3);
	// region r runs at min(1, base + r·step), so the default gradient
	// is 0.05, 0.35, 0.65, 0.95.
	BaseSensitivity float64
	SensitivityStep float64
	// Shapes are the schedule shapes to sweep (default ScheduleShapes).
	Shapes []string `json:",omitempty"`
	// Mix is the server implementation mix (default: 70% paper-era
	// Shadowsocks, 30% web — undefended enough that regional contrast
	// is visible, with a false-positive yardstick).
	Mix []fleet.ImplShare `json:",omitempty"`
	// GFW is the censor configuration shared by every region; the
	// gradient overrides Sensitivity per region.
	GFW gfw.Config
}

// ScheduleShapes are the swept policy regimes, each a named generator
// of per-region schedules over the run's horizon:
//
//   - steady: no events — the pure spatial gradient.
//   - crackdown: every region steps to sensitivity 1 for the middle
//     third of the run, then back to its gradient value.
//   - lull: probing pauses for the middle third (infrastructure
//     maintenance, diverted attention), then resumes.
//   - thaw: at half-horizon the block TTL drops to 24h jitter-free —
//     old blocks expire quickly, modeling a quiet relaxation.
var ScheduleShapes = []string{"steady", "crackdown", "lull", "thaw"}

// shapeSchedule builds one region's schedule for a named shape.
// regionSens is the region's gradient sensitivity, restored after
// temporary excursions.
func shapeSchedule(shape string, hours int, regionSens float64) (region.Schedule, error) {
	h := float64(hours)
	switch shape {
	case "steady":
		return nil, nil
	case "crackdown":
		return region.Schedule{
			{AtHours: h / 3, Kind: region.KindSensitivity, Value: 1},
			{AtHours: 2 * h / 3, Kind: region.KindSensitivity, Value: regionSens},
		}, nil
	case "lull":
		return region.Schedule{
			{AtHours: h / 3, Kind: region.KindPause},
			{AtHours: 2 * h / 3, Kind: region.KindResume},
		}, nil
	case "thaw":
		return region.Schedule{
			{AtHours: h / 2, Kind: region.KindBlockTTL, Value: 24},
		}, nil
	default:
		return nil, fmt.Errorf("unknown schedule shape %q (have %s)",
			shape, strings.Join(ScheduleShapes, ", "))
	}
}

// SpatioRow is one schedule shape's outcome over the regional gradient.
type SpatioRow struct {
	// Name is the shape name — the campaign flattener's row key, so
	// merged sweeps keep one row per shape.
	Name string

	// Global outcome.
	BlockedUserFraction float64
	EverBlockedUsers    int64
	Blocks              int
	ProbesSent          int
	Replacements        int64
	DetectionLatency    stats.Summary
	ServerLifetime      stats.Summary

	// PerRegion is the gradient breakdown, in topology order.
	PerRegion []fleet.RegionStats
}

// SpatioReport is the experiment's report: one row per schedule shape.
type SpatioReport struct {
	Config SpatioConfig
	// RegionNames are the gradient's region names with their
	// sensitivities, for rendering and row alignment.
	RegionNames []string
	Rows        []SpatioRow
}

// Spatiotemporal runs every configured schedule shape against
// independently seeded copies of the same regionally partitioned
// population. The variadic options are fleet execution options (worker
// pools, metrics sinks) applied to every run; they never change report
// bytes.
func Spatiotemporal(cfg SpatioConfig, opts ...fleet.Option) (*SpatioReport, error) {
	users := cfg.Users
	if users == 0 {
		users = 20000
	}
	ups := cfg.UsersPerServer
	if ups == 0 {
		ups = 50
	}
	hours := cfg.Hours
	if hours == 0 {
		hours = 3 * 168 // three virtual weeks
	}
	nRegions := cfg.Regions
	if nRegions == 0 {
		nRegions = 4
	}
	base := cfg.BaseSensitivity
	if base == 0 {
		base = 0.05
	}
	step := cfg.SensitivityStep
	if step == 0 {
		step = 0.3
	}
	shapes := cfg.Shapes
	if len(shapes) == 0 {
		shapes = ScheduleShapes
	}
	mix := cfg.Mix
	if len(mix) == 0 {
		mix = []fleet.ImplShare{
			{Impl: "sspython", Weight: 0.7},
			{Impl: "web", Weight: 0.3},
		}
	}

	sens := make([]float64, nRegions)
	names := make([]string, nRegions)
	for r := 0; r < nRegions; r++ {
		sens[r] = base + float64(r)*step
		if sens[r] > 1 {
			sens[r] = 1
		}
		names[r] = fmt.Sprintf("r%d-s%.2f", r, sens[r])
	}

	rep := &SpatioReport{Config: cfg, RegionNames: names}
	for i, shape := range shapes {
		topo := &region.Topology{Regions: make([]region.Region, nRegions)}
		for r := 0; r < nRegions; r++ {
			gcfg := cfg.GFW
			gcfg.Sensitivity = sens[r]
			sched, err := shapeSchedule(shape, hours, sens[r])
			if err != nil {
				return nil, fmt.Errorf("spatiotemporal: %w", err)
			}
			topo.Regions[r] = region.Region{
				Name:     names[r],
				Weight:   1,
				GFW:      &gcfg,
				Schedule: sched,
			}
		}
		fcfg := fleet.Config{
			Seed:           seedfork.Fork(cfg.Seed, "spatio.shape", int64(i)),
			Users:          users,
			UsersPerServer: ups,
			Hours:          hours,
			Shards:         cfg.Shards,
			Mix:            mix,
			GFW:            cfg.GFW,
			Regions:        topo,
		}
		fr, err := fleet.Run(fcfg, opts...)
		if err != nil {
			return nil, fmt.Errorf("spatiotemporal shape %q: %w", shape, err)
		}
		rep.Rows = append(rep.Rows, SpatioRow{
			Name:                shape,
			BlockedUserFraction: fr.BlockedUserFraction,
			EverBlockedUsers:    fr.EverBlockedUsers,
			Blocks:              fr.Blocks,
			ProbesSent:          fr.ProbesSent,
			Replacements:        fr.Replacements,
			DetectionLatency:    fr.DetectionLatency,
			ServerLifetime:      fr.ServerLifetime,
			PerRegion:           fr.PerRegion,
		})
	}
	return rep, nil
}

// Render implements Report: a blocked-user matrix (shapes × regions)
// plus per-shape cost and timing lines.
func (r *SpatioReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Spatiotemporal: %d schedule shapes × %d-region sensitivity gradient (seed %d)\n",
		len(r.Rows), len(r.RegionNames), r.Config.Seed)
	if len(r.Rows) == 0 {
		return b.String()
	}

	fmt.Fprintf(&b, "\n  %% of users ever blocked, by region:\n")
	fmt.Fprintf(&b, "  %-10s", "shape")
	for _, name := range r.RegionNames {
		fmt.Fprintf(&b, " %12s", name)
	}
	b.WriteString("\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-10s", row.Name)
		for _, rg := range row.PerRegion {
			fmt.Fprintf(&b, " %11.2f%%", 100*rg.BlockedUserFraction)
		}
		b.WriteString("\n")
	}

	b.WriteString("\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-10s blocked %5.2f%% of users, %d blocks, probes %d, median latency %s, median lifetime %s\n",
			row.Name, 100*row.BlockedUserFraction, row.Blocks, row.ProbesSent,
			fmtDurS(row.DetectionLatency.P50), fmtDurS(row.ServerLifetime.P50))
	}
	return b.String()
}

// spatioRunner registers the sweep under the "spatiotemporal" name.
// Fast scale is four shapes over a 1200-user, 12-hour gradient with
// aggressive recording so the regional contrast is visible in seconds;
// full scale leaves the config zeroed for the three-week default.
var spatioRunner = workersRunner[SpatioConfig]{
	runner: runner[SpatioConfig]{
		name: "spatiotemporal",
		desc: "regional sensitivity gradients × policy schedules: per-region blocking over weeks",
		config: func(seed int64, full bool) SpatioConfig {
			cfg := SpatioConfig{Seed: seed}
			if !full {
				cfg.Users = 1200
				cfg.UsersPerServer = 40
				cfg.Hours = 12
				cfg.GFW = gfw.Config{PoolSize: 2000, ReplayBase: 0.3}
			}
			return cfg
		},
		run: func(cfg SpatioConfig) (Report, error) { return Spatiotemporal(cfg) },
	},
	runWorkers: func(cfg SpatioConfig, workers int) (Report, error) {
		return Spatiotemporal(cfg, fleet.WithWorkers(workers))
	},
}
