package experiment

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"sslab/internal/probe"
	"sslab/internal/probesim"
	"sslab/internal/reaction"
	"sslab/internal/seedfork"
	"sslab/internal/sscrypto"
	"sslab/internal/stats"
)

// ProbeCostConfig scales the probes-to-confirmation study.
type ProbeCostConfig struct {
	Seed   int64
	Trials int // SPRT repetitions per configuration (default 100)
}

// ProbeCostResult is one configuration's confirmation cost.
type ProbeCostResult struct {
	Name string
	// MeanProbes is the average number of probes until the sequential
	// test confirms the protocol; -1 means the test never decides (the
	// server is statistically indistinguishable from a silent service).
	MeanProbes float64
	MaxProbes  int
}

// ProbeCostReport formalizes §5.2.2's observation that "the GFW needs
// only a single probe to detect and block a Tor server, but a set of
// several probes before blocking a Shadowsocks server": confirmation is a
// sequential hypothesis test, and its expected sample size is governed by
// how far the server's reaction distribution sits from an innocuous
// server's. A hardened server that always times out is indistinguishable
// from a silent packet filter — the test never terminates.
type ProbeCostReport struct {
	Config  ProbeCostConfig
	Results []ProbeCostResult
}

// The composite null: an innocuous server is either a generic noisy
// service (banners, resets) or a silent packet filter that drops garbage.
// Confirmation requires rejecting BOTH — which is what makes the §7.2
// timeout-everywhere strategy unconfirmable: it is identical to the
// silent null.
var (
	noisyH0  = map[string]float64{"RST": 0.3, "FIN/ACK": 0.1, "DATA": 0.35, "TIMEOUT": 0.25}
	silentH0 = map[string]float64{"TIMEOUT": 1.0}
)

// probeCap bounds a single SPRT run.
const probeCap = 3000

// ProbeCost runs the study.
func ProbeCost(cfg ProbeCostConfig) (*ProbeCostReport, error) {
	if cfg.Trials == 0 {
		cfg.Trials = 100
	}
	report := &ProbeCostReport{Config: cfg}

	// Tor-like: one probe elicits a protocol-unique response.
	report.Results = append(report.Results, torLikeCost(cfg))

	// Shadowsocks configurations: reactions sampled from the real
	// reaction engine under NR1-style probe lengths.
	for _, c := range []struct {
		name    string
		profile reaction.Profile
		method  string
	}{
		{"ss-libev-old stream 8B-IV", reaction.LibevOld, "chacha20"},
		{"ss-libev-old stream 16B-IV", reaction.LibevOld, "aes-256-ctr"},
		{"ss-libev-old AEAD", reaction.LibevOld, "aes-256-gcm"},
		{"outline-1.0.6", reaction.Outline106, "chacha20-ietf-poly1305"},
		{"ss-libev-new AEAD", reaction.LibevNew, "aes-256-gcm"},
		{"outline-1.0.7", reaction.Outline107, "chacha20-ietf-poly1305"},
		{"hardened", reaction.Hardened, "chacha20-ietf-poly1305"},
	} {
		r, err := ssCost(cfg, c.name, c.profile, c.method)
		if err != nil {
			return nil, err
		}
		report.Results = append(report.Results, r)
	}
	return report, nil
}

// torLikeCost: H1 assigns almost all mass to the distinctive handshake
// response; the first observation decides.
func torLikeCost(cfg ProbeCostConfig) ProbeCostResult {
	rng := rand.New(rand.NewSource(seedfork.Fork(cfg.Seed, "probecost.tor")))
	total, max := 0, 0
	for i := 0; i < cfg.Trials; i++ {
		s := &stats.SPRT{
			H1: map[string]float64{"tor-handshake": 0.999, "other": 0.001},
			H0: map[string]float64{"other": 0.999, "tor-handshake": 0.001},
		}
		for {
			out := "tor-handshake"
			if rng.Float64() < 0.001 {
				out = "other"
			}
			if s.Observe(out) != stats.Undecided {
				break
			}
		}
		total += s.N()
		if s.N() > max {
			max = s.N()
		}
	}
	return ProbeCostResult{Name: "tor-like", MeanProbes: float64(total) / float64(cfg.Trials), MaxProbes: max}
}

// ssCost learns the configuration's reaction distribution from the
// reaction engine, then measures the SPRT's stopping time against the
// innocuous null.
func ssCost(cfg ProbeCostConfig, name string, p reaction.Profile, method string) (ProbeCostResult, error) {
	spec, err := sscrypto.Lookup(method)
	if err != nil {
		return ProbeCostResult{}, err
	}
	// Probe-length mix: the GFW's NR1 trio lengths plus 221 — the set
	// designed to straddle the reaction thresholds.
	lengths := append(probe.NR1Lengths(), probe.NR2Length)

	// Estimate H1 empirically (the attacker can precompute this from a
	// reference install, as §5.1's simulator does).
	m, err := probesim.ScanRandom(p, spec, "cost-pw", lengths, 200, seedfork.Fork(cfg.Seed, "probecost.scan."+name))
	if err != nil {
		return ProbeCostResult{}, err
	}
	h1 := map[string]float64{}
	total := 0
	for _, n := range lengths {
		for r, c := range m.Cells[n] {
			h1[r.String()] += float64(c)
			total += c
		}
	}
	for k := range h1 {
		h1[k] /= float64(total)
	}

	// Fresh server for the sequential runs.
	srv, err := reaction.NewServer(p, spec, "cost-pw-live")
	if err != nil {
		return ProbeCostResult{}, err
	}
	rng := rand.New(rand.NewSource(seedfork.Fork(cfg.Seed, "probecost.live."+name)))
	now := time.Date(2019, 9, 29, 0, 0, 0, 0, time.UTC)

	sumN, maxN, undecided := 0, 0, 0
	for i := 0; i < cfg.Trials; i++ {
		sNoisy := &stats.SPRT{H1: h1, H0: noisyH0}
		sSilent := &stats.SPRT{H1: h1, H0: silentH0}
		vNoisy, vSilent := stats.Undecided, stats.Undecided
		n := 0
		for n < probeCap && (vNoisy == stats.Undecided || vSilent == stats.Undecided) {
			n++
			payload := make([]byte, lengths[rng.Intn(len(lengths))])
			rng.Read(payload)
			out := srv.React(payload, now).Reaction.String()
			if vNoisy == stats.Undecided {
				vNoisy = sNoisy.Observe(out)
			}
			if vSilent == stats.Undecided {
				vSilent = sSilent.Observe(out)
			}
		}
		if vNoisy != stats.AcceptH1 || vSilent != stats.AcceptH1 {
			undecided++
			continue
		}
		sumN += n
		if n > maxN {
			maxN = n
		}
	}
	res := ProbeCostResult{Name: name, MaxProbes: maxN}
	if undecided > cfg.Trials/2 {
		res.MeanProbes = -1 // indistinguishable from a silent service
	} else if cfg.Trials > undecided {
		res.MeanProbes = float64(sumN) / float64(cfg.Trials-undecided)
	}
	return res, nil
}

// Render prints the confirmation-cost table.
func (r *ProbeCostReport) Render() string {
	var b strings.Builder
	b.WriteString("Probes-to-confirmation (§5.2.2 formalized as a sequential test, α=β=1%):\n")
	for _, res := range r.Results {
		if res.MeanProbes < 0 {
			fmt.Fprintf(&b, "  %-28s never — indistinguishable from a silent service\n", res.Name)
			continue
		}
		fmt.Fprintf(&b, "  %-28s mean %.1f probes (max %d)\n", res.Name, res.MeanProbes, res.MaxProbes)
	}
	b.WriteString("  (Tor: one distinctive response; Shadowsocks: a statistical set; hardened: unconfirmable)\n")
	return b.String()
}
