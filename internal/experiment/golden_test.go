package experiment

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"sslab/internal/gfw"
)

// updateGolden rewrites the committed golden reports. Run
//
//	go test ./internal/experiment -run TestGoldenZeroImpairment -update-golden
//
// only when an intentional behaviour change is being made; the files
// exist to prove that refactors (and the impairment layer with all
// impairments zeroed) leave every experiment's report byte-identical.
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden reports")

// goldenCases are compact configurations of every netsim-backed
// experiment. They are intentionally small (each runs in a second or
// two) but exercise the full pipeline: traffic generation, the passive
// detector, staged probing, the prober pool, and blocking.
func goldenCases() []struct {
	name string
	run  func() (Report, error)
} {
	return []struct {
		name string
		run  func() (Report, error)
	}{
		{"shadowsocks", func() (Report, error) {
			return ShadowsocksExperiment(ShadowsocksConfig{
				Seed: 1, Days: 4, ConnsPerPairPerHour: 30,
				GFW: gfw.Config{PoolSize: 2000},
			})
		}},
		{"sink", func() (Report, error) {
			return SinkExperiments(SinkConfig{
				Seed: 1, Hours: 30, ConnsPerHour: 600,
				GFW: gfw.Config{PoolSize: 1500},
			})
		}},
		{"blocking", func() (Report, error) {
			return BlockingExperiment(BlockingConfig{
				Seed: 1, Days: 5,
				GFW: gfw.Config{PoolSize: 1500},
			})
		}},
		{"brdgrd", func() (Report, error) {
			return BrdgrdExperiment(BrdgrdConfig{
				Seed: 1, Hours: 60, OnWindows: [][2]int{{15, 30}},
				GFW: gfw.Config{PoolSize: 1500},
			})
		}},
		{"fpstudy", func() (Report, error) {
			return FPStudy(FPStudyConfig{
				Seed: 1, FlowsPerKind: 15000,
				GFW: gfw.Config{PoolSize: 1000},
			})
		}},
		{"banstudy", func() (Report, error) {
			return BanStudy(BanStudyConfig{
				Seed: 1, Triggers: 40000,
				GFW: gfw.Config{PoolSize: 1500},
			})
		}},
		{"mimicstudy", func() (Report, error) {
			return MimicStudy(MimicStudyConfig{
				Seed: 1, Triggers: 20000,
				GFW: gfw.Config{PoolSize: 1000},
			})
		}},
	}
}

// TestGoldenZeroImpairment locks the JSON report of each experiment to
// the committed golden bytes. Any change to simulator behaviour under
// default (zero-impairment) conditions — RNG draw order, event
// ordering, report field sets — fails here, which is the acceptance
// gate for the impairment layer: with all impairments zeroed the merged
// reports must be byte-identical to the pre-impairment output.
func TestGoldenZeroImpairment(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several compact experiments; skipped with -short")
	}
	for _, tc := range goldenCases() {
		t.Run(tc.name, func(t *testing.T) {
			rep, err := tc.run()
			if err != nil {
				t.Fatal(err)
			}
			got, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", "golden", tc.name+".json")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("reading golden (run with -update-golden to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s report diverged from golden %s (%d vs %d bytes); "+
					"zero-impairment output must stay byte-identical — if the change is intentional, regenerate with -update-golden",
					tc.name, path, len(got), len(want))
			}
		})
	}
}
