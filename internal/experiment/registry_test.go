package experiment

import (
	"encoding/json"
	"testing"

	"sslab/internal/fleet"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"table1", "shadowsocks", "sink", "brdgrd", "blocking",
		"fpstudy", "banstudy", "mimicstudy", "probecost", "matrix", "robustness",
		"fleet", "armsrace", "spatiotemporal"}
	rs := Runners()
	if len(rs) != len(want) {
		t.Fatalf("registry has %d runners, want %d", len(rs), len(want))
	}
	for i, name := range want {
		if rs[i].Name() != name {
			t.Errorf("runner %d = %q, want %q (presentation order)", i, rs[i].Name(), name)
		}
		if _, ok := Lookup(name); !ok {
			t.Errorf("Lookup(%q) failed", name)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup accepted an unknown name")
	}
	if len(Names()) != len(want) {
		t.Error("Names() incomplete")
	}
	for _, r := range rs {
		if r.Description() == "" {
			t.Errorf("%s: empty description (-list output would be blank)", r.Name())
		}
	}
}

// TestRunnerConfigRoundTrips: every config must survive a JSON round
// trip (the campaign engine applies grid overrides through one) and
// carry the seed it was built with.
func TestRunnerConfigRoundTrips(t *testing.T) {
	for _, r := range Runners() {
		cfg := r.Config(77, false)
		b, err := json.Marshal(cfg)
		if err != nil {
			t.Fatalf("%s: marshal: %v", r.Name(), err)
		}
		if err := json.Unmarshal(b, cfg); err != nil {
			t.Fatalf("%s: unmarshal: %v", r.Name(), err)
		}
		b2, err := json.Marshal(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if string(b) != string(b2) {
			t.Errorf("%s: config not stable under JSON round trip:\n%s\nvs\n%s", r.Name(), b, b2)
		}
		if r.Name() != "table1" && !contains(string(b), `"Seed":77`) {
			t.Errorf("%s: config JSON missing seed: %s", r.Name(), b)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestRunnerRunsSmall drives two cheap experiments end-to-end through
// the Runner interface and checks the reports marshal to JSON.
func TestRunnerRunsSmall(t *testing.T) {
	for _, tc := range []struct {
		name  string
		shape func(cfg any)
	}{
		{"table1", func(any) {}},
		{"probecost", func(cfg any) { cfg.(*ProbeCostConfig).Trials = 5 }},
		{"matrix", func(cfg any) { cfg.(*MatrixConfig).Trials = 5 }},
		{"fleet", func(cfg any) {
			c := cfg.(*fleet.Config)
			c.Users = 300
			c.Hours = 2
		}},
		{"armsrace", func(cfg any) {
			c := cfg.(*ArmsRaceConfig)
			c.Users = 300
			c.Hours = 2
			c.Chains = [][]string{{"shadowsocks"}, {"ss", "ovpn", "fep"}}
		}},
	} {
		r, ok := Lookup(tc.name)
		if !ok {
			t.Fatalf("no runner %q", tc.name)
		}
		cfg := r.Config(3, false)
		tc.shape(cfg)
		rep, err := r.Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if rep.Render() == "" {
			t.Errorf("%s: empty render", tc.name)
		}
		if _, err := json.Marshal(rep); err != nil {
			t.Errorf("%s: report does not marshal: %v", tc.name, err)
		}
	}
}

func TestRunnerRejectsWrongConfigType(t *testing.T) {
	r, _ := Lookup("probecost")
	if _, err := r.Run(&MatrixConfig{}); err == nil {
		t.Fatal("wrong config type accepted")
	}
}
