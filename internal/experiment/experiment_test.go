package experiment

import (
	"strings"
	"testing"

	"sslab/internal/gfw"
	"sslab/internal/probe"
	"sslab/internal/reaction"
)

func TestTable1(t *testing.T) {
	tl := Table1()
	if len(tl.Rows) != 3 {
		t.Fatalf("Table 1 has %d rows", len(tl.Rows))
	}
	out := tl.Render()
	for _, want := range []string{"Shadowsocks", "Sink", "Brdgrd", "4 months", "403 hours"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 render missing %q", want)
		}
	}
}

// smallSS is a scaled-down §3.1 experiment for tests (~12 days).
func smallSS(t *testing.T) *ShadowsocksReport {
	t.Helper()
	r, err := ShadowsocksExperiment(ShadowsocksConfig{
		Seed: 11, Days: 12, ConnsPerPairPerHour: 60,
		GFW: gfw.Config{PoolSize: 4000},
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestShadowsocksExperiment(t *testing.T) {
	r := smallSS(t)

	if r.ControlProbes != 0 {
		t.Errorf("control host received %d probes; proactive scanning crept in", r.ControlProbes)
	}
	if r.Probes < 500 {
		t.Fatalf("only %d probes in %d days", r.Probes, r.Config.Days)
	}

	// §3.2: R3/R4/R5 must be exclusive to the OutlineVPN pair.
	for _, p := range r.Pairs {
		stage2 := p.TypeCounts[probe.R3] + p.TypeCounts[probe.R4] + p.TypeCounts[probe.R5]
		if p.Profile == reaction.Outline107 {
			if stage2 == 0 {
				t.Errorf("%s: expected stage-2 probes, got none", p.Name)
			}
			if p.Stage != 2 {
				t.Errorf("%s: stage = %d, want 2", p.Name, p.Stage)
			}
		} else if stage2 != 0 {
			t.Errorf("%s (%s): received %d stage-2 probes; paper saw none for libev",
				p.Name, p.Profile.Versions, stage2)
		}
	}

	// Figure 2 shape: NR2 over 221 bytes, several NR1 trio lengths, and
	// NR2 roughly 3x all NR1 combined (loose band: 1.5–6x).
	if r.NR2Count == 0 || r.NR1Total == 0 {
		t.Fatalf("NR probes missing: NR1=%d NR2=%d", r.NR1Total, r.NR2Count)
	}
	ratio := float64(r.NR2Count) / float64(r.NR1Total)
	if ratio < 1.2 || ratio > 8 {
		t.Errorf("NR2/NR1 ratio %.1f, want ≈3", ratio)
	}
	for _, k := range r.NR1Lengths.Keys() {
		valid := false
		for _, l := range probe.NR1Lengths() {
			if k == l {
				valid = true
			}
		}
		if !valid {
			t.Errorf("NR1 histogram contains invalid length %d", k)
		}
	}

	// Figure 5 / §3.4 fingerprints.
	if r.EphemeralPortShare < 0.85 || r.EphemeralPortShare > 0.95 {
		t.Errorf("ephemeral port share %.2f", r.EphemeralPortShare)
	}
	if r.MinPort < 1024 {
		t.Errorf("min port %d", r.MinPort)
	}

	// Figure 6: several shared processes.
	if r.TSClusters < 5 {
		t.Errorf("TS clusters = %d, want >= 5 at this scale", r.TSClusters)
	}
	if r.DominantRate < 245 || r.DominantRate > 255 {
		t.Errorf("dominant TS rate %.1f", r.DominantRate)
	}

	// Figure 7 anchors (bands widened for sample size).
	if r.DelayAll.Len() < 100 {
		t.Fatalf("replay delays = %d", r.DelayAll.Len())
	}
	if p := r.DelayAll.P(60); p < 0.35 || p > 0.65 {
		t.Errorf("P(delay<=1min) = %.2f", p)
	}

	// Figure 4: our set overlaps only slightly with the historical ones.
	if r.Overlap.AB == 0 && r.Overlap.AC == 0 {
		t.Error("no overlap at all with historical datasets")
	}
	if r.Overlap.AB > r.UniqueIPs/10 {
		t.Error("overlap with Ensafi set implausibly large")
	}

	// Render must include every artifact heading.
	out := r.Render()
	for _, want := range []string{"Figure 2", "Figure 3", "Table 2", "Table 3", "Figure 5", "Figure 6", "Figure 7", "Figure 4"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestSinkExperiments(t *testing.T) {
	r, err := SinkExperiments(SinkConfig{Seed: 21, Hours: 60, ConnsPerHour: 1500, GFW: gfw.Config{PoolSize: 3000}})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("Table 4 rows = %d", len(r.Rows))
	}

	// Exp 1.a (sink) gets probes despite never answering.
	if r.Rows[0].Probes < 100 {
		t.Errorf("Exp 1.a probes = %d", r.Rows[0].Probes)
	}
	// Stage-2 probes appear only after the responding switch.
	if r.Stage2BeforeSwitch != 0 {
		t.Errorf("stage-2 probes before the switch: %d", r.Stage2BeforeSwitch)
	}
	if r.Stage2AfterSwitch == 0 {
		t.Error("no stage-2 probes after the responding switch")
	}

	// Exp 2 (low entropy) must receive significantly fewer probes than 1.a.
	if r.Rows[2].Probes*2 >= r.Rows[0].Probes {
		t.Errorf("low-entropy probes (%d) not significantly below high-entropy (%d)",
			r.Rows[2].Probes, r.Rows[0].Probes)
	}

	// Figure 8: support and stair-step.
	if r.ReplayLenMin < 160 || r.ReplayLenMax > 999 {
		t.Errorf("replay lengths %d–%d outside [160,999]", r.ReplayLenMin, r.ReplayLenMax)
	}
	if r.Rem9ShareLow < 0.55 {
		t.Errorf("remainder-9 share (168–263) = %.2f, want ≈0.72", r.Rem9ShareLow)
	}
	if r.Rem2ShareHigh < 0.85 {
		t.Errorf("remainder-2 share (384–687) = %.2f, want ≈0.96", r.Rem2ShareHigh)
	}
	if r.MixShareMid < 0.5 {
		t.Errorf("remainders 9+2 share (264–383) = %.2f, want ≈0.69", r.MixShareMid)
	}

	// Figure 9: monotone-ish growth; top bin several times the H≈3 bin.
	if len(r.ReplayRatios) != 8 {
		t.Fatalf("entropy bins = %d", len(r.ReplayRatios))
	}
	if r.ReplayRatios[7] <= r.ReplayRatios[2] {
		t.Errorf("replay ratio not increasing with entropy: %v", r.ReplayRatios)
	}

	if out := r.Render(); !strings.Contains(out, "Table 4") || !strings.Contains(out, "Figure 9") {
		t.Error("render incomplete")
	}
}

func TestBrdgrdExperiment(t *testing.T) {
	r, err := BrdgrdExperiment(BrdgrdConfig{
		Seed: 31, Hours: 160, ConnsPer5Min: 16,
		OnWindows: [][2]int{{60, 110}},
		GFW:       gfw.Config{PoolSize: 3000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.MeanRateOff <= 0 {
		t.Fatal("no probes while brdgrd off; experiment inert")
	}
	// Figure 11's shape: probing collapses while shaping is active.
	if r.MeanRateOn > r.MeanRateOff*0.25 {
		t.Errorf("probe rate on=%.2f/h vs off=%.2f/h; shaping ineffective", r.MeanRateOn, r.MeanRateOff)
	}
	// The control server's probing is unaffected throughout.
	controlTotal := 0
	for _, v := range r.ControlPerHour {
		controlTotal += v
	}
	if controlTotal == 0 {
		t.Error("control server received no probes")
	}
	if out := r.Render(); !strings.Contains(out, "brdgrd") {
		t.Error("render incomplete")
	}
}

func TestBlockingExperiment(t *testing.T) {
	r, err := BlockingExperiment(BlockingConfig{
		Seed: 51, Days: 25, Sensitivity: 0.8,
		GFW: gfw.Config{PoolSize: 3000},
	})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]BlockedServer{}
	for _, s := range r.Servers {
		byName[s.Name] = s
	}
	// The §6 shape: the stream, replay-serving implementations get
	// blocked; the studied libev/outline configurations and the hardened
	// profile do not.
	for _, name := range []string{"ss-python", "ssr"} {
		s := byName[name]
		if !s.Blocked {
			t.Errorf("%s was not blocked despite serving replays and RSTing probes", name)
		}
		if s.Blocked && s.OutageObserved == 0 {
			t.Errorf("%s blocked but its client saw no outage", name)
		}
	}
	for _, name := range []string{"libev-new", "outline-1.0.7", "hardened"} {
		if byName[name].Blocked {
			t.Errorf("%s was blocked; the paper's servers of this kind survived", name)
		}
	}
	// Everyone gets probed regardless of blocking fate.
	for _, s := range r.Servers {
		if s.Probes == 0 {
			t.Errorf("%s received no probes at all", s.Name)
		}
	}
	if out := r.Render(); !strings.Contains(out, "by ") && !strings.Contains(out, "blocked") {
		t.Error("render incomplete")
	}
}

func TestReactionMatrices(t *testing.T) {
	r, err := ReactionMatrices(MatrixConfig{Seed: 41, Trials: 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Stream) != 6 || len(r.AEAD) != 9 || len(r.Replay) != 9 {
		t.Fatalf("matrix counts: stream=%d aead=%d replay=%d", len(r.Stream), len(r.AEAD), len(r.Replay))
	}
	out := r.Render()
	for _, want := range []string{"Figure 10a", "Figure 10b", "Table 5", "outline-ss-server", "shadowsocks-libev"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFPStudy(t *testing.T) {
	r, err := FPStudy(FPStudyConfig{Seed: 61, FlowsPerKind: 25000, GFW: gfw.Config{PoolSize: 2000}})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Classes) != 4 {
		t.Fatalf("classes = %d", len(r.Classes))
	}
	rates := map[string]float64{}
	for _, c := range r.Classes {
		rates[c.Kind] = c.Rate
	}
	// Fully encrypted protocols draw substantially more probing than
	// plaintext HTTP; the VMess-like class is hit like Shadowsocks —
	// §9's conjecture.
	if rates["shadowsocks"] <= 2*rates["direct-http"] {
		t.Errorf("shadowsocks %.2f vs direct-http %.2f: detector not separating", rates["shadowsocks"], rates["direct-http"])
	}
	if rates["vmess-like"] <= 2*rates["direct-http"] {
		t.Errorf("vmess-like %.2f vs direct-http %.2f", rates["vmess-like"], rates["direct-http"])
	}
	// Direct TLS remains heavily exposed under pure length+entropy — at
	// least half the Shadowsocks rate. That non-separation is the study's
	// finding: the production GFW must exempt TLS by other means.
	if rates["direct-tls"] < 0.4*rates["shadowsocks"] {
		t.Errorf("direct-tls %.2f unexpectedly low vs shadowsocks %.2f", rates["direct-tls"], rates["shadowsocks"])
	}
	if out := r.Render(); !strings.Contains(out, "probes/1000") {
		t.Error("render incomplete")
	}
}

func TestBanStudy(t *testing.T) {
	r, err := BanStudy(BanStudyConfig{Seed: 71, Triggers: 120000, GFW: gfw.Config{PoolSize: 4000}})
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalProbes < 300 {
		t.Fatalf("probes = %d", r.TotalProbes)
	}
	if r.Dropped+r.Passed != r.TotalProbes {
		t.Error("accounting broken")
	}
	// The paper's point: even the ideal policy lets substantial probing
	// through (every first contact) and replay confirmations leak.
	if r.Passed == 0 || r.ConfirmationsLeaked == 0 {
		t.Errorf("banlist implausibly perfect: passed=%d leaked=%d", r.Passed, r.ConfirmationsLeaked)
	}
	if r.DroppedShare > 0.85 {
		t.Errorf("dropped share %.2f too high; churn model broken", r.DroppedShare)
	}
	if r.BannedIPs != r.Passed {
		t.Error("every passed probe should ban one fresh IP")
	}
	if out := r.Render(); !strings.Contains(out, "churn") {
		t.Error("render incomplete")
	}
}

func TestMimicStudy(t *testing.T) {
	r, err := MimicStudy(MimicStudyConfig{Seed: 81, Triggers: 60000, GFW: gfw.Config{PoolSize: 3000}})
	if err != nil {
		t.Fatal(err)
	}
	// Without a whitelist, framing does not help much (body entropy is
	// unchanged; record framing even lands lengths in the same bands).
	if r.FramedNoWL == 0 {
		t.Error("framed deployment got zero probes even without a whitelist")
	}
	// With a whitelist, framing eliminates probing; plain SS unaffected.
	if r.FramedWL != 0 {
		t.Errorf("whitelisted censor still sent %d probes to framed deployment", r.FramedWL)
	}
	if r.PlainWL < r.PlainNoWL/2 {
		t.Errorf("plain SS exposure changed under whitelist: %d vs %d", r.PlainWL, r.PlainNoWL)
	}
	if out := r.Render(); !strings.Contains(out, "whitelist") {
		t.Error("render incomplete")
	}
}

func TestProbeCost(t *testing.T) {
	r, err := ProbeCost(ProbeCostConfig{Seed: 91, Trials: 40})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]ProbeCostResult{}
	for _, res := range r.Results {
		byName[res.Name] = res
	}
	// Tor-like protocols: a single probe decides.
	if got := byName["tor-like"].MeanProbes; got > 1.2 {
		t.Errorf("tor-like mean probes %.1f, want ≈1", got)
	}
	// Shadowsocks (old, fingerprintable configs): a set of several probes.
	for _, name := range []string{"ss-libev-old stream 8B-IV", "ss-libev-old AEAD", "outline-1.0.6"} {
		got := byName[name].MeanProbes
		if got < 2 {
			t.Errorf("%s: mean probes %.1f, want a set (> 1, as §5.2.2 observes)", name, got)
		}
		if got > 200 {
			t.Errorf("%s: mean probes %.1f, implausibly many", name, got)
		}
	}
	// Timeout-consistent configurations can never be confirmed.
	for _, name := range []string{"ss-libev-new AEAD", "outline-1.0.7", "hardened"} {
		if got := byName[name].MeanProbes; got >= 0 {
			t.Errorf("%s: confirmed with %.1f probes; should be unconfirmable", name, got)
		}
	}
	if out := r.Render(); !strings.Contains(out, "sequential") {
		t.Error("render incomplete")
	}
}
