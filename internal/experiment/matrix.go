package experiment

import (
	"fmt"
	"strings"

	"sslab/internal/probesim"
	"sslab/internal/reaction"
	"sslab/internal/seedfork"
	"sslab/internal/sscrypto"
)

// MatrixConfig scales the §5.1 prober-simulator experiment.
type MatrixConfig struct {
	Seed int64
	// Trials per probe length per configuration (default 200).
	Trials int
}

// MatrixReport holds the Figure 10a/10b matrices and the Table 5 rows.
type MatrixReport struct {
	Stream []*probesim.Matrix       // Figure 10a
	AEAD   []*probesim.Matrix       // Figure 10b
	Replay []*probesim.ReplayResult // Table 5
}

// figure10StreamConfigs are the stream rows: both libev generations over
// the three IV-size classes.
func figure10StreamConfigs() []struct {
	Profile reaction.Profile
	Method  string
} {
	return []struct {
		Profile reaction.Profile
		Method  string
	}{
		{reaction.LibevOld, "chacha20"},      // 8-byte IV
		{reaction.LibevOld, "chacha20-ietf"}, // 12-byte IV
		{reaction.LibevOld, "aes-256-ctr"},   // 16-byte IV
		{reaction.LibevNew, "chacha20"},
		{reaction.LibevNew, "chacha20-ietf"},
		{reaction.LibevNew, "aes-256-ctr"},
	}
}

// figure10AEADConfigs are the AEAD rows: libev over the three salt-size
// classes plus the three OutlineVPN versions.
func figure10AEADConfigs() []struct {
	Profile reaction.Profile
	Method  string
} {
	return []struct {
		Profile reaction.Profile
		Method  string
	}{
		{reaction.LibevOld, "aes-128-gcm"}, // 16-byte salt
		{reaction.LibevOld, "aes-192-gcm"}, // 24-byte salt
		{reaction.LibevOld, "aes-256-gcm"}, // 32-byte salt
		{reaction.LibevNew, "aes-128-gcm"},
		{reaction.LibevNew, "aes-192-gcm"},
		{reaction.LibevNew, "aes-256-gcm"},
		{reaction.Outline106, "chacha20-ietf-poly1305"},
		{reaction.Outline107, "chacha20-ietf-poly1305"},
		{reaction.Outline110, "chacha20-ietf-poly1305"},
	}
}

// table5Configs are the Table 5 rows.
func table5Configs() []struct {
	Profile reaction.Profile
	Method  string
} {
	return []struct {
		Profile reaction.Profile
		Method  string
	}{
		{reaction.LibevOld, "aes-256-ctr"},
		{reaction.LibevOld, "aes-256-gcm"},
		{reaction.LibevNew, "aes-256-ctr"},
		{reaction.LibevNew, "aes-256-gcm"},
		{reaction.Outline107, "chacha20-ietf-poly1305"},
		{reaction.Outline110, "chacha20-ietf-poly1305"},
		{reaction.Hardened, "chacha20-ietf-poly1305"},
		{reaction.SSPython, "aes-256-cfb"},
		{reaction.SSR, "aes-256-ctr"},
	}
}

// ReactionMatrices regenerates Figures 10a/10b and Table 5 through the
// prober simulator.
func ReactionMatrices(cfg MatrixConfig) (*MatrixReport, error) {
	if cfg.Trials == 0 {
		cfg.Trials = 200
	}
	lengths := probesim.RandomProbeLengths()
	r := &MatrixReport{}
	for i, c := range figure10StreamConfigs() {
		spec, err := sscrypto.Lookup(c.Method)
		if err != nil {
			return nil, err
		}
		m, err := probesim.ScanRandom(c.Profile, spec, "matrix-pw", lengths, cfg.Trials, seedfork.Fork(cfg.Seed, "matrix.stream", int64(i)))
		if err != nil {
			return nil, err
		}
		r.Stream = append(r.Stream, m)
	}
	for i, c := range figure10AEADConfigs() {
		spec, err := sscrypto.Lookup(c.Method)
		if err != nil {
			return nil, err
		}
		m, err := probesim.ScanRandom(c.Profile, spec, "matrix-pw", lengths, cfg.Trials, seedfork.Fork(cfg.Seed, "matrix.aead", int64(i)))
		if err != nil {
			return nil, err
		}
		r.AEAD = append(r.AEAD, m)
	}
	for i, c := range table5Configs() {
		spec, err := sscrypto.Lookup(c.Method)
		if err != nil {
			return nil, err
		}
		rr, err := probesim.ScanReplay(c.Profile, spec, "matrix-pw", 60, seedfork.Fork(cfg.Seed, "matrix.replay", int64(i)), "93.184.216.34:443")
		if err != nil {
			return nil, err
		}
		r.Replay = append(r.Replay, rr)
	}
	return r, nil
}

// Render prints the three artifacts.
func (r *MatrixReport) Render() string {
	var b strings.Builder
	b.WriteString("Figure 10a: reactions to random probes, stream ciphers\n")
	for _, m := range r.Stream {
		b.WriteString(m.Render())
	}
	b.WriteString("\nFigure 10b: reactions to random probes, AEAD ciphers\n")
	for _, m := range r.AEAD {
		b.WriteString(m.Render())
	}
	b.WriteString("\nTable 5: reactions to identical and byte-changed replays\n")
	for _, rr := range r.Replay {
		fmt.Fprintf(&b, "  %s\n", rr.Render())
	}
	return b.String()
}
