package experiment

import (
	"fmt"
	"math"
	"strings"
	"time"

	"sslab/internal/gfw"
	"sslab/internal/netsim"
)

// RobustnessConfig scales the impairment-robustness study: a loss ×
// jitter grid of compact reruns of the §3.1 Shadowsocks experiment and
// the §4 sink experiments, asking which of the paper's headline
// observations survive a degraded network path between the vantage
// points and the censor.
type RobustnessConfig struct {
	Seed int64
	// Loss values swept: i.i.d. per-transmission loss probability
	// (default 0, 0.01, 0.02, 0.05).
	Loss []float64
	// JitterMs values swept: uniform [0, J) ms added per delivery
	// (default 0, 50, 200).
	JitterMs []int
	// Days scales each cell's embedded Shadowsocks run (default 4).
	Days int
	// Hours scales each cell's embedded sink run (default 30).
	Hours int
	// GFW overrides parts of the censor configuration for every cell.
	GFW gfw.Config
}

func (c RobustnessConfig) withDefaults() RobustnessConfig {
	if c.Loss == nil {
		c.Loss = []float64{0, 0.01, 0.02, 0.05}
	}
	if c.JitterMs == nil {
		c.JitterMs = []int{0, 50, 200}
	}
	if c.Days == 0 {
		c.Days = 4
	}
	if c.Hours == 0 {
		c.Hours = 30
	}
	return c
}

// RobustnessCell is one (loss, jitter) grid point's headline statistics.
type RobustnessCell struct {
	Loss     float64
	JitterMs int

	// From the Shadowsocks run: probe volume, the Figure 3 headline
	// (breadth of the prober pool seen by one campaign) and the
	// Figure 5 headline (share of prober source ports in the ephemeral
	// range — the "probes come from real Linux stacks" signature).
	Triggers           int
	Probes             int
	UniqueIPs          int
	EphemeralPortShare float64

	// From the sink run: the Figure 8 headlines (replay-length
	// remainder structure of the two stair-step bands).
	Rem9ShareLow  float64
	Rem2ShareHigh float64

	// Transport accounting. LinkRetransmits/LinkDroppedFlows count the
	// retransmissions the links absorbed and the flows lost after every
	// retry; ProbeDrops/ProbeRetries/ProbeTimeouts count the prober's
	// own recovery (connects that died, the retries that followed, and
	// probes reclassified as timeouts because the impaired round trip
	// outlasted the prober's patience).
	LinkRetransmits  int64
	LinkDroppedFlows int64
	ProbeDrops       int
	ProbeRetries     int
	ProbeTimeouts    int
}

// RobustnessReport is the full grid. Render derives the per-observation
// verdicts against the zero-impairment baseline cell.
type RobustnessReport struct {
	Config RobustnessConfig
	Cells  []RobustnessCell
}

// Robustness sweeps the loss × jitter grid. Every cell reuses the same
// experiment seed, so cells differ only by their impairment profile —
// the comparison the study is after.
func Robustness(cfg RobustnessConfig) (*RobustnessReport, error) {
	cfg = cfg.withDefaults()
	rep := &RobustnessReport{Config: cfg}
	for _, loss := range cfg.Loss {
		for _, jms := range cfg.JitterMs {
			var impair *netsim.LinkProfile
			if loss > 0 || jms > 0 {
				impair = &netsim.LinkProfile{
					Loss:   loss,
					Jitter: time.Duration(jms) * time.Millisecond,
				}
			}
			ss, err := ShadowsocksExperiment(ShadowsocksConfig{
				Seed: cfg.Seed, Days: cfg.Days, GFW: cfg.GFW, Impair: impair,
			})
			if err != nil {
				return nil, fmt.Errorf("robustness loss=%g jitter=%dms shadowsocks: %v", loss, jms, err)
			}
			sk, err := SinkExperiments(SinkConfig{
				Seed: cfg.Seed, Hours: cfg.Hours, GFW: cfg.GFW, Impair: impair,
			})
			if err != nil {
				return nil, fmt.Errorf("robustness loss=%g jitter=%dms sink: %v", loss, jms, err)
			}
			rep.Cells = append(rep.Cells, RobustnessCell{
				Loss:               loss,
				JitterMs:           jms,
				Triggers:           ss.Triggers,
				Probes:             ss.Probes,
				UniqueIPs:          ss.UniqueIPs,
				EphemeralPortShare: ss.EphemeralPortShare,
				Rem9ShareLow:       sk.Rem9ShareLow,
				Rem2ShareHigh:      sk.Rem2ShareHigh,
				LinkRetransmits:    ss.LinkRetransmits + sk.LinkRetransmits,
				LinkDroppedFlows:   ss.LinkDroppedFlows + sk.LinkDroppedFlows,
				ProbeDrops:         ss.ProbeDrops + sk.ProbeDrops,
				ProbeRetries:       ss.ProbeRetries + sk.ProbeRetries,
				ProbeTimeouts:      ss.ProbeTimeouts + sk.ProbeTimeouts,
			})
		}
	}
	return rep, nil
}

// baseline returns the zero-impairment cell (nil if the grid omits it).
func (r *RobustnessReport) baseline() *RobustnessCell {
	for i := range r.Cells {
		if r.Cells[i].Loss == 0 && r.Cells[i].JitterMs == 0 {
			return &r.Cells[i]
		}
	}
	return nil
}

// holds reports whether one cell still exhibits each headline
// observation: a prober pool within 30% of the baseline breadth
// (Fig. 3), an ephemeral-dominated source-port distribution (Fig. 5),
// and the replay-length remainder structure (Fig. 8).
func (c *RobustnessCell) holds(base *RobustnessCell) (fig3, fig5, fig8 bool) {
	fig3 = base != nil && base.UniqueIPs > 0 &&
		math.Abs(float64(c.UniqueIPs)/float64(base.UniqueIPs)-1) <= 0.30
	fig5 = c.EphemeralPortShare >= 0.80
	fig8 = c.Rem9ShareLow >= 0.55 && c.Rem2ShareHigh >= 0.85
	return
}

// Render prints the grid and the per-figure verdicts.
func (r *RobustnessReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Impairment robustness: loss %v × jitter %v ms (seed %d)\n",
		r.Config.Loss, r.Config.JitterMs, r.Config.Seed)
	fmt.Fprintf(&b, "  %-6s %-7s %-9s %-8s %-6s %-7s %-6s %-6s %-8s %-6s %-7s %s\n",
		"loss", "jitter", "triggers", "probes", "IPs", "ephem%", "rem9%", "rem2%",
		"retx", "lost", "pdrops", "holds(3/5/8)")
	base := r.baseline()
	allFig3, allFig5, allFig8 := true, true, true
	for i := range r.Cells {
		c := &r.Cells[i]
		f3, f5, f8 := c.holds(base)
		allFig3, allFig5, allFig8 = allFig3 && f3, allFig5 && f5, allFig8 && f8
		mark := func(ok bool) byte {
			if ok {
				return 'y'
			}
			return 'n'
		}
		fmt.Fprintf(&b, "  %-6.2f %-7d %-9d %-8d %-6d %-7.1f %-6.1f %-6.1f %-8d %-6d %-7d %c/%c/%c\n",
			c.Loss, c.JitterMs, c.Triggers, c.Probes, c.UniqueIPs,
			c.EphemeralPortShare*100, c.Rem9ShareLow*100, c.Rem2ShareHigh*100,
			c.LinkRetransmits, c.LinkDroppedFlows, c.ProbeDrops,
			mark(f3), mark(f5), mark(f8))
	}
	verdict := func(ok bool) string {
		if ok {
			return "robust across the grid"
		}
		return "DEGRADES under impairment"
	}
	fmt.Fprintf(&b, "  Fig. 3 (prober-pool breadth):      %s\n", verdict(allFig3))
	fmt.Fprintf(&b, "  Fig. 5 (ephemeral source ports):   %s\n", verdict(allFig5))
	fmt.Fprintf(&b, "  Fig. 8 (replay-length remainders): %s\n", verdict(allFig8))
	return b.String()
}
