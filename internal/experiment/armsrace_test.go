package experiment

import (
	"encoding/json"
	"testing"
)

// TestArmsRaceEscalation runs the default chains at fast scale and
// checks the arms-race structure the experiment exists to measure.
func TestArmsRaceEscalation(t *testing.T) {
	rep, err := ArmsRace(ArmsRaceConfig{Seed: 5, Users: 1600, UsersPerServer: 40, Hours: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != len(DefaultChains) {
		t.Fatalf("%d rows, want %d", len(rep.Rows), len(DefaultChains))
	}
	get := func(row ArmsRaceRow, impl string) (s struct {
		Fraction float64
		Blocks   int64
	}) {
		for _, im := range row.PerImpl {
			if im.Name == impl {
				s.Fraction, s.Blocks = im.Fraction, im.Blocks
				return s
			}
		}
		t.Fatalf("row %s: no impl %q", row.Name, impl)
		return s
	}

	ssOnly, withVPN, full3, full4 := rep.Rows[0], rep.Rows[1], rep.Rows[2], rep.Rows[3]

	// The Shadowsocks-only censor cannot touch OpenVPN or obfs servers.
	for _, impl := range []string{"openvpn", "openvpn-auth", "obfs4"} {
		if s := get(ssOnly, impl); s.Blocks != 0 {
			t.Errorf("ss-only chain blocked %s (%d blocks)", impl, s.Blocks)
		}
	}
	// Adding the OpenVPN stage takes down plain-OpenVPN deployments but
	// never tls-auth ones.
	if s := get(withVPN, "openvpn"); s.Blocks == 0 {
		t.Error("ss+openvpn chain never blocked a plain OpenVPN server")
	}
	for _, row := range rep.Rows {
		if s := get(row, "openvpn-auth"); s.Blocks != 0 {
			t.Errorf("chain %s blocked tls-auth OpenVPN (%d blocks)", row.Name, s.Blocks)
		}
		if s := get(row, "obfs4"); s.Blocks != 0 {
			t.Errorf("chain %s blocked obfs4 (%d blocks)", row.Name, s.Blocks)
		}
	}
	// The fully-encrypted stage is what reaches obfs2.
	if s := get(full3, "obfs2"); s.Blocks == 0 {
		t.Error("full chain never blocked an obfs2 server")
	}
	// The TLS exemption must not increase false positives.
	if full4.FalsePositiveFraction > full3.FalsePositiveFraction {
		t.Errorf("tlsexempt raised FP fraction: %.4f > %.4f",
			full4.FalsePositiveFraction, full3.FalsePositiveFraction)
	}

	if rep.Render() == "" {
		t.Error("empty render")
	}
	if _, err := json.Marshal(rep); err != nil {
		t.Errorf("report does not marshal: %v", err)
	}
}

// TestArmsRaceDeterminism: same seed, same report bytes.
func TestArmsRaceDeterminism(t *testing.T) {
	cfg := ArmsRaceConfig{Seed: 9, Users: 400, UsersPerServer: 40, Hours: 3,
		Chains: [][]string{{"ss"}, {"ss", "ovpn"}}}
	a, err := ArmsRace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ArmsRace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Error("same seed produced different arms-race reports")
	}
}

// TestArmsRaceChainIsolation: appending a chain must not perturb the
// results of earlier chains (per-chain seed forks are independent).
func TestArmsRaceChainIsolation(t *testing.T) {
	base := ArmsRaceConfig{Seed: 13, Users: 400, UsersPerServer: 40, Hours: 3,
		Chains: [][]string{{"ss"}}}
	ext := base
	ext.Chains = [][]string{{"ss"}, {"ss", "ovpn", "fep"}}
	a, err := ArmsRace(base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ArmsRace(ext)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a.Rows[0])
	jb, _ := json.Marshal(b.Rows[0])
	if string(ja) != string(jb) {
		t.Error("adding a chain changed the first chain's row")
	}
}
