package experiment

import (
	"fmt"
	"strings"
	"time"

	"sslab/internal/defense"
	"sslab/internal/gfw"
	"sslab/internal/netsim"
	"sslab/internal/reaction"
	"sslab/internal/seedfork"
	"sslab/internal/sscrypto"
	"sslab/internal/stats"
	"sslab/internal/trafficgen"
)

// BrdgrdConfig scales the §7.1 experiment.
type BrdgrdConfig struct {
	Seed int64
	// Hours of virtual time (paper: 403; default 403).
	Hours int
	// ConnsPer5Min matches the paper's driver: 16 connections every five
	// minutes (default 16).
	ConnsPer5Min int
	// OnWindows are [start, end) hours during which brdgrd is active.
	// Default: [100,150) and [250,300), mirroring Figure 11's two
	// activations.
	OnWindows [][2]int
	// WindowMin/WindowMax bound the advertised TCP window in bytes
	// (default 4–64, like the real tool). The threshold ablation sweeps
	// these: windows that still admit >=160-byte first segments stop
	// defeating the detector.
	WindowMin, WindowMax int
	GFW                  gfw.Config
	// Impair, when set, applies a link-impairment profile to every
	// simulated link; nil keeps the idealized lossless network.
	Impair *netsim.LinkProfile `json:"Impair,omitempty"`
}

func (c BrdgrdConfig) withDefaults() BrdgrdConfig {
	if c.Hours == 0 {
		c.Hours = 403
	}
	if c.ConnsPer5Min == 0 {
		c.ConnsPer5Min = 16
	}
	if c.OnWindows == nil {
		c.OnWindows = [][2]int{{100, 150}, {250, 300}}
	}
	if c.WindowMin == 0 {
		c.WindowMin = 4
	}
	if c.WindowMax == 0 {
		c.WindowMax = 64
	}
	return c
}

// BrdgrdReport is Figure 11: probes per hour over the experiment, with
// the shaping windows marked, plus a control server without shaping.
type BrdgrdReport struct {
	Config BrdgrdConfig
	// ProbesPerHour[h] counts prober connections to the shaped server
	// arriving in hour h.
	ProbesPerHour []int
	// ControlPerHour is the same for the unshaped control server.
	ControlPerHour []int
	// MeanRateOff/On are probes per hour while shaping was off/on
	// (excluding a settling hour after each toggle).
	MeanRateOff, MeanRateOn float64
}

// BrdgrdExperiment reproduces §7.1: a Shadowsocks client/server pair with
// brdgrd toggling, plus an identical control pair without brdgrd.
func BrdgrdExperiment(cfg BrdgrdConfig) (*BrdgrdReport, error) {
	cfg = cfg.withDefaults()
	sim, net := simNet(cfg.Seed, cfg.Impair)
	gcfg := cfg.GFW
	gcfg.Seed = seedfork.Fork(cfg.Seed, "brdgrd.gfw")
	g := gfw.New(gfw.Env{Sim: sim, Net: net}, gfw.WithConfig(gcfg))
	net.AddMiddlebox(g)

	spec, err := sscrypto.Lookup("aes-256-gcm")
	if err != nil {
		return nil, err
	}
	guard := defense.NewBrdgrd(cfg.WindowMin, cfg.WindowMax, seedfork.Fork(cfg.Seed, "brdgrd.guard"))
	guard.SetActive(false)

	shaped := netsim.Endpoint{IP: "178.62.20.1", Port: 8388}
	controlEP := netsim.Endpoint{IP: "178.62.20.2", Port: 8388}
	client := netsim.Endpoint{IP: "150.109.20.1", Port: 40000}
	client2 := netsim.Endpoint{IP: "150.109.20.2", Port: 40001}

	shapedHost, err := NewServerHost(sim, reaction.LibevNew, "aes-256-gcm", "pw")
	if err != nil {
		return nil, err
	}
	controlHost, err := NewServerHost(sim, reaction.LibevNew, "aes-256-gcm", "pw")
	if err != nil {
		return nil, err
	}
	net.AddHost(shaped, shapedHost)
	net.AddHost(controlEP, controlHost)

	// Toggle schedule.
	active := func(hour int) bool {
		for _, w := range cfg.OnWindows {
			if hour >= w[0] && hour < w[1] {
				return true
			}
		}
		return false
	}

	end := netsim.Epoch.Add(time.Duration(cfg.Hours) * time.Hour)
	tg := trafficgen.New(seedfork.Fork(cfg.Seed, "brdgrd.trafficgen.shaped"))
	tg2 := trafficgen.New(seedfork.Fork(cfg.Seed, "brdgrd.trafficgen.control"))
	var tick func()
	tick = func() {
		if sim.Now().After(end) {
			return
		}
		hour := int(sim.Now().Sub(netsim.Epoch).Hours())
		guard.SetActive(active(hour))
		for i := 0; i < cfg.ConnsPer5Min; i++ {
			// The GFW sees only brdgrd's first segment of the shaped
			// client's flight; the control client sends whole flights.
			wire := tg.FirstWirePacket(spec, trafficgen.CurlHTTPS)
			net.Connect(client, shaped, guard.FirstSegment(wire), false, time.Time{})
			net.Connect(client2, controlEP, tg2.FirstWirePacket(spec, trafficgen.CurlHTTPS), false, time.Time{})
		}
		sim.After(5*time.Minute, tick)
	}
	sim.After(0, tick)
	sim.Run()

	// Bucket probes per hour per destination.
	r := &BrdgrdReport{Config: cfg}
	r.ProbesPerHour = make([]int, cfg.Hours+600) // probes trail past the end
	r.ControlPerHour = make([]int, cfg.Hours+600)
	for i := range g.Log.Records {
		rec := &g.Log.Records[i]
		h := int(rec.Time.Sub(netsim.Epoch).Hours())
		if h < 0 || h >= len(r.ProbesPerHour) {
			continue
		}
		switch rec.DstIP {
		case shaped.IP:
			r.ProbesPerHour[h]++
		case controlEP.IP:
			r.ControlPerHour[h]++
		}
	}

	// Mean rates with a settling hour after each toggle. Probes lag
	// triggers by the replay delay, so attribute by trigger-time state.
	var onSum, onN, offSum, offN int
	for h := 0; h < cfg.Hours; h++ {
		settling := false
		for _, w := range cfg.OnWindows {
			if h == w[0] || h == w[1] {
				settling = true
			}
		}
		if settling {
			continue
		}
		if active(h) {
			onSum += r.ProbesPerHour[h]
			onN++
		} else {
			offSum += r.ProbesPerHour[h]
			offN++
		}
	}
	if onN > 0 {
		r.MeanRateOn = float64(onSum) / float64(onN)
	}
	if offN > 0 {
		r.MeanRateOff = float64(offSum) / float64(offN)
	}
	return r, nil
}

// Render prints an ASCII Figure 11.
func (r *BrdgrdReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 11: probes per hour (brdgrd windows: %v)\n", r.Config.OnWindows)
	fmt.Fprintf(&b, "  mean probe rate: %.2f/h with brdgrd off, %.2f/h with brdgrd on\n\n",
		r.MeanRateOff, r.MeanRateOn)
	// Coarse sparkline: one char per 4 hours.
	b.WriteString(stats.Sparkline(r.ProbesPerHour[:r.Config.Hours], 4))
	b.WriteString("\n")
	for h := 0; h < r.Config.Hours; h += 4 {
		on := false
		for _, w := range r.Config.OnWindows {
			if h >= w[0] && h < w[1] {
				on = true
			}
		}
		if on {
			b.WriteRune('^')
		} else {
			b.WriteRune(' ')
		}
	}
	b.WriteString("  (^ = brdgrd active)\n")
	return b.String()
}
