package experiment

import (
	"sslab/internal/netsim"
)

// simNet builds the simulation substrate every netsim-backed experiment
// shares: a sim rooted at seed (so link-impairment streams are
// reproducible per experiment seed) and a network carrying the optional
// impairment profile on every link. A nil profile — the default for all
// experiment configs — yields the historical ideal network and
// byte-identical reports.
func simNet(seed int64, impair *netsim.LinkProfile) (*netsim.Sim, *netsim.Network) {
	sim := netsim.NewSim(netsim.WithSeed(seed))
	var opts []netsim.NetworkOption
	if impair != nil {
		opts = append(opts, netsim.WithDefaultLink(*impair))
	}
	return sim, netsim.NewNetwork(sim, opts...)
}
