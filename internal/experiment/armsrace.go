package experiment

import (
	"fmt"
	"strings"

	"sslab/internal/fleet"
	"sslab/internal/gfw"
	"sslab/internal/netsim"
	"sslab/internal/seedfork"
	"sslab/internal/stats"
)

// The arms-race experiment sweeps detector chains against a population
// whose servers span the circumvention arms race: paper-era Shadowsocks
// deployments, OpenVPN with and without tls-auth (Xue et al.'s
// fingerprinting target), obfs2/obfs4-style fully encrypted transports
// (Winter & Lindskog's Tor-bridge observations and the GFW's later
// fully-encrypted crackdown), and plain web servers as the
// false-positive yardstick. Each chain faces the same population under
// an independently forked seed; the report is the survival matrix —
// which deployments a censor running that chain actually takes down,
// at what latency, and at what collateral cost.

// ArmsRaceConfig parameterizes the detector-chain × protocol-mix sweep.
type ArmsRaceConfig struct {
	// Seed drives all randomness; each chain runs under an independent
	// fork, so adding a chain never perturbs the others.
	Seed int64
	// Users, UsersPerServer, Hours size each population run (defaults:
	// fleet's 100000 / 50 / 24).
	Users          int
	UsersPerServer int
	Hours          int
	// Shards space-shards each chain's population run (default:
	// fleet's 1). Like every Config field it changes report bytes; the
	// worker count executing the shards does not (see fleet.WithWorkers).
	Shards int `json:",omitempty"`
	// Chains are the detector chains to race (default DefaultChains).
	// Stage aliases are accepted.
	Chains [][]string `json:",omitempty"`
	// Mix is the server implementation mix (default ArmsRaceMix).
	Mix []fleet.ImplShare `json:",omitempty"`
	// GFW configures the censor; each chain run overrides Detectors.
	GFW gfw.Config
	// Impair optionally applies a link impairment profile.
	Impair *netsim.LinkProfile `json:",omitempty"`
}

// DefaultChains traces the censor's escalation: the paper's
// Shadowsocks-only detector, then OpenVPN fingerprinting, then the
// fully-encrypted heuristic, then the same with the TLS exemption that
// claws back false positives.
var DefaultChains = [][]string{
	{"shadowsocks"},
	{"shadowsocks", "openvpn"},
	{"shadowsocks", "openvpn", "fullyencrypted"},
	{"tlsexempt", "shadowsocks", "openvpn", "fullyencrypted"},
}

// ArmsRaceMix is the default multi-protocol server spread: a modern
// Shadowsocks core, OpenVPN and obfs deployments on both sides of the
// probe-resistance line, and a web share large enough to measure
// false-positive fractions with two digits.
var ArmsRaceMix = []fleet.ImplShare{
	{Impl: "libev-new", Weight: 0.20},
	{Impl: "sspython", Weight: 0.10},
	{Impl: "openvpn", Weight: 0.10},
	{Impl: "openvpn-auth", Weight: 0.10},
	{Impl: "obfs2", Weight: 0.10},
	{Impl: "obfs4", Weight: 0.10},
	{Impl: "web", Weight: 0.30},
}

// ArmsRaceRow is one chain's outcome against the shared population.
type ArmsRaceRow struct {
	// Name is the chain joined with "+" — the campaign flattener's row
	// key, so merged sweeps keep one row per chain.
	Name string
	// Chain is the canonical stage list.
	Chain []string

	// Population outcome.
	BlockedUserFraction float64
	EverBlockedUsers    int64
	Blocks              int
	Replacements        int64

	// Censor effort and timing.
	PayloadsRecorded int
	ProbesSent       int
	DetectionLatency stats.Summary

	// False positives: the fraction of innocuous-traffic users blocked,
	// and block events against innocuous servers.
	FalsePositiveFraction float64
	InnocuousBlocks       int64

	// PerImpl is the full survival breakdown for this chain.
	PerImpl []fleet.ImplStats
	// StageRecordings attributes recorded payloads to chain stages.
	StageRecordings []gfw.StageCount
}

// ArmsRaceReport is the experiment's report: one row per chain.
type ArmsRaceReport struct {
	Config ArmsRaceConfig
	Rows   []ArmsRaceRow
}

// ArmsRace runs every configured detector chain against independently
// seeded copies of the same population mix. The variadic options are
// fleet execution options (worker pools, metrics sinks) applied to
// every chain's run; they never change report bytes.
func ArmsRace(cfg ArmsRaceConfig, opts ...fleet.Option) (*ArmsRaceReport, error) {
	chains := cfg.Chains
	if len(chains) == 0 {
		chains = DefaultChains
	}
	mix := cfg.Mix
	if len(mix) == 0 {
		mix = ArmsRaceMix
	}

	rep := &ArmsRaceReport{Config: cfg}
	for i, chain := range chains {
		fcfg := fleet.Config{
			Seed:           seedfork.Fork(cfg.Seed, "armsrace.chain", int64(i)),
			Users:          cfg.Users,
			UsersPerServer: cfg.UsersPerServer,
			Hours:          cfg.Hours,
			Shards:         cfg.Shards,
			Mix:            mix,
			GFW:            cfg.GFW,
			Impair:         cfg.Impair,
		}
		fcfg.GFW.Detectors = chain
		fr, err := fleet.Run(fcfg, opts...)
		if err != nil {
			return nil, fmt.Errorf("armsrace chain %v: %w", chain, err)
		}

		row := ArmsRaceRow{
			Name:                strings.Join(chain, "+"),
			Chain:               chain,
			BlockedUserFraction: fr.BlockedUserFraction,
			EverBlockedUsers:    fr.EverBlockedUsers,
			Blocks:              fr.Blocks,
			Replacements:        fr.Replacements,
			PayloadsRecorded:    fr.PayloadsRecorded,
			ProbesSent:          fr.ProbesSent,
			DetectionLatency:    fr.DetectionLatency,
			PerImpl:             fr.PerImpl,
			StageRecordings:     fr.StageRecordings,
		}
		var innocUsers, innocEver int64
		for _, im := range fr.PerImpl {
			if fleet.IsInnocuous(im.Name) {
				innocUsers += im.Users
				innocEver += im.EverBlockedUsers
				row.InnocuousBlocks += im.Blocks
			}
		}
		if innocUsers > 0 {
			row.FalsePositiveFraction = float64(innocEver) / float64(innocUsers)
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// Render implements Report: a survival matrix (implementations ×
// chains) plus per-chain cost and false-positive lines.
func (r *ArmsRaceReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Arms race: %d detector chains × multi-protocol population (seed %d)\n",
		len(r.Rows), r.Config.Seed)
	if len(r.Rows) == 0 {
		return b.String()
	}

	fmt.Fprintf(&b, "\n  %% of users ever blocked, by server implementation:\n")
	fmt.Fprintf(&b, "  %-13s", "impl")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, " %20s", row.Name)
	}
	b.WriteString("\n")
	for k, im := range r.Rows[0].PerImpl {
		fmt.Fprintf(&b, "  %-13s", im.Name)
		for _, row := range r.Rows {
			fmt.Fprintf(&b, " %19.2f%%", 100*row.PerImpl[k].Fraction)
		}
		b.WriteString("\n")
	}

	b.WriteString("\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-45s blocked %5.2f%% of users, FP %5.2f%%, probes %d, median latency %s\n",
			row.Name, 100*row.BlockedUserFraction, 100*row.FalsePositiveFraction,
			row.ProbesSent, fmtDurS(row.DetectionLatency.P50))
	}
	return b.String()
}

// fmtDurS renders seconds compactly for the arms-race table.
func fmtDurS(sec float64) string {
	switch {
	case sec <= 0:
		return "-"
	case sec < 90:
		return fmt.Sprintf("%.0fs", sec)
	case sec < 2*3600:
		return fmt.Sprintf("%.1fm", sec/60)
	default:
		return fmt.Sprintf("%.1fh", sec/3600)
	}
}

// armsraceRunner registers the sweep under the "armsrace" name. Fast
// scale is four chains over a 1200-user, 6-hour population per chain.
var armsraceRunner = workersRunner[ArmsRaceConfig]{
	runner: runner[ArmsRaceConfig]{
		name: "armsrace",
		desc: "detector chains × protocol mixes: survival matrix, latency, false positives",
		config: func(seed int64, full bool) ArmsRaceConfig {
			cfg := ArmsRaceConfig{Seed: seed}
			if !full {
				cfg.Users = 1200
				cfg.UsersPerServer = 40
				cfg.Hours = 6
				cfg.GFW = gfw.Config{PoolSize: 2000}
			}
			return cfg
		},
		run: func(cfg ArmsRaceConfig) (Report, error) { return ArmsRace(cfg) },
	},
	runWorkers: func(cfg ArmsRaceConfig, workers int) (Report, error) {
		return ArmsRace(cfg, fleet.WithWorkers(workers))
	},
}
