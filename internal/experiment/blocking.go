package experiment

import (
	"fmt"
	"strings"
	"time"

	"sslab/internal/gfw"
	"sslab/internal/netsim"
	"sslab/internal/reaction"
	"sslab/internal/seedfork"
	"sslab/internal/sscrypto"
	"sslab/internal/trafficgen"
)

// BlockingConfig scales the §6 blocking-module experiment.
type BlockingConfig struct {
	Seed int64
	// Days of virtual time (default 30).
	Days int
	// Sensitivity is the censor's human-factor gate; the default 0.5
	// emulates a politically sensitive period (§6 reports blocking spikes
	// during congresses and anniversaries).
	Sensitivity float64
	GFW         gfw.Config
	// Impair, when set, applies a link-impairment profile to every
	// simulated link; nil keeps the idealized lossless network.
	Impair *netsim.LinkProfile `json:"Impair,omitempty"`
}

func (c BlockingConfig) withDefaults() BlockingConfig {
	if c.Days == 0 {
		c.Days = 30
	}
	if c.Sensitivity == 0 {
		c.Sensitivity = 0.5
	}
	return c
}

// BlockedServer describes one server's fate.
type BlockedServer struct {
	Name    string
	Profile reaction.Profile
	Method  string
	Probes  int
	Blocked bool
	ByIP    bool
	// TimeToBlock is from experiment start to the block event.
	TimeToBlock time.Duration
	// OutageObserved counts client connections that failed while blocked.
	OutageObserved int
}

// BlockingReport is the §6 result: which implementations get blocked,
// how (by port or by IP), and what the client experiences.
type BlockingReport struct {
	Config  BlockingConfig
	Servers []BlockedServer
	Events  []gfw.BlockEvent
}

// BlockingExperiment runs five servers of different implementations under
// a censor with raised sensitivity. The §6 shape to reproduce: only the
// servers that both serve replays and exhibit immediate-close
// fingerprints (Shadowsocks-python, ShadowsocksR) get blocked; the
// replay-defended libev and the timeout-consistent OutlineVPN v1.0.7
// survive the same probing.
func BlockingExperiment(cfg BlockingConfig) (*BlockingReport, error) {
	cfg = cfg.withDefaults()
	sim, net := simNet(cfg.Seed, cfg.Impair)
	gcfg := cfg.GFW
	gcfg.Seed = seedfork.Fork(cfg.Seed, "blocking.gfw")
	gcfg.Sensitivity = cfg.Sensitivity
	g := gfw.New(gfw.Env{Sim: sim, Net: net}, gfw.WithConfig(gcfg))
	net.AddMiddlebox(g)

	type entry struct {
		name    string
		profile reaction.Profile
		method  string
		server  netsim.Endpoint
		client  netsim.Endpoint
		host    *ServerHost
		outage  int
	}
	configs := []struct {
		name    string
		profile reaction.Profile
		method  string
	}{
		{"ss-python", reaction.SSPython, "aes-256-cfb"},
		{"ssr", reaction.SSR, "aes-256-ctr"},
		{"libev-new", reaction.LibevNew, "aes-256-gcm"},
		{"outline-1.0.7", reaction.Outline107, "chacha20-ietf-poly1305"},
		{"hardened", reaction.Hardened, "chacha20-ietf-poly1305"},
	}
	var entries []*entry
	for i, c := range configs {
		host, err := NewServerHost(sim, c.profile, c.method, "blocking-pw")
		if err != nil {
			return nil, err
		}
		e := &entry{
			name: c.name, profile: c.profile, method: c.method,
			server: netsim.Endpoint{IP: fmt.Sprintf("178.62.40.%d", i+1), Port: 8388},
			client: netsim.Endpoint{IP: fmt.Sprintf("150.109.40.%d", i+1), Port: 40000},
			host:   host,
		}
		net.AddHost(e.server, host)
		entries = append(entries, e)
	}

	end := netsim.Epoch.Add(time.Duration(cfg.Days) * 24 * time.Hour)
	for i, e := range entries {
		e := e
		tg := trafficgen.New(seedfork.Fork(cfg.Seed, "blocking.trafficgen", int64(i)))
		spec, err := sscrypto.Lookup(e.method)
		if err != nil {
			return nil, err
		}
		var tick func()
		tick = func() {
			if sim.Now().After(end) {
				return
			}
			o := net.Connect(e.client, e.server, tg.FirstWirePacket(spec, trafficgen.CurlHTTPS), false, time.Time{})
			if o.Blocked {
				e.outage++
			}
			sim.After(30*time.Second, tick)
		}
		sim.After(time.Duration(i)*time.Second, tick)
	}
	sim.Run()

	report := &BlockingReport{Config: cfg, Events: g.BlockEvents}
	probesByDst := map[string]int{}
	for i := range g.Log.Records {
		probesByDst[g.Log.Records[i].DstIP]++
	}
	for _, e := range entries {
		bs := BlockedServer{
			Name: e.name, Profile: e.profile, Method: e.method,
			Probes: probesByDst[e.server.IP], OutageObserved: e.outage,
		}
		for _, ev := range g.BlockEvents {
			if ev.Server == e.server {
				bs.Blocked = true
				bs.ByIP = ev.ByIP
				bs.TimeToBlock = ev.Time.Sub(netsim.Epoch)
				break
			}
		}
		report.Servers = append(report.Servers, bs)
	}
	return report, nil
}

// Render prints the §6 summary.
func (r *BlockingReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Blocking module (§6): %d days at sensitivity %.2f\n",
		r.Config.Days, r.Config.Sensitivity)
	fmt.Fprintf(&b, "  %-14s %-22s %-8s %-8s %-10s %s\n",
		"server", "implementation", "probes", "blocked", "mechanism", "client outage (conns)")
	for _, s := range r.Servers {
		mech := "-"
		blocked := "no"
		if s.Blocked {
			blocked = fmt.Sprintf("at %s", s.TimeToBlock.Round(time.Hour))
			if s.ByIP {
				mech = "by IP"
			} else {
				mech = "by port"
			}
		}
		fmt.Fprintf(&b, "  %-14s %-22s %-8d %-8s %-10s %d\n",
			s.Name, s.Profile.Name+" "+s.Profile.Versions, s.Probes, blocked, mech, s.OutageObserved)
	}
	return b.String()
}
