package experiment

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"sslab/internal/fleet"
	"sslab/internal/gfw"
)

func spatioTestCfg(seed int64) SpatioConfig {
	return SpatioConfig{
		Seed:           seed,
		Users:          800,
		UsersPerServer: 40,
		Hours:          9,
		GFW:            gfw.Config{PoolSize: 1500, ReplayBase: 0.3},
	}
}

// TestSpatioRegistered: the runner is in the registry and implements
// the workers extension.
func TestSpatioRegistered(t *testing.T) {
	r, ok := Lookup("spatiotemporal")
	if !ok {
		t.Fatal("spatiotemporal not registered")
	}
	if _, ok := r.(WorkersRunner); !ok {
		t.Fatal("spatiotemporal does not implement WorkersRunner")
	}
	cfg, ok := r.Config(1, false).(*SpatioConfig)
	if !ok {
		t.Fatalf("Config returned %T", r.Config(1, false))
	}
	if cfg.Users == 0 || cfg.Hours == 0 {
		t.Fatal("fast config must be compact, not paper scale")
	}
}

// TestSpatioDeterminismAndWorkers: same seed → same bytes; the workers
// path reproduces Run's bytes on a sharded config.
func TestSpatioDeterminismAndWorkers(t *testing.T) {
	cfg := spatioTestCfg(5)
	cfg.Shards = 2
	a, err := Spatiotemporal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	golden, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		rep, err := Spatiotemporal(cfg, fleet.WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		got, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, golden) {
			t.Fatalf("workers=%d diverged from serial run", workers)
		}
	}
}

// TestSpatioShapes: the swept regimes actually differ in the expected
// directions — the gradient orders blocking within the steady shape,
// and the probing lull sends fewer probes than steady.
func TestSpatioShapes(t *testing.T) {
	rep, err := Spatiotemporal(spatioTestCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != len(ScheduleShapes) {
		t.Fatalf("%d rows, want %d", len(rep.Rows), len(ScheduleShapes))
	}
	byShape := map[string]SpatioRow{}
	for _, row := range rep.Rows {
		if len(row.PerRegion) != 4 {
			t.Fatalf("shape %s has %d regions, want 4", row.Name, len(row.PerRegion))
		}
		byShape[row.Name] = row
	}
	steady := byShape["steady"]
	first, last := steady.PerRegion[0], steady.PerRegion[3]
	if first.BlockedUserFraction >= last.BlockedUserFraction {
		t.Fatalf("steady gradient inverted: %.3f vs %.3f",
			first.BlockedUserFraction, last.BlockedUserFraction)
	}
	if last.Blocks == 0 {
		t.Fatal("harshest steady region never blocked; sweep is vacuous")
	}
	if lull := byShape["lull"]; lull.ProbesSent >= steady.ProbesSent {
		t.Fatalf("probing lull sent %d probes, steady %d — pause had no effect",
			lull.ProbesSent, steady.ProbesSent)
	}

	out := rep.Render()
	for _, want := range []string{"steady", "crackdown", "lull", "thaw", "ever blocked"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render() missing %q:\n%s", want, out)
		}
	}
}

// TestSpatioUnknownShape: a typo'd shape fails loudly, naming options.
func TestSpatioUnknownShape(t *testing.T) {
	cfg := spatioTestCfg(1)
	cfg.Shapes = []string{"martial-law"}
	if _, err := Spatiotemporal(cfg); err == nil || !strings.Contains(err.Error(), "martial-law") {
		t.Fatalf("unknown shape error = %v", err)
	}
}
