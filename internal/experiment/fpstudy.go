package experiment

import (
	"fmt"
	"strings"
	"time"

	"sslab/internal/entropy"
	"sslab/internal/gfw"
	"sslab/internal/netsim"
	"sslab/internal/seedfork"
	"sslab/internal/sscrypto"
	"sslab/internal/trafficgen"
)

// FPStudyConfig scales the false-positive extension study.
type FPStudyConfig struct {
	Seed         int64
	FlowsPerKind int // default 150000
	GFW          gfw.Config
	// Impair, when set, applies a link-impairment profile to every
	// simulated link; nil keeps the idealized lossless network.
	Impair *netsim.LinkProfile `json:"Impair,omitempty"`
}

// FPClassResult is the probing exposure of one traffic class.
type FPClassResult struct {
	Kind     string
	Flows    int
	Probes   int
	Recorded int
	// Rate is probes per thousand flows.
	Rate float64
}

// FPStudyReport quantifies §9's conjecture and its sharpest consequence.
// The detector keys only on first-packet length and entropy, so ANY fully
// encrypted protocol draws probes (the VMess-like class is hit exactly
// like Shadowsocks — the paper's §9 prediction). Plaintext protocols stay
// almost untouched. The interesting case is direct TLS: a realistic
// ClientHello (≈5–6 bits/byte) still lands close to Shadowsocks exposure,
// which means length+entropy alone cannot exempt the web's dominant
// protocol — strong evidence the production GFW layers protocol
// whitelists on top, as follow-up measurement work later confirmed.
type FPStudyReport struct {
	Config  FPStudyConfig
	Classes []FPClassResult
}

// FPStudy drives four traffic classes at identical volumes through the
// detector: direct plaintext HTTP, direct TLS, Shadowsocks, and a
// VMess-like fully-encrypted protocol (uniformly random first packet of
// similar lengths).
func FPStudy(cfg FPStudyConfig) (*FPStudyReport, error) {
	if cfg.FlowsPerKind == 0 {
		cfg.FlowsPerKind = 150000
	}

	spec, err := sscrypto.Lookup("aes-256-gcm")
	if err != nil {
		return nil, err
	}

	type class struct {
		kind    string
		payload func(tg *trafficgen.Generator, gen *entropy.Generator) []byte
	}
	classes := []class{
		{"direct-http", func(tg *trafficgen.Generator, gen *entropy.Generator) []byte {
			// The raw GET request: plaintext, entropy ≈ 4-5 bits/byte.
			p := tg.PlaintextFirstFlight(trafficgen.CurlHTTP)
			return p[7:] // strip the target spec; direct traffic has none
		}},
		{"direct-tls", func(tg *trafficgen.Generator, gen *entropy.Generator) []byte {
			p := tg.PlaintextFirstFlight(trafficgen.CurlHTTPS)
			// Strip the spec; what remains is a ClientHello record whose
			// body is mostly random (keys, session ids) with plaintext
			// framing.
			_, rest, _ := strings.Cut(string(p), "\x16")
			return append([]byte{0x16}, rest...)
		}},
		{"shadowsocks", func(tg *trafficgen.Generator, gen *entropy.Generator) []byte {
			return tg.FirstWirePacket(spec, trafficgen.BrowseAlexa)
		}},
		{"vmess-like", func(tg *trafficgen.Generator, gen *entropy.Generator) []byte {
			// Another fully encrypted protocol: random bytes, similar
			// first-flight length profile.
			return gen.Random(200 + gen.Intn(500))
		}},
	}

	report := &FPStudyReport{Config: cfg}
	for i, c := range classes {
		sim, net := simNet(cfg.Seed, cfg.Impair)
		gcfg := cfg.GFW
		gcfg.Seed = seedfork.Fork(cfg.Seed, "fpstudy.gfw", int64(i))
		g := gfw.New(gfw.Env{Sim: sim, Net: net}, gfw.WithConfig(gcfg))
		net.AddMiddlebox(g)
		server := netsim.Endpoint{IP: fmt.Sprintf("178.62.50.%d", i+1), Port: 443}
		client := netsim.Endpoint{IP: fmt.Sprintf("150.109.50.%d", i+1), Port: 40000}
		host := &ServerHost{Sim: sim, Sink: true, seen: map[uint64]struct{}{}}
		net.AddHost(server, host)

		tg := trafficgen.New(seedfork.Fork(cfg.Seed, "fpstudy.trafficgen", int64(i)))
		gen := entropy.NewGenerator(seedfork.Fork(cfg.Seed, "fpstudy.entropy", int64(i)))
		sent := 0
		var tick func()
		tick = func() {
			if sent >= cfg.FlowsPerKind {
				return
			}
			sent++
			net.Connect(client, server, c.payload(tg, gen), false, time.Time{})
			sim.After(2*time.Second, tick)
		}
		sim.After(0, tick)
		sim.Run()

		report.Classes = append(report.Classes, FPClassResult{
			Kind: c.kind, Flows: sent, Probes: g.Log.Len(), Recorded: g.PayloadsRecorded,
			Rate: float64(g.Log.Len()) / float64(sent) * 1000,
		})
	}
	return report, nil
}

// Render prints the per-class exposure table.
func (r *FPStudyReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension study (§9): probing exposure by traffic class (%d flows each)\n", r.Config.FlowsPerKind)
	fmt.Fprintf(&b, "  %-14s %-10s %-10s %s\n", "class", "recorded", "probes", "probes/1000 flows")
	for _, c := range r.Classes {
		fmt.Fprintf(&b, "  %-14s %-10d %-10d %.2f\n", c.Kind, c.Recorded, c.Probes, c.Rate)
	}
	return b.String()
}
