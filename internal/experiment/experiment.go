// Package experiment contains the harnesses that re-run every measurement
// experiment in the paper on the simulated substrate and produce reports
// with the same structure as the paper's tables and figures. Each report
// type has a Render method that prints a terminal version of the artifact,
// and exported fields that the test- and benchmark-suite assert against.
//
// Experiment index (see DESIGN.md for the full mapping):
//
//	ShadowsocksExperiment — §3.1 → Figures 2, 3, 5, 6, 7; Tables 2, 3; Figure 4
//	SinkExperiments       — §4.1 → Table 4; Figures 8, 9; staged probing
//	BrdgrdExperiment      — §7.1 → Figure 11
//	ReactionMatrices      — §5   → Figures 10a, 10b; Table 5
package experiment

import (
	"fmt"
	"hash/fnv"
	"time"

	"sslab/internal/netsim"
	"sslab/internal/reaction"
	"sslab/internal/sscrypto"
)

// Timeline reproduces Table 1: the time span of each set of experiments.
type Timeline struct {
	Rows []TimelineRow
}

// TimelineRow is one Table 1 entry.
type TimelineRow struct {
	Experiment string
	Start, End time.Time
	Span       string
}

// Table1 returns the paper's experiment timeline.
func Table1() Timeline {
	d := func(y int, m time.Month, day int) time.Time {
		return time.Date(y, m, day, 0, 0, 0, 0, time.UTC)
	}
	return Timeline{Rows: []TimelineRow{
		{"Shadowsocks", d(2019, 9, 29), d(2020, 1, 21), "4 months"},
		{"Sink", d(2020, 5, 16), d(2020, 5, 31), "2 weeks"},
		{"Brdgrd", d(2019, 11, 2), d(2019, 11, 19), "403 hours"},
	}}
}

// Render prints Table 1.
func (t Timeline) Render() string {
	out := "Table 1: Timeline of all major experiments\n"
	for _, r := range t.Rows {
		out += fmt.Sprintf("  %-12s %s – %s (%s)\n",
			r.Experiment, r.Start.Format("Jan 2, 2006"), r.End.Format("Jan 2, 2006"), r.Span)
	}
	return out
}

// ServerHost adapts a reaction.Server into a netsim.Host. Genuine client
// flows are served (and their IV/salt registered in the replay filter);
// probe flows get the reaction engine's verdict. Identical replays of a
// genuine payload against a server without replay defense are served with
// data — the behaviour that drives the GFW's staged escalation.
type ServerHost struct {
	Server *reaction.Server
	Sim    *netsim.Sim

	// Sink turns the host into §4.1's sink server: TCP accepts, no data,
	// and no protocol processing at all.
	Sink bool
	// RespondAll turns the host into §4.1's responding server: 1–1000
	// random bytes to every prober.
	RespondAll bool

	seen map[uint64]struct{}

	// ProbesSeen counts probe flows delivered to this host.
	ProbesSeen int
}

// NewServerHost builds a host for a profile/method pair.
func NewServerHost(sim *netsim.Sim, p reaction.Profile, method, password string) (*ServerHost, error) {
	spec, err := sscrypto.Lookup(method)
	if err != nil {
		return nil, err
	}
	srv, err := reaction.NewServer(p, spec, password)
	if err != nil {
		return nil, err
	}
	return &ServerHost{Server: srv, Sim: sim, seen: map[uint64]struct{}{}}, nil
}

func payloadKey(p []byte) uint64 {
	h := fnv.New64a()
	h.Write(p)
	return h.Sum64()
}

// HandleFlow implements netsim.Host.
func (h *ServerHost) HandleFlow(f *netsim.Flow) netsim.Outcome {
	now := h.Sim.Now()
	if !f.Probe {
		// A genuine client: the proxy serves it. Its nonce enters the
		// replay filter exactly as real processing would record it.
		if !h.Sink && h.Server != nil {
			h.Server.RegisterNonce(f.FirstPayload, now)
		}
		h.seen[payloadKey(f.FirstPayload)] = struct{}{}
		if h.Sink {
			return netsim.Outcome{Reaction: reaction.Timeout}
		}
		return netsim.Outcome{Reaction: reaction.Data, ResponseLen: 1200}
	}

	h.ProbesSeen++
	if h.RespondAll {
		return netsim.Outcome{Reaction: reaction.Data, ResponseLen: 500}
	}
	if h.Sink {
		return netsim.Outcome{Reaction: reaction.Timeout}
	}

	// Identical replay against an undefended server is served like a
	// fresh client (Table 5's "D"); everything else gets the reaction
	// engine's verdict (the payload entropy makes it equivalent to a
	// random probe whenever it is not an exact replay).
	if _, ok := h.seen[payloadKey(f.FirstPayload)]; ok && !h.Server.Profile.ReplayDefense {
		return netsim.Outcome{Reaction: reaction.Data, ResponseLen: 800}
	}
	r := h.Server.ReactAt(f.FirstPayload, f.GeneratedAt, now)
	return netsim.Outcome{Reaction: r.Reaction}
}
