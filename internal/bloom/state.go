package bloom

// FilterState is a Filter's serializable state. The bit array is
// stored sparsely — (word index, word value) pairs for nonzero words —
// because snapshot-scale filters are mostly empty: a fleet server's
// replay filter is sized for a whole epoch's traffic, so dense
// serialization would cost hundreds of kilobytes per server while the
// occupied words fit in a few.
type FilterState struct {
	NBits   uint64
	K       int
	Entries int
	Cap     int
	Words   []WordState
}

// WordState is one nonzero 64-bit word of the sparse bit array.
type WordState struct {
	Index uint32
	Word  uint64
}

// State captures the filter's serializable state.
func (f *Filter) State() FilterState {
	st := FilterState{NBits: f.nbits, K: f.k, Entries: f.entries, Cap: f.cap}
	for i, w := range f.bits {
		if w != 0 {
			st.Words = append(st.Words, WordState{Index: uint32(i), Word: w})
		}
	}
	return st
}

// RestoreFilter reconstructs a Filter from a captured state.
func RestoreFilter(st FilterState) *Filter {
	f := &Filter{
		bits:    make([]uint64, (st.NBits+63)/64),
		nbits:   st.NBits,
		k:       st.K,
		entries: st.Entries,
		cap:     st.Cap,
	}
	for _, w := range st.Words {
		if int(w.Index) < len(f.bits) {
			f.bits[w.Index] = w.Word
		}
	}
	return f
}

// PingPongState is a PingPong pair's serializable state.
type PingPongState struct {
	Gen     [2]FilterState
	Current int
}

// State captures the pair's serializable state.
func (p *PingPong) State() PingPongState {
	return PingPongState{
		Gen:     [2]FilterState{p.gen[0].State(), p.gen[1].State()},
		Current: p.current,
	}
}

// RestorePingPong reconstructs a PingPong pair from a captured state.
func RestorePingPong(st PingPongState) *PingPong {
	return &PingPong{
		gen:     [2]*Filter{RestoreFilter(st.Gen[0]), RestoreFilter(st.Gen[1])},
		current: st.Current & 1,
	}
}
