// Package bloom implements the Bloom filter Shadowsocks-libev uses (as
// "ppbloom") to remember the IVs and salts of past connections, the basis
// of its replay defense analyzed in §5.3 of the paper.
//
// Like ppbloom, the filter is a ping-pong pair of sub-filters so that it
// can run forever in bounded memory: once the active sub-filter reaches its
// capacity, insertion switches to the other one and the old one is cleared
// after the new one also fills. A consequence — exploited conceptually by
// long-delay replays (Figure 7 shows replays after 570 hours) — is that
// sufficiently old entries are eventually forgotten.
package bloom

import (
	"encoding/binary"
	"hash/fnv"
	"math"
)

// Filter is a single Bloom filter with double-hashing (Kirsch–Mitzenmacher)
// index derivation.
type Filter struct {
	bits    []uint64
	nbits   uint64
	k       int
	entries int
	cap     int
}

// New creates a Bloom filter sized for capacity entries at the given
// false-positive rate.
func New(capacity int, fpRate float64) *Filter {
	if capacity < 1 {
		capacity = 1
	}
	if fpRate <= 0 || fpRate >= 1 {
		fpRate = 1e-6
	}
	m := uint64(math.Ceil(-float64(capacity) * math.Log(fpRate) / (math.Ln2 * math.Ln2)))
	if m < 64 {
		m = 64
	}
	k := int(math.Round(float64(m) / float64(capacity) * math.Ln2))
	if k < 1 {
		k = 1
	}
	return &Filter{
		bits:  make([]uint64, (m+63)/64),
		nbits: m,
		k:     k,
		cap:   capacity,
	}
}

// indexes derives the k bit positions for data via two FNV-1a hashes.
func (f *Filter) indexes(data []byte, idx []uint64) []uint64 {
	h1 := fnv.New64a()
	h1.Write(data)
	a := h1.Sum64()

	h2 := fnv.New64a()
	var seed [8]byte
	binary.LittleEndian.PutUint64(seed[:], a)
	h2.Write(seed[:])
	h2.Write(data)
	b := h2.Sum64() | 1 // force odd so the stride cycles

	idx = idx[:0]
	for i := 0; i < f.k; i++ {
		idx = append(idx, (a+uint64(i)*b)%f.nbits)
	}
	return idx
}

// Add inserts data into the filter.
func (f *Filter) Add(data []byte) {
	var scratch [16]uint64
	for _, i := range f.indexes(data, scratch[:0]) {
		f.bits[i/64] |= 1 << (i % 64)
	}
	f.entries++
}

// Test reports whether data may have been added (with the configured
// false-positive probability) — false means definitely never added.
func (f *Filter) Test(data []byte) bool {
	var scratch [16]uint64
	for _, i := range f.indexes(data, scratch[:0]) {
		if f.bits[i/64]&(1<<(i%64)) == 0 {
			return false
		}
	}
	return true
}

// Len returns the number of entries added since creation or the last Reset.
func (f *Filter) Len() int { return f.entries }

// Cap returns the design capacity.
func (f *Filter) Cap() int { return f.cap }

// Reset clears the filter.
func (f *Filter) Reset() {
	for i := range f.bits {
		f.bits[i] = 0
	}
	f.entries = 0
}

// PingPong is the two-generation wrapper (ppbloom). Insertions go to the
// current generation; lookups consult both. When the current generation
// fills, the stale one is cleared and becomes current.
type PingPong struct {
	gen     [2]*Filter
	current int
}

// NewPingPong creates a ping-pong filter pair, each generation sized for
// capacity entries.
func NewPingPong(capacity int, fpRate float64) *PingPong {
	return &PingPong{gen: [2]*Filter{New(capacity, fpRate), New(capacity, fpRate)}}
}

// Add inserts data, rotating generations when the current one is full.
func (p *PingPong) Add(data []byte) {
	cur := p.gen[p.current]
	if cur.Len() >= cur.Cap() {
		p.current = 1 - p.current
		p.gen[p.current].Reset()
		cur = p.gen[p.current]
	}
	cur.Add(data)
}

// Test reports whether data may be present in either generation.
func (p *PingPong) Test(data []byte) bool {
	return p.gen[0].Test(data) || p.gen[1].Test(data)
}

// TestAndAdd atomically tests then adds; it returns the pre-add Test result.
// This is the exact operation a replay filter needs per connection.
func (p *PingPong) TestAndAdd(data []byte) bool {
	seen := p.Test(data)
	if !seen {
		p.Add(data)
	}
	return seen
}

// Len returns the total live entries across generations.
func (p *PingPong) Len() int { return p.gen[0].Len() + p.gen[1].Len() }
