package bloom

import (
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"
)

func key(i int) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(i))
	return b[:]
}

// TestNoFalseNegatives is the defining Bloom filter property: everything
// added must test positive.
func TestNoFalseNegatives(t *testing.T) {
	f := New(10000, 1e-6)
	for i := 0; i < 10000; i++ {
		f.Add(key(i))
	}
	for i := 0; i < 10000; i++ {
		if !f.Test(key(i)) {
			t.Fatalf("false negative for entry %d", i)
		}
	}
}

// TestFalsePositiveRate checks the observed FP rate is within ~4x of the
// configured rate at design capacity.
func TestFalsePositiveRate(t *testing.T) {
	const capacity, rate = 20000, 1e-3
	f := New(capacity, rate)
	for i := 0; i < capacity; i++ {
		f.Add(key(i))
	}
	fp := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		if f.Test(key(capacity + i)) {
			fp++
		}
	}
	observed := float64(fp) / trials
	if observed > 4*rate {
		t.Errorf("false positive rate %.5f, want <= %.5f", observed, 4*rate)
	}
}

func TestReset(t *testing.T) {
	f := New(100, 1e-6)
	f.Add([]byte("x"))
	if !f.Test([]byte("x")) {
		t.Fatal("entry missing before reset")
	}
	f.Reset()
	if f.Test([]byte("x")) {
		t.Error("entry survived reset")
	}
	if f.Len() != 0 {
		t.Error("Len nonzero after reset")
	}
}

func TestDegenerateParams(t *testing.T) {
	// Constructor must not panic or produce a broken filter on bad input.
	for _, f := range []*Filter{New(0, 1e-6), New(-5, 0), New(1, 2)} {
		f.Add([]byte("a"))
		if !f.Test([]byte("a")) {
			t.Error("degenerate filter lost an entry")
		}
	}
}

// TestPingPongRotation verifies that the ping-pong pair keeps recent
// entries and eventually forgets old ones — the property that makes
// long-delay replays effective against nonce-only filters (§7.2).
func TestPingPongRotation(t *testing.T) {
	p := NewPingPong(100, 1e-6)
	p.Add(key(0))
	if !p.Test(key(0)) {
		t.Fatal("fresh entry missing")
	}
	// Fill far past two generations.
	for i := 1; i <= 250; i++ {
		p.Add(key(i))
	}
	if p.Test(key(0)) {
		t.Error("entry 0 should have been forgotten after two rotations")
	}
	if !p.Test(key(250)) {
		t.Error("most recent entry missing")
	}
	if p.Len() > 200 {
		t.Errorf("live entries %d exceed two generations", p.Len())
	}
}

func TestTestAndAdd(t *testing.T) {
	p := NewPingPong(100, 1e-6)
	if p.TestAndAdd([]byte("salt1")) {
		t.Error("first sight reported as replay")
	}
	if !p.TestAndAdd([]byte("salt1")) {
		t.Error("second sight not reported as replay")
	}
}

// TestQuickNoFalseNegatives property-tests arbitrary byte strings.
func TestQuickNoFalseNegatives(t *testing.T) {
	f := New(5000, 1e-4)
	fn := func(data []byte) bool {
		f.Add(data)
		return f.Test(data)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAdd(b *testing.B) {
	f := New(1<<20, 1e-6)
	data := make([]byte, 32)
	rand.New(rand.NewSource(1)).Read(data)
	for i := 0; i < b.N; i++ {
		binary.LittleEndian.PutUint64(data, uint64(i))
		f.Add(data)
	}
}

func BenchmarkTest(b *testing.B) {
	f := New(1<<20, 1e-6)
	data := make([]byte, 32)
	for i := 0; i < 1<<16; i++ {
		binary.LittleEndian.PutUint64(data, uint64(i))
		f.Add(data)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		binary.LittleEndian.PutUint64(data, uint64(i))
		f.Test(data)
	}
}
