package core

import (
	"testing"
	"time"

	"sslab/internal/defense"
	"sslab/internal/gfw"
	"sslab/internal/probe"
	"sslab/internal/reaction"
	"sslab/internal/trafficgen"
)

// TestLabComposesTheWholeSystem drives the headline result through the
// high-level API: two deployments under one censor, one of which answers
// replays and escalates to stage 2, one of which defends and stays at
// stage 1.
func TestLabComposesTheWholeSystem(t *testing.T) {
	lab := NewLab(gfw.Config{Seed: 5, PoolSize: 3000})

	outline, err := lab.AddDeployment("outline", reaction.Outline107,
		"chacha20-ietf-poly1305", "pw", trafficgen.BrowseAlexa, 40*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	libev, err := lab.AddDeployment("libev", reaction.LibevNew,
		"aes-256-gcm", "pw", trafficgen.CurlLoop, 40*time.Second)
	if err != nil {
		t.Fatal(err)
	}

	lab.Run(20*24*time.Hour, outline, libev)

	if outline.Probes() == 0 || libev.Probes() == 0 {
		t.Fatalf("probes: outline=%d libev=%d", outline.Probes(), libev.Probes())
	}
	if lab.GFW.Stage(outline.Server) != 2 {
		t.Error("outline deployment did not escalate to stage 2")
	}
	if lab.GFW.Stage(libev.Server) != 1 {
		t.Error("libev deployment escalated; replay defense ignored")
	}
	if outline.Blocked() || libev.Blocked() {
		t.Error("blocked at zero sensitivity")
	}
}

// TestLabShapingHook verifies the Shape hook feeds the same defense
// implementations the experiments use.
func TestLabShapingHook(t *testing.T) {
	lab := NewLab(gfw.Config{Seed: 6, PoolSize: 2000})
	guard := defense.NewBrdgrd(4, 64, 6)

	shaped, err := lab.AddDeployment("shaped", reaction.LibevNew,
		"aes-256-gcm", "pw", trafficgen.CurlHTTPS, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	shaped.Shape(guard.FirstSegment)
	control, err := lab.AddDeployment("control", reaction.LibevNew,
		"aes-256-gcm", "pw", trafficgen.CurlHTTPS, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}

	lab.Run(10*24*time.Hour, shaped, control)

	if control.Probes() == 0 {
		t.Fatal("control deployment unprobed; lab inert")
	}
	if shaped.Probes() > control.Probes()/10 {
		t.Errorf("shaping ineffective: shaped=%d control=%d", shaped.Probes(), control.Probes())
	}
}

// TestLabMultipleRunWindows: Run can be called repeatedly, advancing the
// same virtual clock (e.g. §4.1's sink→responding switch).
func TestLabMultipleRunWindows(t *testing.T) {
	lab := NewLab(gfw.Config{Seed: 7, PoolSize: 2000})
	d, err := lab.AddDeployment("d", reaction.Outline107,
		"chacha20-ietf-poly1305", "pw", trafficgen.BrowseAlexa, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	lab.Run(5*24*time.Hour, d)
	first := d.Probes()
	lab.Run(5*24*time.Hour, d)
	if d.Probes() <= first {
		t.Error("second window produced no additional probes")
	}
	// Probe-type accounting sanity via the capture log.
	counts := lab.GFW.Log.TypeCounts()
	if counts[probe.R1] == 0 {
		t.Error("no identical replays at all")
	}
}
