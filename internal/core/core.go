// Package core is the canonical entry point to the paper's primary
// contribution: a complete, calibrated model of how the GFW detects and
// blocks Shadowsocks. It composes the discrete-event network
// (internal/netsim), the censor (internal/gfw), and per-implementation
// server behaviour (internal/reaction via internal/experiment hosts) into
// a Lab — a ready-to-run simulated measurement environment, the same
// construction every experiment harness uses.
package core

import (
	"fmt"
	"time"

	"sslab/internal/experiment"
	"sslab/internal/gfw"
	"sslab/internal/netsim"
	"sslab/internal/reaction"
	"sslab/internal/sscrypto"
	"sslab/internal/trafficgen"
)

// Lab is one simulated measurement environment: a virtual clock, a
// network with the GFW on the border path, and any number of Shadowsocks
// deployments with scripted client traffic.
type Lab struct {
	Sim *netsim.Sim
	Net *netsim.Network
	GFW *gfw.GFW

	nextServerIP int
	nextClientIP int
}

// NewLab builds an empty lab with the censor attached.
func NewLab(cfg gfw.Config) *Lab {
	sim := netsim.NewSim()
	net := netsim.NewNetwork(sim)
	g := gfw.NewWithConfig(sim, net, cfg)
	net.AddMiddlebox(g)
	return &Lab{Sim: sim, Net: net, GFW: g}
}

// Deployment is one server plus its scripted client.
type Deployment struct {
	Name   string
	Server netsim.Endpoint
	Client netsim.Endpoint
	Host   *experiment.ServerHost

	lab      *Lab
	spec     sscrypto.Spec
	workload trafficgen.Workload
	tg       *trafficgen.Generator
	interval time.Duration
	stop     time.Time
	shape    func([]byte) []byte
}

// AddDeployment creates a server with the given behaviour profile and
// cipher method, plus a client that connects every interval using the
// workload, until the lab's Run horizon.
func (l *Lab) AddDeployment(name string, profile reaction.Profile, method, password string,
	workload trafficgen.Workload, interval time.Duration) (*Deployment, error) {

	host, err := experiment.NewServerHost(l.Sim, profile, method, password)
	if err != nil {
		return nil, err
	}
	spec, err := sscrypto.Lookup(method)
	if err != nil {
		return nil, err
	}
	l.nextServerIP++
	l.nextClientIP++
	d := &Deployment{
		Name:     name,
		Server:   netsim.Endpoint{IP: fmt.Sprintf("178.62.70.%d", l.nextServerIP), Port: 8388},
		Client:   netsim.Endpoint{IP: fmt.Sprintf("150.109.70.%d", l.nextClientIP), Port: 40000},
		Host:     host,
		lab:      l,
		spec:     spec,
		workload: workload,
		tg:       trafficgen.New(int64(l.nextServerIP) * 7919),
		interval: interval,
	}
	l.Net.AddHost(d.Server, host)
	return d, nil
}

// Shape installs a first-packet transformer on the deployment's client —
// the hook for brdgrd segmentation or TLS framing.
func (d *Deployment) Shape(f func([]byte) []byte) { d.shape = f }

// Run advances the lab by duration, driving every deployment's client
// loop, and drains all scheduled censor activity falling inside the
// window plus the trailing probe deliveries.
func (l *Lab) Run(duration time.Duration, deployments ...*Deployment) {
	end := l.Sim.Now().Add(duration)
	for _, d := range deployments {
		d.stop = end
		d.schedule()
	}
	l.Sim.Run()
}

// schedule arms the deployment's self-rescheduling client tick.
func (d *Deployment) schedule() {
	var tick func()
	tick = func() {
		if d.lab.Sim.Now().After(d.stop) {
			return
		}
		wire := d.tg.FirstWirePacket(d.spec, d.workload)
		if d.shape != nil {
			wire = d.shape(wire)
		}
		d.lab.Net.Connect(d.Client, d.Server, wire, false, time.Time{})
		d.lab.Sim.After(d.interval, tick)
	}
	d.lab.Sim.After(0, tick)
}

// Probes returns how many probes the deployment's server has received.
func (d *Deployment) Probes() int {
	n := 0
	for i := range d.lab.GFW.Log.Records {
		if d.lab.GFW.Log.Records[i].DstIP == d.Server.IP {
			n++
		}
	}
	return n
}

// Blocked reports whether the deployment is currently null-routed.
func (d *Deployment) Blocked() bool { return d.lab.Net.IsBlocked(d.Server) }
