// Package prof wires the conventional -cpuprofile/-memprofile flags
// into a command: CPU sampling starts immediately, and the heap profile
// is written (after a final GC) when the returned stop function runs.
// The profiles are pprof-format files for `go tool pprof`.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins profiling. Either path may be empty to skip that profile.
// The returned stop function must run exactly once, at the end of the
// work being measured (defer it in main).
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("heap profile: %w", err)
			}
			defer f.Close()
			runtime.GC() // report live objects, not garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("heap profile: %w", err)
			}
		}
		return nil
	}, nil
}
