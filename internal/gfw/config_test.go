package gfw

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"sslab/internal/netsim"
)

// TestConfigValidateSensitivity: the boundary property — every value in
// the closed interval [0, 1] is accepted (including both endpoints and
// a swept sample of interior points), everything outside it, and NaN,
// is rejected with an error that names the field and the offending
// value.
func TestConfigValidateSensitivity(t *testing.T) {
	ok := []float64{0, 1, math.SmallestNonzeroFloat64, 1 - 1e-16, 0.25, 0.5}
	rng := rand.New(rand.NewSource(61))
	for i := 0; i < 200; i++ {
		ok = append(ok, rng.Float64())
	}
	for _, s := range ok {
		cfg := Config{Sensitivity: s}.withDefaults()
		if err := cfg.Validate(); err != nil {
			t.Fatalf("Sensitivity %v rejected: %v", s, err)
		}
	}

	bad := []float64{-1, -math.SmallestNonzeroFloat64, math.Nextafter(1, 2), 2, 1e9,
		math.Inf(1), math.Inf(-1), math.NaN()}
	for i := 0; i < 200; i++ {
		if v := rng.NormFloat64() * 50; v < 0 || v > 1 {
			bad = append(bad, v)
		}
	}
	for _, s := range bad {
		cfg := Config{Sensitivity: s}.withDefaults()
		err := cfg.Validate()
		if err == nil {
			t.Fatalf("Sensitivity %v accepted", s)
		}
		if !strings.Contains(err.Error(), "Sensitivity") {
			t.Fatalf("error %q does not name the field", err)
		}
	}
}

// TestConfigValidateTTL: block-TTL knobs reject negatives and NaN; the
// zero values mean "default" and always validate.
func TestConfigValidateTTL(t *testing.T) {
	if err := (Config{}.withDefaults()).Validate(); err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
	for _, cfg := range []Config{
		{BlockTTLHours: -1},
		{BlockTTLHours: math.NaN()},
	} {
		if err := cfg.withDefaults().Validate(); err == nil {
			t.Fatalf("config %+v accepted", cfg)
		}
	}
	// Negative jitter is a pre-defaults sentinel for "no jitter": it
	// normalizes to 0 and validates.
	cfg := Config{BlockTTLJitterHours: -1}.withDefaults()
	if cfg.BlockTTLJitterHours != 0 {
		t.Fatalf("negative jitter normalized to %v, want 0", cfg.BlockTTLJitterHours)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("no-jitter sentinel rejected: %v", err)
	}
}

// TestNewPanicsOnInvalid: New is the construction chokepoint — an
// out-of-domain sensitivity must fail loudly there, not silently
// misbehave thousands of virtual hours later.
func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted Sensitivity 2")
		}
	}()
	sim := netsim.NewSim()
	net := netsim.NewNetwork(sim)
	New(Env{Sim: sim, Net: net}, WithConfig(Config{Sensitivity: 2}))
}

// TestBlockTTLKnobDefaults: the configurable TTL reproduces the
// historical hard-coded 7-day + U[0,7) draw when left at defaults —
// pinned here so the knob can never silently shift every golden.
func TestBlockTTLKnobDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.BlockTTLHours != 168 || cfg.BlockTTLJitterHours != 168 {
		t.Fatalf("default TTL %v h + %v h jitter, want 168 + 168",
			cfg.BlockTTLHours, cfg.BlockTTLJitterHours)
	}
}
