// Package gfw is a behavioural model of the Great Firewall's Shadowsocks
// detection pipeline as reverse-engineered by the paper: a passive
// traffic-analysis stage keyed on the length and entropy of each
// connection's first data packet (§4), a staged active-probing stage that
// replays recorded payloads and sends random probes from a large pool of
// source addresses (§3), and a blocking module that null-routes confirmed
// servers by port or by IP (§6).
//
// The model plugs into internal/netsim as a Middlebox and is calibrated to
// every quantitative observation in the paper; see internal/experiment for
// the harnesses that regenerate each figure and table.
package gfw

import (
	"fmt"
	"math"
	"math/rand"
	"slices"
	"time"

	"sslab/internal/capture"
	"sslab/internal/detector"
	"sslab/internal/metrics"
	"sslab/internal/netsim"
	"sslab/internal/probe"
	"sslab/internal/reaction"
	"sslab/internal/seedfork"
)

// Config tunes the model. Zero values select paper-calibrated defaults.
type Config struct {
	// Seed drives all of the model's randomness.
	Seed int64
	// PoolSize is the number of prober source addresses (default 13000,
	// which yields ≈12,300 distinct addresses over a four-month
	// experiment as in §3.3).
	PoolSize int
	// ReplayBase scales the passive detector's recording rate
	// (default 0.04, calibrated to Exp 1.a's replay-to-trigger ratio).
	ReplayBase float64
	// BlockThreshold is the fingerprint-evidence score at which a server
	// becomes a blocking candidate (default 10). Blocking additionally
	// requires the server to have served at least MinDataResponses
	// replayed payloads — see maybeBlock.
	BlockThreshold float64
	// MinDataResponses is how many replay probes the server must answer
	// with data before it can be blocked (default 2).
	MinDataResponses int
	// Sensitivity is the probability a blocking candidate actually gets
	// blocked — the "human factor" of §6 (default 0: probing without
	// blocking, as the paper observed for most servers; raise it to
	// simulate politically sensitive periods).
	Sensitivity float64
	// NR1MinFlows is how many observed flows a server needs before the
	// detector judges (once, latched) whether its traffic looks like
	// Shadowsocks and qualifies for NR1 probing (default 300). See
	// DESIGN.md.
	NR1MinFlows int
	// DisableLengthFeature / DisableEntropyFeature are ablation switches
	// for the two detector features.
	DisableLengthFeature  bool
	DisableEntropyFeature bool
	// TLSWhitelist models a censor that exempts TLS-framed flows from the
	// detector to avoid mass-probing the web — the conjecture the FPStudy
	// motivates and the mechanism application-fronting tools (§8) rely on.
	// It is sugar for prepending the "tlsexempt" stage to Detectors.
	TLSWhitelist bool
	// Detectors names the passive-detector stage chain, in evaluation
	// order, using internal/detector registry names or their aliases
	// ("ss", "tls", "ovpn", "fep", ...). Empty selects the classic
	// single-stage Shadowsocks chain, which leaves every pinned report
	// byte-identical to the pre-chain pipeline. The winning stage's
	// confidence is the probability the flow is recorded for active
	// probing; validate user-supplied chains with
	// detector.ValidateNames before construction (New panics on unknown
	// stage names).
	Detectors []string `json:"Detectors,omitempty"`
	// ProbeAttempts is how many times a prober re-sends a probe whose
	// connection the network dropped (netsim.Outcome.Dropped — only
	// possible over impaired links), default 3. Each retry draws a fresh
	// pool source and re-sends the same payload after ProbeTimeout.
	ProbeAttempts int `json:"ProbeAttempts,omitzero"`
	// Timeouts bounds the prober's patience. Handshake is how long a
	// prober waits for the server's reaction before recording a timeout
	// (default 10s — the sub-10s prober patience the paper contrasts
	// with server-side 60s defaults); it is also the spacing between
	// probe retries. Reactions are reclassified to timeouts only when an
	// impaired link delays them past this budget, so ideal-link runs are
	// unaffected.
	Timeouts netsim.Timeouts `json:"Timeouts,omitzero"`
	// NoProbeLog disables the packet-level capture log of outgoing
	// probes. Population-scale fleet runs emit hundreds of thousands of
	// probes whose per-record fingerprints nothing reads; the aggregate
	// counters, BlockEvents and per-server state are unaffected. The
	// zero value keeps the log, so existing experiments are unchanged.
	NoProbeLog bool `json:"NoProbeLog,omitzero"`
	// BlockTTLHours is how long a blocking rule stays installed before
	// the scheduled unblock fires, in hours (default 168 = one week,
	// §6's "more than a week" observation). BlockTTLJitterHours is the
	// width of the uniform whole-hour jitter added on top (default 168,
	// reproducing the historical now+1w+Intn(1w) rule); set it negative
	// to select a jitter-free TTL (normalized to 0, which skips the
	// jitter draw entirely).
	BlockTTLHours       float64 `json:"BlockTTLHours,omitzero"`
	BlockTTLJitterHours float64 `json:"BlockTTLJitterHours,omitzero"`
	// VerdictCache, when positive, enables the verdict-cache tier with
	// at least that many entries (rounded up to a power-of-two set
	// count; see cache.go). The cache memoizes the detector chain's
	// (winner, Result) keyed on (server endpoint, 64-bit payload
	// fingerprint); the chain is a deterministic pure function of the
	// flow, and the recording coin flip stays outside the cache, so
	// results — and every pinned golden — are unchanged; only
	// gfw.cache.* counters and speed differ. Zero disables the tier.
	VerdictCache int `json:"VerdictCache,omitzero"`
}

func (c Config) withDefaults() Config {
	if c.PoolSize == 0 {
		c.PoolSize = 13000
	}
	if c.ReplayBase == 0 {
		c.ReplayBase = 0.04
	}
	if c.BlockThreshold == 0 {
		c.BlockThreshold = 10
	}
	if c.NR1MinFlows == 0 {
		c.NR1MinFlows = 300
	}
	if c.MinDataResponses == 0 {
		c.MinDataResponses = 2
	}
	if c.ProbeAttempts == 0 {
		c.ProbeAttempts = 3
	}
	if c.Timeouts.Handshake == 0 {
		c.Timeouts.Handshake = 10 * time.Second
	}
	if c.BlockTTLHours == 0 {
		c.BlockTTLHours = 168
	}
	if c.BlockTTLJitterHours == 0 {
		c.BlockTTLJitterHours = 168
	} else if c.BlockTTLJitterHours < 0 {
		c.BlockTTLJitterHours = 0
	}
	return c
}

// Validate checks the configuration fields whose domains the model
// depends on. Sensitivity is a probability: values outside [0, 1]
// (or NaN) would silently saturate the blocking coin flip — a negative
// value behaves exactly like 0 and anything above 1 exactly like 1 —
// so misconfigurations hide instead of failing. New panics on an
// invalid Config; callers assembling configs from user input should
// call Validate first and surface the error.
func (c Config) Validate() error {
	if math.IsNaN(c.Sensitivity) || c.Sensitivity < 0 || c.Sensitivity > 1 {
		return fmt.Errorf("gfw: Sensitivity must be in [0, 1], got %v", c.Sensitivity)
	}
	if c.BlockTTLHours < 0 || math.IsNaN(c.BlockTTLHours) {
		return fmt.Errorf("gfw: BlockTTLHours must be non-negative, got %v", c.BlockTTLHours)
	}
	return nil
}

// BlockEvent records one blocking decision.
type BlockEvent struct {
	Time   time.Time
	Server netsim.Endpoint
	ByIP   bool // true: all ports of the IP; false: single port
	Until  time.Time
}

// GFW is the censor model. Create with New, then attach to a network with
// netsim.Network.AddMiddlebox.
type GFW struct {
	cfg   Config
	sim   *netsim.Sim
	net   *netsim.Network
	rng   *rand.Rand
	chain *detector.Chain
	cache *verdictCache
	Pool  *Pool

	// src and poolSrc are the counted sources behind rng and the pool's
	// rng; their draw counts, plus rd's partial-draw remainder, are the
	// censor's entire serializable stream position (see state.go). rd
	// replicates rand.Rand's byte reader with exported state so probe
	// payload bytes survive a snapshot/restore cycle byte-identically.
	src     *seedfork.CountedSource
	poolSrc *seedfork.CountedSource
	rd      seedfork.ByteReader
	// prng is the resident probe.RNG adapter; passing its address keeps
	// the hot probe path free of per-call interface boxing.
	prng probeRNG

	// Runtime policy knobs, initialized from Config and adjustable
	// mid-run by the spatiotemporal schedule layer (SetSensitivity,
	// SetBlockTTL, SetProbingPaused). They never feed back into cfg, so
	// a Config round-trip reports what the censor was built with.
	sens      float64
	ttlHours  float64
	ttlJitter float64
	paused    bool

	// stageRecs counts recordings attributed to each chain stage (the
	// stage whose confidence won the flow), parallel to chain.Names();
	// mStageRec are the matching pre-resolved counters.
	stageRecs []int
	mStageRec []*metrics.Counter

	// Log records every probe sent, with packet-level fingerprints.
	Log *capture.Log

	// servers holds per-suspect probing state, materialized lazily at a
	// server's first recording (or first probe); merely sending flows
	// never creates an entry, so the map is bounded by the number of
	// servers the censor actually suspects, not by the population.
	servers map[netsim.Endpoint]*serverState

	// profiles tracks the lightweight first-packet length profile for
	// NR1 qualification. Unlike servers it is fed by every
	// payload-bearing flow (the profile must exist before any
	// recording), but each entry is a few words, not a probing state.
	profiles map[netsim.Endpoint]*lenProfile

	// slab backs recorded payload copies: recordings reference capped
	// sub-slices of large chunks instead of one heap allocation per
	// payload, keeping the recording branch of OnFlow nearly
	// allocation-free. Outstanding sub-slices stay valid when a new
	// chunk replaces a full one (the old backing array lives on).
	slab []byte

	// taskFree recycles probeTask argument structs for the closure-free
	// AfterCall scheduling of probe batches; retryFree does the same for
	// the probe-retry path.
	taskFree  []*probeTask
	retryFree []*retryTask
	dupFree   []*dupTask

	// Pre-resolved instruments on the sim's registry (hot path: no map
	// lookups per flow).
	mTriggers      *metrics.Counter
	mRecorded      *metrics.Counter
	mProbes        *metrics.Counter
	mBlocks        *metrics.Counter
	mSlabBytes     *metrics.Gauge
	mProbeDrops    *metrics.Counter
	mProbeRetries  *metrics.Counter
	mProbeTimeouts *metrics.Counter

	// Counters for experiment reports.
	Triggers         int // non-probe flows observed
	PayloadsRecorded int // first payloads recorded for replay
	ProbesSent       int
	BlockEvents      []BlockEvent
	// Impairment-visible probe accounting: probes whose connection the
	// network dropped, retries scheduled in response, and reactions
	// reclassified as timeouts because they arrived past the prober's
	// patience. All stay zero on ideal links.
	ProbeDrops    int
	ProbeRetries  int
	ProbeTimeouts int
}

// serverState is the per-suspect staged probing state (§4.2: "the active
// probing system operates in stages").
type serverState struct {
	stage         int // 1: R1/R2/NR2; 2: adds R3/R4 (+rare R5/R6)
	dataResponses int // probes the server answered with data
	fpScore       float64
	blocked       bool
	// blockGen counts blocks of this server; the scheduled unblock only
	// clears state belonging to its own generation, so a re-block that
	// lands before a pending unblock fires is not cleared early.
	blockGen     uint64
	recordedPays [][]byte // payloads recorded from this server's flows
}

// ssLikeFrac is the calibrated NR1 discriminator threshold: the fraction
// of a server's payload-bearing first packets that must fall in 160–700
// bytes before its traffic is judged Shadowsocks-like. 63% sits between
// real Shadowsocks handshakes (nearly all in range) and uniform random
// lengths (~54% in 1–1000, ~27% in 1–2000); see DESIGN.md.
const ssLikeFrac = 0.63

// lenProfile is a server's first-packet length profile, fed by every
// payload-bearing flow. Only flows that carried a first payload count:
// empty first flights (dropped or impaired connections) say nothing
// about the server's handshake lengths and must not dilute the
// denominator — with the judgment latched at NR1MinFlows, dilution
// could permanently misclassify a genuine Shadowsocks server.
type lenProfile struct {
	total   int32 // payload-bearing flows observed
	inRange int32 // flows whose first packet was 160-700 bytes
	latch   int8  // 0: not yet judged; +1: ss-like; -1: not
}

// ssLike reports whether the server's traffic looks like Shadowsocks:
// first-packet lengths concentrated where real Shadowsocks handshakes
// land (at least ssLikeFrac = 63% in 160–700 bytes). The judgment is
// made once, after minFlows observations, and latched. This is the
// discriminator that explains why NR1 probes appeared in the
// Shadowsocks experiments but never in the uniform-random-length
// experiments of §4 (see DESIGN.md).
func (p *lenProfile) ssLike(minFlows int) bool {
	if p.latch != 0 {
		return p.latch > 0
	}
	if int(p.total) < minFlows {
		return false
	}
	if float64(p.inRange) >= ssLikeFrac*float64(p.total) {
		p.latch = 1
		return true
	}
	p.latch = -1
	return false
}

// Env is the simulation substrate a GFW attaches to: the event
// scheduler and the network whose border it sits on. It exists so the
// censor's constructor takes one environment value plus options, rather
// than a growing list of positional parameters.
type Env struct {
	Sim *netsim.Sim
	Net *netsim.Network
}

// Option configures the censor at construction (see New).
type Option func(*Config)

// WithConfig replaces the whole configuration — the bridge from the
// config-struct world (experiment harnesses, sweep overrides) into the
// options world.
func WithConfig(cfg Config) Option {
	return func(c *Config) { *c = cfg }
}

// WithSeed sets the seed driving all of the censor's randomness.
func WithSeed(seed int64) Option {
	return func(c *Config) { c.Seed = seed }
}

// WithPoolSize sets the number of prober source addresses.
func WithPoolSize(n int) Option {
	return func(c *Config) { c.PoolSize = n }
}

// WithSensitivity sets the blocking module's "human factor" gate.
func WithSensitivity(p float64) Option {
	return func(c *Config) { c.Sensitivity = p }
}

// WithTimeouts sets the prober's patience (see Config.Timeouts).
func WithTimeouts(t netsim.Timeouts) Option {
	return func(c *Config) { c.Timeouts = t }
}

// WithDetectors sets the passive detector chain (see Config.Detectors).
// New panics on unknown or duplicate names; validate user input with
// detector.ValidateNames first.
func WithDetectors(names []string) Option {
	return func(c *Config) { c.Detectors = names }
}

// WithVerdictCache enables the verdict-cache tier with at least the
// given number of entries (see Config.VerdictCache). Zero or negative
// disables it.
func WithVerdictCache(entries int) Option {
	return func(c *Config) { c.VerdictCache = entries }
}

// chainNames resolves the configured detector list to the canonical
// stage chain: aliases resolved, the Shadowsocks default applied, and
// TLSWhitelist mapped to a leading tlsexempt stage.
func (c Config) chainNames() []string {
	names := make([]string, 0, len(c.Detectors)+1)
	for _, n := range c.Detectors {
		names = append(names, detector.Canonical(n))
	}
	if len(names) == 0 {
		names = append(names, detector.StageShadowsocks)
	}
	if c.TLSWhitelist && !slices.Contains(names, detector.StageTLSExempt) {
		names = append([]string{detector.StageTLSExempt}, names...)
	}
	return names
}

// New creates a GFW on env, configured by options over the zero Config
// (zero values select paper-calibrated defaults). The caller must also
// register it: env.Net.AddMiddlebox(g). New panics on unknown detector
// stage names; validate user input with detector.ValidateNames first.
func New(env Env, opts ...Option) *GFW {
	var cfg Config
	for _, o := range opts {
		o(&cfg)
	}
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sim, net := env.Sim, env.Net
	src := seedfork.NewCountedSource(cfg.Seed)
	rng := rand.New(src)
	//sslab:allow-seedfork historical +1 offset is baked into the zero-impairment goldens and EXPERIMENTS.md; changing the pool stream would invalidate every pinned report
	poolSrc := seedfork.NewCountedSource(cfg.Seed + 1)
	chain := detector.MustChain(cfg.chainNames(), detector.Params{
		Base:           cfg.ReplayBase,
		DisableLength:  cfg.DisableLengthFeature,
		DisableEntropy: cfg.DisableEntropyFeature,
	})
	g := &GFW{
		cfg:            cfg,
		sim:            sim,
		net:            net,
		rng:            rng,
		src:            src,
		poolSrc:        poolSrc,
		sens:           cfg.Sensitivity,
		ttlHours:       cfg.BlockTTLHours,
		ttlJitter:      cfg.BlockTTLJitterHours,
		chain:          chain,
		stageRecs:      make([]int, chain.Len()),
		mStageRec:      make([]*metrics.Counter, chain.Len()),
		Pool:           NewPool(rand.New(poolSrc), cfg.PoolSize, sim.Now()),
		Log:            capture.NewLog(sim.Now()),
		servers:        map[netsim.Endpoint]*serverState{},
		profiles:       map[netsim.Endpoint]*lenProfile{},
		mTriggers:      sim.Metrics.Counter("gfw.triggers"),
		mRecorded:      sim.Metrics.Counter("gfw.payloads_recorded"),
		mProbes:        sim.Metrics.Counter("gfw.probes_sent"),
		mBlocks:        sim.Metrics.Counter("gfw.block_events"),
		mSlabBytes:     sim.Metrics.Gauge("gfw.recording_slab_bytes"),
		mProbeDrops:    sim.Metrics.Counter("gfw.probe_drops"),
		mProbeRetries:  sim.Metrics.Counter("gfw.probe_retries"),
		mProbeTimeouts: sim.Metrics.Counter("gfw.probe_timeouts"),
	}
	g.prng.g = g
	for i, name := range chain.Names() {
		g.mStageRec[i] = sim.Metrics.Counter("gfw.recorded." + name)
	}
	if cfg.VerdictCache > 0 {
		g.cache = newVerdictCache(cfg.VerdictCache, sim.Metrics)
	}
	return g
}

// NewWithConfig creates a GFW from the pre-options positional signature.
//
// Deprecated: use New(Env{Sim: sim, Net: net}, WithConfig(cfg)).
func NewWithConfig(sim *netsim.Sim, net *netsim.Network, cfg Config) *GFW {
	return New(Env{Sim: sim, Net: net}, WithConfig(cfg))
}

// slabChunk is the recording slab's chunk size. Payloads are at most
// ~1500 bytes, so one chunk amortizes hundreds of recordings.
const slabChunk = 64 * 1024

// slabCopy copies p into the recording slab and returns a capped
// sub-slice (appends to the slab can never write through it).
func (g *GFW) slabCopy(p []byte) []byte {
	if len(g.slab)+len(p) > cap(g.slab) {
		n := slabChunk
		if len(p) > n {
			n = len(p)
		}
		g.slab = make([]byte, 0, n)
		g.mSlabBytes.Add(int64(n))
	}
	start := len(g.slab)
	g.slab = append(g.slab, p...)
	return g.slab[start:len(g.slab):len(g.slab)]
}

// state returns (materializing on first use) the per-suspect probing
// state. It is called only from the recording branch of onFlow and from
// the probe paths — never for a flow that merely crosses the border —
// so a server enters the map only once the censor actually suspects it.
// Materialization draws no RNG, so laziness is invisible to goldens.
func (g *GFW) state(server netsim.Endpoint) *serverState {
	s, ok := g.servers[server]
	if !ok {
		s = &serverState{stage: 1}
		g.servers[server] = s
	}
	return s
}

// profile returns (materializing on first use) the server's first-packet
// length profile.
//
//sslab:hotpath
func (g *GFW) profile(server netsim.Endpoint) *lenProfile {
	p, ok := g.profiles[server]
	if !ok {
		p = &lenProfile{}
		g.profiles[server] = p
	}
	return p
}

// SuspectedServers returns how many servers have materialized probing
// state — the size of the lazily-populated servers map, bounded by the
// servers the censor has actually recorded or probed rather than by
// every endpoint that ever sent a flow.
func (g *GFW) SuspectedServers() int { return len(g.servers) }

// Stage returns the probing stage for a server (0 if never suspected).
func (g *GFW) Stage(server netsim.Endpoint) int {
	if s, ok := g.servers[server]; ok {
		return s.stage
	}
	return 0
}

// RecordedPayloads returns copies of the payloads recorded from flows to
// the given server (the ground truth for replay classification).
func (g *GFW) RecordedPayloads(server netsim.Endpoint) [][]byte {
	s, ok := g.servers[server]
	if !ok {
		return nil
	}
	return s.recordedPays
}

// DetectorNames returns the canonical detector chain, in evaluation
// order.
func (g *GFW) DetectorNames() []string { return g.chain.Names() }

// StageCount is one detector stage's share of the recordings.
type StageCount struct {
	// Name is the stage's canonical registry name.
	Name string
	// Recorded counts recordings this stage's confidence won.
	Recorded int
}

// StageRecordings attributes PayloadsRecorded to the chain stage whose
// verdict won each flow, in chain order.
func (g *GFW) StageRecordings() []StageCount {
	out := make([]StageCount, g.chain.Len())
	for i, name := range g.chain.Names() {
		out[i] = StageCount{Name: name, Recorded: g.stageRecs[i]}
	}
	return out
}

// OnFlow implements netsim.Middlebox: passive analysis of a crossing flow.
//
//sslab:hotpath
func (g *GFW) OnFlow(f *netsim.Flow) {
	g.onFlow(f)
}

// OnFlowBatch implements netsim.BatchMiddlebox: the batched ingestion
// path the fleet engine feeds. Each flow gets exactly the same passive
// analysis, in slice order, as it would through OnFlow, so batch and
// scalar delivery are observationally identical (pinned by the netsim
// equivalence tests and TestGoldenCrossCheck). The flows live in the
// network's reused batch arena and are valid only for the duration of
// the call; the recording branch already slab-copies any payload it
// keeps.
//
//sslab:hotpath
func (g *GFW) OnFlowBatch(fs []netsim.Flow) {
	for i := range fs {
		g.onFlow(&fs[i])
	}
}

// onFlow is the shared scalar/batch passive-analysis path.
//
//sslab:hotpath
func (g *GFW) onFlow(f *netsim.Flow) {
	if f.Probe {
		return // the censor does not re-analyze its own probes
	}
	g.Triggers++
	g.mTriggers.Inc()

	// Payload-less flows (dropped or impaired connections, empty first
	// flights) carry no signal: they must not feed the length profile —
	// the latched NR1 judgment would be permanently diluted — and give
	// the detector chain nothing to judge.
	if len(f.FirstPayload) == 0 {
		return
	}

	// Track the first-packet length profile for NR1 qualification.
	p := g.profile(f.Server)
	p.total++
	if n := len(f.FirstPayload); n >= 160 && n <= 700 {
		p.inRange++
	}

	// The detector chain judges the flow: an Exempt verdict (e.g. the
	// tlsexempt whitelist stage) or an all-Pass chain — the common case
	// for unremarkable traffic — needs no coin flip; a Suspect verdict's
	// confidence is the recording probability.
	// A schedule-paused censor keeps watching (profiles keep filling,
	// verdicts are still computed) but records nothing and sends no
	// probes; the gate sits before the recording coin flip so an
	// unpaused run's RNG stream is untouched.
	winner, res := g.PassiveVerdict(f)
	if g.paused || res.Verdict != detector.Suspect || g.rng.Float64() >= res.Confidence {
		return
	}

	// Record the payload and schedule a batch of probes derived from it.
	// The recording and its probe tasks are off the hot path (a few per
	// thousand flows); the payload bytes come from the shared slab, and
	// this is the first point at which the server's probing state — and
	// its servers-map entry — comes into existence.
	s := g.state(f.Server)
	g.PayloadsRecorded++
	g.mRecorded.Inc()
	g.stageRecs[winner]++
	g.mStageRec[winner].Inc()
	rec := &recording{
		payload: g.slabCopy(f.FirstPayload),
		at:      g.sim.Now(),
	}
	s.recordedPays = append(s.recordedPays, rec.payload) //sslab:allow-hotpath cold branch: a few recordings per thousand flows, and the ground-truth list must grow

	n := sampleRepeatCount(g.rng)
	for i := 0; i < n; i++ {
		g.sim.AfterCall(sampleDelay(g.rng), runProbeTask, g.newProbeTask(f.Server, rec))
	}
}

// PassiveVerdict runs the censor's passive pipeline on one flow and
// returns the winning stage index and combined result, going through
// the verdict cache when one is configured. It performs no RNG draws
// and no recording — it is the deterministic "is this suspicious, and
// how confident" half of onFlow, exported so benchmarks and
// equivalence tests can drive the cache directly.
//
//sslab:hotpath
func (g *GFW) PassiveVerdict(f *netsim.Flow) (int, detector.Result) {
	if g.cache == nil {
		return g.chain.Observe(f)
	}
	fp := detector.Fingerprint(f.FirstPayload)
	if winner, res, ok := g.cache.lookup(f.Server, fp); ok {
		return winner, res
	}
	winner, res := g.chain.Observe(f)
	g.cache.insert(f.Server, fp, winner, res)
	return winner, res
}

// CacheStats reports the verdict cache's hit/miss/eviction totals (all
// zero when the cache is disabled). The same numbers are exported as
// the gfw.cache.* metrics counters.
func (g *GFW) CacheStats() (hits, misses, evictions int64) {
	if g.cache == nil {
		return 0, 0, 0
	}
	return g.cache.hits, g.cache.misses, g.cache.evictions
}

// probeTask carries the arguments of one scheduled probe through the
// closure-free netsim.AfterCall path; tasks are recycled via GFW.taskFree.
type probeTask struct {
	g      *GFW
	server netsim.Endpoint
	rec    *recording
}

// runProbeTask is the netsim.AfterCall trampoline: a single package-level
// function value, so scheduling a probe allocates no closure.
func runProbeTask(x any) {
	t := x.(*probeTask)
	g, server, rec := t.g, t.server, t.rec
	t.g, t.rec = nil, nil
	g.taskFree = append(g.taskFree, t)
	g.sendProbe(server, rec)
}

func (g *GFW) newProbeTask(server netsim.Endpoint, rec *recording) *probeTask {
	if n := len(g.taskFree); n > 0 {
		t := g.taskFree[n-1]
		g.taskFree = g.taskFree[:n-1]
		t.g, t.server, t.rec = g, server, rec
		return t
	}
	return &probeTask{g: g, server: server, rec: rec}
}

// OnOutcome implements netsim.Middlebox. Outcomes of the GFW's own probes
// drive the staged state machine and the blocking score; outcomes of
// legitimate flows are not used (the passive stage already saw the flow).
func (g *GFW) OnOutcome(f *netsim.Flow, o netsim.Outcome) {}

// recording is one captured first payload.
type recording struct {
	payload []byte
	at      time.Time
}

// chooseType picks a probe type for the server's current stage. The
// weights reproduce the observed type mix: in stage 1 only identical
// replays, byte-0-changed replays and 221-byte random probes appear; once
// the server has answered a replay with data, the targeted R3/R4 probes
// dominate additions, with R5 vanishingly rare (two were ever observed)
// and R6 appearing only after the sink→responding switch (Exp 1.b).
// Servers whose traffic profile looks like genuine Shadowsocks usage also
// receive NR1 probes, at one third the NR2 rate (Figure 2's 3:1 ratio).
func (g *GFW) chooseType(stage int, ssLike bool) probe.Type {
	x := g.rng.Float64()
	if stage < 2 {
		if ssLike {
			switch {
			case x < 0.52:
				return probe.R1
			case x < 0.76:
				return probe.R2
			case x < 0.94:
				return probe.NR2
			default:
				return probe.NR1
			}
		}
		switch {
		case x < 0.55:
			return probe.R1
		case x < 0.80:
			return probe.R2
		default:
			return probe.NR2
		}
	}
	if ssLike {
		switch {
		case x < 0.26:
			return probe.R1
		case x < 0.39:
			return probe.R2
		case x < 0.60:
			return probe.R3
		case x < 0.81:
			return probe.R4
		case x < 0.8105:
			return probe.R5
		case x < 0.8285:
			return probe.R6
		case x < 0.955:
			return probe.NR2
		default:
			return probe.NR1
		}
	}
	switch {
	case x < 0.28:
		return probe.R1
	case x < 0.42:
		return probe.R2
	case x < 0.64:
		return probe.R3
	case x < 0.86:
		return probe.R4
	case x < 0.8605:
		return probe.R5
	case x < 0.8785:
		return probe.R6
	default:
		return probe.NR2
	}
}

// sendProbe emits one probe derived from rec toward server.
//
//sslab:hotpath
func (g *GFW) sendProbe(server netsim.Endpoint, rec *recording) {
	if g.paused {
		return // scheduled before a probing pause took effect
	}
	s := g.state(server)
	typ := g.chooseType(s.stage, g.profile(server).ssLike(g.cfg.NR1MinFlows))
	var replayOf time.Time
	payload := probe.Build(typ, rec.payload, &g.prng)
	if typ.Replay() {
		replayOf = rec.at
	}
	g.emit(server, s, typ, payload, replayOf)

	// §5.3: around 10% of NR2 probes are sent to the same server more
	// than once — a replay-filter detection trick.
	if typ == probe.NR2 && g.rng.Float64() < 0.10 {
		dup := append([]byte(nil), payload...) //sslab:allow-hotpath rare branch (~10% of NR2 probes); the copy must outlive the scheduled duplicate
		g.sim.AfterCall(sampleDelay(g.rng), runDupTask, g.newDupTask(server, dup))
	}
}

// dupTask carries one delayed NR2 duplicate through the closure-free
// netsim.AfterCall path; tasks recycle via GFW.dupFree.
type dupTask struct {
	g       *GFW
	server  netsim.Endpoint
	payload []byte
}

// runDupTask is the netsim.AfterCall trampoline for NR2 duplicates. It
// re-resolves the server state at fire time, exactly as the closure it
// replaced did.
func runDupTask(x any) {
	t := x.(*dupTask)
	g, server, payload := t.g, t.server, t.payload
	t.g, t.payload = nil, nil
	g.dupFree = append(g.dupFree, t)
	g.emit(server, g.state(server), probe.NR2, payload, time.Time{})
}

func (g *GFW) newDupTask(server netsim.Endpoint, payload []byte) *dupTask {
	if n := len(g.dupFree); n > 0 {
		t := g.dupFree[n-1]
		g.dupFree = g.dupFree[:n-1]
		t.g, t.server, t.payload = g, server, payload
		return t
	}
	return &dupTask{g: g, server: server, payload: payload}
}

// retryTask carries one scheduled probe retransmission through the
// closure-free netsim.AfterCall path; tasks recycle via GFW.retryFree.
// Retries exist for connections the network dropped (impaired links
// only): the prober re-sends the identical payload from a fresh pool
// source, up to Config.ProbeAttempts transmissions in total.
type retryTask struct {
	g        *GFW
	server   netsim.Endpoint
	typ      probe.Type
	payload  []byte
	replayOf time.Time
	attempt  int
}

// runRetryTask is the netsim.AfterCall trampoline for probe retries.
func runRetryTask(x any) {
	t := x.(*retryTask)
	g, server, typ, payload, replayOf, attempt := t.g, t.server, t.typ, t.payload, t.replayOf, t.attempt
	t.g, t.payload = nil, nil
	g.retryFree = append(g.retryFree, t)
	g.emitAttempt(server, g.state(server), typ, payload, replayOf, attempt)
}

func (g *GFW) newRetryTask(server netsim.Endpoint, typ probe.Type, payload []byte, replayOf time.Time, attempt int) *retryTask {
	if n := len(g.retryFree); n > 0 {
		t := g.retryFree[n-1]
		g.retryFree = g.retryFree[:n-1]
		t.g, t.server, t.typ, t.payload, t.replayOf, t.attempt = g, server, typ, payload, replayOf, attempt
		return t
	}
	return &retryTask{g: g, server: server, typ: typ, payload: payload, replayOf: replayOf, attempt: attempt}
}

// emit performs the network send and bookkeeping for one probe.
func (g *GFW) emit(server netsim.Endpoint, s *serverState, typ probe.Type, payload []byte, replayOf time.Time) {
	g.emitAttempt(server, s, typ, payload, replayOf, 1)
}

// probeRNG adapts the censor's counted stream to probe.RNG: integer
// draws go through the shared rng, byte fills through the serializable
// byte reader. The bytes are exactly what rand.Rand.Read over the same
// source would produce (see seedfork.ByteReader), but the partially
// consumed draw lives in exported state a snapshot can capture.
type probeRNG struct{ g *GFW }

func (r *probeRNG) Intn(n int) int             { return r.g.rng.Intn(n) }
func (r *probeRNG) Read(p []byte) (int, error) { return r.g.rd.Read(r.g.src, p) }

// emitAttempt sends transmission number attempt of one probe.
func (g *GFW) emitAttempt(server netsim.Endpoint, s *serverState, typ probe.Type, payload []byte, replayOf time.Time, attempt int) {
	if g.paused {
		return // a retry or NR2 duplicate scheduled before a pause
	}
	src := g.Pool.Source(g.sim.Now())
	genAt := replayOf
	outcome := g.net.Connect(src.Endpoint(), server, payload, true, genAt)
	g.ProbesSent++
	g.mProbes.Inc()
	if !g.cfg.NoProbeLog {
		g.Log.Add(capture.Record{
			Time:    g.sim.Now(),
			SrcIP:   src.IP,
			SrcPort: src.Port,
			DstIP:   server.IP,
			DstPort: server.Port,
			ASN:     src.ASN,
			TTL:     src.TTL,
			IPID:    src.IPID,
			TSval:   src.TSval,
			Payload: payload,
			Type:    typ,
			ReplayOf: func() time.Time {
				if typ.Replay() {
					return replayOf
				}
				return time.Time{}
			}(),
		})
	}
	if outcome.Blocked {
		return
	}
	// An impaired link may drop the probe's connection outright; the
	// prober learns nothing and retries the identical payload after its
	// patience expires, from a fresh pool source (§3.3: consecutive
	// probes rarely share a source address).
	if outcome.Dropped {
		g.ProbeDrops++
		g.mProbeDrops.Inc()
		if attempt < g.cfg.ProbeAttempts {
			g.ProbeRetries++
			g.mProbeRetries.Inc()
			g.sim.AfterCall(g.cfg.Timeouts.Handshake, runRetryTask,
				g.newRetryTask(server, typ, payload, replayOf, attempt+1))
		}
		return
	}
	// A reaction that an impaired link delivered past the prober's
	// patience was never observed: the prober had already recorded a
	// timeout and moved on.
	if outcome.Elapsed > g.cfg.Timeouts.Handshake {
		g.ProbeTimeouts++
		g.mProbeTimeouts.Inc()
		outcome.Reaction = reaction.Timeout
		outcome.ResponseLen = 0
	}

	// Staged escalation: a data response to an R1/R2 replay proves the
	// server proxies replayed payloads; move to stage 2 (R3/R4/R5).
	if (typ == probe.R1 || typ == probe.R2) && outcome.Reaction == reaction.Data {
		s.stage = 2
	}

	// Blocking evidence comes in two kinds (§5.2.2, §6): data responses
	// to replays (near-proof of an unprotected proxy) and the immediate-
	// close fingerprints that the statistical analysis of random probes
	// accumulates. A server that only ever times out — OutlineVPN
	// v1.0.7's deliberate design — yields no fingerprint evidence.
	switch outcome.Reaction {
	case reaction.Data:
		s.dataResponses++
	case reaction.RST:
		s.fpScore += 0.5
	case reaction.FINACK:
		s.fpScore += 0.5
	}
	g.maybeBlock(server, s)
}

// maybeBlock applies the §6 blocking policy: both evidence kinds must be
// present, plus a "human factor" — most confirmed servers were still not
// blocked outside politically sensitive periods. This gate reproduces the
// paper's observation that the three blocked servers all ran
// ShadowsocksR or Shadowsocks-python (which serve replays AND show
// immediate-close fingerprints), while the replay-defended libev and the
// timeout-consistent OutlineVPN v1.0.7 survived months of probing.
func (g *GFW) maybeBlock(server netsim.Endpoint, s *serverState) {
	if s.blocked || s.dataResponses < g.cfg.MinDataResponses || s.fpScore < g.cfg.BlockThreshold {
		return
	}
	if g.rng.Float64() >= g.sens {
		return
	}
	s.blocked = true
	s.blockGen++
	myGen := s.blockGen
	byIP := g.rng.Float64() < 0.5
	var ruleGen uint64
	if byIP {
		ruleGen = g.net.BlockIP(server.IP)
	} else {
		ruleGen = g.net.BlockPort(server)
	}
	// Unblocking happens without recheck probes, a week or more later
	// (§6: one server became unblocked more than a week after blocking,
	// with no probes observed in between; the default TTL knobs encode
	// exactly that rule). The unblock is guarded twice: the network rule
	// is cleared only if it is still the one this block installed
	// (another server sharing the IP, or a later re-block, may have
	// re-armed it), and the per-server blocked flag is cleared only for
	// this block's own generation.
	ttl := time.Duration(g.ttlHours * float64(time.Hour))
	if j := int(g.ttlJitter); j > 0 {
		ttl += time.Duration(g.rng.Intn(j)) * time.Hour
	}
	until := g.sim.Now().Add(ttl)
	g.BlockEvents = append(g.BlockEvents, BlockEvent{Time: g.sim.Now(), Server: server, ByIP: byIP, Until: until})
	g.mBlocks.Inc()
	g.sim.AtCall(until, runUnblockTask, &unblockTask{
		g: g, server: server, byIP: byIP, ruleGen: ruleGen, blockGen: myGen,
	})
}

// unblockTask carries one scheduled unblock through the closure-free
// netsim.AtCall path, replacing the closure that used to capture the
// rule parameters — unblocks must be plain data so an engine snapshot
// can serialize a pending one and re-arm it on restore.
type unblockTask struct {
	g        *GFW
	server   netsim.Endpoint
	byIP     bool
	ruleGen  uint64
	blockGen uint64
}

// runUnblockTask is the netsim.AtCall trampoline for scheduled
// unblocks. It re-resolves the server state at fire time (the captured
// pointer of the old closure and the map entry are the same state for
// any server that was ever blocked; after a restore only the map entry
// exists).
func runUnblockTask(x any) {
	t := x.(*unblockTask)
	g := t.g
	if t.byIP {
		g.net.UnblockIPIf(t.server.IP, t.ruleGen)
	} else {
		g.net.UnblockPortIf(t.server, t.ruleGen)
	}
	if s := g.state(t.server); s.blockGen == t.blockGen {
		s.blocked = false
	}
}
