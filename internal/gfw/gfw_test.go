package gfw

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"sslab/internal/entropy"
	"sslab/internal/netsim"
	"sslab/internal/probe"
	"sslab/internal/reaction"
	"sslab/internal/seedfork"
	"sslab/internal/stats"
)

// The lengthWeight/entropyWeight unit tests moved to internal/detector
// with the passive-detector math (the Shadowsocks stage); this file
// keeps the pipeline-level tests.

// --- delay model ----------------------------------------------------------

// TestDelayDistribution pins the Figure 7 anchors.
func TestDelayDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var samples []float64
	minD, maxD := math.Inf(1), 0.0
	for i := 0; i < 50000; i++ {
		d := sampleDelay(rng).Seconds()
		samples = append(samples, d)
		minD = math.Min(minD, d)
		maxD = math.Max(maxD, d)
	}
	c := stats.NewCDF(samples)
	if p := c.P(1); p < 0.18 || p > 0.28 {
		t.Errorf("P(<=1s) = %.3f, want ≈0.22 (paper: >20%%)", p)
	}
	if p := c.P(60); p < 0.48 || p > 0.58 {
		t.Errorf("P(<=1min) = %.3f, want ≈0.52 (paper: >50%%)", p)
	}
	if p := c.P(900); p < 0.74 || p > 0.84 {
		t.Errorf("P(<=15min) = %.3f, want ≈0.78 (paper: >75%%)", p)
	}
	if minD < 0.28 {
		t.Errorf("min delay %.3f s below the observed 0.28 s", minD)
	}
	if maxD > 569.55*3600 {
		t.Errorf("max delay %.1f h above the observed 569.55 h", maxD/3600)
	}
	if maxD < 100*3600 {
		t.Errorf("max delay %.1f h; tail too short", maxD/3600)
	}
}

func TestRepeatCount(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	sum, max := 0, 0
	const n = 20000
	for i := 0; i < n; i++ {
		c := sampleRepeatCount(rng)
		if c < 1 || c > 47 {
			t.Fatalf("repeat count %d outside [1,47]", c)
		}
		sum += c
		if c > max {
			max = c
		}
	}
	mean := float64(sum) / n
	if mean < 3.0 || mean > 3.8 {
		t.Errorf("mean replays per payload %.2f, want ≈3.4 (11137/3269)", mean)
	}
	if max < 15 {
		t.Errorf("max repeats %d; tail too short (paper saw 47)", max)
	}
}

// --- pool fingerprints (§3.3, §3.4) ----------------------------------------

func TestPoolFingerprints(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pool := NewPool(rng, 13000, netsim.Epoch)

	const probes = 51837 // the paper's total
	perIP := map[string]int{}
	asOfIP := map[string]int{}
	var ports []float64
	var points []stats.TSPoint
	proc1000 := 0
	start := netsim.Epoch
	for i := 0; i < probes; i++ {
		// Spread over 4 months like the real experiments.
		at := start.Add(time.Duration(float64(i) / probes * 4 * 30 * 24 * float64(time.Hour)))
		s := pool.Source(at)
		perIP[s.IP]++
		asOfIP[s.IP] = s.ASN
		ports = append(ports, float64(s.Port))
		points = append(points, stats.TSPoint{T: at.Sub(start).Seconds(), TSval: s.TSval})
		if s.TTL < 46 || s.TTL > 50 {
			t.Fatalf("TTL %d outside 46–50", s.TTL)
		}
		if pool.procs[s.Process].rate == 1000 {
			proc1000++
		}
	}

	// Figure 3: ≈12,300 distinct IPs, >75% used more than once, max ≈44.
	if len(perIP) < 9500 || len(perIP) > 13000 {
		t.Errorf("distinct IPs = %d, want ≈12300", len(perIP))
	}
	multi, maxCount := 0, 0
	for _, c := range perIP {
		if c > 1 {
			multi++
		}
		if c > maxCount {
			maxCount = c
		}
	}
	if f := float64(multi) / float64(len(perIP)); f < 0.70 {
		t.Errorf("multi-use fraction %.2f, want > 0.75-ish", f)
	}
	if maxCount < 20 || maxCount > 150 {
		t.Errorf("max probes from one IP = %d, want ≈44", maxCount)
	}

	// Table 3: AS4837 and AS4134 dominate, in that order.
	asUnique := map[int]int{}
	for _, asn := range asOfIP {
		asUnique[asn]++
	}
	if asUnique[4837] <= asUnique[4134] {
		t.Errorf("AS4837 (%d) should exceed AS4134 (%d)", asUnique[4837], asUnique[4134])
	}
	if asUnique[4134] <= asUnique[17622] {
		t.Error("AS4134 should exceed AS17622")
	}

	// Figure 5: ≈90% of ports in 32768–60999, none below 1024.
	cdf := stats.NewCDF(ports)
	inRange := cdf.P(60999) - cdf.P(32767)
	if inRange < 0.85 || inRange > 0.95 {
		t.Errorf("ephemeral-range port share %.3f, want ≈0.90", inRange)
	}
	if cdf.Min() < 1024 {
		t.Errorf("minimum source port %v below 1024", cdf.Min())
	}

	// Figure 6: at least 7 substantial shared TSval sequences; the
	// 1000 Hz cluster is small.
	clusters := stats.ClusterTSvals(points, []float64{250, 1000}, 100000)
	substantial := 0
	var thousand *stats.TSCluster
	for i := range clusters {
		if len(clusters[i].Points) >= 10 {
			substantial++
			if clusters[i].Rate == 1000 {
				thousand = &clusters[i]
			}
		}
	}
	if substantial < 8 {
		t.Errorf("substantial TSval clusters = %d, want 8 (7×250 Hz + 1×1000 Hz)", substantial)
	}
	if thousand == nil {
		t.Fatal("1000 Hz cluster missing")
	}
	if got := len(thousand.Points); got < 5 || got > 60 {
		t.Errorf("1000 Hz cluster size %d, want small (paper saw 22)", got)
	}
	// Dominant cluster rate ≈ 250 Hz.
	rate, err := clusters[0].MeasuredRate()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rate-250) > 2 {
		t.Errorf("dominant process rate %.2f Hz, want ≈250", rate)
	}
}

// --- full pipeline ---------------------------------------------------------

// runCampaign drives count trigger connections at 5-second intervals from
// one client to one server and returns the GFW after the sim drains.
func runCampaign(t *testing.T, host netsim.Host, count int, cfg Config) (*GFW, *netsim.Network, netsim.Endpoint) {
	t.Helper()
	sim := netsim.NewSim()
	net := netsim.NewNetwork(sim)
	g := New(Env{Sim: sim, Net: net}, WithConfig(cfg))
	net.AddMiddlebox(g)

	server := netsim.Endpoint{IP: "178.62.0.1", Port: 8388}
	client := netsim.Endpoint{IP: "101.32.0.2", Port: 55000}
	net.AddHost(server, host)

	gen := entropy.NewGenerator(seedfork.Fork(cfg.Seed, "gfwtest.traffic"))
	sent := 0
	var tick func()
	tick = func() {
		if sent >= count {
			return
		}
		sent++
		payload := gen.Random(1 + gen.Intn(1000))
		net.Connect(client, server, payload, false, time.Time{})
		sim.After(5*time.Second, tick)
	}
	sim.After(0, tick)
	sim.Run()
	return g, net, server
}

var sinkHost = netsim.HostFunc(func(f *netsim.Flow) netsim.Outcome {
	return netsim.Outcome{Reaction: reaction.Timeout}
})

// respondingHost answers every probe with data — §4.1's "responding mode".
var respondingHost = netsim.HostFunc(func(f *netsim.Flow) netsim.Outcome {
	if f.Probe {
		return netsim.Outcome{Reaction: reaction.Data, ResponseLen: 500}
	}
	return netsim.Outcome{Reaction: reaction.Timeout}
})

// TestStagedProbing reproduces §4.2's staging: a sink server receives only
// R1/R2/NR2 (plus NR1 campaigns from genuine-usage patterns); a responding
// server escalates to R3/R4.
func TestStagedProbing(t *testing.T) {
	gSink, _, epSink := runCampaign(t, sinkHost, 60000, Config{Seed: 1})
	counts := gSink.Log.TypeCounts()
	for _, typ := range []probe.Type{probe.R1, probe.R2, probe.NR2} {
		if counts[typ] == 0 {
			t.Errorf("sink server: no %v probes", typ)
		}
	}
	for _, typ := range []probe.Type{probe.R3, probe.R4, probe.R5, probe.R6} {
		if counts[typ] != 0 {
			t.Errorf("sink server: received %d %v probes; stage 2 leaked", counts[typ], typ)
		}
	}
	if gSink.Stage(epSink) != 1 {
		t.Errorf("sink server stage = %d, want 1", gSink.Stage(epSink))
	}

	gResp, _, epResp := runCampaign(t, respondingHost, 60000, Config{Seed: 2})
	counts = gResp.Log.TypeCounts()
	if gResp.Stage(epResp) != 2 {
		t.Fatalf("responding server stage = %d, want 2", gResp.Stage(epResp))
	}
	if counts[probe.R3] == 0 || counts[probe.R4] == 0 {
		t.Errorf("responding server: R3=%d R4=%d, want both > 0", counts[probe.R3], counts[probe.R4])
	}
	if counts[probe.R5] > counts[probe.R4]/10 {
		t.Errorf("R5 (%d) should be rare relative to R4 (%d)", counts[probe.R5], counts[probe.R4])
	}
}

// TestReplayLengthSupport: replayed probe lengths stay within Figure 8's
// observed support (161–999) even though triggers span 1–1000, and the
// mod-16 stair-step appears.
func TestReplayLengthSupport(t *testing.T) {
	g, _, _ := runCampaign(t, sinkHost, 60000, Config{Seed: 3})
	replays := 0
	badLen := 0
	rem := map[int]int{}
	bandTotal := 0
	for _, r := range g.Log.Records {
		if !r.Type.Replay() {
			continue
		}
		replays++
		n := len(r.Payload)
		if n < 160 || n > 999 {
			badLen++
		}
		if n >= 384 && n <= 687 {
			rem[n%16]++
			bandTotal++
		}
	}
	if replays < 200 {
		t.Fatalf("only %d replay probes; recording rate too low", replays)
	}
	if badLen != 0 {
		t.Errorf("%d replays outside the 160–999 support", badLen)
	}
	if bandTotal > 20 {
		if f := float64(rem[2]) / float64(bandTotal); f < 0.85 {
			t.Errorf("remainder-2 share in 384–687 = %.2f, want ≈0.96", f)
		}
	}
}

// TestReplayDelayPipeline verifies end-to-end replay delays match the
// Figure 7 bands and that GeneratedAt rides along for replay probes.
func TestReplayDelayPipeline(t *testing.T) {
	g, _, _ := runCampaign(t, sinkHost, 60000, Config{Seed: 4})
	all, first := g.Log.ReplayDelays()
	if all.Len() < 300 {
		t.Fatalf("only %d replay delays", all.Len())
	}
	if p := all.P(1); p < 0.12 || p > 0.32 {
		t.Errorf("P(delay<=1s) = %.3f", p)
	}
	if p := all.P(900); p < 0.65 || p > 0.9 {
		t.Errorf("P(delay<=15min) = %.3f", p)
	}
	if all.Min() < 0.28 {
		t.Errorf("min delay %.3f s", all.Min())
	}
	if first.Len() >= all.Len() {
		t.Error("first-occurrence count should be below total (repeats exist)")
	}
}

// TestEntropyAffectsProbeVolume: Exp 1.a vs Exp 2 — a low-entropy client
// attracts several times fewer probes than a high-entropy one.
func TestEntropyAffectsProbeVolume(t *testing.T) {
	high, _, _ := runCampaign(t, sinkHost, 40000, Config{Seed: 5})

	// Low-entropy variant of the campaign.
	sim := netsim.NewSim()
	net := netsim.NewNetwork(sim)
	cfg := Config{Seed: 5}
	g := New(Env{Sim: sim, Net: net}, WithConfig(cfg))
	net.AddMiddlebox(g)
	server := netsim.Endpoint{IP: "178.62.0.2", Port: 8388}
	client := netsim.Endpoint{IP: "101.32.0.3", Port: 55001}
	net.AddHost(server, sinkHost)
	gen := entropy.NewGenerator(55)
	sent := 0
	var tick func()
	tick = func() {
		if sent >= 40000 {
			return
		}
		sent++
		net.Connect(client, server, gen.Payload(1+gen.Intn(1000), 1.5), false, time.Time{})
		sim.After(5*time.Second, tick)
	}
	sim.After(0, tick)
	sim.Run()

	if high.PayloadsRecorded == 0 {
		t.Fatal("high-entropy campaign recorded nothing")
	}
	ratio := float64(high.PayloadsRecorded) / math.Max(1, float64(g.PayloadsRecorded))
	if ratio < 2 {
		t.Errorf("high/low entropy recording ratio %.2f, want >= 2 (paper: 'significantly more')", ratio)
	}
}

// TestBlockingModule: with sensitivity raised, a server that answers
// replays gets blocked (by port or IP), probes keep flowing, clients are
// cut off, and the block lifts after a week-plus without recheck probes.
func TestBlockingModule(t *testing.T) {
	sim := netsim.NewSim()
	net := netsim.NewNetwork(sim)
	g := New(Env{Sim: sim, Net: net}, WithConfig(Config{Seed: 6, Sensitivity: 1.0, BlockThreshold: 6}))
	net.AddMiddlebox(g)
	server := netsim.Endpoint{IP: "178.62.0.3", Port: 8388}
	client := netsim.Endpoint{IP: "101.32.0.4", Port: 55002}
	// A Shadowsocks-python-like server: serves identical replays with
	// data, RSTs everything else — the combination §6 saw get blocked.
	seen := map[string]bool{}
	net.AddHost(server, netsim.HostFunc(func(f *netsim.Flow) netsim.Outcome {
		if !f.Probe {
			seen[string(f.FirstPayload)] = true
			return netsim.Outcome{Reaction: reaction.Timeout}
		}
		if seen[string(f.FirstPayload)] {
			return netsim.Outcome{Reaction: reaction.Data, ResponseLen: 700}
		}
		return netsim.Outcome{Reaction: reaction.RST}
	}))

	gen := entropy.NewGenerator(66)
	blockedSeen := 0
	sent := 0
	var tick func()
	tick = func() {
		if sent >= 50000 {
			return
		}
		sent++
		o := net.Connect(client, server, gen.Random(1+gen.Intn(1000)), false, time.Time{})
		if o.Blocked {
			blockedSeen++
		}
		sim.After(5*time.Second, tick)
	}
	sim.After(0, tick)
	sim.Run()

	if len(g.BlockEvents) == 0 {
		t.Fatal("replay-serving, fingerprintable server never blocked despite sensitivity 1")
	}
	ev := g.BlockEvents[0]
	if ev.Until.Sub(ev.Time) < 7*24*time.Hour {
		t.Errorf("unblock after %v, want >= 1 week", ev.Until.Sub(ev.Time))
	}
	if blockedSeen == 0 {
		t.Error("client never observed the block")
	}
	// After the sim drained, all scheduled unblocks have fired.
	if net.IsBlocked(server) {
		t.Error("server still blocked after unblock time")
	}
}

// TestOfflineClassificationMatchesGroundTruth validates the full analysis
// pipeline: classifying captured probe payloads against the recorded
// legitimate first packets (what the paper's offline analysis did) must
// recover the generator's ground-truth types.
func TestOfflineClassificationMatchesGroundTruth(t *testing.T) {
	g, _, server := runCampaign(t, respondingHost, 60000, Config{Seed: 12})
	legit := g.RecordedPayloads(server)
	if len(legit) == 0 {
		t.Fatal("no recordings")
	}
	mismatches := 0
	for i := range g.Log.Records {
		rec := &g.Log.Records[i]
		got := probe.Classify(rec.Payload, legit)
		if got != rec.Type {
			mismatches++
			if mismatches <= 3 {
				t.Logf("record %d: classified %v, ground truth %v (len %d)",
					i, got, rec.Type, len(rec.Payload))
			}
		}
	}
	// NR2 payloads can collide with a 221-byte recording and rare R
	// mutations can alias each other; anything beyond a sliver means the
	// classifier or the generator drifted.
	if frac := float64(mismatches) / float64(g.Log.Len()); frac > 0.01 {
		t.Errorf("classification mismatch rate %.3f (%d of %d)", frac, mismatches, g.Log.Len())
	}
}
