// The verdict cache is the censor's "muscle" tier: a fixed-size,
// set-associative memo of the detector chain's judgment, sitting in
// front of the "brain" (the full stage walk). The chain is a
// deterministic pure function of a flow's first payload, so a cache hit
// may return the memoized (winner, Result) without re-walking the
// stages — the expensive per-flow work (entropy pass, per-stage
// feature extraction) runs only for payloads the censor has not seen
// at that endpoint before. The single rng.Float64 draw on Suspect
// verdicts stays in OnFlow, after the cache, so enabling the cache
// changes no RNG draw order and every pinned golden report stays
// byte-identical.

package gfw

import (
	"sslab/internal/detector"
	"sslab/internal/metrics"
	"sslab/internal/netsim"
)

// cacheWays is the set associativity. Four ways absorb the common
// collision pattern (a handful of hot payload lengths hashing into one
// set) without a second hash function.
const cacheWays = 4

// cacheEntry is one memoized chain verdict. The fingerprint alone
// indexes the set; fingerprint plus server endpoint must match in full
// for a hit, so two servers seeing the same payload do not share an
// entry (stages may, in principle, consult flow metadata).
type cacheEntry struct {
	fp     uint64
	server netsim.Endpoint
	winner int32
	valid  bool
	res    detector.Result
}

// verdictCache is a fixed-capacity, cacheWays-way set-associative
// verdict memo with per-set round-robin eviction. It is sized at
// construction and never grows, so fleet-scale runs have a hard memory
// bound regardless of how many distinct payloads cross the censor.
type verdictCache struct {
	sets    []cacheEntry // len = numSets * cacheWays
	cursors []uint8      // per-set round-robin eviction cursor
	mask    uint64       // numSets - 1 (numSets is a power of two)

	hits      int64
	misses    int64
	evictions int64

	mHits      *metrics.Counter
	mMisses    *metrics.Counter
	mEvictions *metrics.Counter
}

// newVerdictCache builds a cache with at least `entries` slots, rounded
// up so the set count is a power of two (minimum one set).
func newVerdictCache(entries int, reg *metrics.Registry) *verdictCache {
	numSets := 1
	for numSets*cacheWays < entries {
		numSets <<= 1
	}
	return &verdictCache{
		sets:       make([]cacheEntry, numSets*cacheWays),
		cursors:    make([]uint8, numSets),
		mask:       uint64(numSets - 1),
		mHits:      reg.Counter("gfw.cache.hits"),
		mMisses:    reg.Counter("gfw.cache.misses"),
		mEvictions: reg.Counter("gfw.cache.evictions"),
	}
}

// lookup probes the cache for (server, fp). On a hit it returns the
// memoized winner and result.
//
//sslab:hotpath
func (c *verdictCache) lookup(server netsim.Endpoint, fp uint64) (int, detector.Result, bool) {
	base := int(fp&c.mask) * cacheWays
	for i := base; i < base+cacheWays; i++ {
		e := &c.sets[i]
		if e.valid && e.fp == fp && e.server == server {
			c.hits++
			c.mHits.Inc()
			return int(e.winner), e.res, true
		}
	}
	c.misses++
	c.mMisses.Inc()
	return 0, detector.Result{}, false
}

// insert memoizes a chain verdict, filling an invalid way if one exists
// and otherwise evicting at the set's round-robin cursor.
//
//sslab:hotpath
func (c *verdictCache) insert(server netsim.Endpoint, fp uint64, winner int, res detector.Result) {
	set := int(fp & c.mask)
	base := set * cacheWays
	slot := -1
	for i := base; i < base+cacheWays; i++ {
		if !c.sets[i].valid {
			slot = i
			break
		}
	}
	if slot < 0 {
		slot = base + int(c.cursors[set])
		c.cursors[set] = (c.cursors[set] + 1) % cacheWays
		c.evictions++
		c.mEvictions.Inc()
	}
	c.sets[slot] = cacheEntry{fp: fp, server: server, winner: int32(winner), valid: true, res: res}
}
