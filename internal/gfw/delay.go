package gfw

import (
	"math"
	"math/rand"
	"time"
)

// Replay-delay model calibrated to Figure 7: more than 20% of first
// replays arrive within one second, more than 50% within one minute, more
// than 75% within fifteen minutes; the minimum observed delay was 0.28 s
// and the maximum 569.55 hours.
var delayBands = []struct {
	p      float64 // cumulative probability at the band's upper edge
	lo, hi float64 // seconds, log-uniform within the band
}{
	{0.22, 0.28, 1},
	{0.52, 1, 60},
	{0.78, 60, 900},
	{0.93, 900, 36000},
	{1.00, 36000, 569.55 * 3600},
}

// sampleDelay draws one replay delay.
func sampleDelay(rng *rand.Rand) time.Duration {
	u := rng.Float64()
	prev := 0.0
	for _, b := range delayBands {
		if u < b.p || b.p == 1 {
			// Log-uniform within [lo, hi).
			v := rng.Float64()
			sec := math.Exp(math.Log(b.lo) + v*(math.Log(b.hi)-math.Log(b.lo)))
			return time.Duration(sec * float64(time.Second))
		}
		prev = b.p
	}
	_ = prev
	return time.Second
}

// sampleRepeatCount draws how many times one recorded payload is replayed
// in total. Figure 7's two curves imply a mean of ≈3.4 replays per
// distinct payload, with an observed maximum of 47; a geometric tail
// reproduces both.
func sampleRepeatCount(rng *rand.Rand) int {
	const meanExtra = 2.4
	p := 1 / (1 + meanExtra)
	n := 1
	for n < 47 && rng.Float64() > p {
		n++
	}
	return n
}
