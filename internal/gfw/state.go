package gfw

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"sslab/internal/netsim"
	"sslab/internal/probe"
	"sslab/internal/seedfork"
)

// This file is the censor's snapshot surface. A GFW's mutable state is
// small and regular: two RNG stream positions (plus the byte reader's
// partial draw), the per-suspect probing states, the length profiles,
// the runtime policy knobs and the report counters. Everything else —
// the detector chain, the prober pool's address tables, the metrics
// bindings — is a deterministic function of the Config and is rebuilt
// by New before RestoreState is applied. Pending probe/retry/unblock
// tasks live in the simulator's event queue, not here; the engine
// snapshot layer captures those through EncodeTask and re-arms them
// through ScheduleTask.

// ServerSnap is one suspect's serialized probing state.
type ServerSnap struct {
	EP            netsim.Endpoint
	Stage         int
	DataResponses int
	FPScore       float64
	Blocked       bool
	BlockGen      uint64
	RecordedPays  [][]byte
}

// ProfileSnap is one server's serialized first-packet length profile.
type ProfileSnap struct {
	EP      netsim.Endpoint
	Total   int32
	InRange int32
	Latch   int8
}

// State is the censor's full serializable mutable state.
type State struct {
	// RNG stream positions: draws consumed from the main and pool
	// sources, plus the byte reader's leftover partial draw.
	RNGDraws  uint64
	ReadVal   uint64
	ReadPos   int8
	PoolDraws uint64

	// Report counters (the exported ints experiment reports read).
	Triggers         int
	PayloadsRecorded int
	ProbesSent       int
	ProbeDrops       int
	ProbeRetries     int
	ProbeTimeouts    int
	BlockEvents      []BlockEvent
	StageRecs        []int

	// Per-endpoint state, sorted by endpoint for deterministic encoding.
	Servers  []ServerSnap
	Profiles []ProfileSnap

	// Runtime policy knobs (may differ from Config once a schedule has
	// fired).
	Sens      float64
	TTLHours  float64
	TTLJitter float64
	Paused    bool
}

func lessEndpoint(a, b netsim.Endpoint) bool {
	if a.IP != b.IP {
		return a.IP < b.IP
	}
	return a.Port < b.Port
}

// CaptureState returns the censor's serializable state. The verdict
// cache (when enabled) is deliberately not captured: it memoizes a
// pure function of the flow, so a restored censor simply re-warms it
// with identical results, and only the gfw.cache.* counters differ.
func (g *GFW) CaptureState() State {
	st := State{
		RNGDraws:         g.src.Draws(),
		ReadVal:          g.rd.Val,
		ReadPos:          g.rd.Pos,
		PoolDraws:        g.poolSrc.Draws(),
		Triggers:         g.Triggers,
		PayloadsRecorded: g.PayloadsRecorded,
		ProbesSent:       g.ProbesSent,
		ProbeDrops:       g.ProbeDrops,
		ProbeRetries:     g.ProbeRetries,
		ProbeTimeouts:    g.ProbeTimeouts,
		BlockEvents:      append([]BlockEvent(nil), g.BlockEvents...),
		StageRecs:        append([]int(nil), g.stageRecs...),
		Sens:             g.sens,
		TTLHours:         g.ttlHours,
		TTLJitter:        g.ttlJitter,
		Paused:           g.paused,
	}
	st.Servers = make([]ServerSnap, 0, len(g.servers))
	for ep, s := range g.servers {
		st.Servers = append(st.Servers, ServerSnap{
			EP:            ep,
			Stage:         s.stage,
			DataResponses: s.dataResponses,
			FPScore:       s.fpScore,
			Blocked:       s.blocked,
			BlockGen:      s.blockGen,
			RecordedPays:  s.recordedPays,
		})
	}
	sort.Slice(st.Servers, func(i, j int) bool { return lessEndpoint(st.Servers[i].EP, st.Servers[j].EP) })
	st.Profiles = make([]ProfileSnap, 0, len(g.profiles))
	for ep, p := range g.profiles {
		st.Profiles = append(st.Profiles, ProfileSnap{EP: ep, Total: p.total, InRange: p.inRange, Latch: p.latch})
	}
	sort.Slice(st.Profiles, func(i, j int) bool { return lessEndpoint(st.Profiles[i].EP, st.Profiles[j].EP) })
	return st
}

// RestoreState overwrites a freshly constructed censor's mutable state
// with st. The receiver must have been built by New with the same
// Config (and on a simulator at the same virtual time) as the captured
// one; stream positions are restored by fast-forwarding fresh sources,
// so restore cost is proportional to simulated progress, not wall
// time. Metrics instruments deliberately restart cold — they feed
// observability sinks, not reports.
func (g *GFW) RestoreState(st State) error {
	if len(st.StageRecs) != len(g.stageRecs) {
		return fmt.Errorf("gfw: snapshot has %d stage counters, config builds %d — detector chain mismatch", len(st.StageRecs), len(g.stageRecs))
	}
	src := seedfork.NewCountedSource(g.cfg.Seed)
	src.Skip(st.RNGDraws)
	g.src = src
	g.rng = rand.New(src)
	g.rd = seedfork.ByteReader{Val: st.ReadVal, Pos: st.ReadPos}
	if cur := g.poolSrc.Draws(); st.PoolDraws < cur {
		return fmt.Errorf("gfw: snapshot pool position %d predates pool construction (%d draws)", st.PoolDraws, cur)
	}
	g.poolSrc.Skip(st.PoolDraws - g.poolSrc.Draws())

	g.Triggers = st.Triggers
	g.PayloadsRecorded = st.PayloadsRecorded
	g.ProbesSent = st.ProbesSent
	g.ProbeDrops = st.ProbeDrops
	g.ProbeRetries = st.ProbeRetries
	g.ProbeTimeouts = st.ProbeTimeouts
	g.BlockEvents = append([]BlockEvent(nil), st.BlockEvents...)
	copy(g.stageRecs, st.StageRecs)
	g.sens = st.Sens
	g.ttlHours = st.TTLHours
	g.ttlJitter = st.TTLJitter
	g.paused = st.Paused

	g.servers = make(map[netsim.Endpoint]*serverState, len(st.Servers))
	for _, s := range st.Servers {
		g.servers[s.EP] = &serverState{
			stage:         s.Stage,
			dataResponses: s.DataResponses,
			fpScore:       s.FPScore,
			blocked:       s.Blocked,
			blockGen:      s.BlockGen,
			recordedPays:  s.RecordedPays,
		}
	}
	g.profiles = make(map[netsim.Endpoint]*lenProfile, len(st.Profiles))
	for _, p := range st.Profiles {
		g.profiles[p.EP] = &lenProfile{total: p.Total, inRange: p.InRange, latch: p.Latch}
	}
	return nil
}

// TaskState is one pending censor task in serializable form: a
// scheduled probe batch member, an NR2 duplicate, a dropped-probe
// retry, or a rule unblock. Kind discriminates; the other fields are
// used by the kinds that need them.
type TaskState struct {
	Kind     string // "probe", "dup", "retry" or "unblock"
	Server   netsim.Endpoint
	Payload  []byte
	RecAt    time.Time
	Typ      int // probe.Type (retry)
	ReplayOf time.Time
	Attempt  int
	ByIP     bool
	RuleGen  uint64
	BlockGen uint64
}

// EncodeTask captures a scheduled event argument belonging to this
// package. The second result is false for arguments of other layers
// (the engine snapshot walker tries each layer's encoder in turn).
func EncodeTask(arg any) (TaskState, bool) {
	switch t := arg.(type) {
	case *probeTask:
		return TaskState{Kind: "probe", Server: t.server, Payload: t.rec.payload, RecAt: t.rec.at}, true
	case *dupTask:
		return TaskState{Kind: "dup", Server: t.server, Payload: t.payload}, true
	case *retryTask:
		return TaskState{Kind: "retry", Server: t.server, Payload: t.payload, Typ: int(t.typ), ReplayOf: t.replayOf, Attempt: t.attempt}, true
	case *unblockTask:
		return TaskState{Kind: "unblock", Server: t.server, ByIP: t.byIP, RuleGen: t.ruleGen, BlockGen: t.blockGen}, true
	}
	return TaskState{}, false
}

// ScheduleTask re-arms a captured task at the given virtual time.
// Re-arming in original sequence order reproduces the captured run's
// dispatch order (see netsim.PendingEvents).
func (g *GFW) ScheduleTask(at time.Time, st TaskState) error {
	switch st.Kind {
	case "probe":
		g.sim.AtCall(at, runProbeTask, g.newProbeTask(st.Server, &recording{payload: st.Payload, at: st.RecAt}))
	case "dup":
		g.sim.AtCall(at, runDupTask, g.newDupTask(st.Server, st.Payload))
	case "retry":
		g.sim.AtCall(at, runRetryTask, g.newRetryTask(st.Server, probe.Type(st.Typ), st.Payload, st.ReplayOf, st.Attempt))
	case "unblock":
		g.sim.AtCall(at, runUnblockTask, &unblockTask{g: g, server: st.Server, byIP: st.ByIP, ruleGen: st.RuleGen, blockGen: st.BlockGen})
	default:
		return fmt.Errorf("gfw: unknown task kind %q", st.Kind)
	}
	return nil
}

// SetSensitivity adjusts the blocking module's "human factor" gate at
// run time — the paper's politically-sensitive-period lever, driven by
// the spatiotemporal schedule layer. The value must already be a valid
// probability; callers validate via region.Schedule.Validate or
// Config.Validate.
func (g *GFW) SetSensitivity(p float64) { g.sens = p }

// SetBlockTTL adjusts how long subsequent blocking rules stay
// installed: ttlHours plus a uniform whole-hour jitter in
// [0, jitterHours). A zero jitter skips the jitter draw entirely.
// Already-scheduled unblocks are unaffected.
func (g *GFW) SetBlockTTL(ttlHours, jitterHours float64) {
	g.ttlHours = ttlHours
	g.ttlJitter = jitterHours
}

// SetProbingPaused stops (or resumes) the censor's recording and
// probing while leaving passive observation running: profiles keep
// filling and verdicts are still computed, but nothing is recorded and
// no probe — including already-scheduled batches, retries and NR2
// duplicates — is sent while paused.
func (g *GFW) SetProbingPaused(paused bool) { g.paused = paused }

// ProbingPaused reports whether probing is currently paused.
func (g *GFW) ProbingPaused() bool { return g.paused }
