package gfw

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"sslab/internal/detector"
	"sslab/internal/entropy"
	"sslab/internal/netsim"
)

// sameProbeLogs asserts two campaigns produced byte-identical probe
// logs and matching aggregate counters — the chain-equivalence bar the
// verdict cache must clear.
func sameProbeLogs(t *testing.T, ga, gb *GFW) {
	t.Helper()
	if ga.PayloadsRecorded != gb.PayloadsRecorded {
		t.Errorf("PayloadsRecorded: %d vs %d", ga.PayloadsRecorded, gb.PayloadsRecorded)
	}
	if ga.ProbesSent != gb.ProbesSent {
		t.Errorf("ProbesSent: %d vs %d", ga.ProbesSent, gb.ProbesSent)
	}
	la, lb := ga.Log.Records, gb.Log.Records
	if len(la) != len(lb) {
		t.Fatalf("probe log length: %d vs %d", len(la), len(lb))
	}
	for i := range la {
		same := la[i].Time.Equal(lb[i].Time) &&
			la[i].SrcIP == lb[i].SrcIP && la[i].SrcPort == lb[i].SrcPort &&
			la[i].Type == lb[i].Type &&
			la[i].ReplayOf.Equal(lb[i].ReplayOf) &&
			bytes.Equal(la[i].Payload, lb[i].Payload)
		if !same {
			t.Fatalf("probe log diverges at entry %d", i)
		}
	}
}

// TestVerdictCacheEquivalence pins the tentpole invariant: enabling the
// verdict cache — at any capacity, over any detector chain — changes no
// verdict, no RNG draw, and therefore no byte of the probe log. Only
// the gfw.cache.* counters move.
func TestVerdictCacheEquivalence(t *testing.T) {
	chains := []struct {
		name string
		cfg  Config
	}{
		{"default-ss", Config{Seed: 7}},
		{"three-stage", Config{Seed: 7, Detectors: []string{"ss", "ovpn", "fep"}}},
		{"four-stage-exempt", Config{Seed: 7, Detectors: []string{"tlsexempt", "ss", "ovpn", "fep"}}},
	}
	sizes := []int{8, 4096}
	for _, ch := range chains {
		base, _, _ := runCampaign(t, respondingHost, 30000, ch.cfg)
		if h, m, e := base.CacheStats(); h+m+e != 0 {
			t.Errorf("%s: cache-off run reports cache activity (%d/%d/%d)", ch.name, h, m, e)
		}
		for _, size := range sizes {
			t.Run(fmt.Sprintf("%s/cache%d", ch.name, size), func(t *testing.T) {
				cfg := ch.cfg
				cfg.VerdictCache = size
				cached, _, _ := runCampaign(t, respondingHost, 30000, cfg)
				sameProbeLogs(t, base, cached)
				hits, misses, evictions := cached.CacheStats()
				// The campaign's payloads are all freshly generated, so
				// this is the worst case for the cache: every
				// payload-bearing flow misses — and the result must
				// still be byte-identical.
				if misses == 0 {
					t.Error("cache reports zero lookups over 30k flows")
				}
				if size == 8 && evictions == 0 {
					t.Error("8-entry cache under 30k distinct flows never evicted")
				}
				_ = hits
			})
		}
	}
}

// TestVerdictCacheHitRegimeEquivalence drives the cache's best case — a
// small cycling payload set, the fleet engine's repeated-handshake
// shape — and pins byte-identity while most lookups hit.
func TestVerdictCacheHitRegimeEquivalence(t *testing.T) {
	run := func(cache int) *GFW {
		sim := netsim.NewSim()
		net := netsim.NewNetwork(sim)
		g := New(Env{Sim: sim, Net: net}, WithConfig(Config{Seed: 19, VerdictCache: cache}))
		net.AddMiddlebox(g)
		server := netsim.Endpoint{IP: "178.62.0.19", Port: 8388}
		client := netsim.Endpoint{IP: "101.32.0.19", Port: 55019}
		net.AddHost(server, respondingHost)
		gen := entropy.NewGenerator(191)
		payloads := make([][]byte, 32)
		for i := range payloads {
			payloads[i] = gen.Random(1 + gen.Intn(1000))
		}
		sent := 0
		var tick func()
		tick = func() {
			if sent >= 20000 {
				return
			}
			net.Connect(client, server, payloads[sent%len(payloads)], false, time.Time{})
			sent++
			sim.After(5*time.Second, tick)
		}
		sim.After(0, tick)
		sim.Run()
		return g
	}
	base, cached := run(0), run(1024)
	sameProbeLogs(t, base, cached)
	hits, misses, _ := cached.CacheStats()
	if hits == 0 {
		t.Fatal("cycling payload set never hit the cache")
	}
	if hits < misses {
		t.Errorf("hit regime inverted: %d hits vs %d misses", hits, misses)
	}
}

// TestVerdictCacheEvictionProperty is the property test that eviction
// never changes a verdict: under a pathologically small cache (constant
// churn) every PassiveVerdict must equal a fresh uncached chain's
// Observe on the same flow, and the hit/miss/eviction counters must
// account for every lookup.
func TestVerdictCacheEvictionProperty(t *testing.T) {
	sim := netsim.NewSim()
	net := netsim.NewNetwork(sim)
	cfg := Config{Seed: 21, Detectors: []string{"ss", "ovpn", "fep"}, VerdictCache: 4}
	g := New(Env{Sim: sim, Net: net}, WithConfig(cfg))
	ref := detector.MustChain(cfg.chainNames(), detector.Params{Base: cfg.ReplayBase})

	gen := entropy.NewGenerator(31)
	// A working set of payloads far larger than the cache, replayed in a
	// rotating pattern so lookups mix hits, misses and evictions.
	payloads := make([][]byte, 64)
	for i := range payloads {
		payloads[i] = gen.Random(1 + gen.Intn(1200))
	}
	servers := []netsim.Endpoint{
		{IP: "178.62.0.1", Port: 8388},
		{IP: "178.62.0.2", Port: 8388},
	}
	f := &netsim.Flow{Client: netsim.Endpoint{IP: "101.32.0.2", Port: 55000}}
	lookups := 0
	for round := 0; round < 50; round++ {
		for i, p := range payloads {
			f.Server = servers[(round+i)%len(servers)]
			f.FirstPayload = p
			// Consult twice: with a 4-entry cache churning under a
			// 128-key working set the first lookup usually misses (and
			// evicts), the immediate second lookup hits the entry just
			// inserted — every path through lookup/insert is exercised,
			// and both answers must equal the uncached chain's.
			for rep := 0; rep < 2; rep++ {
				wGot, rGot := g.PassiveVerdict(f)
				wWant, rWant := ref.Observe(f)
				if wGot != wWant || rGot != rWant {
					t.Fatalf("round %d payload %d rep %d: cached verdict (%d, %+v) != chain verdict (%d, %+v)",
						round, i, rep, wGot, rGot, wWant, rWant)
				}
				lookups++
			}
		}
	}
	hits, misses, evictions := g.CacheStats()
	if hits+misses != int64(lookups) {
		t.Errorf("hits(%d)+misses(%d) != lookups(%d)", hits, misses, lookups)
	}
	if evictions == 0 {
		t.Error("4-entry cache over a 64-payload working set never evicted")
	}
	if hits == 0 || misses == 0 {
		t.Errorf("degenerate counter mix: hits=%d misses=%d", hits, misses)
	}
}

// TestFingerprintDistribution: the payload fingerprint must be
// collision-free over a campaign-scale payload set and sensitive to
// every byte position the sampler claims to cover.
func TestFingerprintDistribution(t *testing.T) {
	gen := entropy.NewGenerator(17)
	seen := map[uint64]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		fp := detector.Fingerprint(gen.Random(1 + gen.Intn(1400)))
		seen[fp]++
	}
	// 20k random payloads into 64 bits: any collision at all is a red
	// flag for the mixer.
	if len(seen) != n {
		t.Errorf("fingerprint collisions: %d distinct over %d payloads", len(seen), n)
	}
	// Equal content must map to equal fingerprints regardless of backing
	// array, and a one-byte change at any sampled offset must move the
	// fingerprint. For n=700 the stride is (700/32+7)&^7 = 24, so the
	// sampled words sit at offsets 0, 24, 48, … plus the final 8 bytes.
	p := gen.Random(700)
	q := append([]byte(nil), p...)
	if detector.Fingerprint(p) != detector.Fingerprint(q) {
		t.Error("equal payloads produced different fingerprints")
	}
	for _, idx := range []int{0, 1, 7, 24, 192, 480, 693, 699} {
		q[idx] ^= 0x41
		if detector.Fingerprint(p) == detector.Fingerprint(q) {
			t.Errorf("flipping byte %d did not change the fingerprint", idx)
		}
		q[idx] ^= 0x41
	}
	if detector.Fingerprint(p[:699]) == detector.Fingerprint(p) {
		t.Error("truncating by one byte did not change the fingerprint")
	}
	if detector.Fingerprint(nil) != detector.Fingerprint([]byte{}) {
		t.Error("nil and empty payloads disagree")
	}
}

// TestEmptyFirstFlightsDontDiluteNR1 pins the lenTotal bugfix: empty
// first flights (blocked or impaired connections deliver flows with no
// payload) must not count against the NR1 length profile. Before the
// fix they inflated the denominator, and with the judgment latched at
// NR1MinFlows a genuine Shadowsocks server was permanently
// misclassified as not ss-like.
func TestEmptyFirstFlightsDontDiluteNR1(t *testing.T) {
	sim := netsim.NewSim()
	net := netsim.NewNetwork(sim)
	g := New(Env{Sim: sim, Net: net}, WithConfig(Config{Seed: 9}))

	server := netsim.Endpoint{IP: "178.62.0.9", Port: 8388}
	client := netsim.Endpoint{IP: "101.32.0.9", Port: 55009}
	gen := entropy.NewGenerator(91)
	// Interleave 300 genuine in-range first packets with 300 empty first
	// flights — a client on a lossy path. All genuine packets land in
	// 160–700, so the true in-range fraction is 100%; the diluted
	// (buggy) fraction would be 50% < ssLikeFrac and latch false.
	for i := 0; i < 300; i++ {
		g.OnFlow(&netsim.Flow{Client: client, Server: server,
			FirstPayload: gen.Random(160 + gen.Intn(541)), Start: sim.Now()})
		g.OnFlow(&netsim.Flow{Client: client, Server: server, Start: sim.Now()})
	}
	p, ok := g.profiles[server]
	if !ok {
		t.Fatal("no length profile for a server with 300 payload-bearing flows")
	}
	if p.total != 300 {
		t.Errorf("profile total = %d, want 300 (empty first flights leaked in)", p.total)
	}
	if !p.ssLike(g.cfg.NR1MinFlows) {
		t.Error("all-in-range server judged not ss-like: empty first flights diluted the NR1 profile")
	}
}

// TestLazyServerState pins the serverState bugfix: endpoints whose
// flows are never recorded must not materialize probing state — their
// Stage is 0 and the servers map stays empty, so fleet-scale
// populations of innocuous servers cost the censor nothing. The first
// recording creates the state with stage 1.
func TestLazyServerState(t *testing.T) {
	sim := netsim.NewSim()
	net := netsim.NewNetwork(sim)
	g := New(Env{Sim: sim, Net: net}, WithConfig(Config{Seed: 10}))

	// Fleet-scale sweep of endpoints sending short (64-byte) payloads:
	// outside the 160–999 support, the Shadowsocks stage passes every
	// flow, so nothing is ever recorded.
	gen := entropy.NewGenerator(101)
	client := netsim.Endpoint{IP: "101.32.0.10", Port: 55010}
	const population = 5000
	for i := 0; i < population; i++ {
		ep := netsim.Endpoint{IP: fmt.Sprintf("178.%d.%d.%d", i>>16&0xff, i>>8&0xff, i&0xff), Port: 80}
		g.OnFlow(&netsim.Flow{Client: client, Server: ep, FirstPayload: gen.Random(64), Start: sim.Now()})
		if got := g.Stage(ep); got != 0 {
			t.Fatalf("unrecorded server %v reports Stage %d, want 0", ep, got)
		}
	}
	if n := g.SuspectedServers(); n != 0 {
		t.Fatalf("servers map holds %d entries after %d unrecorded endpoints, want 0", n, population)
	}
	if len(g.profiles) != population {
		t.Errorf("length profiles = %d, want %d (every payload-bearing flow counts)", len(g.profiles), population)
	}

	// A server whose traffic the detector does record materializes state
	// at the first recording, with stage 1.
	suspect := netsim.Endpoint{IP: "178.62.0.99", Port: 8388}
	for i := 0; i < 2000 && g.PayloadsRecorded == 0; i++ {
		g.OnFlow(&netsim.Flow{Client: client, Server: suspect,
			FirstPayload: gen.Random(160 + gen.Intn(541)), Start: sim.Now()})
	}
	if g.PayloadsRecorded == 0 {
		t.Fatal("in-range high-entropy campaign never recorded; test is vacuous")
	}
	if got := g.Stage(suspect); got != 1 {
		t.Errorf("recorded server Stage = %d, want 1", got)
	}
	if n := g.SuspectedServers(); n != 1 {
		t.Errorf("servers map holds %d entries, want exactly the recorded suspect", n)
	}
}

// TestVerdictCacheMetricsExported: the gfw.cache.* counters on the
// sim's registry must mirror CacheStats.
func TestVerdictCacheMetricsExported(t *testing.T) {
	sim := netsim.NewSim()
	net := netsim.NewNetwork(sim)
	g := New(Env{Sim: sim, Net: net}, WithConfig(Config{Seed: 11, VerdictCache: 64}))
	gen := entropy.NewGenerator(111)
	server := netsim.Endpoint{IP: "178.62.0.11", Port: 8388}
	p := gen.Random(400)
	f := &netsim.Flow{Client: netsim.Endpoint{IP: "101.32.0.11", Port: 55011}, Server: server, FirstPayload: p, Start: sim.Now()}
	for i := 0; i < 10; i++ {
		g.PassiveVerdict(f)
	}
	hits, misses, _ := g.CacheStats()
	if misses != 1 || hits != 9 {
		t.Fatalf("CacheStats = %d hits / %d misses, want 9/1", hits, misses)
	}
	if got := sim.Metrics.Counter("gfw.cache.hits").Value(); got != hits {
		t.Errorf("gfw.cache.hits = %d, want %d", got, hits)
	}
	if got := sim.Metrics.Counter("gfw.cache.misses").Value(); got != misses {
		t.Errorf("gfw.cache.misses = %d, want %d", got, misses)
	}
}

// TestOnFlowBatchMatchesOnFlow: the censor's batched ingestion must be
// the exact scalar path, flow by flow, including recordings and probe
// scheduling.
func TestOnFlowBatchMatchesOnFlow(t *testing.T) {
	run := func(batch bool) *GFW {
		sim := netsim.NewSim()
		net := netsim.NewNetwork(sim)
		g := New(Env{Sim: sim, Net: net}, WithConfig(Config{Seed: 13}))
		net.AddMiddlebox(g)
		server := netsim.Endpoint{IP: "178.62.0.13", Port: 8388}
		client := netsim.Endpoint{IP: "101.32.0.13", Port: 55013}
		net.AddHost(server, respondingHost)
		gen := entropy.NewGenerator(131)
		flows := make([]netsim.Flow, 256)
		for i := range flows {
			flows[i] = netsim.Flow{ID: uint64(i + 1), Client: client, Server: server,
				FirstPayload: gen.Random(1 + gen.Intn(1000)), Start: sim.Now()}
		}
		if batch {
			g.OnFlowBatch(flows)
		} else {
			for i := range flows {
				g.OnFlow(&flows[i])
			}
		}
		sim.Run() // drain scheduled probes
		return g
	}
	sameProbeLogs(t, run(false), run(true))
	if g := run(true); g.Triggers != 256 {
		t.Errorf("Triggers = %d, want 256", g.Triggers)
	}
}

// TestVerdictCacheUnderImpairment: the cache must also be invisible
// under link impairment, where dropped flows and probe retries exercise
// the scalar fallback paths.
func TestVerdictCacheUnderImpairment(t *testing.T) {
	run := func(cache int) *GFW {
		sim := netsim.NewSim()
		net := netsim.NewNetwork(sim, netsim.WithDefaultLink(netsim.LinkProfile{
			LatencyBase: 40 * time.Millisecond, Jitter: 10 * time.Millisecond, Loss: 0.05,
		}))
		cfg := Config{Seed: 17, VerdictCache: cache}
		g := New(Env{Sim: sim, Net: net}, WithConfig(cfg))
		net.AddMiddlebox(g)
		server := netsim.Endpoint{IP: "178.62.0.17", Port: 8388}
		client := netsim.Endpoint{IP: "101.32.0.17", Port: 55017}
		net.AddHost(server, respondingHost)
		gen := entropy.NewGenerator(171)
		sent := 0
		var tick func()
		tick = func() {
			if sent >= 20000 {
				return
			}
			sent++
			net.Connect(client, server, gen.Random(1+gen.Intn(1000)), false, time.Time{})
			sim.After(5*time.Second, tick)
		}
		sim.After(0, tick)
		sim.Run()
		return g
	}
	sameProbeLogs(t, run(0), run(512))
}
