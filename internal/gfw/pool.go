package gfw

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"sslab/internal/netsim"
)

// ASWeights is the distribution of unique prober IPs per autonomous
// system, exactly as measured in Table 3 of the paper.
var ASWeights = map[int]int{
	4837: 6262, 4134: 5188, 17622: 315, 17621: 263, 17816: 104,
	4847: 101, 58563: 44, 17638: 17, 9808: 2, 4812: 1,
	24400: 1, 56046: 1, 56047: 1,
}

// asPrefixes maps each AS to plausible first-two-octet prefixes; the top
// entries reuse the real prefixes of the most common prober addresses in
// Table 2 (175.42/223.166/124.235/113.128/221.213/112.80/116.252).
var asPrefixes = map[int][]string{
	4837:  {"175.42", "221.213", "113.128", "125.211", "60.17"},
	4134:  {"223.166", "124.235", "112.80", "116.252", "61.160"},
	17622: {"58.248", "58.249"},
	17621: {"210.13", "210.14"},
	17816: {"211.162", "211.163"},
	4847:  {"218.105", "218.106"},
	58563: {"36.248", "36.249"},
	17638: {"211.157", "211.158"},
	9808:  {"120.196", "120.197"},
	4812:  {"101.80", "101.81"},
	24400: {"117.184", "117.185"},
	56046: {"223.68", "223.69"},
	56047: {"223.70", "223.71"},
}

// tsProcess is one centralized sender process: thousands of prober IPs
// share these few TCP-timestamp sequences (Figure 6's side channel).
type tsProcess struct {
	rate   float64 // timestamp ticks per second
	offset uint32  // counter value at the simulation epoch
	weight float64 // share of probes this process sends
}

// poolIP is one prober source address.
type poolIP struct {
	addr string
	asn  int
}

// Non-ephemeral source ports spread over [nonEphemeralPortMin,
// nonEphemeralPortMax] inclusive — Figure 5's observed support.
const (
	nonEphemeralPortMin = 1212
	nonEphemeralPortMax = 65535
)

// Pool models the censor's probing infrastructure: a large, high-churn
// set of source IP addresses spread over the Table 3 ASes, with per-probe
// fingerprints (source port, TTL, IP ID, TCP timestamp) matching §3.4.
type Pool struct {
	rng   *rand.Rand
	ips   []poolIP
	cum   []float64 // cumulative sampling weights over ips
	procs []tsProcess
	start time.Time
}

// ProbeSource is everything the network layer reveals about one probe.
type ProbeSource struct {
	IP    string
	ASN   int
	Port  int
	TTL   int
	IPID  uint16
	TSval uint32
	// Process indexes which centralized sender emitted the probe (ground
	// truth for validating the Figure 6 clustering).
	Process int
}

// NewPool builds a pool of size addresses seeded from rng.
func NewPool(rng *rand.Rand, size int, start time.Time) *Pool {
	p := &Pool{rng: rng, start: start}

	// Assign counts per AS proportional to Table 3.
	totalW := 0
	for _, w := range ASWeights {
		totalW += w
	}
	type asn struct{ id, want int }
	var asns []asn
	for id, w := range ASWeights {
		n := w * size / totalW
		if n == 0 {
			n = 1
		}
		asns = append(asns, asn{id, n})
	}
	// Deterministic order for reproducibility: want descending, id
	// ascending. The comparison is total (ids are unique), so the final
	// order — and every RNG draw below — is byte-identical to the
	// historical hand-rolled sort.
	sort.Slice(asns, func(i, j int) bool {
		if asns[i].want != asns[j].want {
			return asns[i].want > asns[j].want
		}
		return asns[i].id < asns[j].id
	})

	seen := map[string]bool{}
	for _, a := range asns {
		prefixes := asPrefixes[a.id]
		for n := 0; n < a.want; n++ {
			var addr string
			for {
				pfx := prefixes[p.rng.Intn(len(prefixes))]
				addr = fmt.Sprintf("%s.%d.%d", pfx, p.rng.Intn(256), 1+p.rng.Intn(254))
				if !seen[addr] {
					seen[addr] = true
					break
				}
			}
			p.ips = append(p.ips, poolIP{addr: addr, asn: a.id})
		}
	}

	// Heavy-tailed reuse weights (log-normal), so some addresses probe
	// dozens of times while most probe a handful — Figure 3's shape.
	p.cum = make([]float64, len(p.ips))
	sum := 0.0
	for i := range p.ips {
		w := math.Exp(p.rng.NormFloat64() * 0.7)
		sum += w
		p.cum[i] = sum
	}

	// Seven 250 Hz processes (one dominant) plus one small 1000 Hz
	// process — the Figure 6 structure.
	weights := []float64{0.82, 0.05, 0.04, 0.03, 0.025, 0.02, 0.0146}
	for _, w := range weights {
		p.procs = append(p.procs, tsProcess{rate: 250, offset: p.rng.Uint32(), weight: w})
	}
	p.procs = append(p.procs, tsProcess{rate: 1000, offset: p.rng.Uint32(), weight: 0.0004})
	return p
}

// Size returns the number of addresses in the pool.
func (p *Pool) Size() int { return len(p.ips) }

// pickIP samples an address by weight.
func (p *Pool) pickIP() poolIP {
	x := p.rng.Float64() * p.cum[len(p.cum)-1]
	lo, hi := 0, len(p.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if p.cum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return p.ips[lo]
}

// pickProcess samples a sender process by weight. Float accumulation of
// the weights can underflow their nominal sum, so a draw in the sliver
// between the accumulated total and 1.0 falls off the loop; returning
// process 0 there (as this function once did) silently inflated the
// dominant process's share. The correct residual owner is the last
// process with positive weight.
func (p *Pool) pickProcess() int {
	x := p.rng.Float64()
	acc := 0.0
	last := 0
	for i, pr := range p.procs {
		if pr.weight <= 0 {
			continue
		}
		acc += pr.weight
		if x < acc {
			return i
		}
		last = i
	}
	return last
}

// Source draws the network-level identity for one probe sent at time t.
func (p *Pool) Source(t time.Time) ProbeSource {
	ip := p.pickIP()
	proc := p.pickProcess()
	elapsed := t.Sub(p.start).Seconds()
	ts := uint32(uint64(p.procs[proc].offset) + uint64(p.procs[proc].rate*elapsed))

	// Source ports: ~90% from the default Linux ephemeral range
	// 32768–60999; the rest spread over 1212–65535 inclusive (Figure 5:
	// the observed minimum was 1212, never below 1024, and the tail
	// reaches all the way to 65535).
	var port int
	if p.rng.Float64() < 0.90 {
		port = 32768 + p.rng.Intn(61000-32768)
	} else {
		port = nonEphemeralPortMin + p.rng.Intn(nonEphemeralPortMax-nonEphemeralPortMin+1)
	}

	return ProbeSource{
		IP:      ip.addr,
		ASN:     ip.asn,
		Port:    port,
		TTL:     46 + p.rng.Intn(5), // §3.4: TTLs stay within 46–50
		IPID:    uint16(p.rng.Intn(1 << 16)),
		TSval:   ts,
		Process: proc,
	}
}

// Endpoint converts a source to a netsim endpoint.
func (s ProbeSource) Endpoint() netsim.Endpoint {
	return netsim.Endpoint{IP: s.IP, Port: s.Port}
}
