package gfw

import (
	"reflect"
	"testing"
)

// TestBitIdenticalReplay is the determinism regression the sslab-vet
// analyzers exist to protect: two campaigns with the same seed must
// produce byte- and schedule-identical probe logs — every source IP,
// port, TTL, IP ID, TCP timestamp, payload byte and virtual timestamp —
// plus identical counters. A single global math/rand call or wall-clock
// read anywhere in the pipeline breaks this test.
func TestBitIdenticalReplay(t *testing.T) {
	run := func() *GFW {
		g, _, _ := runCampaign(t, respondingHost, 20000, Config{Seed: 31, Sensitivity: 0.5, BlockThreshold: 4})
		return g
	}
	a, b := run(), run()

	if a.Triggers != b.Triggers || a.PayloadsRecorded != b.PayloadsRecorded || a.ProbesSent != b.ProbesSent {
		t.Fatalf("counters diverged: (%d,%d,%d) vs (%d,%d,%d)",
			a.Triggers, a.PayloadsRecorded, a.ProbesSent,
			b.Triggers, b.PayloadsRecorded, b.ProbesSent)
	}
	if len(a.Log.Records) != len(b.Log.Records) {
		t.Fatalf("probe log length diverged: %d vs %d", len(a.Log.Records), len(b.Log.Records))
	}
	for i := range a.Log.Records {
		if !reflect.DeepEqual(a.Log.Records[i], b.Log.Records[i]) {
			t.Fatalf("probe record %d diverged:\n  run A: %+v\n  run B: %+v",
				i, a.Log.Records[i], b.Log.Records[i])
		}
	}
	if !reflect.DeepEqual(a.BlockEvents, b.BlockEvents) {
		t.Fatalf("block events diverged:\n  run A: %+v\n  run B: %+v", a.BlockEvents, b.BlockEvents)
	}
}

// TestSeedChangesRun guards the other direction: different seeds must
// actually change the sampled randomness (a frozen RNG would also pass
// the bit-identical test).
func TestSeedChangesRun(t *testing.T) {
	a, _, _ := runCampaign(t, sinkHost, 20000, Config{Seed: 41})
	b, _, _ := runCampaign(t, sinkHost, 20000, Config{Seed: 42})
	if a.ProbesSent == b.ProbesSent && a.PayloadsRecorded == b.PayloadsRecorded &&
		len(a.Log.Records) == len(b.Log.Records) {
		t.Fatal("two different seeds produced identical campaign shapes; RNG not threaded through")
	}
}
