package gfw

import (
	"math/rand"
	"testing"
	"time"

	"sslab/internal/netsim"
)

// TestSourcePortRangeExact pins the non-ephemeral source-port support to
// exactly [1212, 65535] (Figure 5: observed minimum 1212, tail reaching
// 65535). The off-by-one this guards against — Intn(65238-1212) — made
// 65535 (and 65238–65534) unreachable while every sampled port still
// looked plausible.
func TestSourcePortRangeExact(t *testing.T) {
	pool := NewPool(rand.New(rand.NewSource(41)), 64, netsim.Epoch)
	minPort, maxPort := 1<<16, 0
	for i := 0; i < 4_000_000; i++ {
		p := pool.Source(netsim.Epoch).Port
		if p >= 32768 && p <= 60999 {
			continue // ephemeral range; the tail is what we are pinning
		}
		if p < minPort {
			minPort = p
		}
		if p > maxPort {
			maxPort = p
		}
	}
	if minPort != nonEphemeralPortMin {
		t.Errorf("non-ephemeral port minimum = %d, want exactly %d", minPort, nonEphemeralPortMin)
	}
	if maxPort != nonEphemeralPortMax {
		t.Errorf("non-ephemeral port maximum = %d, want exactly %d", maxPort, nonEphemeralPortMax)
	}
}

// TestPickProcessResidualOwner checks that the sliver of probability the
// cumulative-weight loop fails to cover goes to the LAST positive-weight
// process, not process 0. The old fallthrough returned 0, silently
// inflating the dominant process's share; with weights that sum well
// below 1 the inflation becomes unmistakable.
func TestPickProcessResidualOwner(t *testing.T) {
	p := &Pool{
		rng: rand.New(rand.NewSource(7)),
		// Positive weights sum to 0.7: 30% of draws fall off the loop
		// and must land on index 2 (the last positive weight). Index 1
		// has zero weight and must never be chosen.
		procs: []tsProcess{{weight: 0.5}, {weight: 0}, {weight: 0.2}},
	}
	const n = 1_000_000
	counts := make([]int, len(p.procs))
	for i := 0; i < n; i++ {
		counts[p.pickProcess()]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight process chosen %d times", counts[1])
	}
	share0 := float64(counts[0]) / n
	share2 := float64(counts[2]) / n
	if share0 < 0.48 || share0 > 0.52 {
		t.Errorf("process 0 share = %.3f, want ≈0.50 (>0.52 means the residual is inflating the dominant process)", share0)
	}
	if share2 < 0.48 || share2 > 0.52 {
		t.Errorf("last process share = %.3f, want ≈0.50 (its 0.2 weight plus the 0.3 residual)", share2)
	}

	// And with the real Figure 6 weights the 1000 Hz process must stay
	// tiny — its nominal share is 0.0004, so anything visible means the
	// fallback became modal.
	pool := NewPool(rand.New(rand.NewSource(8)), 64, netsim.Epoch)
	counts = make([]int, len(pool.procs))
	for i := 0; i < n; i++ {
		counts[pool.pickProcess()]++
	}
	last := len(pool.procs) - 1
	if share := float64(counts[last]) / n; share > 0.01 {
		t.Errorf("1000 Hz process share = %.4f, want ≈0.0004", share)
	}
	if share := float64(counts[0]) / n; share < 0.80 || share > 0.84 {
		t.Errorf("dominant process share = %.3f, want ≈0.82", share)
	}
}

// TestSharedIPStaleUnblock reproduces the stale-unblock bug: server A is
// blocked by port, server B on the SAME IP is later blocked by IP, and
// A's scheduled unblock fires while B's block should still be standing.
// The old unblock path removed both rule kinds for A's endpoint,
// clearing the shared-IP rule installed for B a week early.
func TestSharedIPStaleUnblock(t *testing.T) {
	a := netsim.Endpoint{IP: "178.62.9.9", Port: 8388}
	b := netsim.Endpoint{IP: "178.62.9.9", Port: 8389}
	for seed := int64(0); seed < 500; seed++ {
		sim := netsim.NewSim()
		nw := netsim.NewNetwork(sim)
		g := New(Env{Sim: sim, Net: nw}, WithConfig(Config{Seed: seed, Sensitivity: 1.0, PoolSize: 32}))

		sa := g.state(a)
		sa.dataResponses, sa.fpScore = 10, 100
		g.maybeBlock(a, sa)
		if len(g.BlockEvents) != 1 || g.BlockEvents[0].ByIP {
			continue // need A blocked by port
		}
		sim.RunUntil(sim.Now().Add(time.Hour))
		sb := g.state(b)
		sb.dataResponses, sb.fpScore = 10, 100
		g.maybeBlock(b, sb)
		if len(g.BlockEvents) != 2 || !g.BlockEvents[1].ByIP {
			continue // need B blocked by IP
		}
		evA, evB := g.BlockEvents[0], g.BlockEvents[1]
		if !evB.Until.After(evA.Until) {
			continue // need the unblock windows to overlap
		}

		// A's port unblock fires first. It must clear only its own rule:
		// B's IP-wide block (which also blankets A) stays standing.
		sim.RunUntil(evA.Until.Add(time.Minute))
		if !nw.IsBlocked(b) {
			t.Fatalf("seed %d: A's stale unblock cleared B's shared-IP block early", seed)
		}
		if !nw.IsBlocked(a) {
			t.Fatalf("seed %d: the IP rule should still blanket A after its port unblock", seed)
		}
		sim.RunUntil(evB.Until.Add(time.Minute))
		if nw.IsBlocked(a) || nw.IsBlocked(b) {
			t.Fatalf("seed %d: endpoints still blocked after B's unblock fired", seed)
		}
		return
	}
	t.Fatal("no seed in [0,500) produced the port-then-IP overlap scenario")
}
