package gfw

import (
	"bytes"
	"testing"

	"sslab/internal/detector"
)

// TestChainEquivalence pins the detector-chain refactor: an explicit
// Detectors: ["shadowsocks"] chain must be bit-identical to the default
// (empty) config — same RNG draw order, same probe log, same counters —
// and the TLSWhitelist flag must be equivalent to prepending the
// tlsexempt stage explicitly.
func TestChainEquivalence(t *testing.T) {
	cases := []struct {
		name string
		a, b Config
	}{
		{
			name: "default vs explicit shadowsocks",
			a:    Config{Seed: 7},
			b:    Config{Seed: 7, Detectors: []string{"shadowsocks"}},
		},
		{
			name: "alias resolves",
			a:    Config{Seed: 7},
			b:    Config{Seed: 7, Detectors: []string{"ss"}},
		},
		{
			name: "whitelist flag vs explicit tlsexempt",
			a:    Config{Seed: 7, TLSWhitelist: true},
			b:    Config{Seed: 7, Detectors: []string{"tlsexempt", "shadowsocks"}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ga, _, _ := runCampaign(t, respondingHost, 30000, tc.a)
			gb, _, _ := runCampaign(t, respondingHost, 30000, tc.b)
			if ga.PayloadsRecorded != gb.PayloadsRecorded {
				t.Errorf("PayloadsRecorded: %d vs %d", ga.PayloadsRecorded, gb.PayloadsRecorded)
			}
			if ga.ProbesSent != gb.ProbesSent {
				t.Errorf("ProbesSent: %d vs %d", ga.ProbesSent, gb.ProbesSent)
			}
			la, lb := ga.Log.Records, gb.Log.Records
			if len(la) != len(lb) {
				t.Fatalf("probe log length: %d vs %d", len(la), len(lb))
			}
			for i := range la {
				same := la[i].Time.Equal(lb[i].Time) &&
					la[i].SrcIP == lb[i].SrcIP && la[i].SrcPort == lb[i].SrcPort &&
					la[i].Type == lb[i].Type &&
					la[i].ReplayOf.Equal(lb[i].ReplayOf) &&
					bytes.Equal(la[i].Payload, lb[i].Payload)
				if !same {
					t.Fatalf("probe log diverges at entry %d", i)
				}
			}
		})
	}
}

// TestStageRecordings: per-stage attribution counters must sum to the
// total recorded count, and the winning stage names must be registered.
func TestStageRecordings(t *testing.T) {
	cfg := Config{Seed: 3, Detectors: []string{"ss", "ovpn", "fep"}}
	g, _, _ := runCampaign(t, sinkHost, 30000, cfg)

	names := g.DetectorNames()
	want := []string{detector.StageShadowsocks, detector.StageOpenVPN, detector.StageFullyEncrypted}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("DetectorNames() = %v, want %v", names, want)
		}
	}
	sum := 0
	for _, sc := range g.StageRecordings() {
		if detector.Canonical(sc.Name) != sc.Name {
			t.Errorf("stage name %q not canonical", sc.Name)
		}
		sum += sc.Recorded
	}
	if sum != g.PayloadsRecorded {
		t.Errorf("stage recordings sum %d != PayloadsRecorded %d", sum, g.PayloadsRecorded)
	}
	if g.PayloadsRecorded == 0 {
		t.Error("campaign recorded nothing; test is vacuous")
	}
}

// TestUnknownDetectorPanics: New must reject config typos loudly.
func TestUnknownDetectorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New accepted an unknown detector name")
		}
	}()
	runCampaign(t, sinkHost, 1, Config{Seed: 1, Detectors: []string{"shadowsock"}})
}
