package ssserver

import (
	"net"
	"sync"
	"time"

	"sslab/internal/socks"
	"sslab/internal/ssproto"
)

// udpSessionTimeout evicts idle NAT entries.
const udpSessionTimeout = 60 * time.Second

// udpNAT maps a client address to its outbound socket.
type udpNAT struct {
	mu       sync.Mutex
	sessions map[string]*udpSession
}

type udpSession struct {
	remote   net.PacketConn
	lastSeen time.Time
}

// ServeUDP relays Shadowsocks UDP datagrams on pc until it is closed:
// client packets are decrypted and forwarded to their embedded targets;
// replies are encrypted back to the client with the reply's source as the
// embedded address, per the specification.
func (s *Server) ServeUDP(pc net.PacketConn) error {
	nat := &udpNAT{sessions: map[string]*udpSession{}}
	defer nat.closeAll()
	buf := make([]byte, 64*1024)
	for {
		n, clientAddr, err := pc.ReadFrom(buf)
		if err != nil {
			return err
		}
		target, payload, err := ssproto.UnpackUDP(s.spec, s.key, buf[:n])
		if err != nil {
			s.Stats.AuthErrors.Add(1)
			continue // UDP has no connection to reset; drop silently
		}
		sess, fresh, err := nat.session(clientAddr.String())
		if err != nil {
			continue
		}
		if fresh {
			s.wg.Add(1)
			go func(sess *udpSession, clientAddr net.Addr) {
				defer s.wg.Done()
				s.udpReturnPath(pc, sess, clientAddr)
			}(sess, clientAddr)
		}
		raddr, err := net.ResolveUDPAddr("udp", target.String())
		if err != nil {
			continue
		}
		if _, err := sess.remote.WriteTo(payload, raddr); err != nil {
			s.Stats.RelayErrors.Add(1)
		}
	}
}

// session finds or creates the NAT entry for a client.
func (n *udpNAT) session(client string) (*udpSession, bool, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if sess, ok := n.sessions[client]; ok {
		sess.lastSeen = time.Now()
		return sess, false, nil
	}
	remote, err := net.ListenPacket("udp", ":0")
	if err != nil {
		return nil, false, err
	}
	sess := &udpSession{remote: remote, lastSeen: time.Now()}
	n.sessions[client] = sess
	return sess, true, nil
}

func (n *udpNAT) closeAll() {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, s := range n.sessions {
		s.remote.Close()
	}
}

// udpReturnPath pumps replies from the session's outbound socket back to
// the client, encrypted, until the session idles out.
func (s *Server) udpReturnPath(pc net.PacketConn, sess *udpSession, clientAddr net.Addr) {
	buf := make([]byte, 64*1024)
	for {
		sess.remote.SetReadDeadline(time.Now().Add(udpSessionTimeout))
		n, from, err := sess.remote.ReadFrom(buf)
		if err != nil {
			sess.remote.Close()
			return
		}
		src, err := socks.ParseAddr(from.String())
		if err != nil {
			continue
		}
		pkt, err := ssproto.PackUDP(s.spec, s.key, src, buf[:n])
		if err != nil {
			continue
		}
		if _, err := pc.WriteTo(pkt, clientAddr); err != nil {
			s.Stats.RelayErrors.Add(1)
		}
	}
}
