package ssserver

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"testing"
	"time"

	"sslab/internal/reaction"
	"sslab/internal/ssclient"
)

// startEcho runs a TCP server that echoes everything, prefixed with "ok:".
func startEcho(t *testing.T) net.Listener {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 4096)
				for {
					n, err := c.Read(buf)
					if n > 0 {
						c.Write(append([]byte("ok:"), buf[:n]...))
					}
					if err != nil {
						return
					}
				}
			}(c)
		}
	}()
	t.Cleanup(func() { l.Close() })
	return l
}

func startServer(t *testing.T, method string, profile reaction.Profile, timeout time.Duration) *Server {
	t.Helper()
	s, err := Listen("127.0.0.1:0", Config{
		Method:   method,
		Password: "integration-pw",
		Profile:  profile,
		Timeout:  timeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestEndToEndProxy proxies application data through real TCP for
// representative method/profile combinations.
func TestEndToEndProxy(t *testing.T) {
	echo := startEcho(t)
	for _, tc := range []struct {
		method  string
		profile reaction.Profile
	}{
		{"chacha20-ietf-poly1305", reaction.Outline107},
		{"aes-256-gcm", reaction.LibevNew},
		{"aes-128-gcm", reaction.LibevOld},
		{"aes-256-ctr", reaction.LibevOld},
		{"aes-256-cfb", reaction.LibevNew},
		{"chacha20-ietf", reaction.LibevNew},
		{"chacha20-ietf-poly1305", reaction.Hardened},
	} {
		name := fmt.Sprintf("%s/%s", tc.method, tc.profile.Versions)
		t.Run(name, func(t *testing.T) {
			srv := startServer(t, tc.method, tc.profile, 5*time.Second)
			client, err := ssclient.New(ssclient.Config{
				Server:   srv.Addr().String(),
				Method:   tc.method,
				Password: "integration-pw",
			})
			if err != nil {
				t.Fatal(err)
			}
			conn, err := client.Dial(echo.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()

			msg := []byte("hello through the tunnel")
			if _, err := conn.Write(msg); err != nil {
				t.Fatal(err)
			}
			want := append([]byte("ok:"), msg...)
			got := make([]byte, len(want))
			conn.SetReadDeadline(time.Now().Add(5 * time.Second))
			if _, err := io.ReadFull(conn, got); err != nil {
				t.Fatalf("read back: %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("echoed %q, want %q", got, want)
			}
			if srv.Stats.Proxied.Load() == 0 {
				t.Error("Proxied stat not incremented")
			}
		})
	}
}

// TestSOCKS5Path drives the full client stack: SOCKS5 in, Shadowsocks out.
func TestSOCKS5Path(t *testing.T) {
	echo := startEcho(t)
	srv := startServer(t, "aes-256-gcm", reaction.Outline110, 5*time.Second)

	client, err := ssclient.New(ssclient.Config{
		Server: srv.Addr().String(), Method: "aes-256-gcm", Password: "integration-pw",
	})
	if err != nil {
		t.Fatal(err)
	}
	socksLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer socksLn.Close()
	go client.ServeSOCKS5(socksLn)

	// Speak SOCKS5 like an application would.
	app, err := net.Dial("tcp", socksLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	if err := socksDialerHandshake(app, echo.Addr().String()); err != nil {
		t.Fatal(err)
	}
	if _, err := app.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	want := []byte("ok:ping")
	got := make([]byte, len(want))
	app.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(app, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("got %q, want %q", got, want)
	}
}

// probeOutcome sends payload to addr and reports whether the server closed
// the connection quickly ("fast-close") or left it open past graceDur.
func probeOutcome(t *testing.T, addr string, payload []byte, graceDur time.Duration) (fastClose bool) {
	t.Helper()
	c, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if len(payload) > 0 {
		if _, err := c.Write(payload); err != nil {
			return true // already reset
		}
	}
	c.SetReadDeadline(time.Now().Add(graceDur))
	var one [1]byte
	_, rerr := c.Read(one[:])
	if rerr == nil {
		t.Fatal("server unexpectedly sent data")
	}
	if ne, ok := rerr.(net.Error); ok && ne.Timeout() {
		return false // still open after grace: server is waiting
	}
	return true // EOF or RST: server closed
}

// TestLiveOutline106Bands verifies the live server reproduces Figure 10b's
// v1.0.6 bands over real TCP: wait below 50 bytes, close at 50 and above.
func TestLiveOutline106Bands(t *testing.T) {
	srv := startServer(t, "chacha20-ietf-poly1305", reaction.Outline106, 10*time.Second)
	addr := srv.Addr().String()
	rnd := bytes.Repeat([]byte{0xA5}, 256)

	if probeOutcome(t, addr, rnd[:49], 500*time.Millisecond) {
		t.Error("49-byte probe: server closed; want waiting")
	}
	if !probeOutcome(t, addr, rnd[:50], 2*time.Second) {
		t.Error("50-byte probe: server waiting; want immediate close")
	}
	if !probeOutcome(t, addr, rnd[:221], 2*time.Second) {
		t.Error("221-byte probe: server waiting; want immediate close")
	}
	if srv.Stats.AuthErrors.Load() < 2 {
		t.Errorf("AuthErrors = %d, want >= 2", srv.Stats.AuthErrors.Load())
	}
}

// TestLiveOutline107TimesOut verifies the post-fix behaviour: the server
// holds the connection open until its own timeout regardless of payload.
func TestLiveOutline107TimesOut(t *testing.T) {
	srv := startServer(t, "chacha20-ietf-poly1305", reaction.Outline107, 700*time.Millisecond)
	addr := srv.Addr().String()
	rnd := bytes.Repeat([]byte{0x5A}, 256)

	if probeOutcome(t, addr, rnd[:221], 300*time.Millisecond) {
		t.Error("221-byte probe closed before server timeout")
	}
	// After the server timeout it must close.
	if !probeOutcome(t, addr, rnd[:221], 3*time.Second) {
		t.Error("server never closed after timeout")
	}
}

// TestLiveLibevOldAEADThreshold verifies the salt+35 reaction threshold
// over real TCP for a 16-byte-salt AEAD (51 bytes).
func TestLiveLibevOldAEADThreshold(t *testing.T) {
	srv := startServer(t, "aes-128-gcm", reaction.LibevOld, 10*time.Second)
	addr := srv.Addr().String()
	rnd := bytes.Repeat([]byte{0x33}, 256)

	if probeOutcome(t, addr, rnd[:50], 500*time.Millisecond) {
		t.Error("50-byte probe: server closed; want waiting")
	}
	if !probeOutcome(t, addr, rnd[:51], 2*time.Second) {
		t.Error("51-byte probe: server waiting; want immediate close")
	}
}

// TestLiveReplayBlocked replays a genuine first flight and checks the
// replay filter fires on a defended profile but not on an undefended one.
func TestLiveReplayBlocked(t *testing.T) {
	echo := startEcho(t)

	record := func(srvAddr, method string) []byte {
		// Wrap the transport to record the first flight, GFW-style.
		var wire []byte
		client, err := ssclient.New(ssclient.Config{
			Server: srvAddr, Method: method, Password: "integration-pw",
			Shaper: func(c net.Conn) net.Conn { return &tapConn{Conn: c, tap: &wire} },
		})
		if err != nil {
			t.Fatal(err)
		}
		conn, err := client.Dial(echo.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		conn.Write([]byte("legit data"))
		buf := make([]byte, 16)
		conn.SetReadDeadline(time.Now().Add(3 * time.Second))
		io.ReadFull(conn, buf[:13]) // "ok:legit data"
		conn.Close()
		return wire
	}

	srv := startServer(t, "aes-256-gcm", reaction.LibevNew, 1*time.Second)
	wire := record(srv.Addr().String(), "aes-256-gcm")
	if len(wire) == 0 {
		t.Fatal("nothing recorded")
	}
	if probeOutcome(t, srv.Addr().String(), wire, 300*time.Millisecond) {
		t.Error("LibevNew closed a replay immediately; want timeout behaviour")
	}
	waitFor(t, 2*time.Second, func() bool { return srv.Stats.ReplaysBlocked.Load() >= 1 })

	undefended := startServer(t, "aes-256-gcm", reaction.Outline107, 1*time.Second)
	wire2 := record(undefended.Addr().String(), "aes-256-gcm")
	// Replaying to the undefended server reaches the proxy stage again.
	before := undefended.Stats.Proxied.Load()
	c, err := net.Dial("tcp", undefended.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c.Write(wire2)
	buf := make([]byte, 8)
	c.SetReadDeadline(time.Now().Add(3 * time.Second))
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Errorf("undefended server did not serve the replay: %v", err)
	}
	c.Close()
	if undefended.Stats.Proxied.Load() != before+1 {
		t.Error("replay did not reach the proxy stage on the undefended server")
	}
}

type tapConn struct {
	net.Conn
	tap *[]byte
}

func (c *tapConn) Write(p []byte) (int, error) {
	if len(*c.tap) == 0 {
		*c.tap = append(*c.tap, p...)
	}
	return c.Conn.Write(p)
}

func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Error("condition not met in time")
}

// socksDialerHandshake is a minimal client-side SOCKS5 CONNECT.
func socksDialerHandshake(c net.Conn, target string) error {
	host, port, err := net.SplitHostPort(target)
	if err != nil {
		return err
	}
	var portN int
	fmt.Sscanf(port, "%d", &portN)
	if _, err := c.Write([]byte{5, 1, 0}); err != nil {
		return err
	}
	resp := make([]byte, 2)
	if _, err := io.ReadFull(c, resp); err != nil {
		return err
	}
	ip := net.ParseIP(host).To4()
	req := append([]byte{5, 1, 0, 1}, ip...)
	req = append(req, byte(portN>>8), byte(portN))
	if _, err := c.Write(req); err != nil {
		return err
	}
	rep := make([]byte, 10)
	if _, err := io.ReadFull(c, rep); err != nil {
		return err
	}
	if rep[1] != 0 {
		return fmt.Errorf("socks connect failed: %d", rep[1])
	}
	return nil
}

// TestConfigValidation covers constructor errors.
func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Method: "nope", Password: "x"}); err == nil {
		t.Error("unknown method accepted")
	}
	if _, err := New(Config{Method: "aes-256-ctr", Password: "x", Profile: reaction.Outline107}); err == nil {
		t.Error("stream method accepted by AEAD-only profile")
	}
	s, err := New(Config{Method: "aes-256-gcm", Password: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if s.cfg.Profile != reaction.Hardened {
		t.Error("zero profile did not default to Hardened")
	}
}

// TestLiveStreamFirstPacketCompleteness pins the stream-cipher behaviour
// difference over real TCP: old libev closes immediately when the first
// data event lacks a complete target spec; new libev keeps waiting.
func TestLiveStreamFirstPacketCompleteness(t *testing.T) {
	partial := make([]byte, 16+3) // full IV + 3 ciphertext bytes (incomplete spec)
	for i := range partial {
		partial[i] = byte(i + 101)
	}

	oldSrv := startServer(t, "aes-256-ctr", reaction.LibevOld, 10*time.Second)
	if !probeOutcome(t, oldSrv.Addr().String(), partial, 2*time.Second) {
		t.Error("old libev kept waiting on an incomplete first packet; want immediate close")
	}

	newSrv := startServer(t, "aes-256-ctr", reaction.LibevNew, 10*time.Second)
	if probeOutcome(t, newSrv.Addr().String(), partial, 500*time.Millisecond) {
		t.Error("new libev closed on an incomplete first packet; want waiting")
	}
}

// TestLiveHardenedRejectsReplayQuietly: the hardened server must neither
// serve nor visibly reject a replayed first flight — it just times out.
func TestLiveHardenedRejectsReplayQuietly(t *testing.T) {
	echo := startEcho(t)
	srv := startServer(t, "chacha20-ietf-poly1305", reaction.Hardened, 800*time.Millisecond)

	var wire []byte
	client, err := ssclient.New(ssclient.Config{
		Server: srv.Addr().String(), Method: "chacha20-ietf-poly1305", Password: "integration-pw",
		Shaper: func(c net.Conn) net.Conn { return &tapConn{Conn: c, tap: &wire} },
	})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := client.Dial(echo.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte("genuine"))
	buf := make([]byte, 10)
	conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	io.ReadFull(conn, buf) // "ok:genuine"
	conn.Close()

	// Replay: the server must hold the connection open (no data, no
	// close) until its own timeout.
	c, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Write(wire)
	c.SetReadDeadline(time.Now().Add(400 * time.Millisecond))
	var one [1]byte
	if _, err := c.Read(one[:]); err == nil {
		t.Fatal("hardened server served a replay")
	} else if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
		t.Errorf("hardened server closed early on replay: %v", err)
	}
	waitFor(t, 2*time.Second, func() bool { return srv.Stats.ReplaysBlocked.Load() >= 1 })
}
