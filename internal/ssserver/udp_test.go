package ssserver

import (
	"bytes"
	"net"
	"testing"
	"time"

	"sslab/internal/reaction"
	"sslab/internal/ssclient"
)

// startUDPEcho runs a UDP server echoing datagrams with an "ok:" prefix.
func startUDPEcho(t *testing.T) net.PacketConn {
	t.Helper()
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		buf := make([]byte, 4096)
		for {
			n, from, err := pc.ReadFrom(buf)
			if err != nil {
				return
			}
			pc.WriteTo(append([]byte("ok:"), buf[:n]...), from)
		}
	}()
	t.Cleanup(func() { pc.Close() })
	return pc
}

// TestUDPRelayEndToEnd exercises the full UDP path: client association →
// encrypted datagram → server NAT → target → encrypted reply → client.
func TestUDPRelayEndToEnd(t *testing.T) {
	echo := startUDPEcho(t)

	srv, err := New(Config{
		Method: "chacha20-ietf-poly1305", Password: "udp-pw",
		Profile: reaction.Hardened,
	})
	if err != nil {
		t.Fatal(err)
	}
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	go srv.ServeUDP(pc)

	client, err := ssclient.New(ssclient.Config{
		Server: pc.LocalAddr().String(), Method: "chacha20-ietf-poly1305", Password: "udp-pw",
	})
	if err != nil {
		t.Fatal(err)
	}
	u, err := client.DialUDP()
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()

	if err := u.Send(echo.LocalAddr().String(), []byte("ping")); err != nil {
		t.Fatal(err)
	}
	from, payload, err := u.Recv(time.Now().Add(5 * time.Second))
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	if !bytes.Equal(payload, []byte("ok:ping")) {
		t.Errorf("payload %q", payload)
	}
	if from.String() != echo.LocalAddr().String() {
		t.Errorf("reply source %v, want %v", from, echo.LocalAddr())
	}

	// A second datagram reuses the NAT session.
	if err := u.Send(echo.LocalAddr().String(), []byte("again")); err != nil {
		t.Fatal(err)
	}
	_, payload, err = u.Recv(time.Now().Add(5 * time.Second))
	if err != nil || !bytes.Equal(payload, []byte("ok:again")) {
		t.Errorf("second datagram: %q %v", payload, err)
	}
}

// TestUDPRelayDropsGarbage: unauthenticated datagrams are dropped
// silently and counted.
func TestUDPRelayDropsGarbage(t *testing.T) {
	srv, err := New(Config{
		Method: "aes-256-gcm", Password: "udp-pw", Profile: reaction.Hardened,
	})
	if err != nil {
		t.Fatal(err)
	}
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	go srv.ServeUDP(pc)

	raw, err := net.Dial("udp", pc.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	raw.Write(bytes.Repeat([]byte{0xAB}, 120))

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if srv.Stats.AuthErrors.Load() >= 1 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Error("garbage datagram not counted as auth error")
}
