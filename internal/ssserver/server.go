// Package ssserver implements runnable Shadowsocks proxy servers over real
// TCP, with per-version behaviour profiles matching the implementations the
// paper studied. A Server is a complete proxy: it decrypts the client
// stream, parses the target specification, dials the target, and relays —
// while reacting to malformed or replayed first packets exactly the way the
// profiled implementation would (immediate close, which yields a FIN/ACK
// or RST depending on unread data, versus reading until timeout).
package ssserver

import (
	"crypto/cipher"
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"sslab/internal/metrics"
	"sslab/internal/netsim"
	"sslab/internal/reaction"
	"sslab/internal/replay"
	"sslab/internal/socks"
	"sslab/internal/sscrypto"
)

// Config configures a Server.
type Config struct {
	// Method is the Shadowsocks cipher method name (see sscrypto.Methods).
	Method string
	// Password is the shared secret.
	Password string
	// Profile selects the implementation behaviour to emulate. The zero
	// value defaults to the hardened reference profile.
	Profile reaction.Profile
	// Timeout is how long the server waits for protocol data before
	// giving up on a connection.
	//
	// Deprecated: set Timeouts.Handshake instead. When Timeouts.Handshake
	// is zero this value is used, so existing callers keep their
	// behaviour.
	Timeout time.Duration
	// Timeouts bounds the connection stages: Connect for outbound dials
	// (was a hard-coded 10 s), Handshake for the first protocol data
	// (default 60 s, the common implementation default the paper
	// contrasts with the GFW's sub-10 s prober patience), and Idle for
	// the relay loops (zero keeps the historical wait-forever relay).
	Timeouts netsim.Timeouts
	// Dial is the outbound dialer; defaults to net.Dial bounded by
	// Timeouts.Connect. Tests substitute it to avoid real network
	// traffic.
	Dial func(network, address string) (net.Conn, error)
	// Logf, when set, receives debug logs.
	Logf func(format string, args ...any)
	// Metrics, when set, receives ssserver.* counters mirroring Stats.
	// A nil registry is valid and makes every instrument a no-op.
	Metrics *metrics.Registry
}

// Stats counts server activity; all fields are updated atomically.
type Stats struct {
	Accepted       atomic.Int64 // connections accepted
	Proxied        atomic.Int64 // connections that reached the relay stage
	AuthErrors     atomic.Int64 // authentication / parse failures
	ReplaysBlocked atomic.Int64 // connections rejected by the replay filter
	RelayErrors    atomic.Int64 // failed writes on the relay path
}

// Server is a running Shadowsocks server.
type Server struct {
	cfg    Config
	spec   sscrypto.Spec
	key    []byte
	filter replay.Filter

	ln     net.Listener
	wg     sync.WaitGroup
	closed atomic.Bool

	// Stats is exported for tests and monitoring.
	Stats Stats

	// Pre-resolved instruments (nil-safe when no registry is configured).
	mAccepted   *metrics.Counter
	mProxied    *metrics.Counter
	mAuthErrors *metrics.Counter
	mReplays    *metrics.Counter
}

// New creates a Server from cfg without binding a socket; use Serve with
// your own listener, or Listen to bind one.
func New(cfg Config) (*Server, error) {
	if cfg.Profile == (reaction.Profile{}) {
		cfg.Profile = reaction.Hardened
	}
	spec, err := sscrypto.Lookup(cfg.Method)
	if err != nil {
		return nil, err
	}
	if cfg.Profile.AEADOnly && spec.Kind != sscrypto.AEAD {
		return nil, fmt.Errorf("ssserver: %s %s supports AEAD methods only",
			cfg.Profile.Name, cfg.Profile.Versions)
	}
	if cfg.Timeouts.Handshake <= 0 {
		cfg.Timeouts.Handshake = cfg.Timeout
	}
	cfg.Timeouts = cfg.Timeouts.WithDefaults()
	cfg.Timeout = cfg.Timeouts.Handshake
	if cfg.Dial == nil {
		connect := cfg.Timeouts.Connect
		cfg.Dial = func(network, address string) (net.Conn, error) {
			return net.DialTimeout(network, address, connect)
		}
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	s := &Server{
		cfg:         cfg,
		spec:        spec,
		key:         spec.Key(cfg.Password),
		mAccepted:   cfg.Metrics.Counter("ssserver.accepted"),
		mProxied:    cfg.Metrics.Counter("ssserver.proxied"),
		mAuthErrors: cfg.Metrics.Counter("ssserver.auth_errors"),
		mReplays:    cfg.Metrics.Counter("ssserver.replays_blocked"),
	}
	switch {
	case !cfg.Profile.ReplayDefense:
		s.filter = replay.None{}
	case cfg.Profile == reaction.Hardened:
		s.filter = replay.NewTimedFilter(2 * time.Minute)
	default:
		s.filter = replay.NewNonceFilter(1 << 16)
	}
	return s, nil
}

// Listen binds addr and starts serving in a background goroutine.
func Listen(addr string, cfg Config) (*Server, error) {
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.ln = ln
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.Serve(ln)
	}()
	return s, nil
}

// Addr returns the bound address (nil if created with New).
func (s *Server) Addr() net.Addr {
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Serve accepts connections on l until it is closed.
func (s *Server) Serve(l net.Listener) {
	for {
		c, err := l.Accept()
		if err != nil {
			return
		}
		s.Stats.Accepted.Add(1)
		s.mAccepted.Inc()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(c)
		}()
	}
}

// Close stops the listener and waits for in-flight connections to finish.
func (s *Server) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	s.wg.Wait()
	return err
}

// errProtocol marks conditions the profiled implementations treat as
// protocol errors (bad auth, bad address type, replay, short first packet).
var errProtocol = errors.New("ssserver: protocol error")

// armIdle bounds one relay-stage read by Timeouts.Idle. A zero Idle is
// a no-op: the relay entry points clear the handshake deadline once, so
// the historical wait-forever behaviour (and its syscall count) is
// unchanged. Called before every relay read, so the window is per-read.
func (s *Server) armIdle(c net.Conn) {
	if d := s.cfg.Timeouts.Idle; d > 0 {
		c.SetReadDeadline(time.Now().Add(d))
	}
}

// handle serves one client connection.
func (s *Server) handle(c net.Conn) {
	defer c.Close()
	deadline := time.Now().Add(s.cfg.Timeouts.Handshake)
	c.SetReadDeadline(deadline)

	var err error
	if s.spec.Kind == sscrypto.AEAD {
		err = s.handleAEAD(c)
	} else {
		err = s.handleStream(c)
	}
	if errors.Is(err, errProtocol) {
		s.onProtocolError(c, deadline)
	}
}

// onProtocolError realizes the profile's error behaviour. Closing right
// away leaves any unread bytes in the kernel buffer, so the kernel emits a
// RST if the probe was longer than what we consumed and a FIN/ACK if we
// had read everything — reproducing Figure 10's RST/FIN-ACK split without
// any explicit flag juggling. Reading until the deadline first reproduces
// the "probing resistance via timeout" behaviour of the newer versions.
func (s *Server) onProtocolError(c net.Conn, deadline time.Time) {
	if !s.cfg.Profile.RSTOnError {
		c.SetReadDeadline(deadline)
		io.Copy(io.Discard, c) // read forever; the deadline unblocks us
	}
	// The deferred Close in handle produces the RST (unread data pending)
	// or FIN/ACK (everything read) the prober observes.
}

// readTargetStream incrementally decrypts and parses the stream-cipher
// target specification. firstEvent is everything that arrived in the first
// read — old libev requires the complete specification within it.
func (s *Server) handleStream(c net.Conn) error {
	iv := make([]byte, s.spec.IVSize)
	if _, err := io.ReadFull(c, iv); err != nil {
		return nil // connection died or timed out while waiting
	}
	if s.filter.Replay(iv, time.Now()) {
		s.Stats.ReplaysBlocked.Add(1)
		s.mReplays.Inc()
		return errProtocol
	}
	dec, err := s.spec.NewStreamDecrypter(s.key, iv)
	if err != nil {
		return errProtocol
	}

	// First data event: one Read call's worth of ciphertext.
	buf := make([]byte, 16*1024)
	n, err := c.Read(buf)
	if err != nil {
		return nil
	}
	plain := make([]byte, 0, n)
	tmp := make([]byte, n)
	dec.XORKeyStream(tmp, buf[:n])
	plain = append(plain, tmp...)

	for {
		target, consumed, derr := socks.Decode(plain, s.cfg.Profile.AtypMask)
		switch {
		case derr == nil:
			s.Stats.Proxied.Add(1)
			s.mProxied.Inc()
			return s.relayStream(c, dec, iv, target, plain[consumed:])
		case errors.Is(derr, socks.ErrIncomplete):
			if s.cfg.Profile.RSTOnError {
				// Old libev: the whole spec must be in the first packet.
				s.Stats.AuthErrors.Add(1)
				s.mAuthErrors.Inc()
				return errProtocol
			}
			// New libev keeps waiting for the rest.
			m, err := c.Read(buf)
			if err != nil {
				return nil
			}
			tmp = tmp[:m]
			dec.XORKeyStream(tmp, buf[:m])
			plain = append(plain, tmp...)
		default:
			s.Stats.AuthErrors.Add(1)
			s.mAuthErrors.Inc()
			return errProtocol
		}
	}
}

// relayStream connects to target and splices traffic, encrypting
// server->client with a fresh IV and decrypting client->server with dec.
func (s *Server) relayStream(c net.Conn, dec cipher.Stream, clientIV []byte, target socks.Addr, initial []byte) error {
	remote, err := s.cfg.Dial("tcp", target.String())
	if err != nil {
		s.cfg.Logf("dial %v: %v", target, err)
		return nil // close; FIN or RST per pending data
	}
	defer remote.Close()
	if len(initial) > 0 {
		if _, err := remote.Write(initial); err != nil {
			return nil
		}
	}
	c.SetReadDeadline(time.Time{})

	done := make(chan struct{}, 2)
	// client -> remote (decrypt).
	go func() {
		defer func() { done <- struct{}{} }()
		buf := make([]byte, 16*1024)
		for {
			s.armIdle(c)
			n, err := c.Read(buf)
			if n > 0 {
				dec.XORKeyStream(buf[:n], buf[:n])
				if _, werr := remote.Write(buf[:n]); werr != nil {
					return
				}
			}
			if err != nil {
				return
			}
		}
	}()
	// remote -> client (encrypt under a server-direction IV).
	go func() {
		defer func() { done <- struct{}{} }()
		ivOut := make([]byte, s.spec.IVSize)
		if _, err := io.ReadFull(randReader, ivOut); err != nil {
			return
		}
		enc, err := s.spec.NewStream(s.key, ivOut)
		if err != nil {
			return
		}
		if _, err := c.Write(ivOut); err != nil {
			return
		}
		buf := make([]byte, 16*1024)
		for {
			s.armIdle(remote)
			n, err := remote.Read(buf)
			if n > 0 {
				enc.XORKeyStream(buf[:n], buf[:n])
				if _, werr := c.Write(buf[:n]); werr != nil {
					return
				}
			}
			if err != nil {
				return
			}
		}
	}()
	<-done
	return nil
}

// handleAEAD serves the AEAD construction.
func (s *Server) handleAEAD(c net.Conn) error {
	saltLen := s.spec.SaltSize()
	salt := make([]byte, saltLen)
	if _, err := io.ReadFull(c, salt); err != nil {
		return nil
	}
	if s.filter.Replay(salt, time.Now()) {
		s.Stats.ReplaysBlocked.Add(1)
		s.mReplays.Inc()
		return errProtocol
	}
	aead, err := s.spec.NewAEAD(sscrypto.SessionSubkey(s.key, salt))
	if err != nil {
		return errProtocol
	}
	nonce := make([]byte, aead.NonceSize())
	overhead := aead.Overhead()

	// Per-connection scratch, reused across chunks: the returned plaintext
	// aliases body and is only valid until the next readChunk call — both
	// callers fully consume it before asking for the next chunk.
	headLen := 2 + overhead
	head := make([]byte, headLen, headLen+overhead+1)
	lenScratch := make([]byte, 0, 2)
	var body []byte

	readChunk := func() ([]byte, error) {
		head = head[:headLen]
		if _, err := io.ReadFull(c, head); err != nil {
			return nil, err
		}
		// Emulate libev's extra buffering: it does not attempt decryption
		// until a payload tag could also be present.
		if s.cfg.Profile.WaitPayloadTag {
			head = head[:headLen+overhead+1]
			if _, err := io.ReadFull(c, head[headLen:]); err != nil {
				return nil, err
			}
		}
		lenPlain, err := aead.Open(lenScratch[:0], nonce, head[:headLen], nil)
		if err != nil {
			s.Stats.AuthErrors.Add(1)
			s.mAuthErrors.Inc()
			return nil, errProtocol
		}
		incNonce(nonce)
		n := int(lenPlain[0])<<8 | int(lenPlain[1])
		if cap(body) < n+overhead {
			body = make([]byte, n+overhead)
		}
		body = body[:n+overhead]
		already := copy(body, head[headLen:])
		if _, err := io.ReadFull(c, body[already:]); err != nil {
			return nil, err
		}
		plain, err := aead.Open(body[:0], nonce, body, nil)
		if err != nil {
			s.Stats.AuthErrors.Add(1)
			s.mAuthErrors.Inc()
			return nil, errProtocol
		}
		incNonce(nonce)
		return plain, nil
	}

	first, err := readChunk()
	if err != nil {
		if errors.Is(err, errProtocol) {
			return errProtocol
		}
		return nil
	}
	target, consumed, derr := socks.Decode(first, false)
	if derr != nil {
		s.Stats.AuthErrors.Add(1)
		s.mAuthErrors.Inc()
		return errProtocol
	}
	s.Stats.Proxied.Add(1)
	s.mProxied.Inc()
	return s.relayAEAD(c, target, first[consumed:], readChunk)
}

// relayAEAD connects to target and splices traffic in AEAD chunks.
func (s *Server) relayAEAD(c net.Conn, target socks.Addr, initial []byte, readChunk func() ([]byte, error)) error {
	remote, err := s.cfg.Dial("tcp", target.String())
	if err != nil {
		s.cfg.Logf("dial %v: %v", target, err)
		return nil
	}
	defer remote.Close()
	if len(initial) > 0 {
		if _, err := remote.Write(initial); err != nil {
			return nil
		}
	}
	c.SetReadDeadline(time.Time{})

	done := make(chan struct{}, 2)
	go func() {
		defer func() { done <- struct{}{} }()
		for {
			s.armIdle(c)
			chunk, err := readChunk()
			if err != nil {
				return
			}
			if _, err := remote.Write(chunk); err != nil {
				return
			}
		}
	}()
	go func() {
		defer func() { done <- struct{}{} }()
		salt := make([]byte, s.spec.SaltSize())
		if _, err := io.ReadFull(randReader, salt); err != nil {
			return
		}
		aead, err := s.spec.NewAEAD(sscrypto.SessionSubkey(s.key, salt))
		if err != nil {
			return
		}
		nonce := make([]byte, aead.NonceSize())
		if _, err := c.Write(salt); err != nil {
			return
		}
		buf := make([]byte, 8*1024)
		out := make([]byte, 0, 2+2*aead.Overhead()+len(buf))
		var lb [2]byte
		for {
			s.armIdle(remote)
			n, err := remote.Read(buf)
			if n > 0 {
				lb[0], lb[1] = byte(n>>8), byte(n)
				out = aead.Seal(out[:0], nonce, lb[:], nil)
				incNonce(nonce)
				out = aead.Seal(out, nonce, buf[:n], nil)
				incNonce(nonce)
				if _, werr := c.Write(out); werr != nil {
					return
				}
			}
			if err != nil {
				return
			}
		}
	}()
	<-done
	return nil
}

func incNonce(n []byte) {
	for i := range n {
		n[i]++
		if n[i] != 0 {
			return
		}
	}
}

// randReader provides IV/salt randomness; tests may substitute it for
// determinism.
var randReader io.Reader = rand.Reader
