package socks

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"testing/quick"
)

func TestParseAddr(t *testing.T) {
	for _, tc := range []struct {
		in       string
		wantType byte
	}{
		{"1.2.3.4:80", AtypIPv4},
		{"example.com:443", AtypDomain},
		{"[2001:db8::1]:8388", AtypIPv6},
	} {
		a, err := ParseAddr(tc.in)
		if err != nil {
			t.Errorf("ParseAddr(%q): %v", tc.in, err)
			continue
		}
		if a.Type != tc.wantType {
			t.Errorf("ParseAddr(%q).Type = %#x, want %#x", tc.in, a.Type, tc.wantType)
		}
		if a.String() != tc.in {
			t.Errorf("round trip %q -> %q", tc.in, a.String())
		}
	}
	for _, bad := range []string{"no-port", ":80", "example.com:99999", "host:-1"} {
		if _, err := ParseAddr(bad); err == nil {
			t.Errorf("ParseAddr(%q) accepted", bad)
		}
	}
}

func TestAppendDecodeRoundTrip(t *testing.T) {
	for _, s := range []string{"10.0.0.1:8388", "gfw.report:443", "[::1]:53"} {
		a, err := ParseAddr(s)
		if err != nil {
			t.Fatal(err)
		}
		wire := a.Append(nil)
		got, n, err := Decode(wire, false)
		if err != nil {
			t.Fatalf("Decode(%q): %v", s, err)
		}
		if n != len(wire) {
			t.Errorf("%s: consumed %d of %d bytes", s, n, len(wire))
		}
		if got.String() != s {
			t.Errorf("round trip %q -> %q", s, got.String())
		}
	}
}

// TestDecodeWireFormat pins the exact wire layout from §2 of the paper.
func TestDecodeWireFormat(t *testing.T) {
	wire := []byte{0x01, 1, 2, 3, 4, 0x01, 0xbb} // 1.2.3.4:443
	a, n, err := Decode(wire, false)
	if err != nil || n != 7 {
		t.Fatalf("Decode: %v n=%d", err, n)
	}
	if !a.IP.Equal(net.IPv4(1, 2, 3, 4)) || a.Port != 443 {
		t.Errorf("got %v", a)
	}

	wire = append([]byte{0x03, 0x0b}, append([]byte("example.com"), 0x00, 0x50)...)
	a, n, err = Decode(wire, false)
	if err != nil || n != len(wire) {
		t.Fatalf("Decode domain: %v n=%d", err, n)
	}
	if a.Host != "example.com" || a.Port != 80 {
		t.Errorf("got %v", a)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode(nil, false); !errors.Is(err, ErrIncomplete) {
		t.Error("empty input should be incomplete")
	}
	// Address types other than 1, 3, 4 are invalid.
	if _, _, err := Decode([]byte{0x05, 0, 0, 0, 0, 0, 0}, false); !errors.Is(err, ErrBadAddrType) {
		t.Error("atyp 5 accepted")
	}
	// Truncated IPv4.
	if _, _, err := Decode([]byte{0x01, 1, 2, 3}, false); !errors.Is(err, ErrIncomplete) {
		t.Error("truncated IPv4 not incomplete")
	}
	// Truncated IPv6.
	if _, _, err := Decode([]byte{0x04, 1, 2, 3, 4, 5}, false); !errors.Is(err, ErrIncomplete) {
		t.Error("truncated IPv6 not incomplete")
	}
	// Domain with length beyond available bytes.
	if _, _, err := Decode([]byte{0x03, 200, 'a', 'b'}, false); !errors.Is(err, ErrIncomplete) {
		t.Error("truncated domain not incomplete")
	}
}

// TestDecodeMask verifies the libev upper-4-bit masking quirk: 0x11 & 0x0f
// = 0x01 parses as IPv4, so 13/16 (not 253/256) of random type bytes fail.
func TestDecodeMask(t *testing.T) {
	wire := []byte{0x11, 1, 2, 3, 4, 0x01, 0xbb}
	if _, _, err := Decode(wire, false); !errors.Is(err, ErrBadAddrType) {
		t.Error("atyp 0x11 accepted without mask")
	}
	a, _, err := Decode(wire, true)
	if err != nil {
		t.Fatalf("atyp 0x11 with mask: %v", err)
	}
	if a.Type != AtypIPv4 {
		t.Errorf("masked type = %#x", a.Type)
	}

	validFrac := 0
	for b := 0; b < 256; b++ {
		buf := make([]byte, 64)
		buf[0] = byte(b)
		if _, _, err := Decode(buf, true); !errors.Is(err, ErrBadAddrType) {
			validFrac++
		}
	}
	// With masking, 3 of every 16 type bytes are valid: 48 of 256.
	// (0x?1, 0x?3, 0x?4 — except 0x?3 with zero length byte is handled
	// separately; buf[1]=0 here makes domains ErrBadAddrType.)
	want := 32 // 0x?1 and 0x?4 only, since buf[1] == 0 kills domains
	if validFrac != want {
		t.Errorf("valid-type fraction with mask: %d/256, want %d/256", validFrac, want)
	}
}

func TestReadAddr(t *testing.T) {
	for _, s := range []string{"8.8.8.8:53", "wikipedia.org:443", "[2001:db8::2]:80"} {
		a, _ := ParseAddr(s)
		got, err := ReadAddr(bytes.NewReader(a.Append(nil)))
		if err != nil {
			t.Errorf("ReadAddr(%s): %v", s, err)
			continue
		}
		if got.String() != s {
			t.Errorf("ReadAddr round trip %q -> %q", s, got.String())
		}
	}
	if _, err := ReadAddr(bytes.NewReader([]byte{0x09})); err == nil {
		t.Error("bad atyp accepted by ReadAddr")
	}
	if _, err := ReadAddr(bytes.NewReader([]byte{0x01, 1, 2})); err == nil {
		t.Error("truncated stream accepted by ReadAddr")
	}
}

// TestQuickRoundTrip property-tests Append/Decode for arbitrary ports and
// hostnames.
func TestQuickRoundTrip(t *testing.T) {
	f := func(port uint16, hostBytes []byte) bool {
		host := ""
		for _, b := range hostBytes {
			if b >= 'a' && b <= 'z' {
				host += string(b)
			}
		}
		if host == "" || len(host) > 255 {
			host = "x"
		}
		a := Addr{Type: AtypDomain, Host: host, Port: port}
		got, n, err := Decode(a.Append(nil), false)
		return err == nil && n == 2+len(host)+2 && got.Host == host && got.Port == port
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
