package socks

import (
	"bytes"
	"testing"
)

// FuzzDecode throws arbitrary bytes at the target-specification parser —
// the exact code path a Shadowsocks server runs on attacker-controlled
// decrypted plaintext (and the path whose error behaviour the GFW
// fingerprints, §5.2.1). Checked invariants: no panic, consumed bytes
// stay within bounds, and every successful parse survives an
// Append→Decode round trip bit-identically.
func FuzzDecode(f *testing.F) {
	// One well-formed seed per address type, plus truncations and junk.
	f.Add([]byte{AtypIPv4, 1, 2, 3, 4, 0x1f, 0x90}, false)
	f.Add([]byte{AtypDomain, 11, 'e', 'x', 'a', 'm', 'p', 'l', 'e', '.', 'c', 'o', 'm', 0, 80}, false)
	f.Add([]byte{AtypIPv6, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 0x01, 0xbb}, false)
	f.Add([]byte{AtypIPv4, 1, 2}, false)        // truncated
	f.Add([]byte{AtypDomain, 0, 80}, false)     // zero-length hostname
	f.Add([]byte{0x41, 1, 2, 3, 4, 5, 6}, true) // masked: 0x41&0x0f == AtypIPv4
	f.Add([]byte{0xff, 0xff}, true)
	f.Add([]byte{}, false)

	f.Fuzz(func(t *testing.T, b []byte, mask bool) {
		addr, n, err := Decode(b, mask)
		if err != nil {
			if n != 0 {
				t.Fatalf("Decode(%x, %v) failed with %v but consumed %d bytes", b, mask, err, n)
			}
			return
		}
		if n <= 0 || n > len(b) {
			t.Fatalf("Decode(%x, %v) consumed %d of %d bytes", b, mask, n, len(b))
		}
		// Round trip: re-serializing the parsed address and re-parsing it
		// must reproduce the same address and consume the whole encoding.
		enc := addr.Append(nil)
		back, m, err := Decode(enc, false)
		if err != nil {
			t.Fatalf("re-decoding %x (from %x): %v", enc, b, err)
		}
		if m != len(enc) {
			t.Fatalf("re-decode consumed %d of %d bytes", m, len(enc))
		}
		if back.String() != addr.String() || back.Type != addr.Type {
			t.Fatalf("round trip changed address: %v -> %v", addr, back)
		}
	})
}

// FuzzReadAddr checks the streaming parser against the in-memory one:
// whatever ReadAddr accepts from a byte stream, Decode must accept with
// the same result, and vice versa for the consumed prefix.
func FuzzReadAddr(f *testing.F) {
	f.Add([]byte{AtypIPv4, 1, 2, 3, 4, 0x1f, 0x90})
	f.Add([]byte{AtypDomain, 3, 'a', 'b', 'c', 0, 80, 0xde, 0xad})
	f.Add([]byte{AtypIPv6})
	f.Add([]byte{0x00, 0x01, 0x02})

	f.Fuzz(func(t *testing.T, b []byte) {
		addr, err := ReadAddr(bytes.NewReader(b))
		dAddr, _, dErr := Decode(b, false)
		if err != nil {
			// The stream parser may fail with an IO error where Decode
			// reports ErrIncomplete; both must agree a full parse failed.
			if dErr == nil {
				t.Fatalf("ReadAddr(%x) = %v but Decode succeeded with %v", b, err, dAddr)
			}
			return
		}
		if dErr != nil {
			t.Fatalf("ReadAddr(%x) = %v but Decode failed with %v", b, addr, dErr)
		}
		if addr.String() != dAddr.String() || addr.Type != dAddr.Type {
			t.Fatalf("stream/in-memory parsers disagree: %v vs %v", addr, dAddr)
		}
	})
}
