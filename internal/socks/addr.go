// Package socks implements the SOCKS-style target-address encoding that
// Shadowsocks borrows for its target specification, plus a minimal local
// SOCKS5 server used by the client to accept application connections.
//
// The three address types, as laid out in §2 of the paper:
//
//	[0x01][4-byte IPv4 address][2-byte port]
//	[0x03][1-byte length][hostname][2-byte port]
//	[0x04][16-byte IPv6 address][2-byte port]
package socks

import (
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
)

// Address types per the SOCKS5 / Shadowsocks specification.
const (
	AtypIPv4   = 0x01
	AtypDomain = 0x03
	AtypIPv6   = 0x04
)

// MaxAddrLen is the maximum serialized length of a target specification:
// 1 (atyp) + 1 (len) + 255 (hostname) + 2 (port).
const MaxAddrLen = 1 + 1 + 255 + 2

// Common parse errors. ErrIncomplete signals that more bytes are needed —
// the condition that makes a Shadowsocks server keep waiting (TIMEOUT in
// Figure 10a); ErrBadAddrType signals an invalid address-type byte — the
// condition that made older servers RST immediately.
var (
	ErrIncomplete  = errors.New("socks: incomplete target specification")
	ErrBadAddrType = errors.New("socks: invalid address type")
)

// Addr is a parsed target specification.
type Addr struct {
	Type byte   // AtypIPv4, AtypDomain, or AtypIPv6
	IP   net.IP // set for IPv4/IPv6
	Host string // set for domain
	Port uint16
}

// String renders the target as host:port.
func (a Addr) String() string {
	host := a.Host
	if a.Type != AtypDomain {
		host = a.IP.String()
	}
	return net.JoinHostPort(host, strconv.Itoa(int(a.Port)))
}

// Append serializes the target specification onto b.
func (a Addr) Append(b []byte) []byte {
	switch a.Type {
	case AtypIPv4:
		b = append(b, AtypIPv4)
		b = append(b, a.IP.To4()...)
	case AtypDomain:
		b = append(b, AtypDomain, byte(len(a.Host)))
		b = append(b, a.Host...)
	case AtypIPv6:
		b = append(b, AtypIPv6)
		b = append(b, a.IP.To16()...)
	default:
		panic(fmt.Sprintf("socks: cannot serialize address type %#x", a.Type))
	}
	return append(b, byte(a.Port>>8), byte(a.Port))
}

// ParseAddr parses a host:port string into an Addr, classifying the host
// as IPv4, IPv6, or domain.
func ParseAddr(s string) (Addr, error) {
	host, portStr, err := net.SplitHostPort(s)
	if err != nil {
		return Addr{}, fmt.Errorf("socks: %w", err)
	}
	port, err := strconv.ParseUint(portStr, 10, 16)
	if err != nil {
		return Addr{}, fmt.Errorf("socks: bad port %q", portStr)
	}
	a := Addr{Port: uint16(port)}
	if ip := net.ParseIP(host); ip != nil {
		if ip4 := ip.To4(); ip4 != nil {
			a.Type, a.IP = AtypIPv4, ip4
		} else {
			a.Type, a.IP = AtypIPv6, ip
		}
		return a, nil
	}
	if len(host) == 0 || len(host) > 255 {
		return Addr{}, fmt.Errorf("socks: bad hostname %q", host)
	}
	a.Type, a.Host = AtypDomain, host
	return a, nil
}

// Decode parses a target specification from the front of b, returning the
// address and the number of bytes consumed. It mirrors how Shadowsocks
// servers parse decrypted plaintext:
//
//   - an unknown address type yields ErrBadAddrType;
//   - too few bytes for the indicated type yields ErrIncomplete.
//
// mask reproduces the Shadowsocks-libev quirk of masking out the upper four
// bits of the address-type byte (an artifact of the removed one-time-auth
// scheme). With mask set, a random byte is a "valid" address type with
// probability 3/16 rather than 3/256 — the difference §5.2.1 of the paper
// shows an attacker can measure.
func Decode(b []byte, mask bool) (Addr, int, error) {
	if len(b) == 0 {
		return Addr{}, 0, ErrIncomplete
	}
	atyp := b[0]
	if mask {
		atyp &= 0x0f
	}
	switch atyp {
	case AtypIPv4:
		if len(b) < 1+4+2 {
			return Addr{}, 0, ErrIncomplete
		}
		return Addr{
			Type: AtypIPv4,
			IP:   net.IP(append([]byte(nil), b[1:5]...)),
			Port: uint16(b[5])<<8 | uint16(b[6]),
		}, 7, nil
	case AtypDomain:
		if len(b) < 2 {
			return Addr{}, 0, ErrIncomplete
		}
		n := int(b[1])
		if n == 0 {
			return Addr{}, 0, ErrBadAddrType
		}
		if len(b) < 2+n+2 {
			return Addr{}, 0, ErrIncomplete
		}
		return Addr{
			Type: AtypDomain,
			Host: string(b[2 : 2+n]),
			Port: uint16(b[2+n])<<8 | uint16(b[2+n+1]),
		}, 2 + n + 2, nil
	case AtypIPv6:
		if len(b) < 1+16+2 {
			return Addr{}, 0, ErrIncomplete
		}
		return Addr{
			Type: AtypIPv6,
			IP:   net.IP(append([]byte(nil), b[1:17]...)),
			Port: uint16(b[17])<<8 | uint16(b[18]),
		}, 19, nil
	default:
		return Addr{}, 0, ErrBadAddrType
	}
}

// ReadAddr reads a target specification from r.
func ReadAddr(r io.Reader) (Addr, error) {
	var buf [MaxAddrLen]byte
	if _, err := io.ReadFull(r, buf[:1]); err != nil {
		return Addr{}, err
	}
	var need int
	switch buf[0] {
	case AtypIPv4:
		need = 4 + 2
	case AtypIPv6:
		need = 16 + 2
	case AtypDomain:
		if _, err := io.ReadFull(r, buf[1:2]); err != nil {
			return Addr{}, err
		}
		need = int(buf[1]) + 2
		if buf[1] == 0 {
			return Addr{}, ErrBadAddrType
		}
		if _, err := io.ReadFull(r, buf[2:2+need]); err != nil {
			return Addr{}, err
		}
		a, _, err := Decode(buf[:2+need], false)
		return a, err
	default:
		return Addr{}, ErrBadAddrType
	}
	if _, err := io.ReadFull(r, buf[1:1+need]); err != nil {
		return Addr{}, err
	}
	a, _, err := Decode(buf[:1+need], false)
	return a, err
}
