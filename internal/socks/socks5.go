package socks

import (
	"fmt"
	"io"
	"net"
)

// SOCKS5 protocol constants for the minimal local server.
const (
	socks5Version     = 0x05
	authNone          = 0x00
	cmdConnect        = 0x01
	replySucceeded    = 0x00
	replyCmdUnsupport = 0x07
)

// Handshake performs the server side of a SOCKS5 negotiation on conn and
// returns the CONNECT target. It supports the no-authentication method and
// the CONNECT command only — exactly what a local Shadowsocks client needs
// to accept browser/curl traffic.
func Handshake(conn net.Conn) (Addr, error) {
	// Method selection: VER NMETHODS METHODS...
	var hdr [2]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return Addr{}, fmt.Errorf("socks5: reading greeting: %w", err)
	}
	if hdr[0] != socks5Version {
		return Addr{}, fmt.Errorf("socks5: unsupported version %#x", hdr[0])
	}
	methods := make([]byte, int(hdr[1]))
	if _, err := io.ReadFull(conn, methods); err != nil {
		return Addr{}, fmt.Errorf("socks5: reading methods: %w", err)
	}
	if _, err := conn.Write([]byte{socks5Version, authNone}); err != nil {
		return Addr{}, err
	}

	// Request: VER CMD RSV ATYP ADDR PORT.
	var req [3]byte
	if _, err := io.ReadFull(conn, req[:]); err != nil {
		return Addr{}, fmt.Errorf("socks5: reading request: %w", err)
	}
	if req[1] != cmdConnect {
		//sslab:allow-errpropagate best-effort error reply; the handshake fails below regardless
		conn.Write([]byte{socks5Version, replyCmdUnsupport, 0, AtypIPv4, 0, 0, 0, 0, 0, 0})
		return Addr{}, fmt.Errorf("socks5: unsupported command %#x", req[1])
	}
	target, err := ReadAddr(conn)
	if err != nil {
		return Addr{}, fmt.Errorf("socks5: reading target: %w", err)
	}
	// Reply success with a zero bind address, as proxies conventionally do.
	if _, err := conn.Write([]byte{socks5Version, replySucceeded, 0, AtypIPv4, 0, 0, 0, 0, 0, 0}); err != nil {
		return Addr{}, err
	}
	return target, nil
}

// DialerHandshake performs the client side of a SOCKS5 CONNECT through
// conn, asking the proxy to connect to target. Used in tests and examples
// to drive the local client end-to-end.
func DialerHandshake(conn net.Conn, target Addr) error {
	if _, err := conn.Write([]byte{socks5Version, 1, authNone}); err != nil {
		return err
	}
	var resp [2]byte
	if _, err := io.ReadFull(conn, resp[:]); err != nil {
		return err
	}
	if resp[0] != socks5Version || resp[1] != authNone {
		return fmt.Errorf("socks5: server selected method %#x", resp[1])
	}
	req := append([]byte{socks5Version, cmdConnect, 0}, target.Append(nil)...)
	if _, err := conn.Write(req); err != nil {
		return err
	}
	var rep [3]byte
	if _, err := io.ReadFull(conn, rep[:]); err != nil {
		return err
	}
	if rep[1] != replySucceeded {
		return fmt.Errorf("socks5: connect failed with code %#x", rep[1])
	}
	if _, err := ReadAddr(conn); err != nil { // bind address
		return err
	}
	return nil
}
