package socks

import (
	"io"
	"net"
	"testing"
	"time"
)

// TestSOCKS5HandshakeRoundTrip runs both sides of the SOCKS5 negotiation
// over a pipe.
func TestSOCKS5HandshakeRoundTrip(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()

	want, _ := ParseAddr("example.com:443")
	errc := make(chan error, 1)
	go func() { errc <- DialerHandshake(client, want) }()

	got, err := Handshake(server)
	if err != nil {
		t.Fatalf("server handshake: %v", err)
	}
	if got.String() != "example.com:443" {
		t.Errorf("target %v", got)
	}
	if err := <-errc; err != nil {
		t.Fatalf("client handshake: %v", err)
	}
}

func TestSOCKS5HandshakeIPv4Target(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()

	want, _ := ParseAddr("10.1.2.3:8080")
	go DialerHandshake(client, want)
	got, err := Handshake(server)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != "10.1.2.3:8080" {
		t.Errorf("target %v", got)
	}
}

// TestSOCKS5BadVersion: a non-SOCKS5 greeting is rejected.
func TestSOCKS5BadVersion(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()

	go func() {
		client.Write([]byte{0x04, 1, 0}) // SOCKS4
	}()
	if _, err := Handshake(server); err == nil {
		t.Error("SOCKS4 greeting accepted")
	}
}

// TestSOCKS5UnsupportedCommand: BIND/UDP-ASSOCIATE get a command-
// unsupported reply and an error.
func TestSOCKS5UnsupportedCommand(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()

	go func() {
		client.Write([]byte{5, 1, 0}) // greeting
		buf := make([]byte, 2)
		client.Read(buf) // method selection
		// The server rejects after the 3-byte request header, so (per
		// net.Pipe's synchronous semantics) send exactly that much.
		client.Write([]byte{5, 0x02, 0}) // BIND
		client.SetReadDeadline(time.Now().Add(time.Second))
		io.ReadFull(client, make([]byte, 10)) // consume the error reply
	}()
	if _, err := Handshake(server); err == nil {
		t.Error("BIND command accepted")
	}
}

// TestSOCKS5TruncatedRequest: a client that disappears mid-handshake.
func TestSOCKS5TruncatedRequest(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	go func() {
		client.Write([]byte{5, 1, 0})
		buf := make([]byte, 2)
		client.Read(buf)
		client.Write([]byte{5, 1}) // truncated request header
		client.Close()
	}()
	if _, err := Handshake(server); err == nil {
		t.Error("truncated request accepted")
	}
}

// TestDialerHandshakeRejectsFailureReply: a proxy that reports failure.
func TestDialerHandshakeRejectsFailureReply(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()

	go func() {
		buf := make([]byte, 3)
		server.Read(buf)
		server.Write([]byte{5, 0}) // method ok
		req := make([]byte, 32)
		server.Read(req)
		server.Write([]byte{5, 0x05, 0, 1, 0, 0, 0, 0, 0, 0}) // connection refused
	}()
	addr, _ := ParseAddr("example.com:80")
	if err := DialerHandshake(client, addr); err == nil {
		t.Error("failure reply accepted")
	}
}
