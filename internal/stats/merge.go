package stats

import (
	"encoding/json"
	"math"
	"math/rand"
	"sort"
)

// This file holds the order-independent reduction helpers the campaign
// engine (internal/campaign) uses to fold per-shard experiment reports
// into one aggregate: histogram and CDF union, and mean ± bootstrap
// confidence intervals over seed samples. Every operation here is
// associative and commutative over its inputs (or canonicalizes them
// first), so a sweep's merged report is byte-identical regardless of
// how many workers ran the shards or in which order they finished.

// Merge folds another histogram into h bin-by-bin. Merging is
// associative and commutative: any merge order over a set of
// histograms yields the same counts.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil {
		return
	}
	for v, c := range o.Counts {
		h.Counts[v] += c
	}
	h.Total += o.Total
}

// AddInt64s sums src into dst element-wise, growing dst to the longer
// length (missing entries count as zero), and returns the possibly
// reallocated dst. Like the other reductions here it is associative
// and commutative, which is what lets the fleet engine's per-shard
// bucket curves (blocked users, probe load) merge into the same bytes
// regardless of worker count or merge grouping.
func AddInt64s(dst, src []int64) []int64 {
	for len(dst) < len(src) {
		dst = append(dst, 0)
	}
	for i, v := range src {
		dst[i] += v
	}
	return dst
}

// Samples returns a copy of the CDF's sorted samples.
func (c *CDF) Samples() []float64 {
	return append([]float64(nil), c.sorted...)
}

// MergeCDFs unions the samples of every input CDF into a new CDF. Nil
// inputs are skipped. Like Histogram.Merge, the result depends only on
// the multiset of samples, not on argument order or grouping.
func MergeCDFs(cdfs ...*CDF) *CDF {
	var all []float64
	for _, c := range cdfs {
		if c == nil {
			continue
		}
		all = append(all, c.sorted...)
	}
	return NewCDF(all)
}

// cdfJSON is the wire form of a CDF. The sorted sample slice is the
// CDF's entire state, so (un)marshalling round-trips exactly.
type cdfJSON struct {
	Samples []float64 `json:"Samples"`
}

// MarshalJSON encodes the CDF as {"Samples":[...]} so experiment
// reports that embed CDFs serialize losslessly (the field is
// unexported, which plain encoding/json would silently drop).
func (c *CDF) MarshalJSON() ([]byte, error) {
	return json.Marshal(cdfJSON{Samples: c.sorted})
}

// UnmarshalJSON decodes the form written by MarshalJSON.
func (c *CDF) UnmarshalJSON(b []byte) error {
	var w cdfJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	sort.Float64s(w.Samples)
	c.sorted = w.Samples
	return nil
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// BootstrapMeanCI returns a percentile-bootstrap confidence interval
// for the mean of xs at the given confidence level (e.g. 0.95), using
// `resamples` bootstrap replicates drawn from rng. The samples are
// canonicalized (sorted) before resampling, so the interval depends
// only on the multiset of samples and the rng's seed — not on the
// order shards delivered them. With fewer than two samples the
// interval collapses to the mean.
func BootstrapMeanCI(xs []float64, confidence float64, resamples int, rng *rand.Rand) (lo, hi float64) {
	m := Mean(xs)
	if len(xs) < 2 || resamples < 1 {
		return m, m
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	means := make([]float64, resamples)
	for i := range means {
		s := 0.0
		for j := 0; j < len(sorted); j++ {
			s += sorted[rng.Intn(len(sorted))]
		}
		means[i] = s / float64(len(sorted))
	}
	sort.Float64s(means)
	alpha := (1 - confidence) / 2
	loIdx := int(math.Floor(alpha * float64(resamples)))
	hiIdx := int(math.Ceil((1-alpha)*float64(resamples))) - 1
	if loIdx < 0 {
		loIdx = 0
	}
	if hiIdx >= resamples {
		hiIdx = resamples - 1
	}
	return means[loIdx], means[hiIdx]
}
