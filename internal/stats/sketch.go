// Streaming sketches for population-scale runs: a fleet simulating 10⁵+
// users cannot afford to materialize per-flow or per-event records just
// to report distributions at the end. The three types here keep O(1) or
// O(log range) state per metric:
//
//   - Quantile: a mergeable log-bucketed quantile sketch (DDSketch-style
//     relative-accuracy guarantee), for distributions reported across
//     sweep shards.
//   - P2: the Jain–Chlamtac P² estimator, five markers of state for one
//     online quantile where mergeability is not needed.
//   - TimeSeries: fixed-width mergeable event counters over virtual
//     time, for curves (flows, probe load) that must add across shards.

package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Quantile is a mergeable streaming quantile sketch over non-negative
// values. Values are assigned to logarithmic buckets of ratio
// γ = (1+α)/(1−α), which bounds the relative error of any reported
// quantile by α (plus the error of the min/max clamp at the extremes).
// Merge is exact (bucket counts add), so it is associative and
// commutative — the property the campaign engine's shard reductions
// require. The zero value is unusable; construct with NewQuantile.
type Quantile struct {
	// Alpha is the relative-accuracy target. Fixed at construction;
	// only sketches with equal Alpha merge.
	Alpha float64
	// Buckets maps bucket index ⌈log_γ x⌉ to its count.
	Buckets map[int]int64
	// Zeros counts observations ≤ 0 (clamped to zero).
	Zeros int64
	// Total is the observation count.
	Total int64
	// Lo and Hi are the exact extremes, used to clamp tail quantiles.
	Lo, Hi float64

	// logGamma caches log γ; recomputed on demand after JSON decoding.
	logGamma float64
}

// NewQuantile returns a sketch with relative accuracy alpha
// (0 < alpha < 1); alpha <= 0 selects the 1% default.
func NewQuantile(alpha float64) *Quantile {
	if alpha <= 0 {
		alpha = 0.01
	}
	return &Quantile{Alpha: alpha, Buckets: map[int]int64{}}
}

func (s *Quantile) gammaLog() float64 {
	if s.logGamma == 0 {
		s.logGamma = math.Log((1 + s.Alpha) / (1 - s.Alpha))
	}
	return s.logGamma
}

// Observe adds one value. Values ≤ 0 land in the zero bucket.
func (s *Quantile) Observe(x float64) {
	if s.Total == 0 || x < s.Lo {
		s.Lo = x
	}
	if s.Total == 0 || x > s.Hi {
		s.Hi = x
	}
	s.Total++
	if x <= 0 {
		s.Zeros++
		return
	}
	s.Buckets[int(math.Ceil(math.Log(x)/s.gammaLog()))]++
}

// Count returns the number of observations.
func (s *Quantile) Count() int64 { return s.Total }

// Quantile returns an estimate of the q-quantile (q in [0,1]) with
// relative error ≤ Alpha, or NaN when the sketch is empty.
func (s *Quantile) Quantile(q float64) float64 {
	if s.Total == 0 {
		return math.NaN()
	}
	rank := int64(math.Ceil(q * float64(s.Total)))
	if rank < 1 {
		rank = 1
	}
	if rank >= s.Total {
		return s.Hi
	}
	if rank <= s.Zeros {
		return 0
	}
	if rank == 1 {
		return s.Lo
	}
	keys := make([]int, 0, len(s.Buckets))
	for k := range s.Buckets {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	cum := s.Zeros
	gamma := (1 + s.Alpha) / (1 - s.Alpha)
	for _, k := range keys {
		cum += s.Buckets[k]
		if cum >= rank {
			// Bucket k covers (γ^(k−1), γ^k]; the midpoint estimate
			// 2γ^k/(γ+1) has relative error ≤ α anywhere in the bucket.
			v := 2 * math.Pow(gamma, float64(k)) / (gamma + 1)
			return math.Min(math.Max(v, s.Lo), s.Hi)
		}
	}
	return s.Hi
}

// Merge folds o into s. Sketches must share Alpha. Merging is exact:
// the result is identical to one sketch having observed both streams.
func (s *Quantile) Merge(o *Quantile) error {
	if o == nil || o.Total == 0 {
		return nil
	}
	if s.Alpha != o.Alpha {
		return fmt.Errorf("stats: merging quantile sketches with alpha %v and %v", s.Alpha, o.Alpha)
	}
	if s.Total == 0 || o.Lo < s.Lo {
		s.Lo = o.Lo
	}
	if s.Total == 0 || o.Hi > s.Hi {
		s.Hi = o.Hi
	}
	if s.Buckets == nil {
		s.Buckets = map[int]int64{}
	}
	for k, c := range o.Buckets {
		s.Buckets[k] += c
	}
	s.Zeros += o.Zeros
	s.Total += o.Total
	return nil
}

// Summary is the compact quantile digest reports embed: plain numeric
// fields, so the campaign engine's generic flattener reduces each to a
// mean ± CI metric across seeds.
type Summary struct {
	N                  int64
	Min                float64
	P25, P50, P75, P90 float64
	Max                float64
}

// Summarize digests the sketch. Empty sketches summarize to zeros.
func (s *Quantile) Summarize() Summary {
	if s.Total == 0 {
		return Summary{}
	}
	return Summary{
		N:   s.Total,
		Min: s.Lo,
		P25: s.Quantile(0.25),
		P50: s.Quantile(0.50),
		P75: s.Quantile(0.75),
		P90: s.Quantile(0.90),
		Max: s.Hi,
	}
}

// P2 is the Jain–Chlamtac P² estimator: one quantile tracked online
// with five markers and no sample storage. It is not mergeable (marker
// positions are stream-order dependent) — use Quantile for anything
// that crosses shard boundaries.
type P2 struct {
	p    float64
	n    int64
	q    [5]float64 // marker heights
	pos  [5]float64 // marker positions (1-based)
	want [5]float64 // desired positions
	inc  [5]float64 // desired-position increments
}

// NewP2 returns an estimator for the p-quantile (0 < p < 1).
func NewP2(p float64) *P2 {
	e := &P2{p: p}
	e.inc = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return e
}

// Count returns the number of observations.
func (e *P2) Count() int64 { return e.n }

// Observe adds one value.
func (e *P2) Observe(x float64) {
	if e.n < 5 {
		e.q[e.n] = x
		e.n++
		if e.n == 5 {
			sort.Float64s(e.q[:])
			for i := range e.pos {
				e.pos[i] = float64(i + 1)
				e.want[i] = 1 + 4*e.inc[i]
			}
		}
		return
	}
	e.n++
	// Locate the cell and bump the extreme markers.
	var k int
	switch {
	case x < e.q[0]:
		e.q[0], k = x, 0
	case x < e.q[1]:
		k = 0
	case x < e.q[2]:
		k = 1
	case x < e.q[3]:
		k = 2
	case x <= e.q[4]:
		k = 3
	default:
		e.q[4], k = x, 3
	}
	for i := k + 1; i < 5; i++ {
		e.pos[i]++
	}
	for i := range e.want {
		e.want[i] += e.inc[i]
	}
	// Nudge interior markers toward their desired positions with the
	// piecewise-parabolic (P²) update, falling back to linear when the
	// parabola would leave the bracket.
	for i := 1; i <= 3; i++ {
		d := e.want[i] - e.pos[i]
		if (d >= 1 && e.pos[i+1]-e.pos[i] > 1) || (d <= -1 && e.pos[i-1]-e.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1.0
			}
			qp := e.parabolic(i, sign)
			if e.q[i-1] < qp && qp < e.q[i+1] {
				e.q[i] = qp
			} else {
				e.q[i] = e.linear(i, sign)
			}
			e.pos[i] += sign
		}
	}
}

func (e *P2) parabolic(i int, d float64) float64 {
	return e.q[i] + d/(e.pos[i+1]-e.pos[i-1])*
		((e.pos[i]-e.pos[i-1]+d)*(e.q[i+1]-e.q[i])/(e.pos[i+1]-e.pos[i])+
			(e.pos[i+1]-e.pos[i]-d)*(e.q[i]-e.q[i-1])/(e.pos[i]-e.pos[i-1]))
}

func (e *P2) linear(i int, d float64) float64 {
	return e.q[i] + d*(e.q[int(float64(i)+d)]-e.q[i])/(e.pos[int(float64(i)+d)]-e.pos[i])
}

// Value returns the current estimate; exact while fewer than five
// observations have arrived, NaN when empty.
func (e *P2) Value() float64 {
	switch {
	case e.n == 0:
		return math.NaN()
	case e.n < 5:
		buf := e.q
		sort.Float64s(buf[:e.n])
		rank := int(math.Ceil(e.p * float64(e.n)))
		if rank < 1 {
			rank = 1
		}
		return buf[rank-1]
	default:
		return e.q[2]
	}
}

// TimeSeries is a mergeable series of event counts in fixed-width
// buckets of virtual time, offset from the simulation epoch. Merging
// sums element-wise, so it is associative and commutative.
type TimeSeries struct {
	// Bucket is the bucket width.
	Bucket time.Duration
	// Counts holds one count per bucket, from offset zero.
	Counts []int64
}

// NewTimeSeries returns a series with the given bucket width;
// bucket <= 0 selects one minute.
func NewTimeSeries(bucket time.Duration) *TimeSeries {
	if bucket <= 0 {
		bucket = time.Minute
	}
	return &TimeSeries{Bucket: bucket}
}

// Add counts n events at virtual-time offset at (negative offsets
// land in bucket 0), extending the series as needed.
func (t *TimeSeries) Add(at time.Duration, n int64) {
	i := 0
	if at > 0 {
		i = int(at / t.Bucket)
	}
	for len(t.Counts) <= i {
		t.Counts = append(t.Counts, 0)
	}
	t.Counts[i] += n
}

// Sum returns the total event count.
func (t *TimeSeries) Sum() int64 {
	var s int64
	for _, c := range t.Counts {
		s += c
	}
	return s
}

// Ints converts the counts for rendering (see Sparkline).
func (t *TimeSeries) Ints() []int {
	out := make([]int, len(t.Counts))
	for i, c := range t.Counts {
		out[i] = int(c)
	}
	return out
}

// Merge folds o into t. Series must share the bucket width; the longer
// tail is kept.
func (t *TimeSeries) Merge(o *TimeSeries) error {
	if o == nil || len(o.Counts) == 0 {
		return nil
	}
	if t.Bucket != o.Bucket {
		return fmt.Errorf("stats: merging time series with buckets %v and %v", t.Bucket, o.Bucket)
	}
	for len(t.Counts) < len(o.Counts) {
		t.Counts = append(t.Counts, 0)
	}
	for i, c := range o.Counts {
		t.Counts[i] += c
	}
	return nil
}
