package stats

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"
)

// TestHistogramMergeOrderIndependent is the property the campaign
// merge relies on: folding a set of histograms in any permutation and
// any grouping yields identical counts.
func TestHistogramMergeOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var parts []*Histogram
	for i := 0; i < 12; i++ {
		h := NewHistogram()
		for j := 0; j < 50; j++ {
			h.Add(rng.Intn(20))
		}
		parts = append(parts, h)
	}
	merge := func(order []int) *Histogram {
		out := NewHistogram()
		for _, i := range order {
			out.Merge(parts[i])
		}
		return out
	}
	base := merge(rng.Perm(len(parts)))
	for trial := 0; trial < 20; trial++ {
		got := merge(rng.Perm(len(parts)))
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("merge order changed the result:\n%v\nvs\n%v", base, got)
		}
	}
	// Associativity: merging pre-merged halves equals the flat merge.
	left, right := NewHistogram(), NewHistogram()
	for i, p := range parts {
		if i%2 == 0 {
			left.Merge(p)
		} else {
			right.Merge(p)
		}
	}
	left.Merge(right)
	if !reflect.DeepEqual(base, left) {
		t.Fatalf("grouped merge diverged from flat merge")
	}
}

// TestHistogramMergeSingles: merging N single-observation histograms
// equals the N-observation histogram.
func TestHistogramMergeSingles(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	full := NewHistogram()
	merged := NewHistogram()
	for i := 0; i < 200; i++ {
		v := rng.Intn(30)
		full.Add(v)
		single := NewHistogram()
		single.Add(v)
		merged.Merge(single)
	}
	if !reflect.DeepEqual(full, merged) {
		t.Fatalf("merged singles != bulk histogram")
	}
}

func TestMergeCDFsOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var parts []*CDF
	for i := 0; i < 8; i++ {
		xs := make([]float64, 40)
		for j := range xs {
			xs[j] = rng.NormFloat64()
		}
		parts = append(parts, NewCDF(xs))
	}
	merge := func(order []int) *CDF {
		in := make([]*CDF, len(order))
		for k, i := range order {
			in[k] = parts[i]
		}
		return MergeCDFs(in...)
	}
	base := merge(rng.Perm(len(parts)))
	for trial := 0; trial < 20; trial++ {
		if got := merge(rng.Perm(len(parts))); !reflect.DeepEqual(base.sorted, got.sorted) {
			t.Fatal("CDF merge order changed the sample multiset")
		}
	}
	// Grouped union equals flat union, and singles union equals bulk.
	grouped := MergeCDFs(MergeCDFs(parts[:4]...), MergeCDFs(parts[4:]...))
	if !reflect.DeepEqual(base.sorted, grouped.sorted) {
		t.Fatal("grouped CDF union diverged")
	}
	var singles []*CDF
	for _, s := range parts[0].Samples() {
		singles = append(singles, NewCDF([]float64{s}))
	}
	if got := MergeCDFs(singles...); !reflect.DeepEqual(got.sorted, parts[0].sorted) {
		t.Fatal("merging single-sample CDFs != bulk CDF")
	}
	if MergeCDFs(nil, parts[0], nil).Len() != parts[0].Len() {
		t.Fatal("nil inputs not skipped")
	}
}

func TestCDFJSONRoundTrip(t *testing.T) {
	c := NewCDF([]float64{3, 1, 2, 2.5})
	b, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	var back CDF
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c.sorted, back.sorted) {
		t.Fatalf("round trip lost samples: %v vs %v", c.sorted, back.sorted)
	}
	// Empty CDF must round-trip too (a shard can observe nothing).
	b2, err := json.Marshal(NewCDF(nil))
	if err != nil {
		t.Fatal(err)
	}
	var empty CDF
	if err := json.Unmarshal(b2, &empty); err != nil {
		t.Fatal(err)
	}
	if empty.Len() != 0 {
		t.Fatal("empty CDF grew samples in transit")
	}
}

// TestBootstrapDeterministic: the CI depends only on the sample
// multiset and the rng seed — the guarantee that makes the sweep's
// merged report byte-identical across worker counts.
func TestBootstrapDeterministic(t *testing.T) {
	xs := []float64{4, 8, 15, 16, 23, 42}
	perm := []float64{42, 15, 4, 23, 8, 16}
	lo1, hi1 := BootstrapMeanCI(xs, 0.95, 1000, rand.New(rand.NewSource(9)))
	lo2, hi2 := BootstrapMeanCI(perm, 0.95, 1000, rand.New(rand.NewSource(9)))
	if lo1 != lo2 || hi1 != hi2 {
		t.Fatalf("CI depends on sample order: [%g,%g] vs [%g,%g]", lo1, hi1, lo2, hi2)
	}
	if lo1 > hi1 {
		t.Fatalf("inverted interval [%g,%g]", lo1, hi1)
	}
	m := Mean(xs)
	if m < lo1 || m > hi1 {
		t.Fatalf("mean %g outside its own CI [%g,%g]", m, lo1, hi1)
	}
	// Degenerate inputs collapse to the mean.
	if lo, hi := BootstrapMeanCI([]float64{7}, 0.95, 100, rand.New(rand.NewSource(1))); lo != 7 || hi != 7 {
		t.Fatalf("single-sample CI [%g,%g], want [7,7]", lo, hi)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean not 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("mean = %g", got)
	}
}

// TestAddInt64s covers the element-wise curve merge the fleet's shard
// reduction uses: order/grouping independence and tail extension.
func TestAddInt64s(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	parts := make([][]int64, 9)
	for i := range parts {
		parts[i] = make([]int64, 1+rng.Intn(12))
		for j := range parts[i] {
			parts[i][j] = int64(rng.Intn(100) - 20)
		}
	}
	merge := func(order []int) []int64 {
		var out []int64
		for _, i := range order {
			out = AddInt64s(out, parts[i])
		}
		return out
	}
	base := merge(rng.Perm(len(parts)))
	for trial := 0; trial < 20; trial++ {
		if got := merge(rng.Perm(len(parts))); !reflect.DeepEqual(base, got) {
			t.Fatalf("merge order changed the result: %v vs %v", base, got)
		}
	}
	// Associativity: summing pre-merged halves equals the flat sum.
	var left, right []int64
	for i, p := range parts {
		if i%2 == 0 {
			left = AddInt64s(left, p)
		} else {
			right = AddInt64s(right, p)
		}
	}
	if got := AddInt64s(left, right); !reflect.DeepEqual(base, got) {
		t.Fatalf("grouped sum diverged from flat sum: %v vs %v", base, got)
	}
	// The longer operand sets the result length; missing entries are 0.
	if got := AddInt64s([]int64{1}, []int64{2, 3}); !reflect.DeepEqual(got, []int64{3, 3}) {
		t.Fatalf("tail extension: got %v", got)
	}
	if got := AddInt64s([]int64{1, 4}, nil); !reflect.DeepEqual(got, []int64{1, 4}) {
		t.Fatalf("nil src: got %v", got)
	}
}
