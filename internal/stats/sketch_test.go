package stats

import (
	"encoding/json"
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"
)

// sketchJSON is the canonical comparison form for merge property tests:
// byte-identical JSON means identical bucket counts, totals and
// extremes (and exercises the encoding the campaign engine reduces).
func sketchJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(b)
}

// TestQuantileMergeOrderIndependent mirrors the Histogram merge suite:
// folding a set of sketches in any permutation yields an identical
// sketch, the property the campaign engine's shard reduction relies on.
func TestQuantileMergeOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var parts []*Quantile
	for p := 0; p < 12; p++ {
		s := NewQuantile(0.01)
		for i := 0; i < 50+rng.Intn(200); i++ {
			s.Observe(rng.ExpFloat64() * 100)
		}
		parts = append(parts, s)
	}

	fold := func(order []int) string {
		total := NewQuantile(0.01)
		for _, i := range order {
			if err := total.Merge(parts[i]); err != nil {
				t.Fatalf("merge: %v", err)
			}
		}
		return sketchJSON(t, total)
	}

	base := make([]int, len(parts))
	for i := range base {
		base[i] = i
	}
	want := fold(base)
	for trial := 0; trial < 20; trial++ {
		order := rng.Perm(len(parts))
		if got := fold(order); got != want {
			t.Fatalf("merge order %v changed the sketch:\n got %s\nwant %s", order, got, want)
		}
	}
}

// TestQuantileMergeAssociative checks grouped folding: merging halves
// that were themselves merged equals a flat left fold.
func TestQuantileMergeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var parts []*Quantile
	for p := 0; p < 8; p++ {
		s := NewQuantile(0.02)
		for i := 0; i < 120; i++ {
			s.Observe(rng.NormFloat64()*10 + 50)
		}
		parts = append(parts, s)
	}

	flat := NewQuantile(0.02)
	for _, p := range parts {
		if err := flat.Merge(p); err != nil {
			t.Fatalf("merge: %v", err)
		}
	}

	left, right := NewQuantile(0.02), NewQuantile(0.02)
	for _, p := range parts[:4] {
		left.Merge(p)
	}
	for _, p := range parts[4:] {
		right.Merge(p)
	}
	grouped := NewQuantile(0.02)
	grouped.Merge(left)
	grouped.Merge(right)

	if got, want := sketchJSON(t, grouped), sketchJSON(t, flat); got != want {
		t.Fatalf("grouped merge diverged:\n got %s\nwant %s", got, want)
	}
}

// TestQuantileMergeEqualsBulk: merging per-part sketches is exactly the
// sketch that observed the concatenated stream (merge is lossless).
func TestQuantileMergeEqualsBulk(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	bulk := NewQuantile(0.01)
	merged := NewQuantile(0.01)
	for p := 0; p < 6; p++ {
		part := NewQuantile(0.01)
		for i := 0; i < 300; i++ {
			x := rng.Float64() * 1000
			bulk.Observe(x)
			part.Observe(x)
		}
		if err := merged.Merge(part); err != nil {
			t.Fatalf("merge: %v", err)
		}
	}
	if got, want := sketchJSON(t, merged), sketchJSON(t, bulk); got != want {
		t.Fatalf("merged != bulk:\n got %s\nwant %s", got, want)
	}
}

// TestQuantileMergeAlphaMismatch: sketches with different accuracy
// targets must refuse to merge (their buckets are incompatible).
func TestQuantileMergeAlphaMismatch(t *testing.T) {
	a, b := NewQuantile(0.01), NewQuantile(0.02)
	b.Observe(1)
	if err := a.Merge(b); err == nil {
		t.Fatal("merging sketches with different alphas succeeded")
	}
}

// exactQuantile is the reference the sketch is checked against.
func exactQuantile(sorted []float64, q float64) float64 {
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// TestQuantileAccuracy checks the sketch's relative-error guarantee on
// known distributions: every reported quantile must be within ~α
// (doubled for rounding slack at bucket boundaries) of the exact
// sample quantile.
func TestQuantileAccuracy(t *testing.T) {
	const n, alpha = 20000, 0.01
	distributions := map[string]func(*rand.Rand) float64{
		"uniform":     func(r *rand.Rand) float64 { return r.Float64() * 100 },
		"exponential": func(r *rand.Rand) float64 { return r.ExpFloat64() * 10 },
		"lognormal":   func(r *rand.Rand) float64 { return math.Exp(r.NormFloat64()) },
	}
	for name, draw := range distributions {
		rng := rand.New(rand.NewSource(23))
		s := NewQuantile(alpha)
		samples := make([]float64, n)
		for i := range samples {
			samples[i] = draw(rng)
			s.Observe(samples[i])
		}
		sort.Float64s(samples)
		for _, q := range []float64{0.05, 0.25, 0.5, 0.75, 0.9, 0.99} {
			exact := exactQuantile(samples, q)
			got := s.Quantile(q)
			relErr := math.Abs(got-exact) / exact
			if relErr > 2*alpha {
				t.Errorf("%s p%v: sketch %.4f vs exact %.4f (rel err %.4f > %v)",
					name, q, got, exact, relErr, 2*alpha)
			}
		}
		if got, want := s.Quantile(0), samples[0]; got != want {
			t.Errorf("%s p0: got %v, want exact min %v", name, got, want)
		}
		if got, want := s.Quantile(1), samples[n-1]; got != want {
			t.Errorf("%s p1: got %v, want exact max %v", name, got, want)
		}
	}
}

// TestQuantileZerosAndEmpty covers the zero bucket and the empty sketch.
func TestQuantileZerosAndEmpty(t *testing.T) {
	s := NewQuantile(0.01)
	if !math.IsNaN(s.Quantile(0.5)) {
		t.Error("empty sketch should report NaN")
	}
	for i := 0; i < 10; i++ {
		s.Observe(0)
	}
	s.Observe(5)
	if got := s.Quantile(0.5); got != 0 {
		t.Errorf("median of mostly-zeros = %v, want 0", got)
	}
	if got := s.Quantile(1); got != 5 {
		t.Errorf("max = %v, want 5", got)
	}
	if s.Count() != 11 {
		t.Errorf("count = %d, want 11", s.Count())
	}
}

// TestP2Accuracy checks the P² estimator against exact quantiles on the
// same known distributions. P² has no hard error bound, so tolerances
// are empirical but tight enough to catch an update-rule regression.
func TestP2Accuracy(t *testing.T) {
	const n = 20000
	distributions := map[string]func(*rand.Rand) float64{
		"uniform":     func(r *rand.Rand) float64 { return r.Float64() * 100 },
		"exponential": func(r *rand.Rand) float64 { return r.ExpFloat64() * 10 },
		"lognormal":   func(r *rand.Rand) float64 { return math.Exp(r.NormFloat64()) },
	}
	for name, draw := range distributions {
		for _, p := range []float64{0.5, 0.9} {
			rng := rand.New(rand.NewSource(31))
			est := NewP2(p)
			samples := make([]float64, n)
			for i := range samples {
				samples[i] = draw(rng)
				est.Observe(samples[i])
			}
			sort.Float64s(samples)
			exact := exactQuantile(samples, p)
			got := est.Value()
			relErr := math.Abs(got-exact) / exact
			if relErr > 0.05 {
				t.Errorf("%s p%v: P² %.4f vs exact %.4f (rel err %.4f)", name, p, got, exact, relErr)
			}
		}
	}
}

// TestP2SmallStreams: under five observations the estimate is exact.
func TestP2SmallStreams(t *testing.T) {
	est := NewP2(0.5)
	if !math.IsNaN(est.Value()) {
		t.Error("empty estimator should report NaN")
	}
	for _, x := range []float64{9, 1, 5} {
		est.Observe(x)
	}
	if got := est.Value(); got != 5 {
		t.Errorf("median of {9,1,5} = %v, want 5", got)
	}
	if est.Count() != 3 {
		t.Errorf("count = %d, want 3", est.Count())
	}
}

// TestTimeSeriesMergeOrderIndependent mirrors the Histogram suite for
// the mergeable counter series.
func TestTimeSeriesMergeOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var parts []*TimeSeries
	for p := 0; p < 12; p++ {
		ts := NewTimeSeries(15 * time.Minute)
		for i := 0; i < 100+rng.Intn(100); i++ {
			ts.Add(time.Duration(rng.Int63n(int64(24*time.Hour))), 1+rng.Int63n(3))
		}
		parts = append(parts, ts)
	}

	fold := func(order []int) string {
		total := NewTimeSeries(15 * time.Minute)
		for _, i := range order {
			if err := total.Merge(parts[i]); err != nil {
				t.Fatalf("merge: %v", err)
			}
		}
		return sketchJSON(t, total)
	}

	base := make([]int, len(parts))
	for i := range base {
		base[i] = i
	}
	want := fold(base)
	for trial := 0; trial < 20; trial++ {
		order := rng.Perm(len(parts))
		if got := fold(order); got != want {
			t.Fatalf("merge order %v changed the series:\n got %s\nwant %s", order, got, want)
		}
	}
}

// TestTimeSeriesAddAndMerge covers bucketing, extension, totals and the
// width-mismatch guard.
func TestTimeSeriesAddAndMerge(t *testing.T) {
	ts := NewTimeSeries(time.Hour)
	ts.Add(30*time.Minute, 2)
	ts.Add(90*time.Minute, 1)
	ts.Add(-5*time.Minute, 1) // clamps into bucket 0
	if want := []int64{3, 1}; len(ts.Counts) != 2 || ts.Counts[0] != want[0] || ts.Counts[1] != want[1] {
		t.Fatalf("counts = %v, want %v", ts.Counts, want)
	}
	if ts.Sum() != 4 {
		t.Fatalf("sum = %d, want 4", ts.Sum())
	}

	longer := NewTimeSeries(time.Hour)
	longer.Add(5*time.Hour, 7)
	if err := ts.Merge(longer); err != nil {
		t.Fatalf("merge: %v", err)
	}
	if len(ts.Counts) != 6 || ts.Counts[5] != 7 {
		t.Fatalf("merge did not extend: %v", ts.Counts)
	}

	other := NewTimeSeries(time.Minute)
	other.Add(0, 1)
	if err := ts.Merge(other); err == nil {
		t.Fatal("merging different bucket widths succeeded")
	}
	if got := ts.Ints(); len(got) != 6 || got[0] != 3 {
		t.Fatalf("Ints() = %v", got)
	}
}
