package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{3, 1, 2, 4, 5})
	if c.Len() != 5 {
		t.Fatalf("Len = %d", c.Len())
	}
	if got := c.P(2); got != 0.4 {
		t.Errorf("P(2) = %v, want 0.4", got)
	}
	if got := c.P(0.5); got != 0 {
		t.Errorf("P(0.5) = %v, want 0", got)
	}
	if got := c.P(5); got != 1 {
		t.Errorf("P(5) = %v, want 1", got)
	}
	if c.Min() != 1 || c.Max() != 5 {
		t.Errorf("Min/Max = %v/%v", c.Min(), c.Max())
	}
	if got := c.Quantile(0.5); got != 3 {
		t.Errorf("median = %v, want 3", got)
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if c.P(1) != 0 {
		t.Error("empty CDF P != 0")
	}
	if !math.IsNaN(c.Quantile(0.5)) {
		t.Error("empty CDF quantile not NaN")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int{5, 5, 5, 3, 3, 9} {
		h.Add(v)
	}
	if h.Count(5) != 3 || h.Count(3) != 2 || h.Count(7) != 0 {
		t.Error("counts wrong")
	}
	if h.Fraction(5) != 0.5 {
		t.Errorf("Fraction(5) = %v", h.Fraction(5))
	}
	keys := h.Keys()
	if len(keys) != 3 || keys[0] != 3 || keys[2] != 9 {
		t.Errorf("Keys = %v", keys)
	}
	top := h.TopK(2)
	if top[0].Value != 5 || top[1].Value != 3 {
		t.Errorf("TopK = %v", top)
	}
	if got := h.TopK(10); len(got) != 3 {
		t.Errorf("TopK(10) len = %d", len(got))
	}
}

func TestLinearFit(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4}
	y := []float64{1, 3.5, 6, 8.5, 11} // slope 2.5, intercept 1
	slope, intercept, err := LinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(slope-2.5) > 1e-9 || math.Abs(intercept-1) > 1e-9 {
		t.Errorf("fit = (%v, %v)", slope, intercept)
	}
	if _, _, err := LinearFit([]float64{1}, []float64{2}); err == nil {
		t.Error("single point accepted")
	}
	if _, _, err := LinearFit([]float64{2, 2}, []float64{1, 5}); err == nil {
		t.Error("degenerate x accepted")
	}
}

// synthProcs generates observations from k timestamp processes at the
// given rates and returns the points, mimicking Figure 6's data.
func synthProcs(rng *rand.Rand, counts []int, rates []float64) []TSPoint {
	var points []TSPoint
	for i, n := range counts {
		offset := rng.Uint32()
		for j := 0; j < n; j++ {
			tsec := rng.Float64() * 3600 * 24 * 30 // a month of observations
			v := uint32(uint64(offset) + uint64(rates[i]*tsec))
			points = append(points, TSPoint{T: tsec, TSval: v})
		}
	}
	rng.Shuffle(len(points), func(i, j int) { points[i], points[j] = points[j], points[i] })
	return points
}

// TestClusterTSvals reproduces the Figure 6 analysis: seven 250 Hz
// processes (one dominant) and one small 1000 Hz process must be
// recoverable from the mixed observations.
func TestClusterTSvals(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	counts := []int{2000, 120, 90, 80, 60, 50, 40, 22}
	rates := []float64{250, 250, 250, 250, 250, 250, 250, 1000}
	points := synthProcs(rng, counts, rates)

	clusters := ClusterTSvals(points, []float64{250, 1000}, 5000)

	big := 0
	var rate1000 *TSCluster
	for i := range clusters {
		c := &clusters[i]
		if len(c.Points) >= 20 {
			big++
			if c.Rate == 1000 {
				rate1000 = c
			}
		}
	}
	if big != 8 {
		t.Errorf("found %d substantial clusters, want 8 (7×250Hz + 1×1000Hz)", big)
	}
	if rate1000 == nil {
		t.Fatal("1000 Hz cluster not found")
	}
	if len(rate1000.Points) != 22 {
		t.Errorf("1000 Hz cluster has %d points, want 22", len(rate1000.Points))
	}

	// The dominant cluster's measured rate should be almost exactly 250 Hz.
	dom := &clusters[0]
	got, err := dom.MeasuredRate()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-250) > 1 {
		t.Errorf("dominant cluster rate %.2f Hz, want ≈250", got)
	}
}

// TestClusterTSvalsWraparound covers sequences crossing 2^32 (the paper
// saw two wrap-arounds).
func TestClusterTSvalsWraparound(t *testing.T) {
	var points []TSPoint
	const rate = 250.0
	offset := uint32(math.MaxUint32 - 100000) // wraps within ~400 s
	for j := 0; j < 200; j++ {
		tsec := float64(j) * 10
		v := uint32(uint64(offset) + uint64(rate*tsec)) // natural wrap via uint32
		points = append(points, TSPoint{T: tsec, TSval: v})
	}
	clusters := ClusterTSvals(points, []float64{250}, 5000)
	if len(clusters[0].Points) != 200 {
		t.Fatalf("wrap split the cluster: %d of 200 points", len(clusters[0].Points))
	}
	got, err := clusters[0].MeasuredRate()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-250) > 1 {
		t.Errorf("rate across wrap %.2f, want 250", got)
	}
}

func TestSparkline(t *testing.T) {
	line := Sparkline([]int{0, 0, 5, 10, 0, 0}, 1)
	if len([]rune(line)) != 6 {
		t.Fatalf("length %d", len([]rune(line)))
	}
	if line[0] != ' ' {
		t.Error("zero bucket not blank")
	}
	if []rune(line)[3] != '@' {
		t.Errorf("max bucket glyph %q", line[3])
	}
	if got := Sparkline([]int{1, 2, 3, 4}, 2); len([]rune(got)) != 2 {
		t.Errorf("bucketing wrong: %q", got)
	}
	if got := Sparkline(nil, 0); got != "" {
		t.Errorf("empty input gave %q", got)
	}
}

func TestSPRTOneShotForDistinctiveProtocol(t *testing.T) {
	// Tor-like: the probe response is essentially unique to the protocol.
	s := &SPRT{
		H1: map[string]float64{"tor-handshake": 0.999, "other": 0.001},
		H0: map[string]float64{"other": 0.999},
	}
	if v := s.Observe("tor-handshake"); v != AcceptH1 {
		t.Errorf("verdict after one distinctive observation: %v", v)
	}
	if s.N() != 1 {
		t.Errorf("N = %d", s.N())
	}
}

func TestSPRTNeedsSetForStatisticalDifference(t *testing.T) {
	// Shadowsocks-stream-like: reactions differ from an innocuous server
	// only in proportions, so several observations are needed.
	rng := rand.New(rand.NewSource(3))
	h1 := map[string]float64{"RST": 13.0 / 16, "TIMEOUT": 2.0 / 16, "FIN": 1.0 / 16}
	h0 := map[string]float64{"RST": 0.3, "TIMEOUT": 0.4, "FIN": 0.1, "DATA": 0.2}
	draw := func(m map[string]float64) string {
		x := rng.Float64()
		acc := 0.0
		for k, p := range m {
			acc += p
			if x < acc {
				return k
			}
		}
		return "RST"
	}
	total, trials := 0, 200
	for i := 0; i < trials; i++ {
		s := &SPRT{H1: h1, H0: h0}
		for {
			if v := s.Observe(draw(h1)); v != Undecided {
				if v != AcceptH1 {
					t.Fatal("true H1 rejected")
				}
				break
			}
		}
		total += s.N()
	}
	mean := float64(total) / float64(trials)
	if mean < 2 || mean > 40 {
		t.Errorf("mean probes to confirm = %.1f, want a small set (>1)", mean)
	}
}

func TestSPRTRejectsInnocuous(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	h1 := map[string]float64{"TIMEOUT": 1.0}
	h0 := map[string]float64{"RST": 0.5, "DATA": 0.3, "TIMEOUT": 0.2}
	wrong := 0
	for i := 0; i < 100; i++ {
		s := &SPRT{H1: h1, H0: h0}
		for n := 0; n < 1000; n++ {
			x := rng.Float64()
			out := "RST"
			if x > 0.5 && x <= 0.8 {
				out = "DATA"
			} else if x > 0.8 {
				out = "TIMEOUT"
			}
			if v := s.Observe(out); v != Undecided {
				if v == AcceptH1 {
					wrong++
				}
				break
			}
		}
	}
	if wrong > 5 {
		t.Errorf("false positives: %d/100, want ≈ alpha", wrong)
	}
}

func TestSPRTNeverDecidesIdenticalHypotheses(t *testing.T) {
	h := map[string]float64{"TIMEOUT": 1.0}
	s := &SPRT{H1: h, H0: h}
	for i := 0; i < 500; i++ {
		if v := s.Observe("TIMEOUT"); v != Undecided {
			t.Fatalf("identical hypotheses decided at n=%d: %v", i+1, v)
		}
	}
}
