// Package stats provides the statistical tools the paper's analysis
// pipeline needs: empirical CDFs, histograms, linear fits (for TCP
// timestamp clock-rate estimation), and the sequence clustering used in
// §3.4 to show that probes from thousands of IP addresses share a handful
// of TCP timestamp processes.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// CDF is an empirical cumulative distribution over float64 samples.
type CDF struct {
	sorted []float64
}

// NewCDF builds a CDF from samples (copied and sorted).
func NewCDF(samples []float64) *CDF {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// Len returns the sample count.
func (c *CDF) Len() int { return len(c.sorted) }

// P returns the empirical fraction of samples <= x.
func (c *CDF) P(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-th quantile (0 <= q <= 1).
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	i := int(q * float64(len(c.sorted)))
	if i >= len(c.sorted) {
		i = len(c.sorted) - 1
	}
	return c.sorted[i]
}

// Min and Max return the extremes.
func (c *CDF) Min() float64 { return c.Quantile(0) }

// Max returns the largest sample.
func (c *CDF) Max() float64 { return c.Quantile(1) }

// Histogram counts integer-valued observations.
type Histogram struct {
	Counts map[int]int
	Total  int
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{Counts: map[int]int{}} }

// Add increments the bin for v.
func (h *Histogram) Add(v int) {
	h.Counts[v]++
	h.Total++
}

// Count returns the count in bin v.
func (h *Histogram) Count(v int) int { return h.Counts[v] }

// Fraction returns the share of observations in bin v.
func (h *Histogram) Fraction(v int) float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Counts[v]) / float64(h.Total)
}

// Keys returns the occupied bins, ascending.
func (h *Histogram) Keys() []int {
	out := make([]int, 0, len(h.Counts))
	for k := range h.Counts {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// TopK returns the k most frequent bins, by descending count (ties by
// ascending bin).
func (h *Histogram) TopK(k int) []struct{ Value, Count int } {
	type vc struct{ Value, Count int }
	all := make([]vc, 0, len(h.Counts))
	for v, c := range h.Counts {
		all = append(all, vc{v, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].Value < all[j].Value
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]struct{ Value, Count int }, k)
	for i := 0; i < k; i++ {
		out[i] = struct{ Value, Count int }{all[i].Value, all[i].Count}
	}
	return out
}

// LinearFit returns the least-squares slope and intercept of y against x.
func LinearFit(x, y []float64) (slope, intercept float64, err error) {
	if len(x) != len(y) || len(x) < 2 {
		return 0, 0, fmt.Errorf("stats: need >= 2 paired samples, got %d/%d", len(x), len(y))
	}
	n := float64(len(x))
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0, fmt.Errorf("stats: degenerate x values")
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	return slope, intercept, nil
}

// TSPoint is one (time, TCP timestamp) observation.
type TSPoint struct {
	T     float64 // seconds since the experiment start
	TSval uint32
}

// TSCluster is a group of TSPoints consistent with one timestamp process:
// a shared counter increasing at Rate Hz from a common origin.
type TSCluster struct {
	Rate   float64 // ticks per second (250 or 1000 in the paper's data)
	Offset float64 // TSval at T=0, unwrapped
	Points []TSPoint
}

// ClusterTSvals groups observations into timestamp processes. For each
// candidate clock rate it computes the wrap-adjusted origin offset
// (TSval - rate*T mod 2^32) of every point and clusters offsets within
// tol ticks. Points are assigned to the first candidate rate that admits
// them; remaining points form their own clusters. This mirrors the
// paper's Figure 6 analysis, which identified at least seven 250 Hz
// sequences plus one small 1000 Hz cluster.
func ClusterTSvals(points []TSPoint, rates []float64, tol float64) []TSCluster {
	const wrap = float64(1 << 32)
	remaining := append([]TSPoint(nil), points...)
	var clusters []TSCluster

	for _, rate := range rates {
		// Offset for each remaining point at this rate.
		type po struct {
			p   TSPoint
			off float64
		}
		var pos []po
		for _, p := range remaining {
			off := math.Mod(float64(p.TSval)-rate*p.T, wrap)
			if off < 0 {
				off += wrap
			}
			pos = append(pos, po{p, off})
		}
		sort.Slice(pos, func(i, j int) bool { return pos[i].off < pos[j].off })

		used := make([]bool, len(pos))
		for i := 0; i < len(pos); i++ {
			if used[i] {
				continue
			}
			// Grow a cluster of nearby offsets.
			members := []int{i}
			for j := i + 1; j < len(pos) && pos[j].off-pos[members[len(members)-1]].off <= tol; j++ {
				if !used[j] {
					members = append(members, j)
				}
			}
			// A real process produces repeated observations; singletons at
			// this rate get a chance at other rates or become leftovers.
			if len(members) < 2 {
				continue
			}
			c := TSCluster{Rate: rate, Offset: pos[members[0]].off}
			for _, m := range members {
				used[m] = true
				c.Points = append(c.Points, pos[m].p)
			}
			clusters = append(clusters, c)
		}
		// Keep only unassigned points for the next rate.
		var next []TSPoint
		for k, p := range pos {
			if !used[k] {
				next = append(next, p.p)
			}
		}
		remaining = next
	}
	for _, p := range remaining {
		clusters = append(clusters, TSCluster{Rate: 0, Offset: float64(p.TSval), Points: []TSPoint{p}})
	}
	sort.Slice(clusters, func(i, j int) bool { return len(clusters[i].Points) > len(clusters[j].Points) })
	return clusters
}

// MeasuredRate fits the cluster's own points to estimate its actual clock
// rate — the paper measured "almost exactly 250 Hz" this way.
func (c *TSCluster) MeasuredRate() (float64, error) {
	if len(c.Points) < 2 {
		return 0, fmt.Errorf("stats: cluster too small to fit")
	}
	// Unwrap TSvals relative to the first point, in time order.
	sort.Slice(c.Points, func(i, j int) bool { return c.Points[i].T < c.Points[j].T })
	const wrap = float64(1 << 32)
	x := make([]float64, len(c.Points))
	y := make([]float64, len(c.Points))
	base := float64(c.Points[0].TSval)
	prev := base
	unwrapped := base
	for i, p := range c.Points {
		v := float64(p.TSval)
		d := v - prev
		if d < -wrap/2 {
			d += wrap
		}
		unwrapped += d
		prev = v
		x[i] = p.T
		y[i] = unwrapped
	}
	slope, _, err := LinearFit(x, y)
	return slope, err
}

// Sparkline renders values as a one-line ASCII intensity plot, for
// terminal figure rendering. Each glyph covers `bucket` consecutive
// values (summed).
func Sparkline(values []int, bucket int) string {
	if bucket < 1 {
		bucket = 1
	}
	glyphs := []rune(" .:-=+*#%@")
	var sums []int
	maxSum := 1
	for i := 0; i < len(values); i += bucket {
		s := 0
		for j := i; j < i+bucket && j < len(values); j++ {
			s += values[j]
		}
		sums = append(sums, s)
		if s > maxSum {
			maxSum = s
		}
	}
	out := make([]rune, len(sums))
	for i, s := range sums {
		idx := s * (len(glyphs) - 1) / maxSum
		out[i] = glyphs[idx]
	}
	return string(out)
}

// SPRT is Wald's sequential probability ratio test over categorical
// observations: after each observation the accumulated log-likelihood
// ratio is compared against thresholds derived from the desired error
// rates. The paper's observation that the GFW needs one probe to confirm
// Tor but a set of several for Shadowsocks (§5.2.2) is exactly the
// behaviour of such a test: expected sample size scales inversely with
// the per-observation KL divergence between the hypotheses.
type SPRT struct {
	// H1 and H0 give each outcome's probability under "target protocol"
	// and "innocuous server" respectively. Outcomes missing from a map
	// get a small floor probability.
	H1, H0 map[string]float64
	// Alpha is the false-positive and Beta the false-negative bound
	// (defaults 0.01).
	Alpha, Beta float64

	llr float64
	n   int
}

// sprtFloor avoids infinite ratios for outcomes a hypothesis deems
// impossible; real test designers smooth the same way.
const sprtFloor = 1e-4

// Verdict is the test's state.
type Verdict int

const (
	// Undecided: keep probing.
	Undecided Verdict = iota
	// AcceptH1: the server matches the target protocol.
	AcceptH1
	// AcceptH0: the server is innocuous.
	AcceptH0
)

func (s *SPRT) prob(m map[string]float64, outcome string) float64 {
	if p, ok := m[outcome]; ok && p > 0 {
		return p
	}
	return sprtFloor
}

// Observe folds in one outcome and returns the current verdict.
func (s *SPRT) Observe(outcome string) Verdict {
	alpha, beta := s.Alpha, s.Beta
	if alpha <= 0 {
		alpha = 0.01
	}
	if beta <= 0 {
		beta = 0.01
	}
	s.n++
	s.llr += math.Log(s.prob(s.H1, outcome) / s.prob(s.H0, outcome))
	upper := math.Log((1 - beta) / alpha)
	lower := math.Log(beta / (1 - alpha))
	switch {
	case s.llr >= upper:
		return AcceptH1
	case s.llr <= lower:
		return AcceptH0
	default:
		return Undecided
	}
}

// N returns the number of observations consumed.
func (s *SPRT) N() int { return s.n }

// Reset clears the accumulated evidence.
func (s *SPRT) Reset() { s.llr, s.n = 0, 0 }
