package seedfork_test

import (
	"testing"

	"sslab/internal/analysis/analysistest"
	"sslab/internal/analysis/seedfork"
)

func TestSeedfork(t *testing.T) {
	analysistest.Run(t, "testdata", seedfork.Analyzer)
}
