// Fixtures for the seedfork analyzer: arithmetic on seed-named values
// and arithmetic-seeded PRNG construction are violations; seeds derived
// through Fork (or used untouched) are clean.
package fixtures

import "math/rand"

// Fork stands in for sslab/internal/seedfork.Fork — the analyzer
// recognizes the laundering point by name, so fixtures stay
// self-contained.
func Fork(parent int64, label string, idx ...int64) int64 { return parent }

type config struct {
	Seed int64
}

func offsetChild(cfg config) *rand.Rand {
	return rand.New(rand.NewSource(cfg.Seed + 1)) // want `arithmetic on seed "Seed"`
}

func offsetLocal(seed int64, i int) int64 {
	return seed + int64(i)*77 // want `arithmetic on seed "seed"`
}

func xorChild(baseSeed int64) int64 {
	return baseSeed ^ 0x9e37 // want `arithmetic on seed "baseSeed"`
}

func arithmeticallySeeded(i int) *rand.Rand {
	return rand.New(rand.NewSource(int64(i) * 77)) // want `PRNG seeded from an arithmetic expression`
}

func forked(cfg config, i int) *rand.Rand {
	return rand.New(rand.NewSource(Fork(cfg.Seed, "fixture.component", int64(i)))) // ok: flows from Fork
}

func directSeed(cfg config) *rand.Rand {
	return rand.New(rand.NewSource(cfg.Seed)) // ok: the root seed, untouched
}

func comparison(seed int64) bool {
	return seed < 500 // ok: comparing, not deriving
}

func loopOverSeeds(run func(int64)) {
	for seed := int64(0); seed < 8; seed++ { // ok: iteration, not derivation
		run(seed)
	}
}

func nonIntegerName(seedCorpus []string) string {
	return seedCorpus[0] + "x" // ok: not an integer seed
}

func allowedOffset(seed int64) int64 {
	//sslab:allow-seedfork historical stream pinned by goldens; do not re-derive
	return seed + 9
}
