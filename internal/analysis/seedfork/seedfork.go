// Package seedfork enforces the repository's seed-derivation rule:
// child seeds are derived with seedfork.Fork(parent, label, idx...),
// never with arithmetic on a parent seed. Ad-hoc offsets (cfg.Seed+7,
// seed+int64(i)*77) collide as soon as two call sites pick overlapping
// offsets — a sweep over a seed list and a parameter grid makes such
// collisions inevitable — and a collision silently correlates two
// "independent" random streams, which skews exactly the tail statistics
// the paper's figures report. The rule used to live only in
// CONTRIBUTING.md prose; this analyzer makes it mechanical.
package seedfork

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"sslab/internal/analysis"
)

// Analyzer flags arithmetic on seed-named integers and PRNG seeding
// expressions that mix arithmetic without flowing through seedfork.Fork.
var Analyzer = &analysis.Analyzer{
	Name: "seedfork",
	Doc: "forbid deriving child seeds by arithmetic on a parent seed; " +
		"derive them with seedfork.Fork(parent, label, idx...) so streams " +
		"never collide across components, grid cells and shards",
	Scope: []string{
		// The deterministic packages of the detrand scope, except
		// internal/seedfork itself (the one place allowed to mix seed
		// bits — that is its job). The crypto packages stay out too:
		// their test-vector key/nonce "seeds" are fixtures, not PRNG
		// stream identities.
		"sslab",
		"sslab/cmd/...",
		"sslab/internal/bloom",
		"sslab/internal/campaign",
		"sslab/internal/capture",
		"sslab/internal/defense",
		"sslab/internal/detector",
		"sslab/internal/entropy",
		"sslab/internal/experiment",
		"sslab/internal/fleet",
		"sslab/internal/gfw",
		"sslab/internal/metrics",
		"sslab/internal/netsim",
		"sslab/internal/probe",
		"sslab/internal/probesim",
		"sslab/internal/reaction",
		"sslab/internal/replay",
		"sslab/internal/stats",
		"sslab/internal/trafficgen",
	},
	IncludeTests: true,
	Run:          run,
}

// arithmeticOps are the binary operators that derive a new value from a
// seed. Comparisons are fine (iterating over a seed range is how sweeps
// work); only derivation is the hazard.
var arithmeticOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true, token.MUL: true, token.QUO: true,
	token.REM: true, token.XOR: true, token.AND: true, token.OR: true,
	token.SHL: true, token.SHR: true, token.AND_NOT: true,
}

// seedCtors are the math/rand constructors whose argument is a seed.
var seedCtors = map[string]map[string]bool{
	"math/rand":    {"NewSource": true},
	"math/rand/v2": {"NewPCG": true, "NewChaCha8": true},
}

func run(pass *analysis.Pass) error {
	reported := map[token.Pos]bool{}
	report := func(pos token.Pos, format string, args ...any) {
		if !reported[pos] {
			reported[pos] = true
			pass.Reportf(pos, format, args...)
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if !arithmeticOps[n.Op] {
					return true
				}
				for _, side := range [2]ast.Expr{n.X, n.Y} {
					if name, ok := seedishOperand(pass, side); ok {
						report(n.OpPos,
							"arithmetic on seed %q derives a child seed by offset, which collides across call sites; use seedfork.Fork(parent, label, idx...)", name)
						break
					}
				}
			case *ast.CallExpr:
				if !isSeedCtor(pass, n) {
					return true
				}
				for _, arg := range n.Args {
					if flowsFromFork(arg) {
						continue
					}
					op := firstArithmetic(pass, arg)
					if op == nil {
						continue
					}
					// Prefer the seed-name diagnostic when it applies: the
					// BinaryExpr case would report the same position later,
					// but this call is visited first.
					if name, ok := seedishOperand(pass, op.X); ok {
						report(op.OpPos,
							"arithmetic on seed %q derives a child seed by offset, which collides across call sites; use seedfork.Fork(parent, label, idx...)", name)
					} else if name, ok := seedishOperand(pass, op.Y); ok {
						report(op.OpPos,
							"arithmetic on seed %q derives a child seed by offset, which collides across call sites; use seedfork.Fork(parent, label, idx...)", name)
					} else {
						report(op.OpPos,
							"PRNG seeded from an arithmetic expression; derive the seed with seedfork.Fork(parent, label, idx...) instead")
					}
				}
			}
			return true
		})
	}
	return nil
}

// seedishOperand reports whether e is an integer-typed identifier or
// selector whose name looks like a seed ("seed", "Seed", "baseSeed",
// "cfg.Seed", "seedOff"). The integer requirement keeps byte-slice and
// string names like "seedCorpus" out.
func seedishOperand(pass *analysis.Pass, e ast.Expr) (string, bool) {
	var name string
	switch e := e.(type) {
	case *ast.Ident:
		name = e.Name
	case *ast.SelectorExpr:
		name = e.Sel.Name
	default:
		return "", false
	}
	if !strings.Contains(strings.ToLower(name), "seed") {
		return "", false
	}
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return "", false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		return "", false
	}
	return name, true
}

// isSeedCtor reports whether call constructs a PRNG source from a seed
// argument (math/rand NewSource, math/rand/v2 NewPCG/NewChaCha8, or any
// SplitMix-style helper by name).
func isSeedCtor(pass *analysis.Pass, call *ast.CallExpr) bool {
	for path, names := range seedCtors {
		if name, _, ok := pass.PkgFunc(call, path); ok && names[name] {
			return true
		}
	}
	// Inline SplitMix-style seeding helpers (the fleet engine's per-user
	// PRNG) are recognized by name, wherever they live.
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return strings.Contains(strings.ToLower(fun.Name), "splitmix")
	case *ast.SelectorExpr:
		return strings.Contains(strings.ToLower(fun.Sel.Name), "splitmix")
	}
	return false
}

// flowsFromFork reports whether the expression contains a call to a
// function named Fork — the laundering point that makes any downstream
// arithmetic (a conversion, a cast) acceptable.
func flowsFromFork(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if fun.Name == "Fork" {
				found = true
			}
		case *ast.SelectorExpr:
			if fun.Sel.Name == "Fork" {
				found = true
			}
		}
		return !found
	})
	return found
}

// firstArithmetic returns the first integer arithmetic BinaryExpr inside
// e, or nil.
func firstArithmetic(pass *analysis.Pass, e ast.Expr) *ast.BinaryExpr {
	var found *ast.BinaryExpr
	ast.Inspect(e, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		b, ok := n.(*ast.BinaryExpr)
		if !ok || !arithmeticOps[b.Op] {
			return true
		}
		tv, ok := pass.Info.Types[b.X]
		if ok && tv.Type != nil {
			if basic, ok := tv.Type.Underlying().(*types.Basic); ok && basic.Info()&types.IsInteger != 0 {
				found = b
				return false
			}
		}
		return true
	})
	return found
}
