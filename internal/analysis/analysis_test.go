package analysis

import (
	"go/ast"
	"os"
	"path/filepath"
	"testing"
)

// writeModule lays out a throwaway module for loader tests.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, src := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// callCounter reports every function call — enough to exercise loading,
// scoping and suppression end to end.
var callCounter = &Analyzer{
	Name:         "callcount",
	Doc:          "reports every call expression (test analyzer)",
	IncludeTests: true,
	Run: func(pass *Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					pass.Reportf(call.Pos(), "call expression")
				}
				return true
			})
		}
		return nil
	},
}

func TestLoaderAndSuppression(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module example.test/m\n\ngo 1.22\n",
		"a/a.go": `package a

func f() int { return 0 }

func g() int {
	return f() // finding 1
}

func h() int {
	//sslab:allow-callcount justified above
	return f()
}

func i() int {
	return f() //sslab:allow-callcount justified inline
}
`,
		"a/a_test.go": `package a

func fromTest() int {
	return f() // finding 2 (test files included)
}
`,
		// b imports a, exercising module-internal import resolution.
		"b/b.go": `package b

import "example.test/m/a"

var V = a.F2

`,
		"a/exported.go": `package a

func F2() int { return 0 }
`,
	})

	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d packages, want 2 (a and b)", len(pkgs))
	}

	diags, err := Run([]*Analyzer{callCounter}, pkgs)
	if err != nil {
		t.Fatal(err)
	}
	// Expected: f() in g, f() in a_test.go. Suppressed: h (line above),
	// i (inline). b has no calls.
	if len(diags) != 2 {
		for _, d := range diags {
			t.Logf("got: %s", d)
		}
		t.Fatalf("got %d diagnostics, want 2", len(diags))
	}
	for _, d := range diags {
		if d.Analyzer != "callcount" {
			t.Errorf("diagnostic from %q, want callcount", d.Analyzer)
		}
	}
}

func TestScope(t *testing.T) {
	a := &Analyzer{Name: "x", Scope: []string{"mod/internal/gfw"}}
	for path, want := range map[string]bool{
		"mod/internal/gfw":        true,
		"mod/internal/gfw/sub":    false, // exact entries do not match subtrees
		"mod/internal/gfwother":   false,
		"mod/internal/experiment": false,
	} {
		if got := a.AppliesTo(path); got != want {
			t.Errorf("AppliesTo(%q) = %v, want %v", path, got, want)
		}
	}
	tree := &Analyzer{Name: "x", Scope: []string{"mod/cmd/..."}}
	for path, want := range map[string]bool{
		"mod/cmd":          true,
		"mod/cmd/tool":     true,
		"mod/cmdother":     false,
		"mod/internal/gfw": false,
	} {
		if got := tree.AppliesTo(path); got != want {
			t.Errorf("subtree AppliesTo(%q) = %v, want %v", path, got, want)
		}
	}
	unscoped := &Analyzer{Name: "y"}
	if !unscoped.AppliesTo("anything/at/all") {
		t.Error("empty scope must match every package")
	}
}

func TestExternalTestPackage(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module example.test/m\n\ngo 1.22\n",
		"a/a.go": `package a

func F() int { return 0 }
`,
		"a/ext_test.go": `package a_test

import "example.test/m/a"

var _ = a.F() // finding (external test package)
`,
	})
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	// a plus its external test package, both under path example.test/m/a.
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d packages, want 2", len(pkgs))
	}
	diags, err := Run([]*Analyzer{callCounter}, pkgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1 (the call in ext_test.go)", len(diags))
	}
}
