package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the package's import path (for analyzer scoping). An
	// external test package (package foo_test) is loaded as its own
	// Package with the same Path as the package under test.
	Path string
	// Dir is the package directory on disk.
	Dir  string
	Fset *token.FileSet
	// Files are the non-test syntax trees; TestFiles the _test.go trees
	// type-checked together with them.
	Files     []*ast.File
	TestFiles []*ast.File
	Types     *types.Package
	Info      *types.Info
}

// Loader resolves package patterns against one module, parses and
// type-checks them with full test files, and type-checks dependencies
// (module-internal ones from source on disk, everything else — i.e. the
// standard library, the module's only external dependency surface —
// through go/importer's source importer, which needs no network and no
// pre-compiled export data).
type Loader struct {
	fset    *token.FileSet
	modRoot string
	modPath string
	std     types.Importer
	deps    map[string]*types.Package
	loading map[string]bool
}

// NewLoader creates a Loader for the module rooted at modRoot (the
// directory containing go.mod).
func NewLoader(modRoot string) (*Loader, error) {
	abs, err := filepath.Abs(modRoot)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		fset:    fset,
		modRoot: abs,
		modPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		deps:    map[string]*types.Package{},
		loading: map[string]bool{},
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("%s: no module directive", gomod)
}

// Import implements types.Importer. Module-internal packages are
// type-checked from source (without test files); all other paths are
// delegated to the standard library's source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		return l.importDep(path)
	}
	return l.std.Import(path)
}

func (l *Loader) importDep(path string) (*types.Package, error) {
	if pkg, ok := l.deps[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := filepath.Join(l.modRoot, filepath.FromSlash(strings.TrimPrefix(path, l.modPath)))
	files, _, _, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	pkg, _, err := l.check(path, files, nil)
	if err != nil {
		return nil, err
	}
	l.deps[path] = pkg
	return pkg, nil
}

// parseDir parses the .go files of one directory into non-test,
// in-package test, and external test file groups.
func (l *Loader) parseDir(dir string) (files, inTests, extTests []*ast.File, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasPrefix(e.Name(), ".") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, nil, err
		}
		switch {
		case !strings.HasSuffix(name, "_test.go"):
			files = append(files, f)
		case strings.HasSuffix(f.Name.Name, "_test"):
			extTests = append(extTests, f)
		default:
			inTests = append(inTests, f)
		}
	}
	return files, inTests, extTests, nil
}

// check type-checks one package's files (plus optional in-package test
// files) and returns the types.Package and filled-in Info.
func (l *Loader) check(path string, files, testFiles []*ast.File) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var errs []error
	cfg := &types.Config{
		Importer: l,
		Error:    func(err error) { errs = append(errs, err) },
	}
	all := append(append([]*ast.File(nil), files...), testFiles...)
	pkg, _ := cfg.Check(path, l.fset, all, info)
	if len(errs) > 0 {
		msg := make([]string, 0, 4)
		for i, e := range errs {
			if i == 3 {
				msg = append(msg, fmt.Sprintf("... and %d more", len(errs)-3))
				break
			}
			msg = append(msg, e.Error())
		}
		return nil, nil, fmt.Errorf("type-checking %s:\n\t%s", path, strings.Join(msg, "\n\t"))
	}
	return pkg, info, nil
}

// Load resolves patterns ("./...", "dir/...", a directory, or an import
// path within the module) into fully loaded Packages. External test
// packages come back as additional Package entries sharing the tested
// package's Path.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirSet := map[string]bool{}
	var dirs []string
	addDir := func(dir string) {
		if !dirSet[dir] {
			dirSet[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			walked, err := l.walk(l.modRoot)
			if err != nil {
				return nil, err
			}
			for _, d := range walked {
				addDir(d)
			}
		case strings.HasSuffix(pat, "/..."):
			root := l.resolveDir(strings.TrimSuffix(pat, "/..."))
			walked, err := l.walk(root)
			if err != nil {
				return nil, err
			}
			for _, d := range walked {
				addDir(d)
			}
		default:
			addDir(l.resolveDir(pat))
		}
	}

	var pkgs []*Package
	for _, dir := range dirs {
		loaded, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, loaded...)
	}
	return pkgs, nil
}

// resolveDir maps a pattern element to a directory: an absolute path, a
// module-relative path, or an import path under the module.
func (l *Loader) resolveDir(pat string) string {
	if filepath.IsAbs(pat) {
		return filepath.Clean(pat)
	}
	if pat == l.modPath || strings.HasPrefix(pat, l.modPath+"/") {
		return filepath.Join(l.modRoot, filepath.FromSlash(strings.TrimPrefix(pat, l.modPath)))
	}
	return filepath.Join(l.modRoot, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
}

// walk collects every directory under root that contains .go files,
// skipping testdata, hidden, and VCS directories.
func (l *Loader) walk(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") && !strings.HasPrefix(d.Name(), ".") {
			dirs = append(dirs, filepath.Dir(path))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	uniq := dirs[:0]
	for i, d := range dirs {
		if i == 0 || dirs[i-1] != d {
			uniq = append(uniq, d)
		}
	}
	return uniq, nil
}

// importPathFor maps a directory inside the module to its import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.modRoot, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("%s is outside module %s", dir, l.modRoot)
	}
	if rel == "." {
		return l.modPath, nil
	}
	return l.modPath + "/" + filepath.ToSlash(rel), nil
}

// loadDir loads the package in one directory: the primary package
// (type-checked together with its in-package test files) and, if
// present, the external test package.
func (l *Loader) loadDir(dir string) ([]*Package, error) {
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	files, inTests, extTests, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 && len(inTests) == 0 && len(extTests) == 0 {
		return nil, nil
	}
	var pkgs []*Package
	if len(files) > 0 || len(inTests) > 0 {
		tpkg, info, err := l.check(path, files, inTests)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, &Package{
			Path: path, Dir: dir, Fset: l.fset,
			Files: files, TestFiles: inTests,
			Types: tpkg, Info: info,
		})
	}
	if len(extTests) > 0 {
		tpkg, info, err := l.check(path+"_test", nil, extTests)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, &Package{
			Path: path, Dir: dir, Fset: l.fset,
			TestFiles: extTests,
			Types:     tpkg, Info: info,
		})
	}
	return pkgs, nil
}
