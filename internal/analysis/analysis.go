// Package analysis is a self-contained static-analysis framework in the
// spirit of golang.org/x/tools/go/analysis, built only on the standard
// library (the module has zero external dependencies by design). It
// exists to machine-check the invariants the paper reproduction rests
// on: the simulator must stay deterministic (seeded PRNGs, virtual
// clock), the Shadowsocks implementations must draw salts/IVs/keys from
// crypto/rand, and packet-path write errors must not be dropped.
//
// An Analyzer inspects one type-checked package at a time and reports
// Diagnostics. Analyzers are scoped to exact import paths (with a
// pkg/... form for subtrees) so that, for example, the simulated-clock
// rule applies to the discrete-event simulator but not to the
// real-network Shadowsocks servers.
//
// Findings can be suppressed line-by-line with a justification comment:
//
//	conn.Write(reply) //sslab:allow-errpropagate best-effort reply before failing
//
// or on the line immediately above the offending one. The suppression
// names one analyzer; unrelated diagnostics on the same line still fire.
// See CONTRIBUTING.md for the policy on when suppression is acceptable.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //sslab:allow-<name> suppression comments.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces
	// and why.
	Doc string
	// Scope lists the import paths the analyzer applies to when run over
	// the repository. An entry matches exactly; an entry ending in /...
	// matches the package and its whole subtree ("sslab/cmd/..." covers
	// every command). Empty means every package. Test harnesses bypass
	// scoping and run the analyzer on whatever they load.
	Scope []string
	// IncludeTests selects whether _test.go files are analyzed.
	IncludeTests bool
	// Run inspects one package and reports findings via pass.Reportf.
	Run func(pass *Pass) error
}

// AppliesTo reports whether pkgPath falls under the analyzer's scope.
func (a *Analyzer) AppliesTo(pkgPath string) bool {
	if len(a.Scope) == 0 {
		return true
	}
	for _, entry := range a.Scope {
		if base, ok := strings.CutSuffix(entry, "/..."); ok {
			if pkgPath == base || strings.HasPrefix(pkgPath, base+"/") {
				return true
			}
			continue
		}
		if pkgPath == entry {
			return true
		}
	}
	return false
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the syntax trees to inspect (test files already filtered
	// according to Analyzer.IncludeTests).
	Files []*ast.File
	// Pkg and Info hold full type information for the package.
	Pkg  *types.Package
	Info *types.Info

	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// PkgNameOf resolves an identifier to the imported package it names, or
// nil if the identifier is not an import reference (e.g. a local
// variable shadowing the name). This is what makes the analyzers robust
// against renamed imports and shadowing, unlike a grep.
func (p *Pass) PkgNameOf(id *ast.Ident) *types.PkgName {
	if obj, ok := p.Info.Uses[id]; ok {
		if pn, ok := obj.(*types.PkgName); ok {
			return pn
		}
	}
	return nil
}

// PkgFunc reports whether call invokes the package-level function
// pkgPath.name (resolved through type information, so renamed imports
// and shadowed identifiers are handled). It returns the selector
// identifier for precise diagnostic positions.
func (p *Pass) PkgFunc(call *ast.CallExpr, pkgPath string) (name string, sel *ast.SelectorExpr, ok bool) {
	se, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", nil, false
	}
	base, isIdent := se.X.(*ast.Ident)
	if !isIdent {
		return "", nil, false
	}
	pn := p.PkgNameOf(base)
	if pn == nil || pn.Imported().Path() != pkgPath {
		return "", nil, false
	}
	return se.Sel.Name, se, true
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Result is the full outcome of a multichecker run: the surviving
// diagnostics, the diagnostics waived by //sslab:allow-* directives
// (the -json mode reports both, so CI can diff the complete finding
// set across runs), and the stale directives that name no registered
// analyzer and therefore suppress nothing.
type Result struct {
	Diags      []Diagnostic
	Suppressed []Diagnostic
	Stale      []Directive
}

// Run applies every analyzer (subject to its scope) to every package and
// returns the surviving diagnostics, sorted by position. Suppressed
// findings are dropped here so every front end (CLI, tests) shares the
// same //sslab:allow-* semantics.
func Run(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	res, err := RunDetailed(analyzers, nil, pkgs)
	if err != nil {
		return nil, err
	}
	return res.Diags, nil
}

// RunDetailed is Run plus the waived findings and stale directives.
// known lists every registered analyzer name for directive validation;
// nil derives it from analyzers. Pass the full registry when running a
// subset (-only), so a directive for an analyzer that merely isn't
// selected is not misreported as stale.
func RunDetailed(analyzers []*Analyzer, known []string, pkgs []*Package) (*Result, error) {
	knownSet := map[string]bool{}
	if known == nil {
		for _, a := range analyzers {
			knownSet[a.Name] = true
		}
	} else {
		for _, name := range known {
			knownSet[name] = true
		}
	}
	res := &Result{}
	for _, pkg := range pkgs {
		// Scan directives once per package over every file (including
		// test files): staleness is a property of the directive, not of
		// whichever analyzers happen to be selected or scoped here.
		allFiles := append(append([]*ast.File(nil), pkg.Files...), pkg.TestFiles...)
		sup, dirs := scanDirectives(pkg.Fset, allFiles, knownSet)
		for _, d := range dirs {
			if !d.Known {
				res.Stale = append(res.Stale, d)
			}
		}
		for _, a := range analyzers {
			if !a.AppliesTo(pkg.Path) {
				continue
			}
			kept, waived, err := runOne(a, pkg, sup)
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err)
			}
			res.Diags = append(res.Diags, kept...)
			res.Suppressed = append(res.Suppressed, waived...)
		}
	}
	sortDiags(res.Diags)
	sortDiags(res.Suppressed)
	sort.Slice(res.Stale, func(i, j int) bool {
		a, b := res.Stale[i], res.Stale[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return res, nil
}

func sortDiags(out []Diagnostic) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// RunPackage applies one analyzer to an already-loaded package,
// bypassing scope but honoring //sslab:allow-* suppressions. It is the
// entry point the analysistest harness uses, so fixtures exercise the
// exact suppression semantics the CLI applies.
func RunPackage(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	files := append(append([]*ast.File(nil), pkg.Files...), pkg.TestFiles...)
	sup, _ := scanDirectives(pkg.Fset, files, map[string]bool{a.Name: true})
	kept, _, err := runOne(a, pkg, sup)
	return kept, err
}

// runOne applies a single analyzer to a single package and splits its
// diagnostics into kept and suppressed against the package's directive
// set.
func runOne(a *Analyzer, pkg *Package, sup suppressionSet) (kept, suppressed []Diagnostic, err error) {
	files := pkg.Files
	if a.IncludeTests {
		files = append(append([]*ast.File(nil), pkg.Files...), pkg.TestFiles...)
	}
	pass := &Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
	}
	if err := a.Run(pass); err != nil {
		return nil, nil, err
	}
	for _, d := range pass.diags {
		if sup.allows(a.Name, d.Pos) {
			suppressed = append(suppressed, d)
		} else {
			kept = append(kept, d)
		}
	}
	return kept, suppressed, nil
}
