// Package optorder enforces the functional-options convention that
// CONTRIBUTING.md specifies in prose. Three rules, all mechanical:
//
//   - A constructor taking ...Option must apply every option before
//     reading the configured state. A read before the apply loop bakes
//     a decision on pre-option defaults, which is exactly the bug class
//     options were adopted to kill (the caller sets WithX and nothing
//     changes).
//
//   - An exported With* helper in a package that declares an Option
//     type must return that Option type (or an alias ending in
//     "Option"), not a bare func literal type — bare funcs do not
//     compose across the facade's re-exports.
//
//   - A New* constructor in an Option-declaring package must not take a
//     positional knob that it zero-defaults (`if p <= 0 { p = ... }`):
//     a defaulted parameter is an option wearing a positional disguise,
//     and every new knob added next to it grows the signature again.
package optorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"sslab/internal/analysis"
)

// Analyzer enforces the constructor-options convention.
var Analyzer = &analysis.Analyzer{
	Name: "optorder",
	Doc: "constructors taking ...Option must apply options before reading " +
		"config; exported With* helpers must return the package Option type; " +
		"constructors must not zero-default positional knobs",
	Scope: []string{
		"sslab",
		"sslab/internal/campaign",
		"sslab/internal/capture",
		"sslab/internal/defense",
		"sslab/internal/detector",
		"sslab/internal/entropy",
		"sslab/internal/experiment",
		"sslab/internal/fleet",
		"sslab/internal/gfw",
		"sslab/internal/metrics",
		"sslab/internal/netsim",
		"sslab/internal/probesim",
		"sslab/internal/reaction",
		"sslab/internal/replay",
		"sslab/internal/trafficgen",
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	hasOptionType := declaresOptionType(pass.Files)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv != nil {
				continue
			}
			checkApplyOrder(pass, fd)
			if hasOptionType {
				checkWithReturn(pass, fd)
				checkZeroDefault(pass, fd)
			}
		}
	}
	return nil
}

// declaresOptionType reports whether any file declares a type whose
// name ends in "Option" (including aliases, as in the root facade).
func declaresOptionType(files []*ast.File) bool {
	for _, f := range files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if ok && strings.HasSuffix(ts.Name.Name, "Option") {
					return true
				}
			}
		}
	}
	return false
}

// checkApplyOrder enforces rule A on constructors with a variadic
// option parameter: no read of the option target before the apply loop.
func checkApplyOrder(pass *analysis.Pass, fd *ast.FuncDecl) {
	optParam := variadicOptionParam(fd)
	if optParam == nil {
		return
	}
	loop, target := findApplyLoop(pass, fd.Body, optParam)
	if loop == nil || target == nil {
		return
	}
	// Writes (assignment LHS) before the loop set defaults that options
	// then override — that is the convention, not a violation. Only
	// reads are flagged.
	writes := map[token.Pos]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			if se, ok := lhs.(*ast.SelectorExpr); ok {
				writes[se.Pos()] = true
			}
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		se, ok := n.(*ast.SelectorExpr)
		if !ok || se.End() >= loop.Pos() || writes[se.Pos()] {
			return true
		}
		id, ok := se.X.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := pass.Info.Uses[id]; obj != nil && obj == target {
			pass.Reportf(se.Pos(),
				"constructor %s reads %s.%s before applying its options; apply the option loop first so WithX calls are not silently ignored",
				fd.Name.Name, id.Name, se.Sel.Name)
		}
		return true
	})
}

// variadicOptionParam returns the field of fd's final parameter if it
// is variadic with an element type named *Option, else nil.
func variadicOptionParam(fd *ast.FuncDecl) *ast.Field {
	params := fd.Type.Params
	if params == nil || len(params.List) == 0 {
		return nil
	}
	last := params.List[len(params.List)-1]
	ell, ok := last.Type.(*ast.Ellipsis)
	if !ok {
		return nil
	}
	if strings.HasSuffix(terminalTypeName(ell.Elt), "Option") {
		return last
	}
	return nil
}

// findApplyLoop locates `for _, o := range opts { o(&cfg) }` (or
// o.apply(&cfg)) and returns the loop plus the object of the config
// variable the options mutate.
func findApplyLoop(pass *analysis.Pass, body *ast.BlockStmt, optParam *ast.Field) (*ast.RangeStmt, types.Object) {
	if len(optParam.Names) == 0 {
		return nil, nil
	}
	optObj := pass.Info.Defs[optParam.Names[0]]
	var loop *ast.RangeStmt
	var target types.Object
	ast.Inspect(body, func(n ast.Node) bool {
		if loop != nil {
			return false
		}
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if id, ok := rng.X.(*ast.Ident); !ok || pass.Info.Uses[id] != optObj {
			return true
		}
		valueID, _ := rng.Value.(*ast.Ident)
		if valueID == nil {
			return true
		}
		valueObj := pass.Info.Defs[valueID]
		ast.Inspect(rng.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			applied := false
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				applied = pass.Info.Uses[fun] == valueObj
			case *ast.SelectorExpr:
				if x, ok := fun.X.(*ast.Ident); ok {
					applied = pass.Info.Uses[x] == valueObj
				}
			}
			if !applied {
				return true
			}
			arg := call.Args[0]
			if ue, ok := arg.(*ast.UnaryExpr); ok && ue.Op == token.AND {
				arg = ue.X
			}
			if id, ok := arg.(*ast.Ident); ok {
				if obj := pass.Info.Uses[id]; obj != nil {
					loop, target = rng, obj
				}
			}
			return false
		})
		return loop == nil
	})
	return loop, target
}

// checkWithReturn enforces rule B: exported With* helpers return a type
// whose (syntactic) name ends in "Option".
func checkWithReturn(pass *analysis.Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	if !strings.HasPrefix(name, "With") || !ast.IsExported(name) {
		return
	}
	results := fd.Type.Results
	if results == nil || results.NumFields() != 1 {
		pass.Reportf(fd.Name.Pos(),
			"exported option helper %s must return exactly the package's Option type", name)
		return
	}
	ret := results.List[0].Type
	if !strings.HasSuffix(terminalTypeName(ret), "Option") {
		pass.Reportf(fd.Name.Pos(),
			"exported option helper %s must return the package's Option type, not %s; bare func types do not compose across the facade's re-exports",
			name, typeText(ret))
	}
}

// checkZeroDefault enforces rule C: a New* constructor must not take a
// positional parameter that it zero-defaults in its body.
func checkZeroDefault(pass *analysis.Pass, fd *ast.FuncDecl) {
	if !strings.HasPrefix(fd.Name.Name, "New") || fd.Type.Params == nil {
		return
	}
	for _, field := range fd.Type.Params.List {
		for _, pname := range field.Names {
			obj := pass.Info.Defs[pname]
			if obj == nil {
				continue
			}
			if pos, ok := zeroDefaulted(pass, fd.Body, obj); ok {
				pass.Reportf(pos,
					"constructor %s zero-defaults positional parameter %q; a defaulted parameter is an option in disguise — replace it with With%s(...) ...%sOption",
					fd.Name.Name, pname.Name, exportName(pname.Name), optionPrefix(fd.Name.Name))
			}
		}
	}
}

// zeroDefaulted looks for `if p <= 0 { p = ... }` (or == 0, < 1) on the
// parameter object and returns the if statement's position.
func zeroDefaulted(pass *analysis.Pass, body *ast.BlockStmt, param types.Object) (token.Pos, bool) {
	var pos token.Pos
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		cond, ok := ifs.Cond.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch cond.Op {
		case token.LEQ, token.EQL, token.LSS:
		default:
			return true
		}
		id, ok := cond.X.(*ast.Ident)
		if !ok || pass.Info.Uses[id] != param {
			return true
		}
		if lit, ok := cond.Y.(*ast.BasicLit); !ok || (lit.Value != "0" && lit.Value != "1") {
			return true
		}
		// The then-branch must assign the parameter.
		for _, stmt := range ifs.Body.List {
			as, ok := stmt.(*ast.AssignStmt)
			if !ok {
				continue
			}
			for _, lhs := range as.Lhs {
				if lid, ok := lhs.(*ast.Ident); ok && pass.Info.Uses[lid] == param {
					pos, found = ifs.If, true
					return false
				}
			}
		}
		return true
	})
	return pos, found
}

// exportName upper-cases the first byte: tick -> Tick.
func exportName(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

// optionPrefix guesses the option type's prefix from the constructor
// name: NewWheel -> Wheel (for the ...WheelOption hint in diagnostics).
func optionPrefix(ctor string) string {
	return strings.TrimPrefix(ctor, "New")
}

// terminalTypeName returns the rightmost identifier of a type
// expression: Option, pkg.Option, []T -> Option, Option, T.
func terminalTypeName(t ast.Expr) string {
	switch t := t.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.SelectorExpr:
		return t.Sel.Name
	case *ast.StarExpr:
		return terminalTypeName(t.X)
	case *ast.ArrayType:
		return terminalTypeName(t.Elt)
	}
	return ""
}

// typeText renders a type expression for diagnostics.
func typeText(t ast.Expr) string {
	switch t := t.(type) {
	case *ast.FuncType:
		return "a bare func type"
	default:
		name := terminalTypeName(t)
		if name == "" {
			return "a non-Option type"
		}
		return name
	}
}
