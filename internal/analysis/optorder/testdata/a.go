// Fixtures for the optorder analyzer: the functional-options
// convention. Rule A: apply options before reading config. Rule B:
// exported With* helpers return the package Option type. Rule C: no
// zero-defaulted positional knobs on constructors.
package fixtures

import "time"

type Config struct {
	Seed int64
	Tick time.Duration
}

type Option func(*Config)

func WithSeed(seed int64) Option {
	return func(c *Config) { c.Seed = seed }
}

// WithRawTick returns a bare func type instead of Option.
func WithRawTick(d time.Duration) func(*Config) { // want `exported option helper WithRawTick must return the package's Option type, not a bare func type`
	return func(c *Config) { c.Tick = d }
}

type Engine struct {
	cfg  Config
	fast bool
}

// NewEngine reads cfg.Tick before the apply loop: WithTick is ignored
// by the fast-mode decision.
func NewEngine(opts ...Option) *Engine {
	var cfg Config
	fast := cfg.Tick < time.Millisecond // want `constructor NewEngine reads cfg\.Tick before applying its options`
	for _, o := range opts {
		o(&cfg)
	}
	return &Engine{cfg: cfg, fast: fast}
}

// NewEngineOK applies options first, then decides.
func NewEngineOK(opts ...Option) *Engine {
	var cfg Config
	cfg.Seed = 1 // writes before the loop set defaults: fine
	for _, o := range opts {
		o(&cfg)
	}
	return &Engine{cfg: cfg, fast: cfg.Tick < time.Millisecond}
}

// NewClock zero-defaults its positional tick parameter.
func NewClock(tick time.Duration) *Engine {
	if tick <= 0 { // want `constructor NewClock zero-defaults positional parameter "tick"`
		tick = time.Second
	}
	return &Engine{cfg: Config{Tick: tick}}
}

// NewClockOK validates rather than defaults: rejecting bad input is not
// a disguised option.
func NewClockOK(tick time.Duration) (*Engine, bool) {
	if tick <= 0 {
		return nil, false
	}
	return &Engine{cfg: Config{Tick: tick}}, true
}

// NewLegacy keeps a historical defaulted knob under an explicit waiver.
func NewLegacy(tick time.Duration) *Engine {
	if tick <= 0 { //sslab:allow-optorder frozen pre-options signature kept for replay compatibility
		tick = time.Second
	}
	return &Engine{cfg: Config{Tick: tick}}
}
