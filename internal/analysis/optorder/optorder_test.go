package optorder_test

import (
	"testing"

	"sslab/internal/analysis/analysistest"
	"sslab/internal/analysis/optorder"
)

func TestOptorder(t *testing.T) {
	analysistest.Run(t, "testdata", optorder.Analyzer)
}
