package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// allowRe matches one suppression directive. The directive must start
// the comment text exactly (no space after //, mirroring //go:
// directives) and should be followed by a short justification:
//
//	//sslab:allow-simclock real sleep: this package drives a live socket
//
// The captured name is then validated against the exact set of
// registered analyzer names: a directive that does not name a known
// analyzer suppresses nothing (so a typo like //sslab:allow-detrnd or a
// pile-up like //sslab:allow-detrand-simclock cannot accidentally waive
// a different analyzer's finding) and is surfaced as a stale directive
// for `sslab-vet -stale` to report.
var allowRe = regexp.MustCompile(`^//sslab:allow-([a-z0-9-]+)(?:\s|$)`)

// Directive is one //sslab:allow-* comment found in a package's files.
type Directive struct {
	// Pos is the directive comment's position.
	Pos token.Position
	// Analyzer is the name as written after "allow-".
	Analyzer string
	// Known records whether Analyzer names a registered analyzer. Unknown
	// directives never suppress anything.
	Known bool
}

// suppressionSet records, per analyzer name, the file:line positions at
// which findings are waived. A directive on line N waives findings from
// the named analyzer on line N (trailing comment) and on line N+1
// (directive on its own line above the offending statement). Only
// directives naming a known analyzer enter the set.
type suppressionSet map[string]map[string]map[int]bool // analyzer -> filename -> line

// scanDirectives collects every //sslab:allow-* directive in files,
// marking each as known or stale against the known analyzer names, and
// builds the suppression set from the known ones.
func scanDirectives(fset *token.FileSet, files []*ast.File, known map[string]bool) (suppressionSet, []Directive) {
	set := suppressionSet{}
	var dirs []Directive
	add := func(analyzer, filename string, line int) {
		byFile, ok := set[analyzer]
		if !ok {
			byFile = map[string]map[int]bool{}
			set[analyzer] = byFile
		}
		lines, ok := byFile[filename]
		if !ok {
			lines = map[int]bool{}
			byFile[filename] = lines
		}
		lines[line] = true
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// A /* */ group can hold several lines; handle each.
				for i, text := range strings.Split(c.Text, "\n") {
					text = strings.TrimSpace(text)
					m := allowRe.FindStringSubmatch(text)
					if m == nil {
						continue
					}
					pos := fset.Position(c.Pos())
					pos.Line += i
					d := Directive{Pos: pos, Analyzer: m[1], Known: known[m[1]]}
					dirs = append(dirs, d)
					if d.Known {
						add(m[1], pos.Filename, pos.Line)
					}
				}
			}
		}
	}
	return set, dirs
}

// allows reports whether a diagnostic from the named analyzer at pos is
// waived by a directive on the same line or the line above.
func (s suppressionSet) allows(analyzer string, pos token.Position) bool {
	byFile, ok := s[analyzer]
	if !ok {
		return false
	}
	lines, ok := byFile[pos.Filename]
	if !ok {
		return false
	}
	return lines[pos.Line] || lines[pos.Line-1]
}
