package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// allowRe matches one suppression directive. The directive must start
// the comment text exactly (no space after //, mirroring //go:
// directives) and should be followed by a short justification:
//
//	//sslab:allow-simclock real sleep: this package drives a live socket
var allowRe = regexp.MustCompile(`^//sslab:allow-([a-z0-9-]+)(?:\s|$)`)

// suppressionSet records, per analyzer name, the file:line positions at
// which findings are waived. A directive on line N waives findings from
// the named analyzer on line N (trailing comment) and on line N+1
// (directive on its own line above the offending statement).
type suppressionSet map[string]map[string]map[int]bool // analyzer -> filename -> line

// suppressions scans the comments of files for //sslab:allow-* directives.
func suppressions(fset *token.FileSet, files []*ast.File) suppressionSet {
	set := suppressionSet{}
	add := func(analyzer, filename string, line int) {
		byFile, ok := set[analyzer]
		if !ok {
			byFile = map[string]map[int]bool{}
			set[analyzer] = byFile
		}
		lines, ok := byFile[filename]
		if !ok {
			lines = map[int]bool{}
			byFile[filename] = lines
		}
		lines[line] = true
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// A /* */ group can hold several lines; handle each.
				for i, text := range strings.Split(c.Text, "\n") {
					text = strings.TrimSpace(text)
					m := allowRe.FindStringSubmatch(text)
					if m == nil {
						continue
					}
					pos := fset.Position(c.Pos())
					add(m[1], pos.Filename, pos.Line+i)
				}
			}
		}
	}
	return set
}

// allows reports whether a diagnostic from the named analyzer at pos is
// waived by a directive on the same line or the line above.
func (s suppressionSet) allows(analyzer string, pos token.Position) bool {
	byFile, ok := s[analyzer]
	if !ok {
		return false
	}
	lines, ok := byFile[pos.Filename]
	if !ok {
		return false
	}
	return lines[pos.Line] || lines[pos.Line-1]
}
