// Package simclock forbids wall-clock reads and real-time waits in the
// packages driven by the discrete-event simulator. Virtual time from
// internal/netsim.Sim is what lets four-month probing campaigns replay
// in seconds, bit-for-bit; a single time.Now or time.Sleep smuggled into
// the event loop silently couples results to the host's scheduler.
// Packages that talk to real sockets (ssserver, ssclient, probesim) are
// deliberately out of scope — deadlines there are genuine wall-clock
// concerns.
package simclock

import (
	"go/ast"

	"sslab/internal/analysis"
)

// forbidden are the time functions that read the wall clock or block on
// real time. Pure construction and arithmetic (time.Date, time.Duration,
// t.Add, t.Sub) remain legal: simulated timestamps are still time.Time
// values.
var forbidden = map[string]string{
	"Now":       "reads the wall clock",
	"Sleep":     "blocks on real time",
	"After":     "fires on real time",
	"AfterFunc": "fires on real time",
	"Tick":      "fires on real time",
	"NewTimer":  "fires on real time",
	"NewTicker": "fires on real time",
	"Since":     "reads the wall clock",
	"Until":     "reads the wall clock",
}

// Analyzer flags wall-clock time in simulator-driven packages.
var Analyzer = &analysis.Analyzer{
	Name: "simclock",
	Doc: "forbid time.Now/Sleep/After (and friends) in discrete-event " +
		"simulator packages; use the injected netsim.Sim virtual clock " +
		"(sim.Now, sim.After, sim.At)",
	Scope: []string{
		"sslab/internal/campaign",
		"sslab/internal/detector",
		"sslab/internal/experiment",
		"sslab/internal/fleet",
		"sslab/internal/gfw",
		"sslab/internal/metrics",
		"sslab/internal/netsim",
		"sslab/internal/probe",
		"sslab/internal/reaction",
		"sslab/internal/region",
	},
	IncludeTests: true,
	Run:          run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, sel, ok := pass.PkgFunc(call, "time")
			if !ok {
				return true
			}
			why, bad := forbidden[name]
			if !bad {
				return true
			}
			pass.Reportf(sel.Sel.Pos(),
				"time.%s %s; simulator packages must use the virtual clock (netsim.Sim.Now/After/At)", name, why)
			return true
		})
	}
	return nil
}
