// Fixtures for the simclock analyzer: wall-clock reads and real-time
// waits are violations; virtual-clock calls and time arithmetic are
// clean.
package fixtures

import "time"

// sim stands in for netsim.Sim (testdata cannot import module packages).
type sim struct{ now time.Time }

func (s *sim) Now() time.Time                      { return s.now }
func (s *sim) After(d time.Duration, fn func())    { fn() }
func (s *sim) At(t time.Time, fn func())           { fn() }
func (s *sim) RunUntil(t time.Time)                { s.now = t }
func (s *sim) schedule(d time.Duration, fn func()) { s.After(d, fn) }

func wallClock() time.Time {
	return time.Now() // want `time\.Now reads the wall clock`
}

func realSleep() {
	time.Sleep(10 * time.Millisecond) // want `time\.Sleep blocks on real time`
}

func realTimer() <-chan time.Time {
	return time.After(time.Minute) // want `time\.After fires on real time`
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since reads the wall clock`
}

func virtualClock(s *sim) time.Time {
	s.After(5*time.Second, func() {}) // ok: simulated delay
	return s.Now()                    // ok: virtual clock
}

func arithmetic(t time.Time) time.Time {
	return t.Add(3 * time.Hour) // ok: pure time arithmetic
}

func allowedBanner() time.Time {
	//sslab:allow-simclock report header timestamp, outside the event loop
	return time.Now()
}
