package simclock_test

import (
	"testing"

	"sslab/internal/analysis/analysistest"
	"sslab/internal/analysis/simclock"
)

func TestSimclock(t *testing.T) {
	analysistest.Run(t, "testdata", simclock.Analyzer)
}
