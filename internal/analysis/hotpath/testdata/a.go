// Fixtures for the hotpath analyzer: only functions annotated
// //sslab:hotpath are checked; inside them closures, fmt, map
// iteration, non-scratch appends and interface boxing are violations.
package fixtures

import "fmt"

type conn struct {
	wBuf    []byte
	scratch []int
	events  []int
}

func sink(v any)        { _ = v }
func take(n int, v any) { _, _ = n, v }

// hotClosure schedules work with a capturing closure.
//
//sslab:hotpath
func hotClosure(c *conn, after func(func())) {
	after(func() { c.events = nil }) // want `closure in hot path hotClosure`
}

// hotFmt formats per event.
//
//sslab:hotpath
func hotFmt(n int) {
	fmt.Println("event", n) // want `fmt\.Println in hot path hotFmt`
}

// hotMap walks a map per event.
//
//sslab:hotpath
func hotMap(m map[string]int) int {
	total := 0
	for _, v := range m { // want `map iteration in hot path hotMap`
		total += v
	}
	return total
}

// hotAppend grows a non-scratch slice per event.
//
//sslab:hotpath
func hotAppend(c *conn, e int) {
	c.events = append(c.events, e) // want `append to c\.events in hot path hotAppend`
}

// hotBox passes a value into an interface parameter.
//
//sslab:hotpath
func hotBox(n int) {
	sink(n) // want `passing n by value into an interface parameter in hot path hotBox`
}

// hotClean uses every allowed idiom: scratch appends (by name and by
// derivation), pointer args into interfaces, and plain arithmetic.
//
//sslab:hotpath
func hotClean(c *conn, n int) int {
	c.scratch = append(c.scratch, n)
	out := c.wBuf[:0]
	out = append(out, byte(n))
	sink(&n)
	sink(nil)
	sink("constant") // constants convert via static data: no allocation
	take(n, &c.events)
	return len(out) + n*2
}

// hotAllowed suppresses a deliberate slow-path fallback.
//
//sslab:hotpath
func hotAllowed(c *conn, e int) {
	c.events = append(c.events, e) //sslab:allow-hotpath cold branch: only taken on capture overflow
}

// coldPath is unannotated: nothing here is checked.
func coldPath(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}
