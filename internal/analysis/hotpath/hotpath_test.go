package hotpath_test

import (
	"testing"

	"sslab/internal/analysis/analysistest"
	"sslab/internal/analysis/hotpath"
)

func TestHotpath(t *testing.T) {
	analysistest.Run(t, "testdata", hotpath.Analyzer)
}
