// Package hotpath enforces the allocation discipline on functions
// annotated `//sslab:hotpath`. The per-flow and per-tick paths (gfw
// OnFlow, the timing wheel, the fleet scheduler, the cipher framing)
// are benchmarked with hard allocs/op budgets; a stray closure, fmt
// call, interface boxing or growing append silently reintroduces
// per-event garbage that the budgets then catch only after the fact,
// far from the offending line. This analyzer moves the check to the
// line itself.
//
// Inside an annotated function the analyzer flags:
//
//   - function literals (each capture allocates; use the pointer-arg
//     trampoline idiom: AtCall/AfterCall with a freelisted arg struct)
//   - calls into fmt (formatting allocates)
//   - ranging over a map (slow and nondeterministic)
//   - append to a target that is not a scratch buffer (terminal name
//     matching scratch/slab/buf/pool/free, or assigned from one, e.g.
//     out := c.wBuf[:0])
//   - passing a non-pointer concrete value into an interface-typed
//     parameter (boxing allocates; pointers fit the interface word)
package hotpath

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"sslab/internal/analysis"
)

// Analyzer enforces alloc-free discipline in //sslab:hotpath functions.
var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc: "forbid closures, fmt calls, map iteration, non-scratch appends " +
		"and interface boxing inside functions annotated //sslab:hotpath; " +
		"these paths carry hard allocs/op budgets",
	Scope: []string{
		"sslab",
		"sslab/internal/bloom",
		"sslab/internal/capture",
		"sslab/internal/defense",
		"sslab/internal/detector",
		"sslab/internal/entropy",
		"sslab/internal/fleet",
		"sslab/internal/gfw",
		"sslab/internal/metrics",
		"sslab/internal/netsim",
		"sslab/internal/probesim",
		"sslab/internal/sscrypto",
		"sslab/internal/ssproto",
		"sslab/internal/stats",
		"sslab/internal/trafficgen",
	},
	Run: run,
}

// directive marks a function as budgeted.
const directive = "//sslab:hotpath"

// scratchRe matches names that identify preallocated reusable storage.
var scratchRe = regexp.MustCompile(`(?i)(scratch|slab|buf|pool|free)`)

func run(pass *analysis.Pass) error {
	reported := map[token.Pos]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHot(fd) {
				continue
			}
			checkHot(pass, fd, reported)
		}
	}
	return nil
}

// isHot reports whether the function's doc comment carries the
// //sslab:hotpath directive.
func isHot(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == directive || strings.HasPrefix(c.Text, directive+" ") {
			return true
		}
	}
	return false
}

func checkHot(pass *analysis.Pass, fd *ast.FuncDecl, reported map[token.Pos]bool) {
	report := func(pos token.Pos, format string, args ...any) {
		if !reported[pos] {
			reported[pos] = true
			pass.Reportf(pos, format, args...)
		}
	}
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			report(n.Pos(),
				"closure in hot path %s allocates per call; use a pointer-arg trampoline (AtCall/AfterCall with a freelisted arg struct)", name)
			// Do not descend: everything inside the closure already runs
			// behind the allocation being flagged.
			return false
		case *ast.RangeStmt:
			if tv, ok := pass.Info.Types[n.X]; ok && tv.Type != nil {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					report(n.For,
						"map iteration in hot path %s is slow and order-randomized; index a slice or precomputed table instead", name)
				}
			}
		case *ast.CallExpr:
			if fname, sel, ok := pass.PkgFunc(n, "fmt"); ok {
				report(sel.Sel.Pos(),
					"fmt.%s in hot path %s allocates for formatting; precompute the string or record raw fields", fname, name)
				return true
			}
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" && len(n.Args) > 0 {
				if obj := pass.Info.Uses[id]; obj != nil {
					if _, isBuiltin := obj.(*types.Builtin); isBuiltin {
						target := n.Args[0]
						if !isScratch(pass, fd.Body, target) {
							report(n.Pos(),
								"append to %s in hot path %s may grow and allocate; append into a preallocated scratch buffer", exprString(pass, target), name)
						}
						return true
					}
				}
			}
			checkBoxing(pass, n, name, report)
		}
		return true
	})
}

// checkBoxing flags non-pointer concrete arguments passed into
// interface-typed parameters: the conversion boxes the value on the
// heap. Pointers (and pointer-shaped kinds: chan, map, func) fit the
// interface data word and do not allocate.
func checkBoxing(pass *analysis.Pass, call *ast.CallExpr, fname string, report func(token.Pos, string, ...any)) {
	tv, ok := pass.Info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		if call.Ellipsis.IsValid() && i == len(call.Args)-1 {
			continue // f(xs...): the slice itself is passed, nothing boxes
		}
		var pt types.Type
		switch {
		case i < params.Len()-1 || (i < params.Len() && !sig.Variadic()):
			pt = params.At(i).Type()
		case sig.Variadic() && params.Len() > 0:
			last := params.At(params.Len() - 1).Type()
			if sl, ok := last.(*types.Slice); ok {
				pt = sl.Elem()
			}
		}
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at, ok := pass.Info.Types[arg]
		if !ok || at.Type == nil || at.IsNil() {
			continue
		}
		if at.Value != nil {
			continue // constants box via static data, not a heap allocation
		}
		if boxes(at.Type) {
			report(arg.Pos(),
				"passing %s by value into an interface parameter in hot path %s boxes on the heap; pass a pointer", exprString(pass, arg), fname)
		}
	}
}

// boxes reports whether storing a value of type t in an interface
// allocates: true for concrete non-pointer-shaped types, false for
// pointers, chans, maps, funcs, unsafe pointers and interfaces.
func boxes(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature,
		*types.Interface:
		return false
	case *types.Basic:
		b := t.Underlying().(*types.Basic)
		return b.Kind() != types.UnsafePointer && b.Kind() != types.UntypedNil
	}
	return true
}

// isScratch reports whether the append target is preallocated reusable
// storage: its terminal name matches scratchRe, or it was assigned in
// this function from an expression mentioning such a name (the
// out := c.wBuf[:0] idiom).
func isScratch(pass *analysis.Pass, body *ast.BlockStmt, target ast.Expr) bool {
	if scratchRe.MatchString(terminalName(target)) {
		return true
	}
	want := exprString(pass, target)
	derived := false
	ast.Inspect(body, func(n ast.Node) bool {
		if derived {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			if exprString(pass, lhs) != want || i >= len(as.Rhs) {
				continue
			}
			if scratchRe.MatchString(exprString(pass, as.Rhs[i])) {
				derived = true
				return false
			}
		}
		return true
	})
	return derived
}

// terminalName returns the rightmost identifier of an lvalue chain:
// x, s.wBuf, w.slots[i] -> x, wBuf, slots.
func terminalName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	case *ast.IndexExpr:
		return terminalName(e.X)
	case *ast.SliceExpr:
		return terminalName(e.X)
	}
	return ""
}

// exprString renders an expression for identity comparison and
// diagnostics.
func exprString(pass *analysis.Pass, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, pass.Fset, e); err != nil {
		return ""
	}
	return buf.String()
}
