package analysis

import (
	"go/ast"
	"testing"
)

// scopedCounter clones callCounter under a new name and scope.
func scopedCounter(name string, scope ...string) *Analyzer {
	return &Analyzer{
		Name:         name,
		Doc:          "scoped call counter (test analyzer)",
		Scope:        scope,
		IncludeTests: true,
		Run: func(pass *Pass) error {
			for _, f := range pass.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					if call, ok := n.(*ast.CallExpr); ok {
						pass.Reportf(call.Pos(), "call expression")
					}
					return true
				})
			}
			return nil
		},
	}
}

// TestScopeResolutionOverLoadedPackages drives scoping end to end over a
// loaded module: one package inside two analyzers' scopes collects both
// diagnostics, a package outside every scope collects none.
func TestScopeResolutionOverLoadedPackages(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module example.test/m\n\ngo 1.22\n",
		"covered/covered.go": `package covered

func f() int { return 0 }

var _ = f() // in scope of both analyzers
`,
		"outside/outside.go": `package outside

func f() int { return 0 }

var _ = f() // in scope of neither analyzer
`,
	})

	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}

	exact := scopedCounter("exactcheck", "example.test/m/covered")
	subtree := scopedCounter("treecheck", "example.test/m/...")
	diags, err := Run([]*Analyzer{exact, subtree}, pkgs)
	if err != nil {
		t.Fatal(err)
	}

	byAnalyzer := map[string]int{}
	for _, d := range diags {
		byAnalyzer[d.Analyzer]++
	}
	// covered/ gets one finding from each analyzer; outside/ gets one
	// only from the subtree analyzer.
	if byAnalyzer["exactcheck"] != 1 {
		t.Errorf("exactcheck reported %d findings, want 1 (covered only)", byAnalyzer["exactcheck"])
	}
	if byAnalyzer["treecheck"] != 2 {
		t.Errorf("treecheck reported %d findings, want 2 (covered and outside)", byAnalyzer["treecheck"])
	}

	none := scopedCounter("nonecheck", "example.test/m/absent")
	diags, err = Run([]*Analyzer{none}, pkgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("analyzer scoped to an absent package reported %d findings, want 0", len(diags))
	}
}

// TestRunPackageBypassesScopeHonorsSuppression pins the analysistest
// entry point's contract: scope is ignored (fixtures load under
// arbitrary paths) but //sslab:allow-* suppression still applies with
// the same exact-name semantics as the CLI.
func TestRunPackageBypassesScopeHonorsSuppression(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module example.test/m\n\ngo 1.22\n",
		"p/p.go": `package p

func f() int { return 0 }

func g() int {
	return f() // kept
}

func h() int {
	return f() //sslab:allow-outcheck waived for the test
}

func i() int {
	return f() //sslab:allow-outcheckz near-miss name must not waive
}
`,
	})

	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}

	// The scope names a package that does not exist; RunPackage must run
	// anyway.
	a := scopedCounter("outcheck", "example.test/m/not-here")
	diags, err := RunPackage(a, pkgs[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		for _, d := range diags {
			t.Logf("got: %s", d)
		}
		t.Fatalf("RunPackage kept %d diagnostics, want 2 (g kept, h waived, i's near-miss kept)", len(diags))
	}
}
