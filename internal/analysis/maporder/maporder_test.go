package maporder_test

import (
	"testing"

	"sslab/internal/analysis/analysistest"
	"sslab/internal/analysis/maporder"
)

func TestMaporder(t *testing.T) {
	analysistest.Run(t, "testdata", maporder.Analyzer)
}
