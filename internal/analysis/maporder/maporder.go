// Package maporder flags Go's classic nondeterminism hazard in the
// packages that produce reports: ranging over a map while appending to
// an outer slice, writing output, or feeding order-sensitive sinks.
// Map iteration order is deliberately randomized by the runtime, so any
// such loop makes merged.json (and every golden report) differ between
// two identical runs — precisely the byte-identity the campaign engine
// and the paper's figures depend on.
//
// The deterministic idiom — collect keys, sort, then iterate the sorted
// slice — is recognized: an append inside a map range is waived when a
// later statement in the same function sorts the appended slice
// (sort.Strings/Ints/Slice/SliceStable/Sort or slices.Sort*).
// Commutative aggregation (sums, counter increments, writes into
// another map or set) is not flagged at all.
package maporder

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"

	"sslab/internal/analysis"
)

// Analyzer flags order-dependent consumption of map iteration in
// report-producing packages.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "forbid ranging over a map while appending to an outer slice " +
		"(unless it is sorted afterwards), printing, JSON-encoding, or " +
		"feeding order-sensitive sinks: map order is randomized and would " +
		"break report byte-identity",
	Scope: []string{
		"sslab",
		"sslab/cmd/...",
		"sslab/internal/campaign",
		"sslab/internal/capture",
		"sslab/internal/detector",
		"sslab/internal/experiment",
		"sslab/internal/fleet",
		"sslab/internal/gfw",
		"sslab/internal/metrics",
		"sslab/internal/netsim",
		"sslab/internal/probesim",
		"sslab/internal/reaction",
		"sslab/internal/replay",
		"sslab/internal/stats",
	},
	Run: run,
}

// printFuncs are the fmt functions that emit output (Sprint* only build
// strings, which is fine unless they feed a sink themselves).
var printFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// sinkMethods are method names whose call order changes the result:
// stream writers and order-sensitive estimators (the P² quantile
// estimator's state depends on observation order).
var sinkMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Observe": true,
}

func run(pass *analysis.Pass) error {
	reported := map[token.Pos]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Body, reported)
		}
	}
	return nil
}

// checkFunc inspects one function body: every range-over-map statement
// is checked for order-dependent sinks, with the function body itself
// the horizon for "sorted afterwards".
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt, reported map[token.Pos]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok || !rangesOverMap(pass, rng) {
			return true
		}
		checkRange(pass, body, rng, reported)
		return true
	})
}

func rangesOverMap(pass *analysis.Pass, rng *ast.RangeStmt) bool {
	tv, ok := pass.Info.Types[rng.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// checkRange walks one map-range body for order-dependent sinks.
func checkRange(pass *analysis.Pass, funcBody *ast.BlockStmt, rng *ast.RangeStmt, reported map[token.Pos]bool) {
	report := func(pos token.Pos, format string, args ...any) {
		if !reported[pos] {
			reported[pos] = true
			pass.Reportf(pos, format, args...)
		}
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// append(target, ...) building an outer slice in map order.
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" && len(call.Args) > 0 {
			if obj := pass.Info.Uses[id]; obj != nil {
				if _, isBuiltin := obj.(*types.Builtin); isBuiltin {
					target := call.Args[0]
					if declaredOutside(pass, target, rng) && !sortedLater(pass, funcBody, rng, target) {
						report(call.Pos(),
							"append to %s inside a map range builds a slice in randomized map order; sort the keys first (or sort %s afterwards)",
							exprString(pass, target), exprString(pass, target))
					}
				}
			}
			return true
		}
		// fmt print family: output in map order.
		if name, sel, ok := pass.PkgFunc(call, "fmt"); ok && printFuncs[name] {
			report(sel.Sel.Pos(),
				"fmt.%s inside a map range emits output in randomized map order; iterate sorted keys instead", name)
			return true
		}
		// encoding/json: serialization driven from inside a map range.
		if name, sel, ok := pass.PkgFunc(call, "encoding/json"); ok {
			report(sel.Sel.Pos(),
				"json.%s inside a map range serializes in randomized map order; iterate sorted keys instead", name)
			return true
		}
		// Order-sensitive method sinks (writers, P²-style estimators).
		if se, ok := call.Fun.(*ast.SelectorExpr); ok && sinkMethods[se.Sel.Name] {
			if _, isSel := pass.Info.Selections[se]; isSel {
				report(se.Sel.Pos(),
					"%s call inside a map range feeds an order-sensitive sink in randomized map order; iterate sorted keys instead", se.Sel.Name)
			}
		}
		return true
	})
}

// declaredOutside reports whether the append target is state that
// outlives one loop iteration: a selector (field), an index expression,
// or an identifier declared before the range statement. A slice
// declared inside the body is rebuilt every iteration and carries no
// cross-iteration order.
func declaredOutside(pass *analysis.Pass, target ast.Expr, rng *ast.RangeStmt) bool {
	switch t := target.(type) {
	case *ast.Ident:
		obj := pass.Info.Uses[t]
		if obj == nil {
			obj = pass.Info.Defs[t]
		}
		if obj == nil {
			return true // unresolved: be conservative
		}
		return obj.Pos() < rng.Body.Pos() || obj.Pos() > rng.Body.End()
	case *ast.SelectorExpr, *ast.IndexExpr:
		return true
	case *ast.CallExpr, *ast.CompositeLit:
		// append(nilSliceLiteral, ...) or append(f(), ...): fresh value,
		// no cross-iteration order.
		return false
	default:
		return true
	}
}

// sortedLater reports whether a statement after the range, anywhere in
// the function body, sorts the append target — the collect-then-sort
// idiom.
func sortedLater(pass *analysis.Pass, funcBody *ast.BlockStmt, rng *ast.RangeStmt, target ast.Expr) bool {
	want := exprString(pass, target)
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		if !isSortCall(pass, call) {
			return true
		}
		for _, arg := range call.Args {
			if exprString(pass, arg) == want {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isSortCall recognizes the standard sorting entry points.
func isSortCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	if name, _, ok := pass.PkgFunc(call, "sort"); ok {
		switch name {
		case "Strings", "Ints", "Float64s", "Slice", "SliceStable", "Sort", "Stable":
			return true
		}
	}
	if name, _, ok := pass.PkgFunc(call, "slices"); ok {
		switch name {
		case "Sort", "SortFunc", "SortStableFunc":
			return true
		}
	}
	return false
}

// exprString renders an expression for identity comparison and
// diagnostics.
func exprString(pass *analysis.Pass, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, pass.Fset, e); err != nil {
		return ""
	}
	return buf.String()
}
