// Fixtures for the maporder analyzer: order-dependent consumption of
// map iteration is a violation; the collect-sort-iterate idiom and
// commutative aggregation are clean.
package fixtures

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

func appendUnsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append to out inside a map range`
	}
	return out
}

func appendField(m map[string]int) {
	var rep struct{ Names []string }
	for k := range m {
		rep.Names = append(rep.Names, k) // want `append to rep\.Names inside a map range`
	}
	_ = rep
}

func printing(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want `fmt\.Printf inside a map range`
	}
}

func encoding(m map[string]int) {
	for k := range m {
		b, _ := json.Marshal(k) // want `json\.Marshal inside a map range`
		_ = b
	}
}

func writerSink(m map[string]int, sb *strings.Builder) {
	for k := range m {
		sb.WriteString(k) // want `WriteString call inside a map range`
	}
}

func collectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) // ok: sorted below
	}
	sort.Strings(keys)
	return keys
}

func sortSlice(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // ok: sort.Slice below
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func commutative(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v // ok: commutative aggregation
	}
	return total
}

func setBuild(m map[string]int) map[string]bool {
	seen := map[string]bool{}
	for k := range m {
		seen[k] = true // ok: writing into a map is order-independent
	}
	return seen
}

func innerSlice(m map[string][]int) {
	for _, vs := range m {
		var local []int
		local = append(local, vs...) // ok: declared inside the loop body
		_ = local
	}
}

func rangeOverSlice(xs []string) []string {
	var out []string
	for _, x := range xs { // ok: slices iterate in order
		out = append(out, x)
	}
	return out
}

func allowedAppend(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) //sslab:allow-maporder order scrambled downstream by a seeded shuffle
	}
	return out
}
