// Package analysistest runs an analyzer over a directory of golden Go
// files and checks its diagnostics against expectations embedded in the
// files, mirroring golang.org/x/tools/go/analysis/analysistest:
//
//	rand.Intn(6) // want `global math/rand`
//
// Each `// want "re"` (or backquoted) comment asserts that the analyzer
// reports a diagnostic on that line whose message matches the regular
// expression. Every reported diagnostic must be matched by a want and
// vice versa. Lines carrying a //sslab:allow-<name> directive assert the
// opposite — the framework must swallow the finding — so each analyzer's
// testdata demonstrates both a caught violation and an accepted
// suppression.
package analysistest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"sslab/internal/analysis"
)

// wantRe extracts the expectation pattern from a // want comment.
var wantRe = regexp.MustCompile("//\\s*want\\s+(?:\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`)")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// Run loads dir as a single package, applies a, and reports mismatches
// between the diagnostics and the // want comments as test failures.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading testdata: %v", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		t.Fatalf("no .go files in %s", dir)
	}

	var files []*ast.File
	var wants []*expectation
	for _, name := range names {
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parsing %s: %v", path, err)
		}
		files = append(files, f)
		wants = append(wants, expectationsOf(t, fset, f)...)
	}

	pkg, tinfo, err := typecheck(fset, files)
	if err != nil {
		t.Fatalf("type-checking testdata: %v", err)
	}

	diags, err := analysis.RunPackage(a, &analysis.Package{
		Path: "testdata/" + files[0].Name.Name,
		Dir:  dir,
		Fset: fset, Files: files,
		Types: pkg, Info: tinfo,
	})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

// typecheck checks the testdata files as one package. Testdata may
// import the standard library (resolved from source, no export data or
// network needed) but not module-internal packages — analyzer fixtures
// stay self-contained.
func typecheck(fset *token.FileSet, files []*ast.File) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	cfg := &types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := cfg.Check("testdata/"+files[0].Name.Name, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// expectationsOf collects the // want comments of one file.
func expectationsOf(t *testing.T, fset *token.FileSet, f *ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := wantRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pat := m[1]
			if pat == "" {
				pat = m[2]
			}
			re, err := regexp.Compile(pat)
			if err != nil {
				t.Fatalf("%s: bad want pattern %q: %v", fset.Position(c.Pos()), pat, err)
			}
			pos := fset.Position(c.Pos())
			out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
		}
	}
	return out
}
