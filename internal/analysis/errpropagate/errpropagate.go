// Package errpropagate flags dropped errors on packet-path writes in
// the Shadowsocks data-plane packages. A silently failed Write on a
// relay path turns into a stalled or half-open proxy connection — the
// precise behaviours (RST vs FIN/ACK vs timeout) the GFW fingerprints
// (Figure 10) — so write errors must be handled, propagated, or
// explicitly waived with a justification.
package errpropagate

import (
	"go/ast"
	"go/types"

	"sslab/internal/analysis"
)

// writeMethods are the method names treated as packet-path writes.
var writeMethods = map[string]bool{
	"Write":       true,
	"WriteTo":     true,
	"WriteString": true,
	"WriteMsgUDP": true,
	"SendTo":      true,
}

// Analyzer flags statement-position and blank-assigned write calls
// whose error result is discarded.
var Analyzer = &analysis.Analyzer{
	Name: "errpropagate",
	Doc: "flag dropped errors from Write/WriteTo-style calls on the " +
		"packet path; a failed relay write must be handled or " +
		"explicitly waived",
	Scope: []string{
		"sslab/internal/socks",
		"sslab/internal/ssclient",
		"sslab/internal/ssproto",
		"sslab/internal/ssserver",
	},
	IncludeTests: false,
	Run:          run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				call, _ = stmt.X.(*ast.CallExpr)
			case *ast.AssignStmt:
				if len(stmt.Rhs) != 1 || !allBlank(stmt.Lhs) {
					return true
				}
				call, _ = stmt.Rhs[0].(*ast.CallExpr)
			default:
				return true
			}
			if call == nil {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !writeMethods[sel.Sel.Name] {
				return true
			}
			selection, ok := pass.Info.Selections[sel]
			if !ok {
				return true // package-level function, not a method call
			}
			fn, ok := selection.Obj().(*types.Func)
			if !ok || !returnsError(fn) || infallibleWriter(selection.Recv()) {
				return true
			}
			pass.Reportf(sel.Sel.Pos(),
				"error from (%s).%s is dropped on the packet path; handle or propagate it",
				types.TypeString(selection.Recv(), types.RelativeTo(pass.Pkg)), sel.Sel.Name)
			return true
		})
	}
	return nil
}

// allBlank reports whether every expression is the blank identifier.
func allBlank(exprs []ast.Expr) bool {
	for _, e := range exprs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return true
}

// returnsError reports whether fn's final result is the built-in error
// type.
func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	named, ok := last.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// infallibleWriter exempts receivers whose Write contract cannot fail:
// hash.Hash implementations, bytes.Buffer, and strings.Builder.
func infallibleWriter(recv types.Type) bool {
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() {
	case "hash":
		return true
	case "bytes":
		return obj.Name() == "Buffer"
	case "strings":
		return obj.Name() == "Builder"
	}
	return false
}
