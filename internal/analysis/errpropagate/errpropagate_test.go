package errpropagate_test

import (
	"testing"

	"sslab/internal/analysis/analysistest"
	"sslab/internal/analysis/errpropagate"
)

func TestErrpropagate(t *testing.T) {
	analysistest.Run(t, "testdata", errpropagate.Analyzer)
}
