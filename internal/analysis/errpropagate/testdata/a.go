// Fixtures for the errpropagate analyzer: write errors discarded in
// statement position or assigned to blanks are violations; handled
// errors and infallible writers (hash.Hash, bytes.Buffer) are clean.
package fixtures

import (
	"bytes"
	"crypto/sha1"
)

// conn stands in for a net.Conn-like packet-path writer.
type conn struct{}

func (conn) Write(p []byte) (int, error)                { return len(p), nil }
func (conn) WriteTo(p []byte, addr string) (int, error) { return len(p), nil }
func (conn) Close() error                               { return nil }

func dropped(c conn, p []byte) {
	c.Write(p)        // want `error from \(conn\)\.Write is dropped on the packet path`
	c.WriteTo(p, "x") // want `error from \(conn\)\.WriteTo is dropped`
}

func blankAssigned(c conn, p []byte) {
	_, _ = c.Write(p) // want `error from \(conn\)\.Write is dropped`
}

func handled(c conn, p []byte) error {
	if _, err := c.Write(p); err != nil {
		return err
	}
	n, err := c.WriteTo(p, "x") // ok: error is bound
	_ = n
	return err
}

func infallible(p []byte) {
	h := sha1.New()
	h.Write(p) // ok: hash.Hash writes never fail
	var b bytes.Buffer
	b.Write(p) // ok: bytes.Buffer writes never fail
}

func closers(c conn) {
	c.Close() // ok: Close is not a packet-path write
}

func allowedBestEffort(c conn, p []byte) {
	c.Write(p) //sslab:allow-errpropagate best-effort error reply; the caller fails the handshake anyway
}
