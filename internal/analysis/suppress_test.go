package analysis

import (
	"strings"
	"testing"
)

// TestSuppressionExactName pins the v2 tightening: a directive only
// suppresses the analyzer it names exactly. A pile-up or typo name
// ("callcount-other", "callcounts") suppresses nothing and surfaces as
// a stale directive instead.
func TestSuppressionExactName(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module example.test/m\n\ngo 1.22\n",
		"a/a.go": `package a

func f() int { return 0 }

func g() int {
	return f() //sslab:allow-callcount-other pile-up must not waive callcount
}

func h() int {
	return f() //sslab:allow-callcounts typo must not waive callcount
}

func i() int {
	return f() //sslab:allow-callcount exact name does waive
}
`,
	})

	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunDetailed([]*Analyzer{callCounter}, nil, pkgs)
	if err != nil {
		t.Fatal(err)
	}

	// g and h keep their findings; only i is waived.
	if len(res.Diags) != 2 {
		for _, d := range res.Diags {
			t.Logf("kept: %s", d)
		}
		t.Fatalf("kept %d diagnostics, want 2 (mis-named directives must not suppress)", len(res.Diags))
	}
	if len(res.Suppressed) != 1 {
		t.Fatalf("suppressed %d diagnostics, want 1", len(res.Suppressed))
	}

	// Both mis-named directives are stale, in position order.
	if len(res.Stale) != 2 {
		for _, d := range res.Stale {
			t.Logf("stale: %s at %s:%d", d.Analyzer, d.Pos.Filename, d.Pos.Line)
		}
		t.Fatalf("got %d stale directives, want 2", len(res.Stale))
	}
	if res.Stale[0].Analyzer != "callcount-other" || res.Stale[1].Analyzer != "callcounts" {
		t.Errorf("stale names = %q, %q; want callcount-other, callcounts",
			res.Stale[0].Analyzer, res.Stale[1].Analyzer)
	}
	for _, d := range res.Stale {
		if d.Known {
			t.Errorf("stale directive %q marked known", d.Analyzer)
		}
	}
}

// TestStaleAgainstFullRegistry verifies directive validation uses the
// full registered set, not the selected subset: running only one
// analyzer must not misreport a directive naming another registered
// analyzer as stale.
func TestStaleAgainstFullRegistry(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module example.test/m\n\ngo 1.22\n",
		"a/a.go": `package a

func f() int { return 0 }

func g() int {
	return f() //sslab:allow-othercheck registered elsewhere, not selected here
}
`,
	})

	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}

	// known includes "othercheck" even though only callcount runs.
	res, err := RunDetailed([]*Analyzer{callCounter}, []string{"callcount", "othercheck"}, pkgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stale) != 0 {
		t.Fatalf("got %d stale directives, want 0: a registered-but-unselected name is not stale", len(res.Stale))
	}
	// The directive names a different analyzer, so callcount's finding
	// survives.
	if len(res.Diags) != 1 {
		t.Fatalf("kept %d diagnostics, want 1", len(res.Diags))
	}

	// Without the registry hint the same directive is stale.
	res, err = RunDetailed([]*Analyzer{callCounter}, nil, pkgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stale) != 1 || res.Stale[0].Analyzer != "othercheck" {
		t.Fatalf("stale = %+v, want exactly othercheck", res.Stale)
	}
	if !strings.HasSuffix(res.Stale[0].Pos.Filename, "a.go") {
		t.Errorf("stale position %q, want a.go", res.Stale[0].Pos.Filename)
	}
}
