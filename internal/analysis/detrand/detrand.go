// Package detrand forbids nondeterministic randomness in the
// simulator- and experiment-side packages. The paper's figures are
// regenerated from discrete-event replays, so every stochastic choice
// must flow from a seeded, injected *rand.Rand: global math/rand
// functions draw from shared process state (order-dependent and, since
// Go 1.20, randomly seeded), and PRNGs seeded from the wall clock make
// two runs with the same configuration diverge.
package detrand

import (
	"go/ast"
	"go/token"

	"sslab/internal/analysis"
)

// Analyzer flags global math/rand usage and wall-clock-seeded PRNG
// construction in deterministic packages.
var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc: "forbid global math/rand functions and wall-clock PRNG seeds in " +
		"simulator/experiment packages; randomness must come from an " +
		"injected, seeded *rand.Rand",
	Scope: []string{
		// The root facade (and its examples/benchmarks, which exercise
		// the impairment API): nothing there may draw nondeterministic
		// randomness either. Note the root is deliberately NOT in
		// simclock's scope — its tests drive real sockets, where
		// wall-clock deadlines are legitimate.
		"sslab",
		"sslab/cmd/...",
		"sslab/internal/bloom",
		"sslab/internal/campaign",
		"sslab/internal/capture",
		"sslab/internal/defense",
		"sslab/internal/detector",
		"sslab/internal/entropy",
		"sslab/internal/experiment",
		"sslab/internal/fleet",
		"sslab/internal/gfw",
		"sslab/internal/metrics",
		"sslab/internal/netsim",
		"sslab/internal/probe",
		"sslab/internal/probesim",
		"sslab/internal/reaction",
		"sslab/internal/region",
		"sslab/internal/replay",
		"sslab/internal/seedfork",
		"sslab/internal/stats",
		"sslab/internal/trafficgen",
	},
	IncludeTests: true,
	Run:          run,
}

// mathRandPaths are the import paths whose package-level functions are
// forbidden.
var mathRandPaths = []string{"math/rand", "math/rand/v2"}

// constructors are the math/rand functions that build a *rand.Rand (or
// Source) and are therefore allowed — provided their seed does not come
// from the wall clock.
var constructors = map[string]bool{"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true}

func run(pass *analysis.Pass) error {
	// reported dedupes the wall-clock diagnostic when time.Now appears
	// inside nested constructor calls (rand.New(rand.NewSource(...))).
	reported := map[token.Pos]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, sel, ok := randCall(pass, call)
			if !ok {
				return true
			}
			if !constructors[name] {
				pass.Reportf(sel.Sel.Pos(),
					"global math/rand.%s draws from shared process state and breaks deterministic replay; use an injected, seeded *rand.Rand", name)
				return true
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, func(m ast.Node) bool {
					inner, ok := m.(*ast.CallExpr)
					if !ok {
						return true
					}
					if tname, tsel, ok := pass.PkgFunc(inner, "time"); ok && tname == "Now" && !reported[tsel.Sel.Pos()] {
						reported[tsel.Sel.Pos()] = true
						pass.Reportf(tsel.Sel.Pos(),
							"PRNG seeded from the wall clock makes runs irreproducible; thread a configured seed instead")
					}
					return true
				})
			}
			return true
		})
	}
	return nil
}

// randCall reports whether call invokes a package-level function of
// math/rand (v1 or v2), resolving renamed and shadowed imports.
func randCall(pass *analysis.Pass, call *ast.CallExpr) (string, *ast.SelectorExpr, bool) {
	for _, path := range mathRandPaths {
		if name, sel, ok := pass.PkgFunc(call, path); ok {
			return name, sel, true
		}
	}
	return "", nil, false
}
