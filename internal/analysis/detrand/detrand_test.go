package detrand_test

import (
	"testing"

	"sslab/internal/analysis/analysistest"
	"sslab/internal/analysis/detrand"
)

func TestDetrand(t *testing.T) {
	analysistest.Run(t, "testdata", detrand.Analyzer)
}
