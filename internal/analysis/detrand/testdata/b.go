// Renamed imports and shadowing: the analyzer resolves identifiers
// through type information, so a renamed math/rand still trips it and a
// local variable called rand does not.
package fixtures

import mrand "math/rand"

type fakeRand struct{}

func (fakeRand) Intn(n int) int { return 0 }

func renamedImport() int64 {
	return mrand.Int63() // want `global math/rand\.Int63`
}

func shadowed() int {
	rand := fakeRand{}
	return rand.Intn(3) // ok: local value shadows nothing relevant
}

func renamedSeeded(seed int64) *mrand.Rand {
	return mrand.New(mrand.NewSource(seed)) // ok
}
