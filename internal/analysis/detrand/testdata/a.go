// Fixtures for the detrand analyzer: global math/rand state and
// wall-clock seeds are violations; injected seeded PRNGs are clean.
package fixtures

import (
	"math/rand"
	"time"
)

func globalState() int {
	return rand.Intn(6) // want `global math/rand\.Intn .* injected, seeded \*rand\.Rand`
}

func globalFloat() float64 {
	rand.Shuffle(3, func(i, j int) {}) // want `global math/rand\.Shuffle`
	return rand.Float64()              // want `global math/rand\.Float64`
}

func wallClockSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `seeded from the wall clock`
}

func seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // ok: explicit seed
}

func injected(rng *rand.Rand) int {
	return rng.Intn(6) // ok: method on an injected *rand.Rand
}

func allowedJitter() float64 {
	//sslab:allow-detrand startup jitter outside any replayed experiment path
	return rand.Float64()
}

func allowedInline() int {
	return rand.Intn(2) //sslab:allow-detrand coin flip in throwaway debug helper
}
