// Fixtures for the cryptorand analyzer: importing math/rand in a
// crypto-bearing package is a violation regardless of how it is used.
package fixtures

import (
	crand "crypto/rand"
	"math/rand" // want `math/rand is not cryptographically secure`
)

func salt(n int) ([]byte, error) {
	b := make([]byte, n)
	if _, err := crand.Read(b); err != nil { // ok: crypto/rand
		return nil, err
	}
	return b, nil
}

func paddingLen(rng *rand.Rand) int {
	return rng.Intn(32)
}
