// A justified exception: length jitter that never touches key material
// may keep math/rand behind a suppression with rationale.
package fixtures

import (
	mrand "math/rand" //sslab:allow-cryptorand traffic-shape jitter only; keys/salts use crypto/rand
)

func jitter(rng *mrand.Rand) int {
	return 1 + rng.Intn(16)
}
