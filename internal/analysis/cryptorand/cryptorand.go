// Package cryptorand forbids importing math/rand in the Shadowsocks
// implementation packages. Salts, IVs and keys there are security- and
// fingerprint-relevant: §2 of the paper rests on ciphertext (including
// the leading IV/salt) being indistinguishable from uniform random
// bytes, and a math/rand-derived salt is both predictable and, under
// entropy analysis, subtly non-uniform in generation pattern. Test
// files are exempt — deterministic vectors legitimately use seeded
// math/rand there.
package cryptorand

import (
	"strconv"

	"sslab/internal/analysis"
)

// Analyzer flags math/rand imports in crypto-bearing packages.
var Analyzer = &analysis.Analyzer{
	Name: "cryptorand",
	Doc: "require crypto/rand (never math/rand) in the Shadowsocks " +
		"implementation packages: salts, IVs and keys must be " +
		"cryptographically random",
	Scope: []string{
		"sslab/internal/sscrypto",
		"sslab/internal/ssproto",
		"sslab/internal/ssserver",
	},
	IncludeTests: false,
	Run:          run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(),
					"%s is not cryptographically secure; salts/IVs/keys in this package must come from crypto/rand", path)
			}
		}
	}
	return nil
}
