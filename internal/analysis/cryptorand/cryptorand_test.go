package cryptorand_test

import (
	"testing"

	"sslab/internal/analysis/analysistest"
	"sslab/internal/analysis/cryptorand"
)

func TestCryptorand(t *testing.T) {
	analysistest.Run(t, "testdata", cryptorand.Analyzer)
}
