package defense

import "sync"

// IPBanlist is the "simple idea to defend against active probing" §3.3
// opens with: discover prober IP addresses and ban them. The paper argues
// this is hard because the GFW probes from a large pool with high churn —
// the BanExperiment in internal/experiment quantifies exactly how much
// probing still gets through under the most aggressive possible policy
// (ban every prober IP after its first probe).
type IPBanlist struct {
	mu     sync.Mutex
	banned map[string]bool

	// Stats.
	Banned  int // distinct IPs ever banned
	Dropped int // probes refused because the source was already banned
	Passed  int // probes that arrived from a never-seen IP
}

// NewIPBanlist returns an empty banlist.
func NewIPBanlist() *IPBanlist {
	return &IPBanlist{banned: map[string]bool{}}
}

// Check records one inbound probe from ip and reports whether the ban
// list stopped it. Policy: every prober IP is banned forever after its
// first observed probe — an upper bound on what any real deployment could
// achieve (real servers cannot even tell probes from clients reliably).
func (b *IPBanlist) Check(ip string) (dropped bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.banned[ip] {
		b.Dropped++
		return true
	}
	b.banned[ip] = true
	b.Banned++
	b.Passed++
	return false
}

// Size returns the number of banned addresses.
func (b *IPBanlist) Size() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.banned)
}
