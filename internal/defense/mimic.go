package defense

import (
	"net"
	"sync"
)

// TLSRecordFraming wraps a Shadowsocks connection's traffic in TLS
// application-data record framing: a fake ClientHello-shaped first
// record, then every write as [0x17 0x03 0x03 len₁ len₀][payload].
//
// Against the pure length+entropy detector of this paper this changes
// little — the record bodies are still ciphertext, and the FPStudy shows
// realistic TLS is probed at Shadowsocks-like rates anyway. Its value
// appears when the censor exempts TLS-framed flows to avoid mass-probing
// the web (the gfw.Config.TLSWhitelist knob): then framing drops probing
// to zero, which is the mechanism behind the probe-resistant tools §8
// cites (trojan, naiveproxy, HTTPT) — hide inside the protocol the censor
// cannot afford to probe.
//
// The framing is a model of that class of tools, not a TLS implementation:
// a real censor can of course distinguish it from genuine TLS by deeper
// fingerprinting (no certificate exchange, wrong handshake transcript).
type TLSRecordFraming struct{}

// ConnShaper returns an ssclient-compatible shaper.
func (TLSRecordFraming) ConnShaper() func(net.Conn) net.Conn {
	return func(c net.Conn) net.Conn {
		return &tlsFramedConn{Conn: c}
	}
}

// FrameFirstPacket converts a first-flight payload to its on-the-wire
// image under the framing — the flow-level form the netsim experiments
// use. The first flight is presented as a handshake record.
func (TLSRecordFraming) FrameFirstPacket(payload []byte) []byte {
	return frameRecord(0x16, payload)
}

// IsTLSFramed reports whether a first packet looks like a TLS record —
// the test a whitelist-style censor applies.
func IsTLSFramed(p []byte) bool {
	return len(p) >= 5 &&
		(p[0] == 0x16 || p[0] == 0x17) &&
		p[1] == 0x03 && p[2] <= 0x04 &&
		int(p[3])<<8|int(p[4]) == len(p)-5
}

func frameRecord(typ byte, payload []byte) []byte {
	out := make([]byte, 5+len(payload))
	out[0] = typ
	out[1], out[2] = 0x03, 0x03
	out[3], out[4] = byte(len(payload)>>8), byte(len(payload))
	copy(out[5:], payload)
	return out
}

// tlsFramedConn wraps each Write in a record and strips records on Read.
type tlsFramedConn struct {
	net.Conn
	mu     sync.Mutex
	first  bool
	rBuf   []byte
	header [5]byte
	hFill  int
}

func (c *tlsFramedConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	typ := byte(0x17)
	if !c.first {
		c.first = true
		typ = 0x16 // first flight framed as a handshake record
	}
	c.mu.Unlock()
	// Records cap at 2^14 bytes of payload.
	total := 0
	for len(p) > 0 {
		n := len(p)
		if n > 1<<14 {
			n = 1 << 14
		}
		if _, err := c.Conn.Write(frameRecord(typ, p[:n])); err != nil {
			return total, err
		}
		typ = 0x17
		total += n
		p = p[n:]
	}
	return total, nil
}

func (c *tlsFramedConn) Read(p []byte) (int, error) {
	for len(c.rBuf) == 0 {
		// Fill the record header.
		for c.hFill < 5 {
			n, err := c.Conn.Read(c.header[c.hFill:])
			c.hFill += n
			if err != nil {
				return 0, err
			}
		}
		bodyLen := int(c.header[3])<<8 | int(c.header[4])
		body := make([]byte, bodyLen)
		read := 0
		for read < bodyLen {
			n, err := c.Conn.Read(body[read:])
			read += n
			if err != nil {
				return 0, err
			}
		}
		c.hFill = 0
		c.rBuf = body
	}
	n := copy(p, c.rBuf)
	c.rBuf = c.rBuf[n:]
	return n, nil
}
