package defense

import (
	"bytes"
	"io"
	"net"
	"testing"
)

// TestTLSFramedConnRoundTrip verifies the shaper produces parseable
// records and the peer's framed conn reassembles the byte stream.
func TestTLSFramedConnRoundTrip(t *testing.T) {
	a, b := net.Pipe()
	f := TLSRecordFraming{}
	ca := f.ConnShaper()(a)
	cb := f.ConnShaper()(b)

	msgs := [][]byte{
		[]byte("first flight"),
		bytes.Repeat([]byte{0xEE}, 20000), // spans two records
		[]byte("tail"),
	}
	go func() {
		for _, m := range msgs {
			ca.Write(m)
		}
		a.Close()
	}()

	var got bytes.Buffer
	buf := make([]byte, 4096)
	for {
		n, err := cb.Read(buf)
		got.Write(buf[:n])
		if err != nil {
			break
		}
	}
	var want bytes.Buffer
	for _, m := range msgs {
		want.Write(m)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("reassembled %d bytes, want %d", got.Len(), want.Len())
	}
}

// TestTLSFramedWireShape checks the raw wire carries record framing with
// a handshake-type first record.
func TestTLSFramedWireShape(t *testing.T) {
	a, b := net.Pipe()
	f := TLSRecordFraming{}
	ca := f.ConnShaper()(a)

	go ca.Write(make([]byte, 100))
	hdr := make([]byte, 5)
	if _, err := io.ReadFull(b, hdr); err != nil {
		t.Fatal(err)
	}
	if hdr[0] != 0x16 || hdr[1] != 0x03 {
		t.Errorf("first record header % x", hdr)
	}
	if n := int(hdr[3])<<8 | int(hdr[4]); n != 100 {
		t.Errorf("record length %d", n)
	}
	body := make([]byte, 100)
	if _, err := io.ReadFull(b, body); err != nil {
		t.Fatal(err)
	}

	// Second write uses application-data records.
	go ca.Write(make([]byte, 7))
	if _, err := io.ReadFull(b, hdr); err != nil {
		t.Fatal(err)
	}
	if hdr[0] != 0x17 {
		t.Errorf("second record type %#x", hdr[0])
	}
	a.Close()
	b.Close()
}
