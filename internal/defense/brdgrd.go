// Package defense implements the circumvention-side mitigations of §7:
// brdgrd-style traffic shaping that breaks the client's first flight into
// small segments (defeating the GFW's first-packet length feature, §7.1),
// and helpers for evaluating defenses in both the flow-level simulator and
// over real TCP connections.
package defense

import (
	"math/rand"
	"net"
	"sync"
)

// Brdgrd emulates Philipp Winter's bridge guard: by announcing a small TCP
// window during the handshake, the server forces the client to split its
// first flight into segments no larger than the window. The GFW does not
// reassemble TCP segments for its first-packet classifier, so the "first
// data packet" it sees is at most MaxWindow bytes — far below the 160-byte
// floor of the replay trigger.
type Brdgrd struct {
	// MinWindow and MaxWindow bound the advertised window; the real tool
	// randomizes within a range to be less fingerprintable (at the cost
	// of a new fingerprint — inconsistent window sizes, a limitation
	// §7.1 discusses).
	MinWindow, MaxWindow int

	mu  sync.Mutex
	rng *rand.Rand
	// Active toggles the guard (the Figure 11 experiment flips it).
	active bool
}

// NewBrdgrd returns a guard with the given window range, initially active.
func NewBrdgrd(minWindow, maxWindow int, seed int64) *Brdgrd {
	if minWindow < 1 {
		minWindow = 1
	}
	if maxWindow < minWindow {
		maxWindow = minWindow
	}
	return &Brdgrd{
		MinWindow: minWindow,
		MaxWindow: maxWindow,
		rng:       rand.New(rand.NewSource(seed)),
		active:    true,
	}
}

// SetActive enables or disables the guard.
func (b *Brdgrd) SetActive(on bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.active = on
}

// Active reports whether the guard is shaping traffic.
func (b *Brdgrd) Active() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.active
}

// window draws the current advertised window.
func (b *Brdgrd) window() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.MinWindow + b.rng.Intn(b.MaxWindow-b.MinWindow+1)
}

// FirstSegment returns what the censor's first-packet classifier sees of
// payload: the whole payload when inactive, or only the first
// window-sized segment when active. This is the flow-level model used by
// the netsim experiments.
func (b *Brdgrd) FirstSegment(payload []byte) []byte {
	if !b.Active() || len(payload) == 0 {
		return payload
	}
	w := b.window()
	if w >= len(payload) {
		return payload
	}
	return payload[:w]
}

// ConnShaper returns an ssclient-compatible shaper that splits the first
// write on a real TCP connection into window-sized segments. Note the §7.1
// caveat: some implementations (old Shadowsocks-libev) RST when the first
// segment cannot contain a complete target specification, so very small
// windows can break connectivity.
func (b *Brdgrd) ConnShaper() func(net.Conn) net.Conn {
	return func(c net.Conn) net.Conn {
		return &shapedConn{Conn: c, guard: b}
	}
}

// shapedConn splits the first Write into segments of at most one window.
type shapedConn struct {
	net.Conn
	guard *Brdgrd
	wrote bool
}

func (s *shapedConn) Write(p []byte) (int, error) {
	if s.wrote || !s.guard.Active() {
		s.wrote = true
		return s.Conn.Write(p)
	}
	s.wrote = true
	total := 0
	for len(p) > 0 {
		w := s.guard.window()
		if w > len(p) {
			w = len(p)
		}
		n, err := s.Conn.Write(p[:w])
		total += n
		if err != nil {
			return total, err
		}
		p = p[w:]
	}
	return total, nil
}

// ConsistentReactions is the §7.2 server-side recommendation expressed as
// a checklist, used by documentation and the hardened profile's tests.
var ConsistentReactions = []string{
	"use AEAD ciphers exclusively; deprecate unauthenticated constructions",
	"filter replays by nonce AND timestamp so nonces need only bounded memory",
	"react to every error by reading until timeout, never by immediate close",
	"make the first server packet size variable (merge header and data)",
}
