package defense

import (
	"bytes"
	"net"
	"testing"
)

func TestFirstSegmentClamps(t *testing.T) {
	b := NewBrdgrd(4, 16, 1)
	payload := make([]byte, 500)
	for i := 0; i < 100; i++ {
		seg := b.FirstSegment(payload)
		if len(seg) < 4 || len(seg) > 16 {
			t.Fatalf("segment length %d outside window [4,16]", len(seg))
		}
	}
}

func TestFirstSegmentInactivePassThrough(t *testing.T) {
	b := NewBrdgrd(4, 16, 2)
	b.SetActive(false)
	payload := make([]byte, 500)
	if got := b.FirstSegment(payload); len(got) != 500 {
		t.Errorf("inactive guard clamped to %d", len(got))
	}
	b.SetActive(true)
	if got := b.FirstSegment(payload); len(got) == 500 {
		t.Error("re-activated guard did not clamp")
	}
}

func TestFirstSegmentShortPayload(t *testing.T) {
	b := NewBrdgrd(40, 64, 3)
	payload := []byte("tiny")
	if got := b.FirstSegment(payload); !bytes.Equal(got, payload) {
		t.Error("payload shorter than window was modified")
	}
	if got := b.FirstSegment(nil); got != nil {
		t.Error("nil payload mishandled")
	}
}

func TestWindowBoundsDegenerate(t *testing.T) {
	b := NewBrdgrd(0, -5, 4) // silly inputs normalize to [1,1]
	seg := b.FirstSegment(make([]byte, 10))
	if len(seg) != 1 {
		t.Errorf("degenerate window produced segment of %d", len(seg))
	}
}

// TestConnShaperSplitsFirstWrite verifies the real-TCP shaper: the first
// Write arrives as multiple small segments, later writes pass through.
func TestConnShaperSplitsFirstWrite(t *testing.T) {
	b := NewBrdgrd(8, 8, 5)
	a, z := net.Pipe()
	defer z.Close()
	shaped := b.ConnShaper()(a)

	var segments [][]byte
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 1024)
		for {
			n, err := z.Read(buf)
			if n > 0 {
				segments = append(segments, append([]byte(nil), buf[:n]...))
			}
			if err != nil {
				return
			}
		}
	}()

	first := make([]byte, 50)
	if _, err := shaped.Write(first); err != nil {
		t.Fatal(err)
	}
	second := make([]byte, 100)
	if _, err := shaped.Write(second); err != nil {
		t.Fatal(err)
	}
	shaped.Close()
	<-done

	if len(segments) < 7 { // 50/8 → 7 segments, then the second write
		t.Fatalf("first write produced %d segments, want >= 7", len(segments))
	}
	for i := 0; i < 6; i++ {
		if len(segments[i]) != 8 {
			t.Errorf("segment %d length %d, want 8", i, len(segments[i]))
		}
	}
	total := 0
	for _, s := range segments {
		total += len(s)
	}
	if total != 150 {
		t.Errorf("total bytes %d, want 150", total)
	}
}

func TestConsistentReactionsChecklist(t *testing.T) {
	if len(ConsistentReactions) != 4 {
		t.Error("the §7.2 checklist should have four recommendations")
	}
}

func TestIPBanlist(t *testing.T) {
	b := NewIPBanlist()
	if b.Check("1.1.1.1") {
		t.Error("first contact dropped")
	}
	if !b.Check("1.1.1.1") {
		t.Error("second contact not dropped")
	}
	if b.Check("2.2.2.2") {
		t.Error("fresh IP dropped")
	}
	if b.Size() != 2 || b.Banned != 2 || b.Dropped != 1 || b.Passed != 2 {
		t.Errorf("stats: %+v", b)
	}
}

func TestTLSFramingDetection(t *testing.T) {
	f := TLSRecordFraming{}
	payload := make([]byte, 300)
	framed := f.FrameFirstPacket(payload)
	if !IsTLSFramed(framed) {
		t.Error("framed packet not recognized")
	}
	if IsTLSFramed(payload) {
		t.Error("random payload recognized as TLS")
	}
	if IsTLSFramed(framed[:4]) {
		t.Error("short packet recognized")
	}
	bad := append([]byte(nil), framed...)
	bad[3] ^= 0x01 // wrong length field
	if IsTLSFramed(bad) {
		t.Error("length-inconsistent record recognized")
	}
}
