package region

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"

	"sslab/internal/gfw"
)

func valid() *Topology {
	return &Topology{Regions: []Region{
		{Name: "coastal", Weight: 2, Schedule: Schedule{
			{AtHours: 1, Kind: KindSensitivity, Value: 0.9},
			{AtHours: 24, Kind: KindBlockTTL, Value: 12, JitterHours: 2},
		}},
		{Name: "inland", Weight: 1},
	}}
}

func TestTopologyValidate(t *testing.T) {
	if err := valid().Validate(); err != nil {
		t.Fatalf("valid topology rejected: %v", err)
	}
	if err := Single().Validate(); err != nil {
		t.Fatalf("Single() rejected: %v", err)
	}

	cases := []struct {
		name string
		mut  func(*Topology)
		want string
	}{
		{"empty", func(tp *Topology) { tp.Regions = nil }, "at least one region"},
		{"unnamed", func(tp *Topology) { tp.Regions[0].Name = "" }, "name"},
		{"duplicate", func(tp *Topology) { tp.Regions[1].Name = "coastal" }, "duplicate"},
		{"zero weight", func(tp *Topology) { tp.Regions[0].Weight = 0 }, "weight"},
		{"negative weight", func(tp *Topology) { tp.Regions[1].Weight = -1 }, "weight"},
		{"nan weight", func(tp *Topology) { tp.Regions[0].Weight = math.NaN() }, "weight"},
		{"bad gfw", func(tp *Topology) { tp.Regions[0].GFW = &gfw.Config{Sensitivity: 2} }, "Sensitivity"},
		{"bad schedule", func(tp *Topology) {
			tp.Regions[0].Schedule = Schedule{{AtHours: -1, Kind: KindPause}}
		}, "AtHours"},
	}
	for _, tc := range cases {
		tp := valid()
		tc.mut(tp)
		err := tp.Validate()
		if err == nil {
			t.Fatalf("%s: invalid topology accepted", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestScheduleValidate(t *testing.T) {
	good := Schedule{
		{AtHours: 0, Kind: KindPause},
		{AtHours: 0, Kind: KindResume}, // ties are legal, applied in order
		{AtHours: 5.5, Kind: KindSensitivity, Value: 1},
		{AtHours: 5.5, Kind: KindBlockTTL, Value: 0, JitterHours: 0},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	var empty Schedule
	if err := empty.Validate(); err != nil {
		t.Fatalf("empty schedule rejected: %v", err)
	}

	bad := []Schedule{
		{{AtHours: -1, Kind: KindPause}},
		{{AtHours: math.Inf(1), Kind: KindPause}},
		{{AtHours: 2, Kind: KindPause}, {AtHours: 1, Kind: KindResume}}, // out of order
		{{AtHours: 1, Kind: "explode"}},
		{{AtHours: 1, Kind: KindSensitivity, Value: 1.5}},
		{{AtHours: 1, Kind: KindSensitivity, Value: -0.5}},
		{{AtHours: 1, Kind: KindBlockTTL, Value: -3}},
		{{AtHours: 1, Kind: KindBlockTTL, Value: 3, JitterHours: -1}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("bad schedule %d accepted: %+v", i, s)
		}
	}
}

// TestTopologyJSONRoundTrip: schedules and topologies are declarative
// config — they must survive a JSON round trip unchanged, so campaign
// grids and sweep files can carry them.
func TestTopologyJSONRoundTrip(t *testing.T) {
	tp := valid()
	tp.Regions[1].GFW = &gfw.Config{Sensitivity: 0.4, PoolSize: 7}
	b, err := json.Marshal(tp)
	if err != nil {
		t.Fatal(err)
	}
	var back Topology
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tp, &back) {
		t.Fatalf("topology changed in JSON round trip:\n%+v\nvs\n%+v", tp, &back)
	}
	b2, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != string(b2) {
		t.Fatalf("re-marshal not byte-identical:\n%s\nvs\n%s", b, b2)
	}
	// Regions without overrides serialize compactly: no GFW/Schedule keys.
	lean, err := json.Marshal(&Topology{Regions: []Region{{Name: "all", Weight: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"GFW", "Schedule"} {
		if strings.Contains(string(lean), key) {
			t.Fatalf("lean region serialized a %s key: %s", key, lean)
		}
	}
}

func TestTopologyHelpers(t *testing.T) {
	tp := valid()
	if got := tp.Names(); !reflect.DeepEqual(got, []string{"coastal", "inland"}) {
		t.Fatalf("Names() = %v", got)
	}
	if got := tp.TotalWeight(); got != 3 {
		t.Fatalf("TotalWeight() = %v, want 3", got)
	}
}
