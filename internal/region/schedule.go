package region

import (
	"fmt"
	"math"
)

// Event kinds a Schedule may contain.
const (
	// KindSensitivity sets the censor's blocking sensitivity to Value
	// (a probability — the "human factor" lever of §6).
	KindSensitivity = "sensitivity"
	// KindBlockTTL sets the block rule lifetime to Value hours with
	// JitterHours of uniform whole-hour jitter on top (zero jitter
	// skips the jitter draw).
	KindBlockTTL = "block-ttl"
	// KindPause suspends recording and probing; passive observation
	// continues. Value is unused.
	KindPause = "pause"
	// KindResume ends a pause. Value is unused.
	KindResume = "resume"
)

// Event is one timed policy change.
type Event struct {
	// AtHours is the event's virtual time, in hours from the start of
	// the run.
	AtHours float64
	// Kind is one of the Kind* constants.
	Kind string
	// Value is the kind-specific magnitude: a sensitivity for
	// KindSensitivity, a TTL in hours for KindBlockTTL; unused for
	// pause/resume.
	Value float64 `json:"Value,omitzero"`
	// JitterHours is KindBlockTTL's jitter width (see gfw.SetBlockTTL).
	JitterHours float64 `json:"JitterHours,omitzero"`
}

// Schedule is an ordered list of timed policy events. Events are
// applied inside the censor at their virtual times, between — never
// during — flow deliveries at the same instant.
type Schedule []Event

// Validate checks the schedule: events sorted by time (ties allowed —
// they apply in declaration order), non-negative finite times, known
// kinds, and in-domain values (sensitivity in [0, 1], TTL and jitter
// non-negative).
func (s Schedule) Validate() error {
	prev := math.Inf(-1)
	for i, e := range s {
		if math.IsNaN(e.AtHours) || e.AtHours < 0 || math.IsInf(e.AtHours, 0) {
			return fmt.Errorf("schedule event %d: AtHours must be non-negative and finite, got %v", i, e.AtHours)
		}
		if e.AtHours < prev {
			return fmt.Errorf("schedule event %d: AtHours %v precedes event %d (%v); events must be sorted", i, e.AtHours, i-1, prev)
		}
		prev = e.AtHours
		switch e.Kind {
		case KindSensitivity:
			if math.IsNaN(e.Value) || e.Value < 0 || e.Value > 1 {
				return fmt.Errorf("schedule event %d: sensitivity must be in [0, 1], got %v", i, e.Value)
			}
		case KindBlockTTL:
			if math.IsNaN(e.Value) || e.Value < 0 {
				return fmt.Errorf("schedule event %d: block TTL hours must be non-negative, got %v", i, e.Value)
			}
			if math.IsNaN(e.JitterHours) || e.JitterHours < 0 {
				return fmt.Errorf("schedule event %d: jitter hours must be non-negative, got %v", i, e.JitterHours)
			}
		case KindPause, KindResume:
			// no value
		default:
			return fmt.Errorf("schedule event %d: unknown kind %q", i, e.Kind)
		}
	}
	return nil
}
