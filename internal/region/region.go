// Package region is the spatial layer of the fleet engine: it carves
// the simulated population into named censorship regions, each with
// its own censor configuration and its own timed policy schedule. The
// paper studies one censor (the GFW) at one point in time; regional
// topologies let experiments ask the follow-on questions — how do
// detection latency and block rates differ across provinces with
// different probing sensitivity, and what happens when policy changes
// mid-run (politically sensitive periods, §6's "human factor")?
//
// A topology is declarative data: it validates, round-trips through
// JSON, and is interpreted by internal/fleet when planning a run. The
// one-region topology is the identity — engines built over it are
// byte-identical to engines built with no topology at all.
package region

import (
	"fmt"
	"math"

	"sslab/internal/gfw"
)

// Topology is a partition of the fleet into censorship regions.
// Users and their servers are assigned to regions in proportion to
// Weight; each region's censor sees only its own flows.
type Topology struct {
	Regions []Region
}

// Region is one named censorship region.
type Region struct {
	// Name labels the region in reports ("coastal", "inland", ...).
	Name string
	// Weight is the region's share of the fleet's users and servers,
	// relative to the sum over all regions. Weights must be positive;
	// they need not sum to 1.
	Weight float64
	// GFW, when non-nil, replaces the engine-level censor configuration
	// wholesale for this region's censor (the seed is still derived by
	// the engine; a Seed set here is ignored). Nil inherits the
	// engine-level configuration.
	GFW *gfw.Config `json:"GFW,omitempty"`
	// Schedule is the region's timed policy events, applied to the
	// region's censor at virtual-time boundaries. Empty means the
	// censor's configuration holds for the whole run.
	Schedule Schedule `json:"Schedule,omitempty"`
}

// Single returns the trivial one-region topology every non-regional
// run implicitly uses.
func Single() *Topology {
	return &Topology{Regions: []Region{{Name: "all", Weight: 1}}}
}

// Validate checks the topology: at least one region, unique non-empty
// names, positive finite weights, valid per-region censor overrides
// and schedules.
func (t *Topology) Validate() error {
	if t == nil || len(t.Regions) == 0 {
		return fmt.Errorf("region: topology needs at least one region")
	}
	seen := make(map[string]bool, len(t.Regions))
	for i, r := range t.Regions {
		if r.Name == "" {
			return fmt.Errorf("region: region %d has no name", i)
		}
		if seen[r.Name] {
			return fmt.Errorf("region: duplicate region name %q", r.Name)
		}
		seen[r.Name] = true
		if !(r.Weight > 0) || math.IsInf(r.Weight, 0) {
			return fmt.Errorf("region %q: weight must be positive and finite, got %v", r.Name, r.Weight)
		}
		if r.GFW != nil {
			if err := r.GFW.Validate(); err != nil {
				return fmt.Errorf("region %q: %w", r.Name, err)
			}
		}
		if err := r.Schedule.Validate(); err != nil {
			return fmt.Errorf("region %q: %w", r.Name, err)
		}
	}
	return nil
}

// Names returns the region names in declaration order.
func (t *Topology) Names() []string {
	out := make([]string, len(t.Regions))
	for i, r := range t.Regions {
		out[i] = r.Name
	}
	return out
}

// TotalWeight returns the sum of the regions' weights.
func (t *Topology) TotalWeight() float64 {
	var sum float64
	for _, r := range t.Regions {
		sum += r.Weight
	}
	return sum
}
