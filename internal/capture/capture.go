// Package capture holds packet-level records of observed active probes and
// the analysis functions the paper's measurement pipeline applies to them:
// per-IP counts (Figure 3, Table 2), AS attribution (Table 3), source-port
// distribution (Figure 5), TCP-timestamp process clustering (Figure 6),
// replay-delay measurement (Figure 7), probe-type classification (§3.2),
// and cross-dataset overlap (Figure 4).
package capture

import (
	"sort"
	"time"

	"sslab/internal/probe"
	"sslab/internal/stats"
)

// Record is one captured probe connection, with the packet-level
// fingerprints §3.4 examines.
type Record struct {
	Time    time.Time
	SrcIP   string
	SrcPort int
	DstIP   string
	DstPort int
	ASN     int    // origin autonomous system of SrcIP
	TTL     int    // IP TTL observed at the server
	IPID    uint16 // IP identification field
	TSval   uint32 // TCP timestamp option on the SYN
	Payload []byte
	// Type is the classified probe type (set by Classify or by the
	// generator when ground truth is available).
	Type probe.Type
	// ReplayOf is when the replayed payload was originally recorded
	// (zero for non-replay probes).
	ReplayOf time.Time
}

// Delay returns the replay delay, or zero for non-replay probes.
func (r *Record) Delay() time.Duration {
	if r.ReplayOf.IsZero() {
		return 0
	}
	return r.Time.Sub(r.ReplayOf)
}

// Log is an append-only collection of probe records.
type Log struct {
	Records []Record
	start   time.Time
}

// NewLog creates a Log; start anchors relative timestamps for analysis.
func NewLog(start time.Time) *Log { return &Log{start: start} }

// Add appends a record.
func (l *Log) Add(r Record) { l.Records = append(l.Records, r) }

// Len returns the number of records.
func (l *Log) Len() int { return len(l.Records) }

// UniqueIPs returns the distinct source IPs.
func (l *Log) UniqueIPs() []string {
	seen := map[string]bool{}
	var out []string
	for i := range l.Records {
		ip := l.Records[i].SrcIP
		if !seen[ip] {
			seen[ip] = true
			out = append(out, ip)
		}
	}
	sort.Strings(out)
	return out
}

// ProbesPerIP returns the count of probes per source IP.
func (l *Log) ProbesPerIP() map[string]int {
	out := map[string]int{}
	for i := range l.Records {
		out[l.Records[i].SrcIP]++
	}
	return out
}

// MultiUseFraction is the share of source IPs that sent more than one
// probe — the paper found >75%, versus ~5% in 2015-era work.
func (l *Log) MultiUseFraction() float64 {
	per := l.ProbesPerIP()
	if len(per) == 0 {
		return 0
	}
	multi := 0
	for _, c := range per {
		if c > 1 {
			multi++
		}
	}
	return float64(multi) / float64(len(per))
}

// IPCount pairs an IP with its probe count.
type IPCount struct {
	IP    string
	Count int
}

// TopIPs returns the k most active prober IPs (Table 2).
func (l *Log) TopIPs(k int) []IPCount {
	per := l.ProbesPerIP()
	all := make([]IPCount, 0, len(per))
	for ip, c := range per {
		all = append(all, IPCount{ip, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].IP < all[j].IP
	})
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

// ASCounts returns unique prober IPs per AS (Table 3 counts unique
// addresses, not probes).
func (l *Log) ASCounts() map[int]int {
	ipAS := map[string]int{}
	for i := range l.Records {
		ipAS[l.Records[i].SrcIP] = l.Records[i].ASN
	}
	out := map[int]int{}
	for _, asn := range ipAS {
		out[asn]++
	}
	return out
}

// SourcePorts returns all source ports as float64s for CDF analysis.
func (l *Log) SourcePorts() *stats.CDF {
	s := make([]float64, len(l.Records))
	for i := range l.Records {
		s[i] = float64(l.Records[i].SrcPort)
	}
	return stats.NewCDF(s)
}

// TSPoints converts records to (relative seconds, TSval) points.
func (l *Log) TSPoints() []stats.TSPoint {
	out := make([]stats.TSPoint, len(l.Records))
	for i := range l.Records {
		out[i] = stats.TSPoint{
			T:     l.Records[i].Time.Sub(l.start).Seconds(),
			TSval: l.Records[i].TSval,
		}
	}
	return out
}

// ReplayDelays returns the delays of replay-based probes in seconds:
// all occurrences, and first occurrences per distinct payload (the two
// distributions of Figure 7).
func (l *Log) ReplayDelays() (all, first *stats.CDF) {
	var allS []float64
	firstSeen := map[string]time.Duration{}
	for i := range l.Records {
		r := &l.Records[i]
		if r.ReplayOf.IsZero() {
			continue
		}
		d := r.Delay()
		allS = append(allS, d.Seconds())
		key := string(r.Payload)
		if prev, ok := firstSeen[key]; !ok || d < prev {
			firstSeen[key] = d
		}
	}
	var firstS []float64
	for _, d := range firstSeen {
		firstS = append(firstS, d.Seconds()) //sslab:allow-maporder NewCDF copies and sorts its samples, so collection order never reaches the report
	}
	return stats.NewCDF(allS), stats.NewCDF(firstS)
}

// TypeCounts tallies records by probe type.
func (l *Log) TypeCounts() map[probe.Type]int {
	out := map[probe.Type]int{}
	for i := range l.Records {
		out[l.Records[i].Type]++
	}
	return out
}

// LengthHistogram returns payload-length counts for records matching the
// given predicate (nil matches all) — the data behind Figures 2 and 8.
func (l *Log) LengthHistogram(match func(*Record) bool) *stats.Histogram {
	h := stats.NewHistogram()
	for i := range l.Records {
		if match == nil || match(&l.Records[i]) {
			h.Add(len(l.Records[i].Payload))
		}
	}
	return h
}

// Classify assigns Type to every record by matching payloads against the
// recorded legitimate first packets, as the paper's offline analysis did.
func (l *Log) Classify(legit [][]byte) {
	for i := range l.Records {
		l.Records[i].Type = probe.Classify(l.Records[i].Payload, legit)
	}
}

// Overlap computes the 7 Venn regions for three IP sets (Figure 4).
type Overlap struct {
	AOnly, BOnly, COnly int
	AB, AC, BC          int
	ABC                 int
}

// ComputeOverlap intersects three string sets.
func ComputeOverlap(a, b, c []string) Overlap {
	sa, sb, sc := toSet(a), toSet(b), toSet(c)
	var o Overlap
	for ip := range sa {
		switch {
		case sb[ip] && sc[ip]:
			o.ABC++
		case sb[ip]:
			o.AB++
		case sc[ip]:
			o.AC++
		default:
			o.AOnly++
		}
	}
	for ip := range sb {
		switch {
		case sa[ip]:
			// counted above
		case sc[ip]:
			o.BC++
		default:
			o.BOnly++
		}
	}
	for ip := range sc {
		if !sa[ip] && !sb[ip] {
			o.COnly++
		}
	}
	return o
}

func toSet(xs []string) map[string]bool {
	m := make(map[string]bool, len(xs))
	for _, x := range xs {
		m[x] = true
	}
	return m
}

// typeFromName resolves a stored probe-type name.
func typeFromName(name string) probe.Type { return probe.FromName(name) }
