package capture

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"sslab/internal/probe"
)

func TestJSONRoundTrip(t *testing.T) {
	l := NewLog(t0)
	l.Add(Record{
		Time: t0.Add(3 * time.Second), SrcIP: "175.42.1.21", SrcPort: 41234,
		DstIP: "178.62.1.1", DstPort: 8388, ASN: 4837, TTL: 48, IPID: 0xBEEF,
		TSval: 123456789, Payload: []byte{0, 1, 2, 0xFF}, Type: probe.R1,
		ReplayOf: t0,
	})
	l.Add(Record{
		Time: t0.Add(time.Hour), SrcIP: "223.166.74.207", SrcPort: 2000,
		Payload: make([]byte, 221), Type: probe.NR2,
	})

	var buf bytes.Buffer
	if err := l.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != l.Len() {
		t.Fatalf("records = %d, want %d", got.Len(), l.Len())
	}
	a, b := &l.Records[0], &got.Records[0]
	if !a.Time.Equal(b.Time) || a.SrcIP != b.SrcIP || a.SrcPort != b.SrcPort ||
		a.ASN != b.ASN || a.TTL != b.TTL || a.IPID != b.IPID || a.TSval != b.TSval {
		t.Errorf("fields differ: %+v vs %+v", a, b)
	}
	if !bytes.Equal(a.Payload, b.Payload) {
		t.Error("payload corrupted")
	}
	if b.Type != probe.R1 || !b.ReplayOf.Equal(t0) {
		t.Errorf("type/replay lost: %v %v", b.Type, b.ReplayOf)
	}
	if got.Records[1].Type != probe.NR2 || !got.Records[1].ReplayOf.IsZero() {
		t.Error("NR2 record mangled")
	}

	// Analysis still works on the round-tripped log.
	if got.MultiUseFraction() != l.MultiUseFraction() {
		t.Error("analysis differs after round trip")
	}
}

func TestReadJSONErrors(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"start":"2019-09-29T00:00:00Z","records":1}` + "\ngarbage\n")); err == nil {
		t.Error("garbage record accepted")
	}
}

func TestProbeTypeNameRoundTrip(t *testing.T) {
	for _, typ := range []probe.Type{probe.Unknown, probe.R1, probe.R5, probe.NR1, probe.NR3} {
		if got := probe.FromName(typ.String()); got != typ {
			t.Errorf("FromName(%q) = %v", typ.String(), got)
		}
	}
	if probe.FromName("bogus") != probe.Unknown {
		t.Error("bogus name not Unknown")
	}
}
