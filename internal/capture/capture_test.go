package capture

import (
	"fmt"
	"testing"
	"time"

	"sslab/internal/probe"
)

var t0 = time.Date(2019, 9, 29, 0, 0, 0, 0, time.UTC)

func mkLog() *Log {
	l := NewLog(t0)
	// Three probes from ip1, one from ip2.
	for i := 0; i < 3; i++ {
		l.Add(Record{
			Time: t0.Add(time.Duration(i) * time.Hour), SrcIP: "175.42.1.21", SrcPort: 40000 + i,
			ASN: 4837, Payload: []byte{1, 2, 3}, TSval: uint32(1000 + 250*3600*i),
		})
	}
	l.Add(Record{
		Time: t0.Add(time.Minute), SrcIP: "223.166.74.207", SrcPort: 2000,
		ASN: 4134, Payload: make([]byte, 221),
	})
	return l
}

func TestPerIPAnalysis(t *testing.T) {
	l := mkLog()
	if got := len(l.UniqueIPs()); got != 2 {
		t.Errorf("unique IPs = %d", got)
	}
	if f := l.MultiUseFraction(); f != 0.5 {
		t.Errorf("multi-use fraction = %v", f)
	}
	top := l.TopIPs(1)
	if top[0].IP != "175.42.1.21" || top[0].Count != 3 {
		t.Errorf("top = %+v", top)
	}
	as := l.ASCounts()
	if as[4837] != 1 || as[4134] != 1 {
		t.Errorf("AS counts = %v (unique IPs per AS)", as)
	}
}

func TestReplayDelays(t *testing.T) {
	l := NewLog(t0)
	pay := []byte("recorded-payload-content")
	rec := t0
	// Same payload replayed at +1s and +1h; another payload at +10s.
	l.Add(Record{Time: t0.Add(time.Second), Payload: pay, Type: probe.R1, ReplayOf: rec})
	l.Add(Record{Time: t0.Add(time.Hour), Payload: pay, Type: probe.R1, ReplayOf: rec})
	l.Add(Record{Time: t0.Add(10 * time.Second), Payload: []byte("other"), Type: probe.R1, ReplayOf: t0})
	l.Add(Record{Time: t0.Add(time.Minute), Payload: make([]byte, 221), Type: probe.NR2})

	all, first := l.ReplayDelays()
	if all.Len() != 3 {
		t.Errorf("all delays = %d, want 3", all.Len())
	}
	if first.Len() != 2 {
		t.Errorf("first delays = %d, want 2", first.Len())
	}
	if first.Max() > 11 {
		t.Errorf("first-delay max %v; repeated replay leaked in", first.Max())
	}
}

func TestClassifyIntegration(t *testing.T) {
	l := NewLog(t0)
	legit := [][]byte{make([]byte, 300)}
	for i := range legit[0] {
		legit[0][i] = byte(i)
	}
	id := append([]byte(nil), legit[0]...)
	l.Add(Record{Payload: id})
	mut := append([]byte(nil), legit[0]...)
	mut[0] ^= 0xff
	l.Add(Record{Payload: mut})
	l.Add(Record{Payload: make([]byte, 221)})
	l.Classify(legit)
	if l.Records[0].Type != probe.R1 || l.Records[1].Type != probe.R2 || l.Records[2].Type != probe.NR2 {
		t.Errorf("types = %v %v %v", l.Records[0].Type, l.Records[1].Type, l.Records[2].Type)
	}
}

func TestLengthHistogram(t *testing.T) {
	l := mkLog()
	h := l.LengthHistogram(nil)
	if h.Count(3) != 3 || h.Count(221) != 1 {
		t.Errorf("histogram = %v", h.Counts)
	}
	h221 := l.LengthHistogram(func(r *Record) bool { return len(r.Payload) == 221 })
	if h221.Total != 1 {
		t.Errorf("filtered total = %d", h221.Total)
	}
}

func TestComputeOverlap(t *testing.T) {
	mk := func(prefix string, n int, shared ...string) []string {
		out := append([]string(nil), shared...)
		for i := 0; i < n; i++ {
			out = append(out, fmt.Sprintf("%s.%d", prefix, i))
		}
		return out
	}
	a := mk("a", 100, "x.1", "y.1", "z.1")
	b := mk("b", 200, "x.1", "z.1")
	c := mk("c", 50, "y.1", "z.1")
	o := ComputeOverlap(a, b, c)
	if o.AOnly != 100 || o.BOnly != 200 || o.COnly != 50 {
		t.Errorf("onlies = %d/%d/%d", o.AOnly, o.BOnly, o.COnly)
	}
	if o.AB != 1 || o.AC != 1 || o.BC != 0 || o.ABC != 1 {
		t.Errorf("overlaps = AB%d AC%d BC%d ABC%d", o.AB, o.AC, o.BC, o.ABC)
	}
}

func TestSourcePortsCDF(t *testing.T) {
	l := mkLog()
	cdf := l.SourcePorts()
	if cdf.Len() != 4 {
		t.Errorf("ports = %d", cdf.Len())
	}
	if cdf.Min() != 2000 {
		t.Errorf("min port = %v", cdf.Min())
	}
}

func TestTSPoints(t *testing.T) {
	l := mkLog()
	pts := l.TSPoints()
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[1].T != 3600 {
		t.Errorf("relative time = %v, want 3600", pts[1].T)
	}
}
