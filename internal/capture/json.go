package capture

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// jsonRecord is the wire form of a Record: one JSON object per line
// (JSONL), with the payload base64-encoded by encoding/json.
type jsonRecord struct {
	Time     time.Time `json:"time"`
	SrcIP    string    `json:"src_ip"`
	SrcPort  int       `json:"src_port"`
	DstIP    string    `json:"dst_ip"`
	DstPort  int       `json:"dst_port"`
	ASN      int       `json:"asn"`
	TTL      int       `json:"ttl"`
	IPID     uint16    `json:"ip_id"`
	TSval    uint32    `json:"tsval"`
	Payload  []byte    `json:"payload"`
	Type     string    `json:"type"`
	ReplayOf time.Time `json:"replay_of,omitempty"`
}

// WriteJSON streams the log as JSON lines, one record per line, preceded
// by a header line carrying the log start time.
func (l *Log) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(struct {
		Start   time.Time `json:"start"`
		Records int       `json:"records"`
	}{l.start, len(l.Records)}); err != nil {
		return err
	}
	for i := range l.Records {
		r := &l.Records[i]
		jr := jsonRecord{
			Time: r.Time, SrcIP: r.SrcIP, SrcPort: r.SrcPort,
			DstIP: r.DstIP, DstPort: r.DstPort, ASN: r.ASN,
			TTL: r.TTL, IPID: r.IPID, TSval: r.TSval,
			Payload: r.Payload, Type: r.Type.String(), ReplayOf: r.ReplayOf,
		}
		if err := enc.Encode(jr); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSON loads a log written by WriteJSON. Probe types are re-derived
// from the stored names; unknown names map to the Unknown type.
func ReadJSON(r io.Reader) (*Log, error) {
	dec := json.NewDecoder(r)
	var hdr struct {
		Start   time.Time `json:"start"`
		Records int       `json:"records"`
	}
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("capture: reading header: %w", err)
	}
	l := NewLog(hdr.Start)
	for {
		var jr jsonRecord
		if err := dec.Decode(&jr); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("capture: reading record %d: %w", len(l.Records), err)
		}
		l.Add(Record{
			Time: jr.Time, SrcIP: jr.SrcIP, SrcPort: jr.SrcPort,
			DstIP: jr.DstIP, DstPort: jr.DstPort, ASN: jr.ASN,
			TTL: jr.TTL, IPID: jr.IPID, TSval: jr.TSval,
			Payload: jr.Payload, Type: typeFromName(jr.Type), ReplayOf: jr.ReplayOf,
		})
	}
	return l, nil
}
