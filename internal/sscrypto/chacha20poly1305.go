package sscrypto

import (
	"crypto/subtle"
	"encoding/binary"
	"errors"
)

// ChaCha20Poly1305 implements the RFC 8439 AEAD as a cipher.AEAD. It is the
// cipher behind the Shadowsocks "chacha20-ietf-poly1305" method — the only
// AEAD method OutlineVPN supports.
//
// An instance is NOT safe for concurrent use: it owns a MAC scratch
// buffer so that steady-state Seal/Open perform no heap allocation. The
// Shadowsocks construction derives one AEAD per connection direction,
// which is exactly this single-user shape.
type ChaCha20Poly1305 struct {
	key    [ChaCha20KeySize]byte
	macBuf []byte // scratch for the padded Poly1305 input
}

// ErrAuthFailed is returned by Open when the Poly1305 tag does not verify.
// In Shadowsocks server terms this is the "authentication error" that, in
// older implementations, triggered an immediate RST (see Figure 10b of the
// paper).
var ErrAuthFailed = errors.New("sscrypto: message authentication failed")

// NewChaCha20Poly1305 returns an AEAD for the given 32-byte key.
func NewChaCha20Poly1305(key []byte) (*ChaCha20Poly1305, error) {
	if len(key) != ChaCha20KeySize {
		return nil, errChaChaParams
	}
	a := &ChaCha20Poly1305{}
	copy(a.key[:], key)
	return a, nil
}

// NonceSize implements cipher.AEAD.
func (*ChaCha20Poly1305) NonceSize() int { return ChaCha20NonceSizeIETF }

// Overhead implements cipher.AEAD.
func (*ChaCha20Poly1305) Overhead() int { return Poly1305TagSize }

// tag computes the RFC 8439 MAC for the given ciphertext and additional
// data under the one-time key derived from (key, nonce).
func (a *ChaCha20Poly1305) tag(out *[16]byte, nonce, ciphertext, additionalData []byte) {
	var block [64]byte
	if err := chacha20Block64(a.key[:], nonce, 0, &block); err != nil {
		panic(err) // nonce length was validated by the caller
	}
	var polyKey [32]byte
	copy(polyKey[:], block[:32])

	mac := a.macBuf[:0]
	mac = append(mac, additionalData...)
	mac = appendPad16(mac)
	mac = append(mac, ciphertext...)
	mac = appendPad16(mac)
	mac = binary.LittleEndian.AppendUint64(mac, uint64(len(additionalData)))
	mac = binary.LittleEndian.AppendUint64(mac, uint64(len(ciphertext)))
	a.macBuf = mac // keep the grown capacity for the next chunk
	Poly1305(out, mac, &polyKey)
}

func appendPad16(b []byte) []byte {
	if rem := len(b) % 16; rem != 0 {
		var zero [16]byte
		b = append(b, zero[:16-rem]...)
	}
	return b
}

// Seal implements cipher.AEAD: it encrypts plaintext, appends the result
// and a 16-byte tag to dst, and returns the extended slice.
//
//sslab:hotpath
func (a *ChaCha20Poly1305) Seal(dst, nonce, plaintext, additionalData []byte) []byte {
	if len(nonce) != ChaCha20NonceSizeIETF {
		panic("sscrypto: bad nonce length for chacha20-poly1305")
	}
	// Grow dst without zero-filling so in-place encryption via
	// Seal(plaintext[:0], ...) works.
	off := len(dst)
	if total := off + len(plaintext) + Poly1305TagSize; cap(dst) >= total {
		dst = dst[:total]
	} else {
		grown := make([]byte, total)
		copy(grown, dst)
		dst = grown
	}
	ct := dst[off : off+len(plaintext)]

	var s ChaCha20 // stack-allocated: Seal itself must not heap-allocate
	if err := initChaCha20(&s, a.key[:], nonce, 1); err != nil {
		panic(err)
	}
	s.XORKeyStream(ct, plaintext)

	var t [16]byte
	a.tag(&t, nonce, ct, additionalData)
	copy(dst[off+len(plaintext):], t[:])
	return dst
}

// Open implements cipher.AEAD: it verifies the tag and decrypts. On
// authentication failure it returns ErrAuthFailed and leaves dst unchanged.
//
//sslab:hotpath
func (a *ChaCha20Poly1305) Open(dst, nonce, ciphertext, additionalData []byte) ([]byte, error) {
	if len(nonce) != ChaCha20NonceSizeIETF {
		return nil, errChaChaParams
	}
	if len(ciphertext) < Poly1305TagSize {
		return nil, ErrAuthFailed
	}
	ct := ciphertext[:len(ciphertext)-Poly1305TagSize]
	want := ciphertext[len(ciphertext)-Poly1305TagSize:]

	var t [16]byte
	a.tag(&t, nonce, ct, additionalData)
	if subtle.ConstantTimeCompare(t[:], want) != 1 {
		return nil, ErrAuthFailed
	}

	// Grow dst without zero-filling: callers conventionally pass
	// ciphertext[:0] as dst, and zeroing would destroy ct before the XOR.
	off := len(dst)
	if total := off + len(ct); cap(dst) >= total {
		dst = dst[:total]
	} else {
		grown := make([]byte, total)
		copy(grown, dst)
		dst = grown
	}
	var s ChaCha20 // stack-allocated: Open itself must not heap-allocate
	if err := initChaCha20(&s, a.key[:], nonce, 1); err != nil {
		return nil, err
	}
	s.XORKeyStream(dst[off:], ct)
	return dst, nil
}
