// Package sscrypto implements the cryptographic primitives Shadowsocks
// depends on that are not available in the Go standard library: ChaCha20
// (both the RFC 8439 IETF variant with a 12-byte nonce and the original
// variant with an 8-byte nonce), Poly1305, the combined ChaCha20-Poly1305
// AEAD, HKDF-SHA1 (the KDF the Shadowsocks AEAD construction uses to derive
// per-session subkeys), and OpenSSL's EVP_BytesToKey password KDF.
//
// It also provides the cipher registry that maps Shadowsocks method names
// such as "aes-256-gcm" or "chacha20-ietf-poly1305" to key sizes, IV/salt
// sizes and constructors, mirroring the method tables of the Shadowsocks
// whitepaper.
package sscrypto

import (
	"encoding/binary"
	"errors"
	"math/bits"
)

// ChaCha20KeySize is the key size of every ChaCha20 variant, in bytes.
const ChaCha20KeySize = 32

// ChaCha20NonceSizeIETF is the nonce size of the RFC 8439 variant.
const ChaCha20NonceSizeIETF = 12

// ChaCha20NonceSizeLegacy is the nonce size of the original DJB variant
// (used by the Shadowsocks "chacha20" stream method, which has an 8-byte IV).
const ChaCha20NonceSizeLegacy = 8

var errChaChaParams = errors.New("sscrypto: bad ChaCha20 key or nonce length")

// ChaCha20 is a streaming ChaCha20 cipher implementing XOR of an arbitrary
// length keystream. It supports both the IETF (12-byte nonce, 32-bit
// counter) and legacy (8-byte nonce, 64-bit counter) variants.
type ChaCha20 struct {
	state   [16]uint32 // input block: constants, key, counter, nonce
	buf     [64]byte   // currently buffered keystream block
	bufUsed int        // bytes of buf already consumed; 64 means empty
	legacy  bool       // 64-bit counter variant
}

// NewChaCha20 returns a ChaCha20 stream for the given 32-byte key and a
// 12-byte (IETF) or 8-byte (legacy) nonce. The counter starts at zero.
func NewChaCha20(key, nonce []byte) (*ChaCha20, error) {
	return NewChaCha20WithCounter(key, nonce, 0)
}

// NewChaCha20WithCounter is NewChaCha20 with an explicit initial block
// counter, as needed by the RFC 8439 AEAD construction (counter 1 for the
// body, counter 0 for the one-time Poly1305 key).
func NewChaCha20WithCounter(key, nonce []byte, counter uint32) (*ChaCha20, error) {
	c := &ChaCha20{}
	if err := initChaCha20(c, key, nonce, counter); err != nil {
		return nil, err
	}
	return c, nil
}

// initChaCha20 initializes c in place for (key, nonce, counter). The AEAD
// hot path uses it with stack-allocated ChaCha20 values so that sealing
// or opening a chunk performs no heap allocation.
func initChaCha20(c *ChaCha20, key, nonce []byte, counter uint32) error {
	if len(key) != ChaCha20KeySize {
		return errChaChaParams
	}
	*c = ChaCha20{bufUsed: 64}
	c.state[0] = 0x61707865
	c.state[1] = 0x3320646e
	c.state[2] = 0x79622d32
	c.state[3] = 0x6b206574
	for i := 0; i < 8; i++ {
		c.state[4+i] = binary.LittleEndian.Uint32(key[4*i:])
	}
	switch len(nonce) {
	case ChaCha20NonceSizeIETF:
		c.state[12] = counter
		c.state[13] = binary.LittleEndian.Uint32(nonce[0:])
		c.state[14] = binary.LittleEndian.Uint32(nonce[4:])
		c.state[15] = binary.LittleEndian.Uint32(nonce[8:])
	case ChaCha20NonceSizeLegacy:
		c.legacy = true
		c.state[12] = counter
		c.state[13] = 0
		c.state[14] = binary.LittleEndian.Uint32(nonce[0:])
		c.state[15] = binary.LittleEndian.Uint32(nonce[4:])
	default:
		return errChaChaParams
	}
	return nil
}

func quarterRound(a, b, c, d uint32) (uint32, uint32, uint32, uint32) {
	a += b
	d = bits.RotateLeft32(d^a, 16)
	c += d
	b = bits.RotateLeft32(b^c, 12)
	a += b
	d = bits.RotateLeft32(d^a, 8)
	c += d
	b = bits.RotateLeft32(b^c, 7)
	return a, b, c, d
}

// block generates the next 64-byte keystream block into c.buf and
// increments the counter.
func (c *ChaCha20) block() {
	var x [16]uint32
	copy(x[:], c.state[:])
	for i := 0; i < 10; i++ {
		// Column rounds.
		x[0], x[4], x[8], x[12] = quarterRound(x[0], x[4], x[8], x[12])
		x[1], x[5], x[9], x[13] = quarterRound(x[1], x[5], x[9], x[13])
		x[2], x[6], x[10], x[14] = quarterRound(x[2], x[6], x[10], x[14])
		x[3], x[7], x[11], x[15] = quarterRound(x[3], x[7], x[11], x[15])
		// Diagonal rounds.
		x[0], x[5], x[10], x[15] = quarterRound(x[0], x[5], x[10], x[15])
		x[1], x[6], x[11], x[12] = quarterRound(x[1], x[6], x[11], x[12])
		x[2], x[7], x[8], x[13] = quarterRound(x[2], x[7], x[8], x[13])
		x[3], x[4], x[9], x[14] = quarterRound(x[3], x[4], x[9], x[14])
	}
	for i := 0; i < 16; i++ {
		binary.LittleEndian.PutUint32(c.buf[4*i:], x[i]+c.state[i])
	}
	c.bufUsed = 0
	// Increment the block counter: 32-bit for IETF, 64-bit for legacy.
	c.state[12]++
	if c.state[12] == 0 && c.legacy {
		c.state[13]++
	}
}

// XORKeyStream XORs src with the keystream into dst. dst and src must
// overlap entirely or not at all, and len(dst) must be >= len(src).
func (c *ChaCha20) XORKeyStream(dst, src []byte) {
	if len(dst) < len(src) {
		panic("sscrypto: chacha20 output smaller than input")
	}
	for len(src) > 0 {
		if c.bufUsed == 64 {
			c.block()
		}
		n := len(src)
		if avail := 64 - c.bufUsed; n > avail {
			n = avail
		}
		for i := 0; i < n; i++ {
			dst[i] = src[i] ^ c.buf[c.bufUsed+i]
		}
		c.bufUsed += n
		dst = dst[n:]
		src = src[n:]
	}
}

// chacha20Block64 writes one raw keystream block for (key, nonce, counter)
// into out. Used to derive the Poly1305 one-time key. The cipher state
// lives on the stack: nothing escapes.
func chacha20Block64(key, nonce []byte, counter uint32, out *[64]byte) error {
	var c ChaCha20
	if err := initChaCha20(&c, key, nonce, counter); err != nil {
		return err
	}
	c.block()
	copy(out[:], c.buf[:])
	return nil
}
