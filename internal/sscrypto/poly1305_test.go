package sscrypto

import (
	"bytes"
	"crypto/rand"
	"testing"
)

// TestPoly1305RFC8439 checks the MAC against the RFC 8439 §2.5.2 vector.
func TestPoly1305RFC8439(t *testing.T) {
	var key [32]byte
	copy(key[:], unhex(t, "85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b"))
	msg := []byte("Cryptographic Forum Research Group")
	var tag [16]byte
	Poly1305(&tag, msg, &key)
	want := unhex(t, "a8061dc1305136c6c22b8baf0c0127a9")
	if !bytes.Equal(tag[:], want) {
		t.Errorf("tag mismatch:\n got %x\nwant %x", tag[:], want)
	}
}

// TestPoly1305EdgeLengths exercises messages around the 16-byte block
// boundary, where the padding logic lives.
func TestPoly1305EdgeLengths(t *testing.T) {
	var key [32]byte
	if _, err := rand.Read(key[:]); err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 1, 15, 16, 17, 31, 32, 33, 64, 1000} {
		msg := make([]byte, n)
		var t1, t2 [16]byte
		Poly1305(&t1, msg, &key)
		Poly1305(&t2, msg, &key)
		if t1 != t2 {
			t.Errorf("len %d: MAC not deterministic", n)
		}
		if n > 0 {
			msg[n/2] ^= 0x01
			var t3 [16]byte
			Poly1305(&t3, msg, &key)
			if t1 == t3 {
				t.Errorf("len %d: MAC unchanged after bit flip", n)
			}
		}
	}
}

// TestPoly1305Degenerate checks the all-zero key (tag must be zero for any
// message, since r = s = 0) — a classic implementation sanity vector.
func TestPoly1305Degenerate(t *testing.T) {
	var key [32]byte
	var tag [16]byte
	Poly1305(&tag, []byte("any message at all, of any length whatsoever"), &key)
	if tag != [16]byte{} {
		t.Errorf("zero key should give zero tag, got %x", tag[:])
	}
}

// TestPoly1305Wraparound uses a key/message pair chosen so the accumulator
// crosses 2^130-5, exercising the final modular reduction (vector #5 from
// the go-crypto Poly1305 test suite, originally from donna).
func TestPoly1305Wraparound(t *testing.T) {
	var key [32]byte
	copy(key[:], unhex(t, "0200000000000000000000000000000000000000000000000000000000000000"))
	msg := unhex(t, "ffffffffffffffffffffffffffffffff")
	var tag [16]byte
	Poly1305(&tag, msg, &key)
	want := unhex(t, "03000000000000000000000000000000")
	if !bytes.Equal(tag[:], want) {
		t.Errorf("tag mismatch:\n got %x\nwant %x", tag[:], want)
	}
}

func BenchmarkPoly1305(b *testing.B) {
	var key [32]byte
	msg := make([]byte, 4096)
	var tag [16]byte
	b.SetBytes(int64(len(msg)))
	for i := 0; i < b.N; i++ {
		Poly1305(&tag, msg, &key)
	}
}
