package sscrypto

import (
	"bytes"
	"testing"
)

func TestLookupKnownMethods(t *testing.T) {
	for _, tc := range []struct {
		name    string
		kind    Kind
		keySize int
		ivSize  int
	}{
		{"aes-128-ctr", Stream, 16, 16},
		{"aes-256-cfb", Stream, 32, 16},
		{"rc4-md5", Stream, 16, 16},
		{"chacha20-ietf", Stream, 32, 12},
		{"chacha20", Stream, 32, 8},
		{"aes-128-gcm", AEAD, 16, 16},
		{"aes-192-gcm", AEAD, 24, 24},
		{"aes-256-gcm", AEAD, 32, 32},
		{"chacha20-ietf-poly1305", AEAD, 32, 32},
	} {
		s, err := Lookup(tc.name)
		if err != nil {
			t.Errorf("Lookup(%q): %v", tc.name, err)
			continue
		}
		if s.Kind != tc.kind || s.KeySize != tc.keySize || s.IVSize != tc.ivSize {
			t.Errorf("%s: got (%v,%d,%d), want (%v,%d,%d)",
				tc.name, s.Kind, s.KeySize, s.IVSize, tc.kind, tc.keySize, tc.ivSize)
		}
	}
	if _, err := Lookup("rot13"); err == nil {
		t.Error("unknown method accepted")
	}
}

// TestIVSizeClasses verifies the registry covers all IV/salt size classes
// the paper's Figure 10 groups server reactions by.
func TestIVSizeClasses(t *testing.T) {
	streamSizes := map[int]bool{}
	aeadSizes := map[int]bool{}
	for _, name := range StreamMethods() {
		s, _ := Lookup(name)
		streamSizes[s.IVSize] = true
	}
	for _, name := range AEADMethods() {
		s, _ := Lookup(name)
		aeadSizes[s.IVSize] = true
	}
	for _, n := range []int{8, 12, 16} {
		if !streamSizes[n] {
			t.Errorf("no stream method with %d-byte IV", n)
		}
	}
	for _, n := range []int{16, 24, 32} {
		if !aeadSizes[n] {
			t.Errorf("no AEAD method with %d-byte salt", n)
		}
	}
}

// TestStreamRoundTrip encrypts and decrypts under every stream method.
func TestStreamRoundTrip(t *testing.T) {
	msg := []byte("GET / HTTP/1.1\r\nHost: example.com\r\n\r\n")
	for _, name := range StreamMethods() {
		spec, _ := Lookup(name)
		key := spec.Key("password")
		iv := make([]byte, spec.IVSize)
		for i := range iv {
			iv[i] = byte(i + 1)
		}
		enc, err := spec.NewStream(key, iv)
		if err != nil {
			t.Errorf("%s: NewStream: %v", name, err)
			continue
		}
		dec, err := spec.NewStreamDecrypter(key, iv)
		if err != nil {
			t.Errorf("%s: NewStreamDecrypter: %v", name, err)
			continue
		}
		ct := make([]byte, len(msg))
		enc.XORKeyStream(ct, msg)
		if bytes.Equal(ct, msg) {
			t.Errorf("%s: ciphertext equals plaintext", name)
		}
		pt := make([]byte, len(ct))
		dec.XORKeyStream(pt, ct)
		if !bytes.Equal(pt, msg) {
			t.Errorf("%s: round trip failed", name)
		}
	}
}

// TestAEADRoundTrip seals and opens under every AEAD method.
func TestAEADRoundTrip(t *testing.T) {
	msg := []byte("\x03\x0bexample.com\x01\xbbhello")
	for _, name := range AEADMethods() {
		spec, _ := Lookup(name)
		master := spec.Key("password")
		salt := make([]byte, spec.SaltSize())
		for i := range salt {
			salt[i] = byte(i)
		}
		subkey := SessionSubkey(master, salt)
		aead, err := spec.NewAEAD(subkey)
		if err != nil {
			t.Errorf("%s: NewAEAD: %v", name, err)
			continue
		}
		nonce := make([]byte, aead.NonceSize())
		ct := aead.Seal(nil, nonce, msg, nil)
		pt, err := aead.Open(nil, nonce, ct, nil)
		if err != nil || !bytes.Equal(pt, msg) {
			t.Errorf("%s: round trip failed: %v", name, err)
		}
		ct[0] ^= 1
		if _, err := aead.Open(nil, nonce, ct, nil); err == nil {
			t.Errorf("%s: tampered ciphertext accepted", name)
		}
	}
}

// TestKindMismatch verifies constructors reject the wrong construction.
func TestKindMismatch(t *testing.T) {
	stream, _ := Lookup("aes-128-ctr")
	if _, err := stream.NewAEAD(make([]byte, 16)); err == nil {
		t.Error("NewAEAD on a stream spec succeeded")
	}
	aead, _ := Lookup("aes-128-gcm")
	if _, err := aead.NewStream(make([]byte, 16), make([]byte, 16)); err == nil {
		t.Error("NewStream on an AEAD spec succeeded")
	}
}

// TestRC4MD5DependsOnIV verifies rc4-md5 derives a distinct per-connection
// keystream from the IV (its whole point versus bare RC4).
func TestRC4MD5DependsOnIV(t *testing.T) {
	spec, _ := Lookup("rc4-md5")
	key := spec.Key("pw")
	msg := make([]byte, 32)
	iv1 := make([]byte, 16)
	iv2 := make([]byte, 16)
	iv2[0] = 1
	c1, _ := spec.NewStream(key, iv1)
	c2, _ := spec.NewStream(key, iv2)
	out1 := make([]byte, len(msg))
	out2 := make([]byte, len(msg))
	c1.XORKeyStream(out1, msg)
	c2.XORKeyStream(out2, msg)
	if bytes.Equal(out1, out2) {
		t.Error("rc4-md5 keystream identical across different IVs")
	}
}

func TestMethodsSorted(t *testing.T) {
	all := Methods()
	if len(all) != len(StreamMethods())+len(AEADMethods()) {
		t.Error("Methods() inconsistent with per-kind lists")
	}
	for i := 1; i < len(all); i++ {
		if all[i-1] >= all[i] {
			t.Errorf("Methods() not sorted at %d: %s >= %s", i, all[i-1], all[i])
		}
	}
}
