package sscrypto

import "encoding/binary"

// HChaCha20 derives a 32-byte subkey from a key and a 16-byte nonce by
// running the ChaCha20 rounds without the final state addition and taking
// the first and last four words — the nonce-extension primitive behind
// XChaCha20 (draft-irtf-cfrg-xchacha).
func HChaCha20(key, nonce []byte) ([]byte, error) {
	if len(key) != ChaCha20KeySize || len(nonce) != 16 {
		return nil, errChaChaParams
	}
	var x [16]uint32
	x[0] = 0x61707865
	x[1] = 0x3320646e
	x[2] = 0x79622d32
	x[3] = 0x6b206574
	for i := 0; i < 8; i++ {
		x[4+i] = binary.LittleEndian.Uint32(key[4*i:])
	}
	for i := 0; i < 4; i++ {
		x[12+i] = binary.LittleEndian.Uint32(nonce[4*i:])
	}
	for i := 0; i < 10; i++ {
		x[0], x[4], x[8], x[12] = quarterRound(x[0], x[4], x[8], x[12])
		x[1], x[5], x[9], x[13] = quarterRound(x[1], x[5], x[9], x[13])
		x[2], x[6], x[10], x[14] = quarterRound(x[2], x[6], x[10], x[14])
		x[3], x[7], x[11], x[15] = quarterRound(x[3], x[7], x[11], x[15])
		x[0], x[5], x[10], x[15] = quarterRound(x[0], x[5], x[10], x[15])
		x[1], x[6], x[11], x[12] = quarterRound(x[1], x[6], x[11], x[12])
		x[2], x[7], x[8], x[13] = quarterRound(x[2], x[7], x[8], x[13])
		x[3], x[4], x[9], x[14] = quarterRound(x[3], x[4], x[9], x[14])
	}
	out := make([]byte, 32)
	for i := 0; i < 4; i++ {
		binary.LittleEndian.PutUint32(out[4*i:], x[i])
		binary.LittleEndian.PutUint32(out[16+4*i:], x[12+i])
	}
	return out, nil
}

// XChaCha20Poly1305 is the 24-byte-nonce AEAD: HChaCha20 folds the first
// 16 nonce bytes into a subkey, then standard ChaCha20-Poly1305 runs with
// a nonce of 4 zero bytes plus the remaining 8. Shadowsocks-libev exposes
// this as "xchacha20-ietf-poly1305".
type XChaCha20Poly1305 struct {
	key [ChaCha20KeySize]byte
}

// NewXChaCha20Poly1305 returns an AEAD for the given 32-byte key.
func NewXChaCha20Poly1305(key []byte) (*XChaCha20Poly1305, error) {
	if len(key) != ChaCha20KeySize {
		return nil, errChaChaParams
	}
	a := &XChaCha20Poly1305{}
	copy(a.key[:], key)
	return a, nil
}

// NonceSize implements cipher.AEAD.
func (*XChaCha20Poly1305) NonceSize() int { return 24 }

// Overhead implements cipher.AEAD.
func (*XChaCha20Poly1305) Overhead() int { return Poly1305TagSize }

// inner builds the per-nonce ChaCha20-Poly1305 and the 12-byte nonce.
func (a *XChaCha20Poly1305) inner(nonce []byte) (*ChaCha20Poly1305, []byte, error) {
	if len(nonce) != 24 {
		return nil, nil, errChaChaParams
	}
	subkey, err := HChaCha20(a.key[:], nonce[:16])
	if err != nil {
		return nil, nil, err
	}
	inner, err := NewChaCha20Poly1305(subkey)
	if err != nil {
		return nil, nil, err
	}
	n12 := make([]byte, 12)
	copy(n12[4:], nonce[16:])
	return inner, n12, nil
}

// Seal implements cipher.AEAD.
func (a *XChaCha20Poly1305) Seal(dst, nonce, plaintext, additionalData []byte) []byte {
	inner, n12, err := a.inner(nonce)
	if err != nil {
		panic("sscrypto: bad nonce length for xchacha20-poly1305")
	}
	return inner.Seal(dst, n12, plaintext, additionalData)
}

// Open implements cipher.AEAD.
func (a *XChaCha20Poly1305) Open(dst, nonce, ciphertext, additionalData []byte) ([]byte, error) {
	inner, n12, err := a.inner(nonce)
	if err != nil {
		return nil, err
	}
	return inner.Open(dst, n12, ciphertext, additionalData)
}
