package sscrypto

import "encoding/binary"

// Poly1305TagSize is the size of a Poly1305 authenticator in bytes.
const Poly1305TagSize = 16

// Poly1305 computes the Poly1305 MAC of msg using a 32-byte one-time key
// and writes the 16-byte tag into out. The implementation uses 26-bit limbs
// so that all intermediate products fit in uint64 without overflow.
func Poly1305(out *[Poly1305TagSize]byte, msg []byte, key *[32]byte) {
	// Clamp r per the spec.
	r0 := uint64(binary.LittleEndian.Uint32(key[0:])) & 0x3ffffff
	r1 := uint64(binary.LittleEndian.Uint32(key[3:])>>2) & 0x3ffff03
	r2 := uint64(binary.LittleEndian.Uint32(key[6:])>>4) & 0x3ffc0ff
	r3 := uint64(binary.LittleEndian.Uint32(key[9:])>>6) & 0x3f03fff
	r4 := uint64(binary.LittleEndian.Uint32(key[12:])>>8) & 0x00fffff

	s1 := r1 * 5
	s2 := r2 * 5
	s3 := r3 * 5
	s4 := r4 * 5

	var h0, h1, h2, h3, h4 uint64

	for len(msg) > 0 {
		var block [17]byte
		if len(msg) >= 16 {
			copy(block[:16], msg[:16])
			block[16] = 1
			msg = msg[16:]
		} else {
			n := copy(block[:], msg)
			block[n] = 1
			msg = nil
		}
		// h += block (block interpreted little-endian, 17th byte is hibit).
		t0 := binary.LittleEndian.Uint32(block[0:])
		t1 := binary.LittleEndian.Uint32(block[4:])
		t2 := binary.LittleEndian.Uint32(block[8:])
		t3 := binary.LittleEndian.Uint32(block[12:])
		hi := uint64(block[16])

		h0 += uint64(t0) & 0x3ffffff
		h1 += (uint64(t1)<<32 | uint64(t0)) >> 26 & 0x3ffffff
		h2 += (uint64(t2)<<32 | uint64(t1)) >> 20 & 0x3ffffff
		h3 += (uint64(t3)<<32 | uint64(t2)) >> 14 & 0x3ffffff
		h4 += uint64(t3)>>8 | hi<<24

		// h *= r (mod 2^130 - 5).
		d0 := h0*r0 + h1*s4 + h2*s3 + h3*s2 + h4*s1
		d1 := h0*r1 + h1*r0 + h2*s4 + h3*s3 + h4*s2
		d2 := h0*r2 + h1*r1 + h2*r0 + h3*s4 + h4*s3
		d3 := h0*r3 + h1*r2 + h2*r1 + h3*r0 + h4*s4
		d4 := h0*r4 + h1*r3 + h2*r2 + h3*r1 + h4*r0

		// Carry propagation.
		h0 = d0 & 0x3ffffff
		d1 += d0 >> 26
		h1 = d1 & 0x3ffffff
		d2 += d1 >> 26
		h2 = d2 & 0x3ffffff
		d3 += d2 >> 26
		h3 = d3 & 0x3ffffff
		d4 += d3 >> 26
		h4 = d4 & 0x3ffffff
		h0 += (d4 >> 26) * 5
		h1 += h0 >> 26
		h0 &= 0x3ffffff
	}

	// Full carry.
	h2 += h1 >> 26
	h1 &= 0x3ffffff
	h3 += h2 >> 26
	h2 &= 0x3ffffff
	h4 += h3 >> 26
	h3 &= 0x3ffffff
	h0 += (h4 >> 26) * 5
	h4 &= 0x3ffffff
	h1 += h0 >> 26
	h0 &= 0x3ffffff

	// Compute h + -p by adding 5 and checking for carry out of 2^130.
	g0 := h0 + 5
	g1 := h1 + g0>>26
	g0 &= 0x3ffffff
	g2 := h2 + g1>>26
	g1 &= 0x3ffffff
	g3 := h3 + g2>>26
	g2 &= 0x3ffffff
	g4 := h4 + g3>>26 - (1 << 26)
	g3 &= 0x3ffffff

	// If g4 underflowed (top bit set), keep h; otherwise use g.
	mask := (g4 >> 63) - 1 // all ones if g4 >= 0, zero if negative
	h0 = h0&^mask | g0&mask
	h1 = h1&^mask | g1&mask
	h2 = h2&^mask | g2&mask
	h3 = h3&^mask | g3&mask
	h4 = h4&^mask | g4&mask

	// Serialize h as 128 bits little-endian and add s.
	f0 := h0 | h1<<26
	f1 := h1>>6 | h2<<20
	f2 := h2>>12 | h3<<14
	f3 := h3>>18 | h4<<8

	s0 := uint64(binary.LittleEndian.Uint32(key[16:]))
	sk1 := uint64(binary.LittleEndian.Uint32(key[20:]))
	sk2 := uint64(binary.LittleEndian.Uint32(key[24:]))
	sk3 := uint64(binary.LittleEndian.Uint32(key[28:]))

	f0 = f0&0xffffffff + s0
	f1 = f1&0xffffffff + sk1 + f0>>32
	f2 = f2&0xffffffff + sk2 + f1>>32
	f3 = f3&0xffffffff + sk3 + f2>>32

	binary.LittleEndian.PutUint32(out[0:], uint32(f0))
	binary.LittleEndian.PutUint32(out[4:], uint32(f1))
	binary.LittleEndian.PutUint32(out[8:], uint32(f2))
	binary.LittleEndian.PutUint32(out[12:], uint32(f3))
}
