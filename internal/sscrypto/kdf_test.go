package sscrypto

import (
	"bytes"
	"crypto/md5"
	"testing"
)

// TestHKDFSHA1RFC5869 checks HKDF-SHA1 against RFC 5869 test case 4.
func TestHKDFSHA1RFC5869(t *testing.T) {
	ikm := unhex(t, "0b0b0b0b0b0b0b0b0b0b0b")
	salt := unhex(t, "000102030405060708090a0b0c")
	info := unhex(t, "f0f1f2f3f4f5f6f7f8f9")
	want := unhex(t, "085a01ea1b10f36933068b56efa5ad81"+
		"a4f14b822f5b091568a9cdd4f155fda2"+
		"c22e422478d305f3f896")
	got, err := HKDFSHA1(ikm, salt, info, len(want))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("OKM mismatch:\n got %x\nwant %x", got, want)
	}
}

// TestHKDFSHA1RFC5869NoSalt checks test case 6 (zero-length salt).
func TestHKDFSHA1RFC5869NoSalt(t *testing.T) {
	ikm := unhex(t, "0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b")
	want := unhex(t, "0ac1af7002b3d761d1e55298da9d0506"+
		"b9ae52057220a306e07b6b87e8df21d0"+
		"ea00033de03984d34918")
	got, err := HKDFSHA1(ikm, nil, nil, len(want))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("OKM mismatch:\n got %x\nwant %x", got, want)
	}
}

func TestHKDFSHA1BadLength(t *testing.T) {
	if _, err := HKDFSHA1([]byte("x"), nil, nil, 0); err == nil {
		t.Error("zero length accepted")
	}
	if _, err := HKDFSHA1([]byte("x"), nil, nil, 256*20); err == nil {
		t.Error("over-long output accepted")
	}
}

// TestEVPBytesToKey checks the OpenSSL-compatible derivation against an
// independent per-test reimplementation.
func TestEVPBytesToKey(t *testing.T) {
	for _, tc := range []struct {
		password string
		keyLen   int
	}{
		{"foobar", 16},
		{"foobar", 32},
		{"barfoo!", 24},
		{"", 16},
		{"a much longer password with spaces and symbols !@#$", 32},
	} {
		got := EVPBytesToKey(tc.password, tc.keyLen)
		// Reference: D1 = MD5(pw), Dn = MD5(D(n-1) || pw).
		var want, prev []byte
		for len(want) < tc.keyLen {
			h := md5.New()
			h.Write(prev)
			h.Write([]byte(tc.password))
			prev = h.Sum(nil)
			want = append(want, prev...)
		}
		want = want[:tc.keyLen]
		if !bytes.Equal(got, want) {
			t.Errorf("EVPBytesToKey(%q, %d) = %x, want %x", tc.password, tc.keyLen, got, want)
		}
	}
}

// TestEVPBytesToKeyKnown pins one absolute value so the reference
// implementation above cannot drift in tandem with the real one.
func TestEVPBytesToKeyKnown(t *testing.T) {
	got := EVPBytesToKey("foobar", 16)
	want := unhex(t, "3858f62230ac3c915f300c664312c63f") // MD5("foobar")
	if !bytes.Equal(got, want) {
		t.Errorf("EVPBytesToKey(foobar, 16) = %x, want %x", got, want)
	}
}

// TestSessionSubkey verifies subkeys differ per salt and have key length.
func TestSessionSubkey(t *testing.T) {
	master := EVPBytesToKey("secret", 32)
	s1 := SessionSubkey(master, []byte("salt-a-salt-a-salt-a-salt-a-salt"))
	s2 := SessionSubkey(master, []byte("salt-b-salt-b-salt-b-salt-b-salt"))
	if len(s1) != len(master) || len(s2) != len(master) {
		t.Fatalf("subkey lengths %d/%d, want %d", len(s1), len(s2), len(master))
	}
	if bytes.Equal(s1, s2) {
		t.Error("different salts produced identical subkeys")
	}
}
