package sscrypto

import (
	"bytes"
	"encoding/hex"
	"testing"
	"testing/quick"
)

func unhex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatalf("bad hex in test: %v", err)
	}
	return b
}

// TestChaCha20RFC8439Block checks the keystream block function against the
// RFC 8439 §2.3.2 test vector.
func TestChaCha20RFC8439Block(t *testing.T) {
	key := unhex(t, "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
	nonce := unhex(t, "000000090000004a00000000")
	var out [64]byte
	if err := chacha20Block64(key, nonce, 1, &out); err != nil {
		t.Fatal(err)
	}
	want := unhex(t, "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"+
		"d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e")
	if !bytes.Equal(out[:], want) {
		t.Errorf("block mismatch:\n got %x\nwant %x", out[:], want)
	}
}

// TestChaCha20RFC8439Encrypt checks full-message encryption against the
// RFC 8439 §2.4.2 test vector (counter starts at 1).
func TestChaCha20RFC8439Encrypt(t *testing.T) {
	key := unhex(t, "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
	nonce := unhex(t, "000000000000004a00000000")
	plaintext := []byte("Ladies and Gentlemen of the class of '99: If I could offer you " +
		"only one tip for the future, sunscreen would be it.")
	want := unhex(t, "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"+
		"f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8"+
		"07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736"+
		"5af90bbf74a35be6b40b8eedf2785e42874d")

	c, err := NewChaCha20WithCounter(key, nonce, 1)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(plaintext))
	c.XORKeyStream(got, plaintext)
	if !bytes.Equal(got, want) {
		t.Errorf("ciphertext mismatch:\n got %x\nwant %x", got, want)
	}
}

// TestChaCha20Streaming verifies that encrypting in arbitrary-size pieces
// produces the same keystream as one call.
func TestChaCha20Streaming(t *testing.T) {
	key := make([]byte, 32)
	nonce := make([]byte, 12)
	for i := range key {
		key[i] = byte(i * 7)
	}
	msg := make([]byte, 300)
	for i := range msg {
		msg[i] = byte(i)
	}

	whole, err := NewChaCha20(key, nonce)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, len(msg))
	whole.XORKeyStream(want, msg)

	pieces, err := NewChaCha20(key, nonce)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	for i, step := 0, 1; i < len(msg); step = step*2 + 1 { // 1, 3, 7, ... odd boundaries
		end := i + step
		if end > len(msg) {
			end = len(msg)
		}
		pieces.XORKeyStream(got[i:end], msg[i:end])
		i = end
	}
	if !bytes.Equal(got, want) {
		t.Error("piecewise keystream differs from whole-message keystream")
	}
}

// TestChaCha20LegacyNonce verifies the 8-byte-nonce legacy variant is
// accepted and produces a stream independent of the IETF variant.
func TestChaCha20LegacyNonce(t *testing.T) {
	key := make([]byte, 32)
	c, err := NewChaCha20(key, make([]byte, 8))
	if err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 64)
	c.XORKeyStream(out, make([]byte, 64))
	// Keystream for the all-zero key/nonce legacy chacha20, first bytes
	// (well-known vector from the original DJB test vectors).
	want := unhex(t, "76b8e0ada0f13d90405d6ae55386bd28bdd219b8a08ded1aa836efcc8b770dc7")
	if !bytes.Equal(out[:32], want) {
		t.Errorf("legacy keystream mismatch:\n got %x\nwant %x", out[:32], want)
	}
}

// TestChaCha20RoundTrip is a property test: decrypting an encryption with
// the same (key, nonce) yields the plaintext.
func TestChaCha20RoundTrip(t *testing.T) {
	f := func(keySeed, nonceSeed uint64, msg []byte) bool {
		key := make([]byte, 32)
		nonce := make([]byte, 12)
		for i := range key {
			key[i] = byte(keySeed >> (i % 8 * 8))
		}
		for i := range nonce {
			nonce[i] = byte(nonceSeed >> (i % 8 * 8))
		}
		enc, _ := NewChaCha20(key, nonce)
		dec, _ := NewChaCha20(key, nonce)
		ct := make([]byte, len(msg))
		pt := make([]byte, len(msg))
		enc.XORKeyStream(ct, msg)
		dec.XORKeyStream(pt, ct)
		return bytes.Equal(pt, msg)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChaCha20BadParams(t *testing.T) {
	if _, err := NewChaCha20(make([]byte, 31), make([]byte, 12)); err == nil {
		t.Error("short key accepted")
	}
	if _, err := NewChaCha20(make([]byte, 32), make([]byte, 11)); err == nil {
		t.Error("bad nonce length accepted")
	}
	if _, err := NewChaCha20(make([]byte, 32), nil); err == nil {
		t.Error("nil nonce accepted")
	}
}

func BenchmarkChaCha20(b *testing.B) {
	key := make([]byte, 32)
	nonce := make([]byte, 12)
	buf := make([]byte, 4096)
	c, _ := NewChaCha20(key, nonce)
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.XORKeyStream(buf, buf)
	}
}
