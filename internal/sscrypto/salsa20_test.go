package sscrypto

import (
	"bytes"
	"testing"
)

// TestSalsa20ECRYPTVector checks the keystream against ECRYPT Set 1
// vector #0 for Salsa20/20 with a 256-bit key (key = 0x80 then zeros,
// zero nonce).
func TestSalsa20ECRYPTVector(t *testing.T) {
	key := make([]byte, 32)
	key[0] = 0x80
	s, err := NewSalsa20(key, make([]byte, 8))
	if err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 64)
	s.XORKeyStream(out, make([]byte, 64))
	want := unhex(t, "e3be8fdd8beca2e3ea8ef9475b29a6e7"+
		"003951e1097a5c38d23b7a5fad9f6844"+
		"b22c97559e2723c7cbbd3fe4fc8d9a07"+
		"44652a83e72a9c461876af4d7ef1a117")
	if !bytes.Equal(out, want) {
		t.Errorf("keystream mismatch:\n got %x\nwant %x", out, want)
	}
}

func TestSalsa20RoundTrip(t *testing.T) {
	key := make([]byte, 32)
	nonce := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	for i := range key {
		key[i] = byte(i)
	}
	msg := make([]byte, 300)
	for i := range msg {
		msg[i] = byte(i * 3)
	}
	enc, _ := NewSalsa20(key, nonce)
	dec, _ := NewSalsa20(key, nonce)
	ct := make([]byte, len(msg))
	pt := make([]byte, len(msg))
	enc.XORKeyStream(ct, msg)
	dec.XORKeyStream(pt, ct)
	if !bytes.Equal(pt, msg) {
		t.Error("round trip failed")
	}
	if bytes.Equal(ct, msg) {
		t.Error("ciphertext equals plaintext")
	}
}

func TestSalsa20BadParams(t *testing.T) {
	if _, err := NewSalsa20(make([]byte, 16), make([]byte, 8)); err == nil {
		t.Error("short key accepted")
	}
	if _, err := NewSalsa20(make([]byte, 32), make([]byte, 12)); err == nil {
		t.Error("wrong nonce size accepted")
	}
}

// TestSalsa20Streaming checks piecewise encryption matches whole-message.
func TestSalsa20Streaming(t *testing.T) {
	key := make([]byte, 32)
	nonce := make([]byte, 8)
	msg := make([]byte, 257)
	whole, _ := NewSalsa20(key, nonce)
	want := make([]byte, len(msg))
	whole.XORKeyStream(want, msg)

	pieces, _ := NewSalsa20(key, nonce)
	got := make([]byte, len(msg))
	for i := 0; i < len(msg); i += 13 {
		end := i + 13
		if end > len(msg) {
			end = len(msg)
		}
		pieces.XORKeyStream(got[i:end], msg[i:end])
	}
	if !bytes.Equal(got, want) {
		t.Error("piecewise keystream differs")
	}
}
