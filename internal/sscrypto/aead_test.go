package sscrypto

import (
	"bytes"
	"testing"
	"testing/quick"
)

// TestChaCha20Poly1305RFC8439 checks Seal against the RFC 8439 §2.8.2
// AEAD test vector.
func TestChaCha20Poly1305RFC8439(t *testing.T) {
	key := unhex(t, "808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f")
	nonce := unhex(t, "070000004041424344454647")
	aad := unhex(t, "50515253c0c1c2c3c4c5c6c7")
	plaintext := []byte("Ladies and Gentlemen of the class of '99: If I could offer you " +
		"only one tip for the future, sunscreen would be it.")
	wantCT := unhex(t, "d31a8d34648e60db7b86afbc53ef7ec2a4aded51296e08fea9e2b5a736ee62d6"+
		"3dbea45e8ca9671282fafb69da92728b1a71de0a9e060b2905d6a5b67ecd3b36"+
		"92ddbd7f2d778b8c9803aee328091b58fab324e4fad675945585808b4831d7bc"+
		"3ff4def08e4b7a9de576d26586cec64b6116")
	wantTag := unhex(t, "1ae10b594f09e26a7e902ecbd0600691")

	a, err := NewChaCha20Poly1305(key)
	if err != nil {
		t.Fatal(err)
	}
	out := a.Seal(nil, nonce, plaintext, aad)
	if got := out[:len(plaintext)]; !bytes.Equal(got, wantCT) {
		t.Errorf("ciphertext mismatch:\n got %x\nwant %x", got, wantCT)
	}
	if got := out[len(plaintext):]; !bytes.Equal(got, wantTag) {
		t.Errorf("tag mismatch:\n got %x\nwant %x", got, wantTag)
	}

	pt, err := a.Open(nil, nonce, out, aad)
	if err != nil {
		t.Fatalf("Open of valid message failed: %v", err)
	}
	if !bytes.Equal(pt, plaintext) {
		t.Error("Open did not recover the plaintext")
	}
}

// TestChaCha20Poly1305Tamper verifies every single-bit corruption of the
// message or AAD is rejected.
func TestChaCha20Poly1305Tamper(t *testing.T) {
	key := make([]byte, 32)
	nonce := make([]byte, 12)
	aad := []byte{1, 2, 3}
	a, _ := NewChaCha20Poly1305(key)
	msg := []byte("short but meaningful")
	ct := a.Seal(nil, nonce, msg, aad)

	for i := range ct {
		bad := append([]byte(nil), ct...)
		bad[i] ^= 0x80
		if _, err := a.Open(nil, nonce, bad, aad); err == nil {
			t.Fatalf("corruption at ciphertext byte %d accepted", i)
		}
	}
	if _, err := a.Open(nil, nonce, ct, []byte{1, 2, 4}); err == nil {
		t.Error("corrupted AAD accepted")
	}
	if _, err := a.Open(nil, nonce, ct[:10], aad); err == nil {
		t.Error("truncated ciphertext accepted")
	}
	if _, err := a.Open(nil, make([]byte, 12+1), ct, aad); err == nil {
		t.Error("bad nonce length accepted")
	}
}

// TestChaCha20Poly1305RoundTrip is the seal/open property test.
func TestChaCha20Poly1305RoundTrip(t *testing.T) {
	key := make([]byte, 32)
	key[0] = 0x42
	a, _ := NewChaCha20Poly1305(key)
	f := func(nonceSeed uint32, msg, aad []byte) bool {
		nonce := make([]byte, 12)
		nonce[0], nonce[1], nonce[2], nonce[3] = byte(nonceSeed), byte(nonceSeed>>8), byte(nonceSeed>>16), byte(nonceSeed>>24)
		ct := a.Seal(nil, nonce, msg, aad)
		if len(ct) != len(msg)+a.Overhead() {
			return false
		}
		pt, err := a.Open(nil, nonce, ct, aad)
		return err == nil && bytes.Equal(pt, msg)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestSealAppends verifies Seal appends to dst rather than clobbering it,
// matching cipher.AEAD semantics the ssproto codec relies on.
func TestSealAppends(t *testing.T) {
	a, _ := NewChaCha20Poly1305(make([]byte, 32))
	prefix := []byte("prefix")
	out := a.Seal(append([]byte(nil), prefix...), make([]byte, 12), []byte("x"), nil)
	if !bytes.HasPrefix(out, prefix) {
		t.Error("Seal clobbered dst prefix")
	}
	if len(out) != len(prefix)+1+16 {
		t.Errorf("unexpected sealed length %d", len(out))
	}
}

// TestInPlaceOpenAndSeal covers the conventional aliasing patterns
// Open(ciphertext[:0], ...) and Seal(plaintext[:0], ...): growing dst must
// not zero the aliased input (regression test for a real bug).
func TestInPlaceOpenAndSeal(t *testing.T) {
	a, _ := NewChaCha20Poly1305(make([]byte, 32))
	nonce := make([]byte, 12)
	msg := []byte("length prefix \x00\x27 and payload bytes")

	ct := a.Seal(nil, nonce, msg, nil)
	pt, err := a.Open(ct[:0], nonce, ct, nil)
	if err != nil {
		t.Fatalf("in-place Open: %v", err)
	}
	if !bytes.Equal(pt, msg) {
		t.Fatalf("in-place Open corrupted plaintext: %q", pt)
	}

	buf := make([]byte, len(msg), len(msg)+16)
	copy(buf, msg)
	ct2 := a.Seal(buf[:0], nonce, buf, nil)
	pt2, err := a.Open(nil, nonce, ct2, nil)
	if err != nil || !bytes.Equal(pt2, msg) {
		t.Fatalf("in-place Seal broke round trip: %v", err)
	}
}

func BenchmarkChaCha20Poly1305Seal(b *testing.B) {
	a, _ := NewChaCha20Poly1305(make([]byte, 32))
	nonce := make([]byte, 12)
	msg := make([]byte, 1024)
	dst := make([]byte, 0, len(msg)+16)
	b.SetBytes(int64(len(msg)))
	for i := 0; i < b.N; i++ {
		dst = a.Seal(dst[:0], nonce, msg, nil)
	}
}

// TestSealOpenAllocFree pins the per-chunk AEAD primitives at zero heap
// allocations when the caller reuses its destination buffer — the shape
// every relay loop in ssproto and ssserver uses.
func TestSealOpenAllocFree(t *testing.T) {
	aead, err := NewChaCha20Poly1305(make([]byte, ChaCha20KeySize))
	if err != nil {
		t.Fatal(err)
	}
	nonce := make([]byte, aead.NonceSize())
	msg := make([]byte, 1400)
	dst := make([]byte, 0, len(msg)+aead.Overhead())
	ct := aead.Seal(nil, nonce, msg, nil)
	pt := make([]byte, 0, len(msg))

	if allocs := testing.AllocsPerRun(200, func() {
		dst = aead.Seal(dst[:0], nonce, msg, nil)
	}); allocs != 0 {
		t.Errorf("Seal with reused dst allocates %.1f times per call, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		var err error
		pt, err = aead.Open(pt[:0], nonce, ct, nil)
		if err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("Open with reused dst allocates %.1f times per call, want 0", allocs)
	}
}
