package sscrypto

import (
	"crypto/hmac"
	"crypto/md5"
	"crypto/sha1"
	"errors"
)

// HKDFSHA1 derives keying material per RFC 5869 using HMAC-SHA1, the KDF
// mandated by the Shadowsocks AEAD specification:
//
//	subkey = HKDF-SHA1(key=master, salt=salt, info="ss-subkey")
//
// length must be at most 255*20 bytes.
func HKDFSHA1(secret, salt, info []byte, length int) ([]byte, error) {
	if length <= 0 || length > 255*sha1.Size {
		return nil, errors.New("sscrypto: bad HKDF output length")
	}
	// Extract.
	if salt == nil {
		salt = make([]byte, sha1.Size)
	}
	ext := hmac.New(sha1.New, salt)
	ext.Write(secret)
	prk := ext.Sum(nil)

	// Expand.
	out := make([]byte, 0, length)
	var t []byte
	for i := byte(1); len(out) < length; i++ {
		exp := hmac.New(sha1.New, prk)
		exp.Write(t)
		exp.Write(info)
		exp.Write([]byte{i})
		t = exp.Sum(nil)
		out = append(out, t...)
	}
	return out[:length], nil
}

// ssSubkeyInfo is the HKDF info string fixed by the Shadowsocks AEAD spec.
var ssSubkeyInfo = []byte("ss-subkey")

// SessionSubkey derives the per-direction AEAD session subkey from the
// master key and the salt that prefixes the stream.
func SessionSubkey(masterKey, salt []byte) []byte {
	k, err := HKDFSHA1(masterKey, salt, ssSubkeyInfo, len(masterKey))
	if err != nil {
		panic(err) // cannot happen: master keys are 16–32 bytes
	}
	return k
}

// EVPBytesToKey derives a master key from a password exactly as OpenSSL's
// EVP_BytesToKey does with MD5 and no salt — the scheme every Shadowsocks
// implementation uses to turn the shared password into the master key:
//
//	D1 = MD5(password), D2 = MD5(D1 || password), ...
//	key = (D1 || D2 || ...)[:keyLen]
func EVPBytesToKey(password string, keyLen int) []byte {
	var prev []byte
	out := make([]byte, 0, keyLen+md5.Size)
	for len(out) < keyLen {
		h := md5.New()
		h.Write(prev)
		h.Write([]byte(password))
		prev = h.Sum(nil)
		out = append(out, prev...)
	}
	return out[:keyLen]
}
