package sscrypto

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// hchachaViaBlock derives the HChaCha20 output through the RFC-8439-
// validated block function: block() returns rounds(state) + state, so
// subtracting the initial state words recovers the raw round output that
// HChaCha20 is defined over. This is an independent code path (the
// streaming block core) cross-checking the dedicated implementation.
func hchachaViaBlock(t *testing.T, key, nonce []byte) []byte {
	t.Helper()
	counter := binary.LittleEndian.Uint32(nonce[0:4])
	c, err := NewChaCha20WithCounter(key, nonce[4:16], counter)
	if err != nil {
		t.Fatal(err)
	}
	initial := c.state // copy before the counter increments
	c.block()
	var w [16]uint32
	for i := 0; i < 16; i++ {
		w[i] = binary.LittleEndian.Uint32(c.buf[4*i:])
	}
	out := make([]byte, 32)
	for i := 0; i < 4; i++ {
		binary.LittleEndian.PutUint32(out[4*i:], w[i]-initial[i])
		binary.LittleEndian.PutUint32(out[16+4*i:], w[12+i]-initial[12+i])
	}
	return out
}

// TestHChaCha20CrossValidation checks the dedicated HChaCha20 against the
// independent derivation above, on the draft-irtf-cfrg-xchacha inputs and
// on random inputs.
func TestHChaCha20CrossValidation(t *testing.T) {
	key := unhex(t, "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
	nonce := unhex(t, "000000090000004a0000000031415927")
	got, err := HChaCha20(key, nonce)
	if err != nil {
		t.Fatal(err)
	}
	want := hchachaViaBlock(t, key, nonce)
	if !bytes.Equal(got, want) {
		t.Fatalf("HChaCha20 disagrees with block-derived value:\n got %x\nwant %x", got, want)
	}
	// Regression pin of the computed subkey for the draft's inputs. The
	// first half (82413b42...8a877d73) matches the published vector; the
	// whole value is additionally anchored by the cross-validation above.
	pin := unhex(t, "82413b4227b27bfed30e42508a877d73a0f9e4d58a74a853c12ec41326d3ecdc")
	if !bytes.Equal(got, pin) {
		t.Errorf("HChaCha20 regression pin changed:\n got %x\npin  %x", got, pin)
	}

	for seed := byte(0); seed < 8; seed++ {
		k := make([]byte, 32)
		n := make([]byte, 16)
		for i := range k {
			k[i] = seed + byte(i)
		}
		for i := range n {
			n[i] = seed ^ byte(i*7)
		}
		a, err := HChaCha20(k, n)
		if err != nil {
			t.Fatal(err)
		}
		if b := hchachaViaBlock(t, k, n); !bytes.Equal(a, b) {
			t.Fatalf("seed %d: HChaCha20 cross-validation failed", seed)
		}
	}
}

func TestHChaCha20BadParams(t *testing.T) {
	if _, err := HChaCha20(make([]byte, 16), make([]byte, 16)); err == nil {
		t.Error("short key accepted")
	}
	if _, err := HChaCha20(make([]byte, 32), make([]byte, 12)); err == nil {
		t.Error("short nonce accepted")
	}
}

func TestXChaCha20Poly1305RoundTrip(t *testing.T) {
	key := make([]byte, 32)
	for i := range key {
		key[i] = byte(i * 5)
	}
	a, err := NewXChaCha20Poly1305(key)
	if err != nil {
		t.Fatal(err)
	}
	nonce := make([]byte, 24)
	for i := range nonce {
		nonce[i] = byte(i)
	}
	msg := []byte("xchacha plaintext with a 24-byte nonce")
	aad := []byte("aad")
	ct := a.Seal(nil, nonce, msg, aad)
	pt, err := a.Open(nil, nonce, ct, aad)
	if err != nil || !bytes.Equal(pt, msg) {
		t.Fatalf("round trip failed: %v", err)
	}
	ct[3] ^= 1
	if _, err := a.Open(nil, nonce, ct, aad); err == nil {
		t.Error("tampered ciphertext accepted")
	}
}

// TestXChaChaNonceSeparation: different 24-byte nonces with a shared
// prefix or suffix must produce unrelated ciphertexts.
func TestXChaChaNonceSeparation(t *testing.T) {
	a, _ := NewXChaCha20Poly1305(make([]byte, 32))
	msg := make([]byte, 48)
	n1 := make([]byte, 24)
	n2 := make([]byte, 24)
	n2[0] = 1 // differs only in the HChaCha half
	n3 := make([]byte, 24)
	n3[23] = 1 // differs only in the inner-nonce half
	c1 := a.Seal(nil, n1, msg, nil)
	c2 := a.Seal(nil, n2, msg, nil)
	c3 := a.Seal(nil, n3, msg, nil)
	if bytes.Equal(c1, c2) || bytes.Equal(c1, c3) {
		t.Error("nonce halves not separating keystreams")
	}
	// And each decrypts only under its own nonce.
	if _, err := a.Open(nil, n2, c1, nil); err == nil {
		t.Error("cross-nonce open succeeded")
	}
}
