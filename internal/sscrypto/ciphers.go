package sscrypto

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/md5"
	"crypto/rc4"
	"fmt"
	"sort"
)

// Kind distinguishes the two cryptographic constructions the Shadowsocks
// protocol specifies.
type Kind int

const (
	// Stream is the deprecated stream-cipher construction:
	// [variable-length IV][encrypted payload...]. It provides only
	// confidentiality — no integrity and no real authentication — which is
	// the root cause of the probing attacks in §2.1 and §5 of the paper.
	Stream Kind = iota
	// AEAD is the authenticated construction:
	// [salt][2B len][16B tag][payload][16B tag]...
	AEAD
)

func (k Kind) String() string {
	if k == Stream {
		return "stream"
	}
	return "AEAD"
}

// Spec describes one Shadowsocks cipher method: its name, construction
// kind, key size, and IV (stream) or salt (AEAD) size in bytes.
type Spec struct {
	Name    string
	Kind    Kind
	KeySize int
	// IVSize is the initialization-vector size for stream methods (8, 12,
	// or 16 bytes) or the salt size for AEAD methods (16, 24, or 32 bytes).
	IVSize int

	newStream func(key, iv []byte) (cipher.Stream, error)
	newAEAD   func(subkey []byte) (cipher.AEAD, error)
}

// SaltSize is an alias for IVSize that reads better for AEAD specs.
func (s Spec) SaltSize() int { return s.IVSize }

// NewStream builds the per-connection stream cipher for a stream spec.
func (s Spec) NewStream(key, iv []byte) (cipher.Stream, error) {
	if s.Kind != Stream {
		return nil, fmt.Errorf("sscrypto: %s is not a stream method", s.Name)
	}
	if len(key) != s.KeySize || len(iv) != s.IVSize {
		return nil, fmt.Errorf("sscrypto: %s: bad key/IV length %d/%d", s.Name, len(key), len(iv))
	}
	return s.newStream(key, iv)
}

// NewAEAD builds the per-session AEAD from an already-derived subkey.
func (s Spec) NewAEAD(subkey []byte) (cipher.AEAD, error) {
	if s.Kind != AEAD {
		return nil, fmt.Errorf("sscrypto: %s is not an AEAD method", s.Name)
	}
	if len(subkey) != s.KeySize {
		return nil, fmt.Errorf("sscrypto: %s: bad subkey length %d", s.Name, len(subkey))
	}
	return s.newAEAD(subkey)
}

// Key derives the master key for this method from a password.
func (s Spec) Key(password string) []byte {
	return EVPBytesToKey(password, s.KeySize)
}

func aesCTR(key, iv []byte) (cipher.Stream, error) {
	b, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	return cipher.NewCTR(b, iv), nil
}

func aesCFB(key, iv []byte) (cipher.Stream, error) {
	b, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	return cipher.NewCFBEncrypter(b, iv), nil
}

// aesCFBDecrypter mirrors aesCFB for the decrypting direction; CFB is the
// one mode where encrypt and decrypt streams differ.
func aesCFBDecrypter(key, iv []byte) (cipher.Stream, error) {
	b, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	return cipher.NewCFBDecrypter(b, iv), nil
}

func rc4MD5(key, iv []byte) (cipher.Stream, error) {
	h := md5.New()
	h.Write(key)
	h.Write(iv)
	c, err := rc4.NewCipher(h.Sum(nil))
	if err != nil {
		return nil, err
	}
	return c, nil
}

func chachaStream(key, iv []byte) (cipher.Stream, error) {
	return NewChaCha20(key, iv)
}

func salsaStream(key, iv []byte) (cipher.Stream, error) {
	return NewSalsa20(key, iv)
}

func xchachaPoly(subkey []byte) (cipher.AEAD, error) {
	return NewXChaCha20Poly1305(subkey)
}

func aesGCM(subkey []byte) (cipher.AEAD, error) {
	b, err := aes.NewCipher(subkey)
	if err != nil {
		return nil, err
	}
	return cipher.NewGCM(b)
}

func chachaPoly(subkey []byte) (cipher.AEAD, error) {
	return NewChaCha20Poly1305(subkey)
}

// specs is the method registry. IV sizes cover all three classes the paper
// groups server reactions by: 8, 12, and 16 bytes for stream methods, and
// salt sizes 16, 24, and 32 bytes for AEAD methods.
var specs = map[string]Spec{
	"aes-128-ctr": {Name: "aes-128-ctr", Kind: Stream, KeySize: 16, IVSize: 16, newStream: aesCTR},
	"aes-192-ctr": {Name: "aes-192-ctr", Kind: Stream, KeySize: 24, IVSize: 16, newStream: aesCTR},
	"aes-256-ctr": {Name: "aes-256-ctr", Kind: Stream, KeySize: 32, IVSize: 16, newStream: aesCTR},
	"aes-128-cfb": {Name: "aes-128-cfb", Kind: Stream, KeySize: 16, IVSize: 16, newStream: aesCFB},
	"aes-192-cfb": {Name: "aes-192-cfb", Kind: Stream, KeySize: 24, IVSize: 16, newStream: aesCFB},
	"aes-256-cfb": {Name: "aes-256-cfb", Kind: Stream, KeySize: 32, IVSize: 16, newStream: aesCFB},
	"rc4-md5":     {Name: "rc4-md5", Kind: Stream, KeySize: 16, IVSize: 16, newStream: rc4MD5},
	// chacha20-ietf is the only supported stream method with a 12-byte IV —
	// the paper notes an attacker who infers a 12-byte IV therefore knows
	// the exact cipher (§5.2.2).
	"chacha20-ietf": {Name: "chacha20-ietf", Kind: Stream, KeySize: 32, IVSize: 12, newStream: chachaStream},
	// chacha20 (legacy, 8-byte nonce) and salsa20 are the 8-byte-IV class.
	"chacha20": {Name: "chacha20", Kind: Stream, KeySize: 32, IVSize: 8, newStream: chachaStream},
	"salsa20":  {Name: "salsa20", Kind: Stream, KeySize: 32, IVSize: 8, newStream: salsaStream},

	"aes-128-gcm":             {Name: "aes-128-gcm", Kind: AEAD, KeySize: 16, IVSize: 16, newAEAD: aesGCM},
	"aes-192-gcm":             {Name: "aes-192-gcm", Kind: AEAD, KeySize: 24, IVSize: 24, newAEAD: aesGCM},
	"aes-256-gcm":             {Name: "aes-256-gcm", Kind: AEAD, KeySize: 32, IVSize: 32, newAEAD: aesGCM},
	"chacha20-ietf-poly1305":  {Name: "chacha20-ietf-poly1305", Kind: AEAD, KeySize: 32, IVSize: 32, newAEAD: chachaPoly},
	"xchacha20-ietf-poly1305": {Name: "xchacha20-ietf-poly1305", Kind: AEAD, KeySize: 32, IVSize: 32, newAEAD: xchachaPoly},
}

// cfbDecrypters maps CFB method names to their decrypting constructor.
var cfbDecrypters = map[string]func(key, iv []byte) (cipher.Stream, error){
	"aes-128-cfb": aesCFBDecrypter,
	"aes-192-cfb": aesCFBDecrypter,
	"aes-256-cfb": aesCFBDecrypter,
}

// Lookup returns the Spec for a Shadowsocks method name.
func Lookup(name string) (Spec, error) {
	s, ok := specs[name]
	if !ok {
		return Spec{}, fmt.Errorf("sscrypto: unknown cipher method %q", name)
	}
	return s, nil
}

// NewStreamDecrypter builds the decrypting stream for a stream spec. For
// every mode except CFB this is identical to NewStream.
func (s Spec) NewStreamDecrypter(key, iv []byte) (cipher.Stream, error) {
	if dec, ok := cfbDecrypters[s.Name]; ok {
		if len(key) != s.KeySize || len(iv) != s.IVSize {
			return nil, fmt.Errorf("sscrypto: %s: bad key/IV length", s.Name)
		}
		return dec(key, iv)
	}
	return s.NewStream(key, iv)
}

// Methods returns all registered method names, sorted.
func Methods() []string {
	out := make([]string, 0, len(specs))
	for name := range specs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// StreamMethods returns the names of all stream-construction methods, sorted.
func StreamMethods() []string { return methodsOfKind(Stream) }

// AEADMethods returns the names of all AEAD-construction methods, sorted.
func AEADMethods() []string { return methodsOfKind(AEAD) }

func methodsOfKind(k Kind) []string {
	var out []string
	for name, s := range specs {
		if s.Kind == k {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}
