package sscrypto

import (
	"encoding/binary"
	"math/bits"
)

// Salsa20 implements DJB's Salsa20/20 stream cipher — the other classic
// 8-byte-IV Shadowsocks stream method ("salsa20"). Structurally it is
// ChaCha20's sibling: same 512-bit state, different constant placement
// and quarter-round wiring.
type Salsa20 struct {
	state   [16]uint32
	buf     [64]byte
	bufUsed int
}

// NewSalsa20 returns a Salsa20 stream for a 32-byte key and 8-byte nonce.
func NewSalsa20(key, nonce []byte) (*Salsa20, error) {
	if len(key) != 32 || len(nonce) != 8 {
		return nil, errChaChaParams
	}
	s := &Salsa20{bufUsed: 64}
	// "expand 32-byte k" at positions 0, 5, 10, 15.
	s.state[0] = 0x61707865
	s.state[5] = 0x3320646e
	s.state[10] = 0x79622d32
	s.state[15] = 0x6b206574
	for i := 0; i < 4; i++ {
		s.state[1+i] = binary.LittleEndian.Uint32(key[4*i:])
		s.state[11+i] = binary.LittleEndian.Uint32(key[16+4*i:])
	}
	s.state[6] = binary.LittleEndian.Uint32(nonce[0:])
	s.state[7] = binary.LittleEndian.Uint32(nonce[4:])
	// state[8], state[9]: 64-bit block counter, starts at zero.
	return s, nil
}

func salsaQR(a, b, c, d uint32) (uint32, uint32, uint32, uint32) {
	b ^= bits.RotateLeft32(a+d, 7)
	c ^= bits.RotateLeft32(b+a, 9)
	d ^= bits.RotateLeft32(c+b, 13)
	a ^= bits.RotateLeft32(d+c, 18)
	return a, b, c, d
}

func (s *Salsa20) block() {
	var x [16]uint32
	copy(x[:], s.state[:])
	for i := 0; i < 10; i++ {
		// Column rounds.
		x[0], x[4], x[8], x[12] = salsaQR(x[0], x[4], x[8], x[12])
		x[5], x[9], x[13], x[1] = salsaQR(x[5], x[9], x[13], x[1])
		x[10], x[14], x[2], x[6] = salsaQR(x[10], x[14], x[2], x[6])
		x[15], x[3], x[7], x[11] = salsaQR(x[15], x[3], x[7], x[11])
		// Row rounds.
		x[0], x[1], x[2], x[3] = salsaQR(x[0], x[1], x[2], x[3])
		x[5], x[6], x[7], x[4] = salsaQR(x[5], x[6], x[7], x[4])
		x[10], x[11], x[8], x[9] = salsaQR(x[10], x[11], x[8], x[9])
		x[15], x[12], x[13], x[14] = salsaQR(x[15], x[12], x[13], x[14])
	}
	for i := 0; i < 16; i++ {
		binary.LittleEndian.PutUint32(s.buf[4*i:], x[i]+s.state[i])
	}
	s.bufUsed = 0
	s.state[8]++
	if s.state[8] == 0 {
		s.state[9]++
	}
}

// XORKeyStream implements cipher.Stream.
func (s *Salsa20) XORKeyStream(dst, src []byte) {
	if len(dst) < len(src) {
		panic("sscrypto: salsa20 output smaller than input")
	}
	for len(src) > 0 {
		if s.bufUsed == 64 {
			s.block()
		}
		n := len(src)
		if avail := 64 - s.bufUsed; n > avail {
			n = avail
		}
		for i := 0; i < n; i++ {
			dst[i] = src[i] ^ s.buf[s.bufUsed+i]
		}
		s.bufUsed += n
		dst = dst[n:]
		src = src[n:]
	}
}
