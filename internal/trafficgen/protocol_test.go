package trafficgen

import (
	"bytes"
	"testing"

	"sslab/internal/detector"
	"sslab/internal/entropy"
	"sslab/internal/sscrypto"
)

// TestOpenVPNResetRoundTrip: the generator's resets must parse under the
// detector's fingerprint — the two packages encode the same wire layout.
func TestOpenVPNResetRoundTrip(t *testing.T) {
	g := New(21)
	for i := 0; i < 50; i++ {
		for _, auth := range []bool{false, true} {
			p := g.AppendOpenVPNClientReset(nil, auth)
			wantLen := ovpnResetPlainLen
			if auth {
				wantLen = ovpnResetAuthLen
			}
			if len(p) != wantLen {
				t.Fatalf("auth=%v: len %d, want %d", auth, len(p), wantLen)
			}
			r, ok := detector.ParseClientReset(p)
			if !ok {
				t.Fatalf("auth=%v: generated reset rejected by detector parser: %x", auth, p)
			}
			if r.TLSAuth != auth {
				t.Errorf("auth=%v: parser saw TLSAuth=%v", auth, r.TLSAuth)
			}
			if !bytes.Equal(r.Session[:], p[3:11]) {
				t.Errorf("auth=%v: session mismatch", auth)
			}
		}
	}
}

// TestObfsFirstPacketShape: obfs packets must be long, unframed and
// high-entropy enough to trip the fully-encrypted heuristic.
func TestObfsFirstPacketShape(t *testing.T) {
	g := New(22)
	for i := 0; i < 30; i++ {
		p := g.AppendObfsFirstPacket(nil)
		if len(p) < 160 || len(p) >= 900 {
			t.Fatalf("obfs packet len %d outside [160,900)", len(p))
		}
		if h := entropy.Shannon(p); h < 6.5 {
			t.Errorf("obfs packet entropy %.2f, want >= 6.5", h)
		}
	}
}

// TestWebFirstPacketShape: direct web packets are either printable HTTP
// or TLS-framed — never something the fully-encrypted stage flags.
func TestWebFirstPacketShape(t *testing.T) {
	g := New(23)
	sawHTTP, sawTLS := false, false
	for i := 0; i < 60; i++ {
		p := g.AppendWebFirstPacket(nil)
		switch {
		case bytes.HasPrefix(p, []byte("GET ")):
			sawHTTP = true
		case len(p) > 5 && p[0] == 0x16 && p[1] == 0x03:
			sawTLS = true
		default:
			t.Fatalf("web packet %d is neither HTTP nor TLS: %x", i, p[:min(16, len(p))])
		}
	}
	if !sawHTTP || !sawTLS {
		t.Errorf("web mix incomplete: http=%v tls=%v", sawHTTP, sawTLS)
	}
}

// TestProtocolDispatch: the dispatcher routes each workload to its
// protocol and falls back to Shadowsocks wire form for classic workloads.
func TestProtocolDispatch(t *testing.T) {
	spec, _ := sscrypto.Lookup("aes-256-gcm")

	p := New(24).AppendProtocolFirstPacket(nil, spec, OpenVPNTCP)
	if _, ok := detector.ParseClientReset(p); !ok {
		t.Error("OpenVPNTCP dispatch did not produce a parseable reset")
	}
	p = New(24).AppendProtocolFirstPacket(nil, spec, OpenVPNTCPAuth)
	if r, ok := detector.ParseClientReset(p); !ok || !r.TLSAuth {
		t.Error("OpenVPNTCPAuth dispatch did not produce a tls-auth reset")
	}

	// Classic workloads must match AppendFirstWirePacket draw-for-draw.
	a := New(25).AppendProtocolFirstPacket(nil, spec, CurlLoop)
	b := New(25).AppendFirstWirePacket(nil, spec, CurlLoop)
	if !bytes.Equal(a, b) {
		t.Error("CurlLoop dispatch diverges from AppendFirstWirePacket")
	}
}
