// Package trafficgen synthesizes the client workloads of the paper's
// experiments: curl-style HTTP/HTTPS fetch loops (§3.1's Shadowsocks-libev
// setup) and Firefox-style browsing of Alexa-ranked sites (§3.1's
// OutlineVPN setup). What the GFW's detector sees is the length and
// entropy of the first data-carrying wire packet, so the generator
// produces realistic plaintext first flights and converts them to wire
// form for a given cipher spec.
package trafficgen

import (
	"fmt"
	"math/rand"
	"slices"
	"strings"

	"sslab/internal/seedfork"
	"sslab/internal/socks"
	"sslab/internal/sscrypto"
)

// Workload identifies a client behaviour pattern.
type Workload int

const (
	// CurlHTTP fetches plain HTTP (http://example.com in the paper).
	CurlHTTP Workload = iota
	// CurlHTTPS fetches HTTPS (https://www.wikipedia.org, https://gfw.report),
	// whose first flight is a TLS ClientHello.
	CurlHTTPS
	// BrowseAlexa emulates Firefox browsing a censored subset of the
	// Alexa top sites: a mix of TLS handshakes with varied SNI lengths.
	BrowseAlexa
	// CurlLoop reproduces the paper's exact client driver: each fetch
	// picks one of https://www.wikipedia.org, http://example.com, and
	// https://gfw.report.
	CurlLoop
	// OpenVPNTCP opens an OpenVPN-over-TCP tunnel: the first packet is a
	// P_CONTROL_HARD_RESET_CLIENT_V2 with no tls-auth wrapping.
	OpenVPNTCP
	// OpenVPNTCPAuth is OpenVPNTCP with tls-auth: the reset carries an
	// HMAC + replay-protection trailer, and the server silently drops
	// packets that fail authentication (probe-resistant).
	OpenVPNTCPAuth
	// ObfsFirst models an obfs-style fully encrypted transport: the first
	// packet is uniformly random bytes with no framing at all.
	ObfsFirst
	// WebDirect is innocuous direct web traffic — the same HTTP GETs and
	// TLS ClientHellos the proxied workloads tunnel, sent in the clear.
	// It is the false-positive yardstick for detector chains.
	WebDirect
)

// sites is a stand-in for the Alexa-subset target list.
var sites = []string{
	"www.wikipedia.org", "example.com", "gfw.report", "www.google.com",
	"twitter.com", "www.youtube.com", "www.facebook.com", "github.com",
	"news.ycombinator.com", "www.nytimes.com", "www.bbc.co.uk",
	"en.wikipedia.org", "www.reddit.com", "duckduckgo.com",
}

// Generator produces first flights deterministically from a seed.
type Generator struct {
	seed int64
	// src is the counted source behind rng, so the generator's stream
	// position — (seed, draw count) plus the byte reader's leftover —
	// serializes into RNGState for engine snapshots.
	src *seedfork.CountedSource
	rd  seedfork.ByteReader
	rng *rand.Rand
	// scratch holds the intermediate plaintext of AppendFirstWirePacket
	// so the population-scale hot path reuses one buffer per generator.
	scratch []byte
}

// New returns a Generator.
func New(seed int64) *Generator {
	src := seedfork.NewCountedSource(seed)
	return &Generator{seed: seed, src: src, rng: rand.New(src)}
}

// read fills p with random bytes through the serializable byte reader;
// it produces exactly the bytes rng.Read would, but with the partially
// consumed draw in exported state (see seedfork.ByteReader).
func (g *Generator) read(p []byte) {
	g.rd.Read(g.src, p)
}

// RNGState is the generator's serializable stream position.
type RNGState struct {
	Draws   uint64
	ReadVal uint64
	ReadPos int8
}

// CaptureRNG returns the generator's current stream position.
func (g *Generator) CaptureRNG() RNGState {
	return RNGState{Draws: g.src.Draws(), ReadVal: g.rd.Val, ReadPos: g.rd.Pos}
}

// RestoreRNG rewinds the generator to a captured stream position by
// reconstructing the source from the seed and fast-forwarding.
func (g *Generator) RestoreRNG(st RNGState) {
	src := seedfork.NewCountedSource(g.seed)
	src.Skip(st.Draws)
	g.src = src
	g.rng = rand.New(src)
	g.rd = seedfork.ByteReader{Val: st.ReadVal, Pos: st.ReadPos}
}

// curlSites are the three targets §3.1's curl loops fetched.
var curlSites = []string{"https://www.wikipedia.org", "http://example.com", "https://gfw.report"}

// Target returns a host:port a client would visit under the workload.
func (g *Generator) Target(w Workload) string {
	switch w {
	case CurlHTTP:
		return sites[g.rng.Intn(len(sites))] + ":80"
	case CurlLoop:
		site := curlSites[g.rng.Intn(len(curlSites))]
		if scheme, rest, _ := strings.Cut(site, "://"); scheme == "http" {
			return rest + ":80"
		} else {
			return rest + ":443"
		}
	default:
		return sites[g.rng.Intn(len(sites))] + ":443"
	}
}

// PlaintextFirstFlight builds the plaintext a Shadowsocks client sends in
// its first packet: the SOCKS-style target specification followed by the
// first application bytes (an HTTP request or a TLS ClientHello).
func (g *Generator) PlaintextFirstFlight(w Workload) []byte {
	return g.AppendPlaintextFirstFlight(nil, w)
}

// AppendPlaintextFirstFlight appends the plaintext first flight to dst
// and returns the extended slice. It draws exactly the random values
// PlaintextFirstFlight draws, so the two forms are interchangeable
// mid-stream; the append form exists for population-scale callers that
// amortize one buffer over millions of flows.
func (g *Generator) AppendPlaintextFirstFlight(dst []byte, w Workload) []byte {
	target := g.Target(w)
	addr, err := socks.ParseAddr(target)
	if err != nil {
		panic(err) // targets above are all well-formed
	}
	dst = addr.Append(dst)
	if addr.Port == 80 {
		return g.appendHTTPGET(dst, addr.Host)
	}
	return g.appendClientHello(dst, addr.Host)
}

// getPaths are the request paths the curl-like workload cycles over.
var getPaths = []string{"/", "/index.html", "/wiki/Main_Page", "/search?q=weather", "/static/app.js"}

// appendHTTPGET appends a curl-like request.
func (g *Generator) appendHTTPGET(dst []byte, host string) []byte {
	return fmt.Appendf(dst,
		"GET %s HTTP/1.1\r\nHost: %s\r\nUser-Agent: curl/7.%d.0\r\nAccept: */*\r\n\r\n",
		getPaths[g.rng.Intn(len(getPaths))], host, 50+g.rng.Intn(20))
}

// clientHello builds a TLS-ClientHello-shaped first flight: a 5-byte
// record header and a body whose length distribution (session ticket, key
// shares, padding) matches modern browsers (~250–600 bytes) and whose
// byte-level structure matches a real hello: about a third genuinely
// random (client random, session id, key share) and the rest structural —
// extension framing, cipher-suite ids, zero padding, and the plaintext
// SNI. The resulting per-byte entropy of ≈5–6 bits is what lets the GFW's
// entropy feature keep direct TLS below fully encrypted protocols.
func (g *Generator) appendClientHello(dst []byte, host string) []byte {
	body := 220 + g.rng.Intn(360)
	start := len(dst)
	dst = append(slices.Grow(dst, 5+body), zeros[:5+body]...)
	rec := dst[start:]
	rec[0] = 0x16 // handshake
	rec[1], rec[2] = 0x03, 0x01
	rec[3], rec[4] = byte(body>>8), byte(body)

	b := rec[5:]
	nRand := len(b) / 3 // client random + session id + X25519 key share
	g.read(b[:nRand])
	for i := nRand; i < len(b); i++ {
		b[i] = helloStructural[g.rng.Intn(len(helloStructural))]
	}
	copy(b[nRand+4:], host) // plaintext SNI
	return dst
}

// helloStructural are the non-random ClientHello bytes: type/length
// framing, GREASE, suites, padding.
var helloStructural = []byte{
	0x00, 0x00, 0x00, 0x00, 0x01, 0x02, 0x03, 0x13, 0x13, 0xc0,
	0x2f, 0x30, 0xff, 0x01, 0x0a, 0x16, 0x17, 0x18, 0x00, 0x1d,
}

// zeros seeds fresh record bytes before they are overwritten; 5+579 is
// the largest ClientHello appendClientHello produces.
var zeros [5 + 579]byte

// WireFirstPacket converts a plaintext first flight to the wire bytes a
// Shadowsocks connection of the given cipher would produce. Because
// Shadowsocks ciphertext is computationally indistinguishable from random
// bytes, the simulator represents it as random bytes of the correct
// length: IV + payload for stream ciphers, salt + sealed length + sealed
// payload for AEAD.
func (g *Generator) WireFirstPacket(spec sscrypto.Spec, plaintext []byte) []byte {
	var n int
	if spec.Kind == sscrypto.Stream {
		n = spec.IVSize + len(plaintext)
	} else {
		n = spec.SaltSize() + 2 + 16 + len(plaintext) + 16
	}
	out := make([]byte, n)
	g.read(out)
	return out
}

// FirstWirePacket is a convenience combining the two steps.
func (g *Generator) FirstWirePacket(spec sscrypto.Spec, w Workload) []byte {
	return g.AppendFirstWirePacket(nil, spec, w)
}

// OpenVPN-over-TCP first-packet layout (RFC-less, from the OpenVPN wire
// protocol): a 2-byte big-endian length prefix, one opcode/key-id byte
// (P_CONTROL_HARD_RESET_CLIENT_V2 << 3), an 8-byte random session ID,
// then — with tls-auth — a 20-byte HMAC, 4-byte replay packet ID and
// 4-byte net time, and finally an empty ACK array (count byte 0) and a
// 4-byte message packet ID of 0. These layouts are what Xue et al.
// ("OpenVPN Is Open to VPN Fingerprinting", USENIX Security 2022) showed
// censors match on; internal/detector's ParseClientReset accepts exactly
// these shapes.
const (
	ovpnOpcodeHardResetClientV2 = 7
	ovpnResetPlainLen           = 2 + 1 + 8 + 1 + 4
	ovpnResetAuthLen            = ovpnResetPlainLen + 20 + 4 + 4
)

// AppendOpenVPNClientReset appends the first packet of an OpenVPN-over-TCP
// handshake: a client hard reset, optionally wrapped with tls-auth.
func (g *Generator) AppendOpenVPNClientReset(dst []byte, tlsAuth bool) []byte {
	n := ovpnResetPlainLen
	if tlsAuth {
		n = ovpnResetAuthLen
	}
	start := len(dst)
	dst = append(slices.Grow(dst, n), zeros[:n]...)
	p := dst[start:]
	p[0], p[1] = byte((n-2)>>8), byte(n-2)
	p[2] = ovpnOpcodeHardResetClientV2 << 3 // key ID 0
	g.read(p[3:11])                         // session ID
	if tlsAuth {
		g.read(p[11:31]) // HMAC
		p[34] = 1        // replay packet ID 1
		g.read(p[35:39]) // net time
	}
	// Remaining bytes stay zero: empty ACK array, message packet ID 0.
	return dst
}

// AppendObfsFirstPacket appends an obfs-style fully encrypted first
// packet: uniformly random bytes with no framing, no length prefix and
// no printable prelude — the look-like-nothing shape of obfs2/obfs4 and
// the post-2021 Shadowsocks-like transports the GFW's fully-encrypted
// heuristic targets.
func (g *Generator) AppendObfsFirstPacket(dst []byte) []byte {
	n := 160 + g.rng.Intn(740)
	start := len(dst)
	dst = slices.Grow(dst, n)[:start+n]
	g.read(dst[start:])
	return dst
}

// AppendWebFirstPacket appends a direct (unproxied) web first packet: the
// same HTTP GET or TLS ClientHello the tunneled workloads would carry,
// but with no SOCKS address prefix and no encryption layer. This is the
// innocuous-traffic baseline detector chains are scored against for
// false positives.
func (g *Generator) AppendWebFirstPacket(dst []byte) []byte {
	target := g.Target(CurlLoop)
	addr, err := socks.ParseAddr(target)
	if err != nil {
		panic(err)
	}
	if addr.Port == 80 {
		return g.appendHTTPGET(dst, addr.Host)
	}
	return g.appendClientHello(dst, addr.Host)
}

// AppendProtocolFirstPacket appends the first wire packet for any
// workload: protocol-native packets for the OpenVPN, obfs and direct-web
// workloads, and Shadowsocks wire form (via spec) for everything else.
// Shadowsocks callers keep their exact pre-existing draw order.
func (g *Generator) AppendProtocolFirstPacket(dst []byte, spec sscrypto.Spec, w Workload) []byte {
	switch w {
	case OpenVPNTCP:
		return g.AppendOpenVPNClientReset(dst, false)
	case OpenVPNTCPAuth:
		return g.AppendOpenVPNClientReset(dst, true)
	case ObfsFirst:
		return g.AppendObfsFirstPacket(dst)
	case WebDirect:
		return g.AppendWebFirstPacket(dst)
	default:
		return g.AppendFirstWirePacket(dst, spec, w)
	}
}

// AppendFirstWirePacket appends a complete first wire packet to dst and
// returns the extended slice. Random draws match FirstWirePacket
// exactly (plaintext first, then one wire-length Read), so mixing the
// two forms on one Generator keeps the stream aligned. The plaintext
// intermediate lives in a per-Generator scratch buffer; in steady state
// the call allocates nothing once dst's capacity suffices.
func (g *Generator) AppendFirstWirePacket(dst []byte, spec sscrypto.Spec, w Workload) []byte {
	g.scratch = g.AppendPlaintextFirstFlight(g.scratch[:0], w)
	var n int
	if spec.Kind == sscrypto.Stream {
		n = spec.IVSize + len(g.scratch)
	} else {
		n = spec.SaltSize() + 2 + 16 + len(g.scratch) + 16
	}
	start := len(dst)
	dst = slices.Grow(dst, n)[:start+n]
	g.read(dst[start:])
	return dst
}
