package trafficgen

import (
	"bytes"
	"testing"

	"sslab/internal/sscrypto"
)

// TestAppendMatchesAllocForm pins the contract the fleet's golden
// cross-check rests on: the append forms draw exactly the same random
// values as the allocating forms, so two generators with equal seeds
// stay bit-identical no matter which form each uses per call.
func TestAppendMatchesAllocForm(t *testing.T) {
	specs := []sscrypto.Spec{}
	for _, m := range []string{"aes-256-ctr", "aes-256-gcm", "chacha20-ietf-poly1305"} {
		spec, err := sscrypto.Lookup(m)
		if err != nil {
			t.Fatalf("lookup %s: %v", m, err)
		}
		specs = append(specs, spec)
	}
	workloads := []Workload{CurlHTTP, CurlHTTPS, BrowseAlexa, CurlLoop}

	alloc := New(99)
	appender := New(99)
	var buf []byte
	for i := 0; i < 200; i++ {
		w := workloads[i%len(workloads)]
		spec := specs[i%len(specs)]
		want := alloc.WireFirstPacket(spec, alloc.PlaintextFirstFlight(w))
		buf = appender.AppendFirstWirePacket(buf[:0], spec, w)
		if !bytes.Equal(want, buf) {
			t.Fatalf("iteration %d (%v, %s): append form diverged\n alloc: %d bytes\nappend: %d bytes",
				i, w, spec.Name, len(want), len(buf))
		}
	}
}

// TestAppendExtends verifies the append forms honor existing dst
// contents and only append.
func TestAppendExtends(t *testing.T) {
	g := New(3)
	prefix := []byte("prefix")
	out := g.AppendPlaintextFirstFlight(append([]byte(nil), prefix...), CurlLoop)
	if !bytes.HasPrefix(out, prefix) {
		t.Fatal("AppendPlaintextFirstFlight clobbered dst prefix")
	}
	if len(out) <= len(prefix) {
		t.Fatal("AppendPlaintextFirstFlight appended nothing")
	}
}
