package trafficgen

import (
	"bytes"
	"testing"

	"sslab/internal/sscrypto"
)

// TestBitIdenticalGeneration: same seed, same byte stream — the client
// workload half of the determinism invariant (the GFW half is covered
// in internal/gfw).
func TestBitIdenticalGeneration(t *testing.T) {
	spec, err := sscrypto.Lookup("aes-256-cfb")
	if err != nil {
		t.Fatal(err)
	}
	workloads := []Workload{CurlHTTP, CurlHTTPS, BrowseAlexa, CurlLoop}
	a, b := New(7), New(7)
	for i := 0; i < 2000; i++ {
		w := workloads[i%len(workloads)]
		pa, pb := a.FirstWirePacket(spec, w), b.FirstWirePacket(spec, w)
		if !bytes.Equal(pa, pb) {
			t.Fatalf("iteration %d (workload %d): wire packets diverged", i, w)
		}
	}
}

func TestSeedChangesGeneration(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if bytes.Equal(a.PlaintextFirstFlight(BrowseAlexa), b.PlaintextFirstFlight(BrowseAlexa)) {
			same++
		}
	}
	if same == 100 {
		t.Fatal("different seeds produced identical flights; seed not threaded through")
	}
}
