package trafficgen

import (
	"strings"
	"testing"

	"sslab/internal/entropy"
	"sslab/internal/socks"
	"sslab/internal/sscrypto"
)

func TestTargetsWellFormed(t *testing.T) {
	g := New(1)
	for i := 0; i < 100; i++ {
		for _, w := range []Workload{CurlHTTP, CurlHTTPS, BrowseAlexa} {
			target := g.Target(w)
			if _, err := socks.ParseAddr(target); err != nil {
				t.Fatalf("bad target %q: %v", target, err)
			}
			if w == CurlHTTP && !strings.HasSuffix(target, ":80") {
				t.Errorf("HTTP target %q not on :80", target)
			}
		}
	}
}

func TestPlaintextFirstFlightParses(t *testing.T) {
	g := New(2)
	for i := 0; i < 200; i++ {
		p := g.PlaintextFirstFlight(CurlHTTP)
		addr, n, err := socks.Decode(p, false)
		if err != nil {
			t.Fatalf("first flight does not start with a target spec: %v", err)
		}
		rest := string(p[n:])
		if !strings.HasPrefix(rest, "GET ") || !strings.Contains(rest, "\r\n\r\n") {
			t.Fatalf("HTTP flight malformed: %q", rest[:40])
		}
		if addr.Port != 80 {
			t.Errorf("HTTP flight port %d", addr.Port)
		}
	}
}

func TestClientHelloShape(t *testing.T) {
	g := New(3)
	for i := 0; i < 200; i++ {
		p := g.PlaintextFirstFlight(CurlHTTPS)
		_, n, err := socks.Decode(p, false)
		if err != nil {
			t.Fatal(err)
		}
		hello := p[n:]
		if hello[0] != 0x16 {
			t.Fatal("not a handshake record")
		}
		body := int(hello[3])<<8 | int(hello[4])
		if len(hello) != 5+body {
			t.Fatalf("record length field %d vs actual %d", body, len(hello)-5)
		}
		if body < 220 || body >= 580 {
			t.Errorf("hello body %d outside browser-like range", body)
		}
	}
}

// TestWireFirstPacketLengths pins the wire overhead per construction —
// the lengths that make the detector's mod-16 remainders meaningful.
func TestWireFirstPacketLengths(t *testing.T) {
	g := New(4)
	plain := make([]byte, 100)
	stream, _ := sscrypto.Lookup("aes-256-ctr")
	if got := len(g.WireFirstPacket(stream, plain)); got != 16+100 {
		t.Errorf("stream wire length %d, want 116", got)
	}
	aead, _ := sscrypto.Lookup("chacha20-ietf-poly1305")
	if got := len(g.WireFirstPacket(aead, plain)); got != 32+2+16+100+16 {
		t.Errorf("AEAD wire length %d, want 166", got)
	}
}

// TestWireLooksRandom: the simulated ciphertext must be high-entropy, or
// the detector model would see something real ciphertext doesn't produce.
func TestWireLooksRandom(t *testing.T) {
	g := New(5)
	spec, _ := sscrypto.Lookup("aes-256-gcm")
	w := g.FirstWirePacket(spec, BrowseAlexa)
	if h := entropy.Shannon(w); h < 7.0 {
		t.Errorf("wire entropy %.2f, want >= 7", h)
	}
}

func TestDeterminism(t *testing.T) {
	a := New(9).PlaintextFirstFlight(BrowseAlexa)
	b := New(9).PlaintextFirstFlight(BrowseAlexa)
	if string(a) != string(b) {
		t.Error("same seed, different flights")
	}
}
