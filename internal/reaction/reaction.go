// Package reaction models how concrete Shadowsocks server implementations
// react to arbitrary first-packet payloads — the behaviour the GFW's active
// probes are designed to elicit and that §5 of the paper catalogues in
// Figure 10a (stream ciphers), Figure 10b (AEAD ciphers) and Table 5
// (replays).
//
// The engine performs real decryption with the server's actual key and
// real target-specification parsing, so the probability structure the
// paper measures (13/16 invalid address types under libev's masking, the
// negligible AEAD forgery probability, and so on) emerges from the
// cryptography rather than being hard-coded. Both the runnable servers in
// internal/ssserver and the flow-level GFW simulator in internal/netsim
// share this one source of truth.
package reaction

import (
	"hash/fnv"
	"time"

	"sslab/internal/replay"
	"sslab/internal/socks"
	"sslab/internal/sscrypto"
)

// Reaction is an observable server behaviour, as classified in Figure 10:
// the TCP-visible outcome of sending one payload and waiting.
type Reaction int

const (
	// Timeout: the server keeps waiting for more data; the prober (which
	// times out in under 10 s, vs. the server's typical 60 s) closes first.
	Timeout Reaction = iota
	// RST: the server closes immediately with unread data in its socket
	// buffer, producing a TCP RST (Frolov et al.'s observation about
	// Linux close semantics).
	RST
	// FINACK: the server closes immediately having read everything,
	// producing a FIN/ACK.
	FINACK
	// Data: the server responds with proxied data — what a server without
	// replay protection does when fed an identical replay (Table 5's "D").
	Data
)

// String returns the Figure 10 cell label for r.
func (r Reaction) String() string {
	switch r {
	case Timeout:
		return "TIMEOUT"
	case RST:
		return "RST"
	case FINACK:
		return "FIN/ACK"
	case Data:
		return "DATA"
	default:
		return "UNKNOWN"
	}
}

// Profile captures the behavioural differences between implementations
// and version ranges that the paper's probes can distinguish.
type Profile struct {
	Name     string // implementation name, e.g. "shadowsocks-libev"
	Versions string // human-readable version range

	// RSTOnError: close immediately on a protocol/authentication error
	// (older versions) instead of reading forever (newer versions).
	RSTOnError bool
	// ReplayDefense: remember IVs/salts and reject replays (libev's
	// ppbloom; added to OutlineVPN in v1.1.0).
	ReplayDefense bool
	// AtypMask: mask the upper four bits of the address-type byte before
	// validating (a libev artifact of the removed one-time-auth mode),
	// raising the valid-type probability from 3/256 to 3/16.
	AtypMask bool
	// WaitPayloadTag: with AEAD ciphers, wait for salt+18+16+1 bytes
	// (libev waits for the first payload tag too) rather than reacting at
	// salt+18 (OutlineVPN v1.0.6's distinguishing quirk).
	WaitPayloadTag bool
	// AEADOnly: the implementation refuses stream-cipher configs
	// (OutlineVPN).
	AEADOnly bool
}

// The implementation profiles the paper studies, plus the post-disclosure
// hardened profile (§7.2 and the Responsible Disclosure section).
var (
	// LibevOld is Shadowsocks-libev v3.0.8–v3.2.5: replies RST on errors,
	// has the ppbloom replay filter, masks the address type, and requires
	// the complete target specification in the first data packet.
	LibevOld = Profile{
		Name: "shadowsocks-libev", Versions: "v3.0.8-v3.2.5",
		RSTOnError: true, ReplayDefense: true, AtypMask: true, WaitPayloadTag: true,
	}
	// LibevNew is Shadowsocks-libev v3.3.1–v3.3.3: identical parsing but
	// it times out instead of RSTing on errors (commit a99c39c).
	LibevNew = Profile{
		Name: "shadowsocks-libev", Versions: "v3.3.1-v3.3.3",
		RSTOnError: false, ReplayDefense: true, AtypMask: true, WaitPayloadTag: true,
	}
	// Outline106 is OutlineVPN v1.0.6: AEAD only, no replay defense,
	// reacts as soon as the sealed length prefix is readable, RST on
	// authentication failure — and FIN/ACK at exactly salt+18 bytes.
	Outline106 = Profile{
		Name: "outline-ss-server", Versions: "v1.0.6",
		RSTOnError: true, AEADOnly: true,
	}
	// Outline107 is OutlineVPN v1.0.7–v1.0.8: probing resistance via
	// timeout (Jigsaw commit c70d512) but still no replay defense.
	Outline107 = Profile{
		Name: "outline-ss-server", Versions: "v1.0.7-v1.0.8",
		AEADOnly: true,
	}
	// Outline110 is OutlineVPN v1.1.0: adds the client-data replay
	// defense released in February 2020 after the disclosure.
	Outline110 = Profile{
		Name: "outline-ss-server", Versions: "v1.1.0",
		AEADOnly: true, ReplayDefense: true,
	}
	// Hardened follows every §7.2 recommendation: AEAD only, timestamp+
	// nonce replay filtering, and fully consistent timeout-on-error
	// reactions.
	Hardened = Profile{
		Name: "hardened-reference", Versions: "v1",
		AEADOnly: true, ReplayDefense: true, WaitPayloadTag: true,
	}
	// SSPython is Shadowsocks-python (the original implementation, §6):
	// stream ciphers without any replay defense and immediate closes on
	// errors. An identical replay decrypts cleanly and is proxied — the
	// strongest possible confirmation signal, consistent with the paper's
	// observation that the servers that actually got blocked ran
	// Shadowsocks-python or ShadowsocksR.
	SSPython = Profile{
		Name: "shadowsocks-python", Versions: "v2.x",
		RSTOnError: true, AtypMask: true, WaitPayloadTag: true,
	}
	// SSR is ShadowsocksR (§6): for probing purposes it behaves like a
	// stream-cipher server without a replay filter; its added obfuscation
	// layers do not authenticate the first flight either.
	SSR = Profile{
		Name: "shadowsocksr", Versions: "v2.5.x",
		RSTOnError: true, AtypMask: false, WaitPayloadTag: true,
	}
)

// Profiles lists the built-in profiles in the order Figure 10 presents them.
func Profiles() []Profile {
	return []Profile{LibevOld, LibevNew, Outline106, Outline107, Outline110, Hardened, SSPython, SSR}
}

// DialOutcome is what happens when the server tries to connect to a
// decrypted target specification.
type DialOutcome int

const (
	// DialRefused: the connection fails immediately (RST/unreachable) —
	// the server then closes toward the client with FIN/ACK.
	DialRefused DialOutcome = iota
	// DialHang: the target never answers; the server retransmits SYNs and
	// the prober gives up first (observed as a timeout).
	DialHang
	// DialOK: the target answers — only plausible for replays of genuine
	// connections, whose targets exist.
	DialOK
)

// Dialer decides the outcome of the server's outbound connection attempt.
type Dialer interface {
	Dial(target socks.Addr) DialOutcome
}

// HashDialer is the default Dialer for random targets: a deterministic
// 50/50 split between fast failure and hang, keyed by the target address.
// Random 4-byte IPs and garbage hostnames essentially never resolve to a
// live, fast-failing host in a consistent way, and the paper observes both
// FIN/ACK and TIMEOUT tails; the even split is an explicit modeling choice.
type HashDialer struct{}

// Dial implements Dialer.
func (HashDialer) Dial(target socks.Addr) DialOutcome {
	h := fnv.New32a()
	h.Write([]byte(target.String()))
	// Avalanche (murmur3 finalizer): FNV's low bits are biased on
	// structured inputs like dotted quads.
	x := h.Sum32()
	x ^= x >> 16
	x *= 0x85ebca6b
	x ^= x >> 13
	x *= 0xc2b2ae35
	x ^= x >> 16
	if x&1 == 0 {
		return DialRefused
	}
	return DialHang
}

// Server is the reaction-level model of one configured Shadowsocks server.
type Server struct {
	Profile Profile
	Spec    sscrypto.Spec
	Key     []byte
	Dialer  Dialer

	filter replay.Filter
}

// NewServer builds a Server for the given profile, method and password.
// It returns an error via panic-free validation: an AEAD-only profile
// configured with a stream method yields a nil server.
func NewServer(p Profile, spec sscrypto.Spec, password string) (*Server, error) {
	if p.AEADOnly && spec.Kind != sscrypto.AEAD {
		return nil, &ConfigError{Profile: p, Method: spec.Name}
	}
	s := &Server{Profile: p, Spec: spec, Key: spec.Key(password), Dialer: HashDialer{}}
	if p.ReplayDefense {
		if p == Hardened {
			s.filter = replay.NewTimedFilter(2 * time.Minute)
		} else {
			s.filter = replay.NewNonceFilter(1 << 16)
		}
	} else {
		s.filter = replay.None{}
	}
	return s, nil
}

// FilterState captures the server's replay-filter state for engine
// snapshots (see replay.CaptureState).
func (s *Server) FilterState() (replay.State, error) {
	return replay.CaptureState(s.filter)
}

// RestoreFilterState replaces the server's replay filter with the one
// a FilterState captured.
func (s *Server) RestoreFilterState(st replay.State) error {
	f, err := replay.RestoreState(st)
	if err != nil {
		return err
	}
	s.filter = f
	return nil
}

// ConfigError reports an implementation/method mismatch.
type ConfigError struct {
	Profile Profile
	Method  string
}

func (e *ConfigError) Error() string {
	return "reaction: " + e.Profile.Name + " " + e.Profile.Versions + " does not support method " + e.Method
}

// Result is the outcome of delivering one first-packet payload.
type Result struct {
	Reaction Reaction
	// Target is set when the payload decrypted to a parseable target
	// specification (stream ciphers) or authenticated (AEAD).
	Target *socks.Addr
	// ReplayDetected is set when the replay filter rejected the nonce.
	ReplayDetected bool
}

// errorReaction is the profile's behaviour on any protocol error.
func (s *Server) errorReaction() Reaction {
	if s.Profile.RSTOnError {
		return RST
	}
	return Timeout
}

// React computes the server's observable reaction to a connection whose
// first (and only) client flight is payload, delivered at time now. The
// payload is treated as freshly generated (client timestamp = now).
func (s *Server) React(payload []byte, now time.Time) Result {
	return s.ReactAt(payload, now, now)
}

// ReactAt is React for a payload originally generated at time ts — for a
// replayed probe, ts is when the GFW recorded the genuine connection. Only
// the Hardened profile's timestamp-based filter distinguishes ts from now;
// every implementation the paper studied ignores it.
func (s *Server) ReactAt(payload []byte, ts, now time.Time) Result {
	if s.Spec.Kind == sscrypto.Stream {
		return s.reactStream(payload, ts, now)
	}
	return s.reactAEAD(payload, ts, now)
}

// isReplay consults the profile's filter, honoring embedded timestamps
// when the filter supports them.
func (s *Server) isReplay(nonce []byte, ts, now time.Time) bool {
	if tf, ok := s.filter.(*replay.TimedFilter); ok {
		return tf.ReplayAt(nonce, ts, now)
	}
	return s.filter.Replay(nonce, now)
}

func (s *Server) reactStream(payload []byte, ts, now time.Time) Result {
	ivLen := s.Spec.IVSize
	// With only a (possibly partial) IV and no ciphertext, the server
	// waits for more data.
	if len(payload) <= ivLen {
		return Result{Reaction: Timeout}
	}
	iv := payload[:ivLen]
	if s.isReplay(iv, ts, now) {
		return Result{Reaction: s.errorReaction(), ReplayDetected: true}
	}
	dec, err := s.Spec.NewStreamDecrypter(s.Key, iv)
	if err != nil {
		return Result{Reaction: s.errorReaction()}
	}
	plain := make([]byte, len(payload)-ivLen)
	dec.XORKeyStream(plain, payload[ivLen:])

	target, _, derr := socks.Decode(plain, s.Profile.AtypMask)
	switch derr {
	case nil:
		// Complete target specification: attempt the outbound connection.
		switch s.Dialer.Dial(target) {
		case DialRefused:
			return Result{Reaction: FINACK, Target: &target}
		case DialHang:
			return Result{Reaction: Timeout, Target: &target}
		default:
			return Result{Reaction: Data, Target: &target}
		}
	case socks.ErrIncomplete:
		// Old libev requires the complete specification in the first data
		// event and treats a short header as an error; new libev waits.
		if s.Profile.RSTOnError {
			return Result{Reaction: RST}
		}
		return Result{Reaction: Timeout}
	default: // invalid address type
		return Result{Reaction: s.errorReaction()}
	}
}

func (s *Server) reactAEAD(payload []byte, ts, now time.Time) Result {
	saltLen := s.Spec.SaltSize()
	overhead := 16
	// How much data the implementation waits for before reacting:
	// libev additionally waits for the first payload tag plus one payload
	// byte; OutlineVPN v1.0.6 reacts as soon as [salt][len][tag] arrives.
	need := saltLen + 2 + overhead
	if s.Profile.WaitPayloadTag {
		need += overhead + 1
	}
	if len(payload) < need {
		return Result{Reaction: Timeout}
	}
	// OutlineVPN v1.0.6's fingerprint: at exactly [salt][len][tag] it
	// closes with FIN/ACK (it read everything, then errored), while any
	// longer unauthenticated payload leaves unread bytes and RSTs.
	if !s.Profile.WaitPayloadTag && s.Profile.RSTOnError && len(payload) == need {
		return Result{Reaction: FINACK}
	}

	salt := payload[:saltLen]
	if s.isReplay(salt, ts, now) {
		return Result{Reaction: s.errorReaction(), ReplayDetected: true}
	}
	aead, err := s.Spec.NewAEAD(sscrypto.SessionSubkey(s.Key, salt))
	if err != nil {
		return Result{Reaction: s.errorReaction()}
	}
	nonce := make([]byte, aead.NonceSize())
	head := payload[saltLen : saltLen+2+overhead]
	lenPlain, err := aead.Open(nil, nonce, head, nil)
	if err != nil {
		// Authentication failure — for random or byte-changed payloads
		// this is a (1 - 2^-128) certainty.
		return Result{Reaction: s.errorReaction()}
	}

	// Authenticated: this is a genuine (replayed) client flight. Decrypt
	// the first chunk and proxy.
	n := int(lenPlain[0])<<8 | int(lenPlain[1])
	body := payload[saltLen+2+overhead:]
	if len(body) < n+overhead {
		return Result{Reaction: Timeout} // wait for the rest of the chunk
	}
	incNonce(nonce)
	chunk, err := aead.Open(nil, nonce, body[:n+overhead], nil)
	if err != nil {
		return Result{Reaction: s.errorReaction()}
	}
	target, _, derr := socks.Decode(chunk, false)
	if derr != nil {
		return Result{Reaction: s.errorReaction()}
	}
	switch s.Dialer.Dial(target) {
	case DialOK:
		return Result{Reaction: Data, Target: &target}
	case DialRefused:
		return Result{Reaction: FINACK, Target: &target}
	default:
		return Result{Reaction: Timeout, Target: &target}
	}
}

func incNonce(n []byte) {
	for i := range n {
		n[i]++
		if n[i] != 0 {
			return
		}
	}
}

// Restart simulates a server restart for replay-filter purposes: a
// nonce-based filter forgets everything; a timed filter is unaffected.
func (s *Server) Restart() {
	if f, ok := s.filter.(*replay.NonceFilter); ok {
		f.Forget()
	}
}

// RegisterNonce records the IV/salt of a genuine (non-probe) connection's
// first payload in the server's replay filter, as serving the connection
// would. Experiment hosts use this to prime the filter without running the
// full proxy path.
func (s *Server) RegisterNonce(payload []byte, now time.Time) {
	n := s.Spec.IVSize
	if len(payload) < n {
		return
	}
	if tf, ok := s.filter.(*replay.TimedFilter); ok {
		tf.ReplayAt(payload[:n], now, now)
		return
	}
	s.filter.Replay(payload[:n], now)
}
