package reaction

import (
	"math/rand"
	"net"
	"testing"
	"time"

	"sslab/internal/probe"
	"sslab/internal/socks"
	"sslab/internal/sscrypto"
	"sslab/internal/ssproto"
)

// recorderConn captures the wire image of everything written through it —
// playing the role of the GFW recording a passing first packet.
type recorderConn struct {
	net.Conn
	wire []byte
}

func (r *recorderConn) Write(p []byte) (int, error) {
	r.wire = append(r.wire, p...)
	return len(p), nil
}

// legitFirstPacket produces the genuine first client flight for the given
// method: [IV|salt]...[target spec + initial data], as a real client sends.
func legitFirstPacket(t *testing.T, method, password, target string, data []byte, rng *rand.Rand) []byte {
	t.Helper()
	spec, err := sscrypto.Lookup(method)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := socks.ParseAddr(target)
	if err != nil {
		t.Fatal(err)
	}
	rec := &recorderConn{}
	conn := ssproto.NewConnWithRand(rec, spec, spec.Key(password), rng)
	first := append(addr.Append(nil), data...)
	if _, err := conn.Write(first); err != nil {
		t.Fatal(err)
	}
	return rec.wire
}

// mapDialer resolves known (legitimate) targets as live and everything
// else per HashDialer.
type mapDialer map[string]DialOutcome

func (m mapDialer) Dial(target socks.Addr) DialOutcome {
	if o, ok := m[target.String()]; ok {
		return o
	}
	return HashDialer{}.Dial(target)
}

const legitTarget = "93.184.216.34:443" // example.com

func liveDialer() Dialer { return mapDialer{legitTarget: DialOK} }

// TestTable5LibevOldStream: identical replay → RST; byte-changed replays
// (IV-region mutations) → a mix of RST/TIMEOUT/FIN-ACK and never Data.
func TestTable5LibevOldStream(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	s := mustServer(t, LibevOld, "aes-256-ctr")
	s.Dialer = liveDialer()

	counts := map[Reaction]int{}
	for i := 0; i < 300; i++ {
		rec := legitFirstPacket(t, "aes-256-ctr", "test-password", legitTarget,
			[]byte("GET / HTTP/1.1\r\n\r\n"), rng)
		// Prime the filter as the genuine connection would have.
		if r := s.React(rec, t0); r.Reaction != Data {
			t.Fatalf("genuine connection got %v, want DATA", r.Reaction)
		}
		// Identical replay → replay filter → RST.
		if r := s.React(append([]byte(nil), rec...), t0.Add(time.Minute)); r.Reaction != RST || !r.ReplayDetected {
			t.Fatalf("identical replay got %v (replay=%v), want RST via filter", r.Reaction, r.ReplayDetected)
		}
		// Byte-changed replay (R2: IV byte changed) → fresh IV → random-
		// probe behaviour.
		r := s.React(probe.Build(probe.R2, rec, rng), t0.Add(time.Minute))
		counts[r.Reaction]++
	}
	if counts[Data] != 0 {
		t.Errorf("byte-changed replay produced DATA %d times", counts[Data])
	}
	if counts[RST] == 0 {
		t.Error("byte-changed replays never RST; expected the dominant reaction")
	}
}

// TestTable5LibevOldAEAD: identical → RST (filter); byte-changed → RST
// (authentication failure).
func TestTable5LibevOldAEAD(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	s := mustServer(t, LibevOld, "aes-256-gcm")
	s.Dialer = liveDialer()
	rec := legitFirstPacket(t, "aes-256-gcm", "test-password", legitTarget, []byte("x"), rng)

	if r := s.React(rec, t0); r.Reaction != Data {
		t.Fatalf("genuine connection got %v", r.Reaction)
	}
	if r := s.React(append([]byte(nil), rec...), t0.Add(time.Hour)); r.Reaction != RST {
		t.Errorf("identical replay got %v, want RST", r.Reaction)
	}
	for _, typ := range []probe.Type{probe.R2, probe.R3, probe.R5} {
		if r := s.React(probe.Build(typ, rec, rng), t0.Add(time.Hour)); r.Reaction != RST {
			t.Errorf("%v replay got %v, want RST", typ, r.Reaction)
		}
	}
}

// TestTable5LibevNew: same logic, but every error reaction is TIMEOUT.
func TestTable5LibevNew(t *testing.T) {
	rng := rand.New(rand.NewSource(22))

	stream := mustServer(t, LibevNew, "aes-256-ctr")
	stream.Dialer = liveDialer()
	recS := legitFirstPacket(t, "aes-256-ctr", "test-password", legitTarget, []byte("y"), rng)
	stream.React(recS, t0)
	if r := stream.React(append([]byte(nil), recS...), t0.Add(time.Minute)); r.Reaction != Timeout {
		t.Errorf("stream identical replay got %v, want TIMEOUT", r.Reaction)
	}
	for i := 0; i < 100; i++ {
		r := stream.React(probe.Build(probe.R2, recS, rng), t0.Add(time.Minute))
		if r.Reaction == RST || r.Reaction == Data {
			t.Fatalf("stream byte-changed replay got %v, want TIMEOUT or FIN/ACK", r.Reaction)
		}
	}

	aead := mustServer(t, LibevNew, "aes-256-gcm")
	aead.Dialer = liveDialer()
	recA := legitFirstPacket(t, "aes-256-gcm", "test-password", legitTarget, []byte("y"), rng)
	aead.React(recA, t0)
	if r := aead.React(append([]byte(nil), recA...), t0.Add(time.Minute)); r.Reaction != Timeout {
		t.Errorf("AEAD identical replay got %v, want TIMEOUT", r.Reaction)
	}
	if r := aead.React(probe.Build(probe.R3, recA, rng), t0.Add(time.Minute)); r.Reaction != Timeout {
		t.Errorf("AEAD byte-changed replay got %v, want TIMEOUT", r.Reaction)
	}
}

// TestTable5Outline: without a replay defense, an identical replay makes
// the server respond with data — the paper's "D" cell and the core reason
// replay probes confirm OutlineVPN servers.
func TestTable5Outline(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, p := range []Profile{Outline106, Outline107} {
		s := mustServer(t, p, "chacha20-ietf-poly1305")
		s.Dialer = liveDialer()
		rec := legitFirstPacket(t, "chacha20-ietf-poly1305", "test-password", legitTarget,
			[]byte("GET / HTTP/1.1\r\n\r\n"), rng)
		if r := s.React(rec, t0); r.Reaction != Data {
			t.Fatalf("%s genuine connection got %v", p.Versions, r.Reaction)
		}
		// Identical replay, even days later: served like a fresh client.
		r := s.React(append([]byte(nil), rec...), t0.Add(48*time.Hour))
		if r.Reaction != Data {
			t.Errorf("%s identical replay got %v, want DATA", p.Versions, r.Reaction)
		}
		// Byte-changed (salt region): auth failure — RST for v1.0.6,
		// TIMEOUT for v1.0.7+ (Table 5 reflects the latter).
		want := Timeout
		if p.RSTOnError {
			want = RST
		}
		if r := s.React(probe.Build(probe.R2, rec, rng), t0); r.Reaction != want {
			t.Errorf("%s byte-changed replay got %v, want %v", p.Versions, r.Reaction, want)
		}
	}
}

// TestOutline110ReplayDefense verifies the post-disclosure release rejects
// identical replays with a consistent timeout.
func TestOutline110ReplayDefense(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	s := mustServer(t, Outline110, "chacha20-ietf-poly1305")
	s.Dialer = liveDialer()
	rec := legitFirstPacket(t, "chacha20-ietf-poly1305", "test-password", legitTarget, []byte("z"), rng)
	if r := s.React(rec, t0); r.Reaction != Data {
		t.Fatalf("genuine connection got %v", r.Reaction)
	}
	r := s.React(append([]byte(nil), rec...), t0.Add(time.Hour))
	if r.Reaction != Timeout || !r.ReplayDetected {
		t.Errorf("identical replay got %v (replay=%v), want TIMEOUT via filter", r.Reaction, r.ReplayDetected)
	}
}

// TestHardenedAgainstDelayedReplayAcrossRestart is the §7.2 punchline: a
// nonce-only filter forgets after a restart, a timestamp filter does not.
func TestHardenedAgainstDelayedReplayAcrossRestart(t *testing.T) {
	rng := rand.New(rand.NewSource(25))

	// Baseline: nonce-only defense (libev) fails across a restart.
	libev := mustServer(t, LibevNew, "aes-256-gcm")
	libev.Dialer = liveDialer()
	recL := legitFirstPacket(t, "aes-256-gcm", "test-password", legitTarget, []byte("q"), rng)
	libev.React(recL, t0)
	libev.Restart()
	if r := libev.ReactAt(append([]byte(nil), recL...), t0, t0.Add(570*time.Hour)); r.Reaction == Data {
		// Data is expected here: the filter forgot, and that is the flaw.
		t.Log("confirmed: nonce-only filter serves a 570-hour-delayed replay after restart")
	} else if r.ReplayDetected {
		t.Error("nonce filter remembered across restart; Restart() broken")
	}

	// Hardened: timestamp check rejects the stale replay regardless.
	h := mustServer(t, Hardened, "chacha20-ietf-poly1305")
	h.Dialer = liveDialer()
	recH := legitFirstPacket(t, "chacha20-ietf-poly1305", "test-password", legitTarget, []byte("q"), rng)
	if r := h.ReactAt(recH, t0, t0); r.Reaction != Data {
		t.Fatalf("hardened genuine connection got %v", r.Reaction)
	}
	h.Restart()
	r := h.ReactAt(append([]byte(nil), recH...), t0, t0.Add(570*time.Hour))
	if r.Reaction != Timeout {
		t.Errorf("hardened delayed replay got %v, want TIMEOUT", r.Reaction)
	}
}

// TestR4IsFilterCaught: R4 leaves a 16-byte IV intact, so a replay-
// defended stream server treats it as a replay, unlike R2/R3.
func TestR4IsFilterCaught(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	s := mustServer(t, LibevOld, "aes-256-ctr") // 16-byte IV
	s.Dialer = liveDialer()
	rec := legitFirstPacket(t, "aes-256-ctr", "test-password", legitTarget, []byte("w"), rng)
	s.React(rec, t0)
	r := s.React(probe.Build(probe.R4, rec, rng), t0.Add(time.Minute))
	if !r.ReplayDetected {
		t.Error("R4 (byte 16 changed) should be caught by the IV replay filter")
	}
}
