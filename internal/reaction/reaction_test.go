package reaction

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"sslab/internal/socks"
	"sslab/internal/sscrypto"
)

var t0 = time.Date(2019, 9, 29, 0, 0, 0, 0, time.UTC)

func mustServer(t *testing.T, p Profile, method string) *Server {
	t.Helper()
	spec, err := sscrypto.Lookup(method)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewServer(p, spec, "test-password")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// randomProbe returns n random bytes from rng.
func randomProbe(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	rng.Read(b)
	return b
}

// fractions sends `trials` random probes of length n to a fresh-per-probe
// payload (same server) and tallies reactions.
func fractions(t *testing.T, s *Server, n, trials int, seed int64) map[Reaction]float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	counts := map[Reaction]int{}
	for i := 0; i < trials; i++ {
		r := s.React(randomProbe(rng, n), t0)
		counts[r.Reaction]++
	}
	out := map[Reaction]float64{}
	for k, v := range counts {
		out[k] = float64(v) / float64(trials)
	}
	return out
}

// streamMethodWithIV returns a registered stream method with the given IV size.
func streamMethodWithIV(t *testing.T, ivSize int) string {
	t.Helper()
	for _, name := range sscrypto.StreamMethods() {
		spec, _ := sscrypto.Lookup(name)
		if spec.IVSize == ivSize {
			return name
		}
	}
	t.Fatalf("no stream method with IV size %d", ivSize)
	return ""
}

// TestFigure10aOldLibev reproduces the first block of Figure 10a: old
// Shadowsocks-libev with stream ciphers of 8/12/16-byte IVs.
func TestFigure10aOldLibev(t *testing.T) {
	for _, ivSize := range []int{8, 12, 16} {
		method := streamMethodWithIV(t, ivSize)
		s := mustServer(t, LibevOld, method)

		// Region 1: probe length 1..IV — always TIMEOUT.
		for _, n := range []int{1, ivSize / 2, ivSize} {
			if f := fractions(t, s, n, 50, 1); f[Timeout] != 1 {
				t.Errorf("iv=%d len=%d: reactions %v, want all TIMEOUT", ivSize, n, f)
			}
		}

		// Region 2: IV+1 .. IV+6 — overwhelmingly RST (a complete
		// hostname spec is possible only for tiny decrypted length bytes).
		for _, n := range []int{ivSize + 1, ivSize + 3, ivSize + 6} {
			if f := fractions(t, s, n, 400, 2); f[RST] < 0.90 {
				t.Errorf("iv=%d len=%d: RST fraction %.3f, want >= 0.90 (%v)", ivSize, n, f[RST], f)
			}
		}

		// Region 3: IV+7 and beyond — RST above 13/16, TIMEOUT below
		// 3/16, FIN/ACK below 3/16 (the paper's exact bounds).
		for _, n := range []int{ivSize + 7, ivSize + 20, 221} {
			f := fractions(t, s, n, 3000, 3)
			if f[RST] < 13.0/16*0.97 {
				t.Errorf("iv=%d len=%d: RST %.3f, want >= 13/16", ivSize, n, f[RST])
			}
			if f[Timeout] > 3.0/16 {
				t.Errorf("iv=%d len=%d: TIMEOUT %.3f, want < 3/16", ivSize, n, f[Timeout])
			}
			if f[FINACK] > 3.0/16 {
				t.Errorf("iv=%d len=%d: FIN/ACK %.3f, want < 3/16", ivSize, n, f[FINACK])
			}
			if f[Timeout]+f[FINACK] < 0.02 {
				t.Errorf("iv=%d len=%d: no TIMEOUT/FIN-ACK tail at all (%v); masking logic suspect", ivSize, n, f)
			}
		}
	}
}

// TestFigure10aNewLibev reproduces the second block of Figure 10a: new
// libev never RSTs; reactions are TIMEOUT above 13/16, FIN/ACK below 3/16.
func TestFigure10aNewLibev(t *testing.T) {
	for _, ivSize := range []int{8, 12, 16} {
		s := mustServer(t, LibevNew, streamMethodWithIV(t, ivSize))
		for _, n := range []int{1, ivSize, ivSize + 3, ivSize + 7, 49, 221} {
			f := fractions(t, s, n, 2000, 4)
			if f[RST] != 0 {
				t.Errorf("iv=%d len=%d: new libev sent RST (%v)", ivSize, n, f)
			}
			if n <= ivSize && f[Timeout] != 1 {
				t.Errorf("iv=%d len=%d: want all TIMEOUT, got %v", ivSize, n, f)
			}
			if f[FINACK] > 3.0/16 {
				t.Errorf("iv=%d len=%d: FIN/ACK %.3f, want < 3/16", ivSize, n, f[FINACK])
			}
			if f[Timeout] < 13.0/16*0.97 {
				t.Errorf("iv=%d len=%d: TIMEOUT %.3f, want above 13/16", ivSize, n, f[Timeout])
			}
		}
	}
}

// aeadMethodWithSalt returns a registered AEAD method with the given salt size.
func aeadMethodWithSalt(t *testing.T, saltSize int) string {
	t.Helper()
	for _, name := range sscrypto.AEADMethods() {
		spec, _ := sscrypto.Lookup(name)
		if spec.IVSize == saltSize {
			return name
		}
	}
	t.Fatalf("no AEAD method with salt size %d", saltSize)
	return ""
}

// TestFigure10bOldLibev: for AEAD with salt s, old libev times out up to
// s+34 bytes and RSTs from s+35 on (51/59/67 for 16/24/32-byte salts).
func TestFigure10bOldLibev(t *testing.T) {
	for _, saltSize := range []int{16, 24, 32} {
		s := mustServer(t, LibevOld, aeadMethodWithSalt(t, saltSize))
		threshold := saltSize + 35 // salt + 2 + 16 + 16 + 1
		for _, n := range []int{1, saltSize, threshold - 1} {
			if f := fractions(t, s, n, 100, 5); f[Timeout] != 1 {
				t.Errorf("salt=%d len=%d: want all TIMEOUT, got %v", saltSize, n, f)
			}
		}
		for _, n := range []int{threshold, threshold + 10, 221} {
			if f := fractions(t, s, n, 100, 6); f[RST] != 1 {
				t.Errorf("salt=%d len=%d: want all RST, got %v", saltSize, n, f)
			}
		}
		// Pin the absolute thresholds the paper states: 51, 59, 67.
		wantThreshold := map[int]int{16: 51, 24: 59, 32: 67}[saltSize]
		if threshold != wantThreshold {
			t.Errorf("salt=%d: reaction threshold %d, paper says %d", saltSize, threshold, wantThreshold)
		}
	}
}

// TestFigure10bNewLibev: new libev with AEAD always times out.
func TestFigure10bNewLibev(t *testing.T) {
	for _, saltSize := range []int{16, 24, 32} {
		s := mustServer(t, LibevNew, aeadMethodWithSalt(t, saltSize))
		for _, n := range []int{1, 50, 51, 67, 100, 221} {
			if f := fractions(t, s, n, 100, 7); f[Timeout] != 1 {
				t.Errorf("salt=%d len=%d: want all TIMEOUT, got %v", saltSize, n, f)
			}
		}
	}
}

// TestFigure10bOutline106 pins OutlineVPN v1.0.6's three-band fingerprint:
// TIMEOUT below 50 bytes, FIN/ACK at exactly 50, RST above.
func TestFigure10bOutline106(t *testing.T) {
	s := mustServer(t, Outline106, "chacha20-ietf-poly1305")
	for _, n := range []int{1, 32, 49} {
		if f := fractions(t, s, n, 100, 8); f[Timeout] != 1 {
			t.Errorf("len=%d: want all TIMEOUT, got %v", n, f)
		}
	}
	if f := fractions(t, s, 50, 100, 9); f[FINACK] != 1 {
		t.Errorf("len=50: want all FIN/ACK, got %v", f)
	}
	for _, n := range []int{51, 60, 100, 221} {
		if f := fractions(t, s, n, 100, 10); f[RST] != 1 {
			t.Errorf("len=%d: want all RST, got %v", n, f)
		}
	}
}

// TestFigure10bOutline107 pins the v1.0.7+ fix: always TIMEOUT.
func TestFigure10bOutline107(t *testing.T) {
	s := mustServer(t, Outline107, "chacha20-ietf-poly1305")
	for _, n := range []int{1, 49, 50, 51, 100, 221} {
		if f := fractions(t, s, n, 100, 11); f[Timeout] != 1 {
			t.Errorf("len=%d: want all TIMEOUT, got %v", n, f)
		}
	}
}

// TestOutlineRejectsStreamCiphers: OutlineVPN supports AEAD only.
func TestOutlineRejectsStreamCiphers(t *testing.T) {
	spec, _ := sscrypto.Lookup("aes-256-ctr")
	for _, p := range []Profile{Outline106, Outline107, Outline110} {
		if _, err := NewServer(p, spec, "pw"); err == nil {
			t.Errorf("%s %s accepted a stream cipher", p.Name, p.Versions)
		}
	}
}

func TestReactionStrings(t *testing.T) {
	for r, want := range map[Reaction]string{
		Timeout: "TIMEOUT", RST: "RST", FINACK: "FIN/ACK", Data: "DATA", Reaction(99): "UNKNOWN",
	} {
		if got := r.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", r, got, want)
		}
	}
}

func TestProfilesList(t *testing.T) {
	ps := Profiles()
	if len(ps) != 8 {
		t.Fatalf("Profiles() = %d entries", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		key := p.Name + p.Versions
		if seen[key] {
			t.Errorf("duplicate profile %s %s", p.Name, p.Versions)
		}
		seen[key] = true
	}
}

func TestConfigErrorMessage(t *testing.T) {
	spec, _ := sscrypto.Lookup("aes-256-ctr")
	_, err := NewServer(Outline107, spec, "pw")
	if err == nil {
		t.Fatal("stream method accepted by AEAD-only profile")
	}
	var ce *ConfigError
	if !errorsAs(err, &ce) {
		t.Fatalf("error type %T", err)
	}
	if msg := ce.Error(); !strings.Contains(msg, "outline-ss-server") || !strings.Contains(msg, "aes-256-ctr") {
		t.Errorf("message %q", msg)
	}
}

func errorsAs(err error, target *(*ConfigError)) bool {
	ce, ok := err.(*ConfigError)
	if ok {
		*target = ce
	}
	return ok
}

// TestHashDialerDeterministic: the 50/50 refused/hang split is stable per
// address (a re-probed target reacts the same way).
func TestHashDialerDeterministic(t *testing.T) {
	d := HashDialer{}
	refused, hang := 0, 0
	for i := 0; i < 400; i++ {
		addr := socks.Addr{Type: socks.AtypIPv4, IP: []byte{byte(i), 2, 3, 4}, Port: uint16(i)}
		o1 := d.Dial(addr)
		if o2 := d.Dial(addr); o2 != o1 {
			t.Fatal("dial outcome not deterministic")
		}
		if o1 == DialRefused {
			refused++
		} else {
			hang++
		}
	}
	if refused < 100 || hang < 100 {
		t.Errorf("split %d/%d; want roughly even", refused, hang)
	}
}

// TestReactShortAEADPayloads covers sub-salt payloads and the exact
// boundary where the salt is complete but nothing else is.
func TestReactShortAEADPayloads(t *testing.T) {
	s := mustServer(t, LibevOld, "aes-256-gcm")
	for _, n := range []int{0, 1, 31, 32, 33, 66} {
		payload := make([]byte, n)
		if r := s.React(payload, t0); r.Reaction != Timeout {
			t.Errorf("len %d: %v, want TIMEOUT", n, r.Reaction)
		}
	}
}
