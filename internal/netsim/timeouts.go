package netsim

import "time"

// Timeouts is the shared connection-patience configuration honoured by
// both the real-socket endpoints (internal/ssclient, internal/ssserver)
// and the simulated prober path (internal/gfw): one struct, one set of
// defaults, instead of per-package hard-coded constants. Zero fields
// select the defaults via WithDefaults.
type Timeouts struct {
	// Connect bounds connection establishment (TCP connect for real
	// sockets; the prober's SYN budget in the simulator).
	Connect time.Duration
	// Handshake bounds the first protocol exchange: how long a server
	// waits for protocol data, and how long a prober waits for the
	// server's reaction before recording a timeout.
	Handshake time.Duration
	// Idle bounds relay inactivity; zero means relays wait forever
	// (the historical behaviour).
	Idle time.Duration
}

// WithDefaults returns t with zero fields replaced by the defaults:
// Connect 10s, Handshake 60s (the common implementation default the
// paper contrasts with the GFW's shorter prober patience), Idle 0.
func (t Timeouts) WithDefaults() Timeouts {
	if t.Connect <= 0 {
		t.Connect = 10 * time.Second
	}
	if t.Handshake <= 0 {
		t.Handshake = 60 * time.Second
	}
	return t
}
