package netsim

import (
	"hash/fnv"
	"math/rand"
	"time"

	"sslab/internal/reaction"
	"sslab/internal/seedfork"
)

// LinkProfile describes the impairments of one directed link. The zero
// value is the idealized link the simulator always had: instant,
// lossless and in-order — a Network whose every profile is zero takes
// exactly the pre-impairment code path, so reports stay byte-identical.
//
// All randomness is drawn from a per-link PRNG forked off the Sim seed
// by the link's endpoint IPs (see linkFor), so two runs with the same
// seed produce the same drops, delays and reorders regardless of host
// registration order or sweep worker count.
type LinkProfile struct {
	// LatencyBase is the one-way propagation delay.
	LatencyBase time.Duration
	// Jitter adds a uniform [0, Jitter) delay to each delivery.
	Jitter time.Duration
	// Loss is the i.i.d. per-transmission loss probability. Ignored when
	// GE configures a Gilbert–Elliott chain.
	Loss float64
	// GE, when its transition probabilities are set, replaces Loss with
	// a two-state Gilbert–Elliott burst-loss chain.
	GE GEParams
	// Duplicate is the probability the first payload is delivered twice
	// (middleboxes observe the flow twice; hosts, like TCP receivers
	// deduplicating by sequence number, still see it once).
	Duplicate float64
	// ReorderProb is the probability a delivered packet is held back by
	// up to ReorderWindow, letting later packets on the link overtake it.
	// When zero, per-link delivery is strictly FIFO.
	ReorderProb   float64
	ReorderWindow time.Duration
	// BandwidthBPS caps the link's throughput in bits per second;
	// packets serialize onto the link in send order. Zero = unlimited.
	BandwidthBPS float64
	// Outages are scheduled windows (offsets from Epoch) during which
	// every transmission on the link is lost — path flaps and, when
	// applied to specific links, network partitions.
	Outages []Outage
	// Retry is the sender's transport-level retransmission policy.
	Retry RetryPolicy
}

// GEParams parameterizes a Gilbert–Elliott burst-loss chain: the chain
// steps once per transmission, and the loss probability is LossGood or
// LossBad depending on the current state.
type GEParams struct {
	PGoodToBad float64
	PBadToGood float64
	LossGood   float64
	LossBad    float64
}

func (g GEParams) active() bool { return g.PGoodToBad > 0 || g.PBadToGood > 0 }

// Outage is one scheduled link-down window, as offsets from Epoch.
// Start is inclusive, End exclusive.
type Outage struct {
	Start time.Duration
	End   time.Duration
}

// RetryPolicy is the transport-level retransmission behaviour of a
// link's sender: up to Attempts transmissions, with a timeout that
// starts at Timeout and doubles per retry (TCP-style exponential
// backoff). Zero values select Attempts=3, Timeout=1s.
type RetryPolicy struct {
	Attempts int
	Timeout  time.Duration
}

// IsZero reports whether the profile configures no impairment at all.
// Retry alone is not an impairment: it only matters once something can
// be lost.
func (p *LinkProfile) IsZero() bool {
	return p == nil ||
		(p.LatencyBase == 0 && p.Jitter == 0 && p.Loss == 0 && !p.GE.active() &&
			p.Duplicate == 0 && p.ReorderProb == 0 && p.BandwidthBPS == 0 &&
			len(p.Outages) == 0)
}

// normalized returns a copy with retry defaults applied and
// probabilities clamped to [0, 1].
func (p LinkProfile) normalized() LinkProfile {
	if p.Retry.Attempts <= 0 {
		p.Retry.Attempts = 3
	}
	if p.Retry.Timeout <= 0 {
		p.Retry.Timeout = time.Second
	}
	clamp01 := func(v *float64) {
		if *v < 0 {
			*v = 0
		}
		if *v > 1 {
			*v = 1
		}
	}
	clamp01(&p.Loss)
	clamp01(&p.Duplicate)
	clamp01(&p.ReorderProb)
	clamp01(&p.GE.PGoodToBad)
	clamp01(&p.GE.PBadToGood)
	clamp01(&p.GE.LossGood)
	clamp01(&p.GE.LossBad)
	return p
}

// linkKey identifies one directed link by its endpoint IPs. Impairment
// is a property of the path, so all ports between two hosts share one
// link state (and one bandwidth queue).
type linkKey struct {
	src, dst string
}

// linkState is the mutable per-directed-link impairment state. It is
// created lazily on first use; its PRNG is forked from the Sim seed and
// the two IPs, so stream identity depends only on the link, never on
// creation order.
type linkState struct {
	prof LinkProfile
	rng  *rand.Rand

	geBad bool
	// fifoFloor is the earliest arrival the next in-order delivery may
	// have; it enforces per-link FIFO when reordering is disabled.
	fifoFloor time.Time
	// maxArrival tracks the latest arrival handed out, for counting
	// actual inversions (a delivery before maxArrival overtook another).
	maxArrival time.Time
	// busyUntil serializes packets onto a bandwidth-capped link.
	busyUntil time.Time
}

func hashIP(ip string) int64 {
	h := fnv.New64a()
	h.Write([]byte(ip))
	return int64(h.Sum64())
}

// impaired reports whether any link profile is configured; false keeps
// Connect on the exact pre-impairment code path.
func (n *Network) impaired() bool {
	return n.defaultLink != nil || len(n.linkProfiles) > 0
}

// linkFor returns the impairment state of the src→dst link, or nil for
// an ideal link. States are cached (including the nil result) so the
// per-flow cost is one map lookup.
func (n *Network) linkFor(src, dst Endpoint) *linkState {
	k := linkKey{src: src.IP, dst: dst.IP}
	if st, ok := n.links[k]; ok {
		return st
	}
	p := n.defaultLink
	if lp, ok := n.linkProfiles[k]; ok {
		p = lp
	}
	var st *linkState
	if !p.IsZero() {
		seed := seedfork.Fork(n.Sim.seed, "netsim.link", hashIP(src.IP), hashIP(dst.IP))
		st = &linkState{
			prof: p.normalized(),
			rng:  rand.New(rand.NewSource(seed)),
		}
	}
	if n.links == nil {
		n.links = map[linkKey]*linkState{}
	}
	n.links[k] = st
	return st
}

// lost draws whether one transmission at time at is lost: scheduled
// outages drop everything; otherwise the Gilbert–Elliott chain (stepped
// once per transmission) or the i.i.d. rate decides.
func (lk *linkState) lost(at time.Time) bool {
	p := &lk.prof
	for i := range p.Outages {
		o := &p.Outages[i]
		if !at.Before(Epoch.Add(o.Start)) && at.Before(Epoch.Add(o.End)) {
			return true
		}
	}
	if p.GE.active() {
		if lk.geBad {
			if lk.rng.Float64() < p.GE.PBadToGood {
				lk.geBad = false
			}
		} else if lk.rng.Float64() < p.GE.PGoodToBad {
			lk.geBad = true
		}
		rate := p.GE.LossGood
		if lk.geBad {
			rate = p.GE.LossBad
		}
		return rate > 0 && lk.rng.Float64() < rate
	}
	return p.Loss > 0 && lk.rng.Float64() < p.Loss
}

// transmit models one packet of size bytes entering the link at sendAt,
// with the link's transport-level retransmission policy. It returns the
// delivery time, or (giveUpTime, false) when every attempt was lost —
// giveUpTime is when the sender's final retransmission timeout fires.
//
// A nil link is ideal: instant, lossless delivery.
func (n *Network) transmit(lk *linkState, sendAt time.Time, size int) (time.Time, bool) {
	if lk == nil {
		return sendAt, true
	}
	p := &lk.prof
	rto := p.Retry.Timeout
	for attempt := 1; ; attempt++ {
		if !lk.lost(sendAt) {
			return n.deliver(lk, sendAt, size), true
		}
		if attempt >= p.Retry.Attempts {
			return sendAt.Add(rto), false
		}
		n.mImpRetransmits.Inc()
		sendAt = sendAt.Add(rto)
		rto *= 2
	}
}

// deliver computes the arrival time of a successfully transmitted
// packet: serialization onto a bandwidth-capped link, propagation
// delay plus jitter, then the FIFO/reordering discipline.
func (n *Network) deliver(lk *linkState, sendAt time.Time, size int) time.Time {
	p := &lk.prof
	d := p.LatencyBase
	if p.Jitter > 0 {
		d += time.Duration(lk.rng.Int63n(int64(p.Jitter)))
	}
	if p.BandwidthBPS > 0 {
		txStart := sendAt
		if lk.busyUntil.After(txStart) {
			txStart = lk.busyUntil
		}
		tx := time.Duration(float64(size*8) / p.BandwidthBPS * float64(time.Second))
		lk.busyUntil = txStart.Add(tx)
		d += lk.busyUntil.Sub(sendAt)
	}
	arr := sendAt.Add(d)
	if p.ReorderProb > 0 && p.ReorderWindow > 0 && lk.rng.Float64() < p.ReorderProb {
		// Held back: the FIFO floor is not raised, so later packets on
		// this link may overtake it.
		arr = arr.Add(time.Duration(lk.rng.Int63n(int64(p.ReorderWindow))))
	} else {
		if arr.Before(lk.fifoFloor) {
			arr = lk.fifoFloor
		}
		lk.fifoFloor = arr
	}
	if arr.Before(lk.maxArrival) {
		n.mImpReorders.Inc()
	} else {
		lk.maxArrival = arr
	}
	return arr
}

// ipHeaderBytes approximates the TCP/IP overhead of a handshake or
// control segment, used to size SYN/ACK/FIN transmissions on
// bandwidth-capped links.
const ipHeaderBytes = 40

// connectImpaired resolves one flow over impaired links. Like the ideal
// path it is synchronous in virtual time: every transmission's arrival
// time is computed immediately and recorded in the flow's timestamps
// (Flow.Start is when the first payload arrived, Outcome.Elapsed is the
// client's total wait) rather than by suspending the flow on the event
// queue — preserving the Connect contract middleboxes and hosts rely
// on. fwd carries client→server segments, rev the return direction;
// either may be nil (ideal).
func (n *Network) connectImpaired(f *Flow, fwd, rev *linkState) Outcome {
	start := f.Start

	// SYN: client → server. A flow whose handshake dies is Dropped —
	// nothing ever crossed the border, so middleboxes see nothing and
	// the client (or prober) observes a failed connect.
	synAt, ok := n.transmit(fwd, start, ipHeaderBytes)
	if !ok {
		n.mImpDroppedFlows.Inc()
		return Outcome{Reaction: reaction.Timeout, Dropped: true, Elapsed: synAt.Sub(start)}
	}

	// Null routing (§6) still drops only the server→client direction:
	// the SYN arrives, nothing returns.
	if n.IsBlocked(f.Server) {
		n.flowsBlocked.Inc()
		if h, ok := n.hosts[f.Server]; ok {
			silenced := *f
			silenced.FirstPayload = nil
			h.HandleFlow(&silenced)
		}
		return Outcome{Blocked: true}
	}

	// SYN-ACK: server → client.
	ackAt, ok := n.transmit(rev, synAt, ipHeaderBytes)
	if !ok {
		n.mImpDroppedFlows.Inc()
		return Outcome{Reaction: reaction.Timeout, Dropped: true, Elapsed: ackAt.Sub(start)}
	}

	// First payload: client → server.
	payAt, ok := n.transmit(fwd, ackAt, ipHeaderBytes+len(f.FirstPayload))
	if !ok {
		n.mImpDroppedFlows.Inc()
		return Outcome{Reaction: reaction.Timeout, Dropped: true, Elapsed: payAt.Sub(start)}
	}
	f.Start = payAt

	for _, b := range n.boxes {
		b.OnFlow(f)
	}
	// Duplication re-delivers the payload segment past the middleboxes;
	// the host, deduplicating by TCP sequence number, handles it once.
	if fwd != nil && fwd.prof.Duplicate > 0 && fwd.rng.Float64() < fwd.prof.Duplicate {
		n.mImpDuplicates.Inc()
		for _, b := range n.boxes {
			b.OnFlow(f)
		}
	}

	h, hok := n.hosts[f.Server]
	var o Outcome
	if !hok {
		o = Outcome{Reaction: reaction.RST}
	} else {
		o = h.HandleFlow(f)
	}

	// Response: server → client. A lost response (after the sender's
	// retries) leaves the client staring at an open-but-silent
	// connection — indistinguishable from a timeout-profile server —
	// and the middleboxes never see the return packets.
	respAt, ok := n.transmit(rev, payAt, ipHeaderBytes+o.ResponseLen)
	if !ok {
		n.mImpDroppedResponses.Inc()
		return Outcome{Reaction: reaction.Timeout, Elapsed: respAt.Sub(start)}
	}
	o.Elapsed = respAt.Sub(start)
	for _, b := range n.boxes {
		b.OnOutcome(f, o)
	}
	return o
}
