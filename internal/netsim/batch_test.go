package netsim

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"sslab/internal/reaction"
)

// copyBox is a scalar middlebox that snapshots each flow by value —
// batch-arena flows are only valid during delivery, so retaining
// pointers (as recordingBox does for scalar tests) would be a bug here.
type copyBox struct {
	flows    []Flow
	outcomes []Outcome
}

func (b *copyBox) OnFlow(f *Flow) { b.flows = append(b.flows, *f) }
func (b *copyBox) OnOutcome(f *Flow, o Outcome) {
	b.outcomes = append(b.outcomes, o)
}

// batchBox additionally implements BatchMiddlebox, recording the run
// lengths it was handed alongside the same per-flow snapshots.
type batchBox struct {
	copyBox
	runs []int
}

func (b *batchBox) OnFlowBatch(fs []Flow) {
	b.runs = append(b.runs, len(fs))
	for i := range fs {
		b.copyBox.OnFlow(&fs[i])
	}
}

// batchEnv is one world for the equivalence tests: a network with one
// responding host, one absent endpoint, one blockable server, and both
// a scalar and a batch middlebox observing the border.
type batchEnv struct {
	sim     *Sim
	net     *Network
	scalar  *copyBox
	batch   *batchBox
	served  Endpoint
	absent  Endpoint
	blocked Endpoint
	silent  []Flow // nil-payload flows the blocked server's host saw
}

func newBatchEnv(opts ...NetworkOption) *batchEnv {
	e := &batchEnv{
		served:  Endpoint{IP: "10.0.0.1", Port: 8388},
		absent:  Endpoint{IP: "10.0.0.2", Port: 8388},
		blocked: Endpoint{IP: "10.0.0.3", Port: 8388},
	}
	e.sim = NewSim()
	e.net = NewNetwork(e.sim, opts...)
	e.net.AddHost(e.served, HostFunc(func(f *Flow) Outcome {
		return Outcome{Reaction: reaction.Data, ResponseLen: len(f.FirstPayload)}
	}))
	e.net.AddHost(e.blocked, HostFunc(func(f *Flow) Outcome {
		if f.FirstPayload == nil {
			e.silent = append(e.silent, *f)
		}
		return Outcome{Reaction: reaction.Timeout}
	}))
	e.scalar = &copyBox{}
	e.batch = &batchBox{}
	e.net.AddMiddlebox(e.scalar)
	e.net.AddMiddlebox(e.batch)
	e.net.BlockPort(e.blocked)
	return e
}

// mixedSpecs builds a spec sequence exercising every path: served,
// no-host RST, blocked (run breaker), probes, empty payloads.
func mixedSpecs(e *batchEnv) []FlowSpec {
	client := Endpoint{IP: "192.168.1.2", Port: 40000}
	gen := time.Time{}
	return []FlowSpec{
		{Client: client, Server: e.served, FirstPayload: []byte("alpha")},
		{Client: client, Server: e.served, FirstPayload: []byte("beta"), Probe: true, GeneratedAt: Epoch.Add(-time.Hour)},
		{Client: client, Server: e.blocked, FirstPayload: []byte("gamma")},
		{Client: client, Server: e.absent, FirstPayload: []byte("delta"), GeneratedAt: gen},
		{Client: client, Server: e.served, FirstPayload: nil},
		{Client: client, Server: e.served, FirstPayload: []byte("epsilon")},
		{Client: client, Server: e.blocked, FirstPayload: []byte("zeta")},
		{Client: client, Server: e.served, FirstPayload: []byte("eta")},
	}
}

func sameFlows(t *testing.T, label string, a, b []Flow) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: saw %d vs %d flows", label, len(a), len(b))
	}
	for i := range a {
		fa, fb := a[i], b[i]
		same := fa.ID == fb.ID && fa.Client == fb.Client && fa.Server == fb.Server &&
			bytes.Equal(fa.FirstPayload, fb.FirstPayload) &&
			fa.Start.Equal(fb.Start) && fa.Probe == fb.Probe &&
			fa.GeneratedAt.Equal(fb.GeneratedAt)
		if !same {
			t.Fatalf("%s: flow %d diverges:\n  scalar %+v\n  batch  %+v", label, i, fa, fb)
		}
	}
}

// TestConnectBatchMatchesConnect pins the core contract: ConnectBatch
// over a mixed spec sequence — served, probe, blocked, absent-host,
// empty-payload — is observably identical to the same Connect calls in
// order: same outcomes, same flow IDs and counters, same middlebox
// observations (for both scalar-only and batch-capable middleboxes),
// and the same silenced host deliveries for blocked servers.
func TestConnectBatchMatchesConnect(t *testing.T) {
	ref := newBatchEnv()
	refSpecs := mixedSpecs(ref)
	var want []Outcome
	for _, sp := range refSpecs {
		want = append(want, ref.net.Connect(sp.Client, sp.Server, sp.FirstPayload, sp.Probe, sp.GeneratedAt))
	}

	e := newBatchEnv()
	got := e.net.ConnectBatch(mixedSpecs(e), nil)

	if len(got) != len(want) {
		t.Fatalf("outcomes: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("outcome %d: batch %+v, scalar %+v", i, got[i], want[i])
		}
	}
	if e.net.Flows != ref.net.Flows || e.net.nextID != ref.net.nextID {
		t.Errorf("counters: batch Flows=%d nextID=%d, scalar Flows=%d nextID=%d",
			e.net.Flows, e.net.nextID, ref.net.Flows, ref.net.nextID)
	}
	sameFlows(t, "scalar middlebox", ref.scalar.flows, e.scalar.flows)
	sameFlows(t, "batch middlebox", ref.batch.flows, e.batch.flows)
	sameFlows(t, "silenced host flows", ref.silent, e.silent)
	if len(e.scalar.outcomes) != len(ref.scalar.outcomes) {
		t.Errorf("OnOutcome calls: %d vs %d", len(e.scalar.outcomes), len(ref.scalar.outcomes))
	}
	// The blocked flows at positions 2 and 6 break runs: [0,1] [3,4,5] [7].
	wantRuns := []int{2, 3, 1}
	if len(e.batch.runs) != len(wantRuns) {
		t.Fatalf("batch runs = %v, want %v", e.batch.runs, wantRuns)
	}
	for i, r := range wantRuns {
		if e.batch.runs[i] != r {
			t.Fatalf("batch runs = %v, want %v", e.batch.runs, wantRuns)
		}
	}
}

// TestConnectBatchImpairedEquivalence: over impaired links every flow
// falls back to the scalar path, in order, so batch and scalar draw the
// identical per-link RNG sequence and produce identical outcomes.
func TestConnectBatchImpairedEquivalence(t *testing.T) {
	profile := LinkProfile{LatencyBase: 30 * time.Millisecond, Jitter: 20 * time.Millisecond, Loss: 0.2}
	mk := func() (*batchEnv, []FlowSpec) {
		e := newBatchEnv(WithDefaultLink(profile))
		var specs []FlowSpec
		client := Endpoint{IP: "192.168.1.2", Port: 40000}
		for i := 0; i < 200; i++ {
			specs = append(specs, FlowSpec{Client: client, Server: e.served,
				FirstPayload: []byte(fmt.Sprintf("payload-%03d", i))})
		}
		return e, specs
	}

	ref, refSpecs := mk()
	var want []Outcome
	for _, sp := range refSpecs {
		want = append(want, ref.net.Connect(sp.Client, sp.Server, sp.FirstPayload, sp.Probe, sp.GeneratedAt))
	}
	e, specs := mk()
	got := e.net.ConnectBatch(specs, nil)
	if len(got) != len(want) {
		t.Fatalf("outcomes: %d vs %d", len(got), len(want))
	}
	dropped := 0
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("outcome %d: batch %+v, scalar %+v", i, got[i], want[i])
		}
		if got[i].Dropped {
			dropped++
		}
	}
	if dropped == 0 {
		t.Error("20% loss never dropped a flow; impaired path untested")
	}
	sameFlows(t, "impaired middlebox", ref.scalar.flows, e.scalar.flows)
}

// TestConnectBatchReusesArena: after warm-up, a steady-state batch over
// ideal links performs zero allocations — the Flow arena and the
// caller's outcome buffer are both reused.
func TestConnectBatchReusesArena(t *testing.T) {
	e := newBatchEnv()
	client := Endpoint{IP: "192.168.1.2", Port: 40000}
	payload := []byte("steady-state-payload")
	specs := make([]FlowSpec, 64)
	for i := range specs {
		specs[i] = FlowSpec{Client: client, Server: e.served, FirstPayload: payload}
	}
	// Warm the arena, the outcome buffer, and the middlebox slices.
	outs := e.net.ConnectBatch(specs, nil)
	for i := 0; i < 8; i++ {
		e.scalar.flows, e.scalar.outcomes = e.scalar.flows[:0], e.scalar.outcomes[:0]
		e.batch.flows, e.batch.outcomes, e.batch.runs = e.batch.flows[:0], e.batch.outcomes[:0], e.batch.runs[:0]
		outs = e.net.ConnectBatch(specs, outs[:0])
	}
	allocs := testing.AllocsPerRun(100, func() {
		e.scalar.flows, e.scalar.outcomes = e.scalar.flows[:0], e.scalar.outcomes[:0]
		e.batch.flows, e.batch.outcomes, e.batch.runs = e.batch.flows[:0], e.batch.outcomes[:0], e.batch.runs[:0]
		outs = e.net.ConnectBatch(specs, outs[:0])
	})
	if allocs != 0 {
		t.Errorf("steady-state ConnectBatch allocates %.1f/op, want 0", allocs)
	}
	if len(outs) != len(specs) {
		t.Fatalf("outcomes %d, want %d", len(outs), len(specs))
	}
}

// TestConnectBatchEmpty: a zero-length batch is a no-op.
func TestConnectBatchEmpty(t *testing.T) {
	e := newBatchEnv()
	if out := e.net.ConnectBatch(nil, nil); len(out) != 0 {
		t.Fatalf("empty batch produced %d outcomes", len(out))
	}
	if e.net.Flows != 0 {
		t.Fatalf("empty batch counted %d flows", e.net.Flows)
	}
}
