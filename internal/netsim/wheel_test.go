package netsim

import (
	"math/rand"
	"testing"
	"time"

	"sslab/internal/seedfork"
)

// fireLog records dispatches as (virtual time, id) pairs.
type fireLog struct {
	sim *Sim
	got []fireRec
}

type fireRec struct {
	at time.Time
	id int
}

type fireArg struct {
	log *fireLog
	id  int
}

func runFire(x any) {
	a := x.(*fireArg)
	a.log.got = append(a.log.got, fireRec{at: a.log.sim.Now(), id: a.id})
}

// TestWheelMatchesHeap schedules the same randomized timeline — unique
// times spanning all three wheel levels plus the direct paths — through
// a Wheel in one sim and directly onto the heap in another, and
// requires identical dispatch sequences. The wheel's contract is that
// it is behaviorally indistinguishable from the heap.
func TestWheelMatchesHeap(t *testing.T) {
	const n = 5000
	rng := rand.New(rand.NewSource(42))
	offsets := make([]time.Duration, n)
	for i := range offsets {
		var span time.Duration
		switch i % 4 {
		case 0: // level 0: under 256s
			span = 250 * time.Second
		case 1: // level 1: under ~18h
			span = 17 * time.Hour
		case 2: // level 2: days
			span = 40 * 24 * time.Hour
		default: // overflow: beyond the top level's span
			span = 300 * 24 * time.Hour
		}
		// Unique sub-second components make the total order unambiguous.
		offsets[i] = time.Duration(rng.Int63n(int64(span))) + time.Duration(i)*time.Nanosecond
	}

	runTimeline := func(useWheel bool) []fireRec {
		sim := NewSim()
		log := &fireLog{sim: sim}
		wheel := NewWheel(sim)
		args := make([]fireArg, n)
		for i, off := range offsets {
			args[i] = fireArg{log: log, id: i}
			if useWheel {
				wheel.Schedule(Epoch.Add(off), runFire, &args[i])
			} else {
				sim.AtCall(Epoch.Add(off), runFire, &args[i])
			}
		}
		sim.Run()
		return log.got
	}

	heap := runTimeline(false)
	viaWheel := runTimeline(true)
	if len(heap) != n || len(viaWheel) != n {
		t.Fatalf("dispatched %d (heap) / %d (wheel) events, want %d", len(heap), len(viaWheel), n)
	}
	for i := range heap {
		if heap[i] != viaWheel[i] {
			t.Fatalf("dispatch %d: heap fired (%v, id %d), wheel fired (%v, id %d)",
				i, heap[i].at, heap[i].id, viaWheel[i].at, viaWheel[i].id)
		}
	}
}

// TestWheelExactTimes verifies parking in coarse slots never quantizes
// delivery: each callback runs at precisely its Schedule time.
func TestWheelExactTimes(t *testing.T) {
	sim := NewSim()
	w := NewWheel(sim)
	log := &fireLog{sim: sim}
	offsets := []time.Duration{
		1500 * time.Millisecond,
		90*time.Second + 123*time.Millisecond,
		3*time.Hour + 7*time.Nanosecond,
		20*24*time.Hour + time.Microsecond,
	}
	args := make([]fireArg, len(offsets))
	for i, off := range offsets {
		args[i] = fireArg{log: log, id: i}
		w.Schedule(Epoch.Add(off), runFire, &args[i])
	}
	sim.Run()
	if len(log.got) != len(offsets) {
		t.Fatalf("fired %d, want %d", len(log.got), len(offsets))
	}
	for i, off := range offsets {
		if !log.got[i].at.Equal(Epoch.Add(off)) {
			t.Errorf("event %d fired at %v, want %v", i, log.got[i].at, Epoch.Add(off))
		}
	}
}

// TestWheelEqualTimeOrder pins the tie-break contract: entries with
// equal target times dispatch in Schedule order, even when they reach
// level 0 through different levels (one parked far ahead and cascaded,
// one scheduled late directly into level 0).
func TestWheelEqualTimeOrder(t *testing.T) {
	sim := NewSim()
	w := NewWheel(sim)
	log := &fireLog{sim: sim}
	target := Epoch.Add(2*time.Hour + 300*time.Millisecond)

	args := make([]fireArg, 4)
	for i := range args {
		args[i] = fireArg{log: log, id: i}
	}
	// 0 and 1 park in level 1 and cascade; then a hop to t-30s makes 2
	// and 3 level-0 placements for the same instant.
	w.Schedule(target, runFire, &args[0])
	w.Schedule(target, runFire, &args[1])
	hop := target.Add(-30 * time.Second)
	sim.At(hop, func() {
		w.Schedule(target, runFire, &args[2])
		w.Schedule(target, runFire, &args[3])
	})
	sim.Run()
	for i := range args {
		if log.got[i].id != i {
			t.Fatalf("dispatch order %v, want Schedule order 0,1,2,3", log.got)
		}
	}
}

// chainState is a self-rescheduling timer chain: each firing draws its
// next gap from a private deterministic stream, mimicking the fleet's
// per-user wake-up pattern.
type chainState struct {
	log   *fireLog
	sched func(at time.Time, call func(any), arg any)
	rng   *rand.Rand
	id    int
	left  int
}

func runChain(x any) {
	c := x.(*chainState)
	c.log.got = append(c.log.got, fireRec{at: c.log.sim.Now(), id: c.id})
	if c.left == 0 {
		return
	}
	c.left--
	gap := time.Duration(c.rng.Int63n(int64(40*time.Minute))) + time.Duration(c.id+1)*time.Nanosecond
	c.sched(c.log.sim.Now().Add(gap), runChain, c)
}

// TestWheelSelfRescheduling compares wheel and heap under the workload
// the wheel exists for: many concurrent chains rescheduling themselves
// from inside their own callbacks.
func TestWheelSelfRescheduling(t *testing.T) {
	const chains, hops = 60, 50
	run := func(useWheel bool) []fireRec {
		sim := NewSim()
		log := &fireLog{sim: sim}
		w := NewWheel(sim)
		sched := sim.AtCall
		if useWheel {
			sched = w.Schedule
		}
		states := make([]chainState, chains)
		for i := range states {
			states[i] = chainState{
				log: log, sched: sched, id: i, left: hops,
				rng: rand.New(rand.NewSource(seedfork.Fork(1000, "wheel.chain", int64(i)))),
			}
			sched(Epoch.Add(time.Duration(i)*time.Second), runChain, &states[i])
		}
		sim.Run()
		return log.got
	}
	heap := run(false)
	viaWheel := run(true)
	if len(heap) != len(viaWheel) {
		t.Fatalf("heap fired %d, wheel fired %d", len(heap), len(viaWheel))
	}
	for i := range heap {
		if heap[i] != viaWheel[i] {
			t.Fatalf("dispatch %d diverged: heap (%v, %d), wheel (%v, %d)",
				i, heap[i].at, heap[i].id, viaWheel[i].at, viaWheel[i].id)
		}
	}
}

// TestWheelRunUntil verifies entries beyond a RunUntil horizon stay
// parked and fire on a later resume.
func TestWheelRunUntil(t *testing.T) {
	sim := NewSim()
	w := NewWheel(sim)
	log := &fireLog{sim: sim}
	args := []fireArg{{log, 0}, {log, 1}}
	w.Schedule(Epoch.Add(time.Hour), runFire, &args[0])
	w.Schedule(Epoch.Add(48*time.Hour), runFire, &args[1])

	sim.RunUntil(Epoch.Add(24 * time.Hour))
	if len(log.got) != 1 || log.got[0].id != 0 {
		t.Fatalf("after RunUntil(24h): fired %v, want only id 0", log.got)
	}
	if w.Len() != 1 {
		t.Fatalf("wheel holds %d entries, want 1", w.Len())
	}
	sim.Run()
	if len(log.got) != 2 || log.got[1].id != 1 {
		t.Fatalf("after Run: fired %v, want ids 0,1", log.got)
	}
}

// TestWheelPastSchedules go straight to the heap, clamped like Sim.At.
func TestWheelPastSchedules(t *testing.T) {
	sim := NewSim()
	w := NewWheel(sim)
	sim.RunUntil(Epoch.Add(time.Hour))
	log := &fireLog{sim: sim}
	a := fireArg{log, 7}
	w.Schedule(Epoch.Add(time.Minute), runFire, &a) // already past
	sim.Run()
	if len(log.got) != 1 || !log.got[0].at.Equal(Epoch.Add(time.Hour)) {
		t.Fatalf("past schedule fired %v, want clamped to now", log.got)
	}
	if w.Len() != 0 {
		t.Fatalf("wheel holds %d entries, want 0", w.Len())
	}
}
