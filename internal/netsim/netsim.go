// Package netsim is a deterministic discrete-event network simulator at
// flow granularity. It provides the substrate on which the paper's
// measurement experiments are re-run: hosts exchange connections carrying
// a first data payload, middleboxes on the path (the GFW) observe flows
// and their outcomes, and directional null-routing implements the blocking
// behaviour of §6 (dropping only the server-to-client direction).
//
// A virtual clock makes four-month experiments run in milliseconds and
// bit-for-bit reproducibly: all randomness is seeded and all event
// ordering is total (time, then insertion sequence).
//
// The event loop is the innermost hot path of every experiment, so it is
// allocation-free in steady state: events live by value in a hand-rolled
// binary heap (no per-event boxing), and the AtCall/AfterCall variants
// let schedulers with a long-lived callback avoid per-event closures.
// Each Sim owns a metrics.Registry (see internal/metrics) that counts
// scheduled/dispatched events and attempted/blocked flows; all counts
// are driven by virtual time only, so snapshots are deterministic.
package netsim

import (
	"fmt"
	"time"

	"sslab/internal/metrics"
	"sslab/internal/reaction"
)

// Epoch is the simulation start time — the first day of the paper's
// Shadowsocks experiment.
var Epoch = time.Date(2019, 9, 29, 0, 0, 0, 0, time.UTC)

// event is one scheduled callback. Exactly one of fn and call is set:
// fn is the closure form, call+arg the closure-free form (AtCall).
type event struct {
	at   time.Time
	seq  uint64
	fn   func()
	call func(any)
	arg  any
}

// before is the total event order: time, then insertion sequence.
func (e *event) before(o *event) bool {
	if !e.at.Equal(o.at) {
		return e.at.Before(o.at)
	}
	return e.seq < o.seq
}

// Sim is the discrete-event scheduler with a virtual clock.
type Sim struct {
	now time.Time
	pq  []event // binary min-heap by (at, seq), events by value
	seq uint64

	// Metrics is the sim-owned registry; Network and middleboxes attach
	// their instruments to it so one snapshot covers the whole substrate.
	Metrics *metrics.Registry

	scheduled  *metrics.Counter
	dispatched *metrics.Counter
	heapPeak   *metrics.Gauge
}

// NewSim returns a simulator starting at Epoch.
func NewSim() *Sim {
	m := metrics.New()
	return &Sim{
		now:        Epoch,
		Metrics:    m,
		scheduled:  m.Counter("sim.events_scheduled"),
		dispatched: m.Counter("sim.events_dispatched"),
		heapPeak:   m.Gauge("sim.event_heap_peak"),
	}
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Time { return s.now }

// At schedules fn at absolute time t (clamped to now if in the past).
func (s *Sim) At(t time.Time, fn func()) {
	s.push(event{at: t, fn: fn})
}

// After schedules fn d from now.
func (s *Sim) After(d time.Duration, fn func()) { s.At(s.now.Add(d), fn) }

// AtCall schedules call(arg) at absolute time t (clamped to now if in
// the past). It is the closure-free form of At: a scheduler that reuses
// one long-lived call function and threads per-event state through arg
// (a pointer, to stay boxing-free) schedules without allocating.
func (s *Sim) AtCall(t time.Time, call func(any), arg any) {
	s.push(event{at: t, call: call, arg: arg})
}

// AfterCall schedules call(arg) d from now without allocating a closure.
func (s *Sim) AfterCall(d time.Duration, call func(any), arg any) {
	s.AtCall(s.now.Add(d), call, arg)
}

// push inserts e into the heap with the next sequence number.
func (s *Sim) push(e event) {
	if e.at.Before(s.now) {
		e.at = s.now
	}
	s.seq++
	e.seq = s.seq
	s.pq = append(s.pq, e)
	s.siftUp(len(s.pq) - 1)
	s.scheduled.Inc()
	s.heapPeak.Max(int64(len(s.pq)))
}

// pop removes and returns the earliest event. len(s.pq) must be > 0.
func (s *Sim) pop() event {
	top := s.pq[0]
	n := len(s.pq) - 1
	s.pq[0] = s.pq[n]
	s.pq[n] = event{} // drop fn/arg references so they can be collected
	s.pq = s.pq[:n]
	if n > 0 {
		s.siftDown(0)
	}
	return top
}

func (s *Sim) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !s.pq[i].before(&s.pq[parent]) {
			return
		}
		s.pq[i], s.pq[parent] = s.pq[parent], s.pq[i]
		i = parent
	}
}

func (s *Sim) siftDown(i int) {
	n := len(s.pq)
	for {
		least := i
		if l := 2*i + 1; l < n && s.pq[l].before(&s.pq[least]) {
			least = l
		}
		if r := 2*i + 2; r < n && s.pq[r].before(&s.pq[least]) {
			least = r
		}
		if least == i {
			return
		}
		s.pq[i], s.pq[least] = s.pq[least], s.pq[i]
		i = least
	}
}

// dispatch advances the clock to e.at and runs its callback.
func (s *Sim) dispatch(e *event) {
	s.now = e.at
	s.dispatched.Inc()
	if e.call != nil {
		e.call(e.arg)
		return
	}
	e.fn()
}

// Run processes events until the queue is empty.
func (s *Sim) Run() {
	for len(s.pq) > 0 {
		e := s.pop()
		s.dispatch(&e)
	}
}

// RunUntil processes events with at <= t, then advances the clock to t.
func (s *Sim) RunUntil(t time.Time) {
	for len(s.pq) > 0 && !s.pq[0].at.After(t) {
		e := s.pop()
		s.dispatch(&e)
	}
	if s.now.Before(t) {
		s.now = t
	}
}

// Pending returns the number of queued events.
func (s *Sim) Pending() int { return len(s.pq) }

// Endpoint is an IP:port pair in the simulated network.
type Endpoint struct {
	IP   string
	Port int
}

func (e Endpoint) String() string { return fmt.Sprintf("%s:%d", e.IP, e.Port) }

// Flow is one TCP connection, reduced to what the GFW's detector sees:
// endpoints, direction, and the first data-carrying packet from the client.
type Flow struct {
	ID     uint64
	Client Endpoint
	Server Endpoint
	// FirstPayload is the client's first data packet (after TCP handshake).
	FirstPayload []byte
	// Start is when the flow's first payload crossed the wire.
	Start time.Time
	// Probe marks flows originated by the censor's probers (middleboxes
	// do not re-analyze their own probes).
	Probe bool
	// GeneratedAt is when the payload content was created (for replays of
	// recorded content this is the recording time, used by timestamp-
	// based replay defenses).
	GeneratedAt time.Time
}

// Outcome is the server's observable response to a flow.
type Outcome struct {
	Reaction reaction.Reaction
	// ResponseLen is the number of bytes the server sent back (Reaction ==
	// Data).
	ResponseLen int
	// Blocked means the flow never completed because a null-routing rule
	// dropped the server-to-client direction.
	Blocked bool
}

// Host handles inbound flows.
type Host interface {
	HandleFlow(f *Flow) Outcome
}

// HostFunc adapts a function to the Host interface.
type HostFunc func(f *Flow) Outcome

// HandleFlow implements Host.
func (fn HostFunc) HandleFlow(f *Flow) Outcome { return fn(f) }

// Middlebox observes flows crossing the border — the GFW's position.
type Middlebox interface {
	// OnFlow sees every border-crossing flow with its first payload.
	OnFlow(f *Flow)
	// OnOutcome sees the server's reaction on the return path (unless the
	// return path is blocked).
	OnOutcome(f *Flow, o Outcome)
}

// Network ties hosts, middleboxes and blocking rules together.
type Network struct {
	Sim *Sim

	hosts  map[Endpoint]Host
	boxes  []Middlebox
	nextID uint64

	// Null routing drops the server->client direction, per IP (all
	// ports) or per endpoint (§6: "block by port, or by IP address?").
	// The stored value is the generation of the active rule: Unblock*If
	// only clears a rule installed by the matching Block* call, so a
	// stale scheduled unblock cannot clear a newer block (two servers
	// sharing an IP, or a re-block racing a pending unblock).
	blockedIP   map[string]uint64
	blockedPort map[Endpoint]uint64
	blockGen    uint64

	// Flows counts all attempted flows (including blocked ones).
	Flows int

	flowsTotal   *metrics.Counter
	flowsBlocked *metrics.Counter
	probeFlows   *metrics.Counter
}

// NewNetwork creates an empty network on sim.
func NewNetwork(sim *Sim) *Network {
	return &Network{
		Sim:          sim,
		hosts:        map[Endpoint]Host{},
		blockedIP:    map[string]uint64{},
		blockedPort:  map[Endpoint]uint64{},
		flowsTotal:   sim.Metrics.Counter("net.flows_total"),
		flowsBlocked: sim.Metrics.Counter("net.flows_blocked"),
		probeFlows:   sim.Metrics.Counter("net.flows_probe"),
	}
}

// AddHost binds a host to an endpoint.
func (n *Network) AddHost(ep Endpoint, h Host) { n.hosts[ep] = h }

// AddMiddlebox appends a middlebox to the border path.
func (n *Network) AddMiddlebox(m Middlebox) { n.boxes = append(n.boxes, m) }

// BlockIP null-routes the server->client direction for every port of ip
// and returns the rule's generation for UnblockIPIf.
func (n *Network) BlockIP(ip string) uint64 {
	n.blockGen++
	n.blockedIP[ip] = n.blockGen
	return n.blockGen
}

// BlockPort null-routes the server->client direction for one endpoint
// and returns the rule's generation for UnblockPortIf.
func (n *Network) BlockPort(ep Endpoint) uint64 {
	n.blockGen++
	n.blockedPort[ep] = n.blockGen
	return n.blockGen
}

// Unblock unconditionally removes both kinds of rules for the endpoint.
// Schedulers that may race a newer block should prefer the generation-
// checked UnblockIPIf/UnblockPortIf.
func (n *Network) Unblock(ep Endpoint) {
	delete(n.blockedIP, ep.IP)
	delete(n.blockedPort, ep)
}

// UnblockIPIf removes the IP rule only if it is still the one installed
// by the BlockIP call that returned gen. It reports whether a rule was
// removed.
func (n *Network) UnblockIPIf(ip string, gen uint64) bool {
	if n.blockedIP[ip] != gen {
		return false
	}
	delete(n.blockedIP, ip)
	return true
}

// UnblockPortIf removes the endpoint rule only if it is still the one
// installed by the BlockPort call that returned gen. It reports whether
// a rule was removed.
func (n *Network) UnblockPortIf(ep Endpoint, gen uint64) bool {
	if n.blockedPort[ep] != gen {
		return false
	}
	delete(n.blockedPort, ep)
	return true
}

// IsBlocked reports whether the endpoint's return direction is dropped.
func (n *Network) IsBlocked(ep Endpoint) bool {
	return n.blockedIP[ep.IP] != 0 || n.blockedPort[ep] != 0
}

// Connect performs one flow: client connects to server and sends
// firstPayload as its first data packet. Middleboxes observe the flow and
// its outcome. The call is synchronous in virtual time.
//
// generatedAt records when the payload content was originally created;
// pass the zero time for "now" (fresh content).
func (n *Network) Connect(client, server Endpoint, firstPayload []byte, probe bool, generatedAt time.Time) Outcome {
	n.Flows++
	n.nextID++
	n.flowsTotal.Inc()
	if probe {
		n.probeFlows.Inc()
	}
	if generatedAt.IsZero() {
		generatedAt = n.Sim.Now()
	}
	f := &Flow{
		ID:           n.nextID,
		Client:       client,
		Server:       server,
		FirstPayload: firstPayload,
		Start:        n.Sim.Now(),
		Probe:        probe,
		GeneratedAt:  generatedAt,
	}
	// Null routing drops only the server->client direction (§6): the
	// client's SYN still reaches the server, which may even accept and
	// respond, but nothing comes back. From the client's (and a probing
	// censor's) point of view the connection never completes, and because
	// the handshake fails the client never sends its payload — so the
	// middleboxes see nothing and the host sees a flow with no data.
	if n.IsBlocked(server) {
		n.flowsBlocked.Inc()
		if h, ok := n.hosts[server]; ok {
			silenced := *f
			silenced.FirstPayload = nil
			h.HandleFlow(&silenced)
		}
		return Outcome{Blocked: true}
	}
	for _, b := range n.boxes {
		b.OnFlow(f)
	}
	h, ok := n.hosts[server]
	if !ok {
		// Connection refused by the network: no host. The censor can
		// observe this too.
		o := Outcome{Reaction: reaction.RST}
		for _, b := range n.boxes {
			b.OnOutcome(f, o)
		}
		return o
	}
	o := h.HandleFlow(f)
	for _, b := range n.boxes {
		b.OnOutcome(f, o)
	}
	return o
}
