// Package netsim is a deterministic discrete-event network simulator at
// flow granularity. It provides the substrate on which the paper's
// measurement experiments are re-run: hosts exchange connections carrying
// a first data payload, middleboxes on the path (the GFW) observe flows
// and their outcomes, and directional null-routing implements the blocking
// behaviour of §6 (dropping only the server-to-client direction).
//
// A virtual clock makes four-month experiments run in milliseconds and
// bit-for-bit reproducibly: all randomness is seeded and all event
// ordering is total (time, then insertion sequence).
//
// The event loop is the innermost hot path of every experiment, so it is
// allocation-free in steady state: events live by value in a hand-rolled
// binary heap (no per-event boxing), and the AtCall/AfterCall variants
// let schedulers with a long-lived callback avoid per-event closures.
// Each Sim owns a metrics.Registry (see internal/metrics) that counts
// scheduled/dispatched events and attempted/blocked flows; all counts
// are driven by virtual time only, so snapshots are deterministic.
package netsim

import (
	"fmt"
	"time"

	"sslab/internal/metrics"
	"sslab/internal/reaction"
)

// Epoch is the simulation start time — the first day of the paper's
// Shadowsocks experiment.
var Epoch = time.Date(2019, 9, 29, 0, 0, 0, 0, time.UTC)

// event is one scheduled callback. Exactly one of fn and call is set:
// fn is the closure form, call+arg the closure-free form (AtCall).
type event struct {
	at   time.Time
	seq  uint64
	fn   func()
	call func(any)
	arg  any
}

// before is the total event order: time, then insertion sequence.
func (e *event) before(o *event) bool {
	if !e.at.Equal(o.at) {
		return e.at.Before(o.at)
	}
	return e.seq < o.seq
}

// Sim is the discrete-event scheduler with a virtual clock.
type Sim struct {
	now time.Time
	pq  []event // binary min-heap by (at, seq), events by value
	seq uint64

	// seed is the root of the simulator's own randomness (link
	// impairment streams); component models (GFW, traffic generators)
	// carry their own seeds. Set with WithSeed.
	seed int64

	// Metrics is the sim-owned registry; Network and middleboxes attach
	// their instruments to it so one snapshot covers the whole substrate.
	Metrics *metrics.Registry
	// metricsSet records that WithMetrics was applied (possibly with
	// nil, which deliberately disables instrumentation).
	metricsSet bool

	scheduled  *metrics.Counter
	dispatched *metrics.Counter
	heapPeak   *metrics.Gauge
}

// Option configures a Sim at construction (see NewSim).
type Option func(*Sim)

// WithSeed sets the simulator's root seed; per-link impairment streams
// are forked from it via seedfork, so equal seeds give bit-identical
// impairment decisions. The default seed is 0.
func WithSeed(seed int64) Option {
	return func(s *Sim) { s.seed = seed }
}

// WithMetrics substitutes the simulator's metrics registry. Passing nil
// is valid and turns every instrument into a no-op (internal/metrics is
// nil-safe), which removes even the counter increments from the hot
// path. The default is a fresh registry.
func WithMetrics(m *metrics.Registry) Option {
	return func(s *Sim) { s.Metrics, s.metricsSet = m, true }
}

// NewSim returns a simulator starting at Epoch. With no options it is
// identical to the historical zero-argument constructor.
func NewSim(opts ...Option) *Sim {
	s := &Sim{now: Epoch}
	for _, o := range opts {
		o(s)
	}
	if s.Metrics == nil && !s.metricsSet {
		s.Metrics = metrics.New()
	}
	s.scheduled = s.Metrics.Counter("sim.events_scheduled")
	s.dispatched = s.Metrics.Counter("sim.events_dispatched")
	s.heapPeak = s.Metrics.Gauge("sim.event_heap_peak")
	return s
}

// Seed returns the simulator's root seed (see WithSeed).
func (s *Sim) Seed() int64 { return s.seed }

// Now returns the current virtual time.
func (s *Sim) Now() time.Time { return s.now }

// At schedules fn at absolute time t (clamped to now if in the past).
func (s *Sim) At(t time.Time, fn func()) {
	s.push(event{at: t, fn: fn})
}

// After schedules fn d from now.
func (s *Sim) After(d time.Duration, fn func()) { s.At(s.now.Add(d), fn) }

// AtCall schedules call(arg) at absolute time t (clamped to now if in
// the past). It is the closure-free form of At: a scheduler that reuses
// one long-lived call function and threads per-event state through arg
// (a pointer, to stay boxing-free) schedules without allocating.
func (s *Sim) AtCall(t time.Time, call func(any), arg any) {
	s.push(event{at: t, call: call, arg: arg})
}

// AfterCall schedules call(arg) d from now without allocating a closure.
func (s *Sim) AfterCall(d time.Duration, call func(any), arg any) {
	s.AtCall(s.now.Add(d), call, arg)
}

// push inserts e into the heap with the next sequence number.
//
//sslab:hotpath
func (s *Sim) push(e event) {
	if e.at.Before(s.now) {
		e.at = s.now
	}
	s.seq++
	e.seq = s.seq
	s.pq = append(s.pq, e) //sslab:allow-hotpath amortized heap growth; the backing array is retained across pops and stops growing at steady state
	s.siftUp(len(s.pq) - 1)
	s.scheduled.Inc()
	s.heapPeak.Max(int64(len(s.pq)))
}

// pop removes and returns the earliest event. len(s.pq) must be > 0.
//
//sslab:hotpath
func (s *Sim) pop() event {
	top := s.pq[0]
	n := len(s.pq) - 1
	s.pq[0] = s.pq[n]
	s.pq[n] = event{} // drop fn/arg references so they can be collected
	s.pq = s.pq[:n]
	if n > 0 {
		s.siftDown(0)
	}
	return top
}

func (s *Sim) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !s.pq[i].before(&s.pq[parent]) {
			return
		}
		s.pq[i], s.pq[parent] = s.pq[parent], s.pq[i]
		i = parent
	}
}

func (s *Sim) siftDown(i int) {
	n := len(s.pq)
	for {
		least := i
		if l := 2*i + 1; l < n && s.pq[l].before(&s.pq[least]) {
			least = l
		}
		if r := 2*i + 2; r < n && s.pq[r].before(&s.pq[least]) {
			least = r
		}
		if least == i {
			return
		}
		s.pq[i], s.pq[least] = s.pq[least], s.pq[i]
		i = least
	}
}

// dispatch advances the clock to e.at and runs its callback.
//
//sslab:hotpath
func (s *Sim) dispatch(e *event) {
	s.now = e.at
	s.dispatched.Inc()
	if e.call != nil {
		e.call(e.arg)
		return
	}
	e.fn()
}

// Run processes events until the queue is empty.
func (s *Sim) Run() {
	for len(s.pq) > 0 {
		e := s.pop()
		s.dispatch(&e)
	}
}

// RunUntil processes events with at <= t, then advances the clock to t.
func (s *Sim) RunUntil(t time.Time) {
	for len(s.pq) > 0 && !s.pq[0].at.After(t) {
		e := s.pop()
		s.dispatch(&e)
	}
	if s.now.Before(t) {
		s.now = t
	}
}

// Pending returns the number of queued events.
func (s *Sim) Pending() int { return len(s.pq) }

// Endpoint is an IP:port pair in the simulated network.
type Endpoint struct {
	IP   string
	Port int
}

func (e Endpoint) String() string { return fmt.Sprintf("%s:%d", e.IP, e.Port) }

// Flow is one TCP connection, reduced to what the GFW's detector sees:
// endpoints, direction, and the first data-carrying packet from the client.
type Flow struct {
	ID     uint64
	Client Endpoint
	Server Endpoint
	// FirstPayload is the client's first data packet (after TCP handshake).
	FirstPayload []byte
	// Start is when the flow's first payload crossed the wire.
	Start time.Time
	// Probe marks flows originated by the censor's probers (middleboxes
	// do not re-analyze their own probes).
	Probe bool
	// GeneratedAt is when the payload content was created (for replays of
	// recorded content this is the recording time, used by timestamp-
	// based replay defenses).
	GeneratedAt time.Time
}

// Outcome is the server's observable response to a flow.
type Outcome struct {
	Reaction reaction.Reaction
	// ResponseLen is the number of bytes the server sent back (Reaction ==
	// Data).
	ResponseLen int
	// Blocked means the flow never completed because a null-routing rule
	// dropped the server-to-client direction.
	Blocked bool
	// Dropped means an impaired link lost the flow before the first
	// payload was delivered (connect failure, not a server reaction);
	// probers may retry such flows. Always false on ideal links.
	Dropped bool `json:"Dropped,omitempty"`
	// Elapsed is the client's wait from initiating the flow to observing
	// the outcome, under the links' impairment profiles. Zero on ideal
	// links (delivery is instant).
	Elapsed time.Duration `json:"Elapsed,omitempty"`
}

// Host handles inbound flows.
type Host interface {
	HandleFlow(f *Flow) Outcome
}

// HostFunc adapts a function to the Host interface.
type HostFunc func(f *Flow) Outcome

// HandleFlow implements Host.
func (fn HostFunc) HandleFlow(f *Flow) Outcome { return fn(f) }

// Middlebox observes flows crossing the border — the GFW's position.
type Middlebox interface {
	// OnFlow sees every border-crossing flow with its first payload.
	OnFlow(f *Flow)
	// OnOutcome sees the server's reaction on the return path (unless the
	// return path is blocked).
	OnOutcome(f *Flow, o Outcome)
}

// BatchMiddlebox is a Middlebox that also accepts runs of flows in one
// call — the censor-side half of ConnectBatch. OnFlowBatch(fs) must be
// observationally identical to calling OnFlow(&fs[i]) for i in order;
// the flows are backed by the network's reused batch arena and are
// valid only for the duration of the call (copy anything retained).
type BatchMiddlebox interface {
	Middlebox
	OnFlowBatch(fs []Flow)
}

// FlowSpec describes one flow to ConnectBatch — the same parameters as
// a Connect call, as data.
type FlowSpec struct {
	Client       Endpoint
	Server       Endpoint
	FirstPayload []byte
	Probe        bool
	// GeneratedAt records when the payload content was originally
	// created; the zero time means "now" (fresh content).
	GeneratedAt time.Time
}

// Network ties hosts, middleboxes and blocking rules together.
type Network struct {
	Sim *Sim

	hosts map[Endpoint]Host
	boxes []Middlebox
	// batchBoxes is boxes with each element down-asserted to
	// BatchMiddlebox (nil where the box is scalar-only), precomputed in
	// AddMiddlebox so ConnectBatch does no per-flow type assertions.
	batchBoxes []BatchMiddlebox
	nextID     uint64

	// flowBuf is the arena backing ConnectBatch's flows: reused across
	// calls, so batched ingestion allocates nothing in steady state.
	// Flows handed to middleboxes and hosts during a batch are
	// sub-slices of it and are valid only until the call returns.
	flowBuf []Flow

	// Null routing drops the server->client direction, per IP (all
	// ports) or per endpoint (§6: "block by port, or by IP address?").
	// The stored value is the generation of the active rule: Unblock*If
	// only clears a rule installed by the matching Block* call, so a
	// stale scheduled unblock cannot clear a newer block (two servers
	// sharing an IP, or a re-block racing a pending unblock).
	blockedIP   map[string]uint64
	blockedPort map[Endpoint]uint64
	blockGen    uint64

	// Flows counts all attempted flows (including blocked ones).
	Flows int

	// Link impairment (see impair.go): an optional default profile for
	// every directed link, per-link overrides keyed by IP pair, and the
	// lazily created mutable link states.
	defaultLink  *LinkProfile
	linkProfiles map[linkKey]*LinkProfile
	links        map[linkKey]*linkState

	flowsTotal   *metrics.Counter
	flowsBlocked *metrics.Counter
	probeFlows   *metrics.Counter

	mImpDroppedFlows     *metrics.Counter
	mImpDroppedResponses *metrics.Counter
	mImpRetransmits      *metrics.Counter
	mImpDuplicates       *metrics.Counter
	mImpReorders         *metrics.Counter
}

// NetworkOption configures a Network at construction (see NewNetwork).
type NetworkOption func(*Network)

// WithDefaultLink applies profile to every directed link that has no
// WithLink override. A zero profile is a no-op (ideal links).
func WithDefaultLink(profile LinkProfile) NetworkOption {
	return func(n *Network) {
		p := profile
		n.defaultLink = &p
	}
}

// WithLink applies profile to the directed link srcIP→dstIP only,
// overriding any WithDefaultLink profile. Impairing a single direction
// or pair models asymmetric paths and partitions.
func WithLink(srcIP, dstIP string, profile LinkProfile) NetworkOption {
	return func(n *Network) {
		if n.linkProfiles == nil {
			n.linkProfiles = map[linkKey]*LinkProfile{}
		}
		p := profile
		n.linkProfiles[linkKey{src: srcIP, dst: dstIP}] = &p
	}
}

// NewNetwork creates an empty network on sim. With no options every
// link is ideal and the flow path is identical to the historical
// constructor's.
func NewNetwork(sim *Sim, opts ...NetworkOption) *Network {
	n := &Network{
		Sim:          sim,
		hosts:        map[Endpoint]Host{},
		blockedIP:    map[string]uint64{},
		blockedPort:  map[Endpoint]uint64{},
		flowsTotal:   sim.Metrics.Counter("net.flows_total"),
		flowsBlocked: sim.Metrics.Counter("net.flows_blocked"),
		probeFlows:   sim.Metrics.Counter("net.flows_probe"),

		mImpDroppedFlows:     sim.Metrics.Counter("net.impair_dropped_flows"),
		mImpDroppedResponses: sim.Metrics.Counter("net.impair_dropped_responses"),
		mImpRetransmits:      sim.Metrics.Counter("net.impair_retransmits"),
		mImpDuplicates:       sim.Metrics.Counter("net.impair_duplicates"),
		mImpReorders:         sim.Metrics.Counter("net.impair_reorders"),
	}
	for _, o := range opts {
		o(n)
	}
	return n
}

// AddHost binds a host to an endpoint.
func (n *Network) AddHost(ep Endpoint, h Host) { n.hosts[ep] = h }

// AddMiddlebox appends a middlebox to the border path.
func (n *Network) AddMiddlebox(m Middlebox) {
	n.boxes = append(n.boxes, m)
	bm, _ := m.(BatchMiddlebox)
	n.batchBoxes = append(n.batchBoxes, bm)
}

// BlockIP null-routes the server->client direction for every port of ip
// and returns the rule's generation for UnblockIPIf.
func (n *Network) BlockIP(ip string) uint64 {
	n.blockGen++
	n.blockedIP[ip] = n.blockGen
	return n.blockGen
}

// BlockPort null-routes the server->client direction for one endpoint
// and returns the rule's generation for UnblockPortIf.
func (n *Network) BlockPort(ep Endpoint) uint64 {
	n.blockGen++
	n.blockedPort[ep] = n.blockGen
	return n.blockGen
}

// Unblock unconditionally removes both kinds of rules for the endpoint.
// Schedulers that may race a newer block should prefer the generation-
// checked UnblockIPIf/UnblockPortIf.
func (n *Network) Unblock(ep Endpoint) {
	delete(n.blockedIP, ep.IP)
	delete(n.blockedPort, ep)
}

// UnblockIPIf removes the IP rule only if it is still the one installed
// by the BlockIP call that returned gen. It reports whether a rule was
// removed.
func (n *Network) UnblockIPIf(ip string, gen uint64) bool {
	if n.blockedIP[ip] != gen {
		return false
	}
	delete(n.blockedIP, ip)
	return true
}

// UnblockPortIf removes the endpoint rule only if it is still the one
// installed by the BlockPort call that returned gen. It reports whether
// a rule was removed.
func (n *Network) UnblockPortIf(ep Endpoint, gen uint64) bool {
	if n.blockedPort[ep] != gen {
		return false
	}
	delete(n.blockedPort, ep)
	return true
}

// IsBlocked reports whether the endpoint's return direction is dropped.
func (n *Network) IsBlocked(ep Endpoint) bool {
	return n.blockedIP[ep.IP] != 0 || n.blockedPort[ep] != 0
}

// Connect performs one flow: client connects to server and sends
// firstPayload as its first data packet. Middleboxes observe the flow and
// its outcome. The call is synchronous in virtual time.
//
// generatedAt records when the payload content was originally created;
// pass the zero time for "now" (fresh content).
func (n *Network) Connect(client, server Endpoint, firstPayload []byte, probe bool, generatedAt time.Time) Outcome {
	n.Flows++
	n.nextID++
	n.flowsTotal.Inc()
	if probe {
		n.probeFlows.Inc()
	}
	if generatedAt.IsZero() {
		generatedAt = n.Sim.Now()
	}
	f := &Flow{
		ID:           n.nextID,
		Client:       client,
		Server:       server,
		FirstPayload: firstPayload,
		Start:        n.Sim.Now(),
		Probe:        probe,
		GeneratedAt:  generatedAt,
	}
	// Impaired links take the fault-injecting path (impair.go); with no
	// profiles configured — or all profiles zero — the flow continues on
	// the exact historical code path below, with no extra RNG draws.
	if n.impaired() {
		fwd, rev := n.linkFor(client, server), n.linkFor(server, client)
		if fwd != nil || rev != nil {
			return n.connectImpaired(f, fwd, rev)
		}
	}
	// Null routing drops only the server->client direction (§6): the
	// client's SYN still reaches the server, which may even accept and
	// respond, but nothing comes back. From the client's (and a probing
	// censor's) point of view the connection never completes, and because
	// the handshake fails the client never sends its payload — so the
	// middleboxes see nothing and the host sees a flow with no data.
	if n.IsBlocked(server) {
		n.flowsBlocked.Inc()
		if h, ok := n.hosts[server]; ok {
			silenced := *f
			silenced.FirstPayload = nil
			h.HandleFlow(&silenced)
		}
		return Outcome{Blocked: true}
	}
	for _, b := range n.boxes {
		b.OnFlow(f)
	}
	h, ok := n.hosts[server]
	if !ok {
		// Connection refused by the network: no host. The censor can
		// observe this too.
		o := Outcome{Reaction: reaction.RST}
		for _, b := range n.boxes {
			b.OnOutcome(f, o)
		}
		return o
	}
	o := h.HandleFlow(f)
	for _, b := range n.boxes {
		b.OnOutcome(f, o)
	}
	return o
}

// needsScalar reports whether a flow must take the one-at-a-time path:
// an impaired link (fault injection draws per-transmission RNG in flow
// order) or a blocked server (diverted before middleboxes see it).
//
//sslab:hotpath
func (n *Network) needsScalar(f *Flow, impaired bool) bool {
	if impaired {
		if n.linkFor(f.Client, f.Server) != nil || n.linkFor(f.Server, f.Client) != nil {
			return true
		}
	}
	return n.IsBlocked(f.Server)
}

// connectScalar completes one already-initialized flow exactly as
// Connect does after constructing the Flow: impaired path first, then
// the blocked diversion, then middleboxes → host → outcomes.
func (n *Network) connectScalar(f *Flow, impaired bool) Outcome {
	if impaired {
		fwd, rev := n.linkFor(f.Client, f.Server), n.linkFor(f.Server, f.Client)
		if fwd != nil || rev != nil {
			return n.connectImpaired(f, fwd, rev)
		}
	}
	if n.IsBlocked(f.Server) {
		n.flowsBlocked.Inc()
		if h, ok := n.hosts[f.Server]; ok {
			silenced := *f
			silenced.FirstPayload = nil
			h.HandleFlow(&silenced)
		}
		return Outcome{Blocked: true}
	}
	for _, b := range n.boxes {
		b.OnFlow(f)
	}
	h, ok := n.hosts[f.Server]
	if !ok {
		o := Outcome{Reaction: reaction.RST}
		for _, b := range n.boxes {
			b.OnOutcome(f, o)
		}
		return o
	}
	o := h.HandleFlow(f)
	for _, b := range n.boxes {
		b.OnOutcome(f, o)
	}
	return o
}

// ConnectBatch performs the specs' flows in order and appends their
// outcomes to outBuf (pass outBuf[:0] to reuse a caller-owned slice),
// returning the extended slice. Outcome i corresponds to specs[i].
//
// Semantics are equivalent to calling Connect once per spec, in order
// — same counters, same flow IDs, same outcomes, same per-flow RNG
// draw order — with one scheduling difference: within a maximal run of
// consecutive ideal-link, unblocked flows, every middlebox sees the
// whole run (one OnFlowBatch call for BatchMiddlebox implementations,
// per-flow OnFlow otherwise) before the hosts produce the run's
// outcomes. That reorder is unobservable for this repo's components:
// middlebox and host RNG streams are independent, censor probe work is
// event-scheduled rather than synchronous, and no host schedules
// events from HandleFlow. Middleboxes must not install blocking rules
// synchronously from OnFlow/OnOutcome when using batch delivery (the
// censor blocks from scheduled probe outcomes, never inline). Blocked
// and impaired flows break runs and take the exact scalar path, in
// order.
//
// The Flow values handed to middleboxes and hosts are backed by a
// network-owned arena reused across calls: they are valid only until
// ConnectBatch returns, and anything retained must be copied (the
// censor slab-copies recorded payloads; hosts keep only hashes).
//
//sslab:hotpath
func (n *Network) ConnectBatch(specs []FlowSpec, outBuf []Outcome) []Outcome {
	if cap(n.flowBuf) < len(specs) {
		n.flowBuf = make([]Flow, len(specs))
	}
	flowBuf := n.flowBuf[:len(specs)]
	now := n.Sim.Now()
	impaired := n.impaired()
	for i := range specs {
		sp := &specs[i]
		n.Flows++
		n.nextID++
		n.flowsTotal.Inc()
		if sp.Probe {
			n.probeFlows.Inc()
		}
		genAt := sp.GeneratedAt
		if genAt.IsZero() {
			genAt = now
		}
		flowBuf[i] = Flow{
			ID:           n.nextID,
			Client:       sp.Client,
			Server:       sp.Server,
			FirstPayload: sp.FirstPayload,
			Start:        now,
			Probe:        sp.Probe,
			GeneratedAt:  genAt,
		}
	}
	for i := 0; i < len(flowBuf); {
		if n.needsScalar(&flowBuf[i], impaired) {
			outBuf = append(outBuf, n.connectScalar(&flowBuf[i], impaired))
			i++
			continue
		}
		// Maximal run of ideal-path unblocked flows: deliver the run to
		// the border, then let the hosts answer it.
		j := i + 1
		for j < len(flowBuf) && !n.needsScalar(&flowBuf[j], impaired) {
			j++
		}
		run := flowBuf[i:j]
		for bi, b := range n.boxes {
			if bb := n.batchBoxes[bi]; bb != nil {
				bb.OnFlowBatch(run)
			} else {
				for k := range run {
					b.OnFlow(&run[k])
				}
			}
		}
		for k := range run {
			f := &run[k]
			var o Outcome
			if h, ok := n.hosts[f.Server]; ok {
				o = h.HandleFlow(f)
			} else {
				o = Outcome{Reaction: reaction.RST}
			}
			for _, b := range n.boxes {
				b.OnOutcome(f, o)
			}
			outBuf = append(outBuf, o)
		}
		i = j
	}
	return outBuf
}
