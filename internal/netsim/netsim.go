// Package netsim is a deterministic discrete-event network simulator at
// flow granularity. It provides the substrate on which the paper's
// measurement experiments are re-run: hosts exchange connections carrying
// a first data payload, middleboxes on the path (the GFW) observe flows
// and their outcomes, and directional null-routing implements the blocking
// behaviour of §6 (dropping only the server-to-client direction).
//
// A virtual clock makes four-month experiments run in milliseconds and
// bit-for-bit reproducibly: all randomness is seeded and all event
// ordering is total (time, then insertion sequence).
package netsim

import (
	"container/heap"
	"fmt"
	"time"

	"sslab/internal/reaction"
)

// Epoch is the simulation start time — the first day of the paper's
// Shadowsocks experiment.
var Epoch = time.Date(2019, 9, 29, 0, 0, 0, 0, time.UTC)

// event is one scheduled callback.
type event struct {
	at  time.Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) Peek() *event  { return h[0] }

// Sim is the discrete-event scheduler with a virtual clock.
type Sim struct {
	now time.Time
	pq  eventHeap
	seq uint64
}

// NewSim returns a simulator starting at Epoch.
func NewSim() *Sim { return &Sim{now: Epoch} }

// Now returns the current virtual time.
func (s *Sim) Now() time.Time { return s.now }

// At schedules fn at absolute time t (clamped to now if in the past).
func (s *Sim) At(t time.Time, fn func()) {
	if t.Before(s.now) {
		t = s.now
	}
	s.seq++
	heap.Push(&s.pq, &event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn d from now.
func (s *Sim) After(d time.Duration, fn func()) { s.At(s.now.Add(d), fn) }

// Run processes events until the queue is empty.
func (s *Sim) Run() {
	for len(s.pq) > 0 {
		e := heap.Pop(&s.pq).(*event)
		s.now = e.at
		e.fn()
	}
}

// RunUntil processes events with at <= t, then advances the clock to t.
func (s *Sim) RunUntil(t time.Time) {
	for len(s.pq) > 0 && !s.pq.Peek().at.After(t) {
		e := heap.Pop(&s.pq).(*event)
		s.now = e.at
		e.fn()
	}
	if s.now.Before(t) {
		s.now = t
	}
}

// Pending returns the number of queued events.
func (s *Sim) Pending() int { return len(s.pq) }

// Endpoint is an IP:port pair in the simulated network.
type Endpoint struct {
	IP   string
	Port int
}

func (e Endpoint) String() string { return fmt.Sprintf("%s:%d", e.IP, e.Port) }

// Flow is one TCP connection, reduced to what the GFW's detector sees:
// endpoints, direction, and the first data-carrying packet from the client.
type Flow struct {
	ID     uint64
	Client Endpoint
	Server Endpoint
	// FirstPayload is the client's first data packet (after TCP handshake).
	FirstPayload []byte
	// Start is when the flow's first payload crossed the wire.
	Start time.Time
	// Probe marks flows originated by the censor's probers (middleboxes
	// do not re-analyze their own probes).
	Probe bool
	// GeneratedAt is when the payload content was created (for replays of
	// recorded content this is the recording time, used by timestamp-
	// based replay defenses).
	GeneratedAt time.Time
}

// Outcome is the server's observable response to a flow.
type Outcome struct {
	Reaction reaction.Reaction
	// ResponseLen is the number of bytes the server sent back (Reaction ==
	// Data).
	ResponseLen int
	// Blocked means the flow never completed because a null-routing rule
	// dropped the server-to-client direction.
	Blocked bool
}

// Host handles inbound flows.
type Host interface {
	HandleFlow(f *Flow) Outcome
}

// HostFunc adapts a function to the Host interface.
type HostFunc func(f *Flow) Outcome

// HandleFlow implements Host.
func (fn HostFunc) HandleFlow(f *Flow) Outcome { return fn(f) }

// Middlebox observes flows crossing the border — the GFW's position.
type Middlebox interface {
	// OnFlow sees every border-crossing flow with its first payload.
	OnFlow(f *Flow)
	// OnOutcome sees the server's reaction on the return path (unless the
	// return path is blocked).
	OnOutcome(f *Flow, o Outcome)
}

// Network ties hosts, middleboxes and blocking rules together.
type Network struct {
	Sim *Sim

	hosts  map[Endpoint]Host
	boxes  []Middlebox
	nextID uint64

	// blockedIP drops the server->client direction for all ports of an
	// IP; blockedPort for one endpoint only (§6: "block by port, or by IP
	// address?").
	blockedIP   map[string]bool
	blockedPort map[Endpoint]bool

	// Flows counts all attempted flows (including blocked ones).
	Flows int
}

// NewNetwork creates an empty network on sim.
func NewNetwork(sim *Sim) *Network {
	return &Network{
		Sim:         sim,
		hosts:       map[Endpoint]Host{},
		blockedIP:   map[string]bool{},
		blockedPort: map[Endpoint]bool{},
	}
}

// AddHost binds a host to an endpoint.
func (n *Network) AddHost(ep Endpoint, h Host) { n.hosts[ep] = h }

// AddMiddlebox appends a middlebox to the border path.
func (n *Network) AddMiddlebox(m Middlebox) { n.boxes = append(n.boxes, m) }

// BlockIP null-routes the server->client direction for every port of ip.
func (n *Network) BlockIP(ip string) { n.blockedIP[ip] = true }

// BlockPort null-routes the server->client direction for one endpoint.
func (n *Network) BlockPort(ep Endpoint) { n.blockedPort[ep] = true }

// Unblock removes both kinds of rules for the endpoint.
func (n *Network) Unblock(ep Endpoint) {
	delete(n.blockedIP, ep.IP)
	delete(n.blockedPort, ep)
}

// IsBlocked reports whether the endpoint's return direction is dropped.
func (n *Network) IsBlocked(ep Endpoint) bool {
	return n.blockedIP[ep.IP] || n.blockedPort[ep]
}

// Connect performs one flow: client connects to server and sends
// firstPayload as its first data packet. Middleboxes observe the flow and
// its outcome. The call is synchronous in virtual time.
//
// generatedAt records when the payload content was originally created;
// pass the zero time for "now" (fresh content).
func (n *Network) Connect(client, server Endpoint, firstPayload []byte, probe bool, generatedAt time.Time) Outcome {
	n.Flows++
	n.nextID++
	if generatedAt.IsZero() {
		generatedAt = n.Sim.Now()
	}
	f := &Flow{
		ID:           n.nextID,
		Client:       client,
		Server:       server,
		FirstPayload: firstPayload,
		Start:        n.Sim.Now(),
		Probe:        probe,
		GeneratedAt:  generatedAt,
	}
	// Null routing drops only the server->client direction (§6): the
	// client's SYN still reaches the server, which may even accept and
	// respond, but nothing comes back. From the client's (and a probing
	// censor's) point of view the connection never completes, and because
	// the handshake fails the client never sends its payload — so the
	// middleboxes see nothing and the host sees a flow with no data.
	if n.IsBlocked(server) {
		if h, ok := n.hosts[server]; ok {
			silenced := *f
			silenced.FirstPayload = nil
			h.HandleFlow(&silenced)
		}
		return Outcome{Blocked: true}
	}
	for _, b := range n.boxes {
		b.OnFlow(f)
	}
	h, ok := n.hosts[server]
	if !ok {
		// Connection refused by the network: no host. The censor can
		// observe this too.
		o := Outcome{Reaction: reaction.RST}
		for _, b := range n.boxes {
			b.OnOutcome(f, o)
		}
		return o
	}
	o := h.HandleFlow(f)
	for _, b := range n.boxes {
		b.OnOutcome(f, o)
	}
	return o
}
