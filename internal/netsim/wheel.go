package netsim

import (
	"math"
	"math/bits"
	"time"

	"sslab/internal/metrics"
)

// The wheel geometry: three levels of 256 slots each. With the default
// 1-second tick the levels span ~4 minutes, ~18 hours and ~194 days —
// enough that a multi-month experiment never overflows (and anything
// beyond the top level falls back to the Sim heap, which is always
// correct, just not O(1)).
const (
	wheelBits   = 8
	wheelSlots  = 1 << wheelBits
	wheelLevels = 3
	wheelWords  = wheelSlots / 64
)

// wentry is one deferred callback parked in the wheel. It carries the
// exact target time, so parking in a coarse slot never quantizes
// delivery: entries are handed to the Sim heap with their original at.
type wentry struct {
	at   time.Time
	seq  uint64
	call func(any)
	arg  any
}

// anchorArg carries one anchor wake-up through the closure-free
// netsim.AtCall path; recycled via Wheel.anchorFree.
type anchorArg struct {
	w    *Wheel
	tick int64
}

// Wheel is a hierarchical timing wheel layered in front of a Sim's
// event heap. The heap is O(log n) per operation with n live events; a
// population-scale workload keeping 10⁵–10⁶ timers outstanding would
// pay that on every schedule. The wheel parks far-future callbacks in
// power-of-256 tick buckets (O(1) insert), cascades them toward level 0
// as virtual time approaches (each entry moves at most wheelLevels
// times), and releases them into the Sim heap only when they are due —
// so the heap holds just the imminent horizon and the per-event cost is
// O(1) amortized.
//
// Contract:
//   - Delivery is exact-time: entries fire at precisely the Schedule
//     time (wheel slots only defer *when the heap learns about them*).
//   - Entries with equal target times dispatch in Schedule order.
//   - The wheel is single-threaded and deterministic: given the same
//     schedule sequence it produces the same dispatch sequence, so it
//     is safe anywhere the Sim heap is.
//   - Steady state is allocation-free: slot slices and anchor args are
//     pooled, and arg is a caller-owned pointer (no boxing).
//
// The wheel wakes itself with "anchor" events on the Sim heap, one per
// occupied-slot boundary. The Sim cannot cancel events, so superseded
// anchors simply fire as no-ops (advance finds nothing due).
type Wheel struct {
	sim  *Sim
	tick time.Duration

	slots [wheelLevels][wheelSlots][]wentry
	occ   [wheelLevels][wheelWords]uint64

	count int
	seq   uint64

	// armed is the earliest outstanding anchor tick (math.MaxInt64 when
	// none). Later anchors may also be outstanding; they fire as no-ops.
	armed      int64
	anchorFree []*anchorArg

	mScheduled *metrics.Counter
	mDirect    *metrics.Counter
	mCascaded  *metrics.Counter
	mAnchors   *metrics.Counter
}

// WheelOption configures a timing wheel at construction (see NewWheel).
type WheelOption func(*wheelConfig)

// wheelConfig holds the constructor knobs WheelOptions mutate.
type wheelConfig struct {
	tick time.Duration
}

// WithTick sets the level-0 slot width; entries closer than one tick go
// straight to the Sim heap. Non-positive values fall back to the
// 1-second default.
func WithTick(d time.Duration) WheelOption {
	return func(c *wheelConfig) { c.tick = d }
}

// NewWheel attaches a timing wheel to sim. With no options the level-0
// slot width is one second, matching the historical
// NewWheel(sim, time.Second) signature.
func NewWheel(sim *Sim, opts ...WheelOption) *Wheel {
	cfg := wheelConfig{tick: time.Second}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.tick <= 0 {
		cfg.tick = time.Second
	}
	w := &Wheel{sim: sim, tick: cfg.tick, armed: math.MaxInt64}
	w.mScheduled = sim.Metrics.Counter("wheel.scheduled")
	w.mDirect = sim.Metrics.Counter("wheel.direct")
	w.mCascaded = sim.Metrics.Counter("wheel.cascaded")
	w.mAnchors = sim.Metrics.Counter("wheel.anchors")
	return w
}

// Tick returns the level-0 slot width.
func (w *Wheel) Tick() time.Duration { return w.tick }

// Len returns the number of entries parked in the wheel (excluding
// those already released to the Sim heap).
func (w *Wheel) Len() int { return w.count }

func (w *Wheel) absTick(t time.Time) int64  { return int64(t.Sub(Epoch) / w.tick) }
func (w *Wheel) tickTime(k int64) time.Time { return Epoch.Add(time.Duration(k) * w.tick) }

// Schedule parks call(arg) for dispatch at absolute time at (clamped to
// now if in the past). It is the wheel counterpart of Sim.AtCall and
// shares its closure-free contract: arg should be a long-lived pointer.
//
//sslab:hotpath
func (w *Wheel) Schedule(at time.Time, call func(any), arg any) {
	w.mScheduled.Inc()
	w.seq++
	w.place(wentry{at: at, seq: w.seq, call: call, arg: arg})
}

// After parks call(arg) d from now.
func (w *Wheel) After(d time.Duration, call func(any), arg any) {
	w.Schedule(w.sim.Now().Add(d), call, arg)
}

// place files e into the level whose span covers its remaining delay.
// Entries due within one tick (or in the past, or beyond the top
// level's span) bypass the wheel entirely.
//
//sslab:hotpath
func (w *Wheel) place(e wentry) {
	T := w.absTick(e.at)
	cur := w.absTick(w.sim.Now())
	delta := T - cur
	if delta < 1 || delta >= wheelSlots<<(wheelBits*(wheelLevels-1)) {
		w.mDirect.Inc()
		w.sim.AtCall(e.at, e.call, e.arg)
		return
	}
	level := 0
	for delta >= wheelSlots<<(wheelBits*level) {
		level++
	}
	slot := int(T>>(wheelBits*level)) & (wheelSlots - 1)
	w.slots[level][slot] = append(w.slots[level][slot], e) //sslab:allow-hotpath slot backing arrays are retained by pour (list[:0]) and stop growing at steady state
	w.occ[level][slot>>6] |= 1 << (slot & 63)
	w.count++
	w.arm(w.dueOf(level, T))
}

// dueOf is the tick at which a level's slot holding an entry at tick T
// must be processed: the entry's own tick at level 0, the slot's start
// boundary above (where its contents cascade down).
func (w *Wheel) dueOf(level int, T int64) int64 {
	if level == 0 {
		return T
	}
	shift := wheelBits * level
	return (T >> shift) << shift
}

// arm schedules an anchor wake-up at tick d unless an earlier (or
// equal) anchor is already outstanding.
//
//sslab:hotpath
func (w *Wheel) arm(d int64) {
	if d >= w.armed {
		return
	}
	w.armed = d
	var a *anchorArg
	if n := len(w.anchorFree); n > 0 {
		a = w.anchorFree[n-1]
		w.anchorFree = w.anchorFree[:n-1]
		a.w, a.tick = w, d
	} else {
		a = &anchorArg{w: w, tick: d}
	}
	w.mAnchors.Inc()
	w.sim.AtCall(w.tickTime(d), runWheelAnchor, a)
}

// runWheelAnchor is the netsim.AtCall trampoline for anchor wake-ups.
//
//sslab:hotpath
func runWheelAnchor(x any) {
	a := x.(*anchorArg)
	w, k := a.w, a.tick
	a.w = nil
	w.anchorFree = append(w.anchorFree, a)
	if k == w.armed {
		w.armed = math.MaxInt64
	}
	w.advance()
}

// advance processes every slot whose due tick has been reached —
// releasing level-0 entries to the Sim heap and cascading higher-level
// slots downward — then re-arms for the next occupied boundary.
// Scanning occupancy bitmaps keeps the pass proportional to occupied
// slots, not slot count.
//
//sslab:hotpath
func (w *Wheel) advance() {
	cur := w.absTick(w.sim.Now())
	// Highest level first, so cascaded entries land in lower levels
	// before those are scanned in the same pass.
	for l := wheelLevels - 1; l >= 0; l-- {
		for wd := range w.occ[l] {
			for b := w.occ[l][wd]; b != 0; b &= b - 1 {
				slot := wd<<6 + bits.TrailingZeros64(b)
				if w.dueOf(l, w.absTick(w.slots[l][slot][0].at)) <= cur {
					w.pour(l, slot)
				}
			}
		}
	}
	// Re-arm for the earliest remaining boundary.
	due := int64(math.MaxInt64)
	for l := 0; l < wheelLevels; l++ {
		for wd := range w.occ[l] {
			for b := w.occ[l][wd]; b != 0; b &= b - 1 {
				slot := wd<<6 + bits.TrailingZeros64(b)
				if d := w.dueOf(l, w.absTick(w.slots[l][slot][0].at)); d < due {
					due = d
				}
			}
		}
	}
	if due != math.MaxInt64 {
		w.arm(due)
	}
}

// pour empties one slot: level 0 releases entries to the Sim heap in
// (at, Schedule-order) order; higher levels re-place entries one level
// down (or directly onto the heap if now imminent).
//
//sslab:hotpath
func (w *Wheel) pour(level, slot int) {
	list := w.slots[level][slot]
	w.slots[level][slot] = list[:0]
	w.occ[level][slot>>6] &^= 1 << (slot & 63)
	if level == 0 {
		sortEntries(list)
		for i := range list {
			w.count--
			w.sim.AtCall(list[i].at, list[i].call, list[i].arg)
		}
	} else {
		w.mCascaded.Add(int64(len(list)))
		for i := range list {
			w.count--
			w.place(list[i])
		}
	}
	// Drop callback/arg references held by the retained backing array.
	for i := range list {
		list[i] = wentry{}
	}
}

// sortEntries insertion-sorts a slot by (at, seq). Slots are small and
// near-sorted (append order is Schedule order), so this is cheap and
// allocation-free; it makes equal-time dispatch order equal Schedule
// order even when entries reached the slot through different levels.
//
//sslab:hotpath
func sortEntries(list []wentry) {
	for i := 1; i < len(list); i++ {
		e := list[i]
		j := i - 1
		for j >= 0 && (list[j].at.After(e.at) || (list[j].at.Equal(e.at) && list[j].seq > e.seq)) {
			list[j+1] = list[j]
			j--
		}
		list[j+1] = e
	}
}
