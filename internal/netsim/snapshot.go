package netsim

import (
	"sort"
	"time"
)

// This file is the simulator's snapshot surface: read-only views of the
// pending event heap and wheel, and the network's serializable rule
// state. The engine snapshot layer (internal/fleet) uses these to
// capture a run at a quiescent RunUntil(T) boundary — where every
// pending event's time is strictly after T — and to rebuild an
// equivalent schedule on restore. Relative dispatch order is all that
// matters for byte-identity: re-pushing heap events in their original
// sequence order (then re-parking wheel entries in theirs) reproduces
// the (time, sequence) total order even though the absolute sequence
// numbers differ.

// PendingEvent is a read-only view of one queued Sim event. Exactly one
// of Fn and Call is set, mirroring the internal event representation.
type PendingEvent struct {
	At   time.Time
	Seq  uint64
	Fn   func()
	Call func(any)
	Arg  any
}

// PendingEvents returns the heap's events sorted by insertion sequence
// (the order that, re-pushed at restore, reproduces dispatch order).
// The callback values are shared, not copied; callers must treat them
// as opaque classification keys.
func (s *Sim) PendingEvents() []PendingEvent {
	out := make([]PendingEvent, 0, len(s.pq))
	for i := range s.pq {
		e := &s.pq[i]
		out = append(out, PendingEvent{At: e.at, Seq: e.seq, Fn: e.fn, Call: e.call, Arg: e.arg})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// IsWheelAnchor reports whether a pending event is a timing-wheel
// anchor wake-up. Anchors are the wheel's internal alarm clock, not
// user work: a snapshot drops them, and the restored wheel re-arms its
// own as entries are re-parked.
func IsWheelAnchor(arg any) bool {
	_, ok := arg.(*anchorArg)
	return ok
}

// WheelEntry is a read-only view of one callback parked in a Wheel.
type WheelEntry struct {
	At   time.Time
	Seq  uint64
	Call func(any)
	Arg  any
}

// PendingEntries returns every parked entry across all levels and
// slots, sorted by the wheel's own Schedule sequence. Re-Scheduling
// them in this order on a fresh wheel reproduces the original pour
// order (pour sorts by (time, sequence), and fresh sequences assigned
// in old-sequence order preserve the comparison).
func (w *Wheel) PendingEntries() []WheelEntry {
	out := make([]WheelEntry, 0, w.count)
	for l := 0; l < wheelLevels; l++ {
		for slot := 0; slot < wheelSlots; slot++ {
			for i := range w.slots[l][slot] {
				e := &w.slots[l][slot][i]
				out = append(out, WheelEntry{At: e.at, Seq: e.seq, Call: e.call, Arg: e.arg})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// IPRule is one serialized IP null-routing rule.
type IPRule struct {
	IP  string
	Gen uint64
}

// PortRule is one serialized per-endpoint null-routing rule.
type PortRule struct {
	Endpoint Endpoint
	Gen      uint64
}

// NetworkState is the network's serializable mutable state: the active
// blocking rules with their generations, the rule-generation counter,
// and the flow counters that feed flow IDs and reports. Host bindings
// and middleboxes are topology, not state — the restorer re-creates
// them deterministically before applying a NetworkState.
type NetworkState struct {
	BlockedIP   []IPRule
	BlockedPort []PortRule
	BlockGen    uint64
	NextID      uint64
	Flows       int
}

// CaptureState returns the network's mutable state with rules in
// deterministic (address-sorted) order.
func (n *Network) CaptureState() NetworkState {
	st := NetworkState{
		BlockedIP:   make([]IPRule, 0, len(n.blockedIP)),
		BlockedPort: make([]PortRule, 0, len(n.blockedPort)),
		BlockGen:    n.blockGen,
		NextID:      n.nextID,
		Flows:       n.Flows,
	}
	for ip, gen := range n.blockedIP {
		st.BlockedIP = append(st.BlockedIP, IPRule{IP: ip, Gen: gen})
	}
	sort.Slice(st.BlockedIP, func(i, j int) bool { return st.BlockedIP[i].IP < st.BlockedIP[j].IP })
	for ep, gen := range n.blockedPort {
		st.BlockedPort = append(st.BlockedPort, PortRule{Endpoint: ep, Gen: gen})
	}
	sort.Slice(st.BlockedPort, func(i, j int) bool {
		a, b := st.BlockedPort[i].Endpoint, st.BlockedPort[j].Endpoint
		if a.IP != b.IP {
			return a.IP < b.IP
		}
		return a.Port < b.Port
	})
	return st
}

// RestoreState overwrites the network's mutable state with st.
func (n *Network) RestoreState(st NetworkState) {
	n.blockedIP = make(map[string]uint64, len(st.BlockedIP))
	for _, r := range st.BlockedIP {
		n.blockedIP[r.IP] = r.Gen
	}
	n.blockedPort = make(map[Endpoint]uint64, len(st.BlockedPort))
	for _, r := range st.BlockedPort {
		n.blockedPort[r.Endpoint] = r.Gen
	}
	n.blockGen = st.BlockGen
	n.nextID = st.NextID
	n.Flows = st.Flows
}
