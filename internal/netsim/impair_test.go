package netsim

import (
	"fmt"
	"testing"
	"time"

	"sslab/internal/reaction"
)

// impairTestHost reacts with data and counts the flows it handled.
type impairTestHost struct {
	handled int
}

func (h *impairTestHost) HandleFlow(f *Flow) Outcome {
	h.handled++
	return Outcome{Reaction: reaction.Data, ResponseLen: 100}
}

// countingBox counts middlebox observations.
type countingBox struct {
	flows, outcomes int
}

func (b *countingBox) OnFlow(f *Flow)               { b.flows++ }
func (b *countingBox) OnOutcome(f *Flow, o Outcome) { b.outcomes++ }

var (
	impairClient = Endpoint{IP: "150.109.1.1", Port: 40000}
	impairServer = Endpoint{IP: "178.62.1.1", Port: 8388}
)

// TestImpairFIFONoReorder is the FIFO property: with reordering disabled,
// arrivals on one link are non-decreasing no matter how jitter and
// bandwidth queueing jiggle individual delays.
func TestImpairFIFONoReorder(t *testing.T) {
	sim := NewSim(WithSeed(42))
	net := NewNetwork(sim, WithDefaultLink(LinkProfile{
		LatencyBase:  10 * time.Millisecond,
		Jitter:       200 * time.Millisecond,
		BandwidthBPS: 1e6,
	}))
	lk := net.linkFor(impairClient, impairServer)
	if lk == nil {
		t.Fatal("expected an impaired link state")
	}
	var prev time.Time
	at := sim.Now()
	for i := 0; i < 5000; i++ {
		arr := net.deliver(lk, at, 100+i%1400)
		if arr.Before(prev) {
			t.Fatalf("delivery %d arrived at %v, before previous %v (FIFO violated)", i, arr, prev)
		}
		prev = arr
		at = at.Add(time.Duration(i%7) * time.Millisecond)
	}
	if got := net.mImpReorders.Value(); got != 0 {
		t.Errorf("reorder counter = %d with reordering disabled, want 0", got)
	}
}

// TestImpairReorderInversions is the complement: with ReorderProb=1 and a
// wide window, held-back packets are overtaken and counted.
func TestImpairReorderInversions(t *testing.T) {
	sim := NewSim(WithSeed(42))
	net := NewNetwork(sim, WithDefaultLink(LinkProfile{
		LatencyBase:   10 * time.Millisecond,
		ReorderProb:   0.5,
		ReorderWindow: time.Second,
	}))
	lk := net.linkFor(impairClient, impairServer)
	at := sim.Now()
	for i := 0; i < 2000; i++ {
		net.deliver(lk, at, 100)
		at = at.Add(time.Millisecond)
	}
	if got := net.mImpReorders.Value(); got == 0 {
		t.Error("no inversions recorded under ReorderProb=0.5 with a 1s window")
	}
}

// TestImpairTotalLoss: loss=1.0 yields zero deliveries — every flow is
// Dropped before its payload crosses the border, so middleboxes and the
// host see nothing.
func TestImpairTotalLoss(t *testing.T) {
	sim := NewSim(WithSeed(1))
	net := NewNetwork(sim, WithDefaultLink(LinkProfile{Loss: 1.0}))
	host := &impairTestHost{}
	box := &countingBox{}
	net.AddHost(impairServer, host)
	net.AddMiddlebox(box)

	const flows = 500
	for i := 0; i < flows; i++ {
		o := net.Connect(impairClient, impairServer, []byte("payload"), false, time.Time{})
		if !o.Dropped {
			t.Fatalf("flow %d not Dropped under loss=1.0: %+v", i, o)
		}
		if o.Reaction != reaction.Timeout {
			t.Fatalf("flow %d reaction = %v, want Timeout", i, o.Reaction)
		}
		if o.Elapsed <= 0 {
			t.Fatalf("flow %d Elapsed = %v, want > 0 (the sender's give-up time)", i, o.Elapsed)
		}
	}
	if host.handled != 0 {
		t.Errorf("host handled %d flows, want 0", host.handled)
	}
	if box.flows != 0 || box.outcomes != 0 {
		t.Errorf("middlebox saw %d flows / %d outcomes, want 0/0", box.flows, box.outcomes)
	}
	if got := net.mImpDroppedFlows.Value(); got != flows {
		t.Errorf("impair_dropped_flows = %d, want %d", got, flows)
	}
	// Each of the flows attempts the SYN 3 times (the default retry
	// policy), so 2 retransmissions are recorded per flow.
	if got := net.mImpRetransmits.Value(); got != 2*flows {
		t.Errorf("impair_retransmits = %d, want %d", got, 2*flows)
	}
}

// runImpairedWorkload drives a fixed workload over a lossy, jittery,
// duplicating link and returns a transcript of every outcome.
func runImpairedWorkload(seed int64, addHostsReversed bool) string {
	sim := NewSim(WithSeed(seed))
	net := NewNetwork(sim, WithDefaultLink(LinkProfile{
		LatencyBase: 20 * time.Millisecond,
		Jitter:      80 * time.Millisecond,
		Loss:        0.05,
		Duplicate:   0.02,
	}))
	serverB := Endpoint{IP: "178.62.1.2", Port: 443}
	hosts := []struct {
		ep Endpoint
		h  Host
	}{
		{impairServer, &impairTestHost{}},
		{serverB, &impairTestHost{}},
	}
	if addHostsReversed {
		hosts[0], hosts[1] = hosts[1], hosts[0]
	}
	for _, hh := range hosts {
		net.AddHost(hh.ep, hh.h)
	}

	transcript := ""
	for i := 0; i < 2000; i++ {
		dst := impairServer
		if i%3 == 0 {
			dst = serverB
		}
		o := net.Connect(impairClient, dst, []byte("payload"), false, time.Time{})
		transcript += fmt.Sprintf("%d %v %v %d %v\n", i, o.Reaction, o.Dropped, o.ResponseLen, o.Elapsed)
	}
	return transcript
}

// TestImpairSameSeedDeterminism: equal seeds give bit-identical outcome
// sequences; per-link streams are keyed by endpoint IPs, so even the
// host registration order is irrelevant. Different seeds differ.
func TestImpairSameSeedDeterminism(t *testing.T) {
	a := runImpairedWorkload(7, false)
	b := runImpairedWorkload(7, false)
	if a != b {
		t.Error("same-seed impaired runs diverged")
	}
	c := runImpairedWorkload(7, true)
	if a != c {
		t.Error("host registration order changed the impairment stream")
	}
	d := runImpairedWorkload(8, false)
	if a == d {
		t.Error("different seeds produced identical impaired runs")
	}
}

// TestImpairZeroProfileIdentical: a Network constructed with an all-zero
// default profile takes the exact historical code path — outcome
// equality with an option-free Network over the same workload.
func TestImpairZeroProfileIdentical(t *testing.T) {
	run := func(opts ...NetworkOption) string {
		sim := NewSim()
		net := NewNetwork(sim, opts...)
		net.AddHost(impairServer, &impairTestHost{})
		transcript := ""
		for i := 0; i < 200; i++ {
			o := net.Connect(impairClient, impairServer, []byte("payload"), false, time.Time{})
			transcript += fmt.Sprintf("%v %d %v %v\n", o.Reaction, o.ResponseLen, o.Dropped, o.Elapsed)
		}
		return transcript
	}
	plain := run()
	zeroed := run(WithDefaultLink(LinkProfile{}))
	if plain != zeroed {
		t.Error("zero-impairment profile changed outcomes versus the historical path")
	}
}

// TestImpairDuplicate: a duplicating link re-delivers the payload past
// the middleboxes, but the host (deduplicating like a TCP receiver)
// still handles the flow once.
func TestImpairDuplicate(t *testing.T) {
	sim := NewSim(WithSeed(3))
	net := NewNetwork(sim, WithDefaultLink(LinkProfile{Duplicate: 1.0}))
	host := &impairTestHost{}
	box := &countingBox{}
	net.AddHost(impairServer, host)
	net.AddMiddlebox(box)

	const flows = 50
	for i := 0; i < flows; i++ {
		net.Connect(impairClient, impairServer, []byte("payload"), false, time.Time{})
	}
	if box.flows != 2*flows {
		t.Errorf("middlebox saw %d flows, want %d (every payload duplicated)", box.flows, 2*flows)
	}
	if host.handled != flows {
		t.Errorf("host handled %d flows, want %d (duplicates deduplicated)", host.handled, flows)
	}
	if got := net.mImpDuplicates.Value(); got != flows {
		t.Errorf("impair_duplicates = %d, want %d", got, flows)
	}
}

// TestImpairOutage: flows inside a scheduled outage window are dropped
// even on an otherwise lossless link; flows outside it go through.
func TestImpairOutage(t *testing.T) {
	sim := NewSim(WithSeed(4))
	net := NewNetwork(sim, WithDefaultLink(LinkProfile{
		Outages: []Outage{{Start: time.Hour, End: 2 * time.Hour}},
		Retry:   RetryPolicy{Attempts: 1, Timeout: time.Second},
	}))
	net.AddHost(impairServer, &impairTestHost{})

	if o := net.Connect(impairClient, impairServer, []byte("p"), false, time.Time{}); o.Dropped {
		t.Error("flow before the outage was dropped")
	}
	sim.RunUntil(Epoch.Add(90 * time.Minute))
	if o := net.Connect(impairClient, impairServer, []byte("p"), false, time.Time{}); !o.Dropped {
		t.Error("flow during the outage was delivered")
	}
	sim.RunUntil(Epoch.Add(3 * time.Hour))
	if o := net.Connect(impairClient, impairServer, []byte("p"), false, time.Time{}); o.Dropped {
		t.Error("flow after the outage was dropped")
	}
}

// TestImpairPerLinkOverride: WithLink overrides the default profile for
// one direction only — partitioning a single pair while the rest of the
// network stays ideal.
func TestImpairPerLinkOverride(t *testing.T) {
	sim := NewSim(WithSeed(5))
	serverB := Endpoint{IP: "178.62.1.2", Port: 443}
	net := NewNetwork(sim, WithLink(impairClient.IP, impairServer.IP, LinkProfile{Loss: 1.0}))
	net.AddHost(impairServer, &impairTestHost{})
	net.AddHost(serverB, &impairTestHost{})

	if o := net.Connect(impairClient, impairServer, []byte("p"), false, time.Time{}); !o.Dropped {
		t.Error("partitioned link delivered a flow")
	}
	if o := net.Connect(impairClient, serverB, []byte("p"), false, time.Time{}); o.Dropped {
		t.Error("unrelated link dropped a flow")
	}
}

// TestImpairLatencyRecorded: Elapsed reflects three one-way trips
// (SYN, SYN-ACK, payload) plus the response leg over the link latency,
// and Flow.Start is shifted to the payload's arrival.
func TestImpairLatencyRecorded(t *testing.T) {
	const lat = 50 * time.Millisecond
	sim := NewSim(WithSeed(6))
	net := NewNetwork(sim, WithDefaultLink(LinkProfile{LatencyBase: lat}))
	var start time.Time
	net.AddHost(impairServer, HostFunc(func(f *Flow) Outcome {
		start = f.Start
		return Outcome{Reaction: reaction.Data, ResponseLen: 64}
	}))
	o := net.Connect(impairClient, impairServer, []byte("p"), false, time.Time{})
	if want := sim.Now().Add(3 * lat); !start.Equal(want) {
		t.Errorf("payload Flow.Start = %v, want %v", start, want)
	}
	if want := 4 * lat; o.Elapsed != want {
		t.Errorf("Elapsed = %v, want %v", o.Elapsed, want)
	}
}
