package netsim

import (
	"testing"
	"time"

	"sslab/internal/reaction"
)

func TestSimOrdering(t *testing.T) {
	s := NewSim()
	var order []int
	s.After(2*time.Second, func() { order = append(order, 2) })
	s.After(1*time.Second, func() { order = append(order, 1) })
	s.After(1*time.Second, func() { order = append(order, 11) }) // same time: FIFO
	s.After(3*time.Second, func() { order = append(order, 3) })
	s.Run()
	want := []int{1, 11, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if s.Now() != Epoch.Add(3*time.Second) {
		t.Errorf("clock = %v", s.Now())
	}
}

func TestSimNestedScheduling(t *testing.T) {
	s := NewSim()
	fired := 0
	s.After(time.Second, func() {
		s.After(time.Second, func() { fired++ })
	})
	s.Run()
	if fired != 1 {
		t.Error("nested event did not fire")
	}
	if s.Now() != Epoch.Add(2*time.Second) {
		t.Errorf("clock = %v", s.Now())
	}
}

func TestSimRunUntil(t *testing.T) {
	s := NewSim()
	fired := []int{}
	s.After(time.Hour, func() { fired = append(fired, 1) })
	s.After(3*time.Hour, func() { fired = append(fired, 2) })
	s.RunUntil(Epoch.Add(2 * time.Hour))
	if len(fired) != 1 {
		t.Fatalf("fired = %v", fired)
	}
	if s.Now() != Epoch.Add(2*time.Hour) {
		t.Errorf("clock = %v", s.Now())
	}
	if s.Pending() != 1 {
		t.Errorf("pending = %d", s.Pending())
	}
	s.Run()
	if len(fired) != 2 {
		t.Error("remaining event lost")
	}
}

func TestSimPastEventClamped(t *testing.T) {
	s := NewSim()
	fired := false
	s.At(Epoch.Add(-time.Hour), func() { fired = true })
	s.Run()
	if !fired {
		t.Error("past-scheduled event dropped")
	}
	if s.Now() != Epoch {
		t.Errorf("clock moved backwards: %v", s.Now())
	}
}

type recordingBox struct {
	flows    []*Flow
	outcomes []Outcome
}

func (b *recordingBox) OnFlow(f *Flow)               { b.flows = append(b.flows, f) }
func (b *recordingBox) OnOutcome(f *Flow, o Outcome) { b.outcomes = append(b.outcomes, o) }

func TestNetworkDelivery(t *testing.T) {
	s := NewSim()
	n := NewNetwork(s)
	server := Endpoint{IP: "10.0.0.1", Port: 8388}
	client := Endpoint{IP: "192.168.1.2", Port: 40000}

	var seen []byte
	n.AddHost(server, HostFunc(func(f *Flow) Outcome {
		seen = f.FirstPayload
		return Outcome{Reaction: reaction.Data, ResponseLen: 100}
	}))
	box := &recordingBox{}
	n.AddMiddlebox(box)

	o := n.Connect(client, server, []byte("hello"), false, time.Time{})
	if o.Reaction != reaction.Data || o.ResponseLen != 100 {
		t.Errorf("outcome = %+v", o)
	}
	if string(seen) != "hello" {
		t.Error("host did not receive payload")
	}
	if len(box.flows) != 1 || len(box.outcomes) != 1 {
		t.Error("middlebox missed the flow")
	}
	if box.flows[0].GeneratedAt != s.Now() {
		t.Error("zero GeneratedAt not defaulted to now")
	}
}

func TestNetworkNoHost(t *testing.T) {
	s := NewSim()
	n := NewNetwork(s)
	o := n.Connect(Endpoint{IP: "a", Port: 1}, Endpoint{IP: "b", Port: 2}, nil, false, time.Time{})
	if o.Reaction != reaction.RST {
		t.Errorf("connecting to nothing = %v, want RST", o.Reaction)
	}
}

func TestBlocking(t *testing.T) {
	s := NewSim()
	n := NewNetwork(s)
	srv1 := Endpoint{IP: "10.0.0.1", Port: 8388}
	srv2 := Endpoint{IP: "10.0.0.1", Port: 9999}
	client := Endpoint{IP: "1.2.3.4", Port: 1000}
	handled := 0
	h := HostFunc(func(f *Flow) Outcome { handled++; return Outcome{Reaction: reaction.Data} })
	n.AddHost(srv1, h)
	n.AddHost(srv2, h)
	box := &recordingBox{}
	n.AddMiddlebox(box)

	// Block by port: only srv1 affected. The SYN still reaches the host
	// (only the return path is dropped, §6), but carries no payload.
	n.BlockPort(srv1)
	if o := n.Connect(client, srv1, []byte("x"), false, time.Time{}); !o.Blocked {
		t.Error("port-blocked flow not blocked")
	}
	if o := n.Connect(client, srv2, []byte("x"), false, time.Time{}); o.Blocked {
		t.Error("sibling port wrongly blocked")
	}
	if handled != 2 {
		t.Errorf("handled = %d (blocked flows still reach the server)", handled)
	}
	if len(box.flows) != 1 {
		t.Error("middlebox saw a blocked flow's payload")
	}

	// Block by IP: both endpoints affected.
	n.Unblock(srv1)
	n.BlockIP("10.0.0.1")
	if o := n.Connect(client, srv2, []byte("x"), false, time.Time{}); !o.Blocked {
		t.Error("IP-blocked flow not blocked")
	}
	n.Unblock(srv2)
	if o := n.Connect(client, srv2, []byte("x"), false, time.Time{}); o.Blocked {
		t.Error("unblock by endpoint did not clear the IP rule")
	}
	if n.Flows != 4 {
		t.Errorf("Flows = %d, want 4 (blocked attempts count)", n.Flows)
	}
}

// TestAfterCall: the closure-free scheduling form dispatches with the
// same total ordering as After and passes the argument through.
func TestAfterCall(t *testing.T) {
	s := NewSim()
	var got []int
	collect := func(x any) { got = append(got, *x.(*int)) }
	a, b, c := 2, 1, 3
	s.AfterCall(2*time.Second, collect, &a)
	s.AfterCall(1*time.Second, collect, &b)
	s.AtCall(Epoch.Add(3*time.Second), collect, &c)
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// TestEventDispatchAllocFree: steady-state schedule+dispatch with a
// pre-bound callback must not allocate — the hot-path contract that
// BenchmarkHotPath/EventDispatch enforces with a budget.
func TestEventDispatchAllocFree(t *testing.T) {
	s := NewSim()
	n := 0
	fn := func() { n++ }
	// Warm the heap's capacity first.
	for i := 0; i < 512; i++ {
		s.After(time.Duration(i)*time.Millisecond, fn)
	}
	s.Run()
	if allocs := testing.AllocsPerRun(200, func() {
		for i := 0; i < 64; i++ {
			s.After(time.Duration(i%16)*time.Millisecond, fn)
		}
		s.Run()
	}); allocs != 0 {
		t.Errorf("event schedule+dispatch allocates %v/run, want 0", allocs)
	}
}

// TestGenerationUnblock: a stale unblock (carrying an old generation)
// must not clear a newer rule, for both IP and port rules.
func TestGenerationUnblock(t *testing.T) {
	s := NewSim()
	n := NewNetwork(s)
	srv := Endpoint{IP: "10.0.0.9", Port: 8388}

	gen1 := n.BlockIP(srv.IP)
	gen2 := n.BlockIP(srv.IP) // re-block before the first unblock fires
	if n.UnblockIPIf(srv.IP, gen1) {
		t.Error("stale IP unblock cleared a newer rule")
	}
	if !n.IsBlocked(srv) {
		t.Error("newer IP rule lost")
	}
	if !n.UnblockIPIf(srv.IP, gen2) {
		t.Error("current IP unblock refused")
	}
	if n.IsBlocked(srv) {
		t.Error("IP rule not cleared")
	}

	pg1 := n.BlockPort(srv)
	pg2 := n.BlockPort(srv)
	if n.UnblockPortIf(srv, pg1) {
		t.Error("stale port unblock cleared a newer rule")
	}
	if !n.UnblockPortIf(srv, pg2) {
		t.Error("current port unblock refused")
	}
	if n.IsBlocked(srv) {
		t.Error("port rule not cleared")
	}
}

// TestSimMetrics: the sim-owned registry counts events and flows.
func TestSimMetrics(t *testing.T) {
	s := NewSim()
	n := NewNetwork(s)
	srv := Endpoint{IP: "10.0.0.1", Port: 1}
	n.AddHost(srv, HostFunc(func(*Flow) Outcome { return Outcome{Reaction: reaction.Data} }))
	s.After(time.Second, func() {})
	s.Run()
	n.Connect(Endpoint{IP: "c", Port: 2}, srv, []byte("x"), false, time.Time{})
	n.BlockPort(srv)
	n.Connect(Endpoint{IP: "c", Port: 2}, srv, []byte("x"), true, time.Time{})

	snap := s.Metrics.Snapshot()
	want := map[string]int64{
		"sim.events_scheduled":  1,
		"sim.events_dispatched": 1,
		"net.flows_total":       2,
		"net.flows_blocked":     1,
		"net.flows_probe":       1,
	}
	got := map[string]int64{}
	for _, v := range snap.Counters {
		got[v.Name] = v.Value
	}
	for name, w := range want {
		if got[name] != w {
			t.Errorf("%s = %d, want %d", name, got[name], w)
		}
	}
}
