package netsim

import (
	"testing"
	"time"

	"sslab/internal/reaction"
)

func TestSimOrdering(t *testing.T) {
	s := NewSim()
	var order []int
	s.After(2*time.Second, func() { order = append(order, 2) })
	s.After(1*time.Second, func() { order = append(order, 1) })
	s.After(1*time.Second, func() { order = append(order, 11) }) // same time: FIFO
	s.After(3*time.Second, func() { order = append(order, 3) })
	s.Run()
	want := []int{1, 11, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if s.Now() != Epoch.Add(3*time.Second) {
		t.Errorf("clock = %v", s.Now())
	}
}

func TestSimNestedScheduling(t *testing.T) {
	s := NewSim()
	fired := 0
	s.After(time.Second, func() {
		s.After(time.Second, func() { fired++ })
	})
	s.Run()
	if fired != 1 {
		t.Error("nested event did not fire")
	}
	if s.Now() != Epoch.Add(2*time.Second) {
		t.Errorf("clock = %v", s.Now())
	}
}

func TestSimRunUntil(t *testing.T) {
	s := NewSim()
	fired := []int{}
	s.After(time.Hour, func() { fired = append(fired, 1) })
	s.After(3*time.Hour, func() { fired = append(fired, 2) })
	s.RunUntil(Epoch.Add(2 * time.Hour))
	if len(fired) != 1 {
		t.Fatalf("fired = %v", fired)
	}
	if s.Now() != Epoch.Add(2*time.Hour) {
		t.Errorf("clock = %v", s.Now())
	}
	if s.Pending() != 1 {
		t.Errorf("pending = %d", s.Pending())
	}
	s.Run()
	if len(fired) != 2 {
		t.Error("remaining event lost")
	}
}

func TestSimPastEventClamped(t *testing.T) {
	s := NewSim()
	fired := false
	s.At(Epoch.Add(-time.Hour), func() { fired = true })
	s.Run()
	if !fired {
		t.Error("past-scheduled event dropped")
	}
	if s.Now() != Epoch {
		t.Errorf("clock moved backwards: %v", s.Now())
	}
}

type recordingBox struct {
	flows    []*Flow
	outcomes []Outcome
}

func (b *recordingBox) OnFlow(f *Flow)               { b.flows = append(b.flows, f) }
func (b *recordingBox) OnOutcome(f *Flow, o Outcome) { b.outcomes = append(b.outcomes, o) }

func TestNetworkDelivery(t *testing.T) {
	s := NewSim()
	n := NewNetwork(s)
	server := Endpoint{IP: "10.0.0.1", Port: 8388}
	client := Endpoint{IP: "192.168.1.2", Port: 40000}

	var seen []byte
	n.AddHost(server, HostFunc(func(f *Flow) Outcome {
		seen = f.FirstPayload
		return Outcome{Reaction: reaction.Data, ResponseLen: 100}
	}))
	box := &recordingBox{}
	n.AddMiddlebox(box)

	o := n.Connect(client, server, []byte("hello"), false, time.Time{})
	if o.Reaction != reaction.Data || o.ResponseLen != 100 {
		t.Errorf("outcome = %+v", o)
	}
	if string(seen) != "hello" {
		t.Error("host did not receive payload")
	}
	if len(box.flows) != 1 || len(box.outcomes) != 1 {
		t.Error("middlebox missed the flow")
	}
	if box.flows[0].GeneratedAt != s.Now() {
		t.Error("zero GeneratedAt not defaulted to now")
	}
}

func TestNetworkNoHost(t *testing.T) {
	s := NewSim()
	n := NewNetwork(s)
	o := n.Connect(Endpoint{IP: "a", Port: 1}, Endpoint{IP: "b", Port: 2}, nil, false, time.Time{})
	if o.Reaction != reaction.RST {
		t.Errorf("connecting to nothing = %v, want RST", o.Reaction)
	}
}

func TestBlocking(t *testing.T) {
	s := NewSim()
	n := NewNetwork(s)
	srv1 := Endpoint{IP: "10.0.0.1", Port: 8388}
	srv2 := Endpoint{IP: "10.0.0.1", Port: 9999}
	client := Endpoint{IP: "1.2.3.4", Port: 1000}
	handled := 0
	h := HostFunc(func(f *Flow) Outcome { handled++; return Outcome{Reaction: reaction.Data} })
	n.AddHost(srv1, h)
	n.AddHost(srv2, h)
	box := &recordingBox{}
	n.AddMiddlebox(box)

	// Block by port: only srv1 affected. The SYN still reaches the host
	// (only the return path is dropped, §6), but carries no payload.
	n.BlockPort(srv1)
	if o := n.Connect(client, srv1, []byte("x"), false, time.Time{}); !o.Blocked {
		t.Error("port-blocked flow not blocked")
	}
	if o := n.Connect(client, srv2, []byte("x"), false, time.Time{}); o.Blocked {
		t.Error("sibling port wrongly blocked")
	}
	if handled != 2 {
		t.Errorf("handled = %d (blocked flows still reach the server)", handled)
	}
	if len(box.flows) != 1 {
		t.Error("middlebox saw a blocked flow's payload")
	}

	// Block by IP: both endpoints affected.
	n.Unblock(srv1)
	n.BlockIP("10.0.0.1")
	if o := n.Connect(client, srv2, []byte("x"), false, time.Time{}); !o.Blocked {
		t.Error("IP-blocked flow not blocked")
	}
	n.Unblock(srv2)
	if o := n.Connect(client, srv2, []byte("x"), false, time.Time{}); o.Blocked {
		t.Error("unblock by endpoint did not clear the IP rule")
	}
	if n.Flows != 4 {
		t.Errorf("Flows = %d, want 4 (blocked attempts count)", n.Flows)
	}
}
