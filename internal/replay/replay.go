// Package replay implements the replay-defense mechanisms discussed in
// §5.3 and §7.2 of the paper:
//
//   - NonceFilter: the Shadowsocks-libev approach — remember the IV/salt of
//     every connection in a Bloom filter. Effective against immediate
//     replays but asymmetric against a patient censor: the paper observed
//     replays delayed up to 570 hours, while a bounded-memory filter (or a
//     server restart) eventually forgets nonces.
//   - TimedFilter: the VMess-style fix the paper recommends — authenticate
//     a client timestamp and only accept connections whose timestamp is
//     within an expiry window, remembering nonces only within that window.
//
// Both implement the Filter interface so servers can be configured with
// either (or none, like OutlineVPN v1.0.6–v1.0.8).
package replay

import (
	"sync"
	"time"

	"sslab/internal/bloom"
)

// Filter decides whether a connection's nonce (IV or salt) is a replay.
type Filter interface {
	// Replay reports whether the nonce has been seen before (or is
	// otherwise unacceptable, e.g. expired), and records it if fresh.
	// now is the server's current time.
	Replay(nonce []byte, now time.Time) bool
}

// None is a Filter that never detects replays — the behaviour of
// implementations without a replay defense (OutlineVPN v1.0.6–v1.0.8).
type None struct{}

// Replay implements Filter; it always reports fresh.
func (None) Replay([]byte, time.Time) bool { return false }

// NonceFilter remembers nonces in a ping-pong Bloom filter, like
// Shadowsocks-libev's ppbloom.
type NonceFilter struct {
	mu sync.Mutex
	pp *bloom.PingPong
}

// NewNonceFilter creates a nonce filter holding about capacity nonces per
// generation.
func NewNonceFilter(capacity int) *NonceFilter {
	return &NonceFilter{pp: bloom.NewPingPong(capacity, 1e-6)}
}

// Replay implements Filter.
func (f *NonceFilter) Replay(nonce []byte, _ time.Time) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.pp.TestAndAdd(nonce)
}

// Forget simulates a server restart: all remembered nonces are lost. The
// paper points out a purely nonce-based filter is ineffective against
// replays that span a restart.
func (f *NonceFilter) Forget() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.pp = bloom.NewPingPong(f.pp.Len()+1024, 1e-6)
}

// TimedFilter accepts a connection only if its embedded timestamp is within
// Window of the server clock, and its nonce has not been seen within the
// window. Nonces older than the window are pruned, so memory is bounded by
// the connection rate times the window — and a replay delayed past the
// window is rejected even across restarts, inverting the asymmetry.
type TimedFilter struct {
	Window time.Duration

	mu     sync.Mutex
	seen   map[string]time.Time
	lastGC time.Time
}

// NewTimedFilter creates a timestamp+nonce filter with the given window.
func NewTimedFilter(window time.Duration) *TimedFilter {
	return &TimedFilter{Window: window, seen: make(map[string]time.Time)}
}

// ReplayAt checks a connection carrying a client timestamp ts.
func (f *TimedFilter) ReplayAt(nonce []byte, ts, now time.Time) bool {
	if ts.Before(now.Add(-f.Window)) || ts.After(now.Add(f.Window)) {
		return true // expired or from the future: treat as replay
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.gc(now)
	k := string(nonce)
	if _, ok := f.seen[k]; ok {
		return true
	}
	f.seen[k] = now
	return false
}

// Replay implements Filter assuming the connection's timestamp equals now
// (i.e. a well-behaved client); replays arriving later than Window are
// rejected by the pruning of seen plus the timestamp check in ReplayAt.
func (f *TimedFilter) Replay(nonce []byte, now time.Time) bool {
	return f.ReplayAt(nonce, now, now)
}

// gc drops nonces outside the window. Called with mu held.
func (f *TimedFilter) gc(now time.Time) {
	if now.Sub(f.lastGC) < f.Window/4 {
		return
	}
	f.lastGC = now
	cutoff := now.Add(-2 * f.Window)
	for k, t := range f.seen {
		if t.Before(cutoff) {
			delete(f.seen, k)
		}
	}
}

// Size returns the number of remembered nonces (for tests and ablations).
func (f *TimedFilter) Size() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.seen)
}
