package replay

import (
	"fmt"
	"testing"
	"time"
)

var t0 = time.Date(2019, 9, 29, 0, 0, 0, 0, time.UTC) // start of the paper's experiments

func TestNoneNeverDetects(t *testing.T) {
	var f None
	if f.Replay([]byte("iv"), t0) || f.Replay([]byte("iv"), t0) {
		t.Error("None reported a replay")
	}
}

func TestNonceFilterDetectsImmediateReplay(t *testing.T) {
	f := NewNonceFilter(1000)
	if f.Replay([]byte("salt-1"), t0) {
		t.Error("fresh nonce flagged")
	}
	if !f.Replay([]byte("salt-1"), t0.Add(time.Second)) {
		t.Error("identical replay not flagged")
	}
}

// TestNonceFilterForgetsAcrossRestart demonstrates the weakness §7.2
// describes: a replay spanning a restart defeats a nonce-only filter.
func TestNonceFilterForgetsAcrossRestart(t *testing.T) {
	f := NewNonceFilter(1000)
	f.Replay([]byte("recorded-by-gfw"), t0)
	f.Forget() // server restart
	if f.Replay([]byte("recorded-by-gfw"), t0.Add(570*time.Hour)) {
		t.Error("nonce filter remembered across restart; expected it to forget")
	}
}

func TestTimedFilterRejectsReplayWithinWindow(t *testing.T) {
	f := NewTimedFilter(2 * time.Minute)
	if f.Replay([]byte("n1"), t0) {
		t.Error("fresh connection rejected")
	}
	if !f.Replay([]byte("n1"), t0.Add(30*time.Second)) {
		t.Error("in-window replay accepted")
	}
}

// TestTimedFilterRejectsDelayedReplay is the key inversion: a replay of an
// old payload carries an old timestamp and is rejected no matter what the
// nonce table remembers — even the 569.55-hour maximum delay of Figure 7.
func TestTimedFilterRejectsDelayedReplay(t *testing.T) {
	f := NewTimedFilter(2 * time.Minute)
	f.ReplayAt([]byte("n1"), t0, t0)
	for _, delay := range []time.Duration{
		3 * time.Minute, time.Hour, 15 * time.Hour, 570 * time.Hour,
	} {
		now := t0.Add(delay)
		if !f.ReplayAt([]byte("n1"), t0, now) {
			t.Errorf("replay with %v delay accepted", delay)
		}
	}
}

// TestTimedFilterSurvivesRestart verifies a fresh TimedFilter (empty nonce
// table, as after a restart) still rejects old-timestamp replays.
func TestTimedFilterSurvivesRestart(t *testing.T) {
	f := NewTimedFilter(2 * time.Minute)
	now := t0.Add(24 * time.Hour)
	if !f.ReplayAt([]byte("recorded-long-ago"), t0, now) {
		t.Error("restarted timed filter accepted a day-old replay")
	}
}

func TestTimedFilterRejectsFutureTimestamps(t *testing.T) {
	f := NewTimedFilter(2 * time.Minute)
	if !f.ReplayAt([]byte("n"), t0.Add(10*time.Minute), t0) {
		t.Error("timestamp from the future accepted")
	}
}

// TestTimedFilterBoundedMemory verifies pruning keeps the table bounded.
func TestTimedFilterBoundedMemory(t *testing.T) {
	f := NewTimedFilter(time.Minute)
	now := t0
	for i := 0; i < 10000; i++ {
		now = now.Add(100 * time.Millisecond)
		f.ReplayAt([]byte(fmt.Sprintf("nonce-%d", i)), now, now)
	}
	// Window is 1 min = 600 connections at 10/s; gc keeps <= 2 windows
	// plus slack between collections.
	if f.Size() > 2500 {
		t.Errorf("timed filter retained %d nonces; pruning ineffective", f.Size())
	}
}

func TestTimedFilterDistinctNoncesAccepted(t *testing.T) {
	f := NewTimedFilter(time.Minute)
	for i := 0; i < 100; i++ {
		if f.Replay([]byte(fmt.Sprintf("nonce-%d", i)), t0.Add(time.Duration(i)*time.Second)) {
			t.Fatalf("distinct nonce %d rejected", i)
		}
	}
}
