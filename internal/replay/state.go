package replay

import (
	"bytes"
	"fmt"
	"sort"
	"time"

	"sslab/internal/bloom"
)

// State is the serializable state of any built-in replay Filter. Kind
// discriminates the concrete type; the remaining fields are used by
// the kinds that need them. Interfaces do not serialize, so snapshot
// layers capture a Filter into this flat struct and rebuild the
// concrete filter on restore.
type State struct {
	// Kind is "none", "nonce" (NonceFilter) or "timed" (TimedFilter).
	Kind string
	// PingPong is the nonce filter's Bloom pair (Kind "nonce").
	PingPong *bloom.PingPongState
	// Window, Seen and LastGC are the timed filter's state (Kind
	// "timed"); Seen is sorted by nonce for deterministic encoding.
	Window time.Duration
	Seen   []SeenNonce
	LastGC time.Time
}

// SeenNonce is one remembered nonce of a TimedFilter.
type SeenNonce struct {
	Nonce []byte
	At    time.Time
}

// CaptureState captures a built-in Filter's state. Unknown Filter
// implementations return an error — the caller's state cannot be
// round-tripped.
func CaptureState(f Filter) (State, error) {
	switch ft := f.(type) {
	case None:
		return State{Kind: "none"}, nil
	case *NonceFilter:
		ft.mu.Lock()
		defer ft.mu.Unlock()
		pp := ft.pp.State()
		return State{Kind: "nonce", PingPong: &pp}, nil
	case *TimedFilter:
		ft.mu.Lock()
		defer ft.mu.Unlock()
		st := State{Kind: "timed", Window: ft.Window, LastGC: ft.lastGC}
		for k, t := range ft.seen {
			st.Seen = append(st.Seen, SeenNonce{Nonce: []byte(k), At: t})
		}
		sort.Slice(st.Seen, func(i, j int) bool {
			return bytes.Compare(st.Seen[i].Nonce, st.Seen[j].Nonce) < 0
		})
		return st, nil
	default:
		return State{}, fmt.Errorf("replay: cannot capture filter type %T", f)
	}
}

// RestoreState reconstructs the concrete Filter a State captured.
func RestoreState(st State) (Filter, error) {
	switch st.Kind {
	case "none":
		return None{}, nil
	case "nonce":
		if st.PingPong == nil {
			return nil, fmt.Errorf("replay: nonce filter state without Bloom pair")
		}
		return &NonceFilter{pp: bloom.RestorePingPong(*st.PingPong)}, nil
	case "timed":
		f := &TimedFilter{Window: st.Window, seen: make(map[string]time.Time, len(st.Seen)), lastGC: st.LastGC}
		for _, s := range st.Seen {
			f.seen[string(s.Nonce)] = s.At
		}
		return f, nil
	default:
		return nil, fmt.Errorf("replay: unknown filter state kind %q", st.Kind)
	}
}
