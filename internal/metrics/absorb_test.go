package metrics

import (
	"math"
	"reflect"
	"testing"
)

func TestAbsorbCountersGaugesHistograms(t *testing.T) {
	mk := func(base int64) *Registry {
		r := New()
		r.Counter("c.flows").Add(10 * base)
		r.Gauge("g.blocked").Set(base)
		h := r.Histogram("h.lat", []float64{1, 10})
		h.Observe(float64(base))
		h.Observe(float64(base) * 20)
		return r
	}
	dst := New()
	if err := dst.Absorb(mk(1).Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := dst.Absorb(mk(3).Snapshot()); err != nil {
		t.Fatal(err)
	}
	if got := dst.Counter("c.flows").Value(); got != 40 {
		t.Fatalf("counter = %d, want 40", got)
	}
	if got := dst.Gauge("g.blocked").Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	s := dst.Snapshot()
	if len(s.Histograms) != 1 {
		t.Fatalf("histograms = %d, want 1", len(s.Histograms))
	}
	h := s.Histograms[0]
	if h.Count != 4 || h.Sum != 1+20+3+60 || h.Min != 1 || h.Max != 60 {
		t.Fatalf("histogram digest = %+v", h)
	}
	if !reflect.DeepEqual(h.Counts, []int64{1, 1, 2}) {
		t.Fatalf("histogram counts = %v", h.Counts)
	}
}

// TestAbsorbEqualsDirect: absorbing per-shard snapshots must equal one
// registry having observed everything — the invariant the fleet's
// WithMetrics option relies on.
func TestAbsorbEqualsDirect(t *testing.T) {
	direct := New()
	merged := New()
	for shard := 0; shard < 4; shard++ {
		part := New()
		for i := 0; i < 5; i++ {
			v := float64(shard*5 + i)
			direct.Counter("c").Inc()
			part.Counter("c").Inc()
			direct.Histogram("h", []float64{3, 9, 15}).Observe(v)
			part.Histogram("h", []float64{3, 9, 15}).Observe(v)
		}
		if err := merged.Absorb(part.Snapshot()); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(direct.Snapshot(), merged.Snapshot()) {
		t.Fatalf("absorbed snapshots diverge from direct observation:\n%v\nvs\n%v",
			direct.Snapshot(), merged.Snapshot())
	}
}

// TestAbsorbEmptyHistogram: an empty snapshot must not poison the
// destination's min/max water marks.
func TestAbsorbEmptyHistogram(t *testing.T) {
	src := New()
	src.Histogram("h", []float64{1})
	dst := New()
	dst.Histogram("h", []float64{1}).Observe(5)
	if err := dst.Absorb(src.Snapshot()); err != nil {
		t.Fatal(err)
	}
	h := dst.Snapshot().Histograms[0]
	if h.Count != 1 || h.Min != 5 || h.Max != 5 {
		t.Fatalf("digest after empty absorb = %+v", h)
	}
	// And absorbing into an empty destination keeps the infinities.
	fresh := New()
	if err := fresh.Absorb(src.Snapshot()); err != nil {
		t.Fatal(err)
	}
	h = fresh.Snapshot().Histograms[0]
	if h.Count != 0 || !math.IsInf(h.Min, 1) || !math.IsInf(h.Max, -1) {
		t.Fatalf("empty-into-empty digest = %+v", h)
	}
}

func TestAbsorbBoundsMismatch(t *testing.T) {
	src := New()
	src.Histogram("h", []float64{1, 2}).Observe(1)
	dst := New()
	dst.Histogram("h", []float64{1, 5})
	if err := dst.Absorb(src.Snapshot()); err == nil {
		t.Fatal("want error on mismatched bounds")
	}
	var nilReg *Registry
	if err := nilReg.Absorb(src.Snapshot()); err != nil {
		t.Fatalf("nil registry: %v", err)
	}
}
