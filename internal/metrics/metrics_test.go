package metrics

import (
	"bytes"
	"math"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("flows")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("flows") != c {
		t.Error("same name must return the same counter")
	}

	g := r.Gauge("pending")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Errorf("gauge = %d, want 5", got)
	}
	g.Max(3)
	if g.Value() != 5 {
		t.Error("Max must not lower the gauge")
	}
	g.Max(9)
	if g.Value() != 9 {
		t.Error("Max must raise the gauge")
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Error("nil counter must read 0")
	}
	g := r.Gauge("y")
	g.Set(3)
	g.Max(9)
	if g.Value() != 0 {
		t.Error("nil gauge must read 0")
	}
	h := r.Histogram("z", []float64{1})
	h.Observe(0.5)
	if h.Count() != 0 {
		t.Error("nil histogram must stay empty")
	}
	if s := r.Snapshot(); len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Error("nil registry snapshot must be empty")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("delay_s", []float64{1, 60, 900})
	for _, v := range []float64{0.3, 0.9, 1.0, 30, 899, 901, 1e6} {
		h.Observe(v)
	}
	s := r.Snapshot()
	if len(s.Histograms) != 1 {
		t.Fatalf("histograms = %d, want 1", len(s.Histograms))
	}
	hs := s.Histograms[0]
	// Inclusive upper bounds: 1.0 lands in the first bucket.
	want := []int64{3, 1, 1, 2}
	for i, c := range want {
		if hs.Counts[i] != c {
			t.Errorf("bucket %d = %d, want %d (counts %v)", i, hs.Counts[i], c, hs.Counts)
		}
	}
	if hs.Count != 7 {
		t.Errorf("count = %d, want 7", hs.Count)
	}
	if hs.Min != 0.3 || hs.Max != 1e6 {
		t.Errorf("min/max = %g/%g", hs.Min, hs.Max)
	}
	wantSum := 0.3 + 0.9 + 1.0 + 30 + 899 + 901 + 1e6
	if math.Abs(hs.Sum-wantSum) > 1e-9 {
		t.Errorf("sum = %g, want %g", hs.Sum, wantSum)
	}
}

// TestSnapshotDeterministic: two registries fed the same updates in
// different orders render identical snapshots — the property the
// sweep's byte-identity contract relies on.
func TestSnapshotDeterministic(t *testing.T) {
	build := func(order []string) string {
		r := New()
		for _, name := range order {
			r.Counter(name).Add(int64(len(name)))
		}
		r.Gauge("g").Set(3)
		r.Histogram("h", []float64{10, 100}).Observe(42)
		var buf bytes.Buffer
		if err := r.Snapshot().WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String() + r.Snapshot().String()
	}
	a := build([]string{"alpha", "beta", "gamma"})
	b := build([]string{"gamma", "alpha", "beta"})
	if a != b {
		t.Errorf("snapshot depends on registration order:\n%s\nvs\n%s", a, b)
	}
}

// TestConcurrentCounters: integer instruments stay exact under
// concurrent updates (the campaign worker-pool case).
func TestConcurrentCounters(t *testing.T) {
	r := New()
	c := r.Counter("n")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
}

func TestEmptyHistogramSnapshot(t *testing.T) {
	r := New()
	r.Histogram("empty", []float64{1})
	hs := r.Snapshot().Histograms[0]
	if !math.IsInf(hs.Min, 1) || !math.IsInf(hs.Max, -1) || hs.Count != 0 {
		t.Errorf("empty histogram snapshot: %+v", hs)
	}
}

// TestInstrumentAllocFree: pre-resolved instruments must not allocate
// per update — the hot-path contract.
func TestInstrumentAllocFree(t *testing.T) {
	r := New()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", []float64{1, 10})
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(4)
		h.Observe(3.3)
	}); n != 0 {
		t.Errorf("instrument updates allocate %v allocs/op, want 0", n)
	}
}
