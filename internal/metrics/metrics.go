// Package metrics is the repo's deterministic observability layer:
// counters, gauges and histograms with a snapshot API, designed to be
// safe inside the discrete-event simulator.
//
// Determinism rules (enforced by the detrand/simclock analyzers, whose
// scopes cover this package):
//
//   - No wall clock. The package never calls time.Now; anything
//     time-shaped that gets recorded (e.g. histogram observations of
//     latencies) must be derived from the simulator's virtual clock by
//     the caller.
//   - No randomness. Sampling decisions, if ever needed, belong to the
//     caller's seeded rng.
//   - Snapshots are sorted by name, so rendering a snapshot of a
//     single-threaded (simulator-side) registry is byte-stable across
//     runs. Counters and gauges stay deterministic under concurrency
//     too (integer addition commutes); histogram *sums* are float64 and
//     therefore only bit-stable when observed from one goroutine —
//     which is why merged sweep reports never embed snapshots and the
//     campaign layer restricts itself to counters.
//
// All instrument methods are nil-receiver-safe so call sites can be
// instrumented unconditionally and cost nothing when metrics are off;
// hot paths should resolve instruments once (at construction) rather
// than looking them up per operation.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64.
type Counter struct{ v atomic.Int64 }

// Inc adds 1. Safe on a nil receiver (no-op).
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. Safe on a nil receiver (no-op).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64 level (queue depth, pool size, bytes held).
type Gauge struct{ v atomic.Int64 }

// Set stores n. Safe on a nil receiver (no-op).
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adjusts the gauge by delta. Safe on a nil receiver (no-op).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Max raises the gauge to n if n is larger (a high-water mark).
// Safe on a nil receiver (no-op).
func (g *Gauge) Max(n int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current level (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed buckets with inclusive upper
// bounds, plus a +Inf overflow bucket, and tracks count/sum/min/max.
type Histogram struct {
	bounds []float64 // sorted inclusive upper bounds
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
	min    atomic.Uint64 // float64 bits
	max    atomic.Uint64 // float64 bits
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	h := &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
	h.min.Store(math.Float64bits(math.Inf(1)))
	h.max.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one value. Safe on a nil receiver (no-op).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	for {
		old := h.min.Load()
		if v >= math.Float64frombits(old) || h.min.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.max.Load()
		if v <= math.Float64frombits(old) || h.max.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Registry holds named instruments. The zero value is not usable; use
// New. A nil *Registry is safe: all lookups return nil instruments,
// whose methods are no-ops.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
// Returns nil (a no-op instrument) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
// Returns nil (a no-op instrument) on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use (later calls ignore bounds).
// Returns nil (a no-op instrument) on a nil registry.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// HistogramSnapshot is one histogram's state at snapshot time.
type HistogramSnapshot struct {
	Name   string    `json:"name"`
	Bounds []float64 `json:"bounds"` // inclusive upper bounds; last bucket is +Inf
	Counts []int64   `json:"counts"` // len(Bounds)+1
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Min    float64   `json:"min"` // +Inf when empty
	Max    float64   `json:"max"` // -Inf when empty
}

// Value is one counter or gauge reading.
type Value struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// Snapshot is a point-in-time, name-sorted view of a registry.
type Snapshot struct {
	Counters   []Value             `json:"counters,omitempty"`
	Gauges     []Value             `json:"gauges,omitempty"`
	Histograms []HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures the registry's current state, sorted by name.
// An empty snapshot is returned for a nil registry.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters = append(s.Counters, Value{name, c.Value()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, Value{name, g.Value()})
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{
			Name:   name,
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]int64, len(h.counts)),
			Count:  h.count.Load(),
			Sum:    math.Float64frombits(h.sum.Load()),
			Min:    math.Float64frombits(h.min.Load()),
			Max:    math.Float64frombits(h.max.Load()),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		s.Histograms = append(s.Histograms, hs)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// String renders the snapshot as an aligned text table.
func (s Snapshot) String() string {
	var b strings.Builder
	w := 0
	for _, v := range s.Counters {
		if len(v.Name) > w {
			w = len(v.Name)
		}
	}
	for _, v := range s.Gauges {
		if len(v.Name) > w {
			w = len(v.Name)
		}
	}
	for _, h := range s.Histograms {
		if len(h.Name) > w {
			w = len(h.Name)
		}
	}
	for _, v := range s.Counters {
		fmt.Fprintf(&b, "%-*s  %d\n", w, v.Name, v.Value)
	}
	for _, v := range s.Gauges {
		fmt.Fprintf(&b, "%-*s  %d (gauge)\n", w, v.Name, v.Value)
	}
	for _, h := range s.Histograms {
		if h.Count == 0 {
			fmt.Fprintf(&b, "%-*s  histogram: empty\n", w, h.Name)
			continue
		}
		fmt.Fprintf(&b, "%-*s  histogram: n=%d sum=%g min=%g max=%g\n",
			w, h.Name, h.Count, h.Sum, h.Min, h.Max)
	}
	return b.String()
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
