package metrics

import (
	"fmt"
	"math"
)

// Absorb folds a snapshot into the registry: counters and gauges add,
// histograms add bucket-wise (count, sum and the min/max water marks
// included). Instruments named by the snapshot are created on first
// use; a histogram that already exists must have the snapshot's bucket
// bounds. Safe on a nil registry (no-op).
//
// Absorb is how execution layers that run several isolated
// sub-simulations (the fleet's space shards, the arms race's chains)
// expose one combined registry: each sub-run owns a private registry,
// and the caller absorbs the finished snapshots in a deterministic
// order. Adding gauges makes level gauges (blocked users, bytes held)
// cross-shard totals; high-water marks become sums of per-shard peaks,
// which bounds — but no longer equals — a global peak.
func (r *Registry) Absorb(s Snapshot) error {
	if r == nil {
		return nil
	}
	for _, v := range s.Counters {
		r.Counter(v.Name).Add(v.Value)
	}
	for _, v := range s.Gauges {
		r.Gauge(v.Name).Add(v.Value)
	}
	for _, hs := range s.Histograms {
		if err := r.Histogram(hs.Name, hs.Bounds).absorb(hs); err != nil {
			return fmt.Errorf("metrics: absorbing histogram %q: %v", hs.Name, err)
		}
	}
	return nil
}

// absorb adds one histogram snapshot into h. The bounds must match —
// bucket counts are positional — and an empty snapshot (min +Inf,
// max -Inf) leaves the water marks untouched.
func (h *Histogram) absorb(hs HistogramSnapshot) error {
	if len(hs.Bounds) != len(h.bounds) || len(hs.Counts) != len(h.counts) {
		return fmt.Errorf("bucket shape %d/%d, want %d/%d",
			len(hs.Bounds), len(hs.Counts), len(h.bounds), len(h.counts))
	}
	for i, b := range h.bounds {
		if hs.Bounds[i] != b {
			return fmt.Errorf("bound[%d] = %v, want %v", i, hs.Bounds[i], b)
		}
	}
	for i, c := range hs.Counts {
		h.counts[i].Add(c)
	}
	h.count.Add(hs.Count)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+hs.Sum)) {
			break
		}
	}
	for {
		old := h.min.Load()
		if hs.Min >= math.Float64frombits(old) || h.min.CompareAndSwap(old, math.Float64bits(hs.Min)) {
			break
		}
	}
	for {
		old := h.max.Load()
		if hs.Max <= math.Float64frombits(old) || h.max.CompareAndSwap(old, math.Float64bits(hs.Max)) {
			break
		}
	}
	return nil
}
