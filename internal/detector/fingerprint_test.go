package detector

import (
	"math/rand"
	"testing"
)

// TestFingerprintShortPayloads: every payload under 8 bytes takes the
// per-byte path; distinct short payloads (including length-only
// differences) must not collide across the whole space of 1-byte and
// common 2-byte inputs.
func TestFingerprintShortPayloads(t *testing.T) {
	seen := map[uint64][]byte{}
	check := func(p []byte) {
		t.Helper()
		fp := Fingerprint(p)
		if prev, dup := seen[fp]; dup {
			t.Fatalf("collision: % x and % x -> %#x", prev, p, fp)
		}
		seen[fp] = append([]byte(nil), p...)
	}
	check(nil)
	for b := 0; b < 256; b++ {
		check([]byte{byte(b)})
	}
	for b := 0; b < 256; b++ {
		check([]byte{0, byte(b)})
		check([]byte{byte(b), 0, 0})
	}
}

// TestFingerprintLengthSensitive: two payloads sharing a prefix and the
// final word but differing in length must fingerprint differently (the
// length is mixed in first).
func TestFingerprintLengthSensitive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := make([]byte, 1000)
	for i := range p {
		p[i] = byte(rng.Intn(256))
	}
	fps := map[uint64]int{}
	for n := 8; n <= 1000; n++ {
		fp := Fingerprint(p[:n])
		if prev, dup := fps[fp]; dup {
			t.Fatalf("lengths %d and %d collide", prev, n)
		}
		fps[fp] = n
	}
}

// TestScratchFingerprintMemoized: the scratch-level memo must equal the
// package function, be computed once per reset, and be invalidated by
// reset like the entropy memo.
func TestScratchFingerprintMemoized(t *testing.T) {
	var sc Scratch
	a := []byte("the first payload of flow A, long enough to sample")
	b := []byte("flow B's very different first payload")

	sc.reset(a)
	if got, want := sc.Fingerprint(), Fingerprint(a); got != want {
		t.Fatalf("scratch fingerprint %#x != package fingerprint %#x", got, want)
	}
	first := sc.Fingerprint()
	if first != Fingerprint(a) || !sc.fpOK {
		t.Fatal("repeated call recomputed or lost the memo")
	}
	sc.reset(b)
	if sc.fpOK {
		t.Fatal("reset did not invalidate the fingerprint memo")
	}
	if got, want := sc.Fingerprint(), Fingerprint(b); got != want {
		t.Fatalf("after reset: scratch %#x != package %#x", got, want)
	}
}
