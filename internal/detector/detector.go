// Package detector is the censor's pluggable passive-analysis layer: a
// registry of composable per-protocol detector stages and a chain
// evaluator that reduces their verdicts to one flow-level decision.
//
// The paper's censor hard-codes a single pipeline (TLS exemption →
// length/entropy heuristics → active probing), but real middlebox
// deployments detect many protocol families at once. This package
// factors the per-protocol judgment out of internal/gfw: each family is
// a Stage that inspects a flow's first payload and returns a verdict
// with a confidence, and internal/gfw evaluates a configured Chain of
// stages, treating the winning confidence as the probability of
// recording the flow for active probing.
//
// Chain semantics are commutative by construction, so a chain's verdict
// does not depend on the order stages were registered or listed (pinned
// by TestChainOrderIndependence):
//
//   - any Exempt verdict vetoes the whole flow (whitelisting);
//   - otherwise the result is the Suspect verdict with the highest
//     confidence, ties broken toward the lexically smallest stage name;
//   - no Suspect verdicts means the flow passes.
//
// Stages run on the censor's per-flow hot path and must not allocate:
// anything a stage needs beyond the flow itself lives in the Scratch
// the chain shares across its stages, which also memoizes the Shannon
// entropy of the first payload so at most one entropy pass happens per
// flow no matter how many stages consult it.
package detector

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"sslab/internal/entropy"
	"sslab/internal/netsim"
)

// Verdict is a stage's judgment of one flow.
type Verdict uint8

const (
	// Pass: the stage has no opinion about this flow.
	Pass Verdict = iota
	// Exempt: the flow is positively identified as traffic the censor
	// must not probe (e.g. TLS under a whitelist policy); it vetoes any
	// Suspect verdict from other stages.
	Exempt
	// Suspect: the flow matches the stage's protocol fingerprint with
	// the result's confidence.
	Suspect
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case Pass:
		return "pass"
	case Exempt:
		return "exempt"
	case Suspect:
		return "suspect"
	default:
		return fmt.Sprintf("verdict(%d)", uint8(v))
	}
}

// Result is a stage's verdict plus, for Suspect, the probability in
// (0, 1] that the censor acts on the flow (records it for replay-based
// active probing). The zero Result is Pass.
type Result struct {
	Verdict    Verdict
	Confidence float64
}

// Stage is one protocol family's passive detector. Observe inspects a
// single flow (its first payload, direction metadata) and judges it.
// Implementations must be deterministic, must not retain f or the
// payload, and must not allocate — per-flow working state belongs in
// the shared Scratch.
type Stage interface {
	// Name returns the stage's canonical registry name.
	Name() string
	// Observe judges one flow. sc is the chain's shared scratch; use
	// sc.Entropy() instead of computing Shannon entropy directly so the
	// pass is shared between stages.
	Observe(f *netsim.Flow, sc *Scratch) Result
}

// Params carries the tuning a chain hands to every stage factory. The
// zero value selects paper-calibrated defaults.
type Params struct {
	// Base scales the Shadowsocks stage's recording rate (the censor's
	// sampling budget; gfw.Config.ReplayBase). Default 0.04.
	Base float64
	// DisableLength / DisableEntropy are the Shadowsocks stage's
	// feature-ablation switches.
	DisableLength  bool
	DisableEntropy bool
}

func (p Params) withDefaults() Params {
	if p.Base == 0 {
		p.Base = 0.04
	}
	return p
}

// Scratch is the per-flow working state a chain shares across its
// stages. One Scratch lives inside each Chain and is reset per flow, so
// stage evaluation allocates nothing.
type Scratch struct {
	payload []byte
	ent     float64
	entOK   bool
	fp      uint64
	fpOK    bool
}

// reset points the scratch at a new flow's first payload.
func (sc *Scratch) reset(payload []byte) {
	sc.payload = payload
	sc.entOK = false
	sc.fpOK = false
}

// Entropy returns the per-byte Shannon entropy of the flow's first
// payload, computing it at most once per flow however many stages ask.
//
//sslab:hotpath
func (sc *Scratch) Entropy() float64 {
	if !sc.entOK {
		sc.ent = entropy.Shannon(sc.payload)
		sc.entOK = true
	}
	return sc.ent
}

// Fingerprint returns the 64-bit payload fingerprint (see the package
// Fingerprint function), computing it at most once per flow however
// many stages — or the censor's verdict cache — ask.
//
//sslab:hotpath
func (sc *Scratch) Fingerprint() uint64 {
	if !sc.fpOK {
		sc.fp = Fingerprint(sc.payload)
		sc.fpOK = true
	}
	return sc.fp
}

// fpMix is the SplitMix64 multiplicative constant; one multiply plus a
// shift-xor is enough diffusion for a cache key that is verified by a
// full comparison anyway. fpMix2 (the SplitMix64 finalizer constant)
// seeds the second accumulator lane so the lanes never start equal.
const (
	fpMix  = 0x9e3779b97f4a7c15
	fpMix2 = 0x94d049bb133111eb
)

// Fingerprint reduces a first payload to a cheap 64-bit key for the
// censor's verdict-cache tier. It must be far cheaper than the chain
// walk it lets the censor skip, so it samples: the length, up to 32
// 8-byte words at a fixed stride, and always the final 8 bytes (short
// payloads hash every byte). Distinct payloads may in principle
// collide, but a cache hit only substitutes one deterministic chain
// verdict for another when the full 64-bit fingerprint, server
// endpoint and set index all agree — a 2⁻⁶⁴-scale event the
// cache-equivalence suite bounds empirically.
//
//sslab:hotpath
func Fingerprint(p []byte) uint64 {
	n := len(p)
	h := (uint64(n) + 1) * fpMix
	if n >= 8 {
		step := 8
		if n > 256 {
			// Sample ≈32 words: round the stride up to the next multiple
			// of 8 so reads stay aligned to the slice start.
			step = (n/32 + 7) &^ 7
		}
		// Two independent accumulator lanes over alternating sampled
		// words: the xor→mul→shift chain is the latency bottleneck, and
		// splitting it lets the CPU retire two words per chain step.
		// The sampled offsets (0, step, 2·step, … plus the final word)
		// are identical to a single-lane walk.
		h2 := (h ^ fpMix2) * fpMix
		i := 0
		for ; i+step+8 <= n; i += 2 * step {
			h = (h ^ binary.LittleEndian.Uint64(p[i:])) * fpMix
			h ^= h >> 29
			h2 = (h2 ^ binary.LittleEndian.Uint64(p[i+step:])) * fpMix
			h2 ^= h2 >> 29
		}
		if i+8 <= n {
			h = (h ^ binary.LittleEndian.Uint64(p[i:])) * fpMix
			h ^= h >> 29
		}
		h = (h ^ h2 ^ binary.LittleEndian.Uint64(p[n-8:])) * fpMix
	} else {
		for _, b := range p {
			h = (h ^ uint64(b)) * fpMix
		}
	}
	h ^= h >> 32
	return h
}

// Factory builds one configured stage instance.
type Factory func(Params) Stage

// factories is the stage registry; registered at init time, read-only
// afterwards. registered mirrors its keys in sorted order so listing
// never iterates the map.
var (
	factories  = map[string]Factory{}
	registered []string
)

// register adds a stage factory under its canonical name. Called from
// init functions only.
func register(name string, f Factory) {
	if _, dup := factories[name]; dup {
		panic("detector: duplicate stage " + name)
	}
	factories[name] = f
	registered = append(registered, name)
	sort.Strings(registered)
}

// aliases maps accepted shorthand names to canonical stage names.
var aliases = map[string]string{
	"ss":   StageShadowsocks,
	"tls":  StageTLSExempt,
	"ovpn": StageOpenVPN,
	"vpn":  StageOpenVPN,
	"fep":  StageFullyEncrypted,
	"obfs": StageFullyEncrypted,
}

// Canonical resolves a stage name or alias to its canonical registry
// name; unknown names pass through unchanged (NewChain rejects them
// with the full known-name list).
func Canonical(name string) string {
	if c, ok := aliases[name]; ok {
		return c
	}
	return name
}

// Names returns the canonical names of all registered stages, sorted.
func Names() []string {
	return append([]string(nil), registered...)
}

// ValidateNames checks that every entry of names (after alias
// resolution) is a registered stage and that no stage repeats.
func ValidateNames(names []string) error {
	seen := map[string]bool{}
	for _, n := range names {
		c := Canonical(n)
		if _, ok := factories[c]; !ok {
			return fmt.Errorf("detector: unknown stage %q (known: %s)", n, strings.Join(Names(), ", "))
		}
		if seen[c] {
			return fmt.Errorf("detector: stage %q listed twice", c)
		}
		seen[c] = true
	}
	return nil
}

// Chain is an ordered list of configured stages sharing one Scratch.
// Construct with NewChain; a Chain is not safe for concurrent use (the
// scratch is shared), matching the single-threaded simulator.
type Chain struct {
	stages  []Stage
	names   []string
	scratch Scratch
}

// NewChain builds a chain from stage names or aliases. The list must be
// non-empty and free of duplicates after alias resolution.
func NewChain(names []string, p Params) (*Chain, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("detector: empty chain")
	}
	if err := ValidateNames(names); err != nil {
		return nil, err
	}
	p = p.withDefaults()
	c := &Chain{
		stages: make([]Stage, len(names)),
		names:  make([]string, len(names)),
	}
	for i, n := range names {
		canon := Canonical(n)
		c.stages[i] = factories[canon](p)
		c.names[i] = canon
	}
	return c, nil
}

// MustChain is NewChain panicking on error, for wiring known-good
// configurations.
func MustChain(names []string, p Params) *Chain {
	c, err := NewChain(names, p)
	if err != nil {
		panic(err)
	}
	return c
}

// Names returns the chain's canonical stage names in evaluation order.
func (c *Chain) Names() []string {
	return append([]string(nil), c.names...)
}

// Len returns the number of stages.
func (c *Chain) Len() int { return len(c.stages) }

// Observe evaluates every stage against the flow and combines their
// verdicts: Exempt vetoes everything, otherwise the highest-confidence
// Suspect wins with ties broken toward the lexically smallest stage
// name. It returns the index of the deciding stage (-1 when every stage
// passed) and the combined result. The combine rule is commutative, so
// the result does not depend on stage order; the veto may short-circuit
// because later stages cannot change an Exempt outcome.
//
//sslab:hotpath
func (c *Chain) Observe(f *netsim.Flow) (int, Result) {
	c.scratch.reset(f.FirstPayload)
	best := Result{}
	bestIdx := -1
	for i, st := range c.stages {
		r := st.Observe(f, &c.scratch)
		switch r.Verdict {
		case Exempt:
			return i, Result{Verdict: Exempt}
		case Suspect:
			if bestIdx < 0 || r.Confidence > best.Confidence ||
				(r.Confidence == best.Confidence && c.names[i] < c.names[bestIdx]) {
				best, bestIdx = r, i
			}
		}
	}
	return bestIdx, best
}
