package detector

import (
	"sslab/internal/defense"
	"sslab/internal/netsim"
)

// The fully-encrypted stage models the censor heuristic Winter &
// Lindskog reverse-engineered for Tor bridges and obfs transports ("How
// the Great Firewall of China is Blocking Tor", FOCI 2012) and that the
// GFW later deployed against fully encrypted protocols at large: a flow
// whose first packet carries no recognizable protocol structure — not
// TLS-framed, not leading with printable application text — yet is long
// and indistinguishable from random bytes is flagged as a probable
// circumvention transport and handed to active probing. obfs2-era
// transports respond to replayed or malformed handshakes and get
// confirmed; obfs4-style probe-silent transports time every probe out
// and survive, exactly the arms race the armsrace experiment measures.

// StageFullyEncrypted names the fully-encrypted-transport stage.
const StageFullyEncrypted = "fullyencrypted"

func init() {
	register(StageFullyEncrypted, func(Params) Stage { return fepStage{} })
}

const (
	// fepMinLen is the shortest first payload the stage considers: below
	// it the entropy estimate is too coarse to separate random bytes
	// from binary protocols, and real deployments exempt small packets.
	fepMinLen = 160
	// fepMinEntropy is the per-byte Shannon entropy floor: a fepMinLen
	// payload of uniformly random bytes measures ≈6.8–7.0 bits/byte,
	// while TLS ClientHellos sit near 5–6 and plaintext lower still.
	fepMinEntropy = 6.5
	// fepMaxEntropy is where the confidence scale saturates (long
	// uniformly random payloads approach 7.8–8.0 bits/byte).
	fepMaxEntropy = 7.8
	// fepRate is the action rate at saturation — like the Shadowsocks
	// stage's base rate it models the censor sampling flagged flows for
	// active confirmation, not certainty about the fingerprint.
	fepRate = 0.15
)

// fepStage flags long, structureless, maximum-entropy first payloads.
type fepStage struct{}

// Name implements Stage.
func (fepStage) Name() string { return StageFullyEncrypted }

// Observe implements Stage.
//
//sslab:hotpath
func (fepStage) Observe(f *netsim.Flow, sc *Scratch) Result {
	p := f.FirstPayload
	if len(p) < fepMinLen {
		return Result{}
	}
	// Structured traffic is exempt: TLS record framing, or an
	// all-printable prefix the way HTTP methods and headers lead.
	if defense.IsTLSFramed(p) {
		return Result{}
	}
	printable := true
	for _, b := range p[:6] {
		if b < 0x20 || b > 0x7e {
			printable = false
			break
		}
	}
	if printable {
		return Result{}
	}
	h := sc.Entropy()
	if h < fepMinEntropy {
		return Result{}
	}
	frac := (h - fepMinEntropy) / (fepMaxEntropy - fepMinEntropy)
	if frac > 1 {
		frac = 1
	}
	return Result{Verdict: Suspect, Confidence: fepRate * (0.5 + 0.5*frac)}
}
