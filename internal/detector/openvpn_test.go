package detector

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestParseClientResetValid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, auth := range []bool{false, true} {
		p := buildReset(rng, auth)
		r, ok := ParseClientReset(p)
		if !ok {
			t.Fatalf("auth=%v: well-formed reset rejected", auth)
		}
		if r.Op != OpControlHardResetClientV2 {
			t.Errorf("auth=%v: op = %d, want %d", auth, r.Op, OpControlHardResetClientV2)
		}
		if r.KeyID != 0 {
			t.Errorf("auth=%v: key ID = %d, want 0", auth, r.KeyID)
		}
		if r.TLSAuth != auth {
			t.Errorf("auth=%v: TLSAuth = %v", auth, r.TLSAuth)
		}
		if !bytes.Equal(r.Session[:], p[3:11]) {
			t.Errorf("auth=%v: session ID not extracted", auth)
		}
	}

	// V1 and V3 opcodes also parse.
	for _, op := range []byte{OpControlHardResetClientV1, OpControlHardResetClientV3} {
		p := buildReset(rng, false)
		p[2] = op << 3
		if _, ok := ParseClientReset(p); !ok {
			t.Errorf("opcode %d rejected", op)
		}
	}
}

func TestParseClientResetRejects(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	base := buildReset(rng, false)

	mutate := func(f func(p []byte)) []byte {
		p := append([]byte(nil), base...)
		f(p)
		return p
	}
	cases := map[string][]byte{
		"empty":            nil,
		"short":            base[:10],
		"long":             append(append([]byte(nil), base...), 0),
		"bad length":       mutate(func(p []byte) { p[1]++ }),
		"server opcode":    mutate(func(p []byte) { p[2] = 8 << 3 }), // HARD_RESET_SERVER_V2
		"ack opcode":       mutate(func(p []byte) { p[2] = OpAckV1 << 3 }),
		"nonzero key id":   mutate(func(p []byte) { p[2] |= 0x01 }),
		"nonempty ack":     mutate(func(p []byte) { p[11] = 1 }),
		"truncated to 43":  buildReset(rng, true)[:43],
		"auth ack nonzero": func() []byte { p := buildReset(rng, true); p[39] = 2; return p }(),
	}
	for name, p := range cases {
		if _, ok := ParseClientReset(p); ok {
			t.Errorf("%s: accepted", name)
		}
	}
}

// FuzzParseClientReset: the parser must never panic, and an accepted
// packet must satisfy the documented invariants (exact framing, client
// hard-reset opcode, key ID 0, empty ACK array).
func FuzzParseClientReset(f *testing.F) {
	rng := rand.New(rand.NewSource(3))
	f.Add([]byte(nil))
	f.Add(buildReset(rng, false))
	f.Add(buildReset(rng, true))
	f.Add(bytes.Repeat([]byte{0x38}, resetPlainLen))
	f.Fuzz(func(t *testing.T, p []byte) {
		r, ok := ParseClientReset(p)
		if !ok {
			return
		}
		if len(p) != resetPlainLen && len(p) != resetAuthLen {
			t.Fatalf("accepted length %d", len(p))
		}
		if int(p[0])<<8|int(p[1]) != len(p)-2 {
			t.Fatal("accepted mismatched length prefix")
		}
		switch r.Op {
		case OpControlHardResetClientV1, OpControlHardResetClientV2, OpControlHardResetClientV3:
		default:
			t.Fatalf("accepted opcode %d", r.Op)
		}
		if r.KeyID != 0 {
			t.Fatalf("accepted key ID %d", r.KeyID)
		}
		if r.TLSAuth != (len(p) == resetAuthLen) {
			t.Fatal("TLSAuth flag does not match layout")
		}
	})
}
