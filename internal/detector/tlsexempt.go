package detector

import (
	"sslab/internal/defense"
	"sslab/internal/netsim"
)

// StageTLSExempt names the TLS-whitelist stage.
const StageTLSExempt = "tlsexempt"

func init() {
	register(StageTLSExempt, func(Params) Stage { return tlsStage{} })
}

// tlsStage models a censor that exempts TLS-framed flows from every
// other detector to avoid mass-probing the web — the conjecture the
// FPStudy motivates and the mechanism application-fronting tools (§8)
// rely on. It maps gfw.Config.TLSWhitelist onto the chain: an Exempt
// verdict vetoes any Suspect verdict from the protocol stages.
type tlsStage struct{}

// Name implements Stage.
func (tlsStage) Name() string { return StageTLSExempt }

// Observe implements Stage.
//
//sslab:hotpath
func (tlsStage) Observe(f *netsim.Flow, sc *Scratch) Result {
	if defense.IsTLSFramed(f.FirstPayload) {
		return Result{Verdict: Exempt, Confidence: 1}
	}
	return Result{}
}
