package detector

import (
	"sslab/internal/netsim"
)

// The OpenVPN stage models the first-stage opcode filter of Xue et al.,
// "OpenVPN Is Open to VPN Fingerprinting" (USENIX Security 2022): an
// on-path observer can flag OpenVPN-over-TCP flows from the very first
// payload, because the handshake leads with a fixed-format
// P_CONTROL_HARD_RESET_CLIENT control message — a 2-byte TCP length
// prefix, an opcode byte whose high 5 bits name the message type and
// low 3 bits the key ID (0 for the first handshake), an 8-byte random
// session ID, and an ACK array that is empty in the client's first
// packet (it has nothing to acknowledge yet). Flagged flows are then
// confirmed by active probing, which the simulator's fleet server hosts
// model per deployment (plain servers answer well-formed resets;
// tls-auth/tls-crypt servers drop probes whose HMAC fails).

// StageOpenVPN names the OpenVPN fingerprinting stage.
const StageOpenVPN = "openvpn"

// OpenVPN control-channel opcodes (the high 5 bits of the opcode byte).
const (
	OpControlHardResetClientV1 = 1
	OpAckV1                    = 5
	OpControlHardResetClientV2 = 7
	OpControlHardResetClientV3 = 10
)

// Reset packet layout over TCP, after the 2-byte length prefix and the
// opcode byte: an 8-byte session ID, then for tls-auth an HMAC envelope
// (20-byte HMAC-SHA1, 4-byte packet ID, 4-byte net time), then the
// 1-byte ACK count (0 in a client's first packet) and the 4-byte
// message packet ID.
const (
	resetPlainLen = 2 + 1 + 8 + 1 + 4
	resetAuthLen  = resetPlainLen + 20 + 4 + 4
)

// Reset is a parsed OpenVPN-over-TCP client reset — the first packet of
// an OpenVPN handshake.
type Reset struct {
	// Op is the opcode (one of the OpControlHardResetClient* values).
	Op byte
	// KeyID is the low 3 bits of the opcode byte (0 on a first handshake).
	KeyID byte
	// Session is the client's random 8-byte session ID.
	Session [8]byte
	// TLSAuth reports that the reset carries a tls-auth HMAC envelope.
	TLSAuth bool
}

// ParseClientReset parses p as the first TCP payload of an OpenVPN
// client handshake. It implements the Xue et al. filter: exact framing
// (the 2-byte length prefix must cover the rest of the packet and the
// total must match one of the two reset layouts), a client hard-reset
// opcode with key ID 0, and an empty ACK array. ok is false for
// anything else; the parse never allocates.
func ParseClientReset(p []byte) (r Reset, ok bool) {
	var ackOff int
	switch len(p) {
	case resetPlainLen:
		ackOff = 11
	case resetAuthLen:
		ackOff = 11 + 20 + 4 + 4
		r.TLSAuth = true
	default:
		return Reset{}, false
	}
	if int(p[0])<<8|int(p[1]) != len(p)-2 {
		return Reset{}, false
	}
	r.Op = p[2] >> 3
	r.KeyID = p[2] & 0x07
	if r.KeyID != 0 {
		return Reset{}, false
	}
	switch r.Op {
	case OpControlHardResetClientV1, OpControlHardResetClientV2, OpControlHardResetClientV3:
	default:
		return Reset{}, false
	}
	if p[ackOff] != 0 {
		// A client's first packet acknowledges nothing.
		return Reset{}, false
	}
	copy(r.Session[:], p[3:11])
	return r, true
}

func init() {
	register(StageOpenVPN, func(Params) Stage { return openvpnStage{} })
}

// openvpnConfidence is the per-flow action rate when the opcode filter
// matches. The fingerprint itself is near-deterministic (Xue et al.
// flag >85% of flows from the first packet); the rate below that
// certainty models the censor sampling matched flows for active
// confirmation rather than probing every single connection.
const openvpnConfidence = 0.30

// openvpnStage flags flows whose first payload is a well-formed OpenVPN
// client reset.
type openvpnStage struct{}

// Name implements Stage.
func (openvpnStage) Name() string { return StageOpenVPN }

// Observe implements Stage.
//
//sslab:hotpath
func (openvpnStage) Observe(f *netsim.Flow, sc *Scratch) Result {
	if _, ok := ParseClientReset(f.FirstPayload); !ok {
		return Result{}
	}
	return Result{Verdict: Suspect, Confidence: openvpnConfidence}
}
