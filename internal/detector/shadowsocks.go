package detector

import (
	"sslab/internal/netsim"
)

// The Shadowsocks stage is the paper's passive detector: §4.2
// establishes that the GFW identifies probable Shadowsocks connections
// from the length and entropy of the first data packet alone. The
// weights below are calibrated so the downstream statistics the paper
// measures emerge:
//
//   - Replays are essentially confined to trigger lengths 160–999 bytes
//     (Figure 8's support: min 161, max 999).
//   - Within 168–263 bytes, 72% of replayed lengths have remainder 9
//     mod 16; within 384–687, 96% have remainder 2; 264–383 mixes both
//     (Figure 8's stair-steps).
//   - A payload of entropy 7.2 is ≈4× as likely to be replayed as one of
//     entropy 3.0 (Figure 9).
//
// Remainders 9 and 2 mod 16 are exactly where common Shadowsocks first
// packets land: a stream-cipher IPv4 flight is IV+7 bytes and an AEAD
// flight is salt+2+16+16+payload, so the detector privileging those
// remainders is consistent with it having been trained on real traffic.

// StageShadowsocks names the length+entropy Shadowsocks stage.
const StageShadowsocks = "shadowsocks"

func init() {
	register(StageShadowsocks, func(p Params) Stage {
		return &ssStage{base: p.Base, ignoreLength: p.DisableLength, ignoreEntropy: p.DisableEntropy}
	})
}

// lengthWeight returns the relative probability that a first packet of
// length n is selected for recording/replay, before the entropy factor.
func lengthWeight(n int) float64 {
	if n < 160 || n > 999 {
		return 0
	}
	r := n % 16
	switch {
	case n < 264: // 160–263: remainder 9 dominates (72%)
		if r == 9 {
			return 1.0
		}
		return 0.026
	case n < 384: // 264–383: mix of remainder 9 (37%) and 2 (32%)
		switch r {
		case 9:
			return 1.0
		case 2:
			return 0.86
		default:
			return 0.06
		}
	default: // 384–999: remainder 2 dominates (96%)
		if r == 2 {
			return 1.0
		}
		return 0.0028
	}
}

// entropyWeight scales the replay probability with the payload's per-byte
// Shannon entropy (Figure 9: roughly linear, ≈4× from H=3.0 to H=7.2).
func entropyWeight(h float64) float64 {
	const (
		low   = 0.25 // weight at H <= 3.0
		high  = 1.0  // weight at H >= 7.2
		hLow  = 3.0
		hHigh = 7.2
	)
	switch {
	case h <= hLow:
		// Below 3 bits/byte the rate flattens but stays nonzero —
		// Figure 9 shows replays at all entropies.
		return low * (0.5 + 0.5*h/hLow)
	case h >= hHigh:
		return high
	default:
		return low + (high-low)*(h-hLow)/(hHigh-hLow)
	}
}

// ssStage evaluates first payloads with the length and entropy features.
type ssStage struct {
	base          float64 // overall recording rate scale
	ignoreLength  bool    // ablation: drop the length feature
	ignoreEntropy bool    // ablation: drop the entropy feature
}

// Name implements Stage.
func (s *ssStage) Name() string { return StageShadowsocks }

// Observe returns Suspect with the probability that the detector
// records this first payload for replay probing as confidence.
//
//sslab:hotpath
func (s *ssStage) Observe(f *netsim.Flow, sc *Scratch) Result {
	payload := f.FirstPayload
	lw := lengthWeight(len(payload))
	if s.ignoreLength {
		if len(payload) == 0 {
			lw = 0
		} else {
			lw = 0.1 // flat, length-independent
		}
	}
	if lw == 0 {
		// The length feature already vetoed this payload; skip the
		// entropy pass entirely. Most cross-firewall traffic lands here,
		// so the common case never touches the payload bytes.
		return Result{}
	}
	ew := 0.6 // the DisableEntropy ablation's flat factor
	if !s.ignoreEntropy {
		ew = entropyWeight(sc.Entropy())
	}
	p := s.base * lw * ew
	if p <= 0 {
		return Result{}
	}
	return Result{Verdict: Suspect, Confidence: p}
}
