package detector

import (
	"math/rand"
	"testing"

	"sslab/internal/entropy"
	"sslab/internal/netsim"
)

// --- Shadowsocks stage weights (moved from internal/gfw) -----------------

func TestLengthWeightSupport(t *testing.T) {
	for _, n := range []int{0, 1, 100, 159, 1000, 1500} {
		if w := lengthWeight(n); w != 0 {
			t.Errorf("lengthWeight(%d) = %v, want 0 (outside Figure 8 support)", n, w)
		}
	}
	if lengthWeight(160) == 0 || lengthWeight(999) == 0 {
		t.Error("in-support lengths have zero weight")
	}
}

func TestLengthWeightRemainders(t *testing.T) {
	// In 160–263 remainder 9 must dominate; in 384–687 remainder 2.
	if lengthWeight(169) <= lengthWeight(170) { // 169%16==9
		t.Error("remainder 9 not privileged in low band")
	}
	if lengthWeight(402) <= lengthWeight(403) { // 402%16==2
		t.Error("remainder 2 not privileged in high band")
	}
	// Middle band mixes both.
	if lengthWeight(265) < 0.5 || lengthWeight(274) < 0.5 { // 265%16=9, 274%16=2
		t.Error("middle band does not mix remainders 9 and 2")
	}
}

// TestEntropyWeightRatio pins Figure 9's headline: H=7.2 is ≈4× H=3.0.
func TestEntropyWeightRatio(t *testing.T) {
	ratio := entropyWeight(7.2) / entropyWeight(3.0)
	if ratio < 3.5 || ratio > 4.5 {
		t.Errorf("weight(7.2)/weight(3.0) = %.2f, want ≈4", ratio)
	}
	if entropyWeight(0) <= 0 {
		t.Error("zero-entropy payloads must remain replayable (Figure 9 shows all entropies)")
	}
	if entropyWeight(8) != 1 {
		t.Errorf("weight(8) = %v, want 1", entropyWeight(8))
	}
}

// TestShadowsocksStageConfidence: the stage's Suspect confidence must be
// exactly base × lengthWeight × entropyWeight — the recording
// probability internal/gfw's pre-refactor detector computed.
func TestShadowsocksStageConfidence(t *testing.T) {
	gen := entropy.NewGenerator(3)
	payload := gen.Random(409) // 409%16==9: top length weight
	var sc Scratch
	sc.reset(payload)
	st := factories[StageShadowsocks](Params{Base: 0.04}).(*ssStage)
	res := st.Observe(&netsim.Flow{FirstPayload: payload}, &sc)
	if res.Verdict != Suspect {
		t.Fatalf("verdict = %v, want suspect", res.Verdict)
	}
	want := 0.04 * lengthWeight(len(payload)) * entropyWeight(entropy.Shannon(payload))
	if res.Confidence != want {
		t.Errorf("confidence = %v, want %v", res.Confidence, want)
	}

	// Out-of-support lengths pass without touching the entropy scratch.
	sc.reset(payload[:80])
	if res := st.Observe(&netsim.Flow{FirstPayload: payload[:80]}, &sc); res.Verdict != Pass {
		t.Errorf("80-byte payload verdict = %v, want pass", res.Verdict)
	}
	if sc.entOK {
		t.Error("length-vetoed payload computed entropy anyway")
	}
}

// --- registry ------------------------------------------------------------

func TestRegistryAndAliases(t *testing.T) {
	want := []string{StageFullyEncrypted, StageOpenVPN, StageShadowsocks, StageTLSExempt}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
	for alias, canon := range map[string]string{
		"ss": StageShadowsocks, "tls": StageTLSExempt,
		"ovpn": StageOpenVPN, "vpn": StageOpenVPN,
		"fep": StageFullyEncrypted, "obfs": StageFullyEncrypted,
		StageShadowsocks: StageShadowsocks, "nonsense": "nonsense",
	} {
		if got := Canonical(alias); got != canon {
			t.Errorf("Canonical(%q) = %q, want %q", alias, got, canon)
		}
	}

	c := MustChain([]string{"tls", "ss", "ovpn", "fep"}, Params{})
	names := c.Names()
	wantChain := []string{StageTLSExempt, StageShadowsocks, StageOpenVPN, StageFullyEncrypted}
	for i := range wantChain {
		if names[i] != wantChain[i] {
			t.Fatalf("chain names = %v, want %v", names, wantChain)
		}
	}
}

func TestNewChainErrors(t *testing.T) {
	if _, err := NewChain(nil, Params{}); err == nil {
		t.Error("empty chain accepted")
	}
	if _, err := NewChain([]string{"shadowsock"}, Params{}); err == nil {
		t.Error("unknown stage accepted")
	}
	if _, err := NewChain([]string{"ss", StageShadowsocks}, Params{}); err == nil {
		t.Error("duplicate stage (via alias) accepted")
	}
	if err := ValidateNames([]string{"ss", "ovpn"}); err != nil {
		t.Errorf("ValidateNames rejected a valid chain: %v", err)
	}
}

// --- chain semantics -----------------------------------------------------

// corpus builds a payload set covering every stage's territory: SS-shaped
// random bytes, OpenVPN resets (both layouts), TLS hellos, printable
// HTTP, short and empty payloads, corrupted resets.
func corpus(t *testing.T) [][]byte {
	t.Helper()
	gen := entropy.NewGenerator(17)
	rng := rand.New(rand.NewSource(18))
	var out [][]byte
	out = append(out, nil, []byte{}, []byte("GET / HTTP/1.1\r\nHost: example.com\r\n\r\n"))
	for i := 0; i < 60; i++ {
		out = append(out, gen.Random(1+rng.Intn(1200)))        // random, all lengths
		out = append(out, gen.Payload(100+rng.Intn(800), 3.0)) // low entropy
		out = append(out, gen.Payload(160+rng.Intn(600), 5.5)) // hello-like entropy
	}
	// TLS-framed payloads.
	for i := 0; i < 20; i++ {
		body := 200 + rng.Intn(400)
		p := gen.Random(5 + body)
		p[0], p[1], p[2] = 0x16, 0x03, 0x03
		p[3], p[4] = byte(body>>8), byte(body)
		out = append(out, p)
	}
	// Well-formed and corrupted OpenVPN resets.
	for i := 0; i < 20; i++ {
		for _, auth := range []bool{false, true} {
			p := buildReset(rng, auth)
			out = append(out, p)
			bad := append([]byte(nil), p...)
			bad[rng.Intn(len(bad))] ^= 1 << uint(rng.Intn(8))
			out = append(out, bad)
		}
	}
	return out
}

// buildReset hand-assembles a client reset for tests.
func buildReset(rng *rand.Rand, auth bool) []byte {
	n := resetPlainLen
	if auth {
		n = resetAuthLen
	}
	p := make([]byte, n)
	p[0], p[1] = byte((n-2)>>8), byte(n-2)
	p[2] = OpControlHardResetClientV2 << 3
	rng.Read(p[3:11])
	if auth {
		rng.Read(p[11:31]) // HMAC
		p[34] = 1          // packet ID 1
		rng.Read(p[35:39]) // net time
	}
	return p
}

// permutations returns all orderings of names.
func permutations(names []string) [][]string {
	if len(names) <= 1 {
		return [][]string{append([]string(nil), names...)}
	}
	var out [][]string
	for i := range names {
		rest := make([]string, 0, len(names)-1)
		rest = append(rest, names[:i]...)
		rest = append(rest, names[i+1:]...)
		for _, perm := range permutations(rest) {
			out = append(out, append([]string{names[i]}, perm...))
		}
	}
	return out
}

// TestChainOrderIndependence: the combined verdict, confidence and
// winning stage name must be identical for every permutation of a chain
// — the combine rule (exempt veto, max confidence, name tie-break) is
// commutative by construction.
func TestChainOrderIndependence(t *testing.T) {
	stages := []string{StageTLSExempt, StageShadowsocks, StageOpenVPN, StageFullyEncrypted}
	perms := permutations(stages)
	chains := make([]*Chain, len(perms))
	for i, p := range perms {
		chains[i] = MustChain(p, Params{})
	}
	for pi, payload := range corpus(t) {
		f := &netsim.Flow{FirstPayload: payload}
		refIdx, refRes := chains[0].Observe(f)
		refName := ""
		if refIdx >= 0 {
			refName = chains[0].names[refIdx]
		}
		for ci := 1; ci < len(chains); ci++ {
			idx, res := chains[ci].Observe(f)
			name := ""
			if idx >= 0 {
				name = chains[ci].names[idx]
			}
			if res != refRes || name != refName {
				t.Fatalf("payload %d (len %d): order %v gave (%s, %+v); order %v gave (%s, %+v)",
					pi, len(payload), perms[0], refName, refRes, perms[ci], name, res)
			}
		}
	}
}

// TestChainExemptVeto: a TLS-framed payload that the Shadowsocks stage
// would flag is vetoed by the tlsexempt stage, in either order.
func TestChainExemptVeto(t *testing.T) {
	gen := entropy.NewGenerator(9)
	body := 404 // in-support length, high entropy
	p := gen.Random(5 + body)
	p[0], p[1], p[2] = 0x16, 0x03, 0x01
	p[3], p[4] = byte(body>>8), byte(body)
	f := &netsim.Flow{FirstPayload: p}

	bare := MustChain([]string{StageShadowsocks}, Params{})
	if _, res := bare.Observe(f); res.Verdict != Suspect {
		t.Fatal("test payload not suspect without the whitelist; corpus broken")
	}
	for _, names := range [][]string{
		{StageTLSExempt, StageShadowsocks},
		{StageShadowsocks, StageTLSExempt},
	} {
		c := MustChain(names, Params{})
		if _, res := c.Observe(f); res.Verdict != Exempt {
			t.Errorf("chain %v: verdict %v, want exempt", names, res.Verdict)
		}
	}
}

// TestChainWinnerAttribution: the returned index names the stage whose
// confidence decided the flow.
func TestChainWinnerAttribution(t *testing.T) {
	c := MustChain([]string{StageShadowsocks, StageOpenVPN, StageFullyEncrypted}, Params{})
	rng := rand.New(rand.NewSource(4))

	reset := buildReset(rng, false)
	idx, res := c.Observe(&netsim.Flow{FirstPayload: reset})
	if res.Verdict != Suspect || c.names[idx] != StageOpenVPN {
		t.Errorf("reset: winner %q (%+v), want openvpn", c.names[idx], res)
	}
	if res.Confidence != openvpnConfidence {
		t.Errorf("reset confidence %v, want %v", res.Confidence, openvpnConfidence)
	}

	// A long max-entropy payload is claimed by the fully-encrypted stage
	// (its rate beats the Shadowsocks stage's base rate).
	gen := entropy.NewGenerator(5)
	long := gen.Random(700)
	idx, res = c.Observe(&netsim.Flow{FirstPayload: long})
	if res.Verdict != Suspect || c.names[idx] != StageFullyEncrypted {
		t.Errorf("random 700B: winner %q (%+v), want fullyencrypted", c.names[idx], res)
	}
}

// TestChainObserveAllocs pins the hot path at zero allocations.
func TestChainObserveAllocs(t *testing.T) {
	c := MustChain([]string{StageShadowsocks, StageOpenVPN, StageFullyEncrypted}, Params{})
	gen := entropy.NewGenerator(6)
	payloads := [][]byte{
		gen.Random(409),
		gen.Random(700),
		buildReset(rand.New(rand.NewSource(7)), true),
		[]byte("GET / HTTP/1.1\r\n\r\n"),
	}
	f := &netsim.Flow{}
	i := 0
	if n := testing.AllocsPerRun(200, func() {
		f.FirstPayload = payloads[i%len(payloads)]
		i++
		c.Observe(f)
	}); n != 0 {
		t.Errorf("Chain.Observe allocates %.1f per op, want 0", n)
	}
}
