package seedfork

import "math/rand"

// CountedSource wraps the standard math/rand source with a draw
// counter, which is what makes an RNG stream position serializable:
// the (seed, draw count) pair identifies the stream state exactly, so
// an engine snapshot stores two integers instead of the source's
// internal state vector, and restore reconstructs the source from the
// seed and fast-forwards with Skip. Both Int63 and Uint64 advance the
// underlying generator by exactly one step, so one counter covers any
// mix of draw kinds.
type CountedSource struct {
	src rand.Source64
	n   uint64
}

// NewCountedSource returns a counted source seeded like
// rand.NewSource(seed).
func NewCountedSource(seed int64) *CountedSource {
	return &CountedSource{src: rand.NewSource(seed).(rand.Source64)}
}

// Int63 implements rand.Source.
func (c *CountedSource) Int63() int64 {
	c.n++
	return c.src.Int63()
}

// Uint64 implements rand.Source64.
func (c *CountedSource) Uint64() uint64 {
	c.n++
	return c.src.Uint64()
}

// Seed implements rand.Source, resetting the draw counter along with
// the underlying state.
func (c *CountedSource) Seed(seed int64) {
	c.src.Seed(seed)
	c.n = 0
}

// Draws returns how many values have been drawn since construction (or
// the last Seed).
func (c *CountedSource) Draws() uint64 { return c.n }

// Skip fast-forwards the stream by n draws, as if n values had been
// drawn and discarded. Restore uses it to move a freshly constructed
// source to a snapshotted position: Skip(saved - Draws()).
func (c *CountedSource) Skip(n uint64) {
	for i := uint64(0); i < n; i++ {
		c.src.Uint64()
	}
	c.n += n
}

// ByteReader reproduces math/rand.(*Rand).Read's buffered byte
// extraction with exported, serializable state. rand.Rand keeps the
// partially consumed 64-bit value of the last Read in unexported
// fields, which would make a mid-stream snapshot unrecoverable;
// components that need snapshotting route their Read calls through a
// ByteReader over their CountedSource instead. The algorithm is
// byte-for-byte the standard library's: little-endian bytes of
// successive Uint64 draws, with the leftover carried across calls.
type ByteReader struct {
	Val uint64
	Pos int8
}

// Read fills p from src exactly as math/rand.(*Rand).Read would
// (including the standard library's seven-bytes-per-draw consumption,
// inherited from the 63-bit Int63 era).
func (r *ByteReader) Read(src rand.Source64, p []byte) (int, error) {
	pos, val := r.Pos, r.Val
	for n := 0; n < len(p); n++ {
		if pos == 0 {
			val = src.Uint64()
			pos = 7
		}
		p[n] = byte(val)
		val >>= 8
		pos--
	}
	r.Pos, r.Val = pos, val
	return len(p), nil
}
