// Package seedfork derives independent child seeds from a parent seed
// and a label path. Every stochastic component in the simulator is
// seeded from one campaign seed; before this package existed, child
// seeds were derived with ad-hoc arithmetic (cfg.Seed+7, +int64(i)*77,
// seedOff+23, …), which collides as soon as two call sites pick
// overlapping offsets — a sweep over a seed list and a parameter grid
// makes such collisions inevitable. Fork instead mixes the parent seed,
// a call-site label and optional indices through a SplitMix64-style
// finalizer, so distinct label paths yield statistically independent
// streams and identical inputs always yield the same child seed.
package seedfork

import "hash/fnv"

// mix64 is the SplitMix64 output finalizer (Steele, Lea & Flood 2014):
// an invertible avalanche function whose outputs pass BigCrush when fed
// a counter. Inverting bias in the low bits of small inputs is exactly
// what the ad-hoc additive offsets lacked.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15 // golden-ratio increment decorrelates z and z+1
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Fork returns the child seed for (parent, label, idx...). The label
// names the consumer ("trafficgen", "gfw", …); indices distinguish
// instances of the same consumer (pair number, grid cell, shard).
// Fork(s, l, i...) is pure: equal inputs give equal outputs, and any
// change to parent, label or an index changes the result.
func Fork(parent int64, label string, idx ...int64) int64 {
	h := fnv.New64a()
	h.Write([]byte(label))
	z := mix64(uint64(parent) ^ h.Sum64())
	for _, i := range idx {
		z = mix64(z ^ mix64(uint64(i)))
	}
	return int64(z)
}
