package seedfork

import "testing"

func TestForkDeterministic(t *testing.T) {
	if Fork(1, "gfw") != Fork(1, "gfw") {
		t.Fatal("same inputs, different outputs")
	}
	if Fork(1, "gfw", 3, 4) != Fork(1, "gfw", 3, 4) {
		t.Fatal("same indexed inputs, different outputs")
	}
}

func TestForkSeparates(t *testing.T) {
	base := Fork(1, "gfw")
	if Fork(2, "gfw") == base || Fork(1, "trafficgen") == base || Fork(1, "gfw", 0) == base {
		t.Fatal("forked seeds collide across parent/label/index changes")
	}
	if Fork(1, "gfw", 1) == Fork(1, "gfw", 2) {
		t.Fatal("sibling indices collide")
	}
	if Fork(1, "gfw", 1, 2) == Fork(1, "gfw", 2, 1) {
		t.Fatal("index order ignored")
	}
}

// TestForkNoAdditiveCollisions reproduces the failure mode the package
// exists to prevent: with additive derivation, seed s with offset k and
// seed s+k with offset 0 collide. Forked streams for a dense block of
// parents and indices must all be distinct.
func TestForkNoAdditiveCollisions(t *testing.T) {
	seen := map[int64][2]int64{}
	for parent := int64(0); parent < 64; parent++ {
		for idx := int64(0); idx < 64; idx++ {
			s := Fork(parent, "trafficgen", idx)
			if prev, ok := seen[s]; ok {
				t.Fatalf("collision: (%d,%d) and (%d,%d) both map to %d",
					prev[0], prev[1], parent, idx, s)
			}
			seen[s] = [2]int64{parent, idx}
		}
	}
}
