package campaign

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"strconv"

	"sslab/internal/seedfork"
	"sslab/internal/stats"
)

// The merge walks each shard's report JSON generically, so any
// registered experiment aggregates without per-report code:
//
//   - numeric leaves (and booleans, as 0/1) become metric samples,
//     keyed by their dotted path; across a group's seeds they reduce
//     to mean ± bootstrap 95% CI, min and max;
//   - subtrees shaped like stats.Histogram ({"Counts":…,"Total":…})
//     union bin-by-bin;
//   - subtrees shaped like stats.CDF ({"Samples":[…]}) — and long
//     numeric arrays, which are sample vectors in everything but name —
//     union into one CDF, summarized by quantiles;
//   - strings are identifiers, not measurements, and are skipped.
//
// Every reduction is associative and commutative (see internal/stats),
// inputs are ordered by shard index, and CI resampling is seeded from
// (group, metric) via seedfork — so the merged report is byte-identical
// for any worker count, scheduling order, or checkpoint/resume split.

// MergedReport is the sweep aggregate, one Group per grid point.
type MergedReport struct {
	Schema     string  `json:"schema"`
	Experiment string  `json:"experiment"`
	Full       bool    `json:"full,omitempty"`
	Seeds      []int64 `json:"seeds"`
	Base       []Param `json:"base,omitempty"`
	Shards     int     `json:"shards"`
	Failed     int     `json:"failed"`
	Groups     []Group `json:"groups"`
}

// Schema identifies the merged-report wire format.
const Schema = "sslab-sweep/v1"

// Group aggregates one grid point across the seed list.
type Group struct {
	GridPoint  []Param      `json:"grid_point,omitempty"`
	Seeds      []int64      `json:"seeds"`
	Errors     []ShardError `json:"errors,omitempty"`
	Metrics    []Metric     `json:"metrics,omitempty"`
	Histograms []HistMetric `json:"histograms,omitempty"`
	CDFs       []CDFMetric  `json:"cdfs,omitempty"`
}

// ShardError is a failed shard's row: the sweep survives, the report
// says so.
type ShardError struct {
	Seed int64  `json:"seed"`
	Err  string `json:"err"`
}

// Metric is one numeric leaf reduced over the group's seeds.
type Metric struct {
	Name string  `json:"name"`
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	// CILo/CIHi bound the mean's 95% percentile-bootstrap interval.
	CILo float64 `json:"ci95_lo"`
	CIHi float64 `json:"ci95_hi"`
}

// HistMetric is a histogram-valued leaf unioned over the group.
type HistMetric struct {
	Name   string      `json:"name"`
	Total  int         `json:"total"`
	Counts map[int]int `json:"counts"`
}

// CDFMetric summarizes a sample-vector leaf unioned over the group.
type CDFMetric struct {
	Name string  `json:"name"`
	N    int     `json:"n"`
	Min  float64 `json:"min"`
	P25  float64 `json:"p25"`
	P50  float64 `json:"p50"`
	P75  float64 `json:"p75"`
	P90  float64 `json:"p90"`
	Max  float64 `json:"max"`
}

// MarshalIndent renders the canonical byte form (what lands in
// merged.json and what the determinism tests compare).
func (m *MergedReport) MarshalIndent() ([]byte, error) {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// bootstrapResamples balances CI stability against merge cost; 2000
// replicates hold the 95% bounds to ~1% of the interval width.
const bootstrapResamples = 2000

// merge reduces the (index-ordered) shard results into the aggregate.
func merge(spec Spec, results []*ShardResult) (*MergedReport, error) {
	out := &MergedReport{
		Schema:     Schema,
		Experiment: spec.Experiment,
		Full:       spec.Full,
		Seeds:      spec.Seeds,
		Base:       spec.Base,
		Shards:     len(results),
	}
	points := spec.gridPoints()
	perGroup := len(spec.Seeds)
	for gi, gp := range points {
		g := Group{GridPoint: gp}
		var flats []*flatReport
		for si := 0; si < perGroup; si++ {
			r := results[gi*perGroup+si]
			if r == nil {
				return nil, fmt.Errorf("campaign: shard %d missing after run", gi*perGroup+si)
			}
			if r.Err != "" {
				out.Failed++
				g.Errors = append(g.Errors, ShardError{Seed: r.Seed, Err: r.Err})
				continue
			}
			f, err := flattenReport(r.Report)
			if err != nil {
				return nil, fmt.Errorf("campaign: shard %d report: %v", r.Index, err)
			}
			g.Seeds = append(g.Seeds, r.Seed)
			flats = append(flats, f)
		}
		if g.Seeds == nil {
			g.Seeds = []int64{}
		}
		g.Metrics = reduceMetrics(gi, flats)
		g.Histograms = reduceHists(flats)
		g.CDFs = reduceCDFs(flats)
		out.Groups = append(out.Groups, g)
	}
	return out, nil
}

// flatReport is one shard's report decomposed into mergeable leaves.
type flatReport struct {
	nums  map[string]float64
	hists map[string]*stats.Histogram
	cdfs  map[string]*stats.CDF
}

// longArray is the length at which a pure-numeric JSON array is
// treated as a sample vector (CDF union) rather than per-index
// metrics; per-hour series like BrdgrdReport.ProbesPerHour would
// otherwise explode into hundreds of one-sample metrics.
const longArray = 32

func flattenReport(raw json.RawMessage) (*flatReport, error) {
	var v any
	if err := json.Unmarshal(raw, &v); err != nil {
		return nil, err
	}
	f := &flatReport{
		nums:  map[string]float64{},
		hists: map[string]*stats.Histogram{},
		cdfs:  map[string]*stats.CDF{},
	}
	flatten("", v, f)
	return f, nil
}

func flatten(prefix string, v any, f *flatReport) {
	switch t := v.(type) {
	case map[string]any:
		if samples, ok := cdfShape(t); ok {
			f.cdfs[prefix] = stats.NewCDF(samples)
			return
		}
		if h, ok := histShape(t); ok {
			f.hists[prefix] = h
			return
		}
		keys := make([]string, 0, len(t))
		for k := range t {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			flatten(join(prefix, k), t[k], f)
		}
	case []any:
		if nums, ok := numericArray(t); ok && len(nums) > longArray {
			f.cdfs[prefix] = stats.NewCDF(nums)
			return
		}
		labels := rowLabels(t)
		for i, e := range t {
			key := strconv.Itoa(i)
			if labels != nil {
				key = labels[i]
			}
			flatten(join(prefix, key), e, f)
		}
	case float64:
		f.nums[prefix] = t
	case bool:
		if t {
			f.nums[prefix] = 1
		} else {
			f.nums[prefix] = 0
		}
	}
}

// rowLabels keys an array of objects by their "Name" field when every
// element has a distinct non-empty one — so report tables like
// probecost's Results produce "Results.tor.MeanProbes" rather than
// "Results.3.MeanProbes", and stay aligned across shards even if a
// config change reorders or drops rows.
func rowLabels(arr []any) []string {
	if len(arr) == 0 {
		return nil
	}
	out := make([]string, len(arr))
	seen := map[string]bool{}
	for i, e := range arr {
		m, ok := e.(map[string]any)
		if !ok {
			return nil
		}
		name, ok := m["Name"].(string)
		if !ok || name == "" || seen[name] {
			return nil
		}
		seen[name] = true
		out[i] = name
	}
	return out
}

func join(prefix, key string) string {
	if prefix == "" {
		return key
	}
	return prefix + "." + key
}

// cdfShape recognizes stats.CDF's wire form: {"Samples":[numbers]}.
func cdfShape(m map[string]any) ([]float64, bool) {
	if len(m) != 1 {
		return nil, false
	}
	arr, ok := m["Samples"].([]any)
	if !ok {
		if m["Samples"] == nil {
			_, present := m["Samples"]
			return nil, present
		}
		return nil, false
	}
	return numericArray(arr)
}

// histShape recognizes stats.Histogram's wire form:
// {"Counts":{"8":12,…},"Total":n} with integer bins and counts.
func histShape(m map[string]any) (*stats.Histogram, bool) {
	if len(m) != 2 {
		return nil, false
	}
	counts, ok := m["Counts"].(map[string]any)
	if !ok {
		return nil, false
	}
	total, ok := m["Total"].(float64)
	if !ok {
		return nil, false
	}
	h := stats.NewHistogram()
	for k, v := range counts {
		bin, err := strconv.Atoi(k)
		if err != nil {
			return nil, false
		}
		c, ok := v.(float64)
		if !ok || c != float64(int(c)) {
			return nil, false
		}
		h.Counts[bin] += int(c)
	}
	h.Total = int(total)
	return h, true
}

func numericArray(arr []any) ([]float64, bool) {
	out := make([]float64, len(arr))
	for i, e := range arr {
		n, ok := e.(float64)
		if !ok {
			return nil, false
		}
		out[i] = n
	}
	return out, true
}

// reduceMetrics reduces every numeric leaf present in any shard. The
// CI PRNG is seeded from (group index, metric name) only, so the
// interval — like everything else here — is scheduling-independent.
func reduceMetrics(groupIndex int, flats []*flatReport) []Metric {
	names := map[string]bool{}
	for _, f := range flats {
		for n := range f.nums {
			names[n] = true
		}
	}
	ordered := make([]string, 0, len(names))
	for n := range names {
		ordered = append(ordered, n)
	}
	sort.Strings(ordered)

	var out []Metric
	for _, name := range ordered {
		var xs []float64
		for _, f := range flats {
			if x, ok := f.nums[name]; ok {
				xs = append(xs, x)
			}
		}
		m := Metric{Name: name, N: len(xs), Mean: stats.Mean(xs), Min: xs[0], Max: xs[0]}
		for _, x := range xs {
			if x < m.Min {
				m.Min = x
			}
			if x > m.Max {
				m.Max = x
			}
		}
		rng := rand.New(rand.NewSource(seedfork.Fork(int64(groupIndex), "campaign.ci."+name)))
		m.CILo, m.CIHi = stats.BootstrapMeanCI(xs, 0.95, bootstrapResamples, rng)
		out = append(out, m)
	}
	return out
}

func reduceHists(flats []*flatReport) []HistMetric {
	names := map[string]bool{}
	for _, f := range flats {
		for n := range f.hists {
			names[n] = true
		}
	}
	ordered := make([]string, 0, len(names))
	for n := range names {
		ordered = append(ordered, n)
	}
	sort.Strings(ordered)

	var out []HistMetric
	for _, name := range ordered {
		u := stats.NewHistogram()
		for _, f := range flats {
			u.Merge(f.hists[name])
		}
		out = append(out, HistMetric{Name: name, Total: u.Total, Counts: u.Counts})
	}
	return out
}

func reduceCDFs(flats []*flatReport) []CDFMetric {
	names := map[string]bool{}
	for _, f := range flats {
		for n := range f.cdfs {
			names[n] = true
		}
	}
	ordered := make([]string, 0, len(names))
	for n := range names {
		ordered = append(ordered, n)
	}
	sort.Strings(ordered)

	var out []CDFMetric
	for _, name := range ordered {
		var parts []*stats.CDF
		for _, f := range flats {
			if c, ok := f.cdfs[name]; ok {
				parts = append(parts, c)
			}
		}
		u := stats.MergeCDFs(parts...)
		m := CDFMetric{Name: name, N: u.Len()}
		if u.Len() > 0 {
			m.Min, m.Max = u.Min(), u.Max()
			m.P25, m.P50 = u.Quantile(0.25), u.Quantile(0.5)
			m.P75, m.P90 = u.Quantile(0.75), u.Quantile(0.9)
		}
		out = append(out, m)
	}
	return out
}
