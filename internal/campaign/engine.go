package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"

	"sslab/internal/experiment"
	"sslab/internal/metrics"
)

// Options tunes one sweep run.
type Options struct {
	// Workers bounds the goroutine pool (default: GOMAXPROCS). The
	// merged report does not depend on it.
	Workers int
	// RunWorkers bounds each shard's *intra-run* worker pool, for
	// experiments whose runner implements experiment.WorkersRunner
	// (fleet, armsrace, spatiotemporal); other experiments ignore it.
	// Zero keeps each
	// run single-threaded, so sweep- and run-level parallelism don't
	// multiply by accident. Like Workers, it never changes the merged
	// report's bytes.
	RunWorkers int
	// Dir is the checkpoint directory; empty disables checkpointing.
	Dir string
	// Resume reuses finished shard results found in Dir.
	Resume bool
	// OnProgress, when set, is called after every shard completes
	// (including shards restored from a checkpoint, reported first),
	// under the engine's lock — keep it fast. done counts completed
	// shards, total the whole sweep.
	OnProgress func(done, total int, r ShardResult)
	// RunShard overrides the registry-backed shard runner (tests).
	RunShard func(Shard) (json.RawMessage, error)
	// Metrics, when set, receives campaign.* counters (shards run,
	// failed, restored from checkpoint). Metrics never feed the merged
	// report, so the sweep's byte-identity guarantee is untouched. A nil
	// registry is valid and makes every instrument a no-op.
	Metrics *metrics.Registry
}

// Run executes the sweep and returns the merged report. Failed shards
// (error or panic) become error rows in their group; only a
// spec/checkpoint-level problem aborts the sweep itself.
func Run(spec Spec, opt Options) (*MergedReport, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	runShard := opt.RunShard
	if runShard == nil {
		if _, ok := experiment.Lookup(spec.Experiment); !ok {
			return nil, fmt.Errorf("campaign: unknown experiment %q (valid: %v)", spec.Experiment, experiment.Names())
		}
		runShard = func(s Shard) (json.RawMessage, error) { return runRegistered(spec, s, opt.RunWorkers) }
	}
	shards := spec.Shards()

	mRun := opt.Metrics.Counter("campaign.shards_run")
	mFailed := opt.Metrics.Counter("campaign.shards_failed")
	mRestored := opt.Metrics.Counter("campaign.shards_restored")

	results := make([]*ShardResult, len(shards))
	var ckpt *checkpoint
	if opt.Dir != "" {
		var err error
		ckpt, err = openCheckpoint(opt.Dir, spec, opt.Resume)
		if err != nil {
			return nil, err
		}
		defer ckpt.close()
		for _, r := range ckpt.loaded {
			if r.Index >= 0 && r.Index < len(shards) && shardMatches(shards[r.Index], r) {
				restored := r
				results[r.Index] = &restored
			}
		}
	}

	var todo []int
	done := 0
	for i := range shards {
		if results[i] == nil {
			todo = append(todo, i)
		} else {
			done++
			mRestored.Inc()
			if opt.OnProgress != nil {
				opt.OnProgress(done, len(shards), *results[i])
			}
		}
	}

	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(todo) {
		workers = len(todo)
	}

	var (
		mu     sync.Mutex
		wg     sync.WaitGroup
		queue  = make(chan int)
		ioErr  error
		setErr = func(err error) { // first checkpoint-write error wins
			if err != nil && ioErr == nil {
				ioErr = err
			}
		}
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range queue {
				res := runIsolated(shards[i], runShard)
				mRun.Inc()
				if res.Err != "" {
					mFailed.Inc()
				}
				mu.Lock()
				results[i] = &res
				if ckpt != nil {
					setErr(ckpt.append(res))
				}
				done++
				if opt.OnProgress != nil {
					opt.OnProgress(done, len(shards), res)
				}
				mu.Unlock()
			}
		}()
	}
	for _, i := range todo {
		queue <- i
	}
	close(queue)
	wg.Wait()
	if ioErr != nil {
		return nil, fmt.Errorf("campaign: checkpoint write: %v", ioErr)
	}

	merged, err := merge(spec, results)
	if err != nil {
		return nil, err
	}
	if opt.Dir != "" {
		b, err := merged.MarshalIndent()
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(filepath.Join(opt.Dir, mergedFile), b, 0o644); err != nil {
			return nil, err
		}
	}
	return merged, nil
}

// runRegistered builds the shard's config from the registry (seed,
// scale, base overrides, then the grid point) and runs it, threading
// the intra-run worker bound through to runners that support one.
func runRegistered(spec Spec, s Shard, runWorkers int) (json.RawMessage, error) {
	r, ok := experiment.Lookup(s.Experiment)
	if !ok {
		return nil, fmt.Errorf("unknown experiment %q", s.Experiment)
	}
	cfg := r.Config(s.Seed, spec.Full)
	if err := ApplyParams(cfg, spec.Base); err != nil {
		return nil, fmt.Errorf("experiment %s: %v", s.Experiment, err)
	}
	if err := ApplyParams(cfg, s.GridPoint); err != nil {
		return nil, fmt.Errorf("experiment %s: %v", s.Experiment, err)
	}
	var rep experiment.Report
	var err error
	if wr, ok := r.(experiment.WorkersRunner); ok {
		if runWorkers <= 0 {
			runWorkers = 1 // sweep-level workers are the default parallelism
		}
		rep, err = wr.RunWorkers(cfg, runWorkers)
	} else {
		rep, err = r.Run(cfg)
	}
	if err != nil {
		return nil, err
	}
	return json.Marshal(rep)
}

// runIsolated runs one shard with panic isolation: a crashing shard
// yields an error row, not a dead sweep. Only the panic value goes
// into the row (not the stack): error rows are part of the merged
// report, which must stay byte-identical across runs, and goroutine
// ids in stack traces are scheduling-dependent.
func runIsolated(s Shard, run func(Shard) (json.RawMessage, error)) (res ShardResult) {
	res = ShardResult{Index: s.Index, Experiment: s.Experiment, Seed: s.Seed, GridPoint: s.GridPoint}
	defer func() {
		if p := recover(); p != nil {
			res.Report = nil
			res.Err = fmt.Sprintf("panic: %v", p)
		}
	}()
	rep, err := run(s)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	res.Report = rep
	return res
}

// shardMatches guards restored results against a drifted shard list
// (spec.json equality already implies this; belt and braces).
func shardMatches(s Shard, r ShardResult) bool {
	if s.Experiment != r.Experiment || s.Seed != r.Seed || len(s.GridPoint) != len(r.GridPoint) {
		return false
	}
	for i := range s.GridPoint {
		if s.GridPoint[i] != r.GridPoint[i] {
			return false
		}
	}
	return true
}
