// Package campaign is the experiment-sweep engine: it fans a campaign
// spec (experiment × seed list × parameter grid) out over a bounded
// pool of workers, each running one independent simulation shard, and
// reduces the per-shard reports through order-independent mergers
// (internal/stats) into a single aggregate report that is byte-identical
// regardless of worker count or scheduling order.
//
// The paper's own measurements are single runs of a stochastic system;
// Ensafi et al. and Winter & Lindskog both show that GFW behaviour
// varies across vantage points and time, so any number this repository
// reports should carry seed variance. The simulator is deterministic
// per seed and shares no state between runs, which makes a sweep
// embarrassingly parallel: shard i's report depends only on its
// (seed, parameters) cell, never on scheduling.
//
// Determinism contract:
//
//   - shard seeds come from the spec's seed list; everything a shard
//     derives from them goes through internal/seedfork, so grid cells
//     cannot collide;
//   - per-shard reports are JSON of the experiment's report struct
//     (maps marshal with sorted keys);
//   - the merge sorts shards by index and reduces with associative,
//     commutative folds; bootstrap CIs draw from PRNGs seeded by
//     (group, metric name) — never by worker or completion order;
//   - no wall-clock anywhere in this package (the simclock analyzer
//     enforces it): progress timing and ETAs belong to callers such as
//     cmd/sslab-sweep.
//
// Shards checkpoint their finished reports as JSONL (one ShardResult
// per line), so an interrupted sweep resumes without recomputation,
// and a panicking shard records an error row instead of killing the
// sweep.
package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// Param is one configuration override, applied to the experiment
// config through its JSON form. Key is a dotted path of exported field
// names ("Sensitivity", "GFW.PoolSize"); Value is parsed as JSON when
// possible (numbers, booleans, arrays) and as a plain string otherwise.
type Param struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Axis is one grid dimension: a key swept over several values.
type Axis struct {
	Key    string   `json:"key"`
	Values []string `json:"values"`
}

// Spec describes a sweep: one experiment, a seed list, optional fixed
// overrides (Base) and an optional parameter grid whose cross product
// multiplies the seed list.
type Spec struct {
	Experiment string  `json:"experiment"`
	Seeds      []int64 `json:"seeds"`
	// Full selects paper scale; false is the fast gfwsim scale.
	Full bool `json:"full,omitempty"`
	// Base overrides apply to every shard (and are not part of the grid).
	Base []Param `json:"base,omitempty"`
	// Grid axes; the cross product of their values defines the groups.
	Grid []Axis `json:"grid,omitempty"`
}

// Shard is one unit of work: one grid cell run under one seed.
type Shard struct {
	Index      int     `json:"index"`
	Experiment string  `json:"experiment"`
	Seed       int64   `json:"seed"`
	GridPoint  []Param `json:"grid_point,omitempty"`
}

// ShardResult is the checkpointed outcome of one shard: either the
// experiment report as raw JSON, or the error that stopped it. This is
// also the schema cmd/gfwsim -json emits, so single runs and sweeps
// produce interchangeable records.
type ShardResult struct {
	Index      int             `json:"index"`
	Experiment string          `json:"experiment"`
	Seed       int64           `json:"seed"`
	GridPoint  []Param         `json:"grid_point,omitempty"`
	Err        string          `json:"err,omitempty"`
	Report     json.RawMessage `json:"report,omitempty"`
}

func (s Spec) validate() error {
	if s.Experiment == "" {
		return fmt.Errorf("campaign: spec has no experiment")
	}
	if len(s.Seeds) == 0 {
		return fmt.Errorf("campaign: spec has no seeds")
	}
	seen := map[int64]bool{}
	for _, sd := range s.Seeds {
		if seen[sd] {
			return fmt.Errorf("campaign: duplicate seed %d", sd)
		}
		seen[sd] = true
	}
	for _, a := range s.Grid {
		if a.Key == "" || len(a.Values) == 0 {
			return fmt.Errorf("campaign: grid axis %q needs a key and at least one value", a.Key)
		}
	}
	return nil
}

// gridPoints enumerates the grid's cross product in odometer order
// (first axis slowest). An empty grid yields one empty point.
func (s Spec) gridPoints() [][]Param {
	points := [][]Param{nil}
	for _, axis := range s.Grid {
		var next [][]Param
		for _, p := range points {
			for _, v := range axis.Values {
				cell := append(append([]Param(nil), p...), Param{Key: axis.Key, Value: v})
				next = append(next, cell)
			}
		}
		points = next
	}
	return points
}

// Shards enumerates the sweep's work units deterministically:
// grid-major, seed-minor, indices dense from zero. The same spec
// always yields the same shard list — resume depends on it.
func (s Spec) Shards() []Shard {
	var out []Shard
	for _, gp := range s.gridPoints() {
		for _, seed := range s.Seeds {
			out = append(out, Shard{
				Index:      len(out),
				Experiment: s.Experiment,
				Seed:       seed,
				GridPoint:  gp,
			})
		}
	}
	return out
}

// ParseSeeds parses a seed-list flag: comma-separated terms, each a
// single integer or an inclusive A..B range ("1..8", "1,2,9..12").
func ParseSeeds(s string) ([]int64, error) {
	const maxSeeds = 100000
	var out []int64
	for _, term := range strings.Split(s, ",") {
		term = strings.TrimSpace(term)
		if term == "" {
			return nil, fmt.Errorf("empty seed term in %q", s)
		}
		if lo, hi, ok := strings.Cut(term, ".."); ok {
			a, err := strconv.ParseInt(strings.TrimSpace(lo), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("seed range %q: %v", term, err)
			}
			b, err := strconv.ParseInt(strings.TrimSpace(hi), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("seed range %q: %v", term, err)
			}
			if b < a {
				return nil, fmt.Errorf("seed range %q is reversed", term)
			}
			if b-a >= maxSeeds {
				return nil, fmt.Errorf("seed range %q has more than %d seeds", term, maxSeeds)
			}
			for v := a; v <= b; v++ {
				out = append(out, v)
			}
			continue
		}
		v, err := strconv.ParseInt(term, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("seed %q: %v", term, err)
		}
		out = append(out, v)
	}
	if len(out) > maxSeeds {
		return nil, fmt.Errorf("%d seeds exceeds the %d cap", len(out), maxSeeds)
	}
	return out, nil
}

// ParseAxis parses a -grid flag value "key=v1,v2,…".
func ParseAxis(s string) (Axis, error) {
	key, vals, ok := strings.Cut(s, "=")
	if !ok || key == "" || vals == "" {
		return Axis{}, fmt.Errorf("grid axis %q: want key=v1,v2,…", s)
	}
	a := Axis{Key: key}
	for _, v := range strings.Split(vals, ",") {
		if v = strings.TrimSpace(v); v != "" {
			a.Values = append(a.Values, v)
		}
	}
	if len(a.Values) == 0 {
		return Axis{}, fmt.Errorf("grid axis %q has no values", s)
	}
	return a, nil
}

// ParseParam parses a -set flag value "key=value".
func ParseParam(s string) (Param, error) {
	key, val, ok := strings.Cut(s, "=")
	if !ok || key == "" {
		return Param{}, fmt.Errorf("param %q: want key=value", s)
	}
	return Param{Key: key, Value: val}, nil
}

// ApplyParams applies overrides to cfg (a pointer to an experiment
// config struct) through a JSON round trip, so the engine can drive
// any registered experiment without knowing its config type. Each key
// is a dotted path of exported fields. Paths may descend into fields
// the zero config elides from its JSON form (omitempty pointers such
// as an experiment's Impair profile): missing intermediates are
// created on the way down. Typos still fail loudly — the final decode
// back into cfg rejects unknown fields.
func ApplyParams(cfg any, params []Param) error {
	if len(params) == 0 {
		return nil
	}
	b, err := json.Marshal(cfg)
	if err != nil {
		return fmt.Errorf("campaign: marshal config: %v", err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		return fmt.Errorf("campaign: config is not a JSON object: %v", err)
	}
	for _, p := range params {
		if err := setPath(m, p.Key, strings.Split(p.Key, "."), p.Value); err != nil {
			return err
		}
		// Strict-decode after every override, not once at the end, so a
		// failure names the parameter that caused it — the full dotted
		// path and value, not just the leaf field the decoder rejects.
		b, err = json.Marshal(m)
		if err != nil {
			return err
		}
		dec := json.NewDecoder(bytes.NewReader(b))
		dec.DisallowUnknownFields()
		if err := dec.Decode(cfg); err != nil {
			return fmt.Errorf("campaign: parameter %s=%s does not fit %T: %v", p.Key, p.Value, cfg, err)
		}
	}
	return nil
}

// setPath walks the dotted path and sets the leaf, creating missing
// intermediate objects as it goes (fields a zero config elides via
// omitempty/omitzero are absent from the marshaled map, not invalid).
// Misspelled names are caught by ApplyParams' strict final decode.
func setPath(m map[string]any, full string, path []string, value string) error {
	key := path[0]
	if len(path) == 1 {
		m[key] = parseValue(value)
		return nil
	}
	sub, ok := m[key].(map[string]any)
	if !ok {
		if cur, exists := m[key]; exists && cur != nil {
			return fmt.Errorf("campaign: %q: %q is not a nested object", full, key)
		}
		sub = map[string]any{}
		m[key] = sub
	}
	return setPath(sub, full, path[1:], value)
}

// parseValue interprets the override as JSON when it parses (numbers,
// booleans, arrays, objects) and as a plain string otherwise, so
// `-grid GFW.PoolSize=4000,8000` and `-set OnWindows=[[60,110]]` both
// work without per-type flag plumbing.
func parseValue(s string) any {
	var v any
	if err := json.Unmarshal([]byte(s), &v); err == nil {
		return v
	}
	return s
}
