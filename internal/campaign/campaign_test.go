package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"sslab/internal/experiment"
)

// fakeRunShard builds a deterministic synthetic report from the
// shard's identity alone, with all three mergeable leaf kinds: a
// numeric scalar, a histogram-shaped subtree and a CDF-shaped one.
func fakeRunShard(s Shard) (json.RawMessage, error) {
	counts := map[string]int{}
	for i := 0; i < 5; i++ {
		counts[fmt.Sprint((int(s.Seed)+i)%3)]++
	}
	samples := make([]float64, 40)
	for i := range samples {
		samples[i] = float64(s.Seed)*100 + float64(i)
	}
	return json.Marshal(map[string]any{
		"Rate":  float64(s.Seed) * 0.25,
		"Hist":  map[string]any{"Counts": counts, "Total": 5},
		"Delay": map[string]any{"Samples": samples},
	})
}

func testSpec() Spec {
	return Spec{
		Experiment: "fake",
		Seeds:      []int64{1, 2, 3, 4, 5, 6},
		Grid:       []Axis{{Key: "Knob", Values: []string{"10", "20"}}},
	}
}

func mergedBytes(t *testing.T, spec Spec, opt Options) []byte {
	t.Helper()
	rep, err := Run(spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := rep.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestRunDeterministicAcrossWorkerCounts is the core contract: the
// merged report's bytes do not depend on the worker pool size.
func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	spec := testSpec()
	base := mergedBytes(t, spec, Options{Workers: 1, RunShard: fakeRunShard})
	for _, w := range []int{2, 3, 8, 16} {
		got := mergedBytes(t, spec, Options{Workers: w, RunShard: fakeRunShard})
		if !bytes.Equal(base, got) {
			t.Fatalf("merged report differs between -workers 1 and -workers %d:\n%s\nvs\n%s", w, base, got)
		}
	}
}

func TestMergeGroupsAndMetrics(t *testing.T) {
	spec := testSpec()
	rep, err := Run(spec, Options{Workers: 4, RunShard: fakeRunShard})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != Schema {
		t.Errorf("schema = %q", rep.Schema)
	}
	if rep.Shards != 12 || rep.Failed != 0 || len(rep.Groups) != 2 {
		t.Fatalf("shards=%d failed=%d groups=%d, want 12/0/2", rep.Shards, rep.Failed, len(rep.Groups))
	}
	g := rep.Groups[0]
	if len(g.GridPoint) != 1 || g.GridPoint[0] != (Param{Key: "Knob", Value: "10"}) {
		t.Errorf("group 0 grid point = %+v", g.GridPoint)
	}
	if len(g.Metrics) != 1 || g.Metrics[0].Name != "Rate" {
		t.Fatalf("metrics = %+v", g.Metrics)
	}
	m := g.Metrics[0]
	// Seeds 1..6, Rate = seed/4 → mean 0.875, min 0.25, max 1.5.
	if m.N != 6 || m.Mean != 0.875 || m.Min != 0.25 || m.Max != 1.5 {
		t.Errorf("Rate = %+v", m)
	}
	if !(m.CILo <= m.Mean && m.Mean <= m.CIHi) {
		t.Errorf("CI [%v,%v] does not bracket mean %v", m.CILo, m.CIHi, m.Mean)
	}
	if len(g.Histograms) != 1 || g.Histograms[0].Total != 30 {
		t.Errorf("histograms = %+v", g.Histograms)
	}
	if len(g.CDFs) != 1 || g.CDFs[0].N != 240 {
		t.Errorf("cdfs = %+v", g.CDFs)
	}
}

// TestPanicIsolation: a panicking shard becomes an error row; the rest
// of the sweep completes and merges.
func TestPanicIsolation(t *testing.T) {
	run := func(s Shard) (json.RawMessage, error) {
		if s.Seed == 3 {
			panic("synthetic shard crash")
		}
		return fakeRunShard(s)
	}
	spec := testSpec()
	rep, err := Run(spec, Options{Workers: 4, RunShard: run})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 2 { // seed 3 fails in both grid cells
		t.Fatalf("failed = %d, want 2", rep.Failed)
	}
	for _, g := range rep.Groups {
		if len(g.Errors) != 1 || g.Errors[0].Seed != 3 || !strings.Contains(g.Errors[0].Err, "synthetic shard crash") {
			t.Errorf("errors = %+v", g.Errors)
		}
		if len(g.Seeds) != 5 || g.Metrics[0].N != 5 {
			t.Errorf("surviving seeds = %v, metric N = %d", g.Seeds, g.Metrics[0].N)
		}
	}
}

// TestCheckpointResume kills the sweep after a partial checkpoint
// (simulated by truncating shards.jsonl mid-line) and verifies resume
// reproduces the exact bytes of an uninterrupted run.
func TestCheckpointResume(t *testing.T) {
	spec := testSpec()
	want := mergedBytes(t, spec, Options{Workers: 2, RunShard: fakeRunShard})

	dir := t.TempDir()
	var ran atomic.Int64 // RunShard runs on concurrent workers
	count := func(s Shard) (json.RawMessage, error) { ran.Add(1); return fakeRunShard(s) }
	_ = mergedBytes(t, spec, Options{Workers: 1, Dir: dir, RunShard: count})
	if ran.Load() != 12 {
		t.Fatalf("first run executed %d shards, want 12", ran.Load())
	}

	// Chop the JSONL to 4 complete lines plus a truncated fifth, as if
	// the process died mid-write.
	path := filepath.Join(dir, shardsFile)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(b, []byte("\n"))
	if len(lines) < 6 {
		t.Fatalf("only %d checkpoint lines", len(lines))
	}
	chopped := append(bytes.Join(lines[:4], nil), lines[4][:len(lines[4])/2]...)
	if err := os.WriteFile(path, chopped, 0o644); err != nil {
		t.Fatal(err)
	}

	ran.Store(0)
	got := mergedBytes(t, spec, Options{Workers: 3, Dir: dir, Resume: true, RunShard: count})
	if ran.Load() != 8 { // 12 shards - 4 intact checkpoint lines
		t.Errorf("resume executed %d shards, want 8", ran.Load())
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("resumed merged report differs from clean run:\n%s\nvs\n%s", want, got)
	}

	// merged.json on disk matches too.
	disk, err := os.ReadFile(filepath.Join(dir, mergedFile))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, disk) {
		t.Error("merged.json differs from returned report")
	}
}

func TestCheckpointRefusesReuseWithoutResume(t *testing.T) {
	spec := testSpec()
	dir := t.TempDir()
	_ = mergedBytes(t, spec, Options{Workers: 1, Dir: dir, RunShard: fakeRunShard})
	if _, err := Run(spec, Options{Dir: dir, RunShard: fakeRunShard}); err == nil {
		t.Fatal("second run over an existing sweep dir succeeded without -resume")
	}
}

func TestCheckpointRefusesMismatchedSpec(t *testing.T) {
	spec := testSpec()
	dir := t.TempDir()
	_ = mergedBytes(t, spec, Options{Workers: 1, Dir: dir, RunShard: fakeRunShard})
	other := spec
	other.Seeds = []int64{9, 10}
	if _, err := Run(other, Options{Dir: dir, Resume: true, RunShard: fakeRunShard}); err == nil {
		t.Fatal("resume accepted a different spec")
	}
}

func TestRunValidates(t *testing.T) {
	if _, err := Run(Spec{Experiment: "fake"}, Options{RunShard: fakeRunShard}); err == nil {
		t.Error("no-seed spec accepted")
	}
	if _, err := Run(Spec{Seeds: []int64{1}}, Options{RunShard: fakeRunShard}); err == nil {
		t.Error("no-experiment spec accepted")
	}
	if _, err := Run(Spec{Experiment: "fake", Seeds: []int64{1, 1}}, Options{RunShard: fakeRunShard}); err == nil {
		t.Error("duplicate seeds accepted")
	}
	if _, err := Run(Spec{Experiment: "no-such-experiment", Seeds: []int64{1}}, Options{}); err == nil ||
		!strings.Contains(err.Error(), "valid:") {
		t.Error("unknown experiment should list valid names")
	}
}

// TestImpairedSweepWorkerIndependence is the impairment determinism
// contract end-to-end: a sweep whose grid cells inject loss and jitter
// merges to the same bytes under -workers 1 and -workers 4. Per-link
// impairment PRNGs are forked from (sim seed, endpoint IPs), never from
// scheduling, so shard results cannot depend on which worker ran them.
func TestImpairedSweepWorkerIndependence(t *testing.T) {
	spec := Spec{
		Experiment: "banstudy",
		Seeds:      []int64{1, 2},
		Base:       []Param{{Key: "Triggers", Value: "400"}, {Key: "GFW.PoolSize", Value: "64"}},
		Grid: []Axis{
			{Key: "Impair.Loss", Values: []string{"0", "0.02"}},
			{Key: "Impair.Jitter", Values: []string{"0", "50000000"}},
		},
	}
	base := mergedBytes(t, spec, Options{Workers: 1})
	got := mergedBytes(t, spec, Options{Workers: 4})
	if !bytes.Equal(base, got) {
		t.Fatalf("impaired sweep differs between -workers 1 and -workers 4:\n%s\nvs\n%s", base, got)
	}
}

// TestRegistryShard runs one real (tiny) registry experiment through
// the engine, grid overrides included.
func TestRegistryShard(t *testing.T) {
	spec := Spec{
		Experiment: "probecost",
		Seeds:      []int64{1, 2},
		Grid:       []Axis{{Key: "Trials", Values: []string{"4", "6"}}},
	}
	rep, err := Run(spec, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 || len(rep.Groups) != 2 {
		t.Fatalf("failed=%d groups=%d: %+v", rep.Failed, len(rep.Groups), rep)
	}
	for _, g := range rep.Groups {
		if len(g.Metrics) == 0 {
			t.Errorf("group %+v has no metrics", g.GridPoint)
		}
	}
}

func TestApplyParams(t *testing.T) {
	r, _ := experiment.Lookup("blocking")
	cfg := r.Config(1, false).(*experiment.BlockingConfig)
	if err := ApplyParams(cfg, []Param{{Key: "Sensitivity", Value: "0.9"}, {Key: "GFW.PoolSize", Value: "4000"}}); err != nil {
		t.Fatal(err)
	}
	if cfg.Sensitivity != 0.9 || cfg.GFW.PoolSize != 4000 {
		t.Errorf("overrides not applied: Sensitivity=%v PoolSize=%d", cfg.Sensitivity, cfg.GFW.PoolSize)
	}

	err := ApplyParams(cfg, []Param{{Key: "NoSuchField", Value: "1"}})
	if err == nil || !strings.Contains(err.Error(), "unknown field") {
		t.Errorf("typo should fail the strict decode, got %v", err)
	}
	if err := ApplyParams(cfg, []Param{{Key: "Days.Nested", Value: "1"}}); err == nil {
		t.Error("path through a scalar accepted")
	}
	if err := ApplyParams(cfg, []Param{{Key: "Days", Value: "not-a-number"}}); err == nil {
		t.Error("type-mismatched override accepted")
	}

	// Paths through omitted optional fields create the intermediates:
	// the zero config has no Impair key, yet the grid can sweep it.
	if err := ApplyParams(cfg, []Param{{Key: "Impair.Loss", Value: "0.02"}}); err != nil {
		t.Fatalf("override through omitted Impair pointer: %v", err)
	}
	if cfg.Impair == nil || cfg.Impair.Loss != 0.02 {
		t.Errorf("Impair.Loss override not applied: %+v", cfg.Impair)
	}
	err = ApplyParams(cfg, []Param{{Key: "Impair.NoSuchKnob", Value: "1"}})
	if err == nil || !strings.Contains(err.Error(), "unknown field") {
		t.Errorf("typo below a created intermediate should fail, got %v", err)
	}
	// The error must carry the full dotted path and value, not just the
	// leaf field the decoder rejects — a sweep with -grid axes on three
	// nested structs is undebuggable from `unknown field "NoSuchKnob"`.
	if err != nil && !strings.Contains(err.Error(), "Impair.NoSuchKnob=1") {
		t.Errorf("error does not name the offending parameter path: %v", err)
	}

	// With several overrides, the error names the one that failed.
	cfg2 := r.Config(1, false).(*experiment.BlockingConfig)
	err = ApplyParams(cfg2, []Param{
		{Key: "Sensitivity", Value: "0.5"},
		{Key: "GFW.NoSuchKnob", Value: "7"},
		{Key: "Days", Value: "3"},
	})
	if err == nil || !strings.Contains(err.Error(), "GFW.NoSuchKnob=7") {
		t.Errorf("error does not single out the failing override: %v", err)
	}
}

// TestApplyParamsErrorNamesExperiment pins the shard-level wrapping: a
// bad override surfaced through the engine names the experiment too.
func TestApplyParamsErrorNamesExperiment(t *testing.T) {
	spec := Spec{
		Experiment: "blocking",
		Seeds:      []int64{1},
		Base:       []Param{{Key: "GFW.NoSuchKnob", Value: "7"}},
	}
	_, err := runRegistered(spec, Shard{Experiment: "blocking", Seed: 1}, 0)
	if err == nil {
		t.Fatal("bad base override accepted")
	}
	for _, want := range []string{"experiment blocking", "GFW.NoSuchKnob=7", "unknown field"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

func TestParseSeeds(t *testing.T) {
	got, err := ParseSeeds("1..4,9, 12..12")
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{1, 2, 3, 4, 9, 12}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
	for _, bad := range []string{"", "a", "4..1", "1..9999999", "1,,2"} {
		if _, err := ParseSeeds(bad); err == nil {
			t.Errorf("ParseSeeds(%q) accepted", bad)
		}
	}
}

func TestParseAxisAndParam(t *testing.T) {
	a, err := ParseAxis("GFW.PoolSize=4000, 8000")
	if err != nil {
		t.Fatal(err)
	}
	if a.Key != "GFW.PoolSize" || len(a.Values) != 2 || a.Values[1] != "8000" {
		t.Errorf("axis = %+v", a)
	}
	for _, bad := range []string{"", "key", "=v", "key=", "key=,"} {
		if _, err := ParseAxis(bad); err == nil {
			t.Errorf("ParseAxis(%q) accepted", bad)
		}
	}
	p, err := ParseParam("Full=true")
	if err != nil || p.Key != "Full" || p.Value != "true" {
		t.Errorf("param = %+v, %v", p, err)
	}
	if _, err := ParseParam("novalue"); err == nil {
		t.Error("ParseParam without = accepted")
	}
}

func TestShardEnumeration(t *testing.T) {
	spec := testSpec()
	shards := spec.Shards()
	if len(shards) != 12 {
		t.Fatalf("%d shards, want 12", len(shards))
	}
	for i, s := range shards {
		if s.Index != i {
			t.Errorf("shard %d has index %d", i, s.Index)
		}
	}
	// Grid-major, seed-minor: first 6 shards are Knob=10 over all seeds.
	if shards[0].GridPoint[0].Value != "10" || shards[5].GridPoint[0].Value != "10" ||
		shards[6].GridPoint[0].Value != "20" {
		t.Errorf("enumeration order wrong: %+v", shards)
	}
	if shards[0].Seed != 1 || shards[6].Seed != 1 {
		t.Errorf("seed-minor order wrong")
	}
}
