package campaign

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Checkpoint layout inside the sweep's -out directory:
//
//	spec.json    the canonical Spec — resume refuses a mismatched spec
//	shards.jsonl one ShardResult per line, appended as shards finish
//	merged.json  the deterministic aggregate, written when the sweep ends
//
// The JSONL file's line order reflects completion order and is the one
// scheduling-dependent artifact; everything derived from it is sorted
// by shard index first. A truncated final line (the process died
// mid-write) is detected and dropped on load, and that shard reruns.
const (
	specFile   = "spec.json"
	shardsFile = "shards.jsonl"
	mergedFile = "merged.json"
)

// checkpoint appends finished shards to shards.jsonl. Callers
// serialize access (the engine holds its results mutex while
// appending), so no internal locking.
type checkpoint struct {
	f      *os.File
	loaded []ShardResult
}

// openCheckpoint prepares dir for a sweep of spec. With resume=false
// the directory must not already contain shard results; with
// resume=true an existing spec.json must match spec exactly, and any
// parseable shard lines are returned for reuse.
func openCheckpoint(dir string, spec Spec, resume bool) (*checkpoint, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: checkpoint dir: %v", err)
	}
	canon, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return nil, err
	}
	canon = append(canon, '\n')

	shardsPath := filepath.Join(dir, shardsFile)
	specPath := filepath.Join(dir, specFile)
	c := &checkpoint{}
	if existing, err := os.ReadFile(specPath); err == nil {
		if !resume {
			return nil, fmt.Errorf("campaign: %s already holds a sweep; pass -resume to continue it or use a fresh -out directory", dir)
		}
		if !bytes.Equal(existing, canon) {
			return nil, fmt.Errorf("campaign: %s was checkpointed with a different spec; refusing to resume", dir)
		}
		c.loaded, err = loadShards(shardsPath)
		if err != nil {
			return nil, err
		}
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	if err := os.WriteFile(specPath, canon, 0o644); err != nil {
		return nil, err
	}
	c.f, err = os.OpenFile(shardsPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return c, nil
}

// loadShards reads every complete, parseable result line. Lines that
// fail to parse — a truncated tail from a killed run — are skipped, so
// their shards simply recompute.
func loadShards(path string) ([]ShardResult, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []ShardResult
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<28)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var r ShardResult
		if err := json.Unmarshal(line, &r); err != nil {
			continue
		}
		out = append(out, r)
	}
	return out, sc.Err()
}

// append writes one finished shard. Each line is a single Write, so a
// crash leaves at most one truncated line for loadShards to drop.
func (c *checkpoint) append(r ShardResult) error {
	b, err := json.Marshal(r)
	if err != nil {
		return err
	}
	_, err = c.f.Write(append(b, '\n'))
	return err
}

func (c *checkpoint) close() error {
	if c.f == nil {
		return nil
	}
	return c.f.Close()
}
