// Package probe defines the GFW's active-probe taxonomy from §3.2 of the
// paper — five replay-based types and two random types — plus the
// additional types first observed in the random-data experiments of §4.2,
// and the classifier that maps an observed probe payload back to its type
// (the analysis the authors performed on their packet captures).
package probe

import "bytes"

// RNG is the randomness Build consumes: integer draws for mutation
// deltas and length picks, byte fills for random payloads. *rand.Rand
// satisfies it; callers that must serialize their stream position pass
// an adapter whose Read routes through explicit reader state instead
// of rand.Rand's unexported read buffer.
type RNG interface {
	Intn(n int) int
	Read(p []byte) (int, error)
}

// Type identifies one kind of active probe.
type Type int

const (
	// Unknown is a payload that matches no documented probe type.
	Unknown Type = iota
	// R1 is an identical replay of a recorded legitimate first packet.
	R1
	// R2 is a replay with byte 0 changed.
	R2
	// R3 is a replay with bytes 0–7 and 62–63 changed.
	R3
	// R4 is a replay with byte 16 changed.
	R4
	// R5 is a replay with bytes 6 and 16 changed.
	R5
	// R6 is a replay with bytes 16–32 changed — the new replay type first
	// seen in Exp 1.b (§4.2, "New probe types observed").
	R6
	// NR1 is a random probe whose length falls in the trios centered on
	// 8, 12, 16, 22, 33, 41, 49 — each trio straddling a reaction
	// threshold of some stream-cipher IV length (§5.2.2).
	NR1
	// NR2 is a random probe of exactly 221 bytes, roughly three times as
	// common as all NR1 probes together (Figure 2).
	NR2
	// NR3 covers the sporadic random probes of 53, 56, 169, 180, and 402
	// bytes observed in the random-data experiments.
	NR3
)

var typeNames = map[Type]string{
	Unknown: "unknown", R1: "R1", R2: "R2", R3: "R3", R4: "R4",
	R5: "R5", R6: "R6", NR1: "NR1", NR2: "NR2", NR3: "NR3",
}

func (t Type) String() string { return typeNames[t] }

// Replay reports whether t is derived from a recorded legitimate payload.
func (t Type) Replay() bool { return t >= R1 && t <= R6 }

// NR2Length is the fixed length of type NR2 probes.
const NR2Length = 221

// nr1Centers are the trio centers; each trio is {c-1, c, c+1}.
var nr1Centers = []int{8, 12, 16, 22, 33, 41, 49}

// NR1Lengths returns all 21 lengths type NR1 probes use, ascending.
func NR1Lengths() []int {
	out := make([]int, 0, 3*len(nr1Centers))
	for _, c := range nr1Centers {
		out = append(out, c-1, c, c+1)
	}
	return out
}

// NR3Lengths returns the sporadic random-probe lengths from §4.2.
func NR3Lengths() []int { return []int{53, 56, 169, 180, 402} }

// mutated returns the offsets (relative to the recorded payload) each
// replay type changes.
func mutated(t Type) []int {
	switch t {
	case R2:
		return []int{0}
	case R3:
		return []int{0, 1, 2, 3, 4, 5, 6, 7, 62, 63}
	case R4:
		return []int{16}
	case R5:
		return []int{6, 16}
	case R6:
		offs := make([]int, 0, 17)
		for i := 16; i <= 32; i++ {
			offs = append(offs, i)
		}
		return offs
	default:
		return nil
	}
}

// MutatedOffsets exposes the byte offsets a replay type changes (empty for
// R1 and non-replay types). §5.3's key observation is that R2, R3 and R5
// all touch the IV/salt region, while R4 targets byte 16 — past an 8- or
// 12-byte IV but inside a 16-byte one.
func MutatedOffsets(t Type) []int { return mutated(t) }

// Build constructs a probe payload of the given type. recorded is the
// legitimate first packet being replayed (required for R1–R6, ignored for
// NR types); rng drives mutations and random contents.
func Build(t Type, recorded []byte, rng RNG) []byte {
	switch t {
	case R1, R2, R3, R4, R5, R6:
		p := append([]byte(nil), recorded...)
		for _, off := range mutated(t) {
			if off >= len(p) {
				continue
			}
			// Change to a strictly different value, as the GFW does.
			delta := byte(1 + rng.Intn(255))
			p[off] += delta
		}
		return p
	case NR1:
		lens := NR1Lengths()
		n := lens[rng.Intn(len(lens))]
		return randBytes(rng, n)
	case NR2:
		return randBytes(rng, NR2Length)
	case NR3:
		lens := NR3Lengths()
		return randBytes(rng, lens[rng.Intn(len(lens))])
	default:
		return randBytes(rng, 1+rng.Intn(99))
	}
}

func randBytes(rng RNG, n int) []byte {
	b := make([]byte, n)
	rng.Read(b)
	return b
}

// Classify determines the probe type of payload given the recorded
// legitimate first packets of past connections to the same server — the
// same matching the paper's analysis pipeline performs. A payload is a
// replay variant if it has the same length as some recorded payload and
// differs from it exactly at one documented offset set.
func Classify(payload []byte, recorded [][]byte) Type {
	for _, rec := range recorded {
		if len(rec) != len(payload) {
			continue
		}
		if bytes.Equal(rec, payload) {
			return R1
		}
		diffs := diffOffsets(rec, payload)
		for _, t := range []Type{R2, R3, R4, R5, R6} {
			if sameOffsets(diffs, mutated(t), len(payload)) {
				return t
			}
		}
	}
	switch n := len(payload); {
	case n == NR2Length:
		return NR2
	case isNR1Length(n):
		return NR1
	case isNR3Length(n):
		return NR3
	default:
		return Unknown
	}
}

func isNR1Length(n int) bool {
	for _, l := range NR1Lengths() {
		if n == l {
			return true
		}
	}
	return false
}

func isNR3Length(n int) bool {
	for _, l := range NR3Lengths() {
		if n == l {
			return true
		}
	}
	return false
}

func diffOffsets(a, b []byte) []int {
	var out []int
	for i := range a {
		if a[i] != b[i] {
			out = append(out, i)
		}
	}
	return out
}

// sameOffsets reports whether observed diffs match the documented offsets
// clipped to the payload length. Mutation "to a different value" is
// guaranteed by Build, so every in-range offset must appear.
func sameOffsets(diffs, want []int, n int) bool {
	expect := want[:0:0]
	for _, o := range want {
		if o < n {
			expect = append(expect, o)
		}
	}
	if len(diffs) != len(expect) {
		return false
	}
	for i := range diffs {
		if diffs[i] != expect[i] {
			return false
		}
	}
	return len(expect) > 0
}

// FromName maps a type name back to its Type (inverse of String); unknown
// names map to Unknown.
func FromName(name string) Type {
	for t, n := range typeNames {
		if n == name {
			return t
		}
	}
	return Unknown
}
