package probe

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestNR1Lengths(t *testing.T) {
	want := []int{7, 8, 9, 11, 12, 13, 15, 16, 17, 21, 22, 23, 32, 33, 34, 40, 41, 42, 48, 49, 50}
	got := NR1Lengths()
	if len(got) != len(want) {
		t.Fatalf("NR1Lengths() has %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("NR1Lengths()[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestBuildReplayTypes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	recorded := make([]byte, 200)
	rng.Read(recorded)

	for _, tc := range []struct {
		typ  Type
		offs []int
	}{
		{R1, nil},
		{R2, []int{0}},
		{R3, []int{0, 1, 2, 3, 4, 5, 6, 7, 62, 63}},
		{R4, []int{16}},
		{R5, []int{6, 16}},
		{R6, []int{16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31, 32}},
	} {
		p := Build(tc.typ, recorded, rng)
		if len(p) != len(recorded) {
			t.Errorf("%v: length %d, want %d", tc.typ, len(p), len(recorded))
		}
		got := diffOffsets(recorded, p)
		if len(got) != len(tc.offs) {
			t.Errorf("%v: changed offsets %v, want %v", tc.typ, got, tc.offs)
			continue
		}
		for i := range got {
			if got[i] != tc.offs[i] {
				t.Errorf("%v: changed offsets %v, want %v", tc.typ, got, tc.offs)
				break
			}
		}
	}
}

func TestBuildMutationIsDifferent(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	recorded := make([]byte, 64)
	for i := 0; i < 200; i++ {
		p := Build(R2, recorded, rng)
		if p[0] == recorded[0] {
			t.Fatal("R2 mutation produced an identical byte")
		}
	}
}

func TestBuildNonReplayTypes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	seenLens := map[int]bool{}
	for i := 0; i < 500; i++ {
		p := Build(NR1, nil, rng)
		if !isNR1Length(len(p)) {
			t.Fatalf("NR1 probe of length %d", len(p))
		}
		seenLens[len(p)] = true
	}
	if len(seenLens) < 15 {
		t.Errorf("NR1 lengths poorly covered: %d of 21", len(seenLens))
	}
	for i := 0; i < 10; i++ {
		if p := Build(NR2, nil, rng); len(p) != 221 {
			t.Fatalf("NR2 probe of length %d", len(p))
		}
		if p := Build(NR3, nil, rng); !isNR3Length(len(p)) {
			t.Fatalf("NR3 probe of length %d", len(p))
		}
	}
}

// TestBuildShortRecorded verifies replays of payloads shorter than the
// mutation offsets do not panic and skip out-of-range offsets.
func TestBuildShortRecorded(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	recorded := make([]byte, 10) // shorter than offset 16 and 62
	for _, typ := range []Type{R3, R4, R5, R6} {
		p := Build(typ, recorded, rng)
		if len(p) != 10 {
			t.Errorf("%v: length changed", typ)
		}
	}
	if p := Build(R4, recorded, rng); !bytes.Equal(p, recorded) {
		t.Error("R4 with offset out of range should equal the recording")
	}
}

func TestClassifyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var recordings [][]byte
	for i := 0; i < 5; i++ {
		rec := make([]byte, 150+rng.Intn(300))
		rng.Read(rec)
		recordings = append(recordings, rec)
	}
	for _, typ := range []Type{R1, R2, R3, R4, R5, R6, NR1, NR2, NR3} {
		for i := 0; i < 50; i++ {
			rec := recordings[rng.Intn(len(recordings))]
			p := Build(typ, rec, rng)
			if got := Classify(p, recordings); got != typ {
				t.Fatalf("Classify(Build(%v)) = %v", typ, got)
			}
		}
	}
}

func TestClassifyUnknown(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := make([]byte, 123) // not an NR length, no recording matches
	rng.Read(p)
	if got := Classify(p, nil); got != Unknown {
		t.Errorf("Classify = %v, want Unknown", got)
	}
}

func TestReplayPredicate(t *testing.T) {
	for _, typ := range []Type{R1, R2, R3, R4, R5, R6} {
		if !typ.Replay() {
			t.Errorf("%v.Replay() = false", typ)
		}
	}
	for _, typ := range []Type{NR1, NR2, NR3, Unknown} {
		if typ.Replay() {
			t.Errorf("%v.Replay() = true", typ)
		}
	}
}

func TestStringNames(t *testing.T) {
	if R1.String() != "R1" || NR2.String() != "NR2" || Unknown.String() != "unknown" {
		t.Error("String() names wrong")
	}
}
