package probesim

import (
	"testing"

	"sslab/internal/reaction"
	"sslab/internal/sscrypto"
)

// scan builds a matrix for one configuration.
func scan(t *testing.T, p reaction.Profile, method string, trials int) *Matrix {
	t.Helper()
	spec, err := sscrypto.Lookup(method)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ScanRandom(p, spec, "infer-pw", RandomProbeLengths(), trials, 99)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestInferIdentifiesConfigurations reproduces §5.2.2: an attacker can
// recover the construction, IV/salt length and version family from a
// server's reactions to random probes.
func TestInferIdentifiesConfigurations(t *testing.T) {
	for _, tc := range []struct {
		profile reaction.Profile
		method  string
		kind    sscrypto.Kind
		ivSize  int
		want    reaction.Profile
		hint    string
	}{
		{reaction.LibevOld, "chacha20", sscrypto.Stream, 8, reaction.LibevOld, ""},
		{reaction.LibevOld, "salsa20", sscrypto.Stream, 8, reaction.LibevOld, ""},
		{reaction.LibevOld, "chacha20-ietf", sscrypto.Stream, 12, reaction.LibevOld, "chacha20-ietf"},
		{reaction.LibevOld, "aes-256-ctr", sscrypto.Stream, 16, reaction.LibevOld, ""},
		{reaction.LibevOld, "aes-128-gcm", sscrypto.AEAD, 16, reaction.LibevOld, ""},
		{reaction.LibevOld, "aes-192-gcm", sscrypto.AEAD, 24, reaction.LibevOld, ""},
		{reaction.LibevOld, "aes-256-gcm", sscrypto.AEAD, 32, reaction.LibevOld, ""},
		{reaction.Outline106, "chacha20-ietf-poly1305", sscrypto.AEAD, 32, reaction.Outline106, ""},
	} {
		m := scan(t, tc.profile, tc.method, 300)
		inf := Infer(m)
		if !inf.Confident {
			t.Errorf("%s/%s: not confident", tc.profile.Versions, tc.method)
			continue
		}
		if inf.Kind != tc.kind {
			t.Errorf("%s/%s: kind %v, want %v", tc.profile.Versions, tc.method, inf.Kind, tc.kind)
		}
		if inf.IVSize != tc.ivSize {
			t.Errorf("%s/%s: IV size %d, want %d", tc.profile.Versions, tc.method, inf.IVSize, tc.ivSize)
		}
		if inf.Profile.Versions != tc.want.Versions {
			t.Errorf("%s/%s: profile %s, want %s", tc.profile.Versions, tc.method, inf.Profile.Versions, tc.want.Versions)
		}
		if inf.CipherHint != tc.hint {
			t.Errorf("%s/%s: cipher hint %q, want %q", tc.profile.Versions, tc.method, inf.CipherHint, tc.hint)
		}
	}
}

// TestInferNewLibevStream: FIN/ACK-only closes identify the new-libev
// stream family.
func TestInferNewLibevStream(t *testing.T) {
	m := scan(t, reaction.LibevNew, "aes-256-ctr", 600)
	inf := Infer(m)
	if !inf.Confident || inf.Kind != sscrypto.Stream || inf.Profile.Versions != reaction.LibevNew.Versions {
		t.Errorf("inference = %+v", inf)
	}
}

// TestInferHardenedIsOpaque: the §7.2 profiles yield no confident
// inference at all — the design goal of consistent reactions.
func TestInferHardenedIsOpaque(t *testing.T) {
	for _, tc := range []struct {
		profile reaction.Profile
		method  string
	}{
		{reaction.Outline107, "chacha20-ietf-poly1305"},
		{reaction.Outline110, "chacha20-ietf-poly1305"},
		{reaction.Hardened, "chacha20-ietf-poly1305"},
		{reaction.LibevNew, "aes-256-gcm"},
	} {
		m := scan(t, tc.profile, tc.method, 100)
		if inf := Infer(m); inf.Confident {
			t.Errorf("%s %s/%s leaked an inference: %+v",
				tc.profile.Name, tc.profile.Versions, tc.method, inf)
		}
	}
}
