// Package probesim is the prober simulator of §5.1: it sends all seven of
// the GFW's probe types — plus exhaustive random probes of 1–99 and 221
// bytes — to Shadowsocks servers and records their reactions. It can probe
// both in-process behavioural models (reaction.Server, fast, used to
// regenerate Figure 10 and Table 5) and real servers over TCP (cmd/probesim).
package probesim

import (
	"fmt"
	"math/rand"
	"net"
	"sort"
	"strconv"
	"strings"
	"time"

	"sslab/internal/probe"
	"sslab/internal/reaction"
	"sslab/internal/socks"
	"sslab/internal/sscrypto"
	"sslab/internal/ssproto"
)

// Prober abstracts "deliver one first-packet payload, observe the reaction".
type Prober interface {
	Probe(payload []byte, generatedAt time.Time) (reaction.Reaction, error)
}

// ModelProber probes an in-process reaction.Server.
type ModelProber struct {
	Server *reaction.Server
	Now    time.Time
}

// Probe implements Prober.
func (m *ModelProber) Probe(payload []byte, generatedAt time.Time) (reaction.Reaction, error) {
	if m.Now.IsZero() {
		m.Now = time.Date(2019, 9, 29, 0, 0, 0, 0, time.UTC)
	}
	if generatedAt.IsZero() {
		generatedAt = m.Now
	}
	r := m.Server.ReactAt(payload, generatedAt, m.Now)
	return r.Reaction, nil
}

// TCPProber probes a live server over TCP, classifying the observable
// outcome the way the GFW would: response data, immediate FIN/ACK,
// immediate RST, or timeout.
type TCPProber struct {
	Addr string
	// Timeout is how long to wait before declaring TIMEOUT; the GFW's
	// probers use less than 10 seconds (default 3 s here).
	Timeout time.Duration
}

// Probe implements Prober over real TCP.
func (p *TCPProber) Probe(payload []byte, _ time.Time) (reaction.Reaction, error) {
	timeout := p.Timeout
	if timeout <= 0 {
		timeout = 3 * time.Second
	}
	c, err := net.DialTimeout("tcp", p.Addr, timeout)
	if err != nil {
		return 0, fmt.Errorf("probesim: dial %s: %w", p.Addr, err)
	}
	defer c.Close()
	if len(payload) > 0 {
		if _, err := c.Write(payload); err != nil {
			return reaction.RST, nil // reset during write
		}
	}
	c.SetReadDeadline(time.Now().Add(timeout))
	buf := make([]byte, 4096)
	n, err := c.Read(buf)
	switch {
	case n > 0:
		return reaction.Data, nil
	case err == nil:
		return reaction.Timeout, nil
	default:
		if ne, ok := err.(net.Error); ok && ne.Timeout() {
			return reaction.Timeout, nil
		}
		if strings.Contains(err.Error(), "reset") {
			return reaction.RST, nil
		}
		return reaction.FINACK, nil // clean EOF
	}
}

// Cell is the distribution of reactions for one probe length.
type Cell map[reaction.Reaction]int

// Dominant returns the most frequent reaction in the cell.
func (c Cell) Dominant() reaction.Reaction {
	best, bestN := reaction.Timeout, -1
	for _, r := range []reaction.Reaction{reaction.Timeout, reaction.RST, reaction.FINACK, reaction.Data} {
		if c[r] > bestN {
			best, bestN = r, c[r]
		}
	}
	return best
}

// Fraction returns the share of reaction r in the cell.
func (c Cell) Fraction(r reaction.Reaction) float64 {
	total := 0
	for _, n := range c {
		total += n
	}
	if total == 0 {
		return 0
	}
	return float64(c[r]) / float64(total)
}

// Matrix maps probe length to the observed reaction distribution — one
// row of Figure 10.
type Matrix struct {
	Implementation string
	Versions       string
	Method         string
	IVSize         int
	Kind           sscrypto.Kind
	Cells          map[int]Cell
}

// RandomProbeLengths returns the probe lengths §5.1 exercises: 1–99 plus
// the GFW's 221.
func RandomProbeLengths() []int {
	out := make([]int, 0, 100)
	for n := 1; n <= 99; n++ {
		out = append(out, n)
	}
	return append(out, probe.NR2Length)
}

// ScanRandom sends `trials` random probes of every length in lengths to a
// fresh model server per configuration and collects the reaction matrix.
func ScanRandom(p reaction.Profile, spec sscrypto.Spec, password string, lengths []int, trials int, seed int64) (*Matrix, error) {
	srv, err := reaction.NewServer(p, spec, password)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	mp := &ModelProber{Server: srv}
	m := &Matrix{
		Implementation: p.Name, Versions: p.Versions,
		Method: spec.Name, IVSize: spec.IVSize, Kind: spec.Kind,
		Cells: map[int]Cell{},
	}
	for _, n := range lengths {
		cell := Cell{}
		for i := 0; i < trials; i++ {
			payload := make([]byte, n)
			rng.Read(payload)
			r, err := mp.Probe(payload, time.Time{})
			if err != nil {
				return nil, err
			}
			cell[r]++
		}
		m.Cells[n] = cell
	}
	return m, nil
}

// Render prints the matrix as a Figure 10-style band summary: contiguous
// length ranges with the same dominant reaction are collapsed.
func (m *Matrix) Render() string {
	lengths := make([]int, 0, len(m.Cells))
	for n := range m.Cells {
		lengths = append(lengths, n)
	}
	sort.Ints(lengths)

	var b strings.Builder
	fmt.Fprintf(&b, "%s %s, %s (%s, IV/salt %dB)\n",
		m.Implementation, m.Versions, m.Method, m.Kind, m.IVSize)
	start := -1
	var cur string
	flush := func(end int) {
		if start < 0 {
			return
		}
		if start == end {
			fmt.Fprintf(&b, "  len %3d:        %s\n", start, cur)
		} else {
			fmt.Fprintf(&b, "  len %3d–%3d:   %s\n", start, end, cur)
		}
	}
	prev := -1
	for _, n := range lengths {
		label := m.bandLabel(n)
		if label != cur || (prev >= 0 && n != prev+1) {
			flush(prev)
			start, cur = n, label
		}
		prev = n
	}
	flush(prev)
	return b.String()
}

// bandLabel summarizes a cell the way Figure 10's cells read.
func (m *Matrix) bandLabel(n int) string {
	c := m.Cells[n]
	dom := c.Dominant()
	if c.Fraction(dom) > 0.99 {
		return dom.String()
	}
	type rf struct {
		r reaction.Reaction
		f float64
	}
	var parts []rf
	for _, r := range []reaction.Reaction{reaction.RST, reaction.Timeout, reaction.FINACK, reaction.Data} {
		if f := c.Fraction(r); f > 0 {
			parts = append(parts, rf{r, f})
		}
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i].f > parts[j].f })
	var ss []string
	for _, p := range parts {
		ss = append(ss, fmt.Sprintf("%s(%.0f%%)", p.r, p.f*100))
	}
	return strings.Join(ss, " or ")
}

// ReplayResult is one Table 5 row: reactions to identical and
// byte-changed replays.
type ReplayResult struct {
	Implementation string
	Versions       string
	Mode           sscrypto.Kind
	Identical      Cell
	ByteChanged    Cell
}

// ScanReplay performs the Table 5 experiment against a model server:
// record genuine flights, then send identical (R1) and byte-changed (R2)
// replays.
func ScanReplay(p reaction.Profile, spec sscrypto.Spec, password string, trials int, seed int64, liveTarget string) (*ReplayResult, error) {
	srv, err := reaction.NewServer(p, spec, password)
	if err != nil {
		return nil, err
	}
	srv.Dialer = targetDialer{live: liveTarget}
	rng := rand.New(rand.NewSource(seed))
	now := time.Date(2019, 9, 29, 0, 0, 0, 0, time.UTC)

	res := &ReplayResult{
		Implementation: p.Name, Versions: p.Versions, Mode: spec.Kind,
		Identical: Cell{}, ByteChanged: Cell{},
	}
	for i := 0; i < trials; i++ {
		rec := genuineFlight(spec, password, liveTarget, rng)
		// The genuine connection happens (priming any replay filter).
		srv.ReactAt(rec, now, now)
		later := now.Add(time.Duration(1+rng.Intn(3600)) * time.Second)
		r1 := srv.ReactAt(append([]byte(nil), rec...), now, later)
		res.Identical[r1.Reaction]++
		r2 := srv.ReactAt(probe.Build(probe.R2, rec, rng), later, later)
		res.ByteChanged[r2.Reaction]++
	}
	return res, nil
}

// Render prints a Table 5-style row: R(eset)/T(imeout)/F(IN-ACK)/D(ata).
func (r *ReplayResult) Render() string {
	code := func(c Cell) string {
		var out []string
		for _, x := range []struct {
			r reaction.Reaction
			s string
		}{{reaction.RST, "R"}, {reaction.Timeout, "T"}, {reaction.FINACK, "F"}, {reaction.Data, "D"}} {
			if c.Fraction(x.r) > 0.02 {
				out = append(out, x.s)
			}
		}
		return strings.Join(out, "/")
	}
	return fmt.Sprintf("%-22s %-14s %-7v identical=%s byte-changed=%s",
		r.Implementation, r.Versions, r.Mode, code(r.Identical), code(r.ByteChanged))
}

// targetDialer treats one known target as live — replays of genuine
// connections reference targets that exist.
type targetDialer struct{ live string }

// Dial implements reaction.Dialer.
func (d targetDialer) Dial(target socks.Addr) reaction.DialOutcome {
	if target.String() == d.live {
		return reaction.DialOK
	}
	return reaction.HashDialer{}.Dial(target)
}

// recorderConn captures written bytes without forwarding them.
type recorderConn struct {
	net.Conn
	wire []byte
}

func (r *recorderConn) Write(p []byte) (int, error) {
	r.wire = append(r.wire, p...)
	return len(p), nil
}

// genuineFlight produces a real client first flight for the given method:
// target specification plus an HTTP-ish request, encrypted as a client
// would — the payload the GFW records and replays.
func genuineFlight(spec sscrypto.Spec, password, target string, rng *rand.Rand) []byte {
	addr, err := socks.ParseAddr(target)
	if err != nil {
		panic(err)
	}
	rec := &recorderConn{}
	conn := ssproto.NewConnWithRand(rec, spec, spec.Key(password), rng)
	first := append(addr.Append(nil), []byte("GET / HTTP/1.1\r\nHost: example.com\r\n\r\n")...)
	if _, err := conn.Write(first); err != nil {
		panic(err)
	}
	return rec.wire
}

// ParseLengths parses a comma-separated list of lengths and ranges
// ("1-99,221") — the CLI's probe-length syntax.
func ParseLengths(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if lo, hi, ok := strings.Cut(part, "-"); ok {
			a, err1 := strconv.Atoi(lo)
			b, err2 := strconv.Atoi(hi)
			if err1 != nil || err2 != nil || a < 0 || b < a {
				return nil, fmt.Errorf("probesim: bad length range %q", part)
			}
			for n := a; n <= b; n++ {
				out = append(out, n)
			}
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("probesim: bad length %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("probesim: no lengths in %q", s)
	}
	return out, nil
}
