package probesim

import (
	"strings"
	"testing"
	"time"

	"sslab/internal/reaction"
	"sslab/internal/sscrypto"
	"sslab/internal/ssserver"
)

// TestScanRandomOutline106 regenerates the OutlineVPN v1.0.6 row of
// Figure 10b through the simulator API.
func TestScanRandomOutline106(t *testing.T) {
	spec, _ := sscrypto.Lookup("chacha20-ietf-poly1305")
	m, err := ScanRandom(reaction.Outline106, spec, "pw", RandomProbeLengths(), 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Cells[49].Dominant() != reaction.Timeout {
		t.Error("len 49 should time out")
	}
	if m.Cells[50].Dominant() != reaction.FINACK {
		t.Error("len 50 should FIN/ACK")
	}
	if m.Cells[51].Dominant() != reaction.RST || m.Cells[221].Dominant() != reaction.RST {
		t.Error("len > 50 should RST")
	}
	out := m.Render()
	if !strings.Contains(out, "FIN/ACK") || !strings.Contains(out, "RST") {
		t.Errorf("render missing bands:\n%s", out)
	}
}

// TestScanRandomStreamBands checks the old-libev stream row via the
// simulator, including the probabilistic 15+ band.
func TestScanRandomStreamBands(t *testing.T) {
	spec, _ := sscrypto.Lookup("chacha20") // 8-byte IV
	m, err := ScanRandom(reaction.LibevOld, spec, "pw", RandomProbeLengths(), 300, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Cells[8].Dominant() != reaction.Timeout {
		t.Error("len 8 (= IV) should time out")
	}
	if m.Cells[9].Dominant() != reaction.RST {
		t.Error("len 9 should RST")
	}
	c := m.Cells[50]
	if f := c.Fraction(reaction.RST); f < 13.0/16*0.95 {
		t.Errorf("len 50 RST fraction %.3f, want above 13/16", f)
	}
	if c.Fraction(reaction.Timeout)+c.Fraction(reaction.FINACK) == 0 {
		t.Error("len 50 lacks the TIMEOUT/FIN-ACK tail")
	}
}

// TestScanReplayTable5 regenerates Table 5's rows.
func TestScanReplayTable5(t *testing.T) {
	aead, _ := sscrypto.Lookup("aes-256-gcm")
	stream, _ := sscrypto.Lookup("aes-256-ctr")
	ccp, _ := sscrypto.Lookup("chacha20-ietf-poly1305")
	const target = "93.184.216.34:443"

	for _, tc := range []struct {
		profile   reaction.Profile
		spec      sscrypto.Spec
		identical reaction.Reaction
	}{
		{reaction.LibevOld, stream, reaction.RST},
		{reaction.LibevOld, aead, reaction.RST},
		{reaction.LibevNew, stream, reaction.Timeout},
		{reaction.LibevNew, aead, reaction.Timeout},
		{reaction.Outline107, ccp, reaction.Data},
	} {
		r, err := ScanReplay(tc.profile, tc.spec, "pw", 50, 3, target)
		if err != nil {
			t.Fatal(err)
		}
		if got := r.Identical.Dominant(); got != tc.identical {
			t.Errorf("%s %s %v: identical replay %v, want %v",
				tc.profile.Name, tc.profile.Versions, tc.spec.Kind, got, tc.identical)
		}
		if tc.profile == reaction.Outline107 {
			if got := r.ByteChanged.Dominant(); got != reaction.Timeout {
				t.Errorf("outline byte-changed %v, want TIMEOUT", got)
			}
		}
		if r.Identical.Fraction(reaction.Data) > 0 && tc.profile.ReplayDefense {
			t.Errorf("%s: replay-defended server served data", tc.profile.Versions)
		}
		if out := r.Render(); !strings.Contains(out, "identical=") {
			t.Errorf("render malformed: %s", out)
		}
	}
}

// TestTCPProberAgainstLiveServer cross-validates the TCP prober against a
// live ssserver: the live reactions must match the model's Figure 10b row.
func TestTCPProberAgainstLiveServer(t *testing.T) {
	srv, err := ssserver.Listen("127.0.0.1:0", ssserver.Config{
		Method: "chacha20-ietf-poly1305", Password: "pw",
		Profile: reaction.Outline106, Timeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	p := &TCPProber{Addr: srv.Addr().String(), Timeout: 700 * time.Millisecond}
	payload := make([]byte, 256)
	for i := range payload {
		payload[i] = byte(i * 37)
	}
	if r, err := p.Probe(payload[:49], time.Time{}); err != nil || r != reaction.Timeout {
		t.Errorf("49B live probe: %v %v, want TIMEOUT", r, err)
	}
	if r, err := p.Probe(payload[:50], time.Time{}); err != nil || r == reaction.Timeout {
		t.Errorf("50B live probe: %v %v, want immediate close", r, err)
	}
	if r, err := p.Probe(payload[:221], time.Time{}); err != nil || r == reaction.Timeout {
		t.Errorf("221B live probe: %v %v, want immediate close", r, err)
	}
}

func TestParseLengths(t *testing.T) {
	got, err := ParseLengths("1-3,10, 221")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3, 10, 221}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	for _, bad := range []string{"", "x", "5-2", "-1", "3-", "1,,2x"} {
		if _, err := ParseLengths(bad); err == nil {
			t.Errorf("ParseLengths(%q) accepted", bad)
		}
	}
}
