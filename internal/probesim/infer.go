package probesim

import (
	"sort"

	"sslab/internal/reaction"
	"sslab/internal/sscrypto"
)

// Inference is what §5.2.2 shows an attacker can conclude from a server's
// reactions to a set of random probes: the cryptographic construction, the
// IV or salt length (and hence sometimes the exact cipher), and the
// implementation/version family.
type Inference struct {
	// Kind is the inferred construction (stream or AEAD); only meaningful
	// when Confident.
	Kind sscrypto.Kind
	// IVSize is the inferred IV (stream) or salt (AEAD) length in bytes,
	// 0 if not determinable.
	IVSize int
	// Profile names the behaviour family consistent with the matrix.
	Profile reaction.Profile
	// Confident is false when the server showed no distinguishable
	// reactions at all (the hardened / v1.0.7+ behaviour) — the §7.2 goal.
	Confident bool
	// CipherHint is set when the IV length uniquely identifies the cipher
	// (a 12-byte IV means chacha20-ietf, per §5.2.2).
	CipherHint string
}

// Infer plays the attacker: given a reaction matrix from random probes of
// many lengths, recover what the server is running.
func Infer(m *Matrix) Inference {
	lengths := make([]int, 0, len(m.Cells))
	for n := range m.Cells {
		lengths = append(lengths, n)
	}
	sort.Ints(lengths)

	// Find the first length at which the server ever closes immediately
	// (RST or FIN/ACK) and the overall reaction mix.
	firstClose, everClose := 0, false
	rstEver := false
	finAt := 0
	for _, n := range lengths {
		c := m.Cells[n]
		closeFrac := c.Fraction(reaction.RST) + c.Fraction(reaction.FINACK)
		if closeFrac > 0 && !everClose {
			firstClose, everClose = n, true
		}
		if c.Fraction(reaction.RST) > 0 {
			rstEver = true
		}
		if c.Fraction(reaction.FINACK) > 0.9 && finAt == 0 {
			finAt = n
		}
	}

	if !everClose {
		// Pure timeouts: new libev with AEAD, OutlineVPN v1.0.7+, or the
		// hardened profile — indistinguishable, which is the point.
		return Inference{Confident: false}
	}
	if !rstEver {
		// Occasional FIN/ACKs without a single RST: a new-libev stream
		// server whose random probes sometimes decrypt to a connectable
		// target (the "FIN/ACK below 3/16" row of Figure 10a). The exact
		// IV length is hard to pin from FIN/ACKs alone.
		return Inference{Kind: sscrypto.Stream, Profile: reaction.LibevNew, Confident: true}
	}

	// AEAD thresholds are deterministic: everything below the threshold
	// times out and everything at/above closes with certainty. Check the
	// jump sharpness first.
	if sharp, salt, prof := aeadSignature(m, lengths, firstClose, finAt); sharp {
		inf := Inference{Kind: sscrypto.AEAD, IVSize: salt, Profile: prof, Confident: true}
		return inf
	}

	// Stream signature: probabilistic mix above IV+1 with the 13/16 RST
	// plateau (or 13/16 timeout for new libev — but that never closes, so
	// reaching here means old libev). firstClose = IV + 1.
	iv := firstClose - 1
	inf := Inference{Kind: sscrypto.Stream, IVSize: iv, Profile: reaction.LibevOld, Confident: true}
	if iv == 12 {
		// §5.2.2: chacha20-ietf is the only supported cipher with a
		// 12-byte IV.
		inf.CipherHint = "chacha20-ietf"
	}
	return inf
}

// aeadSignature detects the deterministic AEAD bands and maps them to a
// salt size and profile.
func aeadSignature(m *Matrix, lengths []int, firstClose, finAt int) (bool, int, reaction.Profile) {
	// All-or-nothing reactions at every length => AEAD-style determinism.
	for _, n := range lengths {
		c := m.Cells[n]
		dom := c.Dominant()
		if f := c.Fraction(dom); f < 1 {
			return false, 0, reaction.Profile{}
		}
	}
	// OutlineVPN v1.0.6: FIN/ACK at exactly salt+18, RST above.
	if finAt != 0 && m.Cells[finAt+1] != nil && m.Cells[finAt+1].Dominant() == reaction.RST {
		return true, finAt - 18, reaction.Outline106
	}
	// Old libev AEAD: RST from salt+35 on.
	return true, firstClose - 35, reaction.LibevOld
}
