// Package entropy provides Shannon-entropy measurement of packet payloads
// and generation of payloads with a chosen per-byte entropy — the two
// operations the paper's random-data experiments (§4.1, Table 4) are built
// on. The GFW's passive detector uses the entropy of the first data packet
// as a classification feature (Figure 9).
package entropy

import (
	"math"
	"math/rand"
	"sort"
)

// Shannon is the detector's innermost loop (it runs once per recorded-
// probability evaluation), so it avoids math.Log2 entirely for realistic
// packet sizes: with the identity
//
//	H = -Σ (c/n)·log2(c/n) = (n·log2(n) - Σ c·log2(c)) / n
//
// only the function c ↦ c·log2(c) is needed, and for c up to
// log2TableSize it comes from a table built once at init.
const log2TableSize = 4096

// cLog2c[c] = c·log2(c), with the c = 0 entry 0 (the limit value, which
// also lets the histogram loop skip the c == 0 branch).
var cLog2c [log2TableSize]float64

func init() {
	for i := 2; i < log2TableSize; i++ {
		cLog2c[i] = float64(i) * math.Log2(float64(i))
	}
}

func cLog2(c int) float64 {
	if c < log2TableSize {
		return cLog2c[c]
	}
	return float64(c) * math.Log2(float64(c))
}

// Shannon returns the per-byte Shannon entropy of b in bits, in [0, 8].
// An empty slice has entropy 0 by convention.
func Shannon(b []byte) float64 {
	n := len(b)
	if n == 0 {
		return 0
	}
	var counts [256]int
	for _, c := range b {
		counts[c]++
	}
	var sum float64
	if n < log2TableSize {
		// Bin counts are bounded by n, so every lookup hits the table —
		// and a zero count contributes exactly 0, no branch needed.
		for _, c := range counts {
			sum += cLog2c[c]
		}
	} else {
		for _, c := range counts {
			if c != 0 {
				sum += cLog2(c)
			}
		}
	}
	h := (cLog2(n) - sum) / float64(n)
	if h < 0 {
		return 0 // guard against float rounding on degenerate inputs
	}
	return h
}

// Generator produces payloads whose empirical per-byte entropy tracks a
// target. It works by drawing bytes from the smallest alphabet whose
// uniform distribution has at least the target entropy, then flattening
// the empirical distribution over that alphabet (for short payloads the
// empirical entropy of uniform sampling is biased low, so we assign byte
// values round-robin before shuffling).
type Generator struct {
	rng *rand.Rand
}

// NewGenerator returns a Generator seeded deterministically.
func NewGenerator(seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed))}
}

// Payload returns n bytes whose Shannon entropy is close to target bits
// per byte (clamped to [0, 8] and to what length n can express: a payload
// of n bytes has entropy at most log2(n)).
func (g *Generator) Payload(n int, target float64) []byte {
	if n <= 0 {
		return nil
	}
	if target < 0 {
		target = 0
	}
	if target > 8 {
		target = 8
	}
	if maxH := math.Log2(float64(n)); target > maxH {
		target = maxH
	}
	// A uniform alphabet of k symbols has entropy log2(k). To hit
	// fractional targets, use k = floor(2^target) equally common symbols
	// plus one rarer symbol whose count c we binary-search: empirical
	// entropy grows monotonically in c from log2(k) towards log2(k+1).
	k := int(math.Pow(2, target))
	if k < 1 {
		k = 1
	}
	if k > 255 {
		k = 255 // leave room for the partial symbol
	}
	counts := bestCounts(n, k, target)

	// Map counts onto k+1 distinct random byte values and shuffle.
	alphabet := g.rng.Perm(256)[:len(counts)]
	sort.Ints(alphabet)
	out := make([]byte, 0, n)
	for i, c := range counts {
		for j := 0; j < c; j++ {
			out = append(out, byte(alphabet[i]))
		}
	}
	g.rng.Shuffle(n, func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// bestCounts returns per-symbol counts over k+1 symbols summing to n whose
// empirical entropy is as close to target as integer quantization allows.
func bestCounts(n, k int, target float64) []int {
	build := func(c int) []int {
		counts := make([]int, k+1)
		rest := n - c
		for i := 0; i < k; i++ {
			counts[i] = rest / k
			if i < rest%k {
				counts[i]++
			}
		}
		counts[k] = c
		return counts
	}
	lo, hi := 0, n/(k+1) // at hi the distribution is uniform over k+1
	bestC, bestErr := 0, math.Inf(1)
	for lo <= hi {
		mid := (lo + hi) / 2
		h := entropyOfCounts(build(mid), n)
		if e := math.Abs(h - target); e < bestErr {
			bestC, bestErr = mid, e
		}
		if h < target {
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	return build(bestC)
}

func entropyOfCounts(counts []int, n int) float64 {
	h := 0.0
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(n)
		h -= p * math.Log2(p)
	}
	return h
}

// Random returns n uniformly random bytes (entropy ≈ 8 for large n) — the
// shape of Shadowsocks ciphertext and of the GFW's non-replay probes.
func (g *Generator) Random(n int) []byte {
	out := make([]byte, n)
	g.rng.Read(out)
	return out
}

// Intn exposes the generator's PRNG for callers that need correlated
// randomness (e.g. choosing a payload length and then its contents).
func (g *Generator) Intn(n int) int { return g.rng.Intn(n) }

// Float64 returns a uniform float in [0, 1).
func (g *Generator) Float64() float64 { return g.rng.Float64() }
