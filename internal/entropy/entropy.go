// Package entropy provides Shannon-entropy measurement of packet payloads
// and generation of payloads with a chosen per-byte entropy — the two
// operations the paper's random-data experiments (§4.1, Table 4) are built
// on. The GFW's passive detector uses the entropy of the first data packet
// as a classification feature (Figure 9).
package entropy

import (
	"math"
	"math/rand"
	"sort"
)

// Shannon returns the per-byte Shannon entropy of b in bits, in [0, 8].
// An empty slice has entropy 0 by convention.
func Shannon(b []byte) float64 {
	if len(b) == 0 {
		return 0
	}
	var counts [256]int
	for _, c := range b {
		counts[c]++
	}
	n := float64(len(b))
	h := 0.0
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / n
		h -= p * math.Log2(p)
	}
	return h
}

// Generator produces payloads whose empirical per-byte entropy tracks a
// target. It works by drawing bytes from the smallest alphabet whose
// uniform distribution has at least the target entropy, then flattening
// the empirical distribution over that alphabet (for short payloads the
// empirical entropy of uniform sampling is biased low, so we assign byte
// values round-robin before shuffling).
type Generator struct {
	rng *rand.Rand
}

// NewGenerator returns a Generator seeded deterministically.
func NewGenerator(seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed))}
}

// Payload returns n bytes whose Shannon entropy is close to target bits
// per byte (clamped to [0, 8] and to what length n can express: a payload
// of n bytes has entropy at most log2(n)).
func (g *Generator) Payload(n int, target float64) []byte {
	if n <= 0 {
		return nil
	}
	if target < 0 {
		target = 0
	}
	if target > 8 {
		target = 8
	}
	if maxH := math.Log2(float64(n)); target > maxH {
		target = maxH
	}
	// A uniform alphabet of k symbols has entropy log2(k). To hit
	// fractional targets, use k = floor(2^target) equally common symbols
	// plus one rarer symbol whose count c we binary-search: empirical
	// entropy grows monotonically in c from log2(k) towards log2(k+1).
	k := int(math.Pow(2, target))
	if k < 1 {
		k = 1
	}
	if k > 255 {
		k = 255 // leave room for the partial symbol
	}
	counts := bestCounts(n, k, target)

	// Map counts onto k+1 distinct random byte values and shuffle.
	alphabet := g.rng.Perm(256)[:len(counts)]
	sort.Ints(alphabet)
	out := make([]byte, 0, n)
	for i, c := range counts {
		for j := 0; j < c; j++ {
			out = append(out, byte(alphabet[i]))
		}
	}
	g.rng.Shuffle(n, func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// bestCounts returns per-symbol counts over k+1 symbols summing to n whose
// empirical entropy is as close to target as integer quantization allows.
func bestCounts(n, k int, target float64) []int {
	build := func(c int) []int {
		counts := make([]int, k+1)
		rest := n - c
		for i := 0; i < k; i++ {
			counts[i] = rest / k
			if i < rest%k {
				counts[i]++
			}
		}
		counts[k] = c
		return counts
	}
	lo, hi := 0, n/(k+1) // at hi the distribution is uniform over k+1
	bestC, bestErr := 0, math.Inf(1)
	for lo <= hi {
		mid := (lo + hi) / 2
		h := entropyOfCounts(build(mid), n)
		if e := math.Abs(h - target); e < bestErr {
			bestC, bestErr = mid, e
		}
		if h < target {
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	return build(bestC)
}

func entropyOfCounts(counts []int, n int) float64 {
	h := 0.0
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(n)
		h -= p * math.Log2(p)
	}
	return h
}

// Random returns n uniformly random bytes (entropy ≈ 8 for large n) — the
// shape of Shadowsocks ciphertext and of the GFW's non-replay probes.
func (g *Generator) Random(n int) []byte {
	out := make([]byte, n)
	g.rng.Read(out)
	return out
}

// Intn exposes the generator's PRNG for callers that need correlated
// randomness (e.g. choosing a payload length and then its contents).
func (g *Generator) Intn(n int) int { return g.rng.Intn(n) }

// Float64 returns a uniform float in [0, 1).
func (g *Generator) Float64() float64 { return g.rng.Float64() }
