package entropy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestShannonKnownValues(t *testing.T) {
	for _, tc := range []struct {
		name string
		in   []byte
		want float64
	}{
		{"empty", nil, 0},
		{"single byte", []byte{0x42}, 0},
		{"constant run", make([]byte, 1000), 0},
		{"two symbols equal", []byte{0, 1, 0, 1, 0, 1, 0, 1}, 1},
		{"four symbols equal", []byte{0, 1, 2, 3, 0, 1, 2, 3}, 2},
	} {
		if got := Shannon(tc.in); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s: Shannon = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestShannonAll256(t *testing.T) {
	b := make([]byte, 256)
	for i := range b {
		b[i] = byte(i)
	}
	if got := Shannon(b); math.Abs(got-8) > 1e-12 {
		t.Errorf("Shannon over all 256 values = %v, want 8", got)
	}
}

// TestShannonBounds property-tests 0 <= H <= 8 and H <= log2(len).
func TestShannonBounds(t *testing.T) {
	f := func(b []byte) bool {
		h := Shannon(b)
		if h < 0 || h > 8 {
			return false
		}
		if len(b) > 0 && h > math.Log2(float64(len(b)))+1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestGeneratorHitsTargets verifies generated payloads land near the
// requested entropy across the whole [0,8] range used by Exp 3 (Table 4).
func TestGeneratorHitsTargets(t *testing.T) {
	g := NewGenerator(1)
	for _, target := range []float64{0, 0.5, 1, 2, 3, 4, 5, 6, 7, 7.5, 8} {
		p := g.Payload(1000, target)
		got := Shannon(p)
		// Tolerance: alphabet quantization limits precision at the top end.
		tol := 0.35
		if math.Abs(got-target) > tol {
			t.Errorf("target %.2f: got entropy %.3f (payload len %d)", target, got, len(p))
		}
	}
}

// TestGeneratorLowEntropy covers Exp 2's requirement: entropy < 2.
func TestGeneratorLowEntropy(t *testing.T) {
	g := NewGenerator(2)
	for i := 0; i < 50; i++ {
		n := 1 + g.Intn(1000)
		p := g.Payload(n, 1.0)
		if h := Shannon(p); h >= 2 {
			t.Errorf("len %d: entropy %.3f, want < 2", n, h)
		}
	}
}

// TestGeneratorHighEntropy covers Exp 1's requirement: entropy > 7 for
// payloads long enough to express it.
func TestGeneratorHighEntropy(t *testing.T) {
	g := NewGenerator(3)
	for i := 0; i < 50; i++ {
		n := 300 + g.Intn(700)
		p := g.Payload(n, 8)
		if h := Shannon(p); h <= 7 {
			t.Errorf("len %d: entropy %.3f, want > 7", n, h)
		}
	}
}

func TestGeneratorShortPayloads(t *testing.T) {
	g := NewGenerator(4)
	if p := g.Payload(0, 5); p != nil {
		t.Error("zero-length payload should be nil")
	}
	if p := g.Payload(1, 8); len(p) != 1 {
		t.Error("single-byte payload wrong length")
	}
	// A 2-byte payload can express at most 1 bit/byte.
	p := g.Payload(2, 8)
	if h := Shannon(p); h > 1+1e-9 {
		t.Errorf("2-byte payload entropy %v > 1", h)
	}
}

func TestGeneratorClamping(t *testing.T) {
	g := NewGenerator(5)
	if h := Shannon(g.Payload(500, -3)); h != 0 {
		t.Errorf("negative target gave entropy %v, want 0", h)
	}
	if h := Shannon(g.Payload(500, 100)); h < 7 {
		t.Errorf("over-8 target gave entropy %v, want near 8", h)
	}
}

// TestRandomIsHighEntropy sanity-checks the uniform generator.
func TestRandomIsHighEntropy(t *testing.T) {
	g := NewGenerator(6)
	if h := Shannon(g.Random(4096)); h < 7.8 {
		t.Errorf("uniform random entropy %v, want >= 7.8", h)
	}
}

func TestDeterminism(t *testing.T) {
	a := NewGenerator(42).Payload(256, 6)
	b := NewGenerator(42).Payload(256, 6)
	if string(a) != string(b) {
		t.Error("same seed produced different payloads")
	}
}

func BenchmarkShannon(b *testing.B) {
	g := NewGenerator(7)
	p := g.Random(1500)
	b.SetBytes(int64(len(p)))
	for i := 0; i < b.N; i++ {
		Shannon(p)
	}
}

// TestShannonMatchesDirectFormula checks the table-driven fast path
// against the textbook -Σ p·log2(p) formula, including payloads larger
// than the c·log2(c) table.
func TestShannonMatchesDirectFormula(t *testing.T) {
	direct := func(b []byte) float64 {
		if len(b) == 0 {
			return 0
		}
		var counts [256]int
		for _, c := range b {
			counts[c]++
		}
		n := float64(len(b))
		h := 0.0
		for _, c := range counts {
			if c == 0 {
				continue
			}
			p := float64(c) / n
			h -= p * math.Log2(p)
		}
		return h
	}
	g := NewGenerator(23)
	for _, n := range []int{1, 2, 7, 64, 221, 1000, 1500, log2TableSize - 1, log2TableSize, 3 * log2TableSize} {
		for _, target := range []float64{0.5, 3, 6, 8} {
			b := g.Payload(n, target)
			got, want := Shannon(b), direct(b)
			if math.Abs(got-want) > 1e-9 {
				t.Errorf("n=%d target=%.1f: table Shannon %v, direct %v", n, target, got, want)
			}
		}
	}
}
