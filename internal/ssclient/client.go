// Package ssclient implements a Shadowsocks client: a dialer that tunnels
// connections through a remote Shadowsocks server, and a local SOCKS5
// listener that lets ordinary applications (browsers, curl) use the tunnel
// — the client-side setup of the paper's measurement experiments (§3.1).
package ssclient

import (
	"fmt"
	"net"
	"sync"
	"time"

	"sslab/internal/metrics"
	"sslab/internal/netsim"
	"sslab/internal/socks"
	"sslab/internal/sscrypto"
	"sslab/internal/ssproto"
)

// Config configures a Client.
type Config struct {
	// Server is the Shadowsocks server's host:port.
	Server string
	// Method and Password must match the server's configuration.
	Method   string
	Password string
	// Timeout bounds the TCP connect to the server.
	//
	// Deprecated: set Timeouts.Connect instead. When Timeouts.Connect is
	// zero this value is used, so existing callers keep their behaviour.
	Timeout time.Duration
	// Timeouts bounds the connection stages: Connect for the TCP connect
	// to the server (default 10 s) and Idle for the SOCKS relay loops
	// (zero keeps the historical wait-forever relay). Handshake is
	// unused on the client side.
	Timeouts netsim.Timeouts
	// Dial overrides the transport dialer (tests).
	Dial func(network, address string) (net.Conn, error)
	// Shaper, if set, wraps the transport connection before the protocol
	// runs — the hook the brdgrd defense uses to clamp segment sizes.
	Shaper func(net.Conn) net.Conn
	// Metrics, when set, receives ssclient.* counters. A nil registry is
	// valid and makes every instrument a no-op.
	Metrics *metrics.Registry
}

// Client dials targets through a Shadowsocks server.
type Client struct {
	cfg  Config
	spec sscrypto.Spec
	key  []byte

	mDials      *metrics.Counter
	mDialErrors *metrics.Counter
}

// New validates cfg and returns a Client.
func New(cfg Config) (*Client, error) {
	spec, err := sscrypto.Lookup(cfg.Method)
	if err != nil {
		return nil, err
	}
	if cfg.Server == "" {
		return nil, fmt.Errorf("ssclient: server address required")
	}
	if cfg.Timeouts.Connect <= 0 {
		cfg.Timeouts.Connect = cfg.Timeout
	}
	cfg.Timeouts = cfg.Timeouts.WithDefaults()
	cfg.Timeout = cfg.Timeouts.Connect
	if cfg.Dial == nil {
		cfg.Dial = func(network, address string) (net.Conn, error) {
			return net.DialTimeout(network, address, cfg.Timeouts.Connect)
		}
	}
	return &Client{
		cfg:         cfg,
		spec:        spec,
		key:         spec.Key(cfg.Password),
		mDials:      cfg.Metrics.Counter("ssclient.dials"),
		mDialErrors: cfg.Metrics.Counter("ssclient.dial_errors"),
	}, nil
}

// Dial opens a proxied connection to target (host:port). The returned
// conn's Reads and Writes are plaintext relative to the target; on the
// wire they are Shadowsocks ciphertext.
//
// The target specification is sent together with the first payload write,
// mirroring real clients: the first data-carrying packet of the session is
// [IV|salt][spec+data...] — the packet the GFW's detector measures.
func (c *Client) Dial(target string) (net.Conn, error) {
	c.mDials.Inc()
	addr, err := socks.ParseAddr(target)
	if err != nil {
		c.mDialErrors.Inc()
		return nil, err
	}
	transport, err := c.cfg.Dial("tcp", c.cfg.Server)
	if err != nil {
		c.mDialErrors.Inc()
		return nil, err
	}
	if c.cfg.Shaper != nil {
		transport = c.cfg.Shaper(transport)
	}
	ssc := ssproto.NewConn(transport, c.spec, c.key)
	return &proxiedConn{Conn: ssc, header: addr.Append(nil)}, nil
}

// proxiedConn prepends the target specification to the first write.
//
// mu is held across every underlying Write, not just the header
// handoff: Read's header flush and a relay goroutine's data write can
// run concurrently, and the cipher conns underneath (nonce counters,
// reused write buffers) are single-writer by contract.
type proxiedConn struct {
	net.Conn
	header []byte
	mu     sync.Mutex
}

func (p *proxiedConn) Write(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.header == nil {
		return p.Conn.Write(b)
	}
	header := p.header
	p.header = nil
	if _, err := p.Conn.Write(append(header, b...)); err != nil {
		return 0, err
	}
	return len(b), nil
}

// Read flushes a pending header first (for protocols where the server
// speaks first and the client must still announce its target). The
// lock is dropped before the blocking Conn.Read so writes proceed
// while a read is parked.
func (p *proxiedConn) Read(b []byte) (int, error) {
	p.mu.Lock()
	if p.header != nil {
		header := p.header
		p.header = nil
		if _, err := p.Conn.Write(header); err != nil {
			p.mu.Unlock()
			return 0, err
		}
	}
	p.mu.Unlock()
	return p.Conn.Read(b)
}

// ServeSOCKS5 accepts local SOCKS5 clients on l and proxies each CONNECT
// through the Shadowsocks server, blocking until l is closed.
func (c *Client) ServeSOCKS5(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go c.handleSOCKS(conn)
	}
}

func (c *Client) handleSOCKS(conn net.Conn) {
	defer conn.Close()
	target, err := socks.Handshake(conn)
	if err != nil {
		return
	}
	remote, err := c.Dial(target.String())
	if err != nil {
		return
	}
	defer remote.Close()

	done := make(chan struct{}, 2)
	copyHalf := func(dst, src net.Conn) {
		defer func() { done <- struct{}{} }()
		buf := make([]byte, 16*1024)
		for {
			// Idle timeout per pending read; zero keeps the historical
			// wait-forever relay.
			if d := c.cfg.Timeouts.Idle; d > 0 {
				src.SetReadDeadline(time.Now().Add(d))
			}
			n, err := src.Read(buf)
			if n > 0 {
				if _, werr := dst.Write(buf[:n]); werr != nil {
					return
				}
			}
			if err != nil {
				return
			}
		}
	}
	go copyHalf(remote, conn)
	go copyHalf(conn, remote)
	<-done
}

// UDPConn is a datagram tunnel through the Shadowsocks server: Send
// encrypts and relays one datagram to target; Recv returns one reply
// datagram and the address it came from.
type UDPConn struct {
	pc     net.PacketConn
	server net.Addr
	spec   sscrypto.Spec
	key    []byte
}

// DialUDP opens a UDP association with the Shadowsocks server.
func (c *Client) DialUDP() (*UDPConn, error) {
	server, err := net.ResolveUDPAddr("udp", c.cfg.Server)
	if err != nil {
		return nil, err
	}
	pc, err := net.ListenPacket("udp", ":0")
	if err != nil {
		return nil, err
	}
	return &UDPConn{pc: pc, server: server, spec: c.spec, key: c.key}, nil
}

// Send relays one datagram to target through the proxy.
func (u *UDPConn) Send(target string, payload []byte) error {
	addr, err := socks.ParseAddr(target)
	if err != nil {
		return err
	}
	pkt, err := ssproto.PackUDP(u.spec, u.key, addr, payload)
	if err != nil {
		return err
	}
	_, err = u.pc.WriteTo(pkt, u.server)
	return err
}

// Recv waits for one relayed reply, returning its payload and the remote
// address it originated from.
func (u *UDPConn) Recv(deadline time.Time) (socks.Addr, []byte, error) {
	buf := make([]byte, 64*1024)
	u.pc.SetReadDeadline(deadline)
	n, _, err := u.pc.ReadFrom(buf)
	if err != nil {
		return socks.Addr{}, nil, err
	}
	return ssproto.UnpackUDP(u.spec, u.key, buf[:n])
}

// Close releases the local socket.
func (u *UDPConn) Close() error { return u.pc.Close() }
