package ssclient

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"

	"sslab/internal/socks"
	"sslab/internal/sscrypto"
	"sslab/internal/ssproto"
)

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Method: "aes-256-gcm", Password: "x"}); err == nil {
		t.Error("missing server accepted")
	}
	if _, err := New(Config{Server: "h:1", Method: "nope", Password: "x"}); err == nil {
		t.Error("unknown method accepted")
	}
	if _, err := New(Config{Server: "h:1", Method: "aes-256-gcm", Password: "x"}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

// fakeTransport returns a Dial function handing out one end of a pipe and
// a channel delivering the other end.
func fakeTransport() (func(string, string) (net.Conn, error), chan net.Conn) {
	serverSide := make(chan net.Conn, 1)
	dial := func(network, address string) (net.Conn, error) {
		a, b := net.Pipe()
		serverSide <- b
		return a, nil
	}
	return dial, serverSide
}

// TestDialSendsSpecWithFirstPayload verifies the client merges the target
// specification and the first application bytes into one first flight —
// the behaviour that defines the first-packet length the GFW measures
// (and the change OutlineVPN adopted in July 2020).
func TestDialSendsSpecWithFirstPayload(t *testing.T) {
	dial, serverSide := fakeTransport()
	c, err := New(Config{Server: "server:8388", Method: "aes-128-gcm", Password: "pw", Dial: dial})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := c.Dial("example.com:80")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	srvRaw := <-serverSide
	spec, _ := sscrypto.Lookup("aes-128-gcm")
	srv := ssproto.NewConn(srvRaw, spec, spec.Key("pw"))

	go conn.Write([]byte("GET / HTTP/1.1\r\n\r\n"))

	// The server must receive spec+payload decodable from one chunk
	// stream, starting with the target address.
	addr, err := socks.ReadAddr(srv)
	if err != nil {
		t.Fatalf("reading target spec: %v", err)
	}
	if addr.String() != "example.com:80" {
		t.Errorf("target %v", addr)
	}
	buf := make([]byte, 18)
	if _, err := io.ReadFull(srv, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, []byte("GET / HTTP/1.1\r\n\r\n")) {
		t.Errorf("payload %q", buf)
	}
}

// TestDialFlushesHeaderOnRead: a protocol where the server speaks first
// still needs the target spec delivered before the client reads.
func TestDialFlushesHeaderOnRead(t *testing.T) {
	dial, serverSide := fakeTransport()
	c, err := New(Config{Server: "server:8388", Method: "aes-256-gcm", Password: "pw", Dial: dial})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := c.Dial("1.2.3.4:25") // SMTP-style: server banner first
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	done := make(chan error, 1)
	go func() {
		srvRaw := <-serverSide
		spec, _ := sscrypto.Lookup("aes-256-gcm")
		srv := ssproto.NewConn(srvRaw, spec, spec.Key("pw"))
		addr, err := socks.ReadAddr(srv)
		if err != nil {
			done <- err
			return
		}
		if addr.String() != "1.2.3.4:25" {
			done <- io.ErrUnexpectedEOF
			return
		}
		_, err = srv.Write([]byte("220 banner\r\n"))
		done <- err
	}()

	banner := make([]byte, 12)
	if _, err := io.ReadFull(conn, banner); err != nil {
		t.Fatalf("reading banner: %v", err)
	}
	if string(banner) != "220 banner\r\n" {
		t.Errorf("banner %q", banner)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestDialRejectsBadTarget(t *testing.T) {
	c, _ := New(Config{Server: "server:8388", Method: "aes-256-gcm", Password: "pw"})
	if _, err := c.Dial("no-port-here"); err == nil {
		t.Error("bad target accepted")
	}
}

// TestShaperApplied verifies the Shaper hook wraps the transport before
// the protocol writes anything.
func TestShaperApplied(t *testing.T) {
	dial, serverSide := fakeTransport()
	var segments []int
	shaper := func(conn net.Conn) net.Conn {
		return &segmentCounter{Conn: conn, sizes: &segments}
	}
	c, err := New(Config{
		Server: "server:8388", Method: "aes-256-gcm", Password: "pw",
		Dial: dial, Shaper: shaper,
	})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := c.Dial("example.com:443")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	go func() {
		srv := <-serverSide
		io.Copy(io.Discard, srv)
	}()
	if _, err := conn.Write([]byte("payload")); err != nil {
		t.Fatal(err)
	}
	if len(segments) == 0 {
		t.Fatal("shaper never saw a write")
	}
}

type segmentCounter struct {
	net.Conn
	sizes *[]int
}

func (s *segmentCounter) Write(p []byte) (int, error) {
	*s.sizes = append(*s.sizes, len(p))
	return s.Conn.Write(p)
}

// TestServeSOCKS5EndToEnd drives the client's local SOCKS5 front end
// against a minimal in-package Shadowsocks "server" implemented directly
// with ssproto.
func TestServeSOCKS5EndToEnd(t *testing.T) {
	// Minimal remote Shadowsocks server: decrypt, read spec, echo payload.
	spec, _ := sscrypto.Lookup("aes-128-gcm")
	key := spec.Key("pw")
	ssLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ssLn.Close()
	go func() {
		for {
			raw, err := ssLn.Accept()
			if err != nil {
				return
			}
			go func(raw net.Conn) {
				defer raw.Close()
				sc := ssproto.NewConn(raw, spec, key)
				if _, err := socks.ReadAddr(sc); err != nil {
					return
				}
				buf := make([]byte, 1024)
				n, err := sc.Read(buf)
				if err != nil {
					return
				}
				sc.Write(append([]byte("echo:"), buf[:n]...))
			}(raw)
		}
	}()

	client, err := New(Config{Server: ssLn.Addr().String(), Method: "aes-128-gcm", Password: "pw"})
	if err != nil {
		t.Fatal(err)
	}
	socksLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer socksLn.Close()
	go client.ServeSOCKS5(socksLn)

	app, err := net.Dial("tcp", socksLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	target, _ := socks.ParseAddr("203.0.113.9:4444") // opaque to the fake server
	if err := socks.DialerHandshake(app, target); err != nil {
		t.Fatal(err)
	}
	app.Write([]byte("ping"))
	want := []byte("echo:ping")
	got := make([]byte, len(want))
	app.SetReadDeadline(time.Now().Add(3 * time.Second))
	if _, err := io.ReadFull(app, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("got %q", got)
	}
}

// TestUDPAssociationInPackage covers DialUDP/Send/Recv against a raw
// packet server implemented with ssproto.
func TestUDPAssociationInPackage(t *testing.T) {
	spec, _ := sscrypto.Lookup("chacha20-ietf-poly1305")
	key := spec.Key("pw")
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	go func() {
		buf := make([]byte, 64*1024)
		for {
			n, from, err := pc.ReadFrom(buf)
			if err != nil {
				return
			}
			target, payload, err := ssproto.UnpackUDP(spec, key, buf[:n])
			if err != nil {
				continue
			}
			// Echo straight back, with the original target as the source.
			pkt, err := ssproto.PackUDP(spec, key, target, append([]byte("pong:"), payload...))
			if err != nil {
				continue
			}
			pc.WriteTo(pkt, from)
		}
	}()

	client, err := New(Config{Server: pc.LocalAddr().String(), Method: "chacha20-ietf-poly1305", Password: "pw"})
	if err != nil {
		t.Fatal(err)
	}
	u, err := client.DialUDP()
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()

	if err := u.Send("8.8.8.8:53", []byte("q")); err != nil {
		t.Fatal(err)
	}
	from, payload, err := u.Recv(time.Now().Add(3 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if from.String() != "8.8.8.8:53" || !bytes.Equal(payload, []byte("pong:q")) {
		t.Errorf("from=%v payload=%q", from, payload)
	}
	if err := u.Send("bad-target", nil); err == nil {
		t.Error("bad UDP target accepted")
	}
}
