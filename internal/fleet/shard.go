package fleet

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"sslab/internal/gfw"
	"sslab/internal/netsim"
	"sslab/internal/region"
	"sslab/internal/seedfork"
	"sslab/internal/stats"
	"sslab/internal/trafficgen"
)

// runPlan is the run's space partition, fixed by Config before any
// unit executes: the global per-server implementation assignment, the
// region ranges, and each unit's (region, shard) identity. Workers
// execute this plan; they never reshape it, which is what makes the
// worker count report-invariant.
type runPlan struct {
	nServers int
	impl     []int32 // implementation index per global server
	regions  []regionPlan
	units    []unitSpec
}

// regionPlan is one region's slice of the plan: its contiguous global
// server range, its resolved censor configuration, and its schedule.
type regionPlan struct {
	name     string
	gcfg     gfw.Config // per-unit Seed and NoProbeLog applied later
	schedule region.Schedule
	lo, hi   int
}

// unitSpec identifies one executable sub-simulation: a (region, shard)
// cell with its contiguous global server range and its seedfork parent.
type unitSpec struct {
	region int
	shard  int
	seed   int64
	lo, hi int
}

// resolveTopology returns the run's effective topology: the configured
// one, or the implicit single-region identity.
func resolveTopology(cfg Config) *region.Topology {
	if cfg.Regions != nil {
		return cfg.Regions
	}
	return region.Single()
}

// planRun draws the global implementation mix, carves the server space
// into contiguous region ranges (proportional to weight, by cumulative
// rounding), and splits each region into up to Config.Shards balanced
// contiguous shard ranges. The mix is one sequential stream over all
// servers regardless of regions and shards, so both repartition the
// population without recomposing it.
//
// Seed derivation preserves the historical streams exactly when it
// can: a single-region plan forks shard seeds straight off Config.Seed
// (cfg.Seed itself for one shard), so every pre-region golden is
// reproduced byte-for-byte; a multi-region plan gives each region an
// independent ("region", r) fork and derives shard seeds under it.
func planRun(cfg Config) (runPlan, error) {
	nServers := (cfg.Users + cfg.UsersPerServer - 1) / cfg.UsersPerServer
	var totalW float64
	for _, s := range cfg.Mix {
		totalW += s.Weight
	}
	mixRng := rand.New(rand.NewSource(seedfork.Fork(cfg.Seed, "fleet.mix")))
	impl := make([]int32, nServers)
	for j := range impl {
		draw := mixRng.Float64() * totalW
		implIdx := len(cfg.Mix) - 1
		for k, s := range cfg.Mix {
			if draw < s.Weight {
				implIdx = k
				break
			}
			draw -= s.Weight
		}
		impl[j] = int32(implIdx)
	}

	topo := resolveTopology(cfg)
	p := runPlan{nServers: nServers, impl: impl}
	weightSum := topo.TotalWeight()
	single := len(topo.Regions) == 1
	var cum float64
	at := 0
	for r, reg := range topo.Regions {
		cum += reg.Weight
		hi := int(math.Round(cum / weightSum * float64(nServers)))
		if r == len(topo.Regions)-1 {
			hi = nServers
		}
		if hi <= at {
			return runPlan{}, fmt.Errorf("fleet: region %q gets no servers (weight %v of %v over %d servers)",
				reg.Name, reg.Weight, weightSum, nServers)
		}

		gcfg := cfg.GFW
		if reg.GFW != nil {
			gcfg = *reg.GFW
			if gcfg.Sensitivity == 0 {
				gcfg.Sensitivity = 0.25 // the fleet-level default, see Config.GFW
			}
		}
		rp := regionPlan{name: reg.Name, gcfg: gcfg, schedule: reg.Schedule, lo: at, hi: hi}

		// Seed parents: single-region plans keep the historical labels.
		regionSeed := cfg.Seed
		if !single {
			regionSeed = seedfork.Fork(cfg.Seed, "region", int64(r))
		}
		shards := cfg.Shards
		if n := hi - at; shards > n {
			shards = n
		}
		if shards < 1 {
			shards = 1
		}
		q, rem := (hi-at)/shards, (hi-at)%shards
		slo := at
		for s := 0; s < shards; s++ {
			n := q
			if s < rem {
				n++ // the first rem shards absorb the remainder
			}
			seed := regionSeed
			if shards > 1 {
				seed = seedfork.Fork(regionSeed, "fleet.shard", int64(s))
			}
			p.units = append(p.units, unitSpec{region: r, shard: s, seed: seed, lo: slo, hi: slo + n})
			slo += n
		}
		p.regions = append(p.regions, rp)
		at = hi
	}
	return p, nil
}

// buildUnit constructs one unit's sub-simulation: its own simulator,
// network, censor, timing wheel and RNG streams. When restoring, the
// unit is built structurally identical but schedules no initial events
// — the snapshot's pending events are re-armed afterwards.
func buildUnit(cfg Config, plan runPlan, u unitSpec, restoring bool) *Fleet {
	rp := plan.regions[u.region]

	sim := netsim.NewSim(netsim.WithSeed(u.seed))
	var nopts []netsim.NetworkOption
	if cfg.Impair != nil {
		nopts = append(nopts, netsim.WithDefaultLink(*cfg.Impair))
	}
	net := netsim.NewNetwork(sim, nopts...)

	gcfg := rp.gcfg
	gcfg.Seed = seedfork.Fork(u.seed, "fleet.gfw")
	gcfg.NoProbeLog = true
	if gcfg.Sensitivity < 0 {
		// The historical probe-but-never-block sentinel: gfw now rejects
		// out-of-domain sensitivities, and 0 blocks exactly as often as
		// any negative value did (never) with the same single coin flip.
		gcfg.Sensitivity = 0
	}
	g := gfw.New(gfw.Env{Sim: sim, Net: net}, gfw.WithConfig(gcfg))
	net.AddMiddlebox(g)

	userLo := u.lo * cfg.UsersPerServer
	userHi := u.hi * cfg.UsersPerServer
	if userHi > cfg.Users {
		userHi = cfg.Users // the last server may be partially subscribed
	}
	f := &Fleet{
		cfg:          cfg,
		sim:          sim,
		net:          net,
		gfw:          g,
		seed:         u.seed,
		serverLo:     u.lo,
		serverHi:     u.hi,
		userLo:       userLo,
		userHi:       userHi,
		regionIdx:    u.region,
		regionName:   rp.name,
		schedule:     rp.schedule,
		restoring:    restoring,
		nextServerIP: u.lo, // initial endpoints keep their global addresses
		wheel:        netsim.NewWheel(sim),
		tg:           trafficgen.New(seedfork.Fork(u.seed, "fleet.trafficgen")),
		outBuf:       make([]netsim.Outcome, 0, 1),
		end:          netsim.Epoch.Add(time.Duration(cfg.Hours) * time.Hour),
		meanGap:      time.Duration(float64(time.Hour) / cfg.PeakFlowsPerHour),
		replaceAfter: time.Duration(cfg.ReplaceAfterMin) * time.Minute,
		bucket:       time.Duration(cfg.BucketMin) * time.Minute,
		epochs:       map[netsim.Endpoint]epoch{},
		flowsTS:      stats.NewTimeSeries(time.Duration(cfg.BucketMin) * time.Minute),
		latencies:    stats.NewQuantile(0.01),
		lifetimes:    stats.NewQuantile(0.01),
		gapQ:         stats.NewQuantile(0.01),
	}
	f.parg = policyArg{f: f}
	f.bindMetrics()
	f.build(plan)
	if !restoring {
		sim.AtCall(netsim.Epoch.Add(f.bucket), runSample, f)
		f.schedulePolicy()
	}
	return f
}
