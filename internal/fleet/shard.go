package fleet

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"sslab/internal/gfw"
	"sslab/internal/metrics"
	"sslab/internal/netsim"
	"sslab/internal/seedfork"
	"sslab/internal/stats"
	"sslab/internal/trafficgen"
)

// shardPlan is the run's space partition, fixed by Config before any
// shard executes: the global per-server implementation assignment and
// each shard's contiguous server range. Workers execute this plan;
// they never reshape it, which is what makes the worker count
// report-invariant.
type shardPlan struct {
	nServers int
	impl     []int32 // implementation index per global server
	lo, hi   []int   // shard s owns global servers [lo[s], hi[s])
}

// planShards draws the global implementation mix and splits the server
// space into balanced contiguous ranges. The mix is one sequential
// stream over all servers regardless of the shard count, so sharding
// repartitions the population without recomposing it. Shard counts
// above the server count clamp (a shard must own at least one server).
func planShards(cfg Config) shardPlan {
	nServers := (cfg.Users + cfg.UsersPerServer - 1) / cfg.UsersPerServer
	var totalW float64
	for _, s := range cfg.Mix {
		totalW += s.Weight
	}
	mixRng := rand.New(rand.NewSource(seedfork.Fork(cfg.Seed, "fleet.mix")))
	impl := make([]int32, nServers)
	for j := range impl {
		draw := mixRng.Float64() * totalW
		implIdx := len(cfg.Mix) - 1
		for k, s := range cfg.Mix {
			if draw < s.Weight {
				implIdx = k
				break
			}
			draw -= s.Weight
		}
		impl[j] = int32(implIdx)
	}

	shards := cfg.Shards
	if shards > nServers {
		shards = nServers
	}
	if shards < 1 {
		shards = 1
	}
	p := shardPlan{nServers: nServers, impl: impl, lo: make([]int, shards), hi: make([]int, shards)}
	q, r := nServers/shards, nServers%shards
	at := 0
	for s := range p.lo {
		n := q
		if s < r {
			n++ // the first r shards absorb the remainder
		}
		p.lo[s] = at
		at += n
		p.hi[s] = at
	}
	return p
}

// shardOut is one shard's result slot, indexed by shard so the merge
// order never depends on scheduling.
type shardOut struct {
	rep  *Report
	snap metrics.Snapshot
	err  error
}

// runSharded executes the plan on a bounded worker pool and merges the
// per-shard Reports in shard order.
func runSharded(cfg Config, o runOptions) (*Report, error) {
	plan := planShards(cfg)
	nShards := len(plan.lo)
	workers := o.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nShards {
		workers = nShards
	}
	wantSnap := o.metrics != nil

	outs := make([]shardOut, nShards)
	if workers <= 1 {
		for s := range outs {
			outs[s] = runShard(cfg, plan, s, wantSnap)
		}
	} else {
		queue := make(chan int, nShards)
		for s := range outs {
			queue <- s
		}
		close(queue)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for s := range queue {
					outs[s] = runShard(cfg, plan, s, wantSnap)
				}
			}()
		}
		wg.Wait()
	}

	// The lowest-indexed failure wins, so the reported error does not
	// depend on which worker lost the race.
	for s := range outs {
		if outs[s].err != nil {
			return nil, fmt.Errorf("fleet: shard %d/%d: %w", s, nShards, outs[s].err)
		}
	}
	rep := outs[0].rep
	for s := 1; s < nShards; s++ {
		if err := rep.Merge(outs[s].rep); err != nil {
			return nil, fmt.Errorf("fleet: merging shard %d/%d: %w", s, nShards, err)
		}
	}
	if o.metrics != nil {
		for s := range outs {
			if err := o.metrics.Absorb(outs[s].snap); err != nil {
				return nil, fmt.Errorf("fleet: shard %d/%d: %w", s, nShards, err)
			}
		}
	}
	return rep, nil
}

// runShard builds and executes one shard's sub-simulation, converting
// panics into errors so a poisoned shard fails the run cleanly instead
// of killing the whole process — campaign's per-shard isolation,
// pushed inside a single fleet run.
func runShard(cfg Config, plan shardPlan, s int, wantSnap bool) (out shardOut) {
	defer func() {
		if p := recover(); p != nil {
			out = shardOut{err: fmt.Errorf("panic: %v", p)}
		}
	}()

	// With one shard the parent seed is Config.Seed itself, which makes
	// every derived label identical to the unsharded engine's; with more,
	// each shard gets an independent fork.
	seed := cfg.Seed
	if len(plan.lo) > 1 {
		seed = seedfork.Fork(cfg.Seed, "fleet.shard", int64(s))
	}

	sim := netsim.NewSim(netsim.WithSeed(seed))
	var nopts []netsim.NetworkOption
	if cfg.Impair != nil {
		nopts = append(nopts, netsim.WithDefaultLink(*cfg.Impair))
	}
	net := netsim.NewNetwork(sim, nopts...)

	gcfg := cfg.GFW
	gcfg.Seed = seedfork.Fork(seed, "fleet.gfw")
	gcfg.NoProbeLog = true
	g := gfw.New(gfw.Env{Sim: sim, Net: net}, gfw.WithConfig(gcfg))
	net.AddMiddlebox(g)

	userLo := plan.lo[s] * cfg.UsersPerServer
	userHi := plan.hi[s] * cfg.UsersPerServer
	if userHi > cfg.Users {
		userHi = cfg.Users // the last server may be partially subscribed
	}
	f := &Fleet{
		cfg:          cfg,
		sim:          sim,
		net:          net,
		gfw:          g,
		seed:         seed,
		serverLo:     plan.lo[s],
		serverHi:     plan.hi[s],
		userLo:       userLo,
		userHi:       userHi,
		nextServerIP: plan.lo[s], // initial endpoints keep their global addresses
		wheel:        netsim.NewWheel(sim),
		tg:           trafficgen.New(seedfork.Fork(seed, "fleet.trafficgen")),
		outBuf:       make([]netsim.Outcome, 0, 1),
		end:          netsim.Epoch.Add(time.Duration(cfg.Hours) * time.Hour),
		meanGap:      time.Duration(float64(time.Hour) / cfg.PeakFlowsPerHour),
		replaceAfter: time.Duration(cfg.ReplaceAfterMin) * time.Minute,
		bucket:       time.Duration(cfg.BucketMin) * time.Minute,
		epochs:       map[netsim.Endpoint]epoch{},
		flowsTS:      stats.NewTimeSeries(time.Duration(cfg.BucketMin) * time.Minute),
		latencies:    stats.NewQuantile(0.01),
		lifetimes:    stats.NewQuantile(0.01),
		gapQ:         stats.NewQuantile(0.01),
	}
	f.bindMetrics()
	f.build(plan)

	sim.AtCall(netsim.Epoch.Add(f.bucket), runSample, f)
	sim.RunUntil(f.end)

	out = shardOut{rep: f.report()}
	if wantSnap {
		out.snap = sim.Metrics.Snapshot()
	}
	return out
}
