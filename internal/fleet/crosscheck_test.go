package fleet

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"sslab/internal/gfw"
	"sslab/internal/netsim"
	"sslab/internal/reaction"
	"sslab/internal/seedfork"
	"sslab/internal/sscrypto"
	"sslab/internal/trafficgen"
)

// TestGoldenCrossCheck pins the fleet engine against a hand-rolled
// single-client reference: the naive loop the existing `shadowsocks`
// experiment runs — one client, direct heap scheduling (no Wheel),
// allocating trafficgen forms (no append API), a plain closure per
// event (no trampolines). A 1-user fleet must reproduce the reference's
// censor statistics *exactly*: same triggers, same recorded payloads,
// same probes, same flow count. Any divergence means the Wheel
// delivered an event at the wrong virtual time, the append-form
// trafficgen drew different random bytes, or the engine consumed PRNG
// draws in a different order than documented.
func TestGoldenCrossCheck(t *testing.T) {
	cfg := Config{
		Seed:             42,
		Users:            1,
		UsersPerServer:   1,
		Hours:            24,
		PeakFlowsPerHour: 40, // dense enough that the 4% passive detector records and probes
		ActivityFloor:    1,  // constant activity: the accept draw is still consumed
		Mix:              []ImplShare{{Impl: "sspython", Weight: 1}},
		GFW:              gfw.Config{Sensitivity: -1}, // probe forever, never block
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatalf("fleet Run: %v", err)
	}

	// --- reference: the single-client loop, no fleet machinery ---
	c := cfg.withDefaults()
	sim := netsim.NewSim(netsim.WithSeed(c.Seed))
	net := netsim.NewNetwork(sim)
	gcfg := c.GFW
	gcfg.Seed = seedfork.Fork(c.Seed, "fleet.gfw")
	gcfg.NoProbeLog = true
	if gcfg.Sensitivity < 0 {
		gcfg.Sensitivity = 0 // the engine's clamp of the historical never-block sentinel
	}
	g := gfw.New(gfw.Env{Sim: sim, Net: net}, gfw.WithConfig(gcfg))
	net.AddMiddlebox(g)
	tg := trafficgen.New(seedfork.Fork(c.Seed, "fleet.trafficgen"))

	// One server: consume the mix draw, build the same sspython server.
	mixRng := rand.New(rand.NewSource(seedfork.Fork(c.Seed, "fleet.mix")))
	_ = mixRng.Float64()
	spec, err := sscrypto.Lookup("aes-256-cfb")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := reaction.NewServer(reaction.SSPython, spec, "fleet-0")
	if err != nil {
		t.Fatal(err)
	}
	host := newServerHost(&Fleet{sim: sim}, srv, protoSS, false, c.UsersPerServer, c.Hours, c.PeakFlowsPerHour)
	serverEP := netsim.Endpoint{IP: "198.51.0.1", Port: 8388}
	net.AddHost(serverEP, host)
	clientEP := netsim.Endpoint{IP: "100.64.0.1", Port: 40000}

	// The user's PRNG draws, in the engine's documented order:
	// phase, workload, first-wake stagger; then per wake-up: gap, accept.
	rng := uint64(seedfork.Fork(c.Seed, "fleet.user", 0))
	f64 := func() float64 { return float64(splitmix(&rng)>>11) / (1 << 53) }
	_ = splitmix(&rng) // diurnal phase (unused at ActivityFloor 1)
	wl := trafficgen.CurlLoop
	if f64() < c.BrowseShare {
		wl = trafficgen.BrowseAlexa
	}

	meanGap := time.Duration(float64(time.Hour) / c.PeakFlowsPerHour)
	end := netsim.Epoch.Add(time.Duration(c.Hours) * time.Hour)
	var flows int64
	var wake func(any)
	wake = func(any) {
		now := sim.Now()
		gap := time.Duration(-math.Log1p(-f64()) * float64(meanGap))
		if next := now.Add(gap); next.Before(end) {
			sim.AtCall(next, wake, nil)
		}
		if f64() >= 1 { // activity is constant 1 under ActivityFloor 1
			return
		}
		pkt := tg.WireFirstPacket(spec, tg.PlaintextFirstFlight(wl))
		net.Connect(clientEP, serverEP, pkt, false, time.Time{})
		flows++
	}
	sim.AtCall(netsim.Epoch.Add(time.Duration(f64()*float64(meanGap))), wake, nil)
	sim.RunUntil(end)

	if rep.Flows != flows {
		t.Errorf("flows: fleet %d, reference %d", rep.Flows, flows)
	}
	if rep.Triggers != g.Triggers {
		t.Errorf("triggers: fleet %d, reference %d", rep.Triggers, g.Triggers)
	}
	if rep.PayloadsRecorded != g.PayloadsRecorded {
		t.Errorf("payloads recorded: fleet %d, reference %d", rep.PayloadsRecorded, g.PayloadsRecorded)
	}
	if rep.ProbesSent != g.ProbesSent {
		t.Errorf("probes sent: fleet %d, reference %d", rep.ProbesSent, g.ProbesSent)
	}
	if rep.Blocks != len(g.BlockEvents) {
		t.Errorf("blocks: fleet %d, reference %d", rep.Blocks, len(g.BlockEvents))
	}
	if rep.ProbesSent == 0 {
		t.Error("reference run produced no probes; cross-check is vacuous")
	}
}
