package fleet

import (
	"bytes"
	"encoding/binary"

	"sslab/internal/bloom"
	"sslab/internal/defense"
	"sslab/internal/detector"
	"sslab/internal/netsim"
	"sslab/internal/reaction"
)

// serverHost is the fleet's server endpoint for all protocol families.
//
// For Shadowsocks it keeps the experiment package's ServerHost semantics
// — genuine clients are served and their nonces enter the replay filter;
// identical replays against a server without replay defense are served
// with data; everything else gets the reaction engine's verdict — but
// with O(1) memory. Where ServerHost keys every payload ever seen in an
// unbounded map, the fleet host remembers payload hashes in a fixed-size
// Bloom filter sized for the epoch's expected flow count: a false
// positive (mistaking a fresh probe payload for a replay) is ≪0.1% and
// only matters for undefended servers, whose genuine replays dominate
// their evidence anyway.
//
// The other protocol families model each deployment's probe posture:
//
//   - OpenVPN without tls-auth answers any well-formed client reset
//     (including a replayed one) and RSTs garbage — the reachable
//     fingerprint Xue et al. exploited; with tls-auth every
//     unauthenticated packet is silently dropped, so probes time out.
//   - obfs2-era transports accept replayed handshakes (data) and close
//     loudly on malformed input; obfs4-style transports are
//     probe-silent.
//   - Web servers answer HTTP and TLS probes like any public site —
//     responses to probes are normal here, and blocks against them are
//     false positives.
type serverHost struct {
	f      *Fleet
	srv    *reaction.Server // Shadowsocks only; nil for other protocols
	proto  protoKind
	silent bool
	seen   *bloom.Filter
	key    [8]byte
}

// newServerHost sizes the replay-seen filter for the server's expected
// epoch traffic: users × hours × peak rate, with headroom.
func newServerHost(f *Fleet, srv *reaction.Server, proto protoKind, silent bool, usersPerServer, hours int, peakRate float64) *serverHost {
	capacity := int(float64(usersPerServer*hours)*peakRate*1.5) + 64
	return &serverHost{
		f:      f,
		srv:    srv,
		proto:  proto,
		silent: silent,
		seen:   bloom.New(capacity, 1e-3),
	}
}

// hashPayload reduces a first payload to the 8-byte key the Bloom
// filter stores — inline FNV-1a, so the per-flow path stays
// allocation-free (hash.Hash64 construction would allocate).
//
//sslab:hotpath
func (h *serverHost) hashPayload(p []byte) []byte {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	sum := uint64(offset64)
	for _, b := range p {
		sum ^= uint64(b)
		sum *= prime64
	}
	binary.BigEndian.PutUint64(h.key[:], sum)
	return h.key[:]
}

var httpGET = []byte("GET ")
var httpPOST = []byte("POST ")

// HandleFlow implements netsim.Host.
//
//sslab:hotpath
func (h *serverHost) HandleFlow(fl *netsim.Flow) netsim.Outcome {
	now := h.f.sim.Now()
	if !fl.Probe {
		// A flow silenced by null-routing carries no payload; the server
		// never saw a connection, so nothing enters the replay filter.
		if fl.FirstPayload == nil {
			return netsim.Outcome{Reaction: reaction.Timeout}
		}
		if h.proto == protoSS {
			h.srv.RegisterNonce(fl.FirstPayload, now)
		}
		if h.proto == protoSS || h.proto == protoObfs {
			h.seen.Add(h.hashPayload(fl.FirstPayload))
		}
		return netsim.Outcome{Reaction: reaction.Data, ResponseLen: 1200}
	}
	switch h.proto {
	case protoOpenVPN:
		if h.silent {
			// tls-auth: the HMAC check fails on anything the prober can
			// synthesize or replay; the server says nothing.
			return netsim.Outcome{Reaction: reaction.Timeout}
		}
		if _, ok := detector.ParseClientReset(fl.FirstPayload); ok {
			// A well-formed (or replayed) reset elicits the server's own
			// hard reset — the byte-identifiable reply probes look for.
			return netsim.Outcome{Reaction: reaction.Data, ResponseLen: 100}
		}
		return netsim.Outcome{Reaction: reaction.RST}
	case protoObfs:
		if h.silent {
			return netsim.Outcome{Reaction: reaction.Timeout}
		}
		if fl.FirstPayload != nil && h.seen.Test(h.hashPayload(fl.FirstPayload)) {
			// obfs2 has no replay protection: the replayed handshake
			// completes and the server answers with data.
			return netsim.Outcome{Reaction: reaction.Data, ResponseLen: 600}
		}
		return netsim.Outcome{Reaction: reaction.FINACK}
	case protoWeb:
		if bytes.HasPrefix(fl.FirstPayload, httpGET) || bytes.HasPrefix(fl.FirstPayload, httpPOST) {
			return netsim.Outcome{Reaction: reaction.Data, ResponseLen: 1200}
		}
		if defense.IsTLSFramed(fl.FirstPayload) {
			return netsim.Outcome{Reaction: reaction.Data, ResponseLen: 1200}
		}
		// Garbage at a web port: the HTTP server closes after a parse
		// error, having read the request.
		return netsim.Outcome{Reaction: reaction.FINACK}
	}
	if fl.FirstPayload != nil && h.seen.Test(h.hashPayload(fl.FirstPayload)) && !h.srv.Profile.ReplayDefense {
		return netsim.Outcome{Reaction: reaction.Data, ResponseLen: 800}
	}
	r := h.srv.ReactAt(fl.FirstPayload, fl.GeneratedAt, now)
	return netsim.Outcome{Reaction: r.Reaction}
}
