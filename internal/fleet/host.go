package fleet

import (
	"encoding/binary"

	"sslab/internal/bloom"
	"sslab/internal/netsim"
	"sslab/internal/reaction"
)

// serverHost is the fleet's Shadowsocks server: the same semantics as
// the experiment package's ServerHost — genuine clients are served and
// their nonces enter the replay filter; identical replays against a
// server without replay defense are served with data; everything else
// gets the reaction engine's verdict — but with O(1) memory. Where
// ServerHost keys every payload ever seen in an unbounded map, the
// fleet host remembers payload hashes in a fixed-size Bloom filter
// sized for the epoch's expected flow count: a false positive
// (mistaking a fresh probe payload for a replay) is ≪0.1% and only
// matters for undefended servers, whose genuine replays dominate their
// evidence anyway.
type serverHost struct {
	f    *Fleet
	srv  *reaction.Server
	seen *bloom.Filter
	key  [8]byte
}

// newServerHost sizes the replay-seen filter for the server's expected
// epoch traffic: users × hours × peak rate, with headroom.
func newServerHost(f *Fleet, srv *reaction.Server, usersPerServer, hours int, peakRate float64) *serverHost {
	capacity := int(float64(usersPerServer*hours)*peakRate*1.5) + 64
	return &serverHost{
		f:    f,
		srv:  srv,
		seen: bloom.New(capacity, 1e-3),
	}
}

// hashPayload reduces a first payload to the 8-byte key the Bloom
// filter stores — inline FNV-1a, so the per-flow path stays
// allocation-free (hash.Hash64 construction would allocate).
//
//sslab:hotpath
func (h *serverHost) hashPayload(p []byte) []byte {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	sum := uint64(offset64)
	for _, b := range p {
		sum ^= uint64(b)
		sum *= prime64
	}
	binary.BigEndian.PutUint64(h.key[:], sum)
	return h.key[:]
}

// HandleFlow implements netsim.Host.
//
//sslab:hotpath
func (h *serverHost) HandleFlow(fl *netsim.Flow) netsim.Outcome {
	now := h.f.sim.Now()
	if !fl.Probe {
		// A flow silenced by null-routing carries no payload; the server
		// never saw a connection, so nothing enters the replay filter.
		if fl.FirstPayload == nil {
			return netsim.Outcome{Reaction: reaction.Timeout}
		}
		h.srv.RegisterNonce(fl.FirstPayload, now)
		h.seen.Add(h.hashPayload(fl.FirstPayload))
		return netsim.Outcome{Reaction: reaction.Data, ResponseLen: 1200}
	}
	if fl.FirstPayload != nil && h.seen.Test(h.hashPayload(fl.FirstPayload)) && !h.srv.Profile.ReplayDefense {
		return netsim.Outcome{Reaction: reaction.Data, ResponseLen: 800}
	}
	r := h.srv.ReactAt(fl.FirstPayload, fl.GeneratedAt, now)
	return netsim.Outcome{Reaction: r.Reaction}
}
