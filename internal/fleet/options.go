package fleet

import "sslab/internal/metrics"

// Option configures how a fleet run *executes* — worker pools, metrics
// sinks — as opposed to Config, which defines the science. The split
// is a hard API rule: Config is JSON-round-tripped and swept by the
// campaign engine, so everything in it may legitimately change report
// bytes, while execution options must be report-invariant — equal
// Configs produce byte-identical Reports under any combination of
// options (see CONTRIBUTING.md, "Execution options vs. science
// config").
type Option func(*runOptions)

// runOptions is the resolved execution configuration. The zero value
// is the default: GOMAXPROCS workers, no external metrics sink.
type runOptions struct {
	workers int
	metrics *metrics.Registry
}

// WithWorkers bounds the goroutine pool executing the run's shards
// (default GOMAXPROCS, clamped to the shard count). The shard plan —
// and therefore every byte of the Report — is fixed by Config.Shards;
// workers only trade wall-clock time for cores, exactly like the
// campaign engine's -workers.
func WithWorkers(n int) Option {
	return func(o *runOptions) { o.workers = n }
}

// WithMetrics folds the run's engine metrics — each shard's simulator,
// network and fleet instruments — into m after the run completes,
// absorbing per-shard registries in shard order. Metrics never feed
// the Report, so attaching a registry cannot perturb report bytes. A
// nil registry restores the default (metrics kept shard-private and
// discarded).
func WithMetrics(m *metrics.Registry) Option {
	return func(o *runOptions) { o.metrics = m }
}
